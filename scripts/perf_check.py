#!/usr/bin/env python3
"""Gate scale_monitor results against a committed baseline.

Both files are scale_monitor JSONL artifacts (one object per line with
interfaces / shards / poll_round_p95 / rss_per_interface). Rows are
matched by (interfaces, shards). The metrics are *simulated* quantities
from a deterministic discrete-event run, so they are machine-independent;
the tolerance only absorbs intentional-but-small behaviour drift. A
current value more than --tolerance above baseline fails; improvements
are reported and always pass.

Usage:
  scripts/perf_check.py --baseline bench/baselines/scale_monitor_1k.jsonl \
      --current artifacts/scale_monitor.jsonl [--tolerance 0.10]
"""
import argparse
import json
import sys

METRICS = ("poll_round_p95", "rss_per_interface")


def load(path):
    rows = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("bench") != "scale_monitor":
                continue
            rows[(row["interfaces"], row["shards"])] = row
    if not rows:
        sys.exit(f"error: no scale_monitor rows in {path}")
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative regression (default 0.10)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        if cur_row is None:
            failures.append(f"{key}: missing from current results")
            continue
        for metric in METRICS:
            base, cur = base_row[metric], cur_row[metric]
            if base <= 0:
                continue
            delta = (cur - base) / base
            status = "FAIL" if delta > args.tolerance else "ok"
            print(f"{key} {metric}: baseline {base:.6g} current {cur:.6g} "
                  f"({delta:+.1%}) {status}")
            if status == "FAIL":
                failures.append(f"{key} {metric} regressed {delta:+.1%} "
                                f"(tolerance {args.tolerance:.0%})")

    if failures:
        print("\nperf_check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf_check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
