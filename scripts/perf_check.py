#!/usr/bin/env python3
"""Gate bench JSONL results against a committed baseline.

Two modes, selected by flag:

  --current FILE    scale_monitor artifacts: rows matched by
                    (interfaces, shards), metrics poll_round_p95 and
                    rss_per_interface, default tolerance 10%.
  --shootout FILE   probe_shootout artifacts: rows matched by
                    (scenario, estimator), metric
                    poll_round_p95_seconds — the monitor's poll-round
                    p95 while that estimator injects probe traffic —
                    default tolerance 5%.

The metrics are *simulated* quantities from a deterministic
discrete-event run, so they are machine-independent; the tolerance only
absorbs intentional-but-small behaviour drift. A current value more
than --tolerance above baseline fails; improvements are reported and
always pass.

Usage:
  scripts/perf_check.py --baseline bench/baselines/scale_monitor_1k.jsonl \
      --current artifacts/scale_monitor.jsonl [--tolerance 0.10]
  scripts/perf_check.py --baseline bench/baselines/probe_shootout.jsonl \
      --shootout artifacts/probe_shootout.jsonl [--tolerance 0.05]
"""
import argparse
import json
import sys

SCALE_METRICS = ("poll_round_p95", "rss_per_interface")
SHOOTOUT_METRICS = ("poll_round_p95_seconds",)


def load(path, key_of):
    rows = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            key = key_of(row)
            if key is None:
                continue
            rows[key] = row
    if not rows:
        sys.exit(f"error: no matching rows in {path}")
    return rows


def scale_key(row):
    if row.get("bench") != "scale_monitor":
        return None
    return (row["interfaces"], row["shards"])


def shootout_key(row):
    if "scenario" not in row or "estimator" not in row:
        return None
    return (row["scenario"], row["estimator"])


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--current", help="scale_monitor JSONL to gate")
    source.add_argument("--shootout", help="probe_shootout JSONL to gate")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed relative regression "
                             "(default 0.10, or 0.05 for --shootout)")
    args = parser.parse_args()

    if args.shootout:
        key_of, metrics = shootout_key, SHOOTOUT_METRICS
        current_path = args.shootout
        tolerance = 0.05 if args.tolerance is None else args.tolerance
    else:
        key_of, metrics = scale_key, SCALE_METRICS
        current_path = args.current
        tolerance = 0.10 if args.tolerance is None else args.tolerance

    baseline = load(args.baseline, key_of)
    current = load(current_path, key_of)

    failures = []
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        if cur_row is None:
            failures.append(f"{key}: missing from current results")
            continue
        for metric in metrics:
            base, cur = base_row[metric], cur_row[metric]
            if base <= 0:
                continue
            delta = (cur - base) / base
            status = "FAIL" if delta > tolerance else "ok"
            print(f"{key} {metric}: baseline {base:.6g} current {cur:.6g} "
                  f"({delta:+.1%}) {status}")
            if status == "FAIL":
                failures.append(f"{key} {metric} regressed {delta:+.1%} "
                                f"(tolerance {tolerance:.0%})")

    if failures:
        print("\nperf_check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf_check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
