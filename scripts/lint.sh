#!/usr/bin/env bash
# Static-analysis entry point — identical locally and in CI.
#
#   scripts/lint.sh [--build-dir DIR] [--update-baselines]
#
# Runs, in order:
#   1. netqos-analyze (tools/netqos_analyze, the C++ engine) when the
#      binary exists in the build tree: all eight rules R1-R8 over src/,
#      gated against tools/netqos_lint/analyze_baseline.txt (committed
#      at zero entries), with SARIF written to $BUILD_DIR/lint/ and a
#      result cache for warm incremental runs. Falls back to the Python
#      linter (R1-R5 only) with a notice when the binary is absent.
#   2. Parity gate (engine present only): the engine and the Python
#      linter must agree on every R1-R5 verdict across the fixture
#      corpus AND over src/. Any disagreement fails the run — the two
#      implementations are not allowed to drift.
#   3. clang-tidy with the repo .clang-tidy profile over src/, gated
#      diff-aware against tools/netqos_lint/clang_tidy_baseline.txt.
#      Skipped with a notice when clang-tidy is not installed (the
#      container image has no LLVM tooling; the CI static-analysis job
#      installs it).
#
# Findings are also written to $BUILD_DIR/lint/ so CI can upload them.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${NETQOS_BUILD_DIR:-build}"
UPDATE_BASELINES=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --update-baselines) UPDATE_BASELINES=1; shift ;;
    *) echo "usage: scripts/lint.sh [--build-dir DIR] [--update-baselines]" >&2
       exit 2 ;;
  esac
done

PYTHON="${PYTHON:-python3}"
LINT=tools/netqos_lint/netqos_lint.py
LINT_BASELINE=tools/netqos_lint/baseline.txt
ANALYZE_BASELINE=tools/netqos_lint/analyze_baseline.txt
TIDY_BASELINE=tools/netqos_lint/clang_tidy_baseline.txt
ANALYZE_BIN="$BUILD_DIR/tools/netqos_analyze/netqos_analyze"
OUT_DIR="$BUILD_DIR/lint"
mkdir -p "$OUT_DIR"

status=0

# Reduce engine/linter output to comparable "path:line RULE" verdicts.
verdicts() {
  sed -nE 's/^([^:]+):([0-9]+): \[(R[0-9])\].*/\1:\2 \3/p' | sort
}

if [[ -x "$ANALYZE_BIN" ]]; then
  # ---- 1. netqos-analyze (C++ engine, R1-R8) -----------------------------
  if [[ "$UPDATE_BASELINES" == 1 ]]; then
    "$ANALYZE_BIN" --root . --baseline "$ANALYZE_BASELINE" \
        --update-baseline src
  fi
  echo "== netqos-analyze (R1-R8)"
  if "$ANALYZE_BIN" --root . --baseline "$ANALYZE_BASELINE" \
      --sarif "$OUT_DIR/netqos_analyze.sarif" \
      --cache "$OUT_DIR/netqos_analyze.cache" src \
      | tee "$OUT_DIR/netqos_analyze.txt"; then
    echo "   netqos-analyze: clean"
  else
    status=1
  fi

  # ---- 2. parity gate: engine vs Python on R1-R5 -------------------------
  echo "== parity gate (engine vs netqos_lint.py, R1-R5)"
  parity_fail=0
  : > "$OUT_DIR/parity_diff.txt"
  for target in tools/netqos_lint/fixtures src; do
    "$PYTHON" "$LINT" --root . "$target" 2>/dev/null \
      | verdicts > "$OUT_DIR/parity_py.txt" || true
    "$ANALYZE_BIN" --root . --rules R1,R2,R3,R4,R5 "$target" 2>/dev/null \
      | verdicts > "$OUT_DIR/parity_cpp.txt" || true
    if ! diff -u "$OUT_DIR/parity_py.txt" "$OUT_DIR/parity_cpp.txt" \
        >> "$OUT_DIR/parity_diff.txt"; then
      echo "   parity MISMATCH on $target (see $OUT_DIR/parity_diff.txt)"
      parity_fail=1
    fi
  done
  if [[ "$parity_fail" == 1 ]]; then
    cat "$OUT_DIR/parity_diff.txt"
    status=1
  else
    echo "   parity: engine and Python linter agree on every R1-R5 verdict"
  fi
else
  # ---- fallback: Python linter only (R1-R5) ------------------------------
  echo "== netqos-analyze binary not found at $ANALYZE_BIN;" \
       "falling back to netqos-lint (build the 'netqos_analyze' target" \
       "for R6-R8 and the parity gate)"
  if [[ "$UPDATE_BASELINES" == 1 ]]; then
    "$PYTHON" "$LINT" --root . --baseline "$LINT_BASELINE" --update-baseline src
  fi
  echo "== netqos-lint (R1-R5)"
  if "$PYTHON" "$LINT" --root . --baseline "$LINT_BASELINE" src \
      | tee "$OUT_DIR/netqos_lint.txt"; then
    echo "   netqos-lint: clean"
  else
    status=1
  fi
fi

# ---- 3. clang-tidy -------------------------------------------------------
TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "== clang-tidy: not installed, skipped (install clang-tidy to enable)"
  exit "$status"
fi
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "== clang-tidy: no $BUILD_DIR/compile_commands.json, skipped" \
       "(configure with cmake first)" >&2
  exit "$status"
fi

echo "== clang-tidy ($($TIDY --version | head -n1 | xargs))"
mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
RAW="$OUT_DIR/clang_tidy_raw.txt"
# clang-tidy exits nonzero on findings; capture output, gate below.
"$TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}" > "$RAW" 2>/dev/null || true

# Normalize to "path:line check" pairs relative to the repo root.
FINDINGS="$OUT_DIR/clang_tidy_findings.txt"
sed -nE "s#^$(pwd)/##; s#^([^ :]+):([0-9]+):[0-9]+: (warning|error): .* \[([a-z0-9.,-]+)\]\$#\1 \4#p" \
  "$RAW" | sort -u > "$FINDINGS"

if [[ "$UPDATE_BASELINES" == 1 ]]; then
  {
    echo "# clang-tidy baseline: known findings as 'path check-name'."
    echo "# Regenerate with: scripts/lint.sh --update-baselines"
    cat "$FINDINGS"
  } > "$TIDY_BASELINE"
  echo "   wrote $(wc -l < "$FINDINGS") finding(s) to $TIDY_BASELINE"
fi

NEW="$OUT_DIR/clang_tidy_new.txt"
grep -v '^#' "$TIDY_BASELINE" 2>/dev/null | sort -u > "$OUT_DIR/tidy_base.txt" || true
comm -23 "$FINDINGS" "$OUT_DIR/tidy_base.txt" > "$NEW"

if [[ -s "$NEW" ]]; then
  echo "   clang-tidy: $(wc -l < "$NEW") new finding(s) not in baseline:"
  # Show full diagnostics for the new findings only.
  while read -r file check; do
    grep -F "[$check]" "$RAW" | grep -F "$file" || true
  done < "$NEW"
  status=1
else
  echo "   clang-tidy: clean ($(wc -l < "$FINDINGS") finding(s), all baselined)"
fi

exit "$status"
