#include "topology/diff.h"

#include <algorithm>
#include <set>

namespace netqos::topo {

const char* difference_kind_name(TopologyDifference::Kind kind) {
  using Kind = TopologyDifference::Kind;
  switch (kind) {
    case Kind::kMissingNode: return "missing-node";
    case Kind::kUnexpectedNode: return "unexpected-node";
    case Kind::kKindMismatch: return "kind-mismatch";
    case Kind::kMissingInterface: return "missing-interface";
    case Kind::kUnexpectedInterface: return "unexpected-interface";
    case Kind::kSpeedMismatch: return "speed-mismatch";
    case Kind::kMissingConnection: return "missing-connection";
    case Kind::kUnexpectedConnection: return "unexpected-connection";
  }
  return "?";
}

namespace {

/// Canonical key for an unordered connection.
std::pair<std::string, std::string> connection_key(const Connection& conn) {
  std::string a = conn.a.node + "." + conn.a.interface;
  std::string b = conn.b.node + "." + conn.b.interface;
  if (b < a) std::swap(a, b);
  return {a, b};
}

bool is_placeholder(const std::string& name) {
  return name.rfind("host-", 0) == 0 || name.rfind("hub-", 0) == 0;
}

}  // namespace

std::vector<TopologyDifference> diff_topologies(
    const NetworkTopology& expected, const NetworkTopology& discovered,
    bool report_placeholders) {
  using Kind = TopologyDifference::Kind;
  std::vector<TopologyDifference> diffs;
  auto report = [&diffs](Kind kind, std::string description) {
    diffs.push_back({kind, std::move(description)});
  };

  // Nodes present in expected: compare attributes.
  for (const auto& exp_node : expected.nodes()) {
    const NodeSpec* disc_node = discovered.find_node(exp_node.name);
    if (disc_node == nullptr) {
      report(Kind::kMissingNode,
             "node '" + exp_node.name + "' (" +
                 node_kind_name(exp_node.kind) + ") was not discovered");
      continue;
    }
    if (disc_node->kind != exp_node.kind) {
      report(Kind::kKindMismatch,
             "node '" + exp_node.name + "': expected " +
                 node_kind_name(exp_node.kind) + ", discovered " +
                 node_kind_name(disc_node->kind));
    }
    for (const auto& itf : exp_node.interfaces) {
      const InterfaceSpec* disc_itf =
          disc_node->find_interface(itf.local_name);
      if (disc_itf == nullptr) {
        report(Kind::kMissingInterface,
               "interface '" + exp_node.name + "." + itf.local_name +
                   "' was not discovered");
        continue;
      }
      const BitsPerSecond expected_speed = exp_node.interface_speed(itf);
      const BitsPerSecond discovered_speed =
          disc_node->interface_speed(*disc_itf);
      if (expected_speed != 0 && discovered_speed != 0 &&
          expected_speed != discovered_speed) {
        report(Kind::kSpeedMismatch,
               "interface '" + exp_node.name + "." + itf.local_name +
                   "': expected " + std::to_string(expected_speed) +
                   " bps, discovered " + std::to_string(discovered_speed) +
                   " bps");
      }
    }
    for (const auto& itf : disc_node->interfaces) {
      if (exp_node.find_interface(itf.local_name) == nullptr) {
        report(Kind::kUnexpectedInterface,
               "interface '" + exp_node.name + "." + itf.local_name +
                   "' discovered but not in the specification");
      }
    }
  }

  // Nodes only in discovered.
  for (const auto& disc_node : discovered.nodes()) {
    if (expected.find_node(disc_node.name) != nullptr) continue;
    if (!report_placeholders && is_placeholder(disc_node.name)) continue;
    report(Kind::kUnexpectedNode,
           "node '" + disc_node.name + "' (" +
               node_kind_name(disc_node.kind) +
               ") discovered but not in the specification");
  }

  // Connections, matched on canonical endpoint pairs. Connections that
  // touch placeholder nodes are skipped unless requested.
  std::set<std::pair<std::string, std::string>> expected_keys;
  for (const auto& conn : expected.connections()) {
    expected_keys.insert(connection_key(conn));
  }
  std::set<std::pair<std::string, std::string>> discovered_keys;
  for (const auto& conn : discovered.connections()) {
    discovered_keys.insert(connection_key(conn));
  }
  for (const auto& conn : expected.connections()) {
    if (!discovered_keys.contains(connection_key(conn))) {
      report(Kind::kMissingConnection,
             "connection " + conn.to_string() + " was not discovered");
    }
  }
  for (const auto& conn : discovered.connections()) {
    if (expected_keys.contains(connection_key(conn))) continue;
    if (!report_placeholders &&
        (is_placeholder(conn.a.node) || is_placeholder(conn.b.node))) {
      continue;
    }
    report(Kind::kUnexpectedConnection,
           "connection " + conn.to_string() +
               " discovered but not in the specification");
  }
  return diffs;
}

}  // namespace netqos::topo
