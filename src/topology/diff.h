// Topology comparison — the paper's "hybrid approach" (§3.2).
//
// The paper obtains topology from specification files and notes that pure
// discovery is infeasible because the RM middleware "has to know exactly
// what resources are under its control", suggesting a hybrid as future
// work. The hybrid: run discovery, then diff the discovered topology
// against the configured specification; differences are either
// configuration drift or spec errors, and each is reported as a typed,
// human-readable finding.
#pragma once

#include <string>
#include <vector>

#include "topology/model.h"

namespace netqos::topo {

struct TopologyDifference {
  enum class Kind {
    kMissingNode,        ///< in expected, not discovered
    kUnexpectedNode,     ///< discovered, not in expected
    kKindMismatch,       ///< host vs switch vs hub disagreement
    kMissingInterface,
    kUnexpectedInterface,
    kSpeedMismatch,
    kMissingConnection,  ///< expected link not discovered
    kUnexpectedConnection,
  };

  Kind kind;
  std::string description;
};

const char* difference_kind_name(TopologyDifference::Kind kind);

/// Compares `discovered` against `expected`. Nodes are matched by name;
/// connections by unordered endpoint pairs. Nodes present only in the
/// discovered topology whose names begin with "host-" (discovery's
/// placeholders for agentless MACs) are reported as unexpected only if
/// `report_placeholders` is set — by default they are understood to be
/// the expected-but-unidentifiable hosts.
std::vector<TopologyDifference> diff_topologies(
    const NetworkTopology& expected, const NetworkTopology& discovered,
    bool report_placeholders = false);

}  // namespace netqos::topo
