#include "topology/generator.h"

#include <stdexcept>

#include "common/rng.h"
#include "common/units.h"

namespace netqos::topo {
namespace {

/// Ordinal -> unique dotted quad in 10/8. Ordinals start at 1 so no
/// address ends in .0; the fabric never exceeds 2^24 - 1 endpoints.
std::string ordinal_ipv4(std::size_t ordinal) {
  return "10." + std::to_string(ordinal / 65536 % 256) + "." +
         std::to_string(ordinal / 256 % 256) + "." +
         std::to_string(ordinal % 256);
}

const char* draw_os(Xoshiro256& rng) {
  // The paper's three platforms, weighted towards the common case.
  const std::uint64_t pick = rng.next() % 4;
  if (pick == 0) return "Solaris 7";
  if (pick == 1) return "Windows NT";
  return "Linux";
}

}  // namespace

std::size_t projected_interface_count(const FabricConfig& config,
                                      std::size_t leaves) {
  // Every connection contributes two interfaces: spine0 <-> spine s
  // trunks, leaf uplinks, host access links, and the hub segments.
  const std::size_t hubs =
      config.hub_every > 0 ? leaves / config.hub_every : 0;
  const std::size_t edges = (config.spines - 1) +
                            leaves * (1 + config.hosts_per_leaf) +
                            hubs * (1 + config.hub_hosts);
  return 2 * edges;
}

std::size_t fabric_leaf_count(const FabricConfig& config) {
  if (config.spines == 0) {
    throw std::invalid_argument("fabric needs at least one spine");
  }
  std::size_t leaves = 1;
  while (projected_interface_count(config, leaves) <
         config.target_interfaces) {
    ++leaves;
  }
  return leaves;
}

NetworkTopology generate_fabric(const FabricConfig& config) {
  const std::size_t leaves = fabric_leaf_count(config);
  NetworkTopology topo;
  Xoshiro256 rng(config.seed);
  std::size_t next_address = 1;

  // Spines, SNMP-managed: one 1 Gbps port per attached leaf. The
  // simulator's learning switches flood unknown destinations with no
  // spanning tree, so the fabric must be loop-free: each leaf uplinks
  // to exactly one spine (round-robin) and spines 1..S-1 trunk to
  // spine0, which roots the tree.
  for (std::size_t s = 0; s < config.spines; ++s) {
    NodeSpec spine;
    spine.name = "spine" + std::to_string(s);
    spine.kind = NodeKind::kSwitch;
    spine.snmp_enabled = true;
    spine.management_ipv4 = ordinal_ipv4(next_address++);
    spine.default_speed = mbps(1000);
    if (s == 0) {
      for (std::size_t peer = 1; peer < config.spines; ++peer) {
        spine.interfaces.push_back({"s" + std::to_string(peer), 0, ""});
      }
    } else {
      spine.interfaces.push_back({"u0", 0, ""});
    }
    // Leaf l attaches to spine l % spines as its (l / spines)-th port.
    for (std::size_t l = s; l < leaves; l += config.spines) {
      spine.interfaces.push_back(
          {"p" + std::to_string(l / config.spines), 0, ""});
    }
    topo.add_node(std::move(spine));
    if (s > 0) {
      topo.add_connection({{"spine0", "s" + std::to_string(s)},
                           {"spine" + std::to_string(s), "u0"}});
    }
  }

  for (std::size_t l = 0; l < leaves; ++l) {
    const std::string leaf_name = "leaf" + std::to_string(l);
    const bool has_hub =
        config.hub_every > 0 && (l + 1) % config.hub_every == 0;

    NodeSpec leaf;
    leaf.name = leaf_name;
    leaf.kind = NodeKind::kSwitch;
    leaf.snmp_enabled = true;
    leaf.management_ipv4 = ordinal_ipv4(next_address++);
    leaf.default_speed = mbps(100);
    leaf.interfaces.push_back({"u0", mbps(1000), ""});
    for (std::size_t h = 0; h < config.hosts_per_leaf; ++h) {
      leaf.interfaces.push_back({"p" + std::to_string(h), 0, ""});
    }
    if (has_hub) {
      leaf.interfaces.push_back({"hub", mbps(10), ""});
    }
    topo.add_node(std::move(leaf));

    topo.add_connection(
        {{"spine" + std::to_string(l % config.spines),
          "p" + std::to_string(l / config.spines)},
         {leaf_name, "u0"}});

    for (std::size_t h = 0; h < config.hosts_per_leaf; ++h) {
      NodeSpec host;
      host.name = leaf_name + "h" + std::to_string(h);
      host.kind = NodeKind::kHost;
      host.snmp_enabled = true;
      host.os = draw_os(rng);
      host.interfaces.push_back(
          {"eth0", mbps(100), ordinal_ipv4(next_address++)});
      topo.add_node(std::move(host));
      topo.add_connection({{leaf_name + "h" + std::to_string(h), "eth0"},
                           {leaf_name, "p" + std::to_string(h)}});
    }

    if (has_hub) {
      const std::string hub_name = "hub" + std::to_string(l);
      NodeSpec hub;
      hub.name = hub_name;
      hub.kind = NodeKind::kHub;
      hub.default_speed = mbps(10);
      hub.interfaces.push_back({"h0", 0, ""});  // uplink to the leaf
      for (std::size_t h = 0; h < config.hub_hosts; ++h) {
        hub.interfaces.push_back({"h" + std::to_string(h + 1), 0, ""});
      }
      topo.add_node(std::move(hub));
      topo.add_connection({{hub_name, "h0"}, {leaf_name, "hub"}});

      for (std::size_t h = 0; h < config.hub_hosts; ++h) {
        NodeSpec legacy;
        legacy.name = hub_name + "n" + std::to_string(h);
        legacy.kind = NodeKind::kHost;
        legacy.snmp_enabled = true;
        legacy.os = draw_os(rng);
        legacy.interfaces.push_back(
            {"e0", mbps(10), ordinal_ipv4(next_address++)});
        topo.add_node(std::move(legacy));
        topo.add_connection({{hub_name + "n" + std::to_string(h), "e0"},
                             {hub_name, "h" + std::to_string(h + 1)}});
      }
    }
  }
  return topo;
}

std::string fabric_network_name(const NetworkTopology& topo) {
  std::size_t interfaces = 0;
  for (const NodeSpec& node : topo.nodes()) {
    interfaces += node.interfaces.size();
  }
  return "fabric" + std::to_string(interfaces);
}

}  // namespace netqos::topo
