// Network topology data model.
//
// This is the C++ rendering of the paper's Figure 2 data structures:
// hosts/devices with named interfaces, and 1-to-1 host-pair connections.
// The model is pure data — the spec parser produces it, the simulator
// builder consumes it, and the monitor traverses it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.h"

namespace netqos::topo {

/// What a node is determines the bandwidth-accounting rule the monitor
/// applies to connections incident to it (paper §3.3).
enum class NodeKind { kHost, kSwitch, kHub };

const char* node_kind_name(NodeKind kind);

/// One network interface on a host or device (paper: "Interface").
/// Interfaces are identified by a local name unique within their node.
struct InterfaceSpec {
  std::string local_name;
  BitsPerSecond speed = 0;  ///< MIB-II ifSpeed; 0 = inherit node default
  std::string ipv4;         ///< dotted quad; empty for switch/hub ports
};

/// A host or network device (paper: "Host").
struct NodeSpec {
  std::string name;
  NodeKind kind = NodeKind::kHost;
  bool snmp_enabled = false;      ///< an SNMP daemon runs here
  std::string snmp_community = "public";
  /// Management-plane IPv4 for switches/hubs with an SNMP daemon (ports
  /// themselves carry no IP). Empty for hosts (they use interface IPs).
  std::string management_ipv4;
  std::string os;                 ///< informational (paper Fig. 3 labels)
  BitsPerSecond default_speed = 0;
  std::vector<InterfaceSpec> interfaces;

  const InterfaceSpec* find_interface(const std::string& local_name) const;
  /// Effective ifSpeed for an interface (its own, else the node default).
  BitsPerSecond interface_speed(const InterfaceSpec& itf) const;
};

/// One end of a connection: (node name, interface local name).
struct Endpoint {
  std::string node;
  std::string interface;

  bool operator==(const Endpoint& o) const = default;
  std::string to_string() const { return node + "." + interface; }
};

/// A physical 1-to-1 connection (paper: "HostPairConnection").
struct Connection {
  Endpoint a;
  Endpoint b;

  bool touches(const std::string& node) const {
    return a.node == node || b.node == node;
  }
  /// The endpoint on `node` (requires touches(node)).
  const Endpoint& end_at(const std::string& node) const;
  /// The endpoint NOT on `node` (requires touches(node)).
  const Endpoint& peer_of(const std::string& node) const;
  std::string to_string() const {
    return a.to_string() + " <-> " + b.to_string();
  }
};

/// The full topology (paper: "NetworkTopology").
class NetworkTopology {
 public:
  /// Adds a node; returns its index. Throws std::invalid_argument on a
  /// duplicate name.
  std::size_t add_node(NodeSpec node);

  /// Adds a connection; endpoints are validated lazily by validate().
  std::size_t add_connection(Connection conn);

  const std::vector<NodeSpec>& nodes() const { return nodes_; }
  const std::vector<Connection>& connections() const { return connections_; }

  const NodeSpec* find_node(const std::string& name) const;
  std::optional<std::size_t> node_index(const std::string& name) const;

  /// Indices of connections incident to `node`.
  std::vector<std::size_t> connections_of(const std::string& node) const;

  /// Checks structural invariants and returns human-readable problems:
  ///  - every endpoint references an existing node + interface,
  ///  - connections are 1-to-1 (no interface used by two connections),
  ///  - no self-connections,
  ///  - every interface has a resolvable speed.
  std::vector<std::string> validate() const;

 private:
  std::vector<NodeSpec> nodes_;
  std::vector<Connection> connections_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// Effective speed of a connection: min of its two interface speeds.
/// Throws std::out_of_range if an endpoint is unresolvable.
BitsPerSecond connection_speed(const NetworkTopology& topo,
                               const Connection& conn);

}  // namespace netqos::topo
