#include "topology/model.h"

#include <set>
#include <stdexcept>

namespace netqos::topo {

const char* node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kHost: return "host";
    case NodeKind::kSwitch: return "switch";
    case NodeKind::kHub: return "hub";
  }
  return "?";
}

const InterfaceSpec* NodeSpec::find_interface(
    const std::string& local_name) const {
  for (const auto& itf : interfaces) {
    if (itf.local_name == local_name) return &itf;
  }
  return nullptr;
}

BitsPerSecond NodeSpec::interface_speed(const InterfaceSpec& itf) const {
  return itf.speed != 0 ? itf.speed : default_speed;
}

const Endpoint& Connection::end_at(const std::string& node) const {
  if (a.node == node) return a;
  if (b.node == node) return b;
  throw std::out_of_range("connection " + to_string() + " does not touch " +
                          node);
}

const Endpoint& Connection::peer_of(const std::string& node) const {
  if (a.node == node) return b;
  if (b.node == node) return a;
  throw std::out_of_range("connection " + to_string() + " does not touch " +
                          node);
}

std::size_t NetworkTopology::add_node(NodeSpec node) {
  if (index_.contains(node.name)) {
    throw std::invalid_argument("duplicate node name: " + node.name);
  }
  index_.emplace(node.name, nodes_.size());
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

std::size_t NetworkTopology::add_connection(Connection conn) {
  connections_.push_back(std::move(conn));
  return connections_.size() - 1;
}

const NodeSpec* NetworkTopology::find_node(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &nodes_[it->second];
}

std::optional<std::size_t> NetworkTopology::node_index(
    const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::size_t> NetworkTopology::connections_of(
    const std::string& node) const {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    if (connections_[i].touches(node)) result.push_back(i);
  }
  return result;
}

std::vector<std::string> NetworkTopology::validate() const {
  std::vector<std::string> problems;
  auto check_endpoint = [&](const Endpoint& ep, const Connection& conn) {
    const NodeSpec* node = find_node(ep.node);
    if (node == nullptr) {
      problems.push_back("connection " + conn.to_string() +
                         " references unknown node '" + ep.node + "'");
      return;
    }
    const InterfaceSpec* itf = node->find_interface(ep.interface);
    if (itf == nullptr) {
      problems.push_back("connection " + conn.to_string() +
                         " references unknown interface '" + ep.to_string() +
                         "'");
      return;
    }
    if (node->interface_speed(*itf) == 0) {
      problems.push_back("interface " + ep.to_string() +
                         " has no resolvable speed");
    }
  };

  std::set<std::pair<std::string, std::string>> used;
  for (const auto& conn : connections_) {
    check_endpoint(conn.a, conn);
    check_endpoint(conn.b, conn);
    if (conn.a.node == conn.b.node) {
      problems.push_back("self-connection on node '" + conn.a.node + "'");
    }
    for (const Endpoint* ep : {&conn.a, &conn.b}) {
      auto key = std::make_pair(ep->node, ep->interface);
      if (!used.insert(key).second) {
        problems.push_back("interface " + ep->to_string() +
                           " used by more than one connection "
                           "(connections must be 1-to-1)");
      }
    }
  }

  for (const auto& node : nodes_) {
    std::set<std::string> names;
    for (const auto& itf : node.interfaces) {
      if (!names.insert(itf.local_name).second) {
        problems.push_back("node '" + node.name +
                           "' has duplicate interface '" + itf.local_name +
                           "'");
      }
    }
  }
  return problems;
}

BitsPerSecond connection_speed(const NetworkTopology& topo,
                               const Connection& conn) {
  auto speed_of = [&topo](const Endpoint& ep) {
    const NodeSpec* node = topo.find_node(ep.node);
    if (node == nullptr) {
      throw std::out_of_range("unknown node: " + ep.node);
    }
    const InterfaceSpec* itf = node->find_interface(ep.interface);
    if (itf == nullptr) {
      throw std::out_of_range("unknown interface: " + ep.to_string());
    }
    return node->interface_speed(*itf);
  };
  const BitsPerSecond sa = speed_of(conn.a);
  const BitsPerSecond sb = speed_of(conn.b);
  return sa < sb ? sa : sb;
}

}  // namespace netqos::topo
