// Hub collision domains (paper §3.3, hub rule).
//
// A hub repeats every frame out of every port, so all endpoints attached
// to a hub — or to a chain of hubs — share one collision domain: the used
// bandwidth seen by any member is the sum of the traffic of all members.
// This module computes, for a topology, the set of collision domains and
// the membership of each connection.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "topology/model.h"

namespace netqos::topo {

/// One shared-medium domain: the hubs forming it and the connections that
/// attach non-hub endpoints (hosts or switch ports) to it. Hub-to-hub
/// connections are internal and listed separately.
struct CollisionDomain {
  std::vector<std::string> hubs;              ///< hub node names
  std::vector<std::size_t> member_connections;  ///< non-hub attachments
  std::vector<std::size_t> internal_connections;  ///< hub<->hub links
  BitsPerSecond speed = 0;  ///< slowest hub/interface speed in the domain
};

/// Computes all collision domains (one per connected component of hubs).
std::vector<CollisionDomain> collision_domains(const NetworkTopology& topo);

/// Maps each connection index to the collision domain containing it, or
/// nullopt if the connection is switched/point-to-point. Internal hub-hub
/// links map to their domain too.
std::vector<std::optional<std::size_t>> connection_domains(
    const NetworkTopology& topo, const std::vector<CollisionDomain>& domains);

}  // namespace netqos::topo
