#include "topology/path.h"

#include <deque>
#include <set>
#include <stdexcept>

namespace netqos::topo {
namespace {

/// DFS helper shared by traverse_recursive and all_simple_paths.
/// Returns true when `collect_all` is false and a path has been found.
bool dfs(const NetworkTopology& topo, const std::string& here,
         const std::string& to, std::set<std::string>& visited, Path& stack,
         std::vector<Path>& out, bool collect_all, std::size_t max_paths) {
  if (here == to) {
    out.push_back(stack);
    return !collect_all || out.size() >= max_paths;
  }
  visited.insert(here);
  for (std::size_t ci : topo.connections_of(here)) {
    const Connection& conn = topo.connections()[ci];
    const std::string& next = conn.peer_of(here).node;
    if (visited.contains(next)) continue;  // infinite-loop detection
    stack.push_back(ci);
    if (dfs(topo, next, to, visited, stack, out, collect_all, max_paths)) {
      return true;
    }
    stack.pop_back();
  }
  visited.erase(here);
  return false;
}

}  // namespace

std::optional<Path> traverse_recursive(const NetworkTopology& topo,
                                       const std::string& from,
                                       const std::string& to) {
  if (topo.find_node(from) == nullptr || topo.find_node(to) == nullptr) {
    return std::nullopt;
  }
  std::set<std::string> visited;
  Path stack;
  std::vector<Path> out;
  dfs(topo, from, to, visited, stack, out, /*collect_all=*/false, 1);
  if (out.empty()) return std::nullopt;
  return out.front();
}

std::optional<Path> shortest_path(const NetworkTopology& topo,
                                  const std::string& from,
                                  const std::string& to) {
  if (topo.find_node(from) == nullptr || topo.find_node(to) == nullptr) {
    return std::nullopt;
  }
  if (from == to) return Path{};

  // parent[node] = connection index that first reached it.
  std::unordered_map<std::string, std::size_t> parent;
  std::set<std::string> seen{from};
  std::deque<std::string> queue{from};
  while (!queue.empty()) {
    const std::string here = queue.front();
    queue.pop_front();
    for (std::size_t ci : topo.connections_of(here)) {
      const std::string& next = topo.connections()[ci].peer_of(here).node;
      if (!seen.insert(next).second) continue;
      parent[next] = ci;
      if (next == to) {
        // Reconstruct backwards.
        Path rev;
        std::string walk = to;
        while (walk != from) {
          const std::size_t pc = parent.at(walk);
          rev.push_back(pc);
          walk = topo.connections()[pc].peer_of(walk).node;
        }
        return Path(rev.rbegin(), rev.rend());
      }
      queue.push_back(next);
    }
  }
  return std::nullopt;
}

std::vector<Path> all_simple_paths(const NetworkTopology& topo,
                                   const std::string& from,
                                   const std::string& to,
                                   std::size_t max_paths) {
  std::vector<Path> out;
  if (topo.find_node(from) == nullptr || topo.find_node(to) == nullptr) {
    return out;
  }
  std::set<std::string> visited;
  Path stack;
  dfs(topo, from, to, visited, stack, out, /*collect_all=*/true, max_paths);
  return out;
}

std::string path_to_string(const NetworkTopology& topo, const Path& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out += " | ";
    out += topo.connections()[path[i]].to_string();
  }
  return out;
}

std::vector<std::string> path_nodes(const NetworkTopology& topo,
                                    const Path& path,
                                    const std::string& from) {
  std::vector<std::string> nodes{from};
  std::string here = from;
  for (std::size_t ci : path) {
    if (ci >= topo.connections().size()) {
      throw std::invalid_argument("path references invalid connection index");
    }
    const Connection& conn = topo.connections()[ci];
    if (!conn.touches(here)) {
      throw std::invalid_argument("path is not a chain at node '" + here +
                                  "'");
    }
    here = conn.peer_of(here).node;
    nodes.push_back(here);
  }
  return nodes;
}

}  // namespace netqos::topo
