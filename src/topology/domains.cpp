#include "topology/domains.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

namespace netqos::topo {

std::vector<CollisionDomain> collision_domains(const NetworkTopology& topo) {
  std::vector<CollisionDomain> domains;
  std::set<std::string> assigned;

  for (const auto& node : topo.nodes()) {
    if (node.kind != NodeKind::kHub || assigned.contains(node.name)) continue;

    // Flood-fill across hub-to-hub connections.
    CollisionDomain dom;
    std::vector<std::string> frontier{node.name};
    assigned.insert(node.name);
    while (!frontier.empty()) {
      const std::string hub = frontier.back();
      frontier.pop_back();
      dom.hubs.push_back(hub);
      for (std::size_t ci : topo.connections_of(hub)) {
        const Connection& conn = topo.connections()[ci];
        const std::string& peer = conn.peer_of(hub).node;
        const NodeSpec* peer_node = topo.find_node(peer);
        if (peer_node != nullptr && peer_node->kind == NodeKind::kHub) {
          dom.internal_connections.push_back(ci);
          if (assigned.insert(peer).second) frontier.push_back(peer);
        } else {
          dom.member_connections.push_back(ci);
        }
      }
    }

    // Deduplicate internal links (seen once from each side).
    std::sort(dom.internal_connections.begin(), dom.internal_connections.end());
    dom.internal_connections.erase(
        std::unique(dom.internal_connections.begin(),
                    dom.internal_connections.end()),
        dom.internal_connections.end());
    std::sort(dom.member_connections.begin(), dom.member_connections.end());

    // Domain speed: slowest connection in the domain (the medium's rate).
    BitsPerSecond speed = std::numeric_limits<BitsPerSecond>::max();
    auto consider = [&](std::size_t ci) {
      speed = std::min(speed, connection_speed(topo, topo.connections()[ci]));
    };
    for (std::size_t ci : dom.member_connections) consider(ci);
    for (std::size_t ci : dom.internal_connections) consider(ci);
    dom.speed = (speed == std::numeric_limits<BitsPerSecond>::max()) ? 0 : speed;

    domains.push_back(std::move(dom));
  }
  return domains;
}

std::vector<std::optional<std::size_t>> connection_domains(
    const NetworkTopology& topo,
    const std::vector<CollisionDomain>& domains) {
  std::vector<std::optional<std::size_t>> map(topo.connections().size());
  for (std::size_t d = 0; d < domains.size(); ++d) {
    for (std::size_t ci : domains[d].member_connections) map[ci] = d;
    for (std::size_t ci : domains[d].internal_connections) map[ci] = d;
  }
  return map;
}

}  // namespace netqos::topo
