// Synthetic hierarchical fabric generation.
//
// The paper's Figure 3 testbed tops out at ten nodes; exercising the
// sharded pollers and the batched SNMP hot path needs fabrics in the
// hundreds to thousands of interfaces. This generator grows a two-tier
// spine/leaf core with the paper's mixed edge hanging off it: every
// hub_every-th leaf carries a shared 10 Mbps hub segment with legacy
// hosts behind it, exactly the §4.1 accounting case (hub traffic
// measured at the switch port feeding it). The fabric is a tree — each
// leaf uplinks to one spine (round-robin) and spines trunk to spine0 —
// because the simulated learning switches flood unknown destinations
// with no spanning tree, so any redundant path would loop broadcasts.
//
// Everything is deterministic: node names and addresses are ordinal,
// and the only randomness (OS labels on hosts) draws from a
// Xoshiro256 stream seeded by FabricConfig::seed, so the same config
// always yields a bit-identical topology.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "topology/model.h"

namespace netqos::topo {

struct FabricConfig {
  /// The generator picks the smallest leaf count whose fabric reaches
  /// at least this many interfaces (see projected_interface_count).
  std::size_t target_interfaces = 1000;
  std::size_t spines = 4;
  std::size_t hosts_per_leaf = 24;
  /// Every hub_every-th leaf gets a hub edge segment (0 = none).
  std::size_t hub_every = 8;
  /// Legacy hosts behind each hub.
  std::size_t hub_hosts = 3;
  std::uint64_t seed = 1;
};

/// Interfaces a fabric with `leaves` leaf switches will contain: two
/// per connection, over spines-1 spine trunks, one uplink plus
/// hosts_per_leaf access links per leaf, and 1 + hub_hosts links per
/// hub segment.
std::size_t projected_interface_count(const FabricConfig& config,
                                      std::size_t leaves);

/// Smallest leaf count reaching config.target_interfaces (at least 1).
std::size_t fabric_leaf_count(const FabricConfig& config);

/// Generates the fabric. The result passes NetworkTopology::validate().
NetworkTopology generate_fabric(const FabricConfig& config);

/// Conventional name for a generated fabric's spec ("fabric<N>" where N
/// is the interface count) — used by benches when writing spec files.
std::string fabric_network_name(const NetworkTopology& topo);

}  // namespace netqos::topo
