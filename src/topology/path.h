// Communication-path traversal (paper §3.3).
//
// The paper traverses the path between two hosts with "a simple recursive
// algorithm ... with a necessary infinite-loop detecting function" and
// describes the result as a series of network connections. We implement
// that algorithm faithfully (traverse_recursive) plus a BFS variant
// (shortest_path) that is guaranteed minimal in hop count, and an
// exhaustive all_simple_paths for diagnostics.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "topology/model.h"

namespace netqos::topo {

/// A path is an ordered list of connection indices into
/// NetworkTopology::connections(), from source towards destination.
using Path = std::vector<std::size_t>;

/// The paper's recursive depth-first traversal with a visited set (the
/// "infinite-loop detecting function"). Returns the first path found, or
/// nullopt if the hosts are not connected. Deterministic: neighbours are
/// explored in connection-index order.
std::optional<Path> traverse_recursive(const NetworkTopology& topo,
                                       const std::string& from,
                                       const std::string& to);

/// Breadth-first shortest path in hop count (ties broken by connection
/// index order). Returns nullopt if unreachable.
std::optional<Path> shortest_path(const NetworkTopology& topo,
                                  const std::string& from,
                                  const std::string& to);

/// All simple (loop-free) paths between two nodes, in DFS order. Intended
/// for diagnostics and tests; exponential in the worst case.
std::vector<Path> all_simple_paths(const NetworkTopology& topo,
                                   const std::string& from,
                                   const std::string& to,
                                   std::size_t max_paths = 64);

/// Renders a path as "A.eth0 <-> sw.p1 | sw.p2 <-> B.eth0".
std::string path_to_string(const NetworkTopology& topo, const Path& path);

/// The sequence of node names visited by a path starting at `from`
/// (inclusive of both ends). Throws std::invalid_argument if the path is
/// not a valid chain from `from`.
std::vector<std::string> path_nodes(const NetworkTopology& topo,
                                    const Path& path,
                                    const std::string& from);

}  // namespace netqos::topo
