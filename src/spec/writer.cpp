#include "spec/writer.h"

#include <sstream>

namespace netqos::spec {

std::string write_bandwidth(BitsPerSecond bps) {
  if (bps != 0 && bps % kGbps == 0) {
    return std::to_string(bps / kGbps) + "Gbps";
  }
  if (bps != 0 && bps % kMbps == 0) {
    return std::to_string(bps / kMbps) + "Mbps";
  }
  if (bps != 0 && bps % kKbps == 0) {
    return std::to_string(bps / kKbps) + "Kbps";
  }
  return std::to_string(bps) + "bps";
}

std::string write_spec(const SpecFile& file) {
  std::ostringstream out;
  out << "network " << file.network_name << " {\n";

  for (const auto& node : file.topology.nodes()) {
    out << "  " << topo::node_kind_name(node.kind) << " " << node.name
        << " {\n";
    if (!node.os.empty()) out << "    os \"" << node.os << "\";\n";
    if (node.snmp_enabled) {
      out << "    snmp on";
      if (node.snmp_community != "public") {
        out << " community \"" << node.snmp_community << "\"";
      }
      out << ";\n";
    }
    if (!node.management_ipv4.empty()) {
      out << "    management address " << node.management_ipv4 << ";\n";
    }
    if (node.default_speed != 0) {
      out << "    speed " << write_bandwidth(node.default_speed) << ";\n";
    }
    for (const auto& itf : node.interfaces) {
      out << "    interface " << itf.local_name;
      const bool has_block = itf.speed != 0 || !itf.ipv4.empty();
      if (has_block) {
        out << " {";
        if (itf.speed != 0) {
          out << " speed " << write_bandwidth(itf.speed) << ";";
        }
        if (!itf.ipv4.empty()) out << " address " << itf.ipv4 << ";";
        out << " }\n";
      } else {
        out << ";\n";
      }
    }
    out << "  }\n";
  }

  for (const auto& conn : file.topology.connections()) {
    out << "  connect " << conn.a.to_string() << " <-> "
        << conn.b.to_string() << ";\n";
  }
  out << "}\n";

  if (!file.qos.empty()) {
    out << "qos {\n";
    for (const auto& req : file.qos) {
      out << "  path " << req.from << " <-> " << req.to
          << " { min_available " << write_bandwidth(req.min_available_bps)
          << "; }\n";
    }
    out << "}\n";
  }
  return out.str();
}

}  // namespace netqos::spec
