// The paper's LIRTSS testbed (Figure 3) as a specification file.
//
// One 100 Mbps switch and one 10 Mbps hub. Linux monitor host L, Solaris
// hosts S1/S2 (SNMP) and S3-S6 (no SNMP) on the switch; Windows NT hosts
// N1/N2 (SNMP) on the hub, which uplinks to the switch. SNMP daemons run
// on L, N1, N2, S1, S2, and the switch — exactly the §4.1 arrangement.
#pragma once

#include <string>

#include "spec/parser.h"

namespace netqos::spec {

/// The spec-language source describing the Figure 3 testbed.
std::string lirtss_spec_text();

/// Parsed form of lirtss_spec_text().
SpecFile lirtss_testbed();

}  // namespace netqos::spec
