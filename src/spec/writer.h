// Serializes a topology back to specification-language text.
//
// Used by the dynamic-discovery extension (paper §5 future work) to emit
// a spec for what it found, and by round-trip tests on the parser.
#pragma once

#include <string>

#include "spec/parser.h"

namespace netqos::spec {

/// Renders a SpecFile as parseable spec source. parse_spec(write_spec(f))
/// reproduces the same topology.
std::string write_spec(const SpecFile& file);

/// Renders a bandwidth with the largest exact unit (e.g. "100Mbps").
std::string write_bandwidth(BitsPerSecond bps);

}  // namespace netqos::spec
