#include "spec/parser.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace netqos::spec {
namespace {

bool is_ipv4_literal(const std::string& text) {
  int dots = 0;
  for (char c : text) {
    if (c == '.') {
      ++dots;
    } else if (c < '0' || c > '9') {
      return false;
    }
  }
  return dots == 3;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  SpecFile parse() {
    SpecFile file;
    expect_keyword("network");
    file.network_name = expect_atom("network name");
    expect(TokenKind::kLBrace);
    while (!at(TokenKind::kRBrace)) {
      const Token& tok = peek();
      if (tok.kind != TokenKind::kAtom) {
        fail("expected node or connect statement", tok);
      }
      if (tok.text == "host" || tok.text == "switch" || tok.text == "hub") {
        parse_node(file.topology);
      } else if (tok.text == "connect") {
        parse_connect(file.topology);
      } else {
        fail("expected 'host', 'switch', 'hub', or 'connect', got '" +
                 tok.text + "'",
             tok);
      }
    }
    expect(TokenKind::kRBrace);

    if (at_keyword("qos")) {
      parse_qos(file);
    }
    expect(TokenKind::kEnd);

    const auto problems = file.topology.validate();
    if (!problems.empty()) {
      std::string all = "invalid topology:";
      for (const auto& p : problems) all += "\n  - " + p;
      fail(all, peek());
    }
    return file;
  }

 private:
  void parse_node(topo::NetworkTopology& topo) {
    const Token kind_tok = next();
    topo::NodeSpec node;
    if (kind_tok.text == "host") {
      node.kind = topo::NodeKind::kHost;
    } else if (kind_tok.text == "switch") {
      node.kind = topo::NodeKind::kSwitch;
    } else {
      node.kind = topo::NodeKind::kHub;
    }
    node.name = expect_atom("node name");
    expect(TokenKind::kLBrace);
    while (!at(TokenKind::kRBrace)) {
      parse_node_attr(node);
    }
    expect(TokenKind::kRBrace);
    try {
      topo.add_node(std::move(node));
    } catch (const std::invalid_argument& e) {
      fail(e.what(), kind_tok);
    }
  }

  void parse_node_attr(topo::NodeSpec& node) {
    const Token tok = next();
    if (tok.kind != TokenKind::kAtom) fail("expected node attribute", tok);

    if (tok.text == "os") {
      node.os = expect_atom_or_string("os value");
      expect(TokenKind::kSemicolon);
    } else if (tok.text == "snmp") {
      const std::string mode = expect_atom("'on' or 'off'");
      if (mode == "on") {
        node.snmp_enabled = true;
      } else if (mode == "off") {
        node.snmp_enabled = false;
      } else {
        fail("snmp must be 'on' or 'off', got '" + mode + "'", tok);
      }
      if (at_keyword("community")) {
        next();
        node.snmp_community = expect_atom_or_string("community string");
      }
      expect(TokenKind::kSemicolon);
    } else if (tok.text == "management") {
      expect_keyword("address");
      const Token addr = next();
      if (addr.kind != TokenKind::kAtom || !is_ipv4_literal(addr.text)) {
        fail("expected IPv4 address", addr);
      }
      node.management_ipv4 = addr.text;
      expect(TokenKind::kSemicolon);
    } else if (tok.text == "speed") {
      const Token value = next();
      if (value.kind != TokenKind::kAtom) fail("expected bandwidth", value);
      node.default_speed =
          parse_bandwidth(value.text, value.line, value.column);
      expect(TokenKind::kSemicolon);
    } else if (tok.text == "interface") {
      topo::InterfaceSpec itf;
      itf.local_name = expect_atom("interface name");
      if (at(TokenKind::kLBrace)) {
        next();
        while (!at(TokenKind::kRBrace)) {
          parse_interface_attr(itf);
        }
        expect(TokenKind::kRBrace);
      }
      if (at(TokenKind::kSemicolon)) next();  // optional after a block
      node.interfaces.push_back(std::move(itf));
    } else {
      fail("unknown node attribute '" + tok.text + "'", tok);
    }
  }

  void parse_interface_attr(topo::InterfaceSpec& itf) {
    const Token tok = next();
    if (tok.kind != TokenKind::kAtom) {
      fail("expected interface attribute", tok);
    }
    if (tok.text == "speed") {
      const Token value = next();
      if (value.kind != TokenKind::kAtom) fail("expected bandwidth", value);
      itf.speed = parse_bandwidth(value.text, value.line, value.column);
      expect(TokenKind::kSemicolon);
    } else if (tok.text == "address") {
      const Token addr = next();
      if (addr.kind != TokenKind::kAtom || !is_ipv4_literal(addr.text)) {
        fail("expected IPv4 address", addr);
      }
      itf.ipv4 = addr.text;
      expect(TokenKind::kSemicolon);
    } else {
      fail("unknown interface attribute '" + tok.text + "'", tok);
    }
  }

  void parse_connect(topo::NetworkTopology& topo) {
    next();  // 'connect'
    topo::Connection conn;
    conn.a = parse_endpoint();
    expect(TokenKind::kArrow);
    conn.b = parse_endpoint();
    expect(TokenKind::kSemicolon);
    topo.add_connection(std::move(conn));
  }

  topo::Endpoint parse_endpoint() {
    const Token tok = next();
    if (tok.kind != TokenKind::kAtom) {
      fail("expected endpoint 'node.interface'", tok);
    }
    const std::size_t dot = tok.text.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 >= tok.text.size() ||
        tok.text.find('.', dot + 1) != std::string::npos) {
      fail("endpoint must be 'node.interface', got '" + tok.text + "'", tok);
    }
    return topo::Endpoint{tok.text.substr(0, dot), tok.text.substr(dot + 1)};
  }

  void parse_qos(SpecFile& file) {
    next();  // 'qos'
    expect(TokenKind::kLBrace);
    while (!at(TokenKind::kRBrace)) {
      expect_keyword("path");
      QosRequirement req;
      req.from = expect_atom("host name");
      expect(TokenKind::kArrow);
      req.to = expect_atom("host name");
      expect(TokenKind::kLBrace);
      expect_keyword("min_available");
      const Token value = next();
      if (value.kind != TokenKind::kAtom) fail("expected bandwidth", value);
      req.min_available_bps =
          parse_bandwidth(value.text, value.line, value.column);
      expect(TokenKind::kSemicolon);
      expect(TokenKind::kRBrace);

      for (const auto* host : {&req.from, &req.to}) {
        if (file.topology.find_node(*host) == nullptr) {
          fail("qos path references unknown host '" + *host + "'", value);
        }
      }
      file.qos.push_back(std::move(req));
    }
    expect(TokenKind::kRBrace);
  }

  // --- token helpers -----------------------------------------------------

  const Token& peek() const { return tokens_[pos_]; }
  bool at(TokenKind kind) const { return peek().kind == kind; }
  bool at_keyword(const std::string& word) const {
    return peek().kind == TokenKind::kAtom && peek().text == word;
  }

  Token next() {
    const Token tok = tokens_[pos_];
    if (tok.kind != TokenKind::kEnd) ++pos_;
    return tok;
  }

  void expect(TokenKind kind) {
    const Token tok = next();
    if (tok.kind != kind) {
      fail(std::string("expected ") + token_kind_name(kind) + ", got " +
               token_kind_name(tok.kind),
           tok);
    }
  }

  void expect_keyword(const std::string& word) {
    const Token tok = next();
    if (tok.kind != TokenKind::kAtom || tok.text != word) {
      fail("expected '" + word + "'", tok);
    }
  }

  std::string expect_atom(const std::string& what) {
    const Token tok = next();
    if (tok.kind != TokenKind::kAtom) {
      fail("expected " + what, tok);
    }
    return tok.text;
  }

  std::string expect_atom_or_string(const std::string& what) {
    const Token tok = next();
    if (tok.kind != TokenKind::kAtom && tok.kind != TokenKind::kString) {
      fail("expected " + what, tok);
    }
    return tok.text;
  }

  [[noreturn]] void fail(const std::string& message, const Token& at) const {
    throw ParseError(message, at.line, at.column);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

BitsPerSecond parse_bandwidth(const std::string& text, std::size_t line,
                              std::size_t column) {
  std::size_t digits = 0;
  while (digits < text.size() &&
         ((text[digits] >= '0' && text[digits] <= '9') ||
          text[digits] == '.')) {
    ++digits;
  }
  if (digits == 0) {
    throw ParseError("expected bandwidth, got '" + text + "'", line, column);
  }
  const double number = std::strtod(text.substr(0, digits).c_str(), nullptr);
  const std::string unit = text.substr(digits);

  // All multipliers come from common/units.h so the byte-unit suffixes
  // stay consistent with the one sanctioned bits-per-byte factor (R3).
  double multiplier = 1.0;
  if (unit.empty() || unit == "bps") {
    multiplier = 1.0;
  } else if (unit == "Kbps" || unit == "kbps") {
    multiplier = static_cast<double>(kKbps);
  } else if (unit == "Mbps" || unit == "mbps") {
    multiplier = static_cast<double>(kMbps);
  } else if (unit == "Gbps" || unit == "gbps") {
    multiplier = static_cast<double>(kGbps);
  } else if (unit == "Bps") {
    multiplier = static_cast<double>(kBitsPerByte);
  } else if (unit == "KBps") {
    multiplier = static_cast<double>(kBitsPerByte * kKbps);
  } else if (unit == "MBps") {
    multiplier = static_cast<double>(kBitsPerByte * kMbps);
  } else {
    throw ParseError("unknown bandwidth unit '" + unit + "'", line, column);
  }
  const double bps = number * multiplier;
  if (bps < 0 || bps > 1e18) {
    throw ParseError("bandwidth out of range: '" + text + "'", line, column);
  }
  return static_cast<BitsPerSecond>(bps);
}

SpecFile parse_spec(const std::string& source) {
  return Parser(lex(source)).parse();
}

SpecFile parse_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read spec file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_spec(buffer.str());
}

}  // namespace netqos::spec
