// Tokens for the network-resource specification language.
//
// The language (an extension of the DeSiDeRaTa specification language in
// the paper's reference [12]) describes hosts, network devices,
// interfaces, and connections. The lexer is deliberately permissive about
// "atoms": identifiers, IPv4 literals, and unit-suffixed numbers all lex
// as kAtom and are classified by the parser in context.
#pragma once

#include <cstddef>
#include <string>

namespace netqos::spec {

enum class TokenKind {
  kAtom,      // lirtss, eth0, 10.0.0.1, 100Mbps, connect, ...
  kString,    // "Solaris 7"
  kLBrace,    // {
  kRBrace,    // }
  kSemicolon, // ;
  kArrow,     // <->
  kEnd,       // end of input
};

const char* token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   ///< atom/string content (strings without quotes)
  std::size_t line = 1;
  std::size_t column = 1;
};

}  // namespace netqos::spec
