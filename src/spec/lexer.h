// Lexer for the specification language.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "spec/token.h"

namespace netqos::spec {

/// Parse/lex failure with source position.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t line, std::size_t column)
      : std::runtime_error("spec:" + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + message),
        line_(line),
        column_(column) {}

  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Tokenizes a whole spec source. '#' and '//' start line comments.
/// Throws ParseError on unterminated strings or illegal characters.
std::vector<Token> lex(const std::string& source);

}  // namespace netqos::spec
