#include "spec/testbed.h"

namespace netqos::spec {

std::string lirtss_spec_text() {
  return R"(# LIRTSS laboratory testbed, paper Figure 3.
network lirtss {
  host L {
    os "Linux";
    snmp on;
    interface eth0 { speed 100Mbps; address 10.0.0.1; }
  }
  host S1 {
    os "Solaris 7";
    snmp on;
    interface hme0 { speed 100Mbps; address 10.0.0.11; }
  }
  host S2 {
    os "Solaris 7";
    snmp on;
    interface hme0 { speed 100Mbps; address 10.0.0.12; }
  }
  host S3 { os "Solaris"; interface hme0 { speed 100Mbps; address 10.0.0.13; } }
  host S4 { os "Solaris"; interface hme0 { speed 100Mbps; address 10.0.0.14; } }
  host S5 { os "Solaris"; interface hme0 { speed 100Mbps; address 10.0.0.15; } }
  host S6 { os "Solaris"; interface hme0 { speed 100Mbps; address 10.0.0.16; } }
  host N1 {
    os "Windows NT";
    snmp on;
    interface e0 { speed 10Mbps; address 10.0.0.21; }
  }
  host N2 {
    os "Windows NT";
    snmp on;
    interface e0 { speed 10Mbps; address 10.0.0.22; }
  }

  switch sw0 {
    snmp on;
    management address 10.0.0.100;
    speed 100Mbps;
    interface p1; interface p2; interface p3; interface p4;
    interface p5; interface p6; interface p7;
    interface p8 { speed 10Mbps; }   # uplink to the hub
  }
  hub hub0 {
    speed 10Mbps;
    interface h1; interface h2; interface h3;
  }

  connect L.eth0  <-> sw0.p1;
  connect S1.hme0 <-> sw0.p2;
  connect S2.hme0 <-> sw0.p3;
  connect S3.hme0 <-> sw0.p4;
  connect S4.hme0 <-> sw0.p5;
  connect S5.hme0 <-> sw0.p6;
  connect S6.hme0 <-> sw0.p7;
  connect hub0.h1 <-> sw0.p8;
  connect N1.e0   <-> hub0.h2;
  connect N2.e0   <-> hub0.h3;
}
qos {
  path S1 <-> N1 { min_available 4Mbps; }
  path S1 <-> S2 { min_available 50Mbps; }
}
)";
}

SpecFile lirtss_testbed() { return parse_spec(lirtss_spec_text()); }

}  // namespace netqos::spec
