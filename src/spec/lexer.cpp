#include "spec/lexer.h"

namespace netqos::spec {

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kAtom: return "atom";
    case TokenKind::kString: return "string";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kArrow: return "'<->'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

namespace {

bool is_atom_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-' ||
         c == ':';
}

}  // namespace

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t column = 1;
  std::size_t i = 0;

  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < source.size(); ++k, ++i) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };

  while (i < source.size()) {
    const char c = source[i];

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < source.size() &&
                     source[i + 1] == '/')) {
      while (i < source.size() && source[i] != '\n') advance();
      continue;
    }

    const std::size_t tok_line = line;
    const std::size_t tok_col = column;

    if (c == '{') {
      tokens.push_back({TokenKind::kLBrace, "{", tok_line, tok_col});
      advance();
    } else if (c == '}') {
      tokens.push_back({TokenKind::kRBrace, "}", tok_line, tok_col});
      advance();
    } else if (c == ';') {
      tokens.push_back({TokenKind::kSemicolon, ";", tok_line, tok_col});
      advance();
    } else if (c == '<') {
      if (source.compare(i, 3, "<->") != 0) {
        throw ParseError("expected '<->'", tok_line, tok_col);
      }
      tokens.push_back({TokenKind::kArrow, "<->", tok_line, tok_col});
      advance(3);
    } else if (c == '"') {
      advance();
      std::string text;
      while (i < source.size() && source[i] != '"') {
        if (source[i] == '\n') {
          throw ParseError("unterminated string", tok_line, tok_col);
        }
        text += source[i];
        advance();
      }
      if (i >= source.size()) {
        throw ParseError("unterminated string", tok_line, tok_col);
      }
      advance();  // closing quote
      tokens.push_back({TokenKind::kString, std::move(text), tok_line,
                        tok_col});
    } else if (is_atom_char(c)) {
      std::string text;
      while (i < source.size() && is_atom_char(source[i])) {
        text += source[i];
        advance();
      }
      tokens.push_back({TokenKind::kAtom, std::move(text), tok_line,
                        tok_col});
    } else {
      throw ParseError(std::string("unexpected character '") + c + "'",
                       tok_line, tok_col);
    }
  }

  tokens.push_back({TokenKind::kEnd, "", line, column});
  return tokens;
}

}  // namespace netqos::spec
