// Recursive-descent parser for the specification language.
//
// Grammar (EBNF; atoms classified in context):
//
//   file        := network-block [qos-block]
//   network     := "network" name "{" node* connect* "}"
//                  (node and connect statements may interleave)
//   node        := ("host" | "switch" | "hub") name "{" node-attr* "}"
//   node-attr   := "os" (atom | string) ";"
//                | "snmp" ("on" | "off") ["community" (atom|string)] ";"
//                | "management" "address" ipv4 ";"
//                | "speed" bandwidth ";"                 (node default)
//                | "interface" name [ "{" if-attr* "}" ] ";"?
//   if-attr     := "speed" bandwidth ";" | "address" ipv4 ";"
//   connect     := "connect" endpoint "<->" endpoint ";"
//   endpoint    := node "." interface      (one atom containing a dot)
//   qos-block   := "qos" "{" qos-req* "}"
//   qos-req     := "path" name "<->" name "{" "min_available" bandwidth ";" "}"
//   bandwidth   := NUMBER ("bps"|"Kbps"|"Mbps"|"Gbps"|"KBps"|"MBps")
//
// Example:
//
//   network lirtss {
//     host L { os "Linux"; snmp on;
//       interface eth0 { speed 100Mbps; address 10.0.0.1; } }
//     switch sw0 { snmp on; management address 10.0.0.100; speed 100Mbps;
//       interface p1; interface p2; }
//     connect L.eth0 <-> sw0.p1;
//   }
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "spec/lexer.h"
#include "topology/model.h"

namespace netqos::spec {

/// A network QoS requirement from the qos block: the path between two
/// hosts must keep at least this much available bandwidth.
struct QosRequirement {
  std::string from;
  std::string to;
  BitsPerSecond min_available_bps = 0;
};

/// Everything a spec file declares.
struct SpecFile {
  std::string network_name;
  topo::NetworkTopology topology;
  std::vector<QosRequirement> qos;
};

/// Parses spec source text. Throws ParseError on syntax errors and on
/// structural problems reported by NetworkTopology::validate().
SpecFile parse_spec(const std::string& source);

/// Reads and parses a spec file from disk. Throws std::runtime_error if
/// the file cannot be read, ParseError on bad content.
SpecFile parse_spec_file(const std::string& path);

/// Parses a bandwidth atom like "100Mbps", "64Kbps", "500KBps" (bytes),
/// or a bare bit/s count. Throws ParseError on malformed input.
BitsPerSecond parse_bandwidth(const std::string& text, std::size_t line,
                              std::size_t column);

}  // namespace netqos::spec
