#include "common/byte_buffer.h"

namespace netqos {

void ByteWriter::put_u16(std::uint16_t v) {
  put_u8(static_cast<std::uint8_t>(v >> 8));
  put_u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_u32(std::uint32_t v) {
  put_u16(static_cast<std::uint16_t>(v >> 16));
  put_u16(static_cast<std::uint16_t>(v));
}

void ByteWriter::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v >> 32));
  put_u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::put_string(const std::string& s) {
  out_.insert(out_.end(), s.begin(), s.end());
}

void ByteWriter::patch_u8(std::size_t offset, std::uint8_t v) {
  if (offset >= out_.size()) {
    throw std::out_of_range("ByteWriter::patch_u8 past end");
  }
  out_[offset] = v;
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw BufferUnderflow("need " + std::to_string(n) + " bytes, have " +
                          std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::get_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::get_u16() {
  const auto hi = get_u8();
  return static_cast<std::uint16_t>((hi << 8) | get_u8());
}

std::uint32_t ByteReader::get_u32() {
  const auto hi = get_u16();
  return (static_cast<std::uint32_t>(hi) << 16) | get_u16();
}

std::uint64_t ByteReader::get_u64() {
  const auto hi = get_u32();
  return (static_cast<std::uint64_t>(hi) << 32) | get_u32();
}

std::span<const std::uint8_t> ByteReader::get_bytes(std::size_t n) {
  require(n);
  auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

std::string ByteReader::get_string(std::size_t n) {
  auto view = get_bytes(n);
  return std::string(view.begin(), view.end());
}

std::uint8_t ByteReader::peek_u8() const {
  require(1);
  return data_[pos_];
}

}  // namespace netqos
