// Deterministic pseudo-random number generation.
//
// Everything stochastic in the simulator (background traffic, agent
// processing jitter) draws from explicitly seeded generators so that every
// test and benchmark run is bit-for-bit reproducible. xoshiro256** is used
// for speed; SplitMix64 seeds it and derives independent substreams.
#pragma once

#include <array>
#include <cstdint>

namespace netqos {

/// SplitMix64: tiny, high-quality seeder (Vigna 2015).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies the essential parts of
/// UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64(seed).
  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }
  result_type next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Derives an independent substream generator; `stream` values that
  /// differ yield decorrelated sequences.
  Xoshiro256 fork(std::uint64_t stream) const;

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace netqos
