// Minimal leveled logger.
//
// The simulator is single-threaded, so the logger is deliberately simple:
// a global level, an optional sink override (tests capture output), and
// printf-free formatting via operator<< streaming into a std::ostringstream.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace netqos {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* log_level_name(LogLevel level);

/// Global log configuration. Defaults: level = kWarn, sink = stderr.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel level();
  static void set_level(LogLevel level);

  /// Replaces the output sink; pass nullptr to restore stderr.
  static void set_sink(Sink sink);

  static bool enabled(LogLevel level) { return level >= Log::level(); }
  static void write(LogLevel level, const std::string& message);
};

namespace detail {

/// Builds one log line and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace netqos

#define NETQOS_LOG(level)                      \
  if (!::netqos::Log::enabled(level)) {        \
  } else                                       \
    ::netqos::detail::LogLine(level)

#define NETQOS_TRACE() NETQOS_LOG(::netqos::LogLevel::kTrace)
#define NETQOS_DEBUG() NETQOS_LOG(::netqos::LogLevel::kDebug)
#define NETQOS_INFO() NETQOS_LOG(::netqos::LogLevel::kInfo)
#define NETQOS_WARN() NETQOS_LOG(::netqos::LogLevel::kWarn)
#define NETQOS_ERROR() NETQOS_LOG(::netqos::LogLevel::kError)
