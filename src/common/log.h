// Minimal leveled logger.
//
// The simulator is single-threaded, so the logger is deliberately simple:
// a global level, an optional sink override (tests capture output), and
// printf-free formatting via operator<< streaming into a std::ostringstream.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "common/sim_time.h"

namespace netqos {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* log_level_name(LogLevel level);

/// Global log configuration. Defaults: level = kWarn, sink = stderr.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;
  using TimeSource = std::function<SimTime()>;

  static LogLevel level();
  static void set_level(LogLevel level);

  /// Replaces the output sink; pass nullptr to restore stderr.
  static void set_sink(Sink sink);

  /// When set, every line is prefixed with the simulated time
  /// ("[12.345s] ..."), so log output correlates with trace spans.
  /// Pass nullptr to remove the prefix again.
  static void set_time_source(TimeSource source);

  static bool enabled(LogLevel level) { return level >= Log::level(); }

  /// Emits one line. The level filter has already been applied by the
  /// NETQOS_LOG* macros; write() itself does not re-check it.
  /// `component` tags the line's subsystem ("monitor", "snmp", ...);
  /// nullptr omits the tag.
  static void write(LogLevel level, const char* component,
                    const std::string& message);
  static void write(LogLevel level, const std::string& message) {
    write(level, nullptr, message);
  }
};

namespace detail {

/// Builds one log line and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level, const char* component = nullptr)
      : level_(level), component_(component) {}
  ~LogLine() { Log::write(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace netqos

#define NETQOS_LOG(level)                      \
  if (!::netqos::Log::enabled(level)) {        \
  } else                                       \
    ::netqos::detail::LogLine(level)

/// Component-tagged variant: NETQOS_LOG_C(level, "monitor") << ...;
#define NETQOS_LOG_C(level, component)         \
  if (!::netqos::Log::enabled(level)) {        \
  } else                                       \
    ::netqos::detail::LogLine(level, component)

#define NETQOS_TRACE() NETQOS_LOG(::netqos::LogLevel::kTrace)
#define NETQOS_DEBUG() NETQOS_LOG(::netqos::LogLevel::kDebug)
#define NETQOS_INFO() NETQOS_LOG(::netqos::LogLevel::kInfo)
#define NETQOS_WARN() NETQOS_LOG(::netqos::LogLevel::kWarn)
#define NETQOS_ERROR() NETQOS_LOG(::netqos::LogLevel::kError)

#define NETQOS_TRACE_C(component) \
  NETQOS_LOG_C(::netqos::LogLevel::kTrace, component)
#define NETQOS_DEBUG_C(component) \
  NETQOS_LOG_C(::netqos::LogLevel::kDebug, component)
#define NETQOS_INFO_C(component) \
  NETQOS_LOG_C(::netqos::LogLevel::kInfo, component)
#define NETQOS_WARN_C(component) \
  NETQOS_LOG_C(::netqos::LogLevel::kWarn, component)
#define NETQOS_ERROR_C(component) \
  NETQOS_LOG_C(::netqos::LogLevel::kError, component)
