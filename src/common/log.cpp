#include "common/log.h"

#include <cstdio>
#include <iomanip>

#include "common/sim_time.h"
#include "common/units.h"

namespace netqos {
namespace {

LogLevel g_level = LogLevel::kWarn;
Log::Sink g_sink;              // empty => stderr
Log::TimeSource g_time_source;  // empty => no time prefix

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel Log::level() { return g_level; }
void Log::set_level(LogLevel level) { g_level = level; }
void Log::set_sink(Sink sink) { g_sink = std::move(sink); }
void Log::set_time_source(TimeSource source) {
  g_time_source = std::move(source);
}

void Log::write(LogLevel level, const char* component,
                const std::string& message) {
  // The NETQOS_LOG* macros already filtered on the level; no re-check.
  std::string line;
  if (g_time_source) {
    line += "[" + format_time(g_time_source()) + "] ";
  }
  if (component != nullptr) {
    line += "[";
    line += component;
    line += "] ";
  }
  line += message;
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::fprintf(stderr, "[%s] %s\n", log_level_name(level), line.c_str());
  }
}

std::string format_time(SimTime t) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3) << to_seconds(t) << "s";
  return out.str();
}

std::string format_bandwidth(BitsPerSecond bps) {
  std::ostringstream out;
  auto emit = [&out](double v, const char* suffix) {
    if (v == static_cast<std::uint64_t>(v)) {
      out << static_cast<std::uint64_t>(v) << suffix;
    } else {
      out << std::setprecision(4) << v << suffix;
    }
  };
  if (bps >= kGbps) {
    emit(static_cast<double>(bps) / static_cast<double>(kGbps), "Gbps");
  } else if (bps >= kMbps) {
    emit(static_cast<double>(bps) / static_cast<double>(kMbps), "Mbps");
  } else if (bps >= kKbps) {
    emit(static_cast<double>(bps) / static_cast<double>(kKbps), "Kbps");
  } else {
    out << bps << "bps";
  }
  return out.str();
}

}  // namespace netqos
