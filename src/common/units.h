// Bandwidth and data-size units.
//
// The paper reports loads in Kbytes/second and link speeds in Mbps; MIB-II
// ifSpeed is bits/second. These helpers keep the conversions explicit so
// no call site multiplies by the wrong factor of 8 or 1000.
#pragma once

#include <cstdint>
#include <string>

#include "common/sim_time.h"

namespace netqos {

/// Bits per second. MIB-II ifSpeed semantics (Gauge, bits/sec).
using BitsPerSecond = std::uint64_t;

/// Bytes per second, used for load-generator rates and reported usage.
using BytesPerSecond = double;

inline constexpr BitsPerSecond kKbps = 1'000;
inline constexpr BitsPerSecond kMbps = 1'000'000;
inline constexpr BitsPerSecond kGbps = 1'000'000'000;

/// The one sanctioned factor-of-8. Everything converting between octet
/// counters (bytes) and ifSpeed (bits/s) goes through this constant or
/// the to_*_per_second helpers below — netqos-lint rule R3 rejects raw
/// `* 8` / `/ 8` conversions elsewhere.
inline constexpr std::uint64_t kBitsPerByte = 8;

constexpr BitsPerSecond mbps(std::uint64_t n) { return n * kMbps; }
constexpr BitsPerSecond kbps(std::uint64_t n) { return n * kKbps; }

/// The paper's unit: 1 Kbyte/s == 1000 bytes/s.
constexpr BytesPerSecond kilobytes_per_second(double n) { return n * 1000.0; }

/// Back-conversion for reporting in the paper's Kbytes/s tables.
constexpr double to_kilobytes_per_second(BytesPerSecond b) {
  return b / 1000.0;
}

constexpr BytesPerSecond to_bytes_per_second(BitsPerSecond b) {
  return static_cast<BytesPerSecond>(b) /
         static_cast<double>(kBitsPerByte);
}

constexpr BitsPerSecond to_bits_per_second(BytesPerSecond b) {
  return static_cast<BitsPerSecond>(b * static_cast<double>(kBitsPerByte));
}

/// Time to serialize `bytes` onto a link of speed `speed` (8 bits/byte).
constexpr SimDuration transmission_delay(std::uint64_t bytes,
                                         BitsPerSecond speed) {
  // bytes * 8 / speed seconds, computed in integer ns without overflow for
  // any frame-sized payload and any speed >= 1 bps.
  return static_cast<SimDuration>(
      (static_cast<__int128>(bytes) * 8 * kSecond) / speed);
}

/// Renders a speed like "100Mbps" / "1.5Mbps".
std::string format_bandwidth(BitsPerSecond bps);

}  // namespace netqos
