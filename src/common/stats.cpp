#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netqos {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("histogram needs at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "histogram bounds must be strictly ascending");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

Histogram Histogram::exponential(double start, double factor,
                                 std::size_t count) {
  if (start <= 0.0 || factor <= 1.0 || count == 0) {
    throw std::invalid_argument("bad exponential histogram parameters");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return Histogram(std::move(bounds));
}

void Histogram::add(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  std::size_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t next = cumulative + counts_[b];
    if (static_cast<double>(next) >= rank && counts_[b] > 0) {
      if (b == counts_.size() - 1) return bounds_.back();  // +Inf bucket
      const double lower = b == 0 ? 0.0 : bounds_[b - 1];
      const double upper = bounds_[b];
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(counts_[b]);
      return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds_.back();
}

RunningStats TimeSeries::stats_between(SimTime begin, SimTime end) const {
  RunningStats s;
  for (const auto& p : points_) {
    if (p.time >= begin && p.time < end) s.add(p.value);
  }
  return s;
}

double TimeSeries::mean_between(SimTime begin, SimTime end) const {
  return stats_between(begin, end).mean();
}

double TimeSeries::percentile_between(SimTime begin, SimTime end,
                                      double q) const {
  std::vector<double> values;
  for (const auto& p : points_) {
    if (p.time >= begin && p.time < end) values.push_back(p.value);
  }
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(values.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  if (lower + 1 >= values.size()) return values.back();
  const double fraction = position - static_cast<double>(lower);
  return values[lower] * (1.0 - fraction) + values[lower + 1] * fraction;
}

double TimeSeries::max_relative_error(SimTime begin, SimTime end,
                                      double reference) const {
  if (reference == 0.0) return 0.0;
  double worst = 0.0;
  for (const auto& p : points_) {
    if (p.time >= begin && p.time < end) {
      const double err = std::fabs(p.value - reference) / reference;
      if (err > worst) worst = err;
    }
  }
  return worst;
}

}  // namespace netqos
