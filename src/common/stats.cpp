#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace netqos {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

RunningStats TimeSeries::stats_between(SimTime begin, SimTime end) const {
  RunningStats s;
  for (const auto& p : points_) {
    if (p.time >= begin && p.time < end) s.add(p.value);
  }
  return s;
}

double TimeSeries::mean_between(SimTime begin, SimTime end) const {
  return stats_between(begin, end).mean();
}

double TimeSeries::percentile_between(SimTime begin, SimTime end,
                                      double q) const {
  std::vector<double> values;
  for (const auto& p : points_) {
    if (p.time >= begin && p.time < end) values.push_back(p.value);
  }
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(values.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  if (lower + 1 >= values.size()) return values.back();
  const double fraction = position - static_cast<double>(lower);
  return values[lower] * (1.0 - fraction) + values[lower + 1] * fraction;
}

double TimeSeries::max_relative_error(SimTime begin, SimTime end,
                                      double reference) const {
  if (reference == 0.0) return 0.0;
  double worst = 0.0;
  for (const auto& p : points_) {
    if (p.time >= begin && p.time < end) {
      const double err = std::fabs(p.value - reference) / reference;
      if (err > worst) worst = err;
    }
  }
  return worst;
}

}  // namespace netqos
