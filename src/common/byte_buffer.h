// Bounds-checked byte buffer reader/writer.
//
// The SNMP BER codec and the packet framing code build and parse raw byte
// strings; ByteWriter/ByteReader centralize the bounds checking so codec
// code never touches raw pointers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace netqos {

using Bytes = std::vector<std::uint8_t>;

/// Thrown when a reader runs off the end of its input.
class BufferUnderflow : public std::runtime_error {
 public:
  explicit BufferUnderflow(const std::string& what)
      : std::runtime_error("buffer underflow: " + what) {}
};

/// Appends big-endian integers and raw bytes to an owned buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Writes into `buffer`, reusing its heap capacity (contents are
  /// discarded). Pairs with BufferPool to make encoding allocation-free.
  explicit ByteWriter(Bytes buffer) : out_(std::move(buffer)) {
    out_.clear();
  }

  void reserve(std::size_t n) { out_.reserve(n); }

  void put_u8(std::uint8_t v) { out_.push_back(v); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_bytes(std::span<const std::uint8_t> data);
  void put_string(const std::string& s);

  /// Overwrites a single previously written byte (for length back-patching).
  void patch_u8(std::size_t offset, std::uint8_t v);

  std::size_t size() const { return out_.size(); }
  const Bytes& bytes() const& { return out_; }
  Bytes take() && { return std::move(out_); }

 private:
  Bytes out_;
};

/// Consumes big-endian integers and raw bytes from a borrowed buffer.
/// The underlying storage must outlive the reader.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  /// Returns a view of the next n bytes and advances past them.
  std::span<const std::uint8_t> get_bytes(std::size_t n);
  std::string get_string(std::size_t n);

  /// Next byte without consuming it.
  std::uint8_t peek_u8() const;

  std::size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }
  std::size_t position() const { return pos_; }

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace netqos
