// Byte-buffer recycling for the packet hot path.
//
// Every SNMP request/response allocates a payload vector, moves it into a
// frame, and frees it when the frame is delivered — at 10k interfaces
// that is hundreds of thousands of malloc/free pairs per simulated
// minute. The pool keeps freed buffers' heap capacity and hands it back
// to the next encode, so steady-state polling performs no payload
// allocations at all. Single-threaded, like the simulator that owns it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/byte_buffer.h"

namespace netqos {

class BufferPool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;  ///< buffers handed out
    std::uint64_t reuses = 0;    ///< acquires served from the free list
    std::uint64_t releases = 0;  ///< buffers returned
    std::uint64_t discards = 0;  ///< returns dropped (pool full / oversized)
  };

  /// `max_pooled` bounds the free list; `max_capacity` drops outsized
  /// buffers on return so one jumbo payload cannot pin memory forever.
  explicit BufferPool(std::size_t max_pooled = 256,
                      std::size_t max_capacity = 4096)
      : max_pooled_(max_pooled), max_capacity_(max_capacity) {}

  /// An empty buffer, reusing recycled capacity when available.
  Bytes acquire() {
    ++stats_.acquires;
    if (free_.empty()) return {};
    ++stats_.reuses;
    Bytes buffer = std::move(free_.back());
    free_.pop_back();
    return buffer;
  }

  /// Returns a buffer's capacity to the pool. Contents are discarded.
  void release(Bytes&& buffer) {
    ++stats_.releases;
    if (free_.size() >= max_pooled_ || buffer.capacity() == 0 ||
        buffer.capacity() > max_capacity_) {
      ++stats_.discards;
      return;
    }
    buffer.clear();
    free_.push_back(std::move(buffer));
  }

  std::size_t pooled() const { return free_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  std::size_t max_pooled_;
  std::size_t max_capacity_;
  std::vector<Bytes> free_;
  Stats stats_;
};

}  // namespace netqos
