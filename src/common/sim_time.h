// Simulation time primitives.
//
// All simulator clocks are virtual: a SimTime is a count of nanoseconds
// since simulation start. Using a strong integral representation (rather
// than std::chrono time_points) keeps event-queue keys trivially
// comparable and serializable, and makes the zero of time unambiguous.
#pragma once

#include <cstdint>
#include <string>

namespace netqos {

/// Virtual simulation time in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// A span of virtual time in nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1'000;
inline constexpr SimDuration kMillisecond = 1'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000;

constexpr SimDuration nanoseconds(std::int64_t n) { return n; }
constexpr SimDuration microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr SimDuration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr SimDuration seconds(std::int64_t n) { return n * kSecond; }

/// Converts a virtual time to fractional seconds (for reporting only).
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts fractional seconds to virtual time, rounding to nearest ns.
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond) + 0.5);
}

/// SNMP TimeTicks are hundredths of a second (RFC 1155).
constexpr std::uint32_t to_timeticks(SimTime t) {
  return static_cast<std::uint32_t>(t / (kSecond / 100));
}

/// Converts TimeTicks (centiseconds) back to virtual nanoseconds.
constexpr SimTime from_timeticks(std::uint32_t ticks) {
  return static_cast<SimTime>(ticks) * (kSecond / 100);
}

/// Human-readable rendering, e.g. "12.345s".
std::string format_time(SimTime t);

}  // namespace netqos
