// Streaming statistics and time-series containers used by the monitor and
// the experiment harnesses (Table 2 style summaries).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "common/sim_time.h"

namespace netqos {

/// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram: observations are sorted into buckets delimited
/// by a fixed, ascending list of upper bounds, with an implicit +Inf
/// overflow bucket. The bucket layout matches Prometheus histogram
/// semantics (cumulative `le` buckets on export), and percentile(q)
/// recovers approximate quantiles by linear interpolation inside the
/// winning bucket — the classic fixed-cost alternative to storing every
/// sample.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  /// `count` bounds starting at `start`, each `factor` times the last
  /// (e.g. exponential(0.001, 2.0, 12) spans 1 ms .. 2 s).
  static Histogram exponential(double start, double factor,
                               std::size_t count);

  void add(double x);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// Finite bucket upper bounds (the +Inf bucket is implicit).
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1,
  /// the last entry being the +Inf overflow bucket.
  const std::vector<std::size_t>& bucket_counts() const { return counts_; }

  /// Approximate value at quantile q in [0, 1] by linear interpolation
  /// within the containing bucket. Returns 0 when empty. Values in the
  /// overflow bucket clamp to the largest finite bound.
  double percentile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::size_t> counts_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
};

/// One observation in a time series.
struct TimePoint {
  SimTime time = 0;
  double value = 0.0;
};

/// Append-only series of (time, value) samples with range queries.
class TimeSeries {
 public:
  void add(SimTime t, double v) { points_.push_back({t, v}); }

  const std::vector<TimePoint>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Stats over samples with begin <= time < end.
  RunningStats stats_between(SimTime begin, SimTime end) const;

  /// Mean over samples with begin <= time < end (0 if none).
  double mean_between(SimTime begin, SimTime end) const;

  /// Largest |value - reference| / reference over the window, as a
  /// fraction. Returns 0 when reference == 0 or the window is empty.
  double max_relative_error(SimTime begin, SimTime end,
                            double reference) const;

  /// Value at quantile q in [0, 1] over samples with begin <= time < end,
  /// by linear interpolation between order statistics. 0 if the window is
  /// empty.
  double percentile_between(SimTime begin, SimTime end, double q) const;
  double percentile(double q) const {
    return percentile_between(std::numeric_limits<SimTime>::min(),
                              std::numeric_limits<SimTime>::max(), q);
  }

 private:
  std::vector<TimePoint> points_;
};

}  // namespace netqos
