// Streaming statistics and time-series containers used by the monitor and
// the experiment harnesses (Table 2 style summaries).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "common/sim_time.h"

namespace netqos {

/// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// One observation in a time series.
struct TimePoint {
  SimTime time = 0;
  double value = 0.0;
};

/// Append-only series of (time, value) samples with range queries.
class TimeSeries {
 public:
  void add(SimTime t, double v) { points_.push_back({t, v}); }

  const std::vector<TimePoint>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Stats over samples with begin <= time < end.
  RunningStats stats_between(SimTime begin, SimTime end) const;

  /// Mean over samples with begin <= time < end (0 if none).
  double mean_between(SimTime begin, SimTime end) const;

  /// Largest |value - reference| / reference over the window, as a
  /// fraction. Returns 0 when reference == 0 or the window is empty.
  double max_relative_error(SimTime begin, SimTime end,
                            double reference) const;

  /// Value at quantile q in [0, 1] over samples with begin <= time < end,
  /// by linear interpolation between order statistics. 0 if the window is
  /// empty.
  double percentile_between(SimTime begin, SimTime end, double q) const;
  double percentile(double q) const {
    return percentile_between(std::numeric_limits<SimTime>::min(),
                              std::numeric_limits<SimTime>::max(), q);
  }

 private:
  std::vector<TimePoint> points_;
};

}  // namespace netqos
