#include "common/rng.h"

#include <cmath>

namespace netqos {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() {
  // 53 random bits into the mantissa: uniform on [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full 64-bit range
  // Rejection-free bounded generation via 128-bit multiply (Lemire).
  const unsigned __int128 m =
      static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(span);
  return lo + static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::exponential(double mean) {
  // Inversion; uniform() < 1 always, so log argument is in (0, 1].
  return -mean * std::log(1.0 - uniform());
}

Xoshiro256 Xoshiro256::fork(std::uint64_t stream) const {
  SplitMix64 sm(s_[0] ^ (stream * 0x9e3779b97f4a7c15ULL) ^ s_[3]);
  return Xoshiro256(sm.next());
}

}  // namespace netqos
