// Dynamic network topology discovery (paper §5 future work).
//
// The paper obtains topology from specification files and notes that
// "pure network discovery is not feasible in the DeSiDeRaTa environment
// ... A hybrid approach may be a better solution in the future". This
// module implements that future direction: given only the management
// addresses of the SNMP agents in scope, it reconstructs the topology by
//
//   1. reading sysName, ifDescr, ifSpeed, and ifPhysAddress from every
//      agent (MIB-II),
//   2. reading dot1dTpFdbPort (bridge MIB) from agents that have one —
//      those are switches,
//   3. inferring attachments: a switch port with one learned MAC is a
//      direct connection to that interface; a port with several learned
//      MACs is a shared segment, modelled as a hub with the hosts behind
//      it; ports seeing each other's host populations are switch-switch
//      uplinks,
//   4. MACs that no polled agent owns become agentless placeholder hosts
//      (the paper's S3-S6 case: attached, but no daemon to ask).
//
// The result is a topo::NetworkTopology (plus a spec rendering via
// spec::write_spec) that can be diffed against the configured spec — the
// "hybrid approach".
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "snmp/client.h"
#include "snmp/walker.h"
#include "topology/model.h"

namespace netqos::mon {

/// One agent the discovery should interrogate.
struct DiscoveryTarget {
  sim::Ipv4Address address;
  std::string community = "public";
};

struct DiscoveryResult {
  bool ok = false;
  std::string error;
  topo::NetworkTopology topology;
  /// Diagnostic trail of inference decisions, human readable.
  std::vector<std::string> notes;
  /// Agents that did not answer.
  std::vector<sim::Ipv4Address> unreachable;
};

class TopologyDiscovery {
 public:
  using Callback = std::function<void(DiscoveryResult)>;

  /// `client` must outlive the discovery. One run at a time.
  explicit TopologyDiscovery(snmp::SnmpClient& client);

  void run(std::vector<DiscoveryTarget> targets, Callback callback);
  bool busy() const { return busy_; }

 private:
  struct AgentInfo {
    DiscoveryTarget target;
    bool reachable = false;
    std::string sys_name;
    // ifIndex -> attributes
    std::map<std::uint32_t, std::string> if_descr;
    std::map<std::uint32_t, std::uint64_t> if_speed;
    std::map<std::uint32_t, std::string> if_phys;  // 6 raw octets
    // bridge FDB: MAC octets (as string) -> port number; empty for hosts
    std::map<std::string, std::uint32_t> fdb;
    bool is_switch() const { return !fdb.empty(); }
  };

  void interrogate(std::size_t index);
  void walk_column(std::size_t index, int phase);
  void infer();

  snmp::SnmpClient& client_;
  snmp::SubtreeWalker walker_;
  bool busy_ = false;
  std::vector<AgentInfo> agents_;
  Callback callback_;
};

}  // namespace netqos::mon
