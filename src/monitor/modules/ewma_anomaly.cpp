#include "monitor/modules/ewma_anomaly.h"

#include <cmath>

namespace netqos::mon {

void EwmaAnomalyModule::on_path_sample(const PathKey& key, SimTime time,
                                       const PathUsage& usage) {
  PathState& state = paths_[key];
  const double value = usage.used_at_bottleneck;

  if (state.samples == 0) {
    // Seed the forecast with the first observation — CoMo's estimator
    // does the same instead of decaying up from zero.
    state.forecast = value;
  }
  const double error = value - state.forecast;
  const double squared = error * error;

  // Anomaly check against the *previous* state: the deviating sample
  // must not first soften the variance it is judged by.
  if (state.samples >= config_.warmup && state.variance > 0.0 &&
      squared > config_.threshold * state.variance) {
    ++state.anomalies;
    AnomalyEvent event;
    event.path = key;
    event.time = time;
    event.value = value;
    event.forecast = state.forecast;
    event.score = std::sqrt(squared / state.variance);
    // The journal is a bounded window, not an archive: soaks run for
    // simulated hours and module memory must stay flat.
    if (events_.size() >= config_.max_events) {
      events_.erase(events_.begin());
    }
    events_.push_back(event);
    for (const auto& callback : callbacks_) callback(events_.back());
  }

  state.forecast = config_.alpha * value + (1.0 - config_.alpha) * state.forecast;
  state.variance =
      config_.alpha * squared + (1.0 - config_.alpha) * state.variance;
  ++state.samples;
}

std::size_t EwmaAnomalyModule::footprint_bytes() const {
  return paths_.size() * (sizeof(PathKey) + sizeof(PathState)) +
         events_.capacity() * sizeof(AnomalyEvent);
}

std::vector<ModuleNote> EwmaAnomalyModule::notes() const {
  std::vector<ModuleNote> notes;
  notes.push_back({"paths", std::to_string(paths_.size())});
  notes.push_back({"anomalies", std::to_string(events_.size())});
  for (const auto& [key, state] : paths_) {
    notes.push_back({key.first + "<->" + key.second,
                     std::to_string(state.anomalies) + " anomalies / " +
                         std::to_string(state.samples) + " samples"});
  }
  return notes;
}

}  // namespace netqos::mon
