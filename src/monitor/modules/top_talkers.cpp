#include "monitor/modules/top_talkers.h"

#include <algorithm>

namespace netqos::mon {

void TopTalkersModule::init(ModuleCore& core) {
  poll_interval_ = core.poll_interval();
}

void TopTalkersModule::on_interface_sample(const InterfaceKey& interface,
                                           SimTime time,
                                           const RateSample& rate) {
  (void)time;
  // Rate integrated over its own measurement interval = exact byte count
  // the counters moved between the two polls.
  interface_bytes_[interface.first + "/" + interface.second] +=
      rate.total_rate() * rate.interval_seconds;
}

void TopTalkersModule::on_path_sample(const PathKey& key, SimTime time,
                                      const PathUsage& usage) {
  (void)time;
  // Path samples arrive once per poll round; the bottleneck rate held
  // for roughly one poll interval of traffic.
  path_bytes_[key.first + "<->" + key.second] +=
      usage.used_at_bottleneck * to_seconds(poll_interval_);
}

std::vector<TalkerEntry> TopTalkersModule::ranked(
    const std::map<std::string, double>& tally, std::size_t n) {
  std::vector<TalkerEntry> entries;
  entries.reserve(tally.size());
  for (const auto& [label, bytes] : tally) entries.push_back({label, bytes});
  std::sort(entries.begin(), entries.end(),
            [](const TalkerEntry& a, const TalkerEntry& b) {
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              return a.label < b.label;
            });
  if (entries.size() > n) entries.resize(n);
  return entries;
}

std::vector<TalkerEntry> TopTalkersModule::top_interfaces(
    std::size_t n) const {
  return ranked(interface_bytes_, n > 0 ? n : config_.top_n);
}

std::vector<TalkerEntry> TopTalkersModule::top_paths(std::size_t n) const {
  return ranked(path_bytes_, n > 0 ? n : config_.top_n);
}

std::size_t TopTalkersModule::footprint_bytes() const {
  std::size_t labels = 0;
  for (const auto& [label, bytes] : interface_bytes_) {
    (void)bytes;
    labels += label.size();
  }
  for (const auto& [label, bytes] : path_bytes_) {
    (void)bytes;
    labels += label.size();
  }
  return labels + (interface_bytes_.size() + path_bytes_.size()) *
                      (sizeof(std::string) + sizeof(double));
}

std::vector<ModuleNote> TopTalkersModule::notes() const {
  std::vector<ModuleNote> notes;
  notes.push_back({"interfaces", std::to_string(interface_bytes_.size())});
  notes.push_back({"paths", std::to_string(path_bytes_.size())});
  int rank = 1;
  for (const TalkerEntry& entry : top_interfaces()) {
    notes.push_back({"if#" + std::to_string(rank++),
                     entry.label + " " +
                         std::to_string(static_cast<std::uint64_t>(
                             entry.bytes)) +
                         " B"});
  }
  rank = 1;
  for (const TalkerEntry& entry : top_paths()) {
    notes.push_back({"path#" + std::to_string(rank++),
                     entry.label + " " +
                         std::to_string(static_cast<std::uint64_t>(
                             entry.bytes)) +
                         " B"});
  }
  return notes;
}

}  // namespace netqos::mon
