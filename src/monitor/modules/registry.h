// Factory registry of the optional observer modules — the set
// `netqosmon --modules=...` can enable per run. Built-in pipeline
// modules (bandwidth) and externally owned ones (the detectors, latency
// aggregation) are not constructed here; this names only the modules a
// run opts into by name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "monitor/module.h"

namespace netqos::mon {

struct ModuleSpec {
  std::string name;
  std::string description;
};

/// Modules constructible by name, in a stable listing order.
const std::vector<ModuleSpec>& available_modules();

/// Constructs a module by registry name; nullptr for an unknown name.
std::unique_ptr<Module> make_module(const std::string& name);

/// Comma-separated `--modules=` list -> constructed modules. Throws
/// std::invalid_argument naming the offending entry (and the known
/// names) on an unknown module.
std::vector<std::unique_ptr<Module>> make_modules(const std::string& list);

}  // namespace netqos::mon
