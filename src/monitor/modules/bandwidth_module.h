// Path bandwidth as a measurement module (paper §3.3).
//
// The built-in producer the core registers first: each round wrap-up it
// evaluates every watched path against the interface-rate database —
// hub/switch rules, staleness annotation, trap-driven link-down
// override — and emits one connection sample per touched connection and
// one path sample per complete path. The core routes those emissions to
// history storage and to every consumer module, so this module is the
// sole source of the sample stream the detectors, sinks, and observer
// modules consume.
#pragma once

#include <cstdint>

#include "monitor/module.h"

namespace netqos::mon {

class BandwidthModule final : public Module {
 public:
  BandwidthModule() : Module("bandwidth") {}

  void produce(ModuleCore& core, SimTime round_start) override;

  std::vector<ModuleNote> notes() const override;

 private:
  std::uint64_t rounds_ = 0;
  std::uint64_t paths_emitted_ = 0;
  std::uint64_t paths_incomplete_ = 0;
};

}  // namespace netqos::mon
