// Top-talker accounting module (CoMo's topports.c / topdest.c style).
//
// Consumes the interface-sample hot path: every rate the core computes
// from a poll response adds `total_rate * interval` bytes to that
// interface's tally, so the module ranks interfaces by actual byte
// volume, whole-fabric, without ever touching SNMP. Watched paths are
// tallied from the path-sample stream the bandwidth producer emits
// (used-at-bottleneck integrated over the poll interval).
#pragma once

#include <cstdint>
#include <map>

#include "monitor/module.h"

namespace netqos::mon {

struct TopTalkersConfig {
  /// Entries reported by top_interfaces()/top_paths() and notes().
  std::size_t top_n = 10;
};

/// One ranked entry: an interface ("node/ifDescr") or path ("A<->B")
/// label with its accumulated byte volume.
struct TalkerEntry {
  std::string label;
  double bytes = 0.0;
};

class TopTalkersModule final : public Module {
 public:
  explicit TopTalkersModule(TopTalkersConfig config = {})
      : Module("top-talkers"), config_(config) {}

  bool wants_interface_samples() const override { return true; }
  void on_interface_sample(const InterfaceKey& interface, SimTime time,
                           const RateSample& rate) override;
  void on_path_sample(const PathKey& key, SimTime time,
                      const PathUsage& usage) override;
  void init(ModuleCore& core) override;

  /// Top interfaces by byte volume, descending (ties break on label so
  /// the ranking is deterministic).
  std::vector<TalkerEntry> top_interfaces(std::size_t n = 0) const;
  std::vector<TalkerEntry> top_paths(std::size_t n = 0) const;

  std::size_t footprint_bytes() const override;
  std::vector<ModuleNote> notes() const override;

 private:
  static std::vector<TalkerEntry> ranked(
      const std::map<std::string, double>& tally, std::size_t n);

  TopTalkersConfig config_;
  SimDuration poll_interval_ = 0;
  std::map<std::string, double> interface_bytes_;
  std::map<std::string, double> path_bytes_;
};

}  // namespace netqos::mon
