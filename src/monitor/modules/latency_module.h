// Latency aggregation as a measurement module.
//
// Active probing stays outside the module layer — a LatencyProbe owns
// its UDP echo traffic, because modules may not touch the network. This
// module subscribes to any number of probes' RTT streams and aggregates
// them per target, giving latency the same telemetry, query visibility,
// and lifecycle every other metric has.
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "monitor/latency.h"
#include "monitor/module.h"

namespace netqos::mon {

class LatencyModule final : public Module {
 public:
  LatencyModule() : Module("latency") {}

  /// Subscribes to `probe`'s RTT samples under `label` (e.g. "L->S2").
  /// The module must outlive the probe's last sample delivery.
  void track(const std::string& label, LatencyProbe& probe);

  struct TargetStats {
    std::string label;
    RunningStats rtt;           ///< seconds
    double last_rtt = 0.0;      ///< seconds
    SimTime last_time = 0;
  };
  const std::vector<TargetStats>& targets() const { return targets_; }

  std::size_t footprint_bytes() const override;
  std::vector<ModuleNote> notes() const override;

 private:
  std::vector<TargetStats> targets_;
};

}  // namespace netqos::mon
