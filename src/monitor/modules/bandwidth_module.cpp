#include "monitor/modules/bandwidth_module.h"

#include <set>

#include "history/store.h"

namespace netqos::mon {

void BandwidthModule::produce(ModuleCore& core, SimTime round_start) {
  ++rounds_;

  // Per-connection usage first: each connection on any watched path gets
  // one point per round (paths may share connections).
  std::set<std::size_t> touched;
  for (const WatchedPath& watched : core.watched_paths()) {
    touched.insert(watched.path->begin(), watched.path->end());
  }
  for (std::size_t ci : touched) {
    const ConnectionUsage usage =
        core.calculator().connection_usage(ci, core.samples());
    if (usage.measured) {
      core.emit_connection_sample(ci, round_start, usage.used);
    }
  }

  for (const WatchedPath& watched : core.watched_paths()) {
    PathUsage usage = core.calculator().path_usage(
        *watched.path, core.samples(), round_start, core.stale_after());
    core.observe_path_age(usage.max_sample_age);

    // Trap-driven link state overrides counters: a downed connection
    // means zero availability now, however fresh the last rates look.
    for (std::size_t ci : *watched.path) {
      if (core.connection_down(ci)) {
        usage.link_down = true;
        usage.complete = true;
        usage.available = 0.0;
        usage.bottleneck = ci;
        break;
      }
    }
    if (!usage.complete) {  // first round has no rates yet
      ++paths_incomplete_;
      continue;
    }
    ++paths_emitted_;
    core.emit_path_sample(watched.key, round_start, usage);
  }
}

std::vector<ModuleNote> BandwidthModule::notes() const {
  return {{"rounds", std::to_string(rounds_)},
          {"paths_emitted", std::to_string(paths_emitted_)},
          {"paths_incomplete", std::to_string(paths_incomplete_)}};
}

}  // namespace netqos::mon
