// EWMA anomaly detection module (CoMo's anomaly-ewma.c technique).
//
// Per watched path, the module keeps an exponentially weighted moving
// forecast of the used bandwidth and an EWMA of the squared forecast
// error. A sample whose squared deviation from the forecast exceeds
// `threshold` times the error variance is an anomaly — a shift the
// requirement-based detectors cannot see (they only compare against a
// fixed minimum; this flags *change*, up or down, relative to the path's
// own recent behaviour).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>

#include "monitor/module.h"

namespace netqos::mon {

struct EwmaAnomalyConfig {
  /// Forecast weight of the newest sample (CoMo's `weight`).
  double alpha = 0.125;
  /// Squared-deviation multiple of the error variance that flags an
  /// anomaly.
  double threshold = 9.0;
  /// Samples absorbed per path before anomalies may fire — cold-start
  /// forecasts are meaningless.
  std::uint64_t warmup = 8;
  /// Retained anomaly journal entries; the oldest is dropped once full
  /// so module memory stays bounded over arbitrarily long runs.
  std::size_t max_events = 256;
};

struct AnomalyEvent {
  PathKey path;
  SimTime time = 0;
  BytesPerSecond value = 0.0;     ///< observed used bandwidth
  BytesPerSecond forecast = 0.0;  ///< EWMA forecast it deviated from
  /// Deviation in standard-deviation multiples (sqrt of the squared-
  /// deviation over variance ratio).
  double score = 0.0;
};

class EwmaAnomalyModule final : public Module {
 public:
  using EventCallback = std::function<void(const AnomalyEvent&)>;

  explicit EwmaAnomalyModule(EwmaAnomalyConfig config = {})
      : Module("ewma-anomaly"), config_(config) {}

  void on_path_sample(const PathKey& key, SimTime time,
                      const PathUsage& usage) override;

  void add_event_callback(EventCallback callback) {
    callbacks_.push_back(std::move(callback));
  }

  const std::vector<AnomalyEvent>& events() const { return events_; }
  const EwmaAnomalyConfig& config() const { return config_; }

  std::size_t footprint_bytes() const override;
  std::vector<ModuleNote> notes() const override;

 private:
  struct PathState {
    double forecast = 0.0;   ///< EWMA of the observed values
    double variance = 0.0;   ///< EWMA of squared forecast errors
    std::uint64_t samples = 0;
    std::uint64_t anomalies = 0;
  };

  EwmaAnomalyConfig config_;
  std::map<PathKey, PathState> paths_;
  std::vector<AnomalyEvent> events_;
  std::vector<EventCallback> callbacks_;
};

}  // namespace netqos::mon
