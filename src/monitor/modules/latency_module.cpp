#include "monitor/modules/latency_module.h"

#include <cstdio>

namespace netqos::mon {
namespace {

std::string format_ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  return buf;
}

}  // namespace

void LatencyModule::track(const std::string& label, LatencyProbe& probe) {
  targets_.push_back({label, {}, 0.0, 0});
  const std::size_t index = targets_.size() - 1;
  probe.add_sample_callback([this, index](SimTime time, double rtt_seconds) {
    TargetStats& target = targets_[index];
    target.rtt.add(rtt_seconds);
    target.last_rtt = rtt_seconds;
    target.last_time = time;
    count_external_sample();
  });
}

std::size_t LatencyModule::footprint_bytes() const {
  std::size_t labels = 0;
  for (const TargetStats& target : targets_) labels += target.label.size();
  return labels + targets_.capacity() * sizeof(TargetStats);
}

std::vector<ModuleNote> LatencyModule::notes() const {
  std::vector<ModuleNote> notes;
  notes.push_back({"targets", std::to_string(targets_.size())});
  for (const TargetStats& target : targets_) {
    notes.push_back(
        {target.label,
         std::to_string(target.rtt.count()) + " probes, mean " +
             format_ms(target.rtt.mean()) + ", max " +
             format_ms(target.rtt.max())});
  }
  return notes;
}

}  // namespace netqos::mon
