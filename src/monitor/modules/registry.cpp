#include "monitor/modules/registry.h"

#include <stdexcept>

#include "monitor/modules/ewma_anomaly.h"
#include "monitor/modules/top_talkers.h"

namespace netqos::mon {

const std::vector<ModuleSpec>& available_modules() {
  static const std::vector<ModuleSpec> specs = {
      {"ewma-anomaly",
       "EWMA forecast anomaly scoring of each watched path's used "
       "bandwidth"},
      {"top-talkers",
       "byte-volume ranking of every polled interface and watched path"},
  };
  return specs;
}

std::unique_ptr<Module> make_module(const std::string& name) {
  if (name == "ewma-anomaly") return std::make_unique<EwmaAnomalyModule>();
  if (name == "top-talkers") return std::make_unique<TopTalkersModule>();
  return nullptr;
}

std::vector<std::unique_ptr<Module>> make_modules(const std::string& list) {
  std::vector<std::unique_ptr<Module>> modules;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    std::size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    const std::string name = list.substr(begin, end - begin);
    begin = end + 1;
    if (name.empty()) continue;
    auto module = make_module(name);
    if (module == nullptr) {
      std::string known;
      for (const ModuleSpec& spec : available_modules()) {
        if (!known.empty()) known += ", ";
        known += spec.name;
      }
      throw std::invalid_argument("unknown module '" + name +
                                  "' (available: " + known + ")");
    }
    modules.push_back(std::move(module));
  }
  return modules;
}

}  // namespace netqos::mon
