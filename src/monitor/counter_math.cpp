#include "monitor/counter_math.h"

namespace netqos::mon {

std::optional<RateSample> compute_rates(const CounterSample& older,
                                        const CounterSample& newer) {
  const std::uint32_t ticks =
      timeticks_delta(older.sys_uptime_ticks, newer.sys_uptime_ticks);
  if (ticks == 0) return std::nullopt;
  if (older.high_capacity != newer.high_capacity) return std::nullopt;
  const double seconds = static_cast<double>(ticks) / 100.0;

  auto octet_delta = [&](std::uint64_t o, std::uint64_t n) {
    return newer.high_capacity
               ? counter64_delta(o, n)
               : static_cast<std::uint64_t>(counter32_delta(
                     static_cast<std::uint32_t>(o),
                     static_cast<std::uint32_t>(n)));
  };

  RateSample rates;
  rates.interval_seconds = seconds;
  rates.in_rate =
      static_cast<double>(octet_delta(older.in_octets, newer.in_octets)) /
      seconds;
  rates.out_rate =
      static_cast<double>(octet_delta(older.out_octets, newer.out_octets)) /
      seconds;
  rates.in_packet_rate =
      counter32_delta(older.in_packets, newer.in_packets) / seconds;
  rates.out_packet_rate =
      counter32_delta(older.out_packets, newer.out_packets) / seconds;
  rates.discard_rate =
      (counter32_delta(older.in_discards, newer.in_discards) +
       counter32_delta(older.out_discards, newer.out_discards)) /
      seconds;
  return rates;
}

}  // namespace netqos::mon
