#include "monitor/distributed.h"

#include <stdexcept>

namespace netqos::mon {

DistributedMonitor::DistributedMonitor(sim::Simulator& sim,
                                       const topo::NetworkTopology& topo,
                                       std::vector<sim::Host*> stations,
                                       MonitorConfig base)
    : db_(base.retention) {
  if (stations.empty()) {
    throw std::invalid_argument("distributed monitor needs >= 1 station");
  }
  // Partition agents round-robin. The plan is identical for all workers
  // (it depends only on the topology), so build it once to learn names.
  const PollPlan plan = PollPlan::build(topo);
  std::vector<std::vector<std::string>> partitions(stations.size());
  for (std::size_t i = 0; i < plan.agents().size(); ++i) {
    partitions[i % stations.size()].push_back(plan.agents()[i].node);
  }

  for (std::size_t s = 0; s < stations.size(); ++s) {
    MonitorConfig config = base;
    config.agent_allowlist = std::move(partitions[s]);
    // Phase the stations' rounds apart so the partitions do not all
    // burst onto the network at the same instant.
    config.scheduler.start_offset +=
        static_cast<SimDuration>(s) * config.scheduler.stagger;
    workers_.push_back(std::make_unique<NetworkMonitor>(
        sim, topo, *stations[s], db_, config));
  }
  // A quarantine decided by the worker polling the failed agent must
  // reach every other worker: the §4.1 fallback switch port is usually
  // polled by a different station, and the coordinator's path evaluation
  // reads measure points from its own plan copy.
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    workers_[s]->add_quarantine_callback(
        [this, s](const std::string& node, bool quarantined) {
          for (std::size_t other = 0; other < workers_.size(); ++other) {
            if (other == s) continue;
            workers_[other]->apply_external_quarantine(node, quarantined);
          }
        });
  }
  // The shared db exports through the coordinator's registry (worker
  // series stay distinct via their station labels).
  db_.attach_metrics(workers_.front()->metrics());
}

void DistributedMonitor::add_path(const std::string& from,
                                  const std::string& to) {
  workers_.front()->add_path(from, to);
}

void DistributedMonitor::add_sample_callback(
    NetworkMonitor::SampleCallback callback) {
  workers_.front()->add_sample_callback(std::move(callback));
}

void DistributedMonitor::start() {
  // Start non-coordinator workers first so their samples are flowing by
  // the time the coordinator evaluates paths.
  for (std::size_t i = workers_.size(); i-- > 0;) {
    if (!workers_[i]->polled_agents().empty()) workers_[i]->start();
  }
}

void DistributedMonitor::stop() {
  for (auto& worker : workers_) worker->stop();
}

MonitorStats DistributedMonitor::aggregate_stats() const {
  MonitorStats total;
  for (const auto& worker : workers_) {
    const MonitorStats s = worker->stats();
    total.rounds_started += s.rounds_started;
    total.rounds_completed += s.rounds_completed;
    total.rounds_failed += s.rounds_failed;
    total.agent_polls += s.agent_polls;
    total.agent_poll_failures += s.agent_poll_failures;
    total.resolve_failures += s.resolve_failures;
    total.polls_skipped += s.polls_skipped;
    total.quarantine_transitions += s.quarantine_transitions;
  }
  return total;
}

}  // namespace netqos::mon
