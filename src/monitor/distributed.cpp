#include "monitor/distributed.h"

#include <algorithm>
#include <stdexcept>

namespace netqos::mon {

DistributedMonitor::DistributedMonitor(sim::Simulator& sim,
                                       const topo::NetworkTopology& topo,
                                       std::vector<sim::Host*> stations,
                                       MonitorConfig base)
    : DistributedMonitor(sim, topo, std::move(stations),
                         DistributedConfig{std::move(base)}) {}

DistributedMonitor::DistributedMonitor(sim::Simulator& sim,
                                       const topo::NetworkTopology& topo,
                                       std::vector<sim::Host*> stations,
                                       DistributedConfig config)
    : sim_(sim),
      config_(std::move(config)),
      db_(config_.base.retention),
      shard_dark_(stations.size(), false),
      started_(stations.size(), false) {
  if (stations.empty()) {
    throw std::invalid_argument("distributed monitor needs >= 1 station");
  }
  const std::size_t n = stations.size();
  for (std::size_t s = 0; s < n; ++s) {
    station_shard_[stations[s]->name()] = s;
  }

  // The plan is identical for all workers (it depends only on the
  // topology), so build it once to learn names and weights.
  const PollPlan plan = PollPlan::build(topo);
  std::vector<std::vector<std::string>> partitions(n);
  std::vector<std::size_t> load(n, 0);
  for (const AgentTask& task : plan.agents()) {
    plan_order_.push_back(task.node);
    // An agent with no planned interfaces still costs a poll slot.
    weight_[task.node] = std::max<std::size_t>(1, task.interfaces.size());
  }

  // With handoff on, a station's own agent goes to the *next* shard:
  // a station cannot observe its own death, its successor can.
  std::vector<const AgentTask*> rest;
  for (const AgentTask& task : plan.agents()) {
    if (config_.ownership_handoff && n > 1) {
      auto it = station_shard_.find(task.node);
      if (it != station_shard_.end()) {
        assign((it->second + 1) % n, task.node, partitions, load);
        continue;
      }
    }
    rest.push_back(&task);
  }
  if (config_.partition == PartitionStrategy::kInterfaceWeighted) {
    // Greedy LPT: heaviest agents first, each onto the least-loaded
    // shard. stable_sort keeps plan order among equals — deterministic.
    std::vector<const AgentTask*> order = rest;
    std::stable_sort(order.begin(), order.end(),
                     [this](const AgentTask* a, const AgentTask* b) {
                       return weight_[a->node] > weight_[b->node];
                     });
    for (const AgentTask* task : order) {
      std::size_t best = 0;
      for (std::size_t s = 1; s < n; ++s) {
        if (load[s] < load[best]) best = s;
      }
      assign(best, task->node, partitions, load);
    }
  } else {
    // Plan-order round-robin over the unpinned agents: identical to the
    // original partition whenever no agent was pinned above.
    for (std::size_t i = 0; i < rest.size(); ++i) {
      assign(i % n, rest[i]->node, partitions, load);
    }
  }

  for (std::size_t s = 0; s < n; ++s) {
    MonitorConfig worker_config = config_.base;
    worker_config.agent_allowlist = std::move(partitions[s]);
    // Phase the stations' rounds apart so the partitions do not all
    // burst onto the network at the same instant.
    worker_config.scheduler.start_offset +=
        static_cast<SimDuration>(s) * worker_config.scheduler.stagger;
    workers_.push_back(std::make_unique<NetworkMonitor>(
        sim, topo, *stations[s], db_, worker_config));
  }
  // A quarantine decided by the worker polling the failed agent must
  // reach every other worker: the §4.1 fallback switch port is usually
  // polled by a different station, and the coordinator's path evaluation
  // reads measure points from its own plan copy.
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    workers_[s]->add_quarantine_callback(
        [this, s](const std::string& node, bool quarantined) {
          on_quarantine(s, node, quarantined);
        });
  }
  // The shared db exports through the coordinator's registry (worker
  // series stay distinct via their station labels).
  db_.attach_metrics(workers_.front()->metrics());
}

void DistributedMonitor::assign(
    std::size_t shard, const std::string& node,
    std::vector<std::vector<std::string>>& partitions,
    std::vector<std::size_t>& load) {
  partitions[shard].push_back(node);
  load[shard] += weight_[node];
  home_owner_[node] = shard;
  current_owner_[node] = shard;
}

void DistributedMonitor::on_quarantine(std::size_t observer,
                                       const std::string& node,
                                       bool entered) {
  for (std::size_t other = 0; other < workers_.size(); ++other) {
    if (other == observer) continue;
    workers_[other]->apply_external_quarantine(node, entered);
  }
  if (!config_.ownership_handoff) return;
  auto it = station_shard_.find(node);
  if (it == station_shard_.end()) return;
  const std::size_t shard = it->second;
  if (shard_dark_[shard] == entered) return;
  shard_dark_[shard] = entered;
  // Deferred: this callback runs inside PollScheduler::record_result,
  // which still holds a pointer into the observer's agent list —
  // adopting/releasing here would invalidate it.
  sim_.schedule_after(0, [this, shard, entered] {
    if (entered) {
      handoff_shard(shard);
    } else {
      restore_shard(shard);
    }
  });
}

void DistributedMonitor::handoff_shard(std::size_t dark) {
  std::vector<std::size_t> load(workers_.size(), 0);
  for (const auto& [node, owner] : current_owner_) {
    load[owner] += weight_[node];
  }
  for (const std::string& node : plan_order_) {
    auto it = current_owner_.find(node);
    if (it == current_owner_.end() || it->second != dark) continue;
    std::size_t best = workers_.size();
    for (std::size_t s = 0; s < workers_.size(); ++s) {
      if (s == dark || shard_dark_[s] || !started_[s]) continue;
      if (best == workers_.size() || load[s] < load[best]) best = s;
    }
    if (best == workers_.size()) return;  // no running shard left
    workers_[dark]->release_agent(node);
    if (workers_[best]->adopt_agent(node)) {
      it->second = best;
      load[best] += weight_[node];
      load[dark] -= weight_[node];
    }
  }
}

void DistributedMonitor::restore_shard(std::size_t home) {
  for (const std::string& node : plan_order_) {
    if (home_owner_[node] != home) continue;
    auto it = current_owner_.find(node);
    if (it == current_owner_.end() || it->second == home) continue;
    workers_[it->second]->release_agent(node);
    if (workers_[home]->adopt_agent(node)) it->second = home;
  }
}

std::vector<std::string> DistributedMonitor::shard_agents(
    std::size_t s) const {
  std::vector<std::string> nodes;
  for (const std::string& node : plan_order_) {
    auto it = current_owner_.find(node);
    if (it != current_owner_.end() && it->second == s) {
      nodes.push_back(node);
    }
  }
  return nodes;
}

void DistributedMonitor::add_path(const std::string& from,
                                  const std::string& to) {
  workers_.front()->add_path(from, to);
}

void DistributedMonitor::add_sample_callback(
    NetworkMonitor::SampleCallback callback) {
  workers_.front()->add_sample_callback(std::move(callback));
}

namespace {

/// Streams a worker shard's interface samples into the coordinator's
/// module host. Installed on every non-coordinator shard once an
/// interface-consuming module registers, so coordinator modules see the
/// whole fabric's rate stream no matter which shard polls an interface
/// — including after an ownership handoff migrates agents.
class InterfaceForwarder final : public Module {
 public:
  explicit InterfaceForwarder(ModuleHost& target)
      : Module("shard-forwarder"), target_(target) {}

  bool wants_interface_samples() const override { return true; }
  void on_interface_sample(const InterfaceKey& interface, SimTime time,
                           const RateSample& rate) override {
    target_.dispatch_interface_sample(interface, time, rate);
  }

 private:
  ModuleHost& target_;
};

}  // namespace

Module& DistributedMonitor::add_module(std::unique_ptr<Module> module) {
  const bool wants_interfaces = module->wants_interface_samples();
  Module& registered = workers_.front()->add_module(std::move(module));
  if (wants_interfaces && !forwarding_) {
    // Lazy: shards pay the interface-dispatch cost only once a module
    // actually consumes that stream.
    forwarding_ = true;
    for (std::size_t s = 1; s < workers_.size(); ++s) {
      workers_[s]->add_module(std::make_unique<InterfaceForwarder>(
          workers_.front()->modules()));
    }
  }
  return registered;
}

void DistributedMonitor::start() {
  // Start non-coordinator workers first so their samples are flowing by
  // the time the coordinator evaluates paths.
  for (std::size_t i = workers_.size(); i-- > 0;) {
    if (!workers_[i]->polled_agents().empty()) {
      workers_[i]->start();
      started_[i] = true;
    }
  }
}

void DistributedMonitor::stop() {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->stop();
    started_[i] = false;
  }
}

MonitorStats DistributedMonitor::aggregate_stats() const {
  MonitorStats total;
  for (const auto& worker : workers_) {
    const MonitorStats s = worker->stats();
    total.rounds_started += s.rounds_started;
    total.rounds_completed += s.rounds_completed;
    total.rounds_failed += s.rounds_failed;
    total.agent_polls += s.agent_polls;
    total.agent_poll_failures += s.agent_poll_failures;
    total.resolve_failures += s.resolve_failures;
    total.polls_skipped += s.polls_skipped;
    total.quarantine_transitions += s.quarantine_transitions;
  }
  return total;
}

}  // namespace netqos::mon
