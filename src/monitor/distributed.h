// Distributed network monitoring (paper §5 future work).
//
// A single monitoring station's polling traffic grows with the number of
// agents; distributing the poller spreads that load. This coordinator
// partitions the poll plan's agents across several station hosts — each
// a poller shard. Every station runs its own SNMP client and polls only
// its partition, but all samples land in one shared StatsDb; the
// coordinator station evaluates the monitored paths against the merged
// view, so path results are identical to the centralized monitor's
// (modulo poll phase).
//
// Two partitioning strategies: round-robin in plan order (the original
// behaviour, balanced by agent count) and interface-weighted (greedy
// longest-processing-time by per-agent interface count, balanced by
// varbind volume — a 48-port spine switch costs a shard 48 interfaces'
// worth of polling, not one agent's).
//
// Ownership handoff (opt-in): each station's own host agent is pinned to
// the *next* shard, so a station going dark is observed by a healthy
// peer. When that observer quarantines a station's agent, the dark
// shard's whole partition is handed off to the least-loaded running
// shards; when the agent heals, the partition returns home. Handoffs are
// deferred one simulator event (schedule_after(0)) because the
// quarantine callback fires from inside the scheduler's record_result,
// which still holds a pointer into the agent list being edited.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "monitor/monitor.h"

namespace netqos::mon {

enum class PartitionStrategy {
  kRoundRobin,          ///< plan order, i % shards (balanced by count)
  kInterfaceWeighted,   ///< greedy LPT by interface count (balanced by load)
};

struct DistributedConfig {
  MonitorConfig base;
  PartitionStrategy partition = PartitionStrategy::kRoundRobin;
  /// Enable station-failure handoff: pin each station's own agent to the
  /// next shard and migrate a dark shard's partition to running peers.
  bool ownership_handoff = false;
};

class DistributedMonitor {
 public:
  /// `stations` must be non-empty; stations[0] is the coordinator that
  /// evaluates paths.
  DistributedMonitor(sim::Simulator& sim, const topo::NetworkTopology& topo,
                     std::vector<sim::Host*> stations,
                     DistributedConfig config);

  /// Round-robin, no handoff — the original interface.
  DistributedMonitor(sim::Simulator& sim, const topo::NetworkTopology& topo,
                     std::vector<sim::Host*> stations,
                     MonitorConfig base = {});

  /// Paths are registered on the coordinator.
  void add_path(const std::string& from, const std::string& to);
  void add_sample_callback(NetworkMonitor::SampleCallback callback);

  /// Registers a measurement module on the coordinator. If the module
  /// consumes interface samples, every worker shard gets a forwarder
  /// streaming its partition's rates to the coordinator's host, so the
  /// module sees the whole fabric and keeps its stream across
  /// adopt_agent/release_agent handoffs.
  Module& add_module(std::unique_ptr<Module> module);
  ModuleHost& modules() { return workers_.front()->modules(); }

  void start();
  void stop();

  NetworkMonitor& coordinator() { return *workers_.front(); }
  const std::vector<std::unique_ptr<NetworkMonitor>>& workers() const {
    return workers_;
  }
  const StatsDb& stats_db() const { return db_; }

  /// Agents currently owned by shard `s`, in plan order (tracks
  /// handoffs).
  std::vector<std::string> shard_agents(std::size_t s) const;
  /// True while shard `s`'s partition is handed off to its peers.
  bool shard_dark(std::size_t s) const { return shard_dark_[s]; }

  /// Sum of per-worker poll counts (for load-sharing analysis).
  MonitorStats aggregate_stats() const;

  const TimeSeries& used_series(const std::string& from,
                                const std::string& to) const {
    return workers_.front()->used_series(from, to);
  }

 private:
  void assign(std::size_t shard, const std::string& node,
              std::vector<std::vector<std::string>>& partitions,
              std::vector<std::size_t>& load);
  void on_quarantine(std::size_t observer, const std::string& node,
                     bool entered);
  void handoff_shard(std::size_t dark);
  void restore_shard(std::size_t home);

  sim::Simulator& sim_;
  DistributedConfig config_;
  StatsDb db_;
  std::vector<std::unique_ptr<NetworkMonitor>> workers_;

  std::map<std::string, std::size_t> station_shard_;  ///< host name -> shard
  std::vector<std::string> plan_order_;               ///< agents, plan order
  std::map<std::string, std::size_t> weight_;   ///< node -> interface count
  std::map<std::string, std::size_t> home_owner_;
  std::map<std::string, std::size_t> current_owner_;
  std::vector<bool> shard_dark_;
  std::vector<bool> started_;
  bool forwarding_ = false;  ///< shard->coordinator interface forwarders up
};

}  // namespace netqos::mon
