// Distributed network monitoring (paper §5 future work).
//
// A single monitoring station's polling traffic grows with the number of
// agents; distributing the poller spreads that load. This coordinator
// partitions the poll plan's agents round-robin across several station
// hosts. Every station runs its own SNMP client and polls only its
// partition, but all samples land in one shared StatsDb; the coordinator
// station evaluates the monitored paths against the merged view, so path
// results are identical to the centralized monitor's (modulo poll phase).
#pragma once

#include <memory>
#include <vector>

#include "monitor/monitor.h"

namespace netqos::mon {

class DistributedMonitor {
 public:
  /// `stations` must be non-empty; stations[0] is the coordinator that
  /// evaluates paths. Agents are assigned round-robin in plan order.
  DistributedMonitor(sim::Simulator& sim, const topo::NetworkTopology& topo,
                     std::vector<sim::Host*> stations,
                     MonitorConfig base = {});

  /// Paths are registered on the coordinator.
  void add_path(const std::string& from, const std::string& to);
  void add_sample_callback(NetworkMonitor::SampleCallback callback);

  void start();
  void stop();

  NetworkMonitor& coordinator() { return *workers_.front(); }
  const std::vector<std::unique_ptr<NetworkMonitor>>& workers() const {
    return workers_;
  }
  const StatsDb& stats_db() const { return db_; }

  /// Sum of per-worker poll counts (for load-sharing analysis).
  MonitorStats aggregate_stats() const;

  const TimeSeries& used_series(const std::string& from,
                                const std::string& to) const {
    return workers_.front()->used_series(from, to);
  }

 private:
  StatsDb db_;
  std::vector<std::unique_ptr<NetworkMonitor>> workers_;
};

}  // namespace netqos::mon
