#include "monitor/module.h"

#include <algorithm>
#include <stdexcept>

#include "common/log.h"

namespace netqos::mon {

Module::~Module() {
  if (host_ != nullptr) host_->detach(*this);
}

void Module::count_external_sample() {
  if (host_ != nullptr) host_->count_sample(*this);
}

ModuleHost::ModuleHost(ModuleCore& core, obs::MetricsRegistry& metrics,
                       std::string station)
    : core_(core), metrics_(metrics), station_(std::move(station)) {}

ModuleHost::~ModuleHost() {
  // Externally owned modules outliving the host must not dangle into it.
  for (Entry& entry : entries_) entry.module->host_ = nullptr;
}

ModuleHost::Entry& ModuleHost::register_module(
    Module& module, std::unique_ptr<Module> owned) {
  if (module.host_ != nullptr) {
    throw std::logic_error("module '" + module.name() +
                           "' is already registered with a host");
  }
  std::string label = module.name();
  for (int suffix = 2; find(label) != nullptr; ++suffix) {
    label = module.name() + "#" + std::to_string(suffix);
  }
  module.name_ = label;
  module.host_ = this;

  Entry entry;
  entry.module = &module;
  entry.owned = std::move(owned);
  entry.interface_consumer = module.wants_interface_samples();
  const obs::Labels labels = {{"module", label}, {"station", station_}};
  entry.samples = &metrics_.counter(
      "netqos_module_samples_total",
      "Stream samples delivered to the module", labels);
  entry.errors = &metrics_.counter(
      "netqos_module_errors_total",
      "Deliveries lost to an exception thrown by the module", labels);
  entry.footprint = &metrics_.gauge(
      "netqos_module_footprint_bytes",
      "Bytes of state the module currently retains", labels);
  entries_.push_back(std::move(entry));
  if (module.wants_interface_samples()) ++interface_consumers_;

  Entry& stored = entries_.back();
  guarded(stored, "init", [&] { module.init(core_); });
  return stored;
}

Module& ModuleHost::add(std::unique_ptr<Module> module) {
  Module& ref = *module;
  register_module(ref, std::move(module));
  return ref;
}

Module& ModuleHost::attach(Module& module) {
  register_module(module, nullptr);
  return module;
}

bool ModuleHost::detach(Module& module) {
  auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&module](const Entry& entry) { return entry.module == &module; });
  if (it == entries_.end()) return false;
  if (it->interface_consumer) --interface_consumers_;
  module.host_ = nullptr;
  entries_.erase(it);
  return true;
}

void ModuleHost::count_sample(Module& module) {
  for (const Entry& entry : entries_) {
    if (entry.module == &module) {
      entry.samples->inc();
      return;
    }
  }
}

template <typename Fn>
void ModuleHost::guarded(const Entry& entry, const char* hook, Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    entry.errors->inc();
    NETQOS_WARN_C("module") << station_ << ": module " << entry.module->name()
                            << " threw in " << hook << ": " << e.what();
  } catch (...) {
    entry.errors->inc();
    NETQOS_WARN_C("module") << station_ << ": module " << entry.module->name()
                            << " threw in " << hook;
  }
}

void ModuleHost::dispatch_interface_sample(const InterfaceKey& interface,
                                           SimTime time,
                                           const RateSample& rate) {
  // Index loop: a module must survive another being detached mid-round.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (!entry.interface_consumer) continue;
    entry.samples->inc();
    guarded(entry, "on_interface_sample", [&] {
      entry.module->on_interface_sample(interface, time, rate);
    });
  }
}

void ModuleHost::dispatch_path_sample(const PathKey& key, SimTime time,
                                      const PathUsage& usage) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    entry.samples->inc();
    guarded(entry, "on_path_sample",
            [&] { entry.module->on_path_sample(key, time, usage); });
  }
}

void ModuleHost::run_round(SimTime round_start) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    guarded(entry, "produce",
            [&] { entry.module->produce(core_, round_start); });
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    guarded(entry, "on_round_end",
            [&] { entry.module->on_round_end(round_start); });
    entry.footprint->set(
        static_cast<double>(entry.module->footprint_bytes()));
  }
}

void ModuleHost::flush() {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    guarded(entry, "flush", [&] { entry.module->flush(); });
  }
}

Module* ModuleHost::find(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.module->name() == name) return entry.module;
  }
  return nullptr;
}

std::vector<ModuleStatus> ModuleHost::statuses() const {
  std::vector<ModuleStatus> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    ModuleStatus status;
    status.name = entry.module->name();
    status.samples = entry.samples->value();
    status.errors = entry.errors->value();
    status.footprint_bytes = entry.module->footprint_bytes();
    status.notes = entry.module->notes();
    out.push_back(std::move(status));
  }
  return out;
}

std::uint64_t ModuleHost::total_errors() const {
  std::uint64_t total = 0;
  for (const Entry& entry : entries_) total += entry.errors->value();
  return total;
}

}  // namespace netqos::mon
