// CoMo-style measurement modules (SNIPPETS.md §1-2).
//
// The monitor core moves data and manages resources: it polls agents,
// owns the StatsDb and HistoryStore, and runs the adaptive scheduler.
// Everything that *computes a metric* — path bandwidth, QoS violation
// detection, forecasting, latency aggregation, anomaly scoring, top
// talkers — is a Module consuming the per-poll sample stream:
//
//   interface samples   one per (node, interface) rate computed from a
//                       poll response (StatsDb differencing output)
//   path samples        one per monitored path per completed round,
//                       produced by the built-in bandwidth module
//   round boundaries    produce/on_round_end bracket each poll round
//
// Modules never talk SNMP and never mutate the StatsDb; they read core
// state through ModuleCore and emit derived samples back through it (the
// core routes emissions to history storage and to the other modules).
// netqos_lint rule R5 enforces that purity for src/monitor/modules/.
//
// The host isolates failures: a module that throws loses that one
// delivery (error counter bumped), the core keeps polling and every
// other module keeps its stream.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "monitor/bandwidth.h"
#include "monitor/plan.h"
#include "monitor/stats_db.h"
#include "obs/metrics.h"
#include "topology/path.h"

namespace netqos::mon {

/// A monitored host pair, as given to NetworkMonitor::add_path.
using PathKey = std::pair<std::string, std::string>;

/// One registered path as modules see it. `path` points into the core's
/// registry and stays valid for the core's lifetime.
struct WatchedPath {
  PathKey key;
  const topo::Path* path = nullptr;
};

/// Read-only core state plus emission hooks — everything a module may
/// touch. Implemented by NetworkMonitor.
class ModuleCore {
 public:
  virtual ~ModuleCore() = default;

  virtual const topo::NetworkTopology& topology() const = 0;
  virtual const PollPlan& poll_plan() const = 0;
  /// The interface-rate database, read-only: modules consume rates, the
  /// core ingests counters.
  virtual const StatsDb& samples() const = 0;
  virtual const BandwidthCalculator& calculator() const = 0;
  virtual const std::vector<WatchedPath>& watched_paths() const = 0;
  virtual SimDuration poll_interval() const = 0;
  virtual SimDuration stale_after() const = 0;
  /// Trap-driven link state (false when no failure detector is attached).
  virtual bool connection_down(std::size_t connection) const = 0;
  virtual const std::string& station() const = 0;

  // Emission hooks, meaningful during the produce phase. The core routes
  // a path sample to history storage and then to every module in
  // registration order; a connection sample goes to history only.
  virtual void emit_path_sample(const PathKey& key, SimTime time,
                                const PathUsage& usage) = 0;
  virtual void emit_connection_sample(std::size_t connection, SimTime time,
                                      BytesPerSecond used) = 0;
  /// Feeds the core's path-staleness histogram (one observation per path
  /// evaluation, complete or not).
  virtual void observe_path_age(SimDuration age) = 0;
};

/// One key/value line of a module's self-description (netqosctl, the
/// query server's module snapshot, netqosmon's end-of-run summary).
struct ModuleNote {
  std::string key;
  std::string value;
};

/// Host-side view of one module: identity, delivery/error counters, and
/// the module's own snapshot.
struct ModuleStatus {
  std::string name;
  std::uint64_t samples = 0;  ///< stream deliveries (interface + path)
  std::uint64_t errors = 0;   ///< deliveries lost to a thrown exception
  std::size_t footprint_bytes = 0;
  std::vector<ModuleNote> notes;
};

class ModuleHost;

/// Base class of every measurement module. All hooks default to no-ops,
/// so a module overrides exactly the stream events it consumes.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module();
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  /// Called once at registration, before any sample delivery.
  virtual void init(ModuleCore& core) { (void)core; }

  /// Interface samples are the poll-rate hot path (every interface of
  /// every agent, every round); the host only fans them out to modules
  /// that declare interest, so a 10k-interface fabric pays nothing for
  /// path-level modules.
  virtual bool wants_interface_samples() const { return false; }
  virtual void on_interface_sample(const InterfaceKey& interface,
                                   SimTime time, const RateSample& rate) {
    (void)interface, (void)time, (void)rate;
  }

  /// One evaluated, complete path per completed round, in path
  /// registration order. Delivery order across modules is registration
  /// order (the seed pipeline's subscription order).
  virtual void on_path_sample(const PathKey& key, SimTime time,
                              const PathUsage& usage) {
    (void)key, (void)time, (void)usage;
  }

  /// Producer phase, start of round wrap-up: modules that derive samples
  /// (the bandwidth module) emit them here via the core's hooks, before
  /// any on_round_end runs.
  virtual void produce(ModuleCore& core, SimTime round_start) {
    (void)core, (void)round_start;
  }

  /// Consumer wrap-up after every producer emitted.
  virtual void on_round_end(SimTime round_start) { (void)round_start; }

  /// Monitor stop: flush buffered output / finalize aggregates.
  virtual void flush() {}

  /// Bytes of state the module retains — the quantity the tier-2 soak
  /// asserts flat under the 10k-interface fabric. 0 = stateless.
  virtual std::size_t footprint_bytes() const { return 0; }

  /// Self-description lines for query/CLI visibility.
  virtual std::vector<ModuleNote> notes() const { return {}; }

 protected:
  /// Counts an out-of-band sample (e.g. a latency probe echo that does
  /// not flow through the host's dispatch) in this module's telemetry.
  void count_external_sample();

 private:
  friend class ModuleHost;
  std::string name_;
  ModuleHost* host_ = nullptr;
};

/// Adapter keeping the legacy NetworkMonitor::add_sample_callback API:
/// each callback becomes an anonymous consumer module, so legacy
/// subscribers and real modules share one ordered delivery list.
class CallbackModule final : public Module {
 public:
  using Callback =
      std::function<void(const PathKey&, SimTime, const PathUsage&)>;

  CallbackModule(std::string name, Callback callback)
      : Module(std::move(name)), callback_(std::move(callback)) {}

  void on_path_sample(const PathKey& key, SimTime time,
                      const PathUsage& usage) override {
    callback_(key, time, usage);
  }

 private:
  Callback callback_;
};

/// Ordered module registry + dispatcher. Owns registered modules (add)
/// or references externally owned ones (attach); keeps per-module
/// sample/error counters and a footprint gauge in the core's metrics
/// registry ({module=..., station=...} labels).
class ModuleHost {
 public:
  ModuleHost(ModuleCore& core, obs::MetricsRegistry& metrics,
             std::string station);
  ~ModuleHost();
  ModuleHost(const ModuleHost&) = delete;
  ModuleHost& operator=(const ModuleHost&) = delete;

  /// Registers an owning module at the end of the delivery order and
  /// calls its init. Names must be unique per host; a duplicate gets a
  /// "#2"-style suffix.
  Module& add(std::unique_ptr<Module> module);
  /// Registers a module owned elsewhere (detectors on the caller's
  /// stack). The module detaches itself on destruction.
  Module& attach(Module& module);
  /// Removes a module from delivery. Returns false when not registered.
  bool detach(Module& module);

  void dispatch_interface_sample(const InterfaceKey& interface, SimTime time,
                                 const RateSample& rate);
  /// True when at least one registered module consumes interface
  /// samples — the hot path's cheap pre-check.
  bool has_interface_consumers() const { return interface_consumers_ > 0; }

  void dispatch_path_sample(const PathKey& key, SimTime time,
                            const PathUsage& usage);

  /// Round wrap-up: every module's produce (registration order), then
  /// every module's on_round_end, then footprint gauges refresh.
  void run_round(SimTime round_start);

  /// Monitor stop: every module's flush, registration order.
  void flush();

  std::size_t size() const { return entries_.size(); }
  /// Registered module by name; nullptr when absent.
  Module* find(const std::string& name) const;
  std::vector<ModuleStatus> statuses() const;
  /// Sum of every module's error counter.
  std::uint64_t total_errors() const;

 private:
  friend class Module;

  struct Entry {
    Module* module = nullptr;
    std::unique_ptr<Module> owned;
    /// wants_interface_samples() captured at registration: detach runs
    /// from Module's destructor, where the virtual no longer dispatches
    /// to the derived class.
    bool interface_consumer = false;
    obs::Counter* samples = nullptr;
    obs::Counter* errors = nullptr;
    obs::Gauge* footprint = nullptr;
  };

  Entry& register_module(Module& module, std::unique_ptr<Module> owned);
  void count_sample(Module& module);
  /// Runs `fn` under the isolation contract: an exception is charged to
  /// the module's error counter and logged, never propagated.
  template <typename Fn>
  void guarded(const Entry& entry, const char* hook, Fn&& fn);

  ModuleCore& core_;
  obs::MetricsRegistry& metrics_;
  std::string station_;
  std::vector<Entry> entries_;
  int interface_consumers_ = 0;
};

}  // namespace netqos::mon
