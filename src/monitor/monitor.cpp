#include "monitor/monitor.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "common/log.h"
#include "monitor/modules/bandwidth_module.h"

namespace netqos::mon {
namespace {

/// Round-duration buckets: 1 ms .. ~4 s doubling. A round lasts at least
/// one RTT and at most timeout * (retries + 1).
const std::vector<double> kRoundDurationBounds = {
    0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064,
    0.128, 0.256, 0.512, 1.024, 2.048, 4.096};

/// Per-agent RTT buckets: 100 us .. ~1.6 s doubling, matching the
/// client-level netqos_snmp_client_rtt_seconds layout.
const std::vector<double> kRttBounds = {
    0.0001, 0.0002, 0.0004, 0.0008, 0.0016, 0.0032, 0.0064, 0.0128,
    0.0256, 0.0512, 0.1024, 0.2048, 0.4096, 0.8192, 1.6384};

/// Path-staleness buckets: 0.5 s .. ~8.5 min doubling. Fresh samples land
/// in the first buckets; a quarantined agent's path ages into the tail.
const std::vector<double> kSampleAgeBounds = {0.5, 1,  2,   4,   8,  16,
                                              32,  64, 128, 256, 512};

snmp::ClientConfig client_config_with_metrics(snmp::ClientConfig client,
                                              obs::MetricsRegistry* metrics) {
  if (client.metrics == nullptr) client.metrics = metrics;
  return client;
}

}  // namespace

NetworkMonitor::NetworkMonitor(sim::Simulator& sim,
                               const topo::NetworkTopology& topo,
                               sim::Host& station, MonitorConfig config)
    : sim_(sim),
      topo_(topo),
      config_(std::move(config)),
      plan_(PollPlan::build(topo)),
      own_metrics_(config_.metrics != nullptr
                       ? nullptr
                       : std::make_unique<obs::MetricsRegistry>()),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : own_metrics_.get()),
      station_label_(station.name()),
      client_(sim, station.udp(),
              client_config_with_metrics(config_.client, metrics_)),
      walker_(client_),
      calculator_(topo, plan_),
      own_db_(config_.retention),
      db_(&own_db_),
      history_(config_.retention),
      modules_(*this, *metrics_, station_label_) {
  init_metrics(station_label_);
  own_db_.attach_metrics(*metrics_);
  history_.attach_metrics(*metrics_, "paths");
  select_agents();
  init_scheduler();
  modules_.add(std::make_unique<BandwidthModule>());
}

NetworkMonitor::NetworkMonitor(sim::Simulator& sim,
                               const topo::NetworkTopology& topo,
                               sim::Host& station, StatsDb& shared_db,
                               MonitorConfig config)
    : sim_(sim),
      topo_(topo),
      config_(std::move(config)),
      plan_(PollPlan::build(topo)),
      own_metrics_(config_.metrics != nullptr
                       ? nullptr
                       : std::make_unique<obs::MetricsRegistry>()),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : own_metrics_.get()),
      station_label_(station.name()),
      client_(sim, station.udp(),
              client_config_with_metrics(config_.client, metrics_)),
      walker_(client_),
      calculator_(topo, plan_),
      own_db_(config_.retention),
      db_(&shared_db),
      history_(config_.retention),
      modules_(*this, *metrics_, station_label_) {
  // The shared db is not attached here: its owner (e.g. the distributed
  // coordinator) decides which registry exports it.
  init_metrics(station_label_);
  history_.attach_metrics(*metrics_, "paths");
  select_agents();
  init_scheduler();
  modules_.add(std::make_unique<BandwidthModule>());
}

void NetworkMonitor::init_scheduler() {
  SchedulerConfig scheduler_config = config_.scheduler;
  scheduler_config.poll_interval = config_.poll_interval;
  std::vector<std::string> nodes;
  nodes.reserve(polled_agents_.size());
  for (const AgentTask* task : polled_agents_) nodes.push_back(task->node);
  scheduler_ =
      std::make_unique<PollScheduler>(scheduler_config, std::move(nodes));
  scheduler_->set_transition_callback(
      [this](const std::string& node, AgentHealth from, AgentHealth to) {
        on_health_transition(node, from, to);
      });
}

SimDuration NetworkMonitor::effective_stale_after() const {
  return config_.stale_after > 0 ? config_.stale_after
                                 : 3 * config_.poll_interval;
}

void NetworkMonitor::init_metrics(const std::string& station) {
  const obs::Labels labels = {{"station", station}};
  rounds_started_ =
      &metrics_->counter("netqos_poll_rounds_started_total",
                         "Poll rounds the monitor began", labels);
  rounds_completed_ =
      &metrics_->counter("netqos_poll_rounds_completed_total",
                         "Poll rounds with every agent response accounted "
                         "for (including failed polls)",
                         labels);
  rounds_failed_ = &metrics_->counter(
      "netqos_poll_rounds_failed_total",
      "Completed rounds in which at least one agent poll failed", labels);
  agent_polls_ = &metrics_->counter("netqos_agent_polls_total",
                                    "Per-agent GET requests issued", labels);
  agent_poll_failures_ = &metrics_->counter(
      "netqos_agent_poll_failures_total",
      "Agent polls that timed out, errored, or failed to parse", labels);
  resolve_failures_ = &metrics_->counter(
      "netqos_resolve_failures_total",
      "ifTable walks that failed during interface resolution", labels);
  agent_polls_skipped_ = &metrics_->counter(
      "netqos_agent_polls_skipped_total",
      "Round slots where backoff/quarantine held an agent out", labels);
  quarantine_transitions_ = &metrics_->counter(
      "netqos_agent_quarantine_transitions_total",
      "Agent transitions into quarantine", labels);
  round_duration_ = &metrics_->histogram(
      "netqos_poll_round_duration_seconds",
      "Wall time (simulated) from round start to last agent response",
      kRoundDurationBounds, labels);
  path_sample_age_ = &metrics_->histogram(
      "netqos_path_sample_age_seconds",
      "Oldest sample feeding each per-round path report", kSampleAgeBounds,
      labels);
}

obs::HistogramMetric& NetworkMonitor::rtt_histogram(const std::string& node) {
  auto it = rtt_histograms_.find(node);
  if (it == rtt_histograms_.end()) {
    obs::HistogramMetric& h = metrics_->histogram(
        "netqos_snmp_rtt_seconds",
        "SNMP request round-trip time per polled agent", kRttBounds,
        {{"agent", node}, {"station", station_label_}});
    it = rtt_histograms_.emplace(node, &h).first;
  }
  return *it->second;
}

obs::Gauge& NetworkMonitor::health_gauge(const std::string& node) {
  auto it = health_gauges_.find(node);
  if (it == health_gauges_.end()) {
    obs::Gauge& g = metrics_->gauge(
        "netqos_agent_health",
        "Agent health state (0 healthy, 1 degraded, 2 quarantined)",
        {{"agent", node}, {"station", station_label_}});
    it = health_gauges_.emplace(node, &g).first;
  }
  return *it->second;
}

obs::Gauge& NetworkMonitor::backoff_gauge(const std::string& node) {
  auto it = backoff_gauges_.find(node);
  if (it == backoff_gauges_.end()) {
    obs::Gauge& g = metrics_->gauge(
        "netqos_agent_backoff_level",
        "Consecutive poll failures driving the agent's backoff exponent",
        {{"agent", node}, {"station", station_label_}});
    it = backoff_gauges_.emplace(node, &g).first;
  }
  return *it->second;
}

MonitorStats NetworkMonitor::stats() const {
  MonitorStats stats;
  stats.rounds_started = rounds_started_->value();
  stats.rounds_completed = rounds_completed_->value();
  stats.rounds_failed = rounds_failed_->value();
  stats.agent_polls = agent_polls_->value();
  stats.agent_poll_failures = agent_poll_failures_->value();
  stats.resolve_failures = resolve_failures_->value();
  stats.polls_skipped = agent_polls_skipped_->value();
  stats.quarantine_transitions = quarantine_transitions_->value();
  return stats;
}

void NetworkMonitor::set_failure_detector(FailureDetector* detector) {
  failure_detector_ = detector;
  if (detector != nullptr) {
    detector->add_callback([this](const LinkEvent& event) {
      if (running_) on_link_event(event);
    });
  }
}

const AgentTask* NetworkMonitor::task_for(const std::string& node) const {
  auto it = task_index_.find(node);
  return it != task_index_.end() ? it->second : nullptr;
}

void NetworkMonitor::on_link_event(const LinkEvent& event) {
  if (!event.up) return;
  // linkUp trap: the segment is back, so recovery must not wait out the
  // backoff the outage built up — re-probe the unhealthy agents at both
  // ends of the restored connection right now.
  std::vector<std::string> candidates = {event.node};
  if (event.connection.has_value()) {
    const topo::Connection& conn = topo_.connections()[*event.connection];
    candidates.push_back(conn.a.node);
    candidates.push_back(conn.b.node);
  }
  std::set<std::string> probed;
  for (const std::string& node : candidates) {
    if (!probed.insert(node).second) continue;
    const auto* state = scheduler_->find(node);
    if (state == nullptr || state->health == AgentHealth::kHealthy) continue;
    const AgentTask* task = task_for(node);
    if (task == nullptr) continue;
    scheduler_->request_reprobe(node, sim_.now());
    scheduler_->record_launch(node, sim_.now());
    poll_agent(*task, nullptr);
  }
}

void NetworkMonitor::on_health_transition(const std::string& node,
                                          AgentHealth from, AgentHealth to) {
  health_gauge(node).set(static_cast<double>(to));
  NETQOS_INFO_C("monitor") << station_label_ << ": agent " << node << " "
                           << agent_health_name(from) << " -> "
                           << agent_health_name(to);
  const bool entered = to == AgentHealth::kQuarantined;
  const bool left = from == AgentHealth::kQuarantined;
  if (!entered && !left) return;
  if (entered) quarantine_transitions_->inc();
  plan_.set_agent_quarantined(node, entered);
  recompute_extra_interfaces();
  for (const auto& callback : quarantine_callbacks_) callback(node, entered);
}

void NetworkMonitor::apply_external_quarantine(const std::string& node,
                                               bool quarantined) {
  plan_.set_agent_quarantined(node, quarantined);
  recompute_extra_interfaces();
}

void NetworkMonitor::recompute_extra_interfaces() {
  extra_interfaces_.clear();
  for (std::size_t ci = 0; ci < topo_.connections().size(); ++ci) {
    const auto& point = plan_.measurement_for(ci);
    const auto& primary = plan_.primary_measurement_for(ci);
    if (!point.has_value()) continue;
    // Only active fallbacks need ad-hoc polling; the primary points are
    // already in the static AgentTask interface lists.
    if (primary.has_value() && primary->node == point->node &&
        primary->interface == point->interface) {
      continue;
    }
    const AgentTask* task = task_for(point->node);
    if (task == nullptr) continue;  // some other station polls this agent
    if (std::find(task->interfaces.begin(), task->interfaces.end(),
                  point->interface) != task->interfaces.end()) {
      continue;
    }
    auto& extras = extra_interfaces_[point->node];
    if (std::find(extras.begin(), extras.end(), point->interface) ==
        extras.end()) {
      extras.push_back(point->interface);
    }
  }
}

void NetworkMonitor::select_agents() {
  for (const AgentTask& task : plan_.agents()) {
    if (config_.agent_allowlist.empty()) {
      polled_agents_.push_back(&task);
      continue;
    }
    for (const auto& allowed : config_.agent_allowlist) {
      if (task.node == allowed) {
        polled_agents_.push_back(&task);
        break;
      }
    }
  }
  for (const AgentTask* task : polled_agents_) {
    task_index_.emplace(task->node, task);
  }
}

bool NetworkMonitor::adopt_agent(const std::string& node) {
  if (task_index_.count(node) != 0) return false;
  const AgentTask* adopted = nullptr;
  for (const AgentTask& task : plan_.agents()) {
    if (task.node == node) {
      adopted = &task;
      break;
    }
  }
  if (adopted == nullptr) return false;
  polled_agents_.push_back(adopted);
  task_index_.emplace(node, adopted);
  scheduler_->add_agent(node);
  health_gauge(node).set(0.0);
  backoff_gauge(node).set(0.0);
  recompute_extra_interfaces();
  // A first-time adoption still needs its ifIndexes; a re-adoption (or a
  // pre-start adoption, resolved with everyone else) polls immediately.
  if (running_ && !has_resolved_indexes(node)) {
    resolve_queue_.push_back(adopted);
    pump_resolve_queue();
  }
  return true;
}

bool NetworkMonitor::release_agent(const std::string& node) {
  auto it = task_index_.find(node);
  if (it == task_index_.end()) return false;
  polled_agents_.erase(
      std::find(polled_agents_.begin(), polled_agents_.end(), it->second));
  std::erase(resolve_queue_, it->second);
  task_index_.erase(it);
  // Keep if_indexes_ (and any table poller): re-adoption then resumes
  // without a new resolution walk. An in-flight poll's callback finds no
  // scheduler entry and drops its result on the floor.
  scheduler_->remove_agent(node);
  recompute_extra_interfaces();
  return true;
}

bool NetworkMonitor::has_resolved_indexes(const std::string& node) const {
  auto it = if_indexes_.lower_bound({node, std::string()});
  return it != if_indexes_.end() && it->first.first == node;
}

void NetworkMonitor::add_path(const std::string& from,
                              const std::string& to) {
  auto path = topo::traverse_recursive(topo_, from, to);
  if (!path.has_value()) {
    throw std::invalid_argument("no communication path between '" + from +
                                "' and '" + to + "'");
  }
  MonitoredPath entry;
  entry.key = {from, to};
  entry.path = std::move(*path);
  paths_.push_back(std::move(entry));
  // Rebuild the module-facing view: the push_back may have reallocated
  // the Path storage the old views pointed into.
  watched_paths_.clear();
  watched_paths_.reserve(paths_.size());
  for (const MonitoredPath& p : paths_) {
    watched_paths_.push_back({p.key, &p.path});
  }
}

void NetworkMonitor::start() {
  if (running_) return;
  running_ = true;
  if (polled_agents_.empty()) {
    throw std::logic_error("no SNMP-capable nodes to poll");
  }
  // Batch mode also pre-sizes resolution walks from the agent's reported
  // ifNumber; both wire-traffic changes ride the one opt-in flag.
  walker_.set_prefetch_if_number(config_.batch_table_polls);
  for (const AgentTask* task : polled_agents_) {
    health_gauge(task->node).set(0.0);
    backoff_gauge(task->node).set(0.0);
  }
  rounds_scheduled_ = false;
  resolve_queue_.assign(polled_agents_.begin(), polled_agents_.end());
  pump_resolve_queue();
}

void NetworkMonitor::stop() {
  if (!running_) return;
  running_ = false;
  if (next_round_event_ != 0) {
    sim_.cancel(next_round_event_);
    next_round_event_ = 0;
  }
  // Modules finalize their aggregates before the stop callbacks flush
  // output streams.
  modules_.flush();
  for (const auto& callback : stop_callbacks_) callback();
}

void NetworkMonitor::pump_resolve_queue() {
  if (!running_ || resolving_) return;
  if (resolve_queue_.empty()) {
    if (!rounds_scheduled_) {
      // All ifIndexes resolved; begin polling (the distributed extension
      // phases stations apart via start_offset).
      rounds_scheduled_ = true;
      schedule_round(sim_.now() + config_.scheduler.start_offset);
    }
    return;
  }
  const AgentTask& task = *resolve_queue_.front();
  resolve_queue_.pop_front();
  resolving_ = true;
  const snmp::Oid descr_column =
      snmp::mib2::kIfEntry.child(snmp::mib2::kIfDescrColumn);
  walker_.walk(
      task.address, task.community, descr_column,
      [this, &task](snmp::WalkResult result) {
        resolving_ = false;
        if (!result.ok) {
          resolve_failures_->inc();
          NETQOS_WARN_C("monitor") << "ifTable walk failed on " << task.node
                                   << ": " << result.error;
        } else {
          for (const auto& vb : result.varbinds) {
            // Instance OID is ifDescr.<ifIndex>.
            const std::uint32_t if_index = vb.oid[vb.oid.size() - 1];
            if (const auto* name = std::get_if<std::string>(&vb.value)) {
              if_indexes_[{task.node, *name}] = if_index;
            }
          }
        }
        pump_resolve_queue();
      });
}

void NetworkMonitor::schedule_round(SimTime when) {
  next_round_event_ = sim_.schedule_at(when, [this] {
    next_round_event_ = 0;
    if (running_) run_round();
  });
}

void NetworkMonitor::run_round() {
  rounds_started_->inc();
  auto round = std::make_shared<Round>();
  round->started = sim_.now();
  // The scheduler decides who gets polled this round; backed-off agents
  // sit rounds out. Paths are still evaluated (and honestly annotated
  // stale) even when nobody is due.
  const auto due = scheduler_->due(round->started);
  round->outstanding = due.size();
  if (due.size() < polled_agents_.size()) {
    agent_polls_skipped_->inc(polled_agents_.size() - due.size());
  }
  if (config_.spans != nullptr) {
    round->span = config_.spans->begin("poll_round", "monitor", sim_.now(),
                                       {{"station", station_label_}});
    round->has_span = true;
  }

  for (const PollScheduler::AgentState* state : due) {
    const AgentTask* task = task_for(state->node);
    if (task == nullptr) {
      if (--round->outstanding == 0) finish_round(round);
      continue;
    }
    scheduler_->record_launch(state->node, round->started);
    // Phase/jitter de-burst the request train; zero keeps the launch
    // inline so the default event order matches the lock-step monitor.
    const SimDuration delay = state->phase + scheduler_->draw_jitter();
    if (delay <= 0) {
      poll_agent(*task, round);
    } else {
      sim_.schedule_after(delay, [this, task, round] {
        if (running_) {
          poll_agent(*task, round);
        } else if (--round->outstanding == 0) {
          finish_round(round);
        }
      });
    }
  }
  if (due.empty()) finish_round(round);
  // Fixed polling period, independent of round completion latency.
  schedule_round(round->started + config_.poll_interval);
}

void NetworkMonitor::poll_agent(const AgentTask& task,
                                const std::shared_ptr<Round>& round) {
  using snmp::mib2::if_column;

  if (config_.batch_table_polls) {
    // The poller serves one sweep at a time; an out-of-round re-probe
    // overlapping a round's sweep falls through to the GET path instead
    // of being dropped.
    if (!table_poller_for(task).busy()) {
      poll_agent_batched(task, round);
      return;
    }
  }

  // Static plan interfaces plus any §4.1 fallback ports this agent
  // covers while a host agent is quarantined.
  std::vector<std::string> wanted = task.interfaces;
  if (auto it = extra_interfaces_.find(task.node);
      it != extra_interfaces_.end()) {
    wanted.insert(wanted.end(), it->second.begin(), it->second.end());
  }

  // Interfaces with resolved indices, in request order.
  std::vector<std::string> interfaces;
  std::vector<snmp::Oid> oids;
  oids.push_back(snmp::mib2::kSysUpTime.child(0));
  for (const auto& if_name : wanted) {
    auto it = if_indexes_.find({task.node, if_name});
    if (it == if_indexes_.end()) continue;
    const std::uint32_t index = it->second;
    interfaces.push_back(if_name);
    if (config_.use_hc_counters) {
      oids.push_back(
          snmp::mib2::ifx_column(snmp::mib2::kIfHCInOctetsColumn, index));
      oids.push_back(
          snmp::mib2::ifx_column(snmp::mib2::kIfHCOutOctetsColumn, index));
    } else {
      oids.push_back(if_column(snmp::mib2::kIfInOctetsColumn, index));
      oids.push_back(if_column(snmp::mib2::kIfOutOctetsColumn, index));
    }
    oids.push_back(if_column(snmp::mib2::kIfInUcastPktsColumn, index));
    oids.push_back(if_column(snmp::mib2::kIfOutUcastPktsColumn, index));
    oids.push_back(if_column(snmp::mib2::kIfInDiscardsColumn, index));
    oids.push_back(if_column(snmp::mib2::kIfOutDiscardsColumn, index));
  }
  if (interfaces.empty()) {
    if (round != nullptr && --round->outstanding == 0) finish_round(round);
    return;
  }

  // Re-probes (null round) stamp samples with their own launch time.
  const SimTime sample_time = round != nullptr ? round->started : sim_.now();

  agent_polls_->inc();
  obs::SpanRecorder::SpanId poll_span = 0;
  const bool has_poll_span = config_.spans != nullptr;
  if (has_poll_span) {
    poll_span = config_.spans->begin("poll_agent", "monitor", sim_.now(),
                                     {{"agent", task.node}});
  }
  client_.get(
      task.address, task.community, std::move(oids),
      [this, node = task.node, interfaces = std::move(interfaces), round,
       sample_time, poll_span, has_poll_span](snmp::SnmpResult result) {
        if (has_poll_span) config_.spans->end(poll_span, sim_.now());
        if (result.ok()) {
          rtt_histogram(node).observe(to_seconds(result.rtt));
        }
        const bool usable =
            result.ok() && result.varbinds.size() == 1 + 6 * interfaces.size();
        bool poll_ok = usable;
        if (!usable) {
          agent_poll_failures_->inc();
          if (round != nullptr) round->failed_any = true;
        } else {
          bool parse_ok = true;
          std::uint32_t uptime = 0;
          if (const auto* ticks =
                  std::get_if<snmp::TimeTicks>(&result.varbinds[0].value)) {
            uptime = ticks->value;
          } else {
            parse_ok = false;
          }
          for (std::size_t i = 0; parse_ok && i < interfaces.size(); ++i) {
            const std::size_t base = 1 + 6 * i;
            CounterSample sample;
            sample.sys_uptime_ticks = uptime;
            sample.high_capacity = config_.use_hc_counters;
            if (config_.use_hc_counters) {
              const auto* in_oct = std::get_if<snmp::Counter64>(
                  &result.varbinds[base].value);
              const auto* out_oct = std::get_if<snmp::Counter64>(
                  &result.varbinds[base + 1].value);
              if (in_oct == nullptr || out_oct == nullptr) {
                parse_ok = false;
                break;
              }
              sample.in_octets = in_oct->value;
              sample.out_octets = out_oct->value;
            } else {
              const auto* in_oct = std::get_if<snmp::Counter32>(
                  &result.varbinds[base].value);
              const auto* out_oct = std::get_if<snmp::Counter32>(
                  &result.varbinds[base + 1].value);
              if (in_oct == nullptr || out_oct == nullptr) {
                parse_ok = false;
                break;
              }
              sample.in_octets = in_oct->value;
              sample.out_octets = out_oct->value;
            }
            const auto* in_pkt = std::get_if<snmp::Counter32>(
                &result.varbinds[base + 2].value);
            const auto* out_pkt = std::get_if<snmp::Counter32>(
                &result.varbinds[base + 3].value);
            const auto* in_disc = std::get_if<snmp::Counter32>(
                &result.varbinds[base + 4].value);
            const auto* out_disc = std::get_if<snmp::Counter32>(
                &result.varbinds[base + 5].value);
            if (in_pkt == nullptr || out_pkt == nullptr ||
                in_disc == nullptr || out_disc == nullptr) {
              parse_ok = false;
              break;
            }
            sample.in_packets = in_pkt->value;
            sample.out_packets = out_pkt->value;
            sample.in_discards = in_disc->value;
            sample.out_discards = out_disc->value;
            const InterfaceKey key{node, interfaces[i]};
            if (const auto rate = db_->update(key, sample_time, sample);
                rate.has_value() && modules_.has_interface_consumers()) {
              modules_.dispatch_interface_sample(key, sample_time, *rate);
            }
          }
          if (!parse_ok) {
            agent_poll_failures_->inc();
            poll_ok = false;
            if (round != nullptr) round->failed_any = true;
          }
        }
        scheduler_->record_result(node, poll_ok, sim_.now());
        if (const auto* state = scheduler_->find(node)) {
          backoff_gauge(node).set(
              static_cast<double>(state->consecutive_failures));
        }
        if (round != nullptr && --round->outstanding == 0) {
          finish_round(round);
        }
      });
}

snmp::TablePoller& NetworkMonitor::table_poller_for(const AgentTask& task) {
  auto it = table_pollers_.find(task.node);
  if (it == table_pollers_.end()) {
    using snmp::mib2::kIfEntry;
    using snmp::mib2::kIfXEntry;
    std::vector<snmp::Oid> columns;
    columns.reserve(6);
    if (config_.use_hc_counters) {
      columns.push_back(kIfXEntry.child(snmp::mib2::kIfHCInOctetsColumn));
      columns.push_back(kIfXEntry.child(snmp::mib2::kIfHCOutOctetsColumn));
    } else {
      columns.push_back(kIfEntry.child(snmp::mib2::kIfInOctetsColumn));
      columns.push_back(kIfEntry.child(snmp::mib2::kIfOutOctetsColumn));
    }
    columns.push_back(kIfEntry.child(snmp::mib2::kIfInUcastPktsColumn));
    columns.push_back(kIfEntry.child(snmp::mib2::kIfOutUcastPktsColumn));
    columns.push_back(kIfEntry.child(snmp::mib2::kIfInDiscardsColumn));
    columns.push_back(kIfEntry.child(snmp::mib2::kIfOutDiscardsColumn));
    it = table_pollers_
             .emplace(task.node, std::make_unique<snmp::TablePoller>(
                                     client_, task.address, task.community,
                                     std::move(columns)))
             .first;
  }
  return *it->second;
}

void NetworkMonitor::poll_agent_batched(const AgentTask& task,
                                        const std::shared_ptr<Round>& round) {
  std::vector<std::string> wanted = task.interfaces;
  if (auto it = extra_interfaces_.find(task.node);
      it != extra_interfaces_.end()) {
    wanted.insert(wanted.end(), it->second.begin(), it->second.end());
  }
  // Resolved (ifDescr, ifIndex) targets; the sweep returns whole rows, so
  // unlike the GET path the request itself does not depend on these.
  std::vector<std::pair<std::string, std::uint32_t>> targets;
  targets.reserve(wanted.size());
  for (const auto& if_name : wanted) {
    auto it = if_indexes_.find({task.node, if_name});
    if (it == if_indexes_.end()) continue;
    targets.emplace_back(if_name, it->second);
  }
  if (targets.empty()) {
    if (round != nullptr && --round->outstanding == 0) finish_round(round);
    return;
  }

  const SimTime sample_time = round != nullptr ? round->started : sim_.now();

  agent_polls_->inc();
  obs::SpanRecorder::SpanId poll_span = 0;
  const bool has_poll_span = config_.spans != nullptr;
  if (has_poll_span) {
    poll_span = config_.spans->begin("poll_agent", "monitor", sim_.now(),
                                     {{"agent", task.node}});
  }
  table_poller_for(task).collect(
      [this, node = task.node, targets = std::move(targets), round,
       sample_time, poll_span, has_poll_span](snmp::TableResult table) {
        if (has_poll_span) config_.spans->end(poll_span, sim_.now());
        bool poll_ok = table.ok;
        if (poll_ok) {
          for (const auto& [if_name, index] : targets) {
            if (index == 0 || index > table.rows.size() ||
                !table.complete_row(index - 1, 6)) {
              poll_ok = false;
              continue;  // complete rows are still ingested below
            }
            const auto& cells = table.rows[index - 1].cells;
            CounterSample sample;
            sample.sys_uptime_ticks =
                static_cast<std::uint32_t>(table.uptime_ticks);
            sample.high_capacity = config_.use_hc_counters;
            if (config_.use_hc_counters) {
              const auto* in_oct = std::get_if<snmp::Counter64>(&cells[0]);
              const auto* out_oct = std::get_if<snmp::Counter64>(&cells[1]);
              if (in_oct == nullptr || out_oct == nullptr) {
                poll_ok = false;
                continue;
              }
              sample.in_octets = in_oct->value;
              sample.out_octets = out_oct->value;
            } else {
              const auto* in_oct = std::get_if<snmp::Counter32>(&cells[0]);
              const auto* out_oct = std::get_if<snmp::Counter32>(&cells[1]);
              if (in_oct == nullptr || out_oct == nullptr) {
                poll_ok = false;
                continue;
              }
              sample.in_octets = in_oct->value;
              sample.out_octets = out_oct->value;
            }
            const auto* in_pkt = std::get_if<snmp::Counter32>(&cells[2]);
            const auto* out_pkt = std::get_if<snmp::Counter32>(&cells[3]);
            const auto* in_disc = std::get_if<snmp::Counter32>(&cells[4]);
            const auto* out_disc = std::get_if<snmp::Counter32>(&cells[5]);
            if (in_pkt == nullptr || out_pkt == nullptr ||
                in_disc == nullptr || out_disc == nullptr) {
              poll_ok = false;
              continue;
            }
            sample.in_packets = in_pkt->value;
            sample.out_packets = out_pkt->value;
            sample.in_discards = in_disc->value;
            sample.out_discards = out_disc->value;
            const InterfaceKey key{node, if_name};
            if (const auto rate = db_->update(key, sample_time, sample);
                rate.has_value() && modules_.has_interface_consumers()) {
              modules_.dispatch_interface_sample(key, sample_time, *rate);
            }
          }
        }
        if (!poll_ok) {
          agent_poll_failures_->inc();
          if (round != nullptr) round->failed_any = true;
        }
        scheduler_->record_result(node, poll_ok, sim_.now());
        if (const auto* state = scheduler_->find(node)) {
          backoff_gauge(node).set(
              static_cast<double>(state->consecutive_failures));
        }
        if (round != nullptr && --round->outstanding == 0) {
          finish_round(round);
        }
      });
}

void NetworkMonitor::finish_round(const std::shared_ptr<Round>& round) {
  rounds_completed_->inc();
  if (round->failed_any) rounds_failed_->inc();
  round_duration_->observe(to_seconds(sim_.now() - round->started));
  if (round->has_span) config_.spans->end(round->span, sim_.now());

  // Metric computation is entirely the modules' job: the bandwidth
  // producer evaluates every watched path and emits the round's sample
  // stream, which routes back through emit_* below to history storage
  // and the consumer modules.
  modules_.run_round(round->started);
}

void NetworkMonitor::emit_path_sample(const PathKey& key, SimTime time,
                                      const PathUsage& usage) {
  history_.append(hist::path_series_key(key.first, key.second, "used"), time,
                  usage.used_at_bottleneck);
  history_.append(hist::path_series_key(key.first, key.second, "avail"),
                  time, usage.available);
  modules_.dispatch_path_sample(key, time, usage);
}

void NetworkMonitor::emit_connection_sample(std::size_t connection,
                                            SimTime time,
                                            BytesPerSecond used) {
  history_.append(hist::connection_series_key(connection), time, used);
}

void NetworkMonitor::observe_path_age(SimDuration age) {
  path_sample_age_->observe(to_seconds(age));
}

const TimeSeries& NetworkMonitor::materialized_series(
    const std::string& key) const {
  TimeSeries& scratch = series_scratch_[key];
  scratch = TimeSeries();
  if (const hist::Series* series = history_.find(key)) {
    series->materialize_raw(scratch);
  }
  return scratch;
}

const TimeSeries* NetworkMonitor::connection_used_series(
    std::size_t connection) const {
  const std::string key = hist::connection_series_key(connection);
  if (history_.find(key) == nullptr) return nullptr;
  return &materialized_series(key);
}

const NetworkMonitor::MonitoredPath& NetworkMonitor::find_path_entry(
    const std::string& from, const std::string& to) const {
  for (const auto& entry : paths_) {
    if ((entry.key.first == from && entry.key.second == to) ||
        (entry.key.first == to && entry.key.second == from)) {
      return entry;
    }
  }
  throw std::out_of_range("path " + from + " <-> " + to + " not monitored");
}

const TimeSeries& NetworkMonitor::used_series(const std::string& from,
                                              const std::string& to) const {
  const MonitoredPath& entry = find_path_entry(from, to);
  return materialized_series(
      hist::path_series_key(entry.key.first, entry.key.second, "used"));
}

const TimeSeries& NetworkMonitor::available_series(
    const std::string& from, const std::string& to) const {
  const MonitoredPath& entry = find_path_entry(from, to);
  return materialized_series(
      hist::path_series_key(entry.key.first, entry.key.second, "avail"));
}

PathUsage NetworkMonitor::current_usage(const std::string& from,
                                        const std::string& to) const {
  return calculator_.path_usage(find_path_entry(from, to).path, *db_,
                                sim_.now(), effective_stale_after());
}

const topo::Path& NetworkMonitor::path_of(const std::string& from,
                                          const std::string& to) const {
  return find_path_entry(from, to).path;
}

std::vector<PathKey> NetworkMonitor::monitored_paths() const {
  std::vector<PathKey> keys;
  keys.reserve(paths_.size());
  for (const MonitoredPath& entry : paths_) {
    keys.push_back(entry.key);
  }
  return keys;
}

}  // namespace netqos::mon
