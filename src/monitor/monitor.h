// The network QoS monitor — the paper's primary contribution.
//
// Runs on a monitoring station host (host L in the paper's testbed),
// obtains the topology from the specification file, resolves interface
// indices by walking each agent's ifTable, then polls every agent
// periodically over real (simulated) SNMP, maintains per-interface rate
// statistics, and evaluates per-path used/available bandwidth with the
// §3.3 hub/switch rules.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "history/store.h"
#include "monitor/bandwidth.h"
#include "monitor/failure.h"
#include "monitor/module.h"
#include "monitor/plan.h"
#include "monitor/scheduler.h"
#include "monitor/stats_db.h"
#include "netsim/host.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "snmp/client.h"
#include "snmp/table.h"
#include "snmp/walker.h"
#include "topology/path.h"

namespace netqos::mon {

struct MonitorConfig {
  SimDuration poll_interval = 2 * kSecond;
  snmp::ClientConfig client = {.timeout = 500 * kMillisecond, .retries = 1};
  /// When non-empty, poll only these agent nodes. Used by the distributed
  /// extension to partition polling across monitor stations.
  std::vector<std::string> agent_allowlist;
  /// Poll the RFC 2863 high-capacity Counter64 octet columns instead of
  /// the paper's Counter32 ones — immune to the ~6-minute wrap at
  /// 100 Mbps. Requires agents that serve the ifXTable (ours do).
  bool use_hc_counters = false;
  /// Batch each agent's poll as one whole-ifTable GETBULK sweep
  /// (TablePoller) instead of one GET naming every resolved interface.
  /// O(1) request size per agent, no per-request varbind cap, and the
  /// interface-resolution walk prefetches ifNumber to pre-size its
  /// result. Changes wire traffic, so it is opt-in; the default GET path
  /// reproduces the paper's byte-exact poll exchange.
  bool batch_table_polls = false;
  /// Registry all monitor telemetry (and, unless overridden via
  /// client.metrics, the SNMP client's) lands in. Null means the monitor
  /// owns a private registry; pass a shared one to export a process-wide
  /// exposition. Monitor series carry a station="<host>" label so several
  /// stations can share one registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// When set, every poll round records a span with nested per-agent poll
  /// spans — the JSONL timeline of the monitor's own behavior.
  obs::SpanRecorder* spans = nullptr;
  /// Adaptive per-agent scheduling knobs (backoff base/cap, stagger,
  /// launch jitter, quarantine threshold). The scheduler's poll_interval
  /// is overwritten with `poll_interval` above — one cadence knob only.
  SchedulerConfig scheduler;
  /// Sample age beyond which a path report is flagged stale.
  /// 0 = 3 * poll_interval.
  SimDuration stale_after = 0;
  /// Multi-resolution retention for all history the monitor keeps (path
  /// used/available, per-connection usage, and — via its own StatsDb —
  /// per-interface rates). Memory is bounded by these ring capacities
  /// regardless of run length.
  hist::RetentionPolicy retention;
};

/// Snapshot of the monitor's health counters, assembled from the metrics
/// registry (the single source of truth).
struct MonitorStats {
  std::uint64_t rounds_started = 0;
  std::uint64_t rounds_completed = 0;
  std::uint64_t rounds_failed = 0;  ///< completed with >= 1 failed poll
  std::uint64_t agent_polls = 0;
  std::uint64_t agent_poll_failures = 0;
  std::uint64_t resolve_failures = 0;
  std::uint64_t polls_skipped = 0;  ///< rounds where backoff held an agent out
  std::uint64_t quarantine_transitions = 0;
};

class NetworkMonitor : private ModuleCore {
 public:
  /// `station` is the host the monitor runs on; all SNMP traffic leaves
  /// through its UDP stack and therefore consumes real bandwidth.
  NetworkMonitor(sim::Simulator& sim, const topo::NetworkTopology& topo,
                 sim::Host& station, MonitorConfig config = {});

  /// As above, but records samples into an external shared StatsDb (the
  /// distributed extension merges several pollers into one view). The db
  /// must outlive the monitor.
  NetworkMonitor(sim::Simulator& sim, const topo::NetworkTopology& topo,
                 sim::Host& station, StatsDb& shared_db,
                 MonitorConfig config);

  /// Registers a host pair. The communication path is computed with the
  /// paper's recursive traversal. Throws std::invalid_argument when no
  /// path exists.
  void add_path(const std::string& from, const std::string& to);

  /// Resolves ifIndexes (one ifTable walk per agent) and then begins
  /// periodic polling.
  void start();
  void stop();
  bool running() const { return running_; }

  /// Invoked from stop(), once per registered callback. Reporting sinks
  /// use this to flush buffered output.
  using StopCallback = std::function<void()>;
  void add_stop_callback(StopCallback callback) {
    stop_callbacks_.push_back(std::move(callback));
  }

  /// Invoked after every completed poll round, once per monitored path.
  /// Multiple consumers (reporting sinks, the QoS detector, the RM
  /// middleware) may subscribe. Each callback registers as an anonymous
  /// consumer module, so legacy subscribers and measurement modules
  /// share one delivery list ordered by registration — the subscription
  /// order the seed pipeline fired callbacks in.
  using SampleCallback =
      std::function<void(const PathKey&, SimTime, const PathUsage&)>;
  void add_sample_callback(SampleCallback callback) {
    modules_.add(std::make_unique<CallbackModule>("callback",
                                                  std::move(callback)));
  }

  /// The measurement-module registry: the built-in bandwidth producer is
  /// always first; detectors, sinks, and observer modules follow in
  /// registration order. Use add(unique_ptr) for monitor-owned modules
  /// and attach(ref) for externally owned ones.
  ModuleHost& modules() { return modules_; }
  const ModuleHost& modules() const { return modules_; }
  /// Shorthand for modules().add — registers a monitor-owned module.
  Module& add_module(std::unique_ptr<Module> module) {
    return modules_.add(std::move(module));
  }

  /// Bytes/sec used at the path bottleneck over time (the paper's
  /// "measured bandwidth usage" curves), materialized from the bounded
  /// history store's raw ring: a snapshot as of this call (re-fetch after
  /// advancing the simulation) holding at most the retention policy's raw
  /// capacity of samples. The reference stays valid until the next call
  /// for the same path.
  const TimeSeries& used_series(const std::string& from,
                                const std::string& to) const;
  /// Bytes/sec available (min over connections) over time; same
  /// materialized-snapshot semantics as used_series.
  const TimeSeries& available_series(const std::string& from,
                                     const std::string& to) const;

  /// The bounded multi-resolution store backing all path and connection
  /// history. Windowed min/mean/max/p95 queries go through here, keyed by
  /// hist::path_series_key / hist::connection_series_key.
  const hist::HistoryStore& history() const { return history_; }

  /// Current usage snapshot for a monitored path.
  PathUsage current_usage(const std::string& from,
                          const std::string& to) const;

  /// Attaches trap-driven link-state knowledge: paths crossing a downed
  /// connection evaluate to zero available bandwidth (with `link_down`
  /// set) instead of reporting stale counters, and a linkUp trap clears
  /// any poll backoff on the endpoints' agents for an immediate re-probe.
  /// The detector must outlive the monitor.
  void set_failure_detector(FailureDetector* detector);

  /// Fired when a locally polled agent enters (true) or leaves (false)
  /// quarantine. The distributed extension uses this to mirror fallback
  /// measure points onto the worker that polls the fallback switch.
  using QuarantineCallback = std::function<void(const std::string&, bool)>;
  void add_quarantine_callback(QuarantineCallback callback) {
    quarantine_callbacks_.push_back(std::move(callback));
  }

  /// Applies a quarantine decision made by another monitor station: flips
  /// the plan's measure points (and this station's fallback polling)
  /// without touching the local scheduler's health state.
  void apply_external_quarantine(const std::string& node, bool quarantined);

  /// Takes over polling an agent mid-run (shard ownership handoff): the
  /// agent joins this station's scheduler healthy and immediately due,
  /// and its ifIndexes are resolved on first contact if unknown. Returns
  /// false when the agent is unknown to the plan or already polled here.
  bool adopt_agent(const std::string& node);
  /// Stops polling an agent handed off to another station. Resolved
  /// ifIndexes are kept so a later re-adoption polls without a new walk.
  /// Returns false when the agent is not polled here.
  bool release_agent(const std::string& node);

  /// Per-connection usage history (bytes/sec used) for connections on
  /// monitored paths, materialized from the bounded store like
  /// used_series. Returns nullptr before the first completed round
  /// touching that connection.
  const TimeSeries* connection_used_series(std::size_t connection) const;

  /// The traversed path for a registered pair.
  const topo::Path& path_of(const std::string& from,
                            const std::string& to) const;

  /// Host pairs registered via add_path, in registration order. The query
  /// engine enumerates these for health snapshots and path grouping.
  std::vector<PathKey> monitored_paths() const;

  const PollPlan& plan() const { return plan_; }
  const StatsDb& stats_db() const { return *db_; }
  /// Per-agent health/backoff state machine driving poll launches.
  const PollScheduler& scheduler() const { return *scheduler_; }
  /// The staleness bound in force (config override or 3 * poll_interval).
  SimDuration effective_stale_after() const;
  /// Agents this instance actually polls (after allowlist filtering).
  const std::vector<const AgentTask*>& polled_agents() const {
    return polled_agents_;
  }
  /// Health counters, read back from the metrics registry.
  MonitorStats stats() const;
  snmp::ClientStats client_stats() const { return client_.stats(); }
  /// The registry the monitor's instruments live in (own or shared).
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const topo::NetworkTopology& topology() const override { return topo_; }
  /// Name of the station host this monitor polls from.
  const std::string& station() const override { return station_label_; }

 private:
  // ModuleCore: the read-only state and emission hooks measurement
  // modules see. Emissions route through the core so modules never touch
  // the HistoryStore (or each other) directly.
  const PollPlan& poll_plan() const override { return plan_; }
  const StatsDb& samples() const override { return *db_; }
  const BandwidthCalculator& calculator() const override {
    return calculator_;
  }
  const std::vector<WatchedPath>& watched_paths() const override {
    return watched_paths_;
  }
  SimDuration poll_interval() const override {
    return config_.poll_interval;
  }
  SimDuration stale_after() const override {
    return effective_stale_after();
  }
  bool connection_down(std::size_t connection) const override {
    return failure_detector_ != nullptr &&
           failure_detector_->connection_down(connection);
  }
  void emit_path_sample(const PathKey& key, SimTime time,
                        const PathUsage& usage) override;
  void emit_connection_sample(std::size_t connection, SimTime time,
                              BytesPerSecond used) override;
  void observe_path_age(SimDuration age) override;

  struct MonitoredPath {
    PathKey key;
    topo::Path path;
  };

  struct Round {
    SimTime started = 0;
    std::size_t outstanding = 0;
    bool failed_any = false;
    obs::SpanRecorder::SpanId span = 0;
    bool has_span = false;
  };

  void select_agents();
  void init_scheduler();
  void init_metrics(const std::string& station);
  obs::HistogramMetric& rtt_histogram(const std::string& node);
  obs::Gauge& health_gauge(const std::string& node);
  obs::Gauge& backoff_gauge(const std::string& node);
  /// Walks the next queued agent's ifDescr column; when the queue drains
  /// for the first time, schedules the first poll round.
  void pump_resolve_queue();
  bool has_resolved_indexes(const std::string& node) const;
  void schedule_round(SimTime when);
  void run_round();
  /// Launches one poll of `task`. `round` may be null for an out-of-round
  /// re-probe (the sample is then stamped with the launch time).
  void poll_agent(const AgentTask& task, const std::shared_ptr<Round>& round);
  /// Batched variant: one whole-table GETBULK sweep via the agent's
  /// TablePoller instead of a per-interface GET.
  void poll_agent_batched(const AgentTask& task,
                          const std::shared_ptr<Round>& round);
  snmp::TablePoller& table_poller_for(const AgentTask& task);
  void finish_round(const std::shared_ptr<Round>& round);
  void on_health_transition(const std::string& node, AgentHealth from,
                            AgentHealth to);
  void on_link_event(const LinkEvent& event);
  /// Rebuilds the per-agent list of fallback interfaces to poll on top of
  /// each static AgentTask, from the plan's current effective points.
  void recompute_extra_interfaces();
  const AgentTask* task_for(const std::string& node) const;
  const MonitoredPath& find_path_entry(const std::string& from,
                                       const std::string& to) const;
  /// Materializes a store series into the named scratch slot, returning a
  /// reference that lives until the next materialization of that slot.
  const TimeSeries& materialized_series(const std::string& key) const;

  sim::Simulator& sim_;
  const topo::NetworkTopology& topo_;
  MonitorConfig config_;
  PollPlan plan_;
  // Telemetry precedes client_: the client's config may point into the
  // monitor's registry, so it must exist first.
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;
  obs::MetricsRegistry* metrics_;  ///< own_metrics_ or config-provided
  std::string station_label_;
  obs::Counter* rounds_started_ = nullptr;
  obs::Counter* rounds_completed_ = nullptr;
  obs::Counter* rounds_failed_ = nullptr;
  obs::Counter* agent_polls_ = nullptr;
  obs::Counter* agent_poll_failures_ = nullptr;
  obs::Counter* resolve_failures_ = nullptr;
  obs::Counter* agent_polls_skipped_ = nullptr;
  obs::Counter* quarantine_transitions_ = nullptr;
  obs::HistogramMetric* round_duration_ = nullptr;
  obs::HistogramMetric* path_sample_age_ = nullptr;
  // Per-agent RTT histograms (netqos_snmp_rtt_seconds{agent=...}), cached
  // so the hot path avoids a registry lookup per poll.
  std::map<std::string, obs::HistogramMetric*> rtt_histograms_;
  // Per-agent health (0/1/2 = healthy/degraded/quarantined) and backoff
  // level (consecutive failures) gauges, cached like the RTT histograms.
  std::map<std::string, obs::Gauge*> health_gauges_;
  std::map<std::string, obs::Gauge*> backoff_gauges_;
  snmp::SnmpClient client_;
  snmp::SubtreeWalker walker_;
  BandwidthCalculator calculator_;
  StatsDb own_db_;
  StatsDb* db_;  ///< &own_db_ or the shared db
  std::vector<const AgentTask*> polled_agents_;
  // node -> task mirror of polled_agents_: task_for runs per poll launch,
  // which is O(agents^2) per round on a fabric with a linear scan.
  std::unordered_map<std::string, const AgentTask*> task_index_;
  // Lazily built per-agent whole-table collectors (batch mode only).
  std::unordered_map<std::string, std::unique_ptr<snmp::TablePoller>>
      table_pollers_;
  // Built in the constructor body over polled_agents_ (hence the
  // indirection); never null after construction.
  std::unique_ptr<PollScheduler> scheduler_;
  // Fallback interfaces polled in addition to each AgentTask's static
  // list while a quarantine redirects measure points (§4.1).
  std::map<std::string, std::vector<std::string>> extra_interfaces_;

  std::vector<MonitoredPath> paths_;
  // (node, ifDescr) -> resolved ifIndex on that agent.
  std::map<InterfaceKey, std::uint32_t> if_indexes_;

  bool running_ = false;
  // Agents awaiting their ifDescr resolution walk. The walker serves one
  // walk at a time, so the queue is pumped from each walk's callback;
  // agents adopted mid-run join the same queue.
  std::deque<const AgentTask*> resolve_queue_;
  bool resolving_ = false;
  bool rounds_scheduled_ = false;
  sim::EventId next_round_event_ = 0;
  std::vector<StopCallback> stop_callbacks_;
  std::vector<QuarantineCallback> quarantine_callbacks_;
  const FailureDetector* failure_detector_ = nullptr;
  /// Bounded path/connection history (per-interface rates live in the
  /// StatsDb's own store).
  hist::HistoryStore history_;
  /// Scratch for the materialized TimeSeries views over store rings.
  mutable std::map<std::string, TimeSeries> series_scratch_;
  /// paths_ re-expressed for modules; rebuilt whenever paths_ changes
  /// (push_back may reallocate the Path storage the views point into).
  std::vector<WatchedPath> watched_paths_;
  /// The measurement modules: bandwidth producer first (registered by
  /// the constructor), then detectors/sinks/observers in registration
  /// order. Declared last so modules may hold references into the core
  /// during destruction.
  ModuleHost modules_;
};

}  // namespace netqos::mon
