// Reporting sinks: CSV writer and experiment-style summaries.
#pragma once

#include <ostream>
#include <string>

#include "common/stats.h"
#include "loadgen/profile.h"
#include "monitor/monitor.h"

namespace netqos::mon {

/// Streams every path sample as CSV rows:
/// time_s,from,to,used_KBps,available_KBps,bottleneck,freshness,age_s
class CsvSink {
 public:
  /// Subscribes to the monitor; the stream is flushed when the monitor
  /// stops. `out` must outlive the sink. A failed stream (badbit) is
  /// reported with a warning once instead of silently dropping rows.
  CsvSink(NetworkMonitor& monitor, std::ostream& out,
          bool write_header = true);

 private:
  std::ostream& out_;
  bool warned_bad_stream_ = false;
};

/// Writes the registry's JSONL snapshot (one object per series) when the
/// monitor stops, so a run's final metrics land on disk even when the
/// caller forgets an explicit render — the same stop-flush contract
/// CsvSink has for sample rows.
class MetricsJsonlSink {
 public:
  /// `registry` and `out` must outlive the monitor's stop.
  MetricsJsonlSink(NetworkMonitor& monitor, obs::MetricsRegistry& registry,
                   std::ostream& out);

 private:
  std::ostream& out_;
};

/// Writes the span timeline as trace-event JSONL when the monitor stops;
/// companion to MetricsJsonlSink for the tracing side.
class TraceJsonlSink {
 public:
  /// `spans` and `out` must outlive the monitor's stop.
  TraceJsonlSink(NetworkMonitor& monitor, const obs::SpanRecorder& spans,
                 std::ostream& out);

 private:
  std::ostream& out_;
};

/// One row of a Table 2 style summary for a constant-load window.
struct LoadWindowStats {
  double generated_kbps = 0.0;        ///< KB/s, paper's "Generated Load"
  double measured_kbps = 0.0;         ///< average measured over the window
  double less_background_kbps = 0.0;  ///< measured minus background
  double percent_error = 0.0;         ///< of the window average
  double max_percent_error = 0.0;     ///< worst individual sample
  /// 95th percentile of per-sample |error| (histogram approximation) —
  /// a robust companion to max_percent_error, which a single polling
  /// spike dominates.
  double p95_percent_error = 0.0;
  /// Holt-smoothed slope of the measured series over the window, in KB/s
  /// per second — ~0 on a well-measured constant-load window; nonzero
  /// flags drift or contamination. Same estimator the PredictiveDetector
  /// uses for early warnings.
  double trend_kbps_per_s = 0.0;
};

/// Computes a Table 2 row from a measured series over [begin, end), given
/// the generated payload rate and the background level (both bytes/sec).
/// `settle` trims the start of the window so staircase transitions (and
/// one polling interval of lag) don't contaminate the average.
LoadWindowStats analyze_window(const TimeSeries& measured, SimTime begin,
                               SimTime end, BytesPerSecond generated,
                               BytesPerSecond background,
                               SimDuration settle = 0);

/// Average of a measured series over a window with zero generated load —
/// the paper's background estimate.
BytesPerSecond estimate_background(const TimeSeries& measured, SimTime begin,
                                   SimTime end);

}  // namespace netqos::mon
