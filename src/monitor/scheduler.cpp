#include "monitor/scheduler.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace netqos::mon {

const char* agent_health_name(AgentHealth health) {
  switch (health) {
    case AgentHealth::kHealthy: return "healthy";
    case AgentHealth::kDegraded: return "degraded";
    case AgentHealth::kQuarantined: return "quarantined";
  }
  return "?";
}

PollScheduler::PollScheduler(SchedulerConfig config,
                             std::vector<std::string> nodes)
    : config_(config), jitter_state_(config.jitter_seed) {
  agents_.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    AgentState agent;
    agent.node = std::move(nodes[i]);
    agent.phase = static_cast<SimDuration>(i) * config_.stagger;
    agents_.push_back(std::move(agent));
  }
}

void PollScheduler::add_agent(const std::string& node) {
  if (find(node) != nullptr) return;
  AgentState agent;
  agent.node = node;
  agent.phase =
      static_cast<SimDuration>(agents_.size()) * config_.stagger;
  agents_.push_back(std::move(agent));
}

bool PollScheduler::remove_agent(const std::string& node) {
  for (auto it = agents_.begin(); it != agents_.end(); ++it) {
    if (it->node == node) {
      agents_.erase(it);
      return true;
    }
  }
  return false;
}

SimDuration PollScheduler::effective_cap() const {
  return config_.backoff_cap > 0 ? config_.backoff_cap
                                 : 8 * config_.poll_interval;
}

SimDuration PollScheduler::backoff_interval(const AgentState& agent) const {
  if (config_.backoff_base <= 1.0 || agent.consecutive_failures == 0) {
    return config_.poll_interval;
  }
  const double cap_seconds = to_seconds(effective_cap());
  const double backed =
      to_seconds(config_.poll_interval) *
      std::pow(config_.backoff_base, agent.consecutive_failures);
  return from_seconds(std::min(backed, cap_seconds));
}

SimDuration PollScheduler::draw_jitter() {
  if (config_.launch_jitter <= 0) return 0;
  SplitMix64 mix(jitter_state_);
  jitter_state_ = mix.next();
  return static_cast<SimDuration>(
      jitter_state_ % static_cast<std::uint64_t>(config_.launch_jitter));
}

std::vector<const PollScheduler::AgentState*> PollScheduler::due(
    SimTime now) const {
  std::vector<const AgentState*> result;
  result.reserve(agents_.size());
  for (const AgentState& agent : agents_) {
    if (agent.next_due <= now) result.push_back(&agent);
  }
  return result;
}

PollScheduler::AgentState* PollScheduler::find_mutable(
    const std::string& node) {
  for (AgentState& agent : agents_) {
    if (agent.node == node) return &agent;
  }
  return nullptr;
}

const PollScheduler::AgentState* PollScheduler::find(
    const std::string& node) const {
  for (const AgentState& agent : agents_) {
    if (agent.node == node) return &agent;
  }
  return nullptr;
}

void PollScheduler::transition(AgentState& agent, AgentHealth to) {
  if (agent.health == to) return;
  const AgentHealth from = agent.health;
  agent.health = to;
  if (to == AgentHealth::kQuarantined) ++agent.quarantines;
  if (transition_) transition_(agent.node, from, to);
}

void PollScheduler::record_launch(const std::string& node, SimTime now) {
  AgentState* agent = find_mutable(node);
  if (agent == nullptr) return;
  ++agent->polls;
  // Hold the agent out of the next round(s) until this poll resolves;
  // record_result then sets the real next_due.
  agent->next_due = now + config_.poll_interval;
}

void PollScheduler::record_result(const std::string& node, bool ok,
                                  SimTime now) {
  AgentState* agent = find_mutable(node);
  if (agent == nullptr) return;
  if (ok) {
    agent->consecutive_failures = 0;
    agent->next_due = 0;  // due every round again
    transition(*agent, AgentHealth::kHealthy);
    return;
  }
  ++agent->failures;
  ++agent->consecutive_failures;
  if (agent->consecutive_failures >= config_.quarantine_after) {
    if (agent->health != AgentHealth::kQuarantined) {
      agent->quarantined_at = now;
    }
    transition(*agent, AgentHealth::kQuarantined);
  } else {
    transition(*agent, AgentHealth::kDegraded);
  }
  if (config_.backoff_base <= 1.0) {
    // Fixed-interval mode: stay due every round, exactly like the
    // lock-step monitor (a failure resolves mid-interval, so `now +
    // poll_interval` would silently skip every other round).
    agent->next_due = 0;
  } else {
    agent->next_due = now + backoff_interval(*agent);
  }
}

void PollScheduler::request_reprobe(const std::string& node, SimTime now) {
  AgentState* agent = find_mutable(node);
  if (agent == nullptr) return;
  agent->next_due = now;
}

}  // namespace netqos::mon
