// Bandwidth calculation (paper §3.3).
//
// Per connection i: used bandwidth u_i, maximum bandwidth m_i (from
// ifSpeed / connection speed), available a_i = m_i - u_i. Switch rule:
// u_i = t_i, the traffic of the connection's own interface. Hub rule:
// u_i = sum of the traffic of every *host* attached to the collision
// domain, capped at the domain speed ("u_i cannot exceed the maximum
// speed of the hub"). Path availability: A = min(a_1 ... a_n).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "monitor/plan.h"
#include "monitor/stats_db.h"
#include "topology/path.h"

namespace netqos::mon {

struct ConnectionUsage {
  std::size_t connection = 0;
  BytesPerSecond used = 0.0;       ///< u_i, bytes/sec
  BytesPerSecond capacity = 0.0;   ///< m_i, bytes/sec
  BytesPerSecond available = 0.0;  ///< a_i = m_i - u_i (floored at 0)
  /// Packets/sec being dropped at the measuring interface: the direct
  /// congestion signal a saturated segment shows before rates flatten.
  double discard_rate = 0.0;
  bool hub_rule = false;           ///< computed with the domain sum
  bool measured = false;           ///< false when no data was available
};

struct PathUsage {
  bool complete = false;  ///< every connection on the path was measured
  /// True when a connection on the path is administratively/physically
  /// down (reported via linkDown trap): available is then zero.
  bool link_down = false;
  BytesPerSecond available = 0.0;  ///< A = min a_i
  /// u at the bottleneck (the connection attaining the minimum): this is
  /// what the paper's figures plot as "measured bandwidth usage" of the
  /// path.
  BytesPerSecond used_at_bottleneck = 0.0;
  std::size_t bottleneck = 0;  ///< connection index attaining the min
  std::vector<ConnectionUsage> connections;
};

/// Evaluates the §3.3 rules against the latest rates in a StatsDb.
class BandwidthCalculator {
 public:
  BandwidthCalculator(const topo::NetworkTopology& topo,
                      const PollPlan& plan);

  /// Usage of one connection from current StatsDb contents.
  ConnectionUsage connection_usage(std::size_t conn,
                                   const StatsDb& db) const;

  /// Usage along a path (sequence of connection indices).
  PathUsage path_usage(const topo::Path& path, const StatsDb& db) const;

 private:
  /// t_i: measured traffic (in+out bytes/s) of one connection, if its
  /// measure point has produced a rate.
  std::optional<BytesPerSecond> connection_traffic(std::size_t conn,
                                                   const StatsDb& db) const;
  /// Hub-domain used bandwidth: sum of host-member traffic, capped.
  std::optional<BytesPerSecond> domain_usage(std::size_t domain,
                                             const StatsDb& db) const;

  const topo::NetworkTopology& topo_;
  const PollPlan& plan_;
};

}  // namespace netqos::mon
