// Bandwidth calculation (paper §3.3).
//
// Per connection i: used bandwidth u_i, maximum bandwidth m_i (from
// ifSpeed / connection speed), available a_i = m_i - u_i. Switch rule:
// u_i = t_i, the traffic of the connection's own interface. Hub rule:
// u_i = sum of the traffic of every *host* attached to the collision
// domain, capped at the domain speed ("u_i cannot exceed the maximum
// speed of the hub"). Path availability: A = min(a_1 ... a_n).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "monitor/plan.h"
#include "monitor/stats_db.h"
#include "topology/path.h"

namespace netqos::mon {

/// How trustworthy a figure computed from StatsDb samples is.
enum class Freshness {
  kUnknown,  ///< freshness was not evaluated (no reference time given)
  kFresh,    ///< every sample involved is younger than the staleness bound
  kStale,    ///< at least one sample has outlived the bound
};

const char* freshness_name(Freshness freshness);

struct ConnectionUsage {
  std::size_t connection = 0;
  BytesPerSecond used = 0.0;       ///< u_i, bytes/sec
  BytesPerSecond capacity = 0.0;   ///< m_i, bytes/sec
  BytesPerSecond available = 0.0;  ///< a_i = m_i - u_i (floored at 0)
  /// Packets/sec being dropped at the measuring interface: the direct
  /// congestion signal a saturated segment shows before rates flatten.
  double discard_rate = 0.0;
  bool hub_rule = false;           ///< computed with the domain sum
  bool measured = false;           ///< false when no data was available
  /// Measured via the §4.1 switch-port fallback (quarantined host agent).
  bool via_switch = false;
  /// Age of the measure point's latest sample when evaluated; unset for
  /// the 2-arg path_usage() or when no sample exists yet.
  std::optional<SimDuration> sample_age;
};

struct PathUsage {
  bool complete = false;  ///< every connection on the path was measured
  /// True when a connection on the path is administratively/physically
  /// down (reported via linkDown trap): available is then zero.
  bool link_down = false;
  BytesPerSecond available = 0.0;  ///< A = min a_i
  /// u at the bottleneck (the connection attaining the minimum): this is
  /// what the paper's figures plot as "measured bandwidth usage" of the
  /// path.
  BytesPerSecond used_at_bottleneck = 0.0;
  std::size_t bottleneck = 0;  ///< connection index attaining the min
  /// Staleness verdict: kFresh only when the path is complete and every
  /// measured sample's age is within the bound handed to path_usage().
  Freshness freshness = Freshness::kUnknown;
  /// Largest sample age along the path (0 when nothing was measured).
  SimDuration max_sample_age = 0;
  std::vector<ConnectionUsage> connections;
};

/// Evaluates the §3.3 rules against the latest rates in a StatsDb.
class BandwidthCalculator {
 public:
  BandwidthCalculator(const topo::NetworkTopology& topo,
                      const PollPlan& plan);

  /// Usage of one connection from current StatsDb contents.
  ConnectionUsage connection_usage(std::size_t conn,
                                   const StatsDb& db) const;

  /// Usage along a path (sequence of connection indices). Freshness stays
  /// kUnknown — use the overload below when a reference time is known.
  PathUsage path_usage(const topo::Path& path, const StatsDb& db) const;

  /// As above, plus staleness: annotates each connection with its sample
  /// age at `now` and classifies the path kFresh/kStale against
  /// `stale_after`. A path that is incomplete, or whose oldest sample
  /// exceeds the bound, is kStale — never silently fresh.
  PathUsage path_usage(const topo::Path& path, const StatsDb& db,
                       SimTime now, SimDuration stale_after) const;

 private:
  /// t_i: measured traffic (in+out bytes/s) of one connection, if its
  /// measure point has produced a rate.
  std::optional<BytesPerSecond> connection_traffic(std::size_t conn,
                                                   const StatsDb& db) const;
  /// Hub-domain used bandwidth: sum of host-member traffic, capped.
  std::optional<BytesPerSecond> domain_usage(std::size_t domain,
                                             const StatsDb& db) const;

  const topo::NetworkTopology& topo_;
  const PollPlan& plan_;
};

}  // namespace netqos::mon
