#include "monitor/discovery.h"

#include <algorithm>
#include <set>

#include "common/units.h"
#include "snmp/oid.h"

namespace netqos::mon {
namespace {

std::string mac_hex(const std::string& raw) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (unsigned char c : raw) {
    out += digits[c >> 4];
    out += digits[c & 0xf];
  }
  return out;
}

}  // namespace

TopologyDiscovery::TopologyDiscovery(snmp::SnmpClient& client)
    : client_(client), walker_(client) {}

void TopologyDiscovery::run(std::vector<DiscoveryTarget> targets,
                            Callback callback) {
  if (busy_) {
    throw std::logic_error("TopologyDiscovery already running");
  }
  busy_ = true;
  callback_ = std::move(callback);
  agents_.clear();
  for (auto& target : targets) {
    AgentInfo info;
    info.target = target;
    agents_.push_back(std::move(info));
  }
  interrogate(0);
}

void TopologyDiscovery::interrogate(std::size_t index) {
  if (index >= agents_.size()) {
    infer();
    return;
  }
  const AgentInfo& target = agents_[index];
  client_.get(target.target.address, target.target.community,
              {snmp::mib2::kSysName.child(0)},
              [this, index](snmp::SnmpResult result) {
                AgentInfo& agent = agents_[index];
                if (!result.ok() || result.varbinds.empty() ||
                    snmp::is_exception(result.varbinds[0].value)) {
                  agent.reachable = false;
                  interrogate(index + 1);
                  return;
                }
                agent.reachable = true;
                if (const auto* name = std::get_if<std::string>(
                        &result.varbinds[0].value)) {
                  agent.sys_name = *name;
                }
                walk_column(index, 0);
              });
}

void TopologyDiscovery::walk_column(std::size_t index, int phase) {
  static const snmp::Oid kColumns[] = {
      snmp::mib2::kIfEntry.child(snmp::mib2::kIfDescrColumn),
      snmp::mib2::kIfEntry.child(snmp::mib2::kIfSpeedColumn),
      snmp::mib2::kIfEntry.child(snmp::mib2::kIfPhysAddressColumn),
      snmp::mib2::kDot1dTpFdbPort,
  };
  if (phase >= 4) {
    interrogate(index + 1);
    return;
  }
  const AgentInfo& target = agents_[index];
  walker_.walk(
      target.target.address, target.target.community, kColumns[phase],
      [this, index, phase](snmp::WalkResult result) {
        AgentInfo& agent = agents_[index];
        if (result.ok) {
          for (const auto& vb : result.varbinds) {
            if (phase == 3) {
              // dot1dTpFdbPort.<6 mac arcs> = port
              const auto& arcs = vb.oid.arcs();
              if (arcs.size() < 6) continue;
              std::string mac;
              for (std::size_t i = arcs.size() - 6; i < arcs.size(); ++i) {
                mac += static_cast<char>(arcs[i] & 0xff);
              }
              if (const auto* port =
                      std::get_if<std::int64_t>(&vb.value)) {
                agent.fdb[mac] = static_cast<std::uint32_t>(*port);
              }
              continue;
            }
            const std::uint32_t if_index = vb.oid[vb.oid.size() - 1];
            switch (phase) {
              case 0:
                if (const auto* s = std::get_if<std::string>(&vb.value)) {
                  agent.if_descr[if_index] = *s;
                }
                break;
              case 1:
                if (const auto* g = std::get_if<snmp::Gauge32>(&vb.value)) {
                  agent.if_speed[if_index] = g->value;
                }
                break;
              case 2:
                if (const auto* s = std::get_if<std::string>(&vb.value)) {
                  agent.if_phys[if_index] = *s;
                }
                break;
              default:
                break;
            }
          }
        }
        walk_column(index, phase + 1);
      });
}

void TopologyDiscovery::infer() {
  DiscoveryResult result;
  result.ok = true;

  // MAC (raw octets) -> (node name, interface name) for agent-owned NICs.
  std::map<std::string, topo::Endpoint> mac_owner;

  // 1. Nodes from reachable agents.
  for (const AgentInfo& agent : agents_) {
    if (!agent.reachable) {
      result.unreachable.push_back(agent.target.address);
      result.notes.push_back("unreachable: " +
                             agent.target.address.to_string());
      continue;
    }
    topo::NodeSpec node;
    node.name = agent.sys_name.empty() ? agent.target.address.to_string()
                                       : agent.sys_name;
    node.kind = agent.is_switch() ? topo::NodeKind::kSwitch
                                  : topo::NodeKind::kHost;
    node.snmp_enabled = true;
    node.snmp_community = agent.target.community;
    if (node.kind == topo::NodeKind::kSwitch) {
      node.management_ipv4 = agent.target.address.to_string();
    }
    bool first_interface = true;
    for (const auto& [if_index, descr] : agent.if_descr) {
      topo::InterfaceSpec itf;
      itf.local_name = descr;
      auto speed_it = agent.if_speed.find(if_index);
      itf.speed = speed_it != agent.if_speed.end() ? speed_it->second : 0;
      if (node.kind == topo::NodeKind::kHost) {
        if (first_interface) {
          // The agent answered on this address; MIB-II has no address
          // table in this implementation, so attribute it to the first
          // interface.
          itf.ipv4 = agent.target.address.to_string();
          first_interface = false;
        }
        auto phys_it = agent.if_phys.find(if_index);
        if (phys_it != agent.if_phys.end()) {
          mac_owner[phys_it->second] =
              topo::Endpoint{node.name, itf.local_name};
        }
      }
      node.interfaces.push_back(std::move(itf));
    }
    result.topology.add_node(std::move(node));
    result.notes.push_back(
        std::string(agent.is_switch() ? "switch: " : "host: ") +
        result.topology.nodes().back().name);
  }

  // 2. Attachments from each switch's FDB.
  for (const AgentInfo& agent : agents_) {
    if (!agent.reachable || !agent.is_switch()) continue;
    const std::string sw_name = agent.sys_name.empty()
                                    ? agent.target.address.to_string()
                                    : agent.sys_name;

    // Group learned MACs by port.
    std::map<std::uint32_t, std::vector<std::string>> by_port;
    for (const auto& [mac, port] : agent.fdb) by_port[port].push_back(mac);

    for (auto& [port, macs] : by_port) {
      auto descr_it = agent.if_descr.find(port);
      if (descr_it == agent.if_descr.end()) continue;
      const std::string& port_name = descr_it->second;

      // Resolve each MAC to an endpoint, inventing placeholder hosts for
      // MACs no agent owns (the paper's agentless S3-S6).
      std::vector<topo::Endpoint> endpoints;
      for (const std::string& mac : macs) {
        auto owner = mac_owner.find(mac);
        if (owner != mac_owner.end()) {
          endpoints.push_back(owner->second);
          continue;
        }
        topo::NodeSpec ghost;
        ghost.name = "host-" + mac_hex(mac);
        ghost.kind = topo::NodeKind::kHost;
        ghost.snmp_enabled = false;
        topo::InterfaceSpec itf;
        itf.local_name = "if0";
        auto speed_it = agent.if_speed.find(port);
        itf.speed = speed_it != agent.if_speed.end() ? speed_it->second
                                                     : mbps(10);
        // No agent answered for this MAC, so its IP is unknown.
        ghost.interfaces.push_back(itf);
        if (result.topology.find_node(ghost.name) == nullptr) {
          result.topology.add_node(ghost);
          result.notes.push_back("agentless host inferred from FDB: " +
                                 ghost.name);
        }
        endpoints.push_back(topo::Endpoint{ghost.name, "if0"});
        mac_owner[mac] = endpoints.back();
      }

      if (endpoints.size() == 1) {
        result.topology.add_connection(
            {topo::Endpoint{sw_name, port_name}, endpoints.front()});
        result.notes.push_back("direct: " + sw_name + "." + port_name +
                               " <-> " + endpoints.front().to_string());
      } else if (endpoints.size() > 1) {
        // Shared segment: synthesize a hub.
        topo::NodeSpec hub;
        hub.name = "hub-" + sw_name + "-" + port_name;
        hub.kind = topo::NodeKind::kHub;
        auto speed_it = agent.if_speed.find(port);
        hub.default_speed = speed_it != agent.if_speed.end()
                                ? speed_it->second
                                : mbps(10);
        topo::InterfaceSpec uplink;
        uplink.local_name = "up";
        hub.interfaces.push_back(uplink);
        for (std::size_t i = 0; i < endpoints.size(); ++i) {
          topo::InterfaceSpec member;
          member.local_name = "h" + std::to_string(i + 1);
          hub.interfaces.push_back(member);
        }
        result.topology.add_node(hub);
        result.topology.add_connection(
            {topo::Endpoint{hub.name, "up"},
             topo::Endpoint{sw_name, port_name}});
        for (std::size_t i = 0; i < endpoints.size(); ++i) {
          result.topology.add_connection(
              {topo::Endpoint{hub.name, "h" + std::to_string(i + 1)},
               endpoints[i]});
        }
        result.notes.push_back("shared segment on " + sw_name + "." +
                               port_name + ": inferred " + hub.name +
                               " with " + std::to_string(endpoints.size()) +
                               " members");
      }
    }
  }

  const auto problems = result.topology.validate();
  for (const auto& p : problems) {
    result.notes.push_back("validation: " + p);
  }

  busy_ = false;
  Callback callback = std::move(callback_);
  callback(std::move(result));
}

}  // namespace netqos::mon
