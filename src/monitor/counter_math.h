// Counter differencing (paper §3.1).
//
// "Because the polling results are cumulative numbers, this data has to
// be polled periodically. The old value is subtracted from the new one
// ... The time interval between two polling processes can be found using
// the system uptime data."
//
// MIB-II counters are Counter32: they wrap modulo 2^32, so deltas are
// computed in modular arithmetic. sysUpTime is TimeTicks (centiseconds)
// and also wraps (after ~497 days).
#pragma once

#include <cstdint>
#include <optional>

#include "common/units.h"

namespace netqos::mon {

/// Modular Counter32 delta: correct across a single wrap.
constexpr std::uint32_t counter32_delta(std::uint32_t older,
                                        std::uint32_t newer) {
  return newer - older;  // unsigned arithmetic wraps exactly as needed
}

/// Modular TimeTicks delta in centiseconds.
constexpr std::uint32_t timeticks_delta(std::uint32_t older,
                                        std::uint32_t newer) {
  return newer - older;
}

/// One agent-side reading of an interface, stamped with the agent's own
/// sysUpTime so rate computation is immune to network/queueing delays on
/// the response's way back. Octet counters may come from the classic
/// Counter32 columns (wrap at 2^32) or from the RFC 2863 high-capacity
/// Counter64 columns; `high_capacity` selects the wrap arithmetic.
struct CounterSample {
  std::uint32_t sys_uptime_ticks = 0;  ///< agent sysUpTime (centiseconds)
  std::uint64_t in_octets = 0;   ///< zero-extended when from Counter32
  std::uint64_t out_octets = 0;
  std::uint32_t in_packets = 0;
  std::uint32_t out_packets = 0;
  std::uint32_t in_discards = 0;   ///< ifInDiscards
  std::uint32_t out_discards = 0;  ///< ifOutDiscards (queue overflow)
  bool high_capacity = false;
};

/// Per-interface rates over one polling interval.
struct RateSample {
  double interval_seconds = 0.0;
  BytesPerSecond in_rate = 0.0;
  BytesPerSecond out_rate = 0.0;
  double in_packet_rate = 0.0;
  double out_packet_rate = 0.0;
  /// Packets per second dropped at the interface — queue overflow under
  /// congestion. Nonzero drop rates are the QoS-diagnosis smoking gun.
  double discard_rate = 0.0;

  /// Traffic through the interface in both directions (paper §3.1).
  BytesPerSecond total_rate() const { return in_rate + out_rate; }
};

/// Modular Counter64 delta (wraps only after ~5 years at 100 Gbps).
constexpr std::uint64_t counter64_delta(std::uint64_t older,
                                        std::uint64_t newer) {
  return newer - older;
}

/// Differences two samples. Returns nullopt when the uptime delta is zero
/// (same cache snapshot, or agent restarted to the same tick) or when the
/// samples mix counter widths.
std::optional<RateSample> compute_rates(const CounterSample& older,
                                        const CounterSample& newer);

}  // namespace netqos::mon
