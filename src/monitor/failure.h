// Link-failure detection from SNMP traps (DeSiDeRaTa "failure detection").
//
// Agents emit linkDown/linkUp SNMPv2 traps on carrier transitions; this
// detector listens on the monitoring station, maps the trap's source
// agent + ifDescr back to the topology connection, and reports link
// events with the affected monitored resource identified.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "netsim/host.h"
#include "snmp/trap.h"
#include "topology/model.h"

namespace netqos::mon {

struct LinkEvent {
  SimTime time = 0;
  std::string node;       ///< agent that reported
  std::string interface;  ///< ifDescr from the trap
  bool up = false;
  /// Topology connection the interface belongs to, when resolvable.
  std::optional<std::size_t> connection;
};

class FailureDetector {
 public:
  using Callback = std::function<void(const LinkEvent&)>;

  /// Listens on `station`'s UDP/162. Agents must be deployed with this
  /// station's address as their trap sink.
  FailureDetector(sim::Simulator& sim, const topo::NetworkTopology& topo,
                  sim::Host& station);

  void add_callback(Callback callback) {
    callbacks_.push_back(std::move(callback));
  }

  const std::vector<LinkEvent>& events() const { return events_; }

  /// True while the given connection is known to be down.
  bool connection_down(std::size_t connection) const;

  const snmp::TrapListenerStats& listener_stats() const;

 private:
  void on_trap(const snmp::TrapNotification& trap);
  std::optional<std::string> node_for_agent(sim::Ipv4Address source) const;

  sim::Simulator& sim_;
  const topo::NetworkTopology& topo_;
  std::unique_ptr<snmp::TrapListener> listener_;
  std::vector<LinkEvent> events_;
  std::vector<Callback> callbacks_;
  std::vector<bool> down_;  ///< per-connection down flag
};

}  // namespace netqos::mon
