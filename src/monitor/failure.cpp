#include "monitor/failure.h"

#include "netsim/simulator.h"

namespace netqos::mon {

FailureDetector::FailureDetector(sim::Simulator& sim,
                                 const topo::NetworkTopology& topo,
                                 sim::Host& station)
    : sim_(sim), topo_(topo), down_(topo.connections().size(), false) {
  listener_ = std::make_unique<snmp::TrapListener>(
      station.udp(),
      [this](const snmp::TrapNotification& trap) { on_trap(trap); });
}

std::optional<std::string> FailureDetector::node_for_agent(
    sim::Ipv4Address source) const {
  for (const auto& node : topo_.nodes()) {
    if (!node.snmp_enabled) continue;
    if (!node.management_ipv4.empty() &&
        sim::Ipv4Address::parse(node.management_ipv4) == source) {
      return node.name;
    }
    for (const auto& itf : node.interfaces) {
      if (!itf.ipv4.empty() && sim::Ipv4Address::parse(itf.ipv4) == source) {
        return node.name;
      }
    }
  }
  return std::nullopt;
}

void FailureDetector::on_trap(const snmp::TrapNotification& trap) {
  const bool is_down = trap.trap_oid == snmp::mib2::kLinkDownTrap;
  const bool is_up = trap.trap_oid == snmp::mib2::kLinkUpTrap;
  if (!is_down && !is_up) return;  // not a link trap

  LinkEvent event;
  event.time = sim_.now();
  event.up = is_up;
  if (auto node = node_for_agent(trap.source)) {
    event.node = *node;
  } else {
    event.node = trap.source.to_string();
  }
  for (const auto& vb : trap.varbinds) {
    if (vb.oid.starts_with(
            snmp::mib2::kIfEntry.child(snmp::mib2::kIfDescrColumn))) {
      if (const auto* name = std::get_if<std::string>(&vb.value)) {
        event.interface = *name;
      }
    }
  }

  // Map to the topology connection.
  if (!event.interface.empty()) {
    for (std::size_t ci : topo_.connections_of(event.node)) {
      if (topo_.connections()[ci].end_at(event.node).interface ==
          event.interface) {
        event.connection = ci;
        down_[ci] = is_down;
        break;
      }
    }
  }

  events_.push_back(event);
  for (const auto& callback : callbacks_) callback(events_.back());
}

bool FailureDetector::connection_down(std::size_t connection) const {
  return connection < down_.size() && down_[connection];
}

const snmp::TrapListenerStats& FailureDetector::listener_stats() const {
  return listener_->stats();
}

}  // namespace netqos::mon
