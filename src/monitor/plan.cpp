#include "monitor/plan.h"

#include <map>
#include <stdexcept>

namespace netqos::mon {
namespace {

/// The address the agent on `node` answers on, or nullopt.
std::optional<sim::Ipv4Address> agent_address(const topo::NodeSpec& node) {
  if (!node.snmp_enabled) return std::nullopt;
  if (node.kind == topo::NodeKind::kHost) {
    for (const auto& itf : node.interfaces) {
      if (!itf.ipv4.empty()) return sim::Ipv4Address::parse(itf.ipv4);
    }
    return std::nullopt;
  }
  if (node.kind == topo::NodeKind::kSwitch &&
      !node.management_ipv4.empty()) {
    return sim::Ipv4Address::parse(node.management_ipv4);
  }
  return std::nullopt;  // hubs (and misconfigured switches) have no agent
}

}  // namespace

PollPlan PollPlan::build(const topo::NetworkTopology& topo) {
  const auto problems = topo.validate();
  if (!problems.empty()) {
    std::string all = "invalid topology:";
    for (const auto& p : problems) all += "\n  - " + p;
    throw std::invalid_argument(all);
  }

  PollPlan plan;
  plan.domains_ = topo::collision_domains(topo);
  plan.domain_of_ = topo::connection_domains(topo, plan.domains_);
  plan.measurements_.resize(topo.connections().size());

  // node name -> interfaces that must be polled there
  std::map<std::string, std::vector<std::string>> needed;

  for (std::size_t ci = 0; ci < topo.connections().size(); ++ci) {
    const topo::Connection& conn = topo.connections()[ci];

    // Preference 1: an endpoint host running an agent.
    std::optional<MeasurePoint> chosen;
    for (const topo::Endpoint* ep : {&conn.a, &conn.b}) {
      const topo::NodeSpec* node = topo.find_node(ep->node);
      if (node->kind == topo::NodeKind::kHost &&
          agent_address(*node).has_value()) {
        chosen = MeasurePoint{ep->node, ep->interface, false};
        break;
      }
    }
    // Preference 2 (paper §4.1): the SNMP-capable switch port.
    if (!chosen.has_value()) {
      for (const topo::Endpoint* ep : {&conn.a, &conn.b}) {
        const topo::NodeSpec* node = topo.find_node(ep->node);
        if (node->kind == topo::NodeKind::kSwitch &&
            agent_address(*node).has_value()) {
          chosen = MeasurePoint{ep->node, ep->interface, true};
          break;
        }
      }
    }

    plan.measurements_[ci] = chosen;
    if (chosen.has_value()) {
      needed[chosen->node].push_back(chosen->interface);
    } else {
      plan.unmonitorable_.push_back(ci);
    }
  }

  for (auto& [node_name, interfaces] : needed) {
    const topo::NodeSpec* node = topo.find_node(node_name);
    AgentTask task;
    task.node = node_name;
    task.address = *agent_address(*node);
    task.community = node->snmp_community;
    // Deduplicate interfaces while keeping first-seen order.
    for (const auto& itf : interfaces) {
      bool seen = false;
      for (const auto& existing : task.interfaces) {
        if (existing == itf) {
          seen = true;
          break;
        }
      }
      if (!seen) task.interfaces.push_back(itf);
    }
    plan.agents_.push_back(std::move(task));
  }
  return plan;
}

}  // namespace netqos::mon
