#include "monitor/plan.h"

#include <map>
#include <stdexcept>

namespace netqos::mon {
namespace {

/// The address the agent on `node` answers on, or nullopt.
std::optional<sim::Ipv4Address> agent_address(const topo::NodeSpec& node) {
  if (!node.snmp_enabled) return std::nullopt;
  if (node.kind == topo::NodeKind::kHost) {
    for (const auto& itf : node.interfaces) {
      if (!itf.ipv4.empty()) return sim::Ipv4Address::parse(itf.ipv4);
    }
    return std::nullopt;
  }
  if (node.kind == topo::NodeKind::kSwitch &&
      !node.management_ipv4.empty()) {
    return sim::Ipv4Address::parse(node.management_ipv4);
  }
  return std::nullopt;  // hubs (and misconfigured switches) have no agent
}

}  // namespace

PollPlan PollPlan::build(const topo::NetworkTopology& topo) {
  const auto problems = topo.validate();
  if (!problems.empty()) {
    std::string all = "invalid topology:";
    for (const auto& p : problems) all += "\n  - " + p;
    throw std::invalid_argument(all);
  }

  PollPlan plan;
  plan.domains_ = topo::collision_domains(topo);
  plan.domain_of_ = topo::connection_domains(topo, plan.domains_);
  plan.primary_.resize(topo.connections().size());
  plan.fallback_.resize(topo.connections().size());

  // node name -> interfaces that must be polled there
  std::map<std::string, std::vector<std::string>> needed;

  for (std::size_t ci = 0; ci < topo.connections().size(); ++ci) {
    const topo::Connection& conn = topo.connections()[ci];

    // Preference 1: an endpoint host running an agent.
    std::optional<MeasurePoint> host_choice;
    for (const topo::Endpoint* ep : {&conn.a, &conn.b}) {
      const topo::NodeSpec* node = topo.find_node(ep->node);
      if (node->kind == topo::NodeKind::kHost &&
          agent_address(*node).has_value()) {
        host_choice = MeasurePoint{ep->node, ep->interface, false};
        break;
      }
    }
    // Preference 2 (paper §4.1): the SNMP-capable switch port. Retained
    // as the quarantine fallback even when a host agent exists.
    std::optional<MeasurePoint> switch_choice;
    for (const topo::Endpoint* ep : {&conn.a, &conn.b}) {
      const topo::NodeSpec* node = topo.find_node(ep->node);
      if (node->kind == topo::NodeKind::kSwitch &&
          agent_address(*node).has_value()) {
        switch_choice = MeasurePoint{ep->node, ep->interface, true};
        break;
      }
    }

    const auto& chosen = host_choice.has_value() ? host_choice : switch_choice;
    plan.primary_[ci] = chosen;
    if (host_choice.has_value()) plan.fallback_[ci] = switch_choice;
    if (chosen.has_value()) {
      needed[chosen->node].push_back(chosen->interface);
    } else {
      plan.unmonitorable_.push_back(ci);
    }
  }
  plan.effective_ = plan.primary_;

  for (auto& [node_name, interfaces] : needed) {
    const topo::NodeSpec* node = topo.find_node(node_name);
    AgentTask task;
    task.node = node_name;
    task.address = *agent_address(*node);
    task.community = node->snmp_community;
    // Deduplicate interfaces while keeping first-seen order.
    for (const auto& itf : interfaces) {
      bool seen = false;
      for (const auto& existing : task.interfaces) {
        if (existing == itf) {
          seen = true;
          break;
        }
      }
      if (!seen) task.interfaces.push_back(itf);
    }
    plan.agents_.push_back(std::move(task));
  }
  return plan;
}

const std::optional<MeasurePoint>& PollPlan::choose_effective(
    std::size_t conn) const {
  const auto& primary = primary_[conn];
  if (primary.has_value() && quarantined_.contains(primary->node)) {
    const auto& fallback = fallback_[conn];
    if (fallback.has_value() && !quarantined_.contains(fallback->node)) {
      return fallback;
    }
    // No healthy alternative: keep the primary point. Its samples go
    // stale, which the freshness annotation reports honestly.
  }
  return primary;
}

std::vector<std::size_t> PollPlan::set_agent_quarantined(
    const std::string& node, bool quarantined) {
  if (quarantined) {
    quarantined_.insert(node);
  } else {
    quarantined_.erase(node);
  }
  std::vector<std::size_t> changed;
  for (std::size_t ci = 0; ci < effective_.size(); ++ci) {
    const auto& now_effective = choose_effective(ci);
    const auto& was = effective_[ci];
    const bool differs =
        was.has_value() != now_effective.has_value() ||
        (was.has_value() && (was->node != now_effective->node ||
                             was->interface != now_effective->interface));
    if (differs) {
      effective_[ci] = now_effective;
      changed.push_back(ci);
    }
  }
  return changed;
}

}  // namespace netqos::mon
