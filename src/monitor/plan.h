// Poll planning: which SNMP agent measures each connection.
//
// Paper §4.1: "even though there is no SNMP demon on either S4 or S5, the
// bandwidth between S4 and S5 can still be monitored by polling the
// interfaces on the switch that are connected to S4 and S5". The plan
// encodes that fallback: a connection is measured at its own host's agent
// when one runs there, otherwise at the SNMP-capable switch port facing
// it. Hubs never run agents; hub-attached connections are measured at
// the attached host (for the domain sum) or the switch uplink port.
//
// The same §4.1 rule also powers runtime degradation: when a host agent
// is quarantined (stops answering polls), its connections fall back to
// the switch-port measure point until the agent heals. The plan keeps
// both candidates per connection and exposes the currently effective
// choice through measurement_for().
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "netsim/address.h"
#include "topology/domains.h"
#include "topology/model.h"

namespace netqos::mon {

/// Where one connection's traffic counters live.
struct MeasurePoint {
  std::string node;        ///< agent's node name
  std::string interface;   ///< ifDescr on that agent
  bool via_switch = false; ///< true when using the §4.1 switch-port fallback
};

/// One agent the poller must query each round.
struct AgentTask {
  std::string node;
  sim::Ipv4Address address;  ///< host primary IP or switch management IP
  std::string community;
  std::vector<std::string> interfaces;  ///< ifDescr values to poll
};

class PollPlan {
 public:
  /// Builds the plan for a validated topology. Throws
  /// std::invalid_argument if the topology fails validation.
  static PollPlan build(const topo::NetworkTopology& topo);

  /// Currently effective measurement point for a connection index, or
  /// nullopt when neither side is SNMP-capable (unmonitorable). Reflects
  /// active quarantine fallbacks.
  const std::optional<MeasurePoint>& measurement_for(std::size_t conn) const {
    return effective_.at(conn);
  }

  /// The build-time (pre-quarantine) choice for a connection.
  const std::optional<MeasurePoint>& primary_measurement_for(
      std::size_t conn) const {
    return primary_.at(conn);
  }

  /// The §4.1 switch-port alternative for a connection whose primary is a
  /// host agent; nullopt when none exists (e.g. hub-attached hosts).
  const std::optional<MeasurePoint>& switch_fallback_for(
      std::size_t conn) const {
    return fallback_.at(conn);
  }

  /// Marks an agent node (un)quarantined and recomputes the effective
  /// measure points. Returns the indices of connections whose effective
  /// point changed — the caller re-targets polling for those.
  std::vector<std::size_t> set_agent_quarantined(const std::string& node,
                                                 bool quarantined);

  bool agent_quarantined(const std::string& node) const {
    return quarantined_.contains(node);
  }

  const std::vector<AgentTask>& agents() const { return agents_; }

  /// Connection indices that no agent can observe.
  const std::vector<std::size_t>& unmonitorable() const {
    return unmonitorable_;
  }

  /// Collision domains computed for the topology (hub rule input).
  const std::vector<topo::CollisionDomain>& domains() const {
    return domains_;
  }
  /// Per-connection domain membership.
  const std::vector<std::optional<std::size_t>>& domain_of() const {
    return domain_of_;
  }

 private:
  const std::optional<MeasurePoint>& choose_effective(std::size_t conn) const;

  std::vector<std::optional<MeasurePoint>> primary_;
  std::vector<std::optional<MeasurePoint>> fallback_;
  std::vector<std::optional<MeasurePoint>> effective_;
  std::set<std::string> quarantined_;
  std::vector<AgentTask> agents_;
  std::vector<std::size_t> unmonitorable_;
  std::vector<topo::CollisionDomain> domains_;
  std::vector<std::optional<std::size_t>> domain_of_;
};

}  // namespace netqos::mon
