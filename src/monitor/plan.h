// Poll planning: which SNMP agent measures each connection.
//
// Paper §4.1: "even though there is no SNMP demon on either S4 or S5, the
// bandwidth between S4 and S5 can still be monitored by polling the
// interfaces on the switch that are connected to S4 and S5". The plan
// encodes that fallback: a connection is measured at its own host's agent
// when one runs there, otherwise at the SNMP-capable switch port facing
// it. Hubs never run agents; hub-attached connections are measured at
// the attached host (for the domain sum) or the switch uplink port.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netsim/address.h"
#include "topology/domains.h"
#include "topology/model.h"

namespace netqos::mon {

/// Where one connection's traffic counters live.
struct MeasurePoint {
  std::string node;        ///< agent's node name
  std::string interface;   ///< ifDescr on that agent
  bool via_switch = false; ///< true when using the §4.1 switch-port fallback
};

/// One agent the poller must query each round.
struct AgentTask {
  std::string node;
  sim::Ipv4Address address;  ///< host primary IP or switch management IP
  std::string community;
  std::vector<std::string> interfaces;  ///< ifDescr values to poll
};

class PollPlan {
 public:
  /// Builds the plan for a validated topology. Throws
  /// std::invalid_argument if the topology fails validation.
  static PollPlan build(const topo::NetworkTopology& topo);

  /// Measurement point for a connection index, or nullopt when neither
  /// side is SNMP-capable (the connection is unmonitorable).
  const std::optional<MeasurePoint>& measurement_for(std::size_t conn) const {
    return measurements_.at(conn);
  }

  const std::vector<AgentTask>& agents() const { return agents_; }

  /// Connection indices that no agent can observe.
  const std::vector<std::size_t>& unmonitorable() const {
    return unmonitorable_;
  }

  /// Collision domains computed for the topology (hub rule input).
  const std::vector<topo::CollisionDomain>& domains() const {
    return domains_;
  }
  /// Per-connection domain membership.
  const std::vector<std::optional<std::size_t>>& domain_of() const {
    return domain_of_;
  }

 private:
  std::vector<std::optional<MeasurePoint>> measurements_;
  std::vector<AgentTask> agents_;
  std::vector<std::size_t> unmonitorable_;
  std::vector<topo::CollisionDomain> domains_;
  std::vector<std::optional<std::size_t>> domain_of_;
};

}  // namespace netqos::mon
