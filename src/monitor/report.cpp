#include "monitor/report.h"

#include <cmath>

#include "common/log.h"
#include "history/forecast.h"

namespace netqos::mon {

CsvSink::CsvSink(NetworkMonitor& monitor, std::ostream& out,
                 bool write_header)
    : out_(out) {
  if (write_header) {
    out_ << "time_s,from,to,used_KBps,available_KBps,bottleneck,"
            "freshness,age_s\n";
  }
  monitor.add_sample_callback([this, &monitor](const PathKey& key,
                                               SimTime time,
                                               const PathUsage& usage) {
    out_ << to_seconds(time) << ',' << key.first << ',' << key.second << ','
         << to_kilobytes_per_second(usage.used_at_bottleneck) << ','
         << to_kilobytes_per_second(usage.available) << ','
         << monitor.topology().connections()[usage.bottleneck].to_string()
         << ',' << freshness_name(usage.freshness) << ','
         << to_seconds(usage.max_sample_age) << '\n';
    if (out_.bad() && !warned_bad_stream_) {
      warned_bad_stream_ = true;
      NETQOS_WARN_C("report")
          << "CSV output stream failed (badbit); rows are being lost";
    }
  });
  monitor.add_stop_callback([this] { out_.flush(); });
}

MetricsJsonlSink::MetricsJsonlSink(NetworkMonitor& monitor,
                                   obs::MetricsRegistry& registry,
                                   std::ostream& out)
    : out_(out) {
  monitor.add_stop_callback([this, &registry] {
    registry.render_jsonl(out_);
    out_.flush();
    if (out_.bad()) {
      NETQOS_WARN_C("report")
          << "metrics JSONL stream failed (badbit); snapshot lost";
    }
  });
}

TraceJsonlSink::TraceJsonlSink(NetworkMonitor& monitor,
                               const obs::SpanRecorder& spans,
                               std::ostream& out)
    : out_(out) {
  monitor.add_stop_callback([this, &spans] {
    spans.write_jsonl(out_);
    out_.flush();
    if (out_.bad()) {
      NETQOS_WARN_C("report")
          << "trace JSONL stream failed (badbit); timeline lost";
    }
  });
}

LoadWindowStats analyze_window(const TimeSeries& measured, SimTime begin,
                               SimTime end, BytesPerSecond generated,
                               BytesPerSecond background,
                               SimDuration settle) {
  LoadWindowStats stats;
  stats.generated_kbps = to_kilobytes_per_second(generated);

  const SimTime effective_begin = begin + settle;
  const RunningStats window = measured.stats_between(effective_begin, end);
  stats.measured_kbps = to_kilobytes_per_second(window.mean());
  stats.less_background_kbps =
      to_kilobytes_per_second(window.mean() - background);

  if (generated > 0.0) {
    stats.percent_error =
        100.0 * (window.mean() - background - generated) / generated;
    stats.max_percent_error =
        100.0 * measured.max_relative_error(effective_begin, end,
                                            generated + background);
    // Distribution of per-sample errors: 0.25% .. ~64% doubling buckets.
    Histogram errors = Histogram::exponential(0.25, 2.0, 9);
    const double reference = generated + background;
    for (const auto& p : measured.points()) {
      if (p.time >= effective_begin && p.time < end) {
        errors.add(100.0 * std::fabs(p.value - reference) / reference);
      }
    }
    stats.p95_percent_error = errors.percentile(0.95);
  }
  stats.trend_kbps_per_s = to_kilobytes_per_second(
      hist::holt_trend_per_second(measured, effective_begin, end));
  return stats;
}

BytesPerSecond estimate_background(const TimeSeries& measured, SimTime begin,
                                   SimTime end) {
  return measured.mean_between(begin, end);
}

}  // namespace netqos::mon
