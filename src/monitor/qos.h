// QoS violation detection (paper §5 future work, implemented here).
//
// The DeSiDeRaTa middleware consumes the monitor's metrics against a
// network QoS specification: each requirement demands a minimum available
// bandwidth on the path between two hosts. The detector subscribes to
// monitor samples and emits violation/recovery events with a bottleneck
// diagnosis. Hysteresis avoids flapping at the threshold.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "monitor/monitor.h"

namespace netqos::mon {

struct QosEvent {
  enum class Kind { kViolation, kRecovery };

  Kind kind = Kind::kViolation;
  PathKey path;
  SimTime time = 0;
  BytesPerSecond available = 0.0;
  BytesPerSecond required = 0.0;
  /// Connection index diagnosed as the bottleneck (valid for violations).
  std::size_t bottleneck = 0;
  std::string bottleneck_description;
};

class ViolationDetector {
 public:
  using EventCallback = std::function<void(const QosEvent&)>;

  /// `recovery_margin` is the fractional headroom above the requirement
  /// needed before a violated path is declared recovered.
  explicit ViolationDetector(NetworkMonitor& monitor,
                             double recovery_margin = 0.05);

  /// Adds a requirement. The path must already be (or will be) registered
  /// with the monitor via add_path; this also registers it if missing.
  void add_requirement(const std::string& from, const std::string& to,
                       BytesPerSecond min_available);

  /// Subscribes to QoS events. Multiple consumers (logging, the RM
  /// middleware) may subscribe; all are invoked in subscription order.
  void add_event_callback(EventCallback callback) {
    callbacks_.push_back(std::move(callback));
  }

  /// All events observed so far, in order.
  const std::vector<QosEvent>& events() const { return events_; }

  /// True while the given path is in violation.
  bool in_violation(const std::string& from, const std::string& to) const;

 private:
  struct Requirement {
    PathKey key;
    BytesPerSecond min_available = 0.0;
    bool violated = false;
  };

  void on_sample(const PathKey& key, SimTime time, const PathUsage& usage);
  static bool same_pair(const PathKey& a, const PathKey& b);

  NetworkMonitor& monitor_;
  double recovery_margin_;
  std::vector<Requirement> requirements_;
  std::vector<QosEvent> events_;
  std::vector<EventCallback> callbacks_;
};

}  // namespace netqos::mon
