// QoS violation detection (paper §5 future work, implemented here).
//
// The DeSiDeRaTa middleware consumes the monitor's metrics against a
// network QoS specification: each requirement demands a minimum available
// bandwidth on the path between two hosts. The detector subscribes to
// monitor samples and emits violation/recovery events with a bottleneck
// diagnosis. Hysteresis avoids flapping at the threshold.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "history/forecast.h"
#include "monitor/monitor.h"

namespace netqos::mon {

struct QosEvent {
  enum class Kind { kViolation, kRecovery };

  Kind kind = Kind::kViolation;
  PathKey path;
  SimTime time = 0;
  BytesPerSecond available = 0.0;
  BytesPerSecond required = 0.0;
  /// Connection index diagnosed as the bottleneck (valid for violations).
  std::size_t bottleneck = 0;
  std::string bottleneck_description;
};

/// Reactive violation detection, expressed as a measurement module: the
/// detector registers itself with the monitor's module host ("qos" name
/// family) and consumes the path-sample stream the bandwidth producer
/// emits.
class ViolationDetector : public Module {
 public:
  using EventCallback = std::function<void(const QosEvent&)>;

  /// `recovery_margin` is the fractional headroom above the requirement
  /// needed before a violated path is declared recovered. Registers with
  /// `monitor`'s module host; deregisters on destruction.
  explicit ViolationDetector(NetworkMonitor& monitor,
                             double recovery_margin = 0.05);

  /// Adds a requirement. The path must already be (or will be) registered
  /// with the monitor via add_path; this also registers it if missing.
  void add_requirement(const std::string& from, const std::string& to,
                       BytesPerSecond min_available);

  /// Subscribes to QoS events. Multiple consumers (logging, the RM
  /// middleware) may subscribe; all are invoked in subscription order.
  void add_event_callback(EventCallback callback) {
    callbacks_.push_back(std::move(callback));
  }

  /// All events observed so far, in order.
  const std::vector<QosEvent>& events() const { return events_; }

  /// True while the given path is in violation.
  bool in_violation(const std::string& from, const std::string& to) const;

  std::size_t footprint_bytes() const override;
  std::vector<ModuleNote> notes() const override;

 private:
  struct Requirement {
    PathKey key;
    BytesPerSecond min_available = 0.0;
    bool violated = false;
  };

  void on_path_sample(const PathKey& key, SimTime time,
                      const PathUsage& usage) override;
  static bool same_pair(const PathKey& a, const PathKey& b);

  NetworkMonitor& monitor_;
  double recovery_margin_;
  std::vector<Requirement> requirements_;
  std::vector<QosEvent> events_;
  std::vector<EventCallback> callbacks_;
};

/// Tuning for the predictive (early-warning) detector.
struct PredictiveConfig {
  /// How far ahead the Holt forecast is projected. A warning fires when
  /// the projected available bandwidth at now + horizon is below the
  /// requirement (while the current value still satisfies it).
  SimDuration horizon = 10 * kSecond;
  hist::HoltForecaster::Config smoothing;
  /// Samples the forecaster must absorb before any warning — the first
  /// trend estimates after a cold start are meaningless.
  std::size_t min_samples = 4;
  /// Consecutive breach forecasts needed before a warning is emitted.
  /// The breach forecast projects with the *least pessimistic* of the
  /// Holt trend and the raw slope over the last `confirm_rounds` samples:
  /// a genuine ramp keeps both negative, while after a sharp step-down
  /// the window slope collapses to ~0 within `confirm_rounds` polls even
  /// though the smoothed Holt trend lingers — so a step that lands above
  /// the requirement never warns.
  int confirm_rounds = 3;
  /// Fractional headroom the forecast must regain before kAllClear.
  double clear_margin = 0.1;
  /// Lower clamp on per-path measurement confidence (see
  /// set_path_confidence): even a fully distrusted passive measurement
  /// only tightens the effective requirement by 1/floor.
  double confidence_floor = 0.25;
};

struct PredictiveEvent {
  enum class Kind { kEarlyWarning, kAllClear };

  Kind kind = Kind::kEarlyWarning;
  PathKey path;
  SimTime time = 0;
  /// Measured available bandwidth at emission time.
  BytesPerSecond available = 0.0;
  /// Holt forecast of available bandwidth at time + horizon.
  BytesPerSecond forecast = 0.0;
  BytesPerSecond required = 0.0;
  /// Predicted time until the requirement is crossed (valid for
  /// warnings; unset when the trend flattened before the crossing).
  std::optional<SimDuration> predicted_in;
  /// Confidence in the passive measurement this event was judged from
  /// (1.0 unless an active/passive cross-check lowered it).
  double confidence = 1.0;
};

/// Early-warning QoS detector: feeds each path's available-bandwidth
/// samples through a Holt linear forecaster and raises kEarlyWarning when
/// the trend says the requirement will be crossed within `horizon` —
/// before the reactive ViolationDetector can see the actual violation.
/// Once the real violation happens the warning state retires silently
/// (the reactive event owns the incident from there). Like the reactive
/// detector, this is a measurement module consuming the path-sample
/// stream.
class PredictiveDetector : public Module {
 public:
  using EventCallback = std::function<void(const PredictiveEvent&)>;

  explicit PredictiveDetector(NetworkMonitor& monitor,
                              PredictiveConfig config = {});

  /// Registers the path with the monitor if missing, like
  /// ViolationDetector::add_requirement.
  void add_requirement(const std::string& from, const std::string& to,
                       BytesPerSecond min_available);

  void add_event_callback(EventCallback callback) {
    callbacks_.push_back(std::move(callback));
  }

  /// Feeds one available-bandwidth sample for a path — the same entry
  /// point monitor samples arrive through, exposed so stored history can
  /// be replayed through the forecaster and golden tests can drive
  /// synthetic step/ramp/steady loads.
  void observe(const PathKey& key, SimTime time, BytesPerSecond available);

  /// Sets how much the detector trusts the passive measurement of a
  /// path, in (0, 1]. Fed by the hybrid active/passive cross-check
  /// (src/probe): when occasional probes disagree with the SNMP-derived
  /// figure, confidence drops and the path must clear a proportionally
  /// higher forecast bar (required / confidence) before being considered
  /// safe — cross traffic the poller cannot see then warns earlier
  /// instead of never. Values are clamped to [confidence_floor, 1];
  /// 1.0 restores the exact untuned behavior. Unknown paths are ignored.
  void set_path_confidence(const std::string& from, const std::string& to,
                           double confidence, SimTime time);
  /// Current confidence for a path (1.0 when never set or unknown).
  double path_confidence(const std::string& from,
                         const std::string& to) const;

  const std::vector<PredictiveEvent>& events() const { return events_; }

  /// True while an early warning is active (and the requirement has not
  /// yet actually been violated).
  bool warning_active(const std::string& from, const std::string& to) const;

  /// Warnings emitted so far (kEarlyWarning events only).
  std::size_t warning_count() const;

  const PredictiveConfig& config() const { return config_; }

  std::size_t footprint_bytes() const override;
  std::vector<ModuleNote> notes() const override;

 private:
  struct Requirement {
    PathKey key;
    BytesPerSecond min_available = 0.0;
    hist::HoltForecaster forecaster;
    /// Last `confirm_rounds` samples, oldest first — the window the
    /// raw-slope clamp is computed over.
    std::vector<TimePoint> recent;
    int breach_streak = 0;
    bool warning = false;
    bool violated = false;  ///< actual violation observed; warning retired
    /// Passive-measurement trust from the active cross-check; scales the
    /// effective requirement (min_available / confidence).
    double confidence = 1.0;
    SimTime confidence_at = 0;
  };

  void on_path_sample(const PathKey& key, SimTime time,
                      const PathUsage& usage) override;

  NetworkMonitor& monitor_;
  PredictiveConfig config_;
  std::vector<Requirement> requirements_;
  std::vector<PredictiveEvent> events_;
  std::vector<EventCallback> callbacks_;
};

}  // namespace netqos::mon
