#include "monitor/latency.h"

#include <stdexcept>

#include "common/byte_buffer.h"
#include "netsim/packet.h"

namespace netqos::mon {

LatencyProbe::LatencyProbe(sim::Simulator& sim, sim::Host& source,
                           sim::Ipv4Address target,
                           LatencyProbeConfig config)
    : sim_(sim), source_(source), target_(target), config_(config) {
  src_port_ = source_.udp().allocate_ephemeral_port();
  if (src_port_ == 0 ||
      !source_.udp().bind(src_port_, [this](const sim::Ipv4Packet& p) {
        on_reply(p);
      })) {
    throw std::logic_error("latency probe could not bind a port");
  }
}

LatencyProbe::~LatencyProbe() {
  stop();
  source_.udp().unbind(src_port_);
}

void LatencyProbe::start() {
  if (running_) return;
  running_ = true;
  send_probe();
}

void LatencyProbe::stop() {
  running_ = false;
  if (next_event_ != 0) {
    sim_.cancel(next_event_);
    next_event_ = 0;
  }
}

void LatencyProbe::send_probe() {
  const std::uint32_t sequence = next_sequence_++;
  ByteWriter payload;
  payload.put_u32(sequence);

  const std::size_t padding =
      config_.payload_bytes > 4 ? config_.payload_bytes - 4 : 0;
  if (source_.udp().send(target_, sim::kEchoPort, src_port_,
                         std::move(payload).take(), padding)) {
    ++sent_;
    in_flight_[sequence] = sim_.now();
    // Expire the probe after the timeout; late replies are ignored.
    sim_.schedule_after(config_.timeout, [this, sequence] {
      if (in_flight_.erase(sequence) > 0) ++lost_;
    });
  } else {
    ++lost_;
  }

  next_event_ = sim_.schedule_after(config_.probe_interval, [this] {
    next_event_ = 0;
    if (running_) send_probe();
  });
}

void LatencyProbe::on_reply(const sim::Ipv4Packet& packet) {
  if (packet.udp.payload.size() < 4) return;
  ByteReader reader(packet.udp.payload);
  // netqos-lint: allow(R1): fixed 4-byte header, length-checked above
  const std::uint32_t sequence = reader.get_u32();
  auto it = in_flight_.find(sequence);
  if (it == in_flight_.end()) return;  // late duplicate
  const SimTime sent_at = it->second;
  in_flight_.erase(it);
  const double rtt_seconds = to_seconds(sim_.now() - sent_at);
  rtts_.add(sim_.now(), rtt_seconds);
  for (const auto& callback : sample_callbacks_) {
    callback(sim_.now(), rtt_seconds);
  }
}

RunningStats LatencyProbe::rtt_stats() const {
  RunningStats stats;
  for (const auto& point : rtts_.points()) stats.add(point.value);
  return stats;
}

}  // namespace netqos::mon
