#include "monitor/qos.h"

#include <algorithm>

namespace netqos::mon {

ViolationDetector::ViolationDetector(NetworkMonitor& monitor,
                                     double recovery_margin)
    : Module("qos.violation"),
      monitor_(monitor),
      recovery_margin_(recovery_margin) {
  monitor_.modules().attach(*this);
}

bool ViolationDetector::same_pair(const PathKey& a, const PathKey& b) {
  return (a.first == b.first && a.second == b.second) ||
         (a.first == b.second && a.second == b.first);
}

void ViolationDetector::add_requirement(const std::string& from,
                                        const std::string& to,
                                        BytesPerSecond min_available) {
  try {
    monitor_.path_of(from, to);
  } catch (const std::out_of_range&) {
    monitor_.add_path(from, to);
  }
  requirements_.push_back({{from, to}, min_available, false});
}

void ViolationDetector::on_path_sample(const PathKey& key, SimTime time,
                                       const PathUsage& usage) {
  for (Requirement& req : requirements_) {
    if (!same_pair(req.key, key)) continue;

    const bool below = usage.available < req.min_available;
    const bool recovered =
        usage.available >= req.min_available * (1.0 + recovery_margin_);

    if (!req.violated && below) {
      req.violated = true;
      QosEvent event;
      event.kind = QosEvent::Kind::kViolation;
      event.path = req.key;
      event.time = time;
      event.available = usage.available;
      event.required = req.min_available;
      event.bottleneck = usage.bottleneck;
      event.bottleneck_description =
          monitor_.topology().connections()[usage.bottleneck].to_string();
      events_.push_back(event);
      for (const auto& callback : callbacks_) callback(events_.back());
    } else if (req.violated && recovered) {
      req.violated = false;
      QosEvent event;
      event.kind = QosEvent::Kind::kRecovery;
      event.path = req.key;
      event.time = time;
      event.available = usage.available;
      event.required = req.min_available;
      events_.push_back(event);
      for (const auto& callback : callbacks_) callback(events_.back());
    }
  }
}

bool ViolationDetector::in_violation(const std::string& from,
                                     const std::string& to) const {
  for (const Requirement& req : requirements_) {
    if (same_pair(req.key, {from, to})) return req.violated;
  }
  return false;
}

std::size_t ViolationDetector::footprint_bytes() const {
  return requirements_.capacity() * sizeof(Requirement) +
         events_.capacity() * sizeof(QosEvent);
}

std::vector<ModuleNote> ViolationDetector::notes() const {
  std::size_t active = 0;
  for (const Requirement& req : requirements_) active += req.violated;
  return {{"requirements", std::to_string(requirements_.size())},
          {"events", std::to_string(events_.size())},
          {"active_violations", std::to_string(active)}};
}

namespace {

bool unordered_pair_equal(const PathKey& a, const PathKey& b) {
  return (a.first == b.first && a.second == b.second) ||
         (a.first == b.second && a.second == b.first);
}

}  // namespace

PredictiveDetector::PredictiveDetector(NetworkMonitor& monitor,
                                       PredictiveConfig config)
    : Module("qos.predictive"), monitor_(monitor), config_(config) {
  monitor_.modules().attach(*this);
}

void PredictiveDetector::add_requirement(const std::string& from,
                                         const std::string& to,
                                         BytesPerSecond min_available) {
  try {
    monitor_.path_of(from, to);
  } catch (const std::out_of_range&) {
    monitor_.add_path(from, to);
  }
  Requirement req;
  req.key = {from, to};
  req.min_available = min_available;
  req.forecaster = hist::HoltForecaster(config_.smoothing);
  requirements_.push_back(std::move(req));
}

void PredictiveDetector::on_path_sample(const PathKey& key, SimTime time,
                                        const PathUsage& usage) {
  observe(key, time, usage.available);
}

void PredictiveDetector::set_path_confidence(const std::string& from,
                                             const std::string& to,
                                             double confidence,
                                             SimTime time) {
  const double clamped =
      std::clamp(confidence, config_.confidence_floor, 1.0);
  for (Requirement& req : requirements_) {
    if (!unordered_pair_equal(req.key, {from, to})) continue;
    req.confidence = clamped;
    req.confidence_at = time;
  }
}

double PredictiveDetector::path_confidence(const std::string& from,
                                           const std::string& to) const {
  for (const Requirement& req : requirements_) {
    if (unordered_pair_equal(req.key, {from, to})) return req.confidence;
  }
  return 1.0;
}

void PredictiveDetector::observe(const PathKey& key, SimTime time,
                                 BytesPerSecond available) {
  for (Requirement& req : requirements_) {
    if (!unordered_pair_equal(req.key, key)) continue;

    req.forecaster.observe(time, available);
    // Raw slope across the confirm window (value change per second from
    // the sample `confirm_rounds` polls back to now), evaluated before
    // the window slides. No window yet -> 0, which suppresses breaches.
    double window_slope = 0.0;
    if (req.recent.size() >=
        static_cast<std::size_t>(config_.confirm_rounds)) {
      const TimePoint& oldest =
          req.recent[req.recent.size() -
                     static_cast<std::size_t>(config_.confirm_rounds)];
      const double dt = to_seconds(time - oldest.time);
      if (dt > 0.0) window_slope = (available - oldest.value) / dt;
    }
    req.recent.push_back({time, available});
    if (req.recent.size() >
        static_cast<std::size_t>(config_.confirm_rounds)) {
      req.recent.erase(req.recent.begin());
    }

    const bool below_now = available < req.min_available;
    if (below_now) {
      // The reactive detector owns the incident from the moment the
      // violation is real; the warning retires without an all-clear.
      req.violated = true;
      req.warning = false;
      req.breach_streak = 0;
      continue;
    }
    if (req.violated) {
      // Re-arm once the path has genuinely recovered above the margin.
      if (available >= req.min_available * (1.0 + config_.clear_margin)) {
        req.violated = false;
        req.forecaster.reset();
        req.forecaster.observe(time, available);
        req.recent.clear();
        req.recent.push_back({time, available});
      }
      continue;
    }
    if (req.forecaster.samples() < config_.min_samples) continue;

    // Project from the *measured* value with the least pessimistic of
    // the smoothed Holt trend and the raw confirm-window slope. The Holt
    // level and trend both lag a sharp step-down and keep predicting a
    // crossing after the decline has stopped; the window slope collapses
    // to ~0 as soon as the measurements flatten, so only a sustained
    // decline breaches for confirm_rounds in a row.
    //
    // A distrusted passive measurement raises the bar the forecast must
    // clear: the effective requirement is min_available / confidence
    // (exactly min_available at full trust — x / 1.0 is an identity in
    // IEEE arithmetic, keeping the untuned goldens bit-identical). When
    // confidence has actually been lowered, the measured value itself is
    // also held against the raised bar: cross traffic the poller cannot
    // see leaves the passive figure flat, so a trend-gated breach alone
    // would never fire there.
    const double trend =
        std::max(req.forecaster.trend_per_second(), window_slope);
    const double forecast = available + trend * to_seconds(config_.horizon);
    const double effective = req.min_available / req.confidence;
    const bool breach = (forecast < effective && trend < 0.0) ||
                        (req.confidence < 1.0 && available < effective);

    if (!req.warning) {
      req.breach_streak = breach ? req.breach_streak + 1 : 0;
      if (req.breach_streak >= config_.confirm_rounds) {
        req.warning = true;
        req.breach_streak = 0;
        PredictiveEvent event;
        event.kind = PredictiveEvent::Kind::kEarlyWarning;
        event.path = req.key;
        event.time = time;
        event.available = available;
        event.forecast = forecast;
        event.required = req.min_available;
        event.predicted_in =
            req.forecaster.time_until_below(req.min_available);
        event.confidence = req.confidence;
        events_.push_back(event);
        for (const auto& callback : callbacks_) callback(events_.back());
      }
    } else if (forecast >= effective * (1.0 + config_.clear_margin) &&
               !(req.confidence < 1.0 && available < effective)) {
      req.warning = false;
      PredictiveEvent event;
      event.kind = PredictiveEvent::Kind::kAllClear;
      event.path = req.key;
      event.time = time;
      event.available = available;
      event.forecast = forecast;
      event.required = req.min_available;
      event.confidence = req.confidence;
      events_.push_back(event);
      for (const auto& callback : callbacks_) callback(events_.back());
    }
  }
}

bool PredictiveDetector::warning_active(const std::string& from,
                                        const std::string& to) const {
  for (const Requirement& req : requirements_) {
    if (unordered_pair_equal(req.key, {from, to})) return req.warning;
  }
  return false;
}

std::size_t PredictiveDetector::warning_count() const {
  std::size_t count = 0;
  for (const PredictiveEvent& event : events_) {
    if (event.kind == PredictiveEvent::Kind::kEarlyWarning) ++count;
  }
  return count;
}

std::size_t PredictiveDetector::footprint_bytes() const {
  std::size_t recent = 0;
  for (const Requirement& req : requirements_) {
    recent += req.recent.capacity() * sizeof(TimePoint);
  }
  return requirements_.capacity() * sizeof(Requirement) + recent +
         events_.capacity() * sizeof(PredictiveEvent);
}

std::vector<ModuleNote> PredictiveDetector::notes() const {
  std::size_t warnings = 0;
  for (const Requirement& req : requirements_) warnings += req.warning;
  return {{"requirements", std::to_string(requirements_.size())},
          {"warnings", std::to_string(warning_count())},
          {"active_warnings", std::to_string(warnings)}};
}

}  // namespace netqos::mon
