#include "monitor/qos.h"

namespace netqos::mon {

ViolationDetector::ViolationDetector(NetworkMonitor& monitor,
                                     double recovery_margin)
    : monitor_(monitor), recovery_margin_(recovery_margin) {
  monitor_.add_sample_callback(
      [this](const PathKey& key, SimTime time, const PathUsage& usage) {
        on_sample(key, time, usage);
      });
}

bool ViolationDetector::same_pair(const PathKey& a, const PathKey& b) {
  return (a.first == b.first && a.second == b.second) ||
         (a.first == b.second && a.second == b.first);
}

void ViolationDetector::add_requirement(const std::string& from,
                                        const std::string& to,
                                        BytesPerSecond min_available) {
  try {
    monitor_.path_of(from, to);
  } catch (const std::out_of_range&) {
    monitor_.add_path(from, to);
  }
  requirements_.push_back({{from, to}, min_available, false});
}

void ViolationDetector::on_sample(const PathKey& key, SimTime time,
                                  const PathUsage& usage) {
  for (Requirement& req : requirements_) {
    if (!same_pair(req.key, key)) continue;

    const bool below = usage.available < req.min_available;
    const bool recovered =
        usage.available >= req.min_available * (1.0 + recovery_margin_);

    if (!req.violated && below) {
      req.violated = true;
      QosEvent event;
      event.kind = QosEvent::Kind::kViolation;
      event.path = req.key;
      event.time = time;
      event.available = usage.available;
      event.required = req.min_available;
      event.bottleneck = usage.bottleneck;
      event.bottleneck_description =
          monitor_.topology().connections()[usage.bottleneck].to_string();
      events_.push_back(event);
      for (const auto& callback : callbacks_) callback(events_.back());
    } else if (req.violated && recovered) {
      req.violated = false;
      QosEvent event;
      event.kind = QosEvent::Kind::kRecovery;
      event.path = req.key;
      event.time = time;
      event.available = usage.available;
      event.required = req.min_available;
      events_.push_back(event);
      for (const auto& callback : callbacks_) callback(events_.back());
    }
  }
}

bool ViolationDetector::in_violation(const std::string& from,
                                     const std::string& to) const {
  for (const Requirement& req : requirements_) {
    if (same_pair(req.key, {from, to})) return req.violated;
  }
  return false;
}

}  // namespace netqos::mon
