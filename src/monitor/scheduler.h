// Adaptive per-agent poll scheduling (paper §5: monitoring overhead).
//
// The seed monitor fired every agent in lock-step at one fixed interval,
// so a dark agent burned timeout x retries every round and rounds
// self-synchronized into bursts. This scheduler gives each agent its own
// launch phase and a health state machine:
//
//   healthy ──failure──▶ degraded ──(quarantine_after consecutive
//      ▲                    │         failures)──▶ quarantined
//      └────── success ─────┴──────────── success ─────┘
//
// Unhealthy agents back off exponentially (configurable base/cap) so
// steady-state polling traffic to a dead agent drops by cap/interval; a
// linkUp trap clears the backoff for an immediate re-probe. The scheduler
// only decides *when* each agent may be polled and *how healthy* it is —
// transport stays in NetworkMonitor, timers stay on the simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace netqos::mon {

enum class AgentHealth { kHealthy, kDegraded, kQuarantined };

const char* agent_health_name(AgentHealth health);

struct SchedulerConfig {
  /// Base polling period of healthy agents; rounds tick at this cadence.
  SimDuration poll_interval = 2 * kSecond;
  /// Per-failure interval multiplier for unhealthy agents: after k
  /// consecutive failures the agent is next due base^k poll intervals
  /// later. Values <= 1 disable backoff (the seed's fixed-interval
  /// behaviour, every agent polled every round).
  double backoff_base = 2.0;
  /// Upper bound on the backed-off interval. 0 = 8 * poll_interval.
  SimDuration backoff_cap = 0;
  /// Launch-phase spacing inside a round: agent i starts i * stagger
  /// after the round begins, de-bursting the request train. 0 = the
  /// seed's simultaneous launch.
  SimDuration stagger = 0;
  /// Uniform random extra launch delay in [0, launch_jitter) per poll,
  /// drawn from a seeded stream (deterministic). 0 = none.
  SimDuration launch_jitter = 0;
  /// Consecutive failures after which an agent is quarantined (its
  /// measure points fall back to the §4.1 switch port).
  int quarantine_after = 3;
  /// Delay before the very first round — the distributed monitor phases
  /// workers apart with this so stations do not self-synchronize.
  SimDuration start_offset = 0;
  std::uint64_t jitter_seed = 0x5c3ed;
};

/// Pure decision logic: who is due, how long to back off, which health
/// state each agent is in. Owns no simulator events.
class PollScheduler {
 public:
  struct AgentState {
    std::string node;
    AgentHealth health = AgentHealth::kHealthy;
    int consecutive_failures = 0;
    /// Earliest time the next poll may launch. Healthy agents are always
    /// due (0); failures push this out exponentially.
    SimTime next_due = 0;
    /// Launch offset within a round (index * stagger).
    SimDuration phase = 0;
    std::uint64_t polls = 0;     ///< polls launched (excluding retries)
    std::uint64_t failures = 0;  ///< lifetime failed polls
    std::uint64_t quarantines = 0;  ///< transitions into quarantine
    SimTime quarantined_at = 0;     ///< time of the last such transition
  };

  /// (node, previous health, new health) — fired from record_result /
  /// request_reprobe whenever the state machine moves.
  using TransitionCallback =
      std::function<void(const std::string&, AgentHealth, AgentHealth)>;

  PollScheduler(SchedulerConfig config, std::vector<std::string> nodes);

  /// Registers an agent mid-run (shard ownership handoff). It joins
  /// healthy, immediately due, with the next free stagger phase. No-op if
  /// already registered. Must not be called from inside a transition
  /// callback: record_result holds a pointer across the callback, so
  /// membership changes there must be deferred (schedule_after(0)).
  void add_agent(const std::string& node);
  /// Unregisters an agent (handed off to another station). Same
  /// no-reentrancy rule as add_agent. Returns false when unknown.
  bool remove_agent(const std::string& node);

  void set_transition_callback(TransitionCallback callback) {
    transition_ = std::move(callback);
  }

  /// Nodes whose next_due has arrived, in registration order. A round
  /// polls exactly these.
  std::vector<const AgentState*> due(SimTime now) const;

  /// Marks a poll launched: bumps the poll count and pushes next_due one
  /// interval out so an in-flight poll is never doubled up.
  void record_launch(const std::string& node, SimTime now);

  /// Feeds a poll outcome into the state machine. Success resets the
  /// agent to healthy and always-due; failure backs it off and may
  /// degrade/quarantine it (transition callback fires before return).
  void record_result(const std::string& node, bool ok, SimTime now);

  /// linkUp trap handling: clears the backoff so the agent is due
  /// immediately. Health is *not* reset — only a successful poll heals.
  void request_reprobe(const std::string& node, SimTime now);

  /// The interval the agent's next poll waits after a failure at `now`:
  /// min(poll_interval * base^failures, cap).
  SimDuration backoff_interval(const AgentState& agent) const;

  /// Random launch delay in [0, launch_jitter) — deterministic stream.
  SimDuration draw_jitter();

  const AgentState* find(const std::string& node) const;
  const std::vector<AgentState>& agents() const { return agents_; }
  const SchedulerConfig& config() const { return config_; }
  SimDuration effective_cap() const;

 private:
  AgentState* find_mutable(const std::string& node);
  void transition(AgentState& agent, AgentHealth to);

  SchedulerConfig config_;
  std::vector<AgentState> agents_;
  TransitionCallback transition_;
  std::uint64_t jitter_state_;
};

}  // namespace netqos::mon
