// Interface statistics database.
//
// Stores the latest counter sample per (node, interface), computes rates
// on update (paper §3.1 differencing), and keeps rate history as time
// series for the experiment figures.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/stats.h"
#include "monitor/counter_math.h"
#include "obs/metrics.h"

namespace netqos::mon {

/// (node name, ifDescr) key.
using InterfaceKey = std::pair<std::string, std::string>;

class StatsDb {
 public:
  /// Registers the db's instruments (sample updates, detected Counter32
  /// wraps, tracked-interface gauge) in `registry`. Telemetry is off
  /// until attached; re-attaching moves it to the new registry.
  void attach_metrics(obs::MetricsRegistry& registry);
  /// Records a fresh sample taken at monitor-side time `when`. Returns
  /// the rates vs. the previous sample, or nullopt for the first sample
  /// (or a zero uptime delta).
  std::optional<RateSample> update(const InterfaceKey& key, SimTime when,
                                   const CounterSample& sample);

  /// Most recent rates for an interface.
  std::optional<RateSample> latest_rate(const InterfaceKey& key) const;

  /// History of total (in+out) byte rates.
  const TimeSeries* total_rate_series(const InterfaceKey& key) const;

  /// Number of interfaces tracked.
  std::size_t size() const { return entries_.size(); }

  /// Monitor-side time of the most recent update anywhere (0 if none).
  SimTime last_update() const { return last_update_; }

 private:
  struct Entry {
    bool has_sample = false;
    CounterSample last_sample;
    std::optional<RateSample> last_rate;
    TimeSeries total_series;
  };

  std::map<InterfaceKey, Entry> entries_;
  SimTime last_update_ = 0;

  obs::Counter* updates_ = nullptr;
  obs::Counter* counter_wraps_ = nullptr;
  obs::Gauge* interfaces_gauge_ = nullptr;
};

}  // namespace netqos::mon
