// Interface statistics database.
//
// Stores the latest counter sample per (node, interface), computes rates
// on update (paper §3.1 differencing), and keeps rate history as time
// series for the experiment figures. Sample ages are tracked
// per-interface: a single fresh agent must never mask the staleness of
// the others, so freshness queries always name the interface.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/stats.h"
#include "monitor/counter_math.h"
#include "obs/metrics.h"

namespace netqos::mon {

/// (node name, ifDescr) key.
using InterfaceKey = std::pair<std::string, std::string>;

class StatsDb {
 public:
  /// Registers the db's instruments (sample updates, detected Counter32
  /// wraps, tracked-interface gauge) in `registry`. Telemetry is off
  /// until attached; re-attaching moves it to the new registry.
  void attach_metrics(obs::MetricsRegistry& registry);
  /// Records a fresh sample taken at monitor-side time `when`. Returns
  /// the rates vs. the previous sample, or nullopt for the first sample
  /// (or a zero uptime delta).
  std::optional<RateSample> update(const InterfaceKey& key, SimTime when,
                                   const CounterSample& sample);

  /// Most recent rates for an interface.
  std::optional<RateSample> latest_rate(const InterfaceKey& key) const;

  /// History of total (in+out) byte rates.
  const TimeSeries* total_rate_series(const InterfaceKey& key) const;

  /// Number of interfaces tracked.
  std::size_t size() const { return entries_.size(); }

  /// Monitor-side time of the most recent update of *this* interface, or
  /// nullopt before its first sample. This is the query path reports use:
  /// the db-global last_update() below cannot distinguish a stale agent
  /// behind a fresh one.
  std::optional<SimTime> last_update(const InterfaceKey& key) const;

  /// Age of the interface's latest sample at `now`; nullopt before the
  /// first sample.
  std::optional<SimDuration> sample_age(const InterfaceKey& key,
                                        SimTime now) const;

  /// Monitor-side time of the most recent update anywhere (0 if none).
  /// Only says "the db is alive" — use last_update(key) for staleness.
  SimTime last_update() const { return last_update_; }

 private:
  struct Entry {
    bool has_sample = false;
    CounterSample last_sample;
    SimTime last_time = 0;
    std::optional<RateSample> last_rate;
    TimeSeries total_series;
  };

  std::map<InterfaceKey, Entry> entries_;
  SimTime last_update_ = 0;

  obs::Counter* updates_ = nullptr;
  obs::Counter* counter_wraps_ = nullptr;
  obs::Gauge* interfaces_gauge_ = nullptr;
};

}  // namespace netqos::mon
