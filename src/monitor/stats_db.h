// Interface statistics database.
//
// Stores the latest counter sample per (node, interface), computes rates
// on update (paper §3.1 differencing), and streams rate history into a
// bounded multi-resolution history store (src/history/) — memory is
// O(interfaces x retention capacity), flat in run length, instead of the
// old unbounded per-interface TimeSeries vectors. Sample ages are tracked
// per-interface: a single fresh agent must never mask the staleness of
// the others, so freshness queries always name the interface.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/stats.h"
#include "history/store.h"
#include "monitor/counter_math.h"
#include "obs/metrics.h"

namespace netqos::mon {

/// (node name, ifDescr) key.
using InterfaceKey = std::pair<std::string, std::string>;

class StatsDb {
 public:
  StatsDb() = default;
  explicit StatsDb(hist::RetentionPolicy retention)
      : history_(std::move(retention)) {}

  /// Registers the db's instruments (sample updates, detected Counter32
  /// wraps, tracked-interface gauge) plus the backing history store's in
  /// `registry`. Telemetry is off until attached; re-attaching moves it
  /// to the new registry.
  void attach_metrics(obs::MetricsRegistry& registry);
  /// Records a fresh sample taken at monitor-side time `when`. Returns
  /// the rates vs. the previous sample, or nullopt for the first sample
  /// (or a zero uptime delta).
  std::optional<RateSample> update(const InterfaceKey& key, SimTime when,
                                   const CounterSample& sample);

  /// Most recent rates for an interface.
  std::optional<RateSample> latest_rate(const InterfaceKey& key) const;

  /// History of total (in+out) byte rates, materialized from the bounded
  /// history ring: a snapshot as of this call (re-fetch after advancing
  /// the simulation), holding at most the retention policy's raw
  /// capacity. The reference stays valid until the next call for the
  /// same interface. Nullptr before the interface's first rate.
  const TimeSeries* total_rate_series(const InterfaceKey& key) const;

  /// The bounded store backing all per-interface rate history. Windowed
  /// min/mean/max/p95 queries go through here (hist::interface_series_key
  /// names the series).
  const hist::HistoryStore& history() const { return history_; }

  /// Number of interfaces tracked.
  std::size_t size() const { return entries_.size(); }

  /// Monitor-side time of the most recent update of *this* interface, or
  /// nullopt before its first sample. This is the query path reports use:
  /// the db-global last_update() below cannot distinguish a stale agent
  /// behind a fresh one.
  std::optional<SimTime> last_update(const InterfaceKey& key) const;

  /// Age of the interface's latest sample at `now`; nullopt before the
  /// first sample.
  std::optional<SimDuration> sample_age(const InterfaceKey& key,
                                        SimTime now) const;

  /// Monitor-side time of the most recent update anywhere (0 if none).
  /// Only says "the db is alive" — use last_update(key) for staleness.
  SimTime last_update() const { return last_update_; }

 private:
  struct Entry {
    bool has_sample = false;
    CounterSample last_sample;
    SimTime last_time = 0;
    std::optional<RateSample> last_rate;
  };

  std::map<InterfaceKey, Entry> entries_;
  hist::HistoryStore history_;
  SimTime last_update_ = 0;
  /// Scratch for total_rate_series(): the materialized snapshot the
  /// returned reference points into.
  mutable std::map<InterfaceKey, TimeSeries> series_scratch_;

  obs::Counter* updates_ = nullptr;
  obs::Counter* counter_wraps_ = nullptr;
  obs::Gauge* interfaces_gauge_ = nullptr;
};

}  // namespace netqos::mon
