#include "monitor/bandwidth.h"

#include <algorithm>
#include <limits>

namespace netqos::mon {

const char* freshness_name(Freshness freshness) {
  switch (freshness) {
    case Freshness::kUnknown: return "unknown";
    case Freshness::kFresh: return "fresh";
    case Freshness::kStale: return "stale";
  }
  return "?";
}

BandwidthCalculator::BandwidthCalculator(const topo::NetworkTopology& topo,
                                         const PollPlan& plan)
    : topo_(topo), plan_(plan) {}

std::optional<BytesPerSecond> BandwidthCalculator::connection_traffic(
    std::size_t conn, const StatsDb& db) const {
  const auto& point = plan_.measurement_for(conn);
  if (!point.has_value()) return std::nullopt;
  const auto rate = db.latest_rate({point->node, point->interface});
  if (!rate.has_value()) return std::nullopt;
  return rate->total_rate();
}

std::optional<BytesPerSecond> BandwidthCalculator::domain_usage(
    std::size_t domain, const StatsDb& db) const {
  const topo::CollisionDomain& dom = plan_.domains()[domain];
  BytesPerSecond sum = 0.0;
  bool any = false;
  for (std::size_t ci : dom.member_connections) {
    // Paper §3.3 sums the traffic of the hosts on the hub. The uplink to
    // the switch already carries the same frames the hosts report, so
    // counting it too would double the load; only host members sum.
    const topo::Connection& conn = topo_.connections()[ci];
    const topo::NodeSpec* a = topo_.find_node(conn.a.node);
    const topo::NodeSpec* b = topo_.find_node(conn.b.node);
    const bool host_member = (a->kind == topo::NodeKind::kHost) ||
                             (b->kind == topo::NodeKind::kHost);
    if (!host_member) continue;
    const auto traffic = connection_traffic(ci, db);
    if (traffic.has_value()) {
      sum += *traffic;
      any = true;
    }
  }
  if (!any) return std::nullopt;
  // "Notice that u_i cannot exceed the maximum speed of the hub."
  const BytesPerSecond cap = to_bytes_per_second(dom.speed);
  return std::min(sum, cap);
}

ConnectionUsage BandwidthCalculator::connection_usage(
    std::size_t conn, const StatsDb& db) const {
  ConnectionUsage usage;
  usage.connection = conn;
  const topo::Connection& c = topo_.connections()[conn];
  const auto& domain = plan_.domain_of()[conn];

  if (const auto& point = plan_.measurement_for(conn)) {
    usage.via_switch = point->via_switch;
    if (const auto rate = db.latest_rate({point->node, point->interface})) {
      usage.discard_rate = rate->discard_rate;
    }
  }

  if (domain.has_value()) {
    usage.hub_rule = true;
    usage.capacity = to_bytes_per_second(plan_.domains()[*domain].speed);
    const auto used = domain_usage(*domain, db);
    usage.measured = used.has_value();
    usage.used = used.value_or(0.0);
  } else {
    usage.capacity = to_bytes_per_second(topo::connection_speed(topo_, c));
    const auto used = connection_traffic(conn, db);
    usage.measured = used.has_value();
    usage.used = used.value_or(0.0);
  }
  usage.available = std::max(0.0, usage.capacity - usage.used);
  return usage;
}

PathUsage BandwidthCalculator::path_usage(const topo::Path& path,
                                          const StatsDb& db) const {
  PathUsage result;
  result.complete = !path.empty();
  result.available = std::numeric_limits<double>::infinity();

  for (std::size_t ci : path) {
    ConnectionUsage usage = connection_usage(ci, db);
    result.complete = result.complete && usage.measured;
    if (usage.available < result.available) {
      result.available = usage.available;
      result.used_at_bottleneck = usage.used;
      result.bottleneck = ci;
    }
    result.connections.push_back(std::move(usage));
  }
  if (path.empty()) {
    result.available = 0.0;
    result.complete = false;
  }
  return result;
}

PathUsage BandwidthCalculator::path_usage(const topo::Path& path,
                                          const StatsDb& db, SimTime now,
                                          SimDuration stale_after) const {
  PathUsage result = path_usage(path, db);
  for (ConnectionUsage& usage : result.connections) {
    const auto& point = plan_.measurement_for(usage.connection);
    if (!point.has_value()) continue;
    usage.sample_age = db.sample_age({point->node, point->interface}, now);
    if (usage.sample_age.has_value() &&
        *usage.sample_age > result.max_sample_age) {
      result.max_sample_age = *usage.sample_age;
    }
  }
  // kFresh requires a complete measurement inside the bound; anything
  // less is reported kStale so consumers never trust silently-old data.
  const bool all_young =
      result.complete && result.max_sample_age <= stale_after;
  result.freshness = all_young ? Freshness::kFresh : Freshness::kStale;
  return result;
}

}  // namespace netqos::mon
