#include "monitor/stats_db.h"

namespace netqos::mon {

std::optional<RateSample> StatsDb::update(const InterfaceKey& key,
                                          SimTime when,
                                          const CounterSample& sample) {
  Entry& entry = entries_[key];
  std::optional<RateSample> rates;
  if (entry.has_sample) {
    rates = compute_rates(entry.last_sample, sample);
  }
  entry.last_sample = sample;
  entry.has_sample = true;
  if (rates.has_value()) {
    entry.last_rate = rates;
    entry.total_series.add(when, rates->total_rate());
  }
  if (when > last_update_) last_update_ = when;
  return rates;
}

std::optional<RateSample> StatsDb::latest_rate(
    const InterfaceKey& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second.last_rate;
}

const TimeSeries* StatsDb::total_rate_series(const InterfaceKey& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  return &it->second.total_series;
}

}  // namespace netqos::mon
