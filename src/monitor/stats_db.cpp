#include "monitor/stats_db.h"

namespace netqos::mon {

void StatsDb::attach_metrics(obs::MetricsRegistry& registry) {
  updates_ = &registry.counter("netqos_statsdb_updates_total",
                               "Counter samples recorded in the stats db");
  counter_wraps_ = &registry.counter(
      "netqos_statsdb_counter_wraps_total",
      "Octet-counter wraps detected between consecutive samples");
  interfaces_gauge_ = &registry.gauge("netqos_statsdb_interfaces",
                                      "Interfaces currently tracked");
  history_.attach_metrics(registry, "interfaces");
}

std::optional<RateSample> StatsDb::update(const InterfaceKey& key,
                                          SimTime when,
                                          const CounterSample& sample) {
  Entry& entry = entries_[key];
  std::optional<RateSample> rates;
  if (entry.has_sample) {
    rates = compute_rates(entry.last_sample, sample);
    // A smaller octet total than last time means the modular delta
    // crossed a wrap (the ~6-minute Counter32 horizon at 100 Mbps).
    if (counter_wraps_ != nullptr &&
        (sample.in_octets < entry.last_sample.in_octets ||
         sample.out_octets < entry.last_sample.out_octets)) {
      counter_wraps_->inc();
    }
  }
  if (updates_ != nullptr) updates_->inc();
  entry.last_sample = sample;
  entry.has_sample = true;
  if (rates.has_value()) {
    entry.last_rate = rates;
    // compute_rates already corrected any Counter32 wrap via modular
    // arithmetic, so the store receives one honest rate sample — a wrap
    // must never show up as a spike in downsampled buckets.
    history_.append(hist::interface_series_key(key.first, key.second), when,
                    rates->total_rate());
  }
  entry.last_time = when;
  if (when > last_update_) last_update_ = when;
  if (interfaces_gauge_ != nullptr) {
    interfaces_gauge_->set(static_cast<double>(entries_.size()));
  }
  return rates;
}

std::optional<RateSample> StatsDb::latest_rate(
    const InterfaceKey& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second.last_rate;
}

const TimeSeries* StatsDb::total_rate_series(const InterfaceKey& key) const {
  const hist::Series* series =
      history_.find(hist::interface_series_key(key.first, key.second));
  if (series == nullptr) return nullptr;
  TimeSeries& scratch = series_scratch_[key];
  scratch = TimeSeries();
  series->materialize_raw(scratch);
  return &scratch;
}

std::optional<SimTime> StatsDb::last_update(const InterfaceKey& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.has_sample) return std::nullopt;
  return it->second.last_time;
}

std::optional<SimDuration> StatsDb::sample_age(const InterfaceKey& key,
                                               SimTime now) const {
  const auto updated = last_update(key);
  if (!updated.has_value()) return std::nullopt;
  return now - *updated;
}

}  // namespace netqos::mon
