// Network latency measurement (paper §5 lists this as future work).
//
// A LatencyProbe sends small UDP datagrams to the ECHO service (UDP/7,
// RFC 862) of a target host and records round-trip times. Unlike the
// bandwidth monitor this is an active end-to-end measurement: it needs no
// SNMP, only an echo responder on the far end.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "netsim/host.h"
#include "netsim/simulator.h"

namespace netqos::mon {

struct LatencyProbeConfig {
  SimDuration probe_interval = 1 * kSecond;
  SimDuration timeout = 2 * kSecond;
  std::size_t payload_bytes = 56;  ///< classic ping-sized payload
};

class LatencyProbe {
 public:
  LatencyProbe(sim::Simulator& sim, sim::Host& source,
               sim::Ipv4Address target, LatencyProbeConfig config = {});
  ~LatencyProbe();
  LatencyProbe(const LatencyProbe&) = delete;
  LatencyProbe& operator=(const LatencyProbe&) = delete;

  void start();
  void stop();

  /// RTT samples in seconds over time.
  const TimeSeries& rtt_series() const { return rtts_; }
  RunningStats rtt_stats() const;

  /// Streams every RTT observation (reply time, RTT in seconds) as it
  /// lands — the hook the latency measurement module aggregates through.
  /// Subscribers must outlive the probe's last reply.
  using SampleCallback = std::function<void(SimTime, double)>;
  void add_sample_callback(SampleCallback callback) {
    sample_callbacks_.push_back(std::move(callback));
  }
  std::uint64_t probes_sent() const { return sent_; }
  std::uint64_t probes_lost() const { return lost_; }

 private:
  void send_probe();
  void on_reply(const sim::Ipv4Packet& packet);

  sim::Simulator& sim_;
  sim::Host& source_;
  sim::Ipv4Address target_;
  LatencyProbeConfig config_;
  std::uint16_t src_port_ = 0;

  bool running_ = false;
  sim::EventId next_event_ = 0;
  std::uint32_t next_sequence_ = 1;
  // sequence -> send time of in-flight probes
  std::unordered_map<std::uint32_t, SimTime> in_flight_;
  TimeSeries rtts_;
  std::vector<SampleCallback> sample_callbacks_;
  std::uint64_t sent_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace netqos::mon
