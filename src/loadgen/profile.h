// Load profiles: piecewise-constant payload rates over time.
//
// The paper's experiments are all staircases of constant-rate UDP
// streams; a RateProfile captures one stream's schedule and doubles as
// the "generated load" reference series in the figures.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "common/units.h"

namespace netqos::load {

/// One piecewise-constant segment boundary: from `start`, send at `rate`.
struct RateStep {
  SimTime start = 0;
  BytesPerSecond rate = 0.0;  ///< payload bytes per second
};

class RateProfile {
 public:
  RateProfile() = default;

  /// Steps must be appended in non-decreasing start order.
  RateProfile& add_step(SimTime start, BytesPerSecond rate);

  /// Constant `rate` on [begin, end), silent outside.
  static RateProfile pulse(SimTime begin, SimTime end, BytesPerSecond rate);

  /// The paper's Figure 4a staircase: `initial` B/s starting at t=0 for
  /// `first_duration`, then += `increment` every `step_duration` for
  /// `steps - 1` further levels, all load off at `off_time`.
  static RateProfile staircase(BytesPerSecond initial,
                               SimDuration first_duration,
                               BytesPerSecond increment,
                               SimDuration step_duration, int steps,
                               SimTime off_time);

  /// Seeded on/off bursts on [begin, end): burst lengths are exponential
  /// with mean `mean_burst`, gaps exponential with mean `mean_gap`, and
  /// each burst's rate is uniform in [rate/2, rate). Deterministic for a
  /// given seed — the shootout's SNMP-invisible cross traffic, shaped so
  /// probes keep finding the bottleneck in different states.
  static RateProfile random_bursts(SimTime begin, SimTime end,
                                   BytesPerSecond rate,
                                   SimDuration mean_burst,
                                   SimDuration mean_gap,
                                   std::uint64_t seed);

  /// Rate in effect at time t (0 before the first step).
  BytesPerSecond rate_at(SimTime t) const;

  /// Next time > t at which the rate changes; -1 if none.
  SimTime next_change_after(SimTime t) const;

  const std::vector<RateStep>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }

 private:
  std::vector<RateStep> steps_;
};

}  // namespace netqos::load
