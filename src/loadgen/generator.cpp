#include "loadgen/generator.h"

#include <stdexcept>

namespace netqos::load {

LoadGenerator::LoadGenerator(sim::Simulator& sim, sim::Host& source,
                             sim::Ipv4Address destination,
                             RateProfile profile, GeneratorConfig config)
    : sim_(sim),
      source_(source),
      destination_(destination),
      profile_(std::move(profile)),
      config_(config) {
  if (config_.payload_bytes == 0 ||
      config_.payload_bytes > sim::kMaxUdpPayloadBytes) {
    throw std::invalid_argument("payload must be 1..1472 bytes");
  }
  src_port_ = source_.udp().allocate_ephemeral_port();
}

void LoadGenerator::start() {
  if (running_) return;
  running_ = true;
  arm_next();
}

void LoadGenerator::stop() {
  running_ = false;
  if (next_event_ != 0) {
    sim_.cancel(next_event_);
    next_event_ = 0;
  }
}

void LoadGenerator::arm_next() {
  const SimTime now = sim_.now();
  const BytesPerSecond rate = profile_.rate_at(now);

  if (rate <= 0.0) {
    // Silent until the profile changes.
    const SimTime change = profile_.next_change_after(now);
    if (change < 0) {
      running_ = false;
      return;
    }
    next_event_ = sim_.schedule_at(change, [this] {
      next_event_ = 0;
      if (running_) tick();
    });
    return;
  }

  // Evenly pace datagrams: one payload every payload/rate seconds, but
  // never beyond the next profile change (the new rate takes over there).
  const double gap_seconds =
      static_cast<double>(config_.payload_bytes) / rate;
  SimTime next = now + from_seconds(gap_seconds);
  const SimTime change = profile_.next_change_after(now);
  bool send_on_fire = true;
  if (change >= 0 && change < next) {
    next = change;
    send_on_fire = false;  // rate boundary, not a send slot
  }
  next_event_ = sim_.schedule_at(next, [this, send_on_fire] {
    next_event_ = 0;
    if (!running_) return;
    if (send_on_fire) tick();
    else arm_next();
  });
}

void LoadGenerator::tick() {
  if (source_.udp().send(destination_, sim::kDiscardPort, src_port_, {},
                         config_.payload_bytes)) {
    ++datagrams_sent_;
    payload_bytes_sent_ += config_.payload_bytes;
  } else {
    ++send_failures_;
  }
  arm_next();
}

}  // namespace netqos::load
