// UDP network load generator (paper §4.2).
//
// "It sends data streams to a designated host at a given speed. The data
// are sent as UDP packets to the DISCARD port (UDP port number 9)." The
// generator paces fixed-payload datagrams so that *payload* bytes match
// the profile rate; headers ride on top, which is why the paper's
// measured traffic runs ~2-4% above the generated figure.
#pragma once

#include <cstdint>

#include "common/sim_time.h"
#include "loadgen/profile.h"
#include "netsim/host.h"
#include "netsim/simulator.h"

namespace netqos::load {

struct GeneratorConfig {
  /// Payload bytes per datagram (default: largest that fits the MTU).
  std::size_t payload_bytes = sim::kMaxUdpPayloadBytes;
};

class LoadGenerator {
 public:
  LoadGenerator(sim::Simulator& sim, sim::Host& source,
                sim::Ipv4Address destination, RateProfile profile,
                GeneratorConfig config = {});

  /// Begins following the profile from the simulator's current time base
  /// (profile times are absolute simulation times).
  void start();
  void stop();

  const RateProfile& profile() const { return profile_; }
  std::uint64_t datagrams_sent() const { return datagrams_sent_; }
  std::uint64_t payload_bytes_sent() const { return payload_bytes_sent_; }
  std::uint64_t send_failures() const { return send_failures_; }

 private:
  void tick();
  void arm_next();

  sim::Simulator& sim_;
  sim::Host& source_;
  sim::Ipv4Address destination_;
  RateProfile profile_;
  GeneratorConfig config_;
  std::uint16_t src_port_ = 0;

  bool running_ = false;
  sim::EventId next_event_ = 0;
  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t payload_bytes_sent_ = 0;
  std::uint64_t send_failures_ = 0;
};

}  // namespace netqos::load
