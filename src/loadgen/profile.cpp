#include "loadgen/profile.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"

namespace netqos::load {

RateProfile& RateProfile::add_step(SimTime start, BytesPerSecond rate) {
  if (!steps_.empty() && start < steps_.back().start) {
    throw std::invalid_argument("profile steps must be time-ordered");
  }
  if (rate < 0) {
    throw std::invalid_argument("negative rate");
  }
  steps_.push_back({start, rate});
  return *this;
}

RateProfile RateProfile::pulse(SimTime begin, SimTime end,
                               BytesPerSecond rate) {
  RateProfile p;
  p.add_step(begin, rate);
  p.add_step(end, 0.0);
  return p;
}

RateProfile RateProfile::staircase(BytesPerSecond initial,
                                   SimDuration first_duration,
                                   BytesPerSecond increment,
                                   SimDuration step_duration, int steps,
                                   SimTime off_time) {
  RateProfile p;
  p.add_step(0, initial);
  SimTime t = first_duration;
  BytesPerSecond rate = initial;
  for (int i = 1; i < steps; ++i) {
    rate += increment;
    p.add_step(t, rate);
    t += step_duration;
  }
  p.add_step(off_time, 0.0);
  return p;
}

RateProfile RateProfile::random_bursts(SimTime begin, SimTime end,
                                       BytesPerSecond rate,
                                       SimDuration mean_burst,
                                       SimDuration mean_gap,
                                       std::uint64_t seed) {
  if (end <= begin || rate <= 0 || mean_burst <= 0 || mean_gap <= 0) {
    throw std::invalid_argument("random_bursts: degenerate parameters");
  }
  RateProfile p;
  Xoshiro256 rng(seed);
  SimTime t = begin;
  while (t < end) {
    const auto burst = std::max<SimDuration>(
        kMillisecond, static_cast<SimDuration>(
                          rng.exponential(to_seconds(mean_burst)) *
                          static_cast<double>(kSecond)));
    const BytesPerSecond level = rng.uniform(rate / 2, rate);
    p.add_step(t, level);
    t = std::min(end, t + burst);
    p.add_step(t, 0.0);
    const auto gap = std::max<SimDuration>(
        kMillisecond,
        static_cast<SimDuration>(rng.exponential(to_seconds(mean_gap)) *
                                 static_cast<double>(kSecond)));
    t += gap;
  }
  // Ensure silence from `end` even when the loop exits mid-gap.
  if (p.steps_.back().start < end) p.add_step(end, 0.0);
  return p;
}

BytesPerSecond RateProfile::rate_at(SimTime t) const {
  BytesPerSecond rate = 0.0;
  for (const auto& step : steps_) {
    if (step.start > t) break;
    rate = step.rate;
  }
  return rate;
}

SimTime RateProfile::next_change_after(SimTime t) const {
  for (const auto& step : steps_) {
    if (step.start > t) return step.start;
  }
  return -1;
}

}  // namespace netqos::load
