#include "probe/periodic.h"

#include <algorithm>

namespace netqos::probe {

PeriodicStreamEstimator::PeriodicStreamEstimator(sim::Host& source,
                                                 sim::Ipv4Address target,
                                                 ProbedPath path,
                                                 PeriodicStreamConfig config)
    : Estimator("periodic", source, target, std::move(path)),
      config_(config) {}

void PeriodicStreamEstimator::on_start() { send_window(); }

void PeriodicStreamEstimator::send_window() {
  if (!running()) return;
  const std::uint32_t stream = next_stream_++;
  while (pending_.size() >= 8) pending_.erase(pending_.begin());
  pending_[stream].reserve(config_.window_length);

  for (std::size_t k = 0; k < config_.window_length; ++k) {
    const bool last = k + 1 == config_.window_length;
    sim().schedule_after(
        static_cast<SimDuration>(k) * config_.probe_interval,
        [this, stream, k, last] {
          if (!running()) return;
          auto it = pending_.find(stream);
          if (it == pending_.end()) return;
          if (send_probe(stream, static_cast<std::uint32_t>(k), last,
                         config_.frame_bytes)) {
            it->second.push_back(sim().now());
          } else {
            pending_.erase(it);
          }
        });
  }
  const SimDuration window_span =
      static_cast<SimDuration>(config_.window_length - 1) *
      config_.probe_interval;
  sim().schedule_after(window_span + config_.window_interval,
                       [this] { send_window(); });
}

void PeriodicStreamEstimator::on_report(const ProbeReport& report,
                                        SimTime now) {
  (void)now;
  auto it = pending_.find(report.header.stream);
  if (it == pending_.end()) return;
  const std::vector<SimTime> sends = std::move(it->second);
  pending_.erase(it);

  std::vector<SimDuration> delays;
  delays.reserve(report.arrivals.size());
  for (const ReportEntry& entry : report.arrivals) {
    if (entry.seq >= sends.size()) continue;
    delays.push_back(entry.received_at - sends[entry.seq]);
  }
  if (delays.size() < config_.window_length / 2 || delays.empty()) return;
  ++windows_completed_;

  // The quietest probe of the window saw an empty queue; everything
  // slower than it (plus epsilon) queued behind cross traffic.
  const SimDuration base = *std::min_element(delays.begin(), delays.end());
  std::size_t busy = 0;
  for (const SimDuration delay : delays) {
    if (delay - base > config_.busy_epsilon) ++busy;
  }
  const double utilization =
      static_cast<double>(busy) / static_cast<double>(delays.size());
  const auto avail_bps = static_cast<BitsPerSecond>(
      (1.0 - utilization) * static_cast<double>(path().capacity));
  record_estimate(to_bytes_per_second(avail_bps));
}

}  // namespace netqos::probe
