#include "probe/registry.h"

#include <algorithm>
#include <stdexcept>

#include "probe/packet_pair.h"
#include "probe/packet_train.h"
#include "probe/periodic.h"

namespace netqos::probe {

const std::vector<std::string>& available_estimators() {
  static const std::vector<std::string> kNames = {"pair", "train",
                                                  "periodic"};
  return kNames;
}

bool is_estimator_name(const std::string& name) {
  const auto& names = available_estimators();
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::unique_ptr<Estimator> make_estimator(const std::string& name,
                                          sim::Host& source,
                                          sim::Ipv4Address target,
                                          ProbedPath path) {
  if (name == "pair") {
    return std::make_unique<PacketPairEstimator>(source, target,
                                                 std::move(path));
  }
  if (name == "train") {
    return std::make_unique<PacketTrainEstimator>(source, target,
                                                  std::move(path));
  }
  if (name == "periodic") {
    return std::make_unique<PeriodicStreamEstimator>(source, target,
                                                     std::move(path));
  }
  throw std::invalid_argument("unknown estimator: " + name);
}

}  // namespace netqos::probe
