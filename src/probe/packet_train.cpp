#include "probe/packet_train.h"

#include <algorithm>

namespace netqos::probe {

PacketTrainEstimator::PacketTrainEstimator(sim::Host& source,
                                           sim::Ipv4Address target,
                                           ProbedPath path,
                                           PacketTrainConfig config)
    : Estimator("train", source, target, std::move(path)), config_(config) {
  reset_search();
}

void PacketTrainEstimator::reset_search() {
  lo_ = 0;
  hi_ = path().capacity;
}

void PacketTrainEstimator::on_start() { send_train(); }

void PacketTrainEstimator::send_train() {
  if (!running()) return;
  // Probe the bracket midpoint, floored so the pacing gap stays finite
  // even when the bracket collapses toward zero available bandwidth.
  rate_ = std::max((lo_ + hi_) / 2, path().capacity / 64);
  const std::uint32_t stream = next_stream_++;
  const SimDuration gap = gap_for(config_.frame_bytes, rate_);

  // Lost reports leave orphaned send schedules; bound them.
  while (pending_.size() >= 8) pending_.erase(pending_.begin());
  pending_[stream].reserve(config_.train_length);

  for (std::size_t k = 0; k < config_.train_length; ++k) {
    const bool last = k + 1 == config_.train_length;
    sim().schedule_after(
        static_cast<SimDuration>(k) * gap, [this, stream, k, last] {
          if (!running()) return;
          auto it = pending_.find(stream);
          if (it == pending_.end()) return;
          if (send_probe(stream, static_cast<std::uint32_t>(k), last,
                         config_.frame_bytes)) {
            it->second.push_back(sim().now());
          } else {
            // A send failure desynchronizes the schedule; abandon the
            // train rather than read a bogus trend from it.
            pending_.erase(it);
          }
        });
  }
  const SimDuration train_span =
      static_cast<SimDuration>(config_.train_length - 1) * gap;
  sim().schedule_after(train_span + config_.train_interval,
                       [this] { send_train(); });
}

void PacketTrainEstimator::on_report(const ProbeReport& report,
                                     SimTime now) {
  (void)now;
  auto it = pending_.find(report.header.stream);
  if (it == pending_.end()) return;
  const std::vector<SimTime> sends = std::move(it->second);
  pending_.erase(it);

  // One-way delays against the send schedule, in seq order. Probe loss
  // leaves gaps; require most of the train for a verdict.
  std::vector<SimDuration> delays;
  delays.reserve(report.arrivals.size());
  std::vector<ReportEntry> arrivals = report.arrivals;
  std::sort(arrivals.begin(), arrivals.end(),
            [](const ReportEntry& a, const ReportEntry& b) {
              return a.seq < b.seq;
            });
  for (const ReportEntry& entry : arrivals) {
    if (entry.seq >= sends.size()) continue;
    delays.push_back(entry.received_at - sends[entry.seq]);
  }
  if (delays.size() < config_.train_length / 2 || delays.size() < 4) return;
  ++trains_completed_;

  // Pairwise comparison test: fraction of consecutive delay increases.
  std::size_t increases = 0;
  for (std::size_t k = 0; k + 1 < delays.size(); ++k) {
    if (delays[k + 1] - delays[k] > config_.trend_epsilon) ++increases;
  }
  const double pct = static_cast<double>(increases) /
                     static_cast<double>(delays.size() - 1);
  const bool increasing = pct >= config_.pct_threshold;

  if (increasing) {
    hi_ = rate_;  // self-loading: R above available bandwidth
  } else {
    lo_ = rate_;
  }
  const auto resolution_bps = static_cast<BitsPerSecond>(
      config_.resolution * static_cast<double>(path().capacity));
  if (hi_ - lo_ <= resolution_bps) {
    record_estimate(to_bytes_per_second((lo_ + hi_) / 2));
    reset_search();
  }
}

}  // namespace netqos::probe
