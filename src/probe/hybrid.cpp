#include "probe/hybrid.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace netqos::probe {

namespace {

bool unordered_pair_equal(const mon::PathKey& key, const ProbedPath& path) {
  return (key.first == path.from && key.second == path.to) ||
         (key.first == path.to && key.second == path.from);
}

}  // namespace

HybridEstimator::HybridEstimator(HybridConfig config)
    : mon::Module("probe.hybrid"), config_(config) {}

void HybridEstimator::on_path_sample(const mon::PathKey& key, SimTime time,
                                     const mon::PathUsage& usage) {
  if (estimator_ == nullptr) return;
  if (!unordered_pair_equal(key, estimator_->path())) return;
  if (estimator_->convergence() == Convergence::kWarmup) return;

  const auto& estimates = estimator_->estimates();
  if (estimates.empty()) return;
  const EstimateSample& probe = estimates.back();
  if (time - probe.time > config_.max_estimate_age) return;

  const double capacity =
      to_bytes_per_second(estimator_->path().capacity);
  if (capacity <= 0.0) return;

  // Disagreement only counts when the probe sees *less* headroom than the
  // counters do: an optimistic probe (converging from above, or a quiet
  // sampling window) is no reason to distrust the passive figure.
  const double gap =
      std::max(0.0, usage.available - probe.available) / capacity;
  last_disagreement_ = gap;
  ++cross_checks_;

  const double excess = std::max(0.0, gap - config_.deadband);
  const double agreement = std::clamp(1.0 - excess, 0.0, 1.0);
  confidence_ += config_.smoothing * (agreement - confidence_);
  // A clean streak decays back to full trust exactly (asymptotic EWMA
  // would hover just below 1.0 and keep the raised bar forever).
  if (agreement >= 1.0 && confidence_ > 0.995) confidence_ = 1.0;

  if (detector_ != nullptr) {
    detector_->set_path_confidence(key.first, key.second, confidence_, time);
  }
}

std::size_t HybridEstimator::footprint_bytes() const {
  return sizeof(double) * 2 + sizeof(std::uint64_t);
}

std::vector<mon::ModuleNote> HybridEstimator::notes() const {
  std::vector<mon::ModuleNote> notes;
  notes.push_back({"estimator",
                   estimator_ != nullptr ? estimator_->name() : "none"});
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", confidence_);
  notes.push_back({"confidence", buffer});
  notes.push_back({"cross_checks", std::to_string(cross_checks_)});
  if (last_disagreement_.has_value()) {
    std::snprintf(buffer, sizeof(buffer), "%.3f", *last_disagreement_);
    notes.push_back({"last_disagreement", buffer});
  }
  return notes;
}

}  // namespace netqos::probe
