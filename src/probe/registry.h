// Estimator factory: the one list of active-probing methods, shared by
// netqosmon's --probe flag, the shootout experiment, and tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "probe/estimator.h"

namespace netqos::probe {

/// Estimator names make_estimator accepts, in canonical order.
const std::vector<std::string>& available_estimators();

/// True when `name` is a known estimator name.
bool is_estimator_name(const std::string& name);

/// Builds the named estimator with its default configuration. Throws
/// std::invalid_argument for an unknown name.
std::unique_ptr<Estimator> make_estimator(const std::string& name,
                                          sim::Host& source,
                                          sim::Ipv4Address target,
                                          ProbedPath path);

}  // namespace netqos::probe
