// Periodic-stream utilization sampler — the baseline estimator.
//
// The lightest method of the three: a thin stream of minimum-size probes
// at a fixed low rate. Each probe's one-way delay, measured against the
// quietest probe of its window, reveals whether it queued behind cross
// traffic at the bottleneck. By PASTA-style time averaging, the fraction
// of delayed probes approximates the bottleneck's busy fraction u, and
//
//   avail = C * (1 - u)
//
// Cheap (no self-loading, tiny frames) but coarse: a window of W probes
// quantizes u to 1/W, and short cross bursts slip between samples. The
// shootout's accuracy column is where that shows.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "probe/estimator.h"

namespace netqos::probe {

struct PeriodicStreamConfig {
  /// Probes per window (one estimate per window); also the u quantum.
  std::size_t window_length = 50;
  /// Wire size of each probe (minimum frame: the stream should not
  /// itself load the path).
  std::size_t frame_bytes = 74;
  /// Pause between probes within a window.
  SimDuration probe_interval = 8 * kMillisecond;
  /// Pause between windows.
  SimDuration window_interval = 100 * kMillisecond;
  /// Queueing delay above the window minimum that counts as "found the
  /// bottleneck busy".
  SimDuration busy_epsilon = 20 * kMicrosecond;
};

class PeriodicStreamEstimator final : public Estimator {
 public:
  PeriodicStreamEstimator(sim::Host& source, sim::Ipv4Address target,
                          ProbedPath path, PeriodicStreamConfig config = {});

  const PeriodicStreamConfig& config() const { return config_; }
  std::uint64_t windows_completed() const { return windows_completed_; }

 protected:
  void on_start() override;
  void on_report(const ProbeReport& report, SimTime now) override;

 private:
  void send_window();

  PeriodicStreamConfig config_;
  std::uint32_t next_stream_ = 0;
  std::uint64_t windows_completed_ = 0;
  /// Send times of in-flight windows by stream id.
  std::map<std::uint32_t, std::vector<SimTime>> pending_;
};

}  // namespace netqos::probe
