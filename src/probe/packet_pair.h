// Packet-pair dispersion estimator (spruce-style gap method).
//
// Two back-to-back MTU probes leave the source faster than the bottleneck
// can serialize them, so they exit the bottleneck spaced by its
// serialization time gap_in = L/C. Cross traffic queued between them
// stretches the spacing to gap_out; the stretch is exactly the cross
// bytes that slipped in (Spruce, PAPERS.md arXiv:0706.4004):
//
//   cross = C * (gap_out - gap_in) / gap_in
//   avail = C - cross, clamped to [0, C]
//
// One pair is a noisy sample (it sees the instantaneous queue); the
// estimator averages a batch of pairs per estimate.
#pragma once

#include <cstddef>
#include <map>

#include "probe/estimator.h"

namespace netqos::probe {

struct PacketPairConfig {
  /// Wire size of each probe frame (MTU-sized like spruce, so gap_in is
  /// as large — and as measurable — as the path allows).
  std::size_t frame_bytes = 1518;
  /// Pause between pairs. Pairs are intentionally sparse; the batch mean
  /// smooths what sparseness costs in variance.
  SimDuration pair_interval = 100 * kMillisecond;
  /// Pairs averaged into one estimate.
  std::size_t pairs_per_estimate = 8;
};

class PacketPairEstimator final : public Estimator {
 public:
  PacketPairEstimator(sim::Host& source, sim::Ipv4Address target,
                      ProbedPath path, PacketPairConfig config = {});

  const PacketPairConfig& config() const { return config_; }
  std::uint64_t pairs_completed() const { return pairs_completed_; }

 protected:
  void on_start() override;
  void on_report(const ProbeReport& report, SimTime now) override;

 private:
  void send_pair();

  PacketPairConfig config_;
  std::uint32_t next_stream_ = 0;
  std::uint64_t pairs_completed_ = 0;
  /// Cross-rate samples (bits/s) of the current batch.
  std::vector<double> batch_;
};

}  // namespace netqos::probe
