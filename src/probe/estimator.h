// Active available-bandwidth estimators (PAPERS.md arXiv:0706.4004).
//
// The passive monitor infers path bandwidth from SNMP interface counters;
// an Estimator measures it by injecting probe traffic onto the simulated
// network and reading how the bottleneck reshapes it. Every estimator
// speaks the same protocol: probes go to the destination host's ProbeSink
// (UDP/9162), the sink echoes per-stream arrival reports, and the
// estimator turns send-schedule-vs-arrival geometry into estimates.
//
// The base class owns the shared machinery — session identity, the report
// socket, probe transmission with wire-byte accounting (the intrusiveness
// numerator), the estimate series with convergence state, and telemetry
// registration — so a concrete estimator only implements its probing
// cadence (on_start) and its arithmetic (on_report).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/units.h"
#include "netsim/host.h"
#include "netsim/simulator.h"
#include "obs/metrics.h"
#include "probe/wire.h"

namespace netqos::probe {

/// Estimator life-cycle, reported in health snapshots and the shootout.
enum class Convergence {
  kWarmup,     ///< probing started, no estimate produced yet
  kTracking,   ///< estimates flowing, last few still moving
  kConverged,  ///< recent estimates agree within the stability band
};

const char* convergence_name(Convergence state);

struct EstimateSample {
  SimTime time = 0;
  BytesPerSecond available = 0.0;
};

/// The probed path as the estimator sees it: endpoints by name plus the
/// configured bottleneck capacity C the gap arithmetic is anchored to
/// (known from the specification file, like the paper's ifSpeed).
struct ProbedPath {
  std::string from;
  std::string to;
  BitsPerSecond capacity = 0;
};

struct EstimatorStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t probe_send_failures = 0;
  /// Full Ethernet wire bytes of every probe frame sent (64-byte minimum
  /// applied) — the numerator of the intrusiveness metric.
  std::uint64_t probe_wire_bytes = 0;
  std::uint64_t reports_received = 0;
  std::uint64_t report_wire_bytes = 0;
  std::uint64_t reports_malformed = 0;
};

class Estimator {
 public:
  /// `source` is the host probes leave from; `target` must run a
  /// ProbeSink. The estimator allocates an ephemeral report port on
  /// construction and frees it on destruction.
  Estimator(std::string name, sim::Host& source, sim::Ipv4Address target,
            ProbedPath path);
  virtual ~Estimator();
  Estimator(const Estimator&) = delete;
  Estimator& operator=(const Estimator&) = delete;

  const std::string& name() const { return name_; }
  const ProbedPath& path() const { return path_; }

  /// Begins probing from the simulator's current time. Idempotent.
  void start();
  void stop();
  bool running() const { return running_; }

  /// Most recent estimate, if any.
  std::optional<BytesPerSecond> latest() const;
  const std::vector<EstimateSample>& estimates() const { return estimates_; }
  Convergence convergence() const { return convergence_; }
  /// Time the first estimate was recorded (the estimator's own
  /// cold-start latency; scenario convergence is judged against ground
  /// truth by the shootout).
  std::optional<SimTime> first_estimate_at() const;

  const EstimatorStats& stats() const { return stats_; }
  /// Probe + report wire bytes as a fraction of what the bottleneck could
  /// carry over `duration` — the shootout's intrusiveness metric.
  double intrusiveness(SimDuration duration) const;

  /// Exports probes/bytes/reports/estimates counters and the latest
  /// estimate gauge, labeled {estimator=name, path="from->to"}. The
  /// registry must outlive this estimator.
  void attach_metrics(obs::MetricsRegistry& registry);

 protected:
  sim::Simulator& sim() { return source_.simulator(); }
  std::uint32_t session() const { return session_; }

  /// Probing begins: schedule the first cycle. `stop()` cancels events
  /// via the running() flag — hooks must re-check it.
  virtual void on_start() = 0;
  virtual void on_stop() {}

  /// A stream's arrival report came back. Arrivals are in arrival order;
  /// seq gaps mean probe loss.
  virtual void on_report(const ProbeReport& report, SimTime now) = 0;

  /// Sends one probe datagram sized to `frame_wire_bytes` on the wire
  /// (minimum frame size applies; the header alone already costs 74
  /// bytes). Returns false when the source NIC queue rejected it.
  bool send_probe(std::uint32_t stream, std::uint32_t seq, bool last,
                  std::size_t frame_wire_bytes);

  /// Appends an estimate at the simulator's current time, updates the
  /// convergence state, and refreshes the telemetry gauge.
  void record_estimate(BytesPerSecond available);

  /// Serialization time of a `frame_wire_bytes` frame at rate `rate` —
  /// the dispersion quantum all three estimators reason in.
  static SimDuration gap_for(std::size_t frame_wire_bytes,
                             BitsPerSecond rate) {
    return transmission_delay(frame_wire_bytes, rate);
  }

 private:
  void on_datagram(const sim::Ipv4Packet& packet);

  /// Relative spread of the last three estimates (vs. capacity) below
  /// which the estimator declares itself converged.
  static constexpr double kStabilityBand = 0.05;

  std::string name_;
  sim::Host& source_;
  sim::Ipv4Address target_;
  ProbedPath path_;
  std::uint32_t session_;
  std::uint16_t report_port_ = 0;
  bool running_ = false;

  std::vector<EstimateSample> estimates_;
  Convergence convergence_ = Convergence::kWarmup;
  EstimatorStats stats_;

  obs::Counter* probes_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Counter* reports_counter_ = nullptr;
  obs::Counter* estimates_counter_ = nullptr;
  obs::Gauge* available_gauge_ = nullptr;
};

}  // namespace netqos::probe
