#include "probe/packet_pair.h"

#include <algorithm>
#include <numeric>

namespace netqos::probe {

PacketPairEstimator::PacketPairEstimator(sim::Host& source,
                                         sim::Ipv4Address target,
                                         ProbedPath path,
                                         PacketPairConfig config)
    : Estimator("pair", source, target, std::move(path)), config_(config) {}

void PacketPairEstimator::on_start() { send_pair(); }

void PacketPairEstimator::send_pair() {
  if (!running()) return;
  const std::uint32_t stream = next_stream_++;
  // Back to back: the source NIC serializes them contiguously, the
  // bottleneck re-spaces them to its own serialization time.
  send_probe(stream, 0, /*last=*/false, config_.frame_bytes);
  send_probe(stream, 1, /*last=*/true, config_.frame_bytes);
  sim().schedule_after(config_.pair_interval, [this] { send_pair(); });
}

void PacketPairEstimator::on_report(const ProbeReport& report, SimTime now) {
  (void)now;
  if (report.arrivals.size() != 2) return;  // one probe lost: discard pair
  const SimDuration gap_out =
      report.arrivals[1].received_at - report.arrivals[0].received_at;
  const SimDuration gap_in = gap_for(config_.frame_bytes, path().capacity);
  if (gap_out <= 0 || gap_in <= 0) return;
  ++pairs_completed_;

  const double stretch =
      static_cast<double>(gap_out - gap_in) / static_cast<double>(gap_in);
  const double cross_bps =
      std::max(0.0, stretch * static_cast<double>(path().capacity));
  batch_.push_back(cross_bps);
  if (batch_.size() < config_.pairs_per_estimate) return;

  const double mean_cross =
      std::accumulate(batch_.begin(), batch_.end(), 0.0) /
      static_cast<double>(batch_.size());
  batch_.clear();
  const double avail_bps = std::clamp(
      static_cast<double>(path().capacity) - mean_cross, 0.0,
      static_cast<double>(path().capacity));
  record_estimate(to_bytes_per_second(static_cast<BitsPerSecond>(avail_bps)));
}

}  // namespace netqos::probe
