// Wire format of the active-probing plane (src/probe).
//
// Two message kinds travel over UDP/9162 on the simulated network:
//
//   probe    estimator -> sink. Carries (session, stream, seq) identity
//            and the sender's simulated send time; `padding` bytes on the
//            datagram inflate the frame to the estimator's chosen probe
//            size without materializing the bulk.
//   report   sink -> estimator. After the stream's last probe arrives the
//            sink echoes every (seq, arrival time) it recorded, so the
//            sender can reconstruct dispersion gaps and one-way delays
//            against its own send schedule.
//
// Integers are big-endian via ByteWriter/ByteReader; a report's entry
// count is bounds-checked against the remaining bytes before any
// allocation (netqos-analyze R6 discipline).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/byte_buffer.h"
#include "common/sim_time.h"

namespace netqos::probe {

inline constexpr std::uint32_t kProbeMagic = 0x4E515042;  // "NQPB"
inline constexpr std::uint8_t kProbeVersion = 1;

/// Thrown on a structurally invalid probe/report frame. Truncation inside
/// a field surfaces as BufferUnderflow from ByteReader.
class ProbeWireError : public std::runtime_error {
 public:
  explicit ProbeWireError(const std::string& what)
      : std::runtime_error("probe wire: " + what) {}
};

enum class ProbeKind : std::uint8_t {
  kProbe = 1,
  kReport = 2,
};

/// Flag on the final probe of a stream: the sink closes the stream and
/// sends its report when this arrives.
inline constexpr std::uint8_t kFlagLast = 0x01;

struct ProbeHeader {
  ProbeKind kind = ProbeKind::kProbe;
  std::uint8_t flags = 0;
  /// Estimator instance identity, so several estimators can share one
  /// sink without mixing streams.
  std::uint32_t session = 0;
  /// One measurement unit (a pair, a train, a periodic window).
  std::uint32_t stream = 0;
  std::uint32_t seq = 0;
  SimTime sent_at = 0;
};

/// Encoded size of a probe datagram's materialized payload (header only;
/// bulk rides as frame padding): magic, version, kind, flags, reserved,
/// session, stream, seq, sent_at.
inline constexpr std::size_t kProbeHeaderBytes = 4 + 1 + 1 + 1 + 1 + 4 + 4 + 4 + 8;

struct ReportEntry {
  std::uint32_t seq = 0;
  SimTime received_at = 0;
};

struct ProbeReport {
  ProbeHeader header;  ///< kind == kReport; seq unused (0)
  std::vector<ReportEntry> arrivals;
};

/// Hard cap on entries per report so a report always fits one MTU
/// (kProbeHeaderBytes + 2 + 120 * 12 = 1470 <= 1472).
inline constexpr std::size_t kMaxReportEntries = 120;

Bytes encode_probe(const ProbeHeader& header);
Bytes encode_report(const ProbeReport& report);

/// Peeks the kind byte without consuming the frame; throws on bad
/// magic/version.
ProbeKind peek_kind(std::span<const std::uint8_t> wire);

ProbeHeader decode_probe(std::span<const std::uint8_t> wire);
ProbeReport decode_report(std::span<const std::uint8_t> wire);

}  // namespace netqos::probe
