#include "probe/wire.h"

namespace netqos::probe {
namespace {

constexpr std::size_t kEntryBytes = 4 + 8;

void put_header(ByteWriter& out, const ProbeHeader& header) {
  out.put_u32(kProbeMagic);
  out.put_u8(kProbeVersion);
  out.put_u8(static_cast<std::uint8_t>(header.kind));
  out.put_u8(header.flags);
  out.put_u8(0);  // reserved
  out.put_u32(header.session);
  out.put_u32(header.stream);
  out.put_u32(header.seq);
  out.put_u64(static_cast<std::uint64_t>(header.sent_at));
}

ProbeHeader read_header(ByteReader& in) {
  if (in.get_u32() != kProbeMagic) throw ProbeWireError("bad magic");
  const std::uint8_t version = in.get_u8();
  if (version != kProbeVersion) {
    throw ProbeWireError("unsupported version " + std::to_string(version));
  }
  ProbeHeader header;
  const std::uint8_t kind = in.get_u8();
  if (kind != static_cast<std::uint8_t>(ProbeKind::kProbe) &&
      kind != static_cast<std::uint8_t>(ProbeKind::kReport)) {
    throw ProbeWireError("unknown kind " + std::to_string(kind));
  }
  header.kind = static_cast<ProbeKind>(kind);
  header.flags = in.get_u8();
  (void)in.get_u8();  // reserved
  header.session = in.get_u32();
  header.stream = in.get_u32();
  header.seq = in.get_u32();
  header.sent_at = static_cast<SimTime>(in.get_u64());
  return header;
}

}  // namespace

Bytes encode_probe(const ProbeHeader& header) {
  ByteWriter out;
  out.reserve(kProbeHeaderBytes);
  put_header(out, header);
  return std::move(out).take();
}

Bytes encode_report(const ProbeReport& report) {
  if (report.arrivals.size() > kMaxReportEntries) {
    throw ProbeWireError("report exceeds " +
                         std::to_string(kMaxReportEntries) + " entries");
  }
  ByteWriter out;
  out.reserve(kProbeHeaderBytes + 2 + report.arrivals.size() * kEntryBytes);
  ProbeHeader header = report.header;
  header.kind = ProbeKind::kReport;
  put_header(out, header);
  out.put_u16(static_cast<std::uint16_t>(report.arrivals.size()));
  for (const ReportEntry& entry : report.arrivals) {
    out.put_u32(entry.seq);
    out.put_u64(static_cast<std::uint64_t>(entry.received_at));
  }
  return std::move(out).take();
}

ProbeKind peek_kind(std::span<const std::uint8_t> wire) {
  ByteReader in(wire);
  return read_header(in).kind;
}

ProbeHeader decode_probe(std::span<const std::uint8_t> wire) {
  ByteReader in(wire);
  const ProbeHeader header = read_header(in);
  if (header.kind != ProbeKind::kProbe) {
    throw ProbeWireError("expected a probe frame");
  }
  return header;
}

ProbeReport decode_report(std::span<const std::uint8_t> wire) {
  ByteReader in(wire);
  ProbeReport report;
  report.header = read_header(in);
  if (report.header.kind != ProbeKind::kReport) {
    throw ProbeWireError("expected a report frame");
  }
  const std::uint16_t count = in.get_u16();
  if (count > kMaxReportEntries || count * kEntryBytes > in.remaining()) {
    throw ProbeWireError("report entry count " + std::to_string(count) +
                         " exceeds frame");
  }
  report.arrivals.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    ReportEntry entry;
    entry.seq = in.get_u32();
    entry.received_at = static_cast<SimTime>(in.get_u64());
    report.arrivals.push_back(entry);
  }
  return report;
}

}  // namespace netqos::probe
