// Probe sink: the destination-side half of the active-probing plane.
//
// One sink per probed host, bound to UDP/9162 like the inetd-style
// DISCARD/ECHO services. It timestamps every probe arrival with the
// simulated clock and, when a stream's last-flagged probe lands, echoes a
// report of (seq, arrival time) pairs back to the sending estimator. The
// report travels the reverse path as real traffic, so reporting overhead
// is part of the intrusiveness the shootout measures.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "netsim/host.h"
#include "probe/wire.h"

namespace netqos::probe {

struct SinkStats {
  std::uint64_t probes_received = 0;
  std::uint64_t reports_sent = 0;
  std::uint64_t report_send_failures = 0;
  std::uint64_t malformed = 0;       ///< undecodable datagrams dropped
  std::uint64_t streams_evicted = 0; ///< open streams dropped to the cap
};

/// Binds UDP/9162 on `host`; throws std::logic_error when the port is
/// already bound (one sink per host).
class ProbeSink {
 public:
  explicit ProbeSink(sim::Host& host);
  ~ProbeSink();
  ProbeSink(const ProbeSink&) = delete;
  ProbeSink& operator=(const ProbeSink&) = delete;

  const SinkStats& stats() const { return stats_; }
  /// Streams currently open (first probe seen, last not yet).
  std::size_t open_streams() const { return streams_.size(); }

 private:
  /// A stream is identified by who sent it and the estimator's ids, so
  /// concurrent estimators (even from one host) never mix arrivals.
  using StreamKey = std::tuple<sim::Ipv4Address, std::uint16_t,
                               std::uint32_t, std::uint32_t>;

  void on_datagram(const sim::Ipv4Packet& packet);
  void finish_stream(const StreamKey& key, std::vector<ReportEntry> arrivals,
                     const ProbeHeader& last);

  /// Bound on concurrently open streams; a lost last-probe must not leak
  /// state forever. Oldest stream is evicted first.
  static constexpr std::size_t kMaxOpenStreams = 64;

  sim::Host& host_;
  std::map<StreamKey, std::vector<ReportEntry>> streams_;
  /// Insertion order of streams_ keys, for eviction.
  std::vector<StreamKey> open_order_;
  SinkStats stats_;
};

}  // namespace netqos::probe
