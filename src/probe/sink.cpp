#include "probe/sink.h"

#include <algorithm>
#include <stdexcept>

#include "netsim/simulator.h"

namespace netqos::probe {

ProbeSink::ProbeSink(sim::Host& host) : host_(host) {
  const bool ok = host_.udp().bind(
      sim::kProbePort,
      [this](const sim::Ipv4Packet& packet) { on_datagram(packet); });
  if (!ok) {
    throw std::logic_error("probe port already bound on " + host.name());
  }
}

ProbeSink::~ProbeSink() { host_.udp().unbind(sim::kProbePort); }

void ProbeSink::on_datagram(const sim::Ipv4Packet& packet) {
  ProbeHeader header;
  try {
    header = decode_probe(packet.udp.payload);
  } catch (const std::exception&) {
    ++stats_.malformed;
    return;
  }
  ++stats_.probes_received;

  const StreamKey key{packet.src, packet.udp.src_port, header.session,
                      header.stream};
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    if (streams_.size() >= kMaxOpenStreams) {
      // A stream whose last probe was lost must not pin memory forever:
      // drop the oldest open stream (its report is simply never sent,
      // which the estimator treats as loss).
      const StreamKey oldest = open_order_.front();
      open_order_.erase(open_order_.begin());
      streams_.erase(oldest);
      ++stats_.streams_evicted;
    }
    it = streams_.emplace(key, std::vector<ReportEntry>{}).first;
    open_order_.push_back(key);
  }
  if (it->second.size() < kMaxReportEntries) {
    it->second.push_back({header.seq, host_.simulator().now()});
  }

  if ((header.flags & kFlagLast) != 0) {
    std::vector<ReportEntry> arrivals = std::move(it->second);
    streams_.erase(it);
    open_order_.erase(
        std::find(open_order_.begin(), open_order_.end(), key));
    finish_stream(key, std::move(arrivals), header);
  }
}

void ProbeSink::finish_stream(const StreamKey& key,
                              std::vector<ReportEntry> arrivals,
                              const ProbeHeader& last) {
  ProbeReport report;
  report.header.kind = ProbeKind::kReport;
  report.header.session = last.session;
  report.header.stream = last.stream;
  report.header.sent_at = host_.simulator().now();
  report.arrivals = std::move(arrivals);

  const auto& [src, src_port, session, stream] = key;
  (void)session, (void)stream;
  if (host_.udp().send(src, src_port, sim::kProbePort,
                       encode_report(report))) {
    ++stats_.reports_sent;
  } else {
    ++stats_.report_send_failures;
  }
}

}  // namespace netqos::probe
