// Packet-train one-way-delay trend estimator (pathload-style SLoPS).
//
// Self-Loading Periodic Streams: send a train of probes paced at rate R.
// If R exceeds the path's available bandwidth the bottleneck queue grows
// for the duration of the train and one-way delays trend upward; if R
// fits, delays stay flat. That single bit (increasing / not increasing)
// drives a binary search on R between 0 and the bottleneck capacity;
// when the bracket narrows to the resolution, its midpoint is the
// estimate. The search then restarts so the estimate keeps tracking a
// changing path, at the cost of this being the most intrusive of the
// three methods — the shootout's intrusiveness column shows it.
//
// The trend bit uses pathload's pairwise comparison test: the fraction of
// consecutive delay increases across the train (PCT). Delays are computed
// against the sender's own send schedule, so no clock sync is needed —
// only delay *differences* matter.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "probe/estimator.h"

namespace netqos::probe {

struct PacketTrainConfig {
  /// Probes per train. Enough for a stable PCT verdict, small enough
  /// that one train fits a single arrival report.
  std::size_t train_length = 16;
  /// Wire size of each train probe.
  std::size_t frame_bytes = 800;
  /// Pause between trains (queue drain time between self-loading bursts).
  SimDuration train_interval = 250 * kMillisecond;
  /// Search stops when hi - lo falls below capacity * resolution.
  double resolution = 0.0625;  // 1/16 of C
  /// PCT at or above this reads as "one-way delays increasing".
  double pct_threshold = 0.6;
  /// Delay growth below this is jitter, not trend (one propagation
  /// quantum of slack).
  SimDuration trend_epsilon = 2 * kMicrosecond;
};

class PacketTrainEstimator final : public Estimator {
 public:
  PacketTrainEstimator(sim::Host& source, sim::Ipv4Address target,
                       ProbedPath path, PacketTrainConfig config = {});

  const PacketTrainConfig& config() const { return config_; }
  std::uint64_t trains_completed() const { return trains_completed_; }
  /// Current binary-search bracket in bits/s (testing visibility).
  BitsPerSecond search_lo() const { return lo_; }
  BitsPerSecond search_hi() const { return hi_; }

 protected:
  void on_start() override;
  void on_report(const ProbeReport& report, SimTime now) override;

 private:
  void send_train();
  void reset_search();

  PacketTrainConfig config_;
  std::uint32_t next_stream_ = 0;
  std::uint64_t trains_completed_ = 0;

  BitsPerSecond lo_ = 0;
  BitsPerSecond hi_ = 0;
  BitsPerSecond rate_ = 0;  ///< rate of the train in flight
  /// Send times of the in-flight trains, keyed by stream id (a report
  /// can race the next train's launch).
  std::map<std::uint32_t, std::vector<SimTime>> pending_;
};

}  // namespace netqos::probe
