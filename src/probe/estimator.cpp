#include "probe/estimator.h"

#include <algorithm>

namespace netqos::probe {
namespace {

/// Ethernet + IPv4 + UDP overhead around a probe payload.
constexpr std::size_t kFrameOverheadBytes = sim::kEthernetOverheadBytes +
                                            sim::kIpv4HeaderBytes +
                                            sim::kUdpHeaderBytes;

std::size_t frame_wire_size(std::size_t payload_bytes) {
  const std::size_t raw = kFrameOverheadBytes + payload_bytes;
  return std::max(raw, sim::kMinEthernetFrameBytes);
}

/// Session ids only need to be unique within one simulation; a process
/// counter is deterministic because construction order is.
std::uint32_t next_session() {
  static std::uint32_t counter = 0;
  return ++counter;
}

}  // namespace

const char* convergence_name(Convergence state) {
  switch (state) {
    case Convergence::kWarmup: return "warmup";
    case Convergence::kTracking: return "tracking";
    case Convergence::kConverged: return "converged";
  }
  return "unknown";
}

Estimator::Estimator(std::string name, sim::Host& source,
                     sim::Ipv4Address target, ProbedPath path)
    : name_(std::move(name)),
      source_(source),
      target_(target),
      path_(std::move(path)),
      session_(next_session()) {
  report_port_ = source_.udp().allocate_ephemeral_port();
  source_.udp().bind(report_port_, [this](const sim::Ipv4Packet& packet) {
    on_datagram(packet);
  });
}

Estimator::~Estimator() { source_.udp().unbind(report_port_); }

void Estimator::start() {
  if (running_) return;
  running_ = true;
  on_start();
}

void Estimator::stop() {
  if (!running_) return;
  running_ = false;
  on_stop();
}

std::optional<BytesPerSecond> Estimator::latest() const {
  if (estimates_.empty()) return std::nullopt;
  return estimates_.back().available;
}

std::optional<SimTime> Estimator::first_estimate_at() const {
  if (estimates_.empty()) return std::nullopt;
  return estimates_.front().time;
}

double Estimator::intrusiveness(SimDuration duration) const {
  if (duration <= 0 || path_.capacity == 0) return 0.0;
  const double total_bytes = static_cast<double>(stats_.probe_wire_bytes +
                                                 stats_.report_wire_bytes);
  const BytesPerSecond rate = total_bytes / to_seconds(duration);
  return static_cast<double>(to_bits_per_second(rate)) /
         static_cast<double>(path_.capacity);
}

bool Estimator::send_probe(std::uint32_t stream, std::uint32_t seq,
                           bool last, std::size_t frame_wire_bytes) {
  ProbeHeader header;
  header.kind = ProbeKind::kProbe;
  header.flags = last ? kFlagLast : 0;
  header.session = session_;
  header.stream = stream;
  header.seq = seq;
  header.sent_at = sim().now();

  const std::size_t base = kFrameOverheadBytes + kProbeHeaderBytes;
  const std::size_t padding =
      frame_wire_bytes > base ? frame_wire_bytes - base : 0;
  if (!source_.udp().send(target_, sim::kProbePort, report_port_,
                          encode_probe(header), padding)) {
    ++stats_.probe_send_failures;
    return false;
  }
  ++stats_.probes_sent;
  stats_.probe_wire_bytes += frame_wire_size(kProbeHeaderBytes + padding);
  if (probes_counter_ != nullptr) probes_counter_->inc();
  if (bytes_counter_ != nullptr) {
    bytes_counter_->inc(frame_wire_size(kProbeHeaderBytes + padding));
  }
  return true;
}

void Estimator::on_datagram(const sim::Ipv4Packet& packet) {
  ProbeReport report;
  try {
    report = decode_report(packet.udp.payload);
  } catch (const std::exception&) {
    ++stats_.reports_malformed;
    return;
  }
  if (report.header.session != session_) return;
  ++stats_.reports_received;
  stats_.report_wire_bytes += frame_wire_size(packet.udp.payload_size());
  if (reports_counter_ != nullptr) reports_counter_->inc();
  if (!running_) return;
  on_report(report, sim().now());
}

void Estimator::record_estimate(BytesPerSecond available) {
  estimates_.push_back({sim().now(), available});
  if (estimates_counter_ != nullptr) estimates_counter_->inc();
  if (available_gauge_ != nullptr) available_gauge_->set(available);

  if (estimates_.size() < 3) {
    convergence_ = Convergence::kTracking;
    return;
  }
  const auto last3 = std::minmax(
      {estimates_[estimates_.size() - 3].available,
       estimates_[estimates_.size() - 2].available, available});
  const BytesPerSecond band =
      kStabilityBand * to_bytes_per_second(path_.capacity);
  convergence_ = (last3.second - last3.first) <= band
                     ? Convergence::kConverged
                     : Convergence::kTracking;
}

void Estimator::attach_metrics(obs::MetricsRegistry& registry) {
  const obs::Labels labels = {{"estimator", name_},
                              {"path", path_.from + "->" + path_.to}};
  probes_counter_ =
      &registry.counter("netqos_probe_packets_total",
                        "Probe datagrams sent by active estimators", labels);
  bytes_counter_ = &registry.counter(
      "netqos_probe_wire_bytes_total",
      "Wire bytes injected by active estimators (probe frames)", labels);
  reports_counter_ =
      &registry.counter("netqos_probe_reports_total",
                        "Arrival reports received from probe sinks", labels);
  estimates_counter_ =
      &registry.counter("netqos_probe_estimates_total",
                        "Available-bandwidth estimates produced", labels);
  available_gauge_ = &registry.gauge(
      "netqos_probe_available_bytes_per_second",
      "Latest active available-bandwidth estimate", labels);
}

}  // namespace netqos::probe
