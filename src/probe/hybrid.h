// Hybrid active/passive cross-check (the probe subsystem's feed into the
// monitor pipeline).
//
// The passive monitor derives path availability from SNMP counters; an
// active Estimator measures the same quantity by probing. They disagree
// exactly when the counters miss something — cross traffic from hosts
// without agents, shared-segment contention the usage aggregation cannot
// attribute. This module sits in the monitor's sample stream, compares
// each passive path sample against the estimator's freshest estimate, and
// maintains an agreement score (EWMA of 1 - normalized disagreement).
// When a PredictiveDetector is wired in, that score is pushed as the
// path's measurement confidence, so distrusted passive figures must clear
// a proportionally higher forecast bar.
//
// Inert by design when no estimator is set: the conformance harness
// attaches it to the fig4/5/6 scenarios unset, proving the module's mere
// presence never perturbs the seed pipeline.
#pragma once

#include <cstdint>
#include <optional>

#include "monitor/module.h"
#include "monitor/qos.h"
#include "probe/estimator.h"

namespace netqos::probe {

struct HybridConfig {
  /// EWMA smoothing of the per-sample agreement score: confidence moves
  /// this fraction of the way to the newest observation.
  double smoothing = 0.3;
  /// Disagreement below this fraction of capacity reads as measurement
  /// noise and charges nothing (steady/staircase goldens stay at 1.0).
  double deadband = 0.08;
  /// Probe estimates older than this are ignored — better no cross-check
  /// than one against a stale view of the path.
  SimDuration max_estimate_age = 10 * kSecond;
};

/// Measurement module "probe.hybrid". Estimator and detector are
/// referenced, not owned, and both are optional; see file comment.
class HybridEstimator final : public mon::Module {
 public:
  explicit HybridEstimator(HybridConfig config = {});

  /// Wires the active estimator whose path samples are cross-checked.
  /// The estimator must outlive this module (or be cleared first).
  void set_estimator(Estimator& estimator) { estimator_ = &estimator; }
  void clear_estimator() { estimator_ = nullptr; }

  /// Wires the detector that receives the confidence signal.
  void set_detector(mon::PredictiveDetector& detector) {
    detector_ = &detector;
  }
  void clear_detector() { detector_ = nullptr; }

  const HybridConfig& config() const { return config_; }
  /// Current smoothed passive-measurement confidence, in (0, 1].
  double confidence() const { return confidence_; }
  /// Most recent raw disagreement as a fraction of path capacity.
  std::optional<double> last_disagreement() const {
    return last_disagreement_;
  }
  /// Path samples actually cross-checked (fresh estimate was available).
  std::uint64_t cross_checks() const { return cross_checks_; }

  std::size_t footprint_bytes() const override;
  std::vector<mon::ModuleNote> notes() const override;

 private:
  void on_path_sample(const mon::PathKey& key, SimTime time,
                      const mon::PathUsage& usage) override;

  HybridConfig config_;
  Estimator* estimator_ = nullptr;
  mon::PredictiveDetector* detector_ = nullptr;

  double confidence_ = 1.0;
  std::optional<double> last_disagreement_;
  std::uint64_t cross_checks_ = 0;
};

}  // namespace netqos::probe
