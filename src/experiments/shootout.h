// SNMP-vs-probe accuracy shootout.
//
// Runs every active estimator (and the passive monitor as its own
// contestant) against a matrix of load scenarios on the LIRTSS testbed,
// scoring each against ground truth read directly from the simulated
// links. Three metrics per (scenario, estimator) cell:
//
//   mean_abs_error        mean |estimate - truth| / C after warmup
//   intrusiveness         probe + report wire bits injected, as a
//                         fraction of what the bottleneck could carry
//                         (for the passive row: SNMP payload overhead)
//   convergence_seconds   first estimate within 0.1 C of truth
//
// The scenario matrix deliberately includes one case passive monitoring
// cannot win: "hidden-cross" grafts two agentless hosts onto the hub
// segment and drives seeded on/off bursts between them. Their traffic
// never appears in any polled counter the usage aggregation trusts, so
// the passive availability figure stays optimistic while probes feel the
// queueing directly — the quantitative argument for the hybrid
// confidence feed (src/probe/hybrid.h).
//
// Every cell is an isolated simulation run (fresh testbed, one estimator
// at most), so estimators never perturb each other and each row's
// poll_round_p95_seconds shows how much that estimator's traffic alone
// stretches the monitor's poll rounds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace netqos::exp {

struct ShootoutOptions {
  /// Simulated length of each run.
  SimDuration duration = 150 * kSecond;
  /// Estimates before this are cold-start noise and excluded from the
  /// accuracy mean (convergence is still judged from t=0).
  SimDuration warmup = 30 * kSecond;
  /// Ground-truth link sampling cadence.
  SimDuration truth_interval = 1 * kSecond;
  /// Scenario subset to run; empty = the full matrix.
  std::vector<std::string> scenarios;
  /// Estimator subset ("pair"/"train"/"periodic"/"passive");
  /// empty = every registered estimator plus the passive row.
  std::vector<std::string> estimators;
};

struct ShootoutRow {
  std::string scenario;
  std::string estimator;
  /// Scenario drives cross traffic no SNMP counter reports.
  bool hidden_cross = false;
  /// Bottleneck capacity of the probed path (bits/s).
  double capacity_bits_per_second = 0.0;
  double mean_abs_error = 0.0;
  double intrusiveness = 0.0;
  /// -1 when the estimator never got within 0.1 C of truth.
  double convergence_seconds = -1.0;
  std::uint64_t estimates = 0;
  std::uint64_t probe_wire_bytes = 0;
  double poll_round_p95_seconds = 0.0;
};

/// Scenario names in matrix order:
/// staircase, hub-contention, switch-isolation, hidden-cross.
const std::vector<std::string>& shootout_scenarios();

/// Spec-file text of the hidden-cross testbed variant (the §4.1 network
/// plus agentless hosts X1/X2 on the hub). Exposed for tests.
std::string hidden_cross_spec_text();

/// Runs the matrix; rows come out scenario-major, estimators in registry
/// order with "passive" last. Throws std::invalid_argument on unknown
/// scenario or estimator names.
std::vector<ShootoutRow> run_shootout(const ShootoutOptions& options = {});

/// One JSON object per row per line (bench/probe_shootout's artifact
/// format, consumed by scripts/perf_check.py).
void write_shootout_jsonl(const std::vector<ShootoutRow>& rows,
                          std::ostream& out);

}  // namespace netqos::exp
