// Reusable LIRTSS-testbed experiment fixture.
//
// Wires together everything §4.1 describes: the Figure 3 network built
// from the specification file, SNMP agents where declared, DISCARD
// services on every host, seeded background chatter, the network monitor
// on host L, and any number of UDP load generators. Benchmarks, examples,
// and integration tests all drive experiments through this fixture so the
// setup is identical everywhere.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "loadgen/generator.h"
#include "monitor/monitor.h"
#include "netsim/background.h"
#include "netsim/network.h"
#include "netsim/services.h"
#include "snmp/deploy.h"
#include "spec/testbed.h"

namespace netqos::exp {

struct TestbedOptions {
  /// Aggregate background payload rate across all host pairs. The default
  /// is tuned so the hub segment sees roughly the paper's ~10 KB/s
  /// ambient level.
  BytesPerSecond background_rate = 22'000.0;
  std::uint64_t background_seed = 0x1ea7f00d;
  /// Agent-side ifTable caching (false = serve live counters).
  bool agent_cache = true;
  /// Refresh-latency jitter of the agent cache (paper spike magnitude).
  SimDuration agent_refresh_jitter = 120 * kMillisecond;
  SimDuration poll_interval = 2 * kSecond;
  /// Retention policy for the monitor's history store (and its own
  /// StatsDb's per-interface store).
  hist::RetentionPolicy retention;
  /// Name of the host the monitor runs on (the paper uses L).
  std::string monitor_host = "L";
  /// Optional shared telemetry. When `metrics` is set, the simulator,
  /// every link, and the monitor export through it; when `spans` is set,
  /// poll rounds are traced. Both must outlive the testbed.
  obs::MetricsRegistry* metrics = nullptr;
  obs::SpanRecorder* spans = nullptr;
  /// Alternative network specification (spec-file text). Empty = the
  /// built-in §4.1 testbed. The shootout's hidden-cross scenario uses
  /// this to graft agentless hosts onto the hub segment.
  std::string spec_text;
};

class LirtssTestbed {
 public:
  explicit LirtssTestbed(TestbedOptions options = {});

  sim::Simulator& simulator() { return simulator_; }
  sim::Network& network() { return *network_; }
  const topo::NetworkTopology& topology() const {
    return specfile_.topology;
  }
  const spec::SpecFile& specfile() const { return specfile_; }
  mon::NetworkMonitor& monitor() { return *monitor_; }

  /// Host lookup; throws std::out_of_range on unknown names.
  sim::Host& host(const std::string& name);

  /// Adds (and starts) a UDP load from one host to another's DISCARD
  /// port, following the profile. Returns the generator for inspection.
  load::LoadGenerator& add_load(const std::string& from,
                                const std::string& to,
                                load::RateProfile profile);

  /// Registers a monitored path and returns *this for chaining.
  LirtssTestbed& watch(const std::string& from, const std::string& to);

  /// Starts monitor + background traffic (idempotent) and runs the
  /// simulation until the given absolute time.
  void run_until(SimTime until);

  std::vector<snmp::DeployedAgent>& agents() { return agents_; }
  sim::BackgroundTraffic& background() { return *background_; }

 private:
  spec::SpecFile specfile_;
  sim::Simulator simulator_;
  std::unique_ptr<sim::Network> network_;
  std::vector<snmp::DeployedAgent> agents_;
  std::vector<std::unique_ptr<sim::DiscardService>> discards_;
  std::unique_ptr<sim::BackgroundTraffic> background_;
  std::unique_ptr<mon::NetworkMonitor> monitor_;
  std::vector<std::unique_ptr<load::LoadGenerator>> generators_;
  bool started_ = false;
};

}  // namespace netqos::exp
