#include "experiments/conformance.h"

#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "experiments/lirtss.h"
#include "monitor/modules/registry.h"
#include "monitor/qos.h"
#include "monitor/report.h"
#include "probe/hybrid.h"

namespace netqos::exp {
namespace {

/// Renders a double so that any change in the underlying bits shows up
/// in the transcript (17 significant digits round-trip IEEE-754).
std::string exact(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void append_event(std::ostringstream& out, const mon::QosEvent& event) {
  out << "event t=" << exact(to_seconds(event.time)) << " "
      << (event.kind == mon::QosEvent::Kind::kViolation ? "VIOLATION"
                                                        : "recovery")
      << " " << event.path.first << "<->" << event.path.second
      << " available=" << exact(event.available)
      << " required=" << exact(event.required);
  if (event.kind == mon::QosEvent::Kind::kViolation) {
    out << " bottleneck=" << event.bottleneck_description;
  }
  out << "\n";
}

void append_predictive(std::ostringstream& out,
                       const mon::PredictiveEvent& event) {
  out << "event t=" << exact(to_seconds(event.time)) << " "
      << (event.kind == mon::PredictiveEvent::Kind::kEarlyWarning
              ? "EARLY-WARNING"
              : "all-clear")
      << " " << event.path.first << "<->" << event.path.second
      << " available=" << exact(event.available)
      << " forecast=" << exact(event.forecast)
      << " required=" << exact(event.required);
  if (event.predicted_in.has_value()) {
    out << " predicted_in=" << exact(to_seconds(*event.predicted_in));
  }
  out << "\n";
}

void append_window(std::ostringstream& out, const char* label,
                   const TimeSeries& series, SimTime begin, SimTime end,
                   BytesPerSecond generated, BytesPerSecond background) {
  const mon::LoadWindowStats row = mon::analyze_window(
      series, begin, end, generated, background, /*settle=*/seconds(6));
  out << "window " << label << " generated=" << exact(row.generated_kbps)
      << " measured=" << exact(row.measured_kbps)
      << " less_background=" << exact(row.less_background_kbps)
      << " pct_error=" << exact(row.percent_error)
      << " max_pct_error=" << exact(row.max_percent_error)
      << " p95_pct_error=" << exact(row.p95_percent_error)
      << " trend=" << exact(row.trend_kbps_per_s) << "\n";
}

void append_usage(std::ostringstream& out, const std::string& from,
                  const std::string& to, const mon::PathUsage& usage) {
  out << "usage " << from << "<->" << to
      << " complete=" << usage.complete << " link_down=" << usage.link_down
      << " available=" << exact(usage.available)
      << " used=" << exact(usage.used_at_bottleneck)
      << " bottleneck=" << usage.bottleneck
      << " freshness=" << mon::freshness_name(usage.freshness)
      << " max_age=" << exact(to_seconds(usage.max_sample_age)) << "\n";
  for (const mon::ConnectionUsage& conn : usage.connections) {
    out << "  connection " << conn.connection
        << " used=" << exact(conn.used)
        << " capacity=" << exact(conn.capacity)
        << " available=" << exact(conn.available)
        << " discard_rate=" << exact(conn.discard_rate)
        << " hub_rule=" << conn.hub_rule << " measured=" << conn.measured
        << " via_switch=" << conn.via_switch << "\n";
  }
}

void append_history(std::ostringstream& out, const mon::NetworkMonitor& mon,
                    const std::string& from, const std::string& to,
                    SimTime end) {
  const std::string key = hist::path_series_key(from, to, "avail");
  const hist::WindowSummary window = mon.history().query(key, 0, end);
  out << "history " << from << "<->" << to << " samples=" << window.samples
      << " min=" << exact(window.min) << " mean=" << exact(window.mean)
      << " max=" << exact(window.max) << " p95=" << exact(window.p95)
      << " resolution=" << exact(to_seconds(window.resolution))
      << " complete=" << window.complete << "\n";
}

void append_stats(std::ostringstream& out, const mon::NetworkMonitor& mon) {
  const mon::MonitorStats stats = mon.stats();
  out << "stats rounds_started=" << stats.rounds_started
      << " rounds_completed=" << stats.rounds_completed
      << " rounds_failed=" << stats.rounds_failed
      << " agent_polls=" << stats.agent_polls
      << " poll_failures=" << stats.agent_poll_failures
      << " resolve_failures=" << stats.resolve_failures
      << " polls_skipped=" << stats.polls_skipped
      << " quarantines=" << stats.quarantine_transitions << "\n";
  for (const auto& agent : mon.scheduler().agents()) {
    out << "agent " << agent.node << " health="
        << mon::agent_health_name(agent.health) << " polls=" << agent.polls
        << " failures=" << agent.failures
        << " quarantines=" << agent.quarantines << "\n";
  }
}

struct Scenario {
  LirtssTestbed bed;
  std::ostringstream out;
  bool observers = false;
  std::unique_ptr<mon::ViolationDetector> detector;
  std::unique_ptr<mon::PredictiveDetector> predictive;
  std::unique_ptr<mon::CsvSink> csv;

  /// Detectors register before the CSV sink, like netqosmon: per sample,
  /// event lines precede the sample's CSV row. The conformance diff pins
  /// that consumer ordering. With `observers` set, every registry module
  /// joins the pipeline too — they must not perturb the transcript.
  void arm(bool with_predictive) {
    detector = std::make_unique<mon::ViolationDetector>(bed.monitor());
    detector->add_event_callback(
        [this](const mon::QosEvent& event) { append_event(out, event); });
    if (with_predictive) {
      mon::PredictiveConfig pconfig;
      pconfig.horizon = 30 * kSecond;
      predictive = std::make_unique<mon::PredictiveDetector>(bed.monitor(),
                                                             pconfig);
      predictive->add_event_callback([this](
                                         const mon::PredictiveEvent& event) {
        append_predictive(out, event);
      });
    }
    csv = std::make_unique<mon::CsvSink>(bed.monitor(), out);
    if (observers) {
      for (const mon::ModuleSpec& spec : mon::available_modules()) {
        bed.monitor().add_module(mon::make_module(spec.name));
      }
      // The probe cross-check module rides along too: with no estimator
      // feeding it, it must stay inert even with the detector wired up.
      auto hybrid = std::make_unique<probe::HybridEstimator>();
      if (predictive != nullptr) hybrid->set_detector(*predictive);
      bed.monitor().add_module(std::move(hybrid));
    }
  }
};

std::string run_fig4(bool observers) {
  Scenario s;
  s.observers = observers;
  s.out << "scenario fig4 staircase L->N1, watch S1<->N1\n";
  const auto profile = load::RateProfile::staircase(
      kilobytes_per_second(100), seconds(120), kilobytes_per_second(100),
      seconds(60), /*steps=*/5, /*off_time=*/seconds(420));
  s.bed.add_load("L", "N1", profile);
  s.bed.watch("S1", "N1");
  s.arm(/*with_predictive=*/true);
  // 6.8 Mbps on a 10 Mbps hub segment: the 400 and 500 KB/s steps leave
  // less available than required, so the staircase produces violation,
  // recovery, and (on the descending forecast) early-warning events.
  s.detector->add_requirement("S1", "N1", kilobytes_per_second(850));
  s.predictive->add_requirement("S1", "N1", kilobytes_per_second(850));
  s.bed.run_until(seconds(480));
  s.bed.monitor().stop();

  const TimeSeries& measured = s.bed.monitor().used_series("S1", "N1");
  const BytesPerSecond background =
      mon::estimate_background(measured, seconds(430), seconds(480));
  s.out << "background=" << exact(background) << "\n";
  struct Window {
    const char* label;
    double generated_kb;
    double begin_s, end_s;
  };
  const Window windows[] = {
      {"100KB", 100, 0, 120},    {"200KB", 200, 120, 180},
      {"300KB", 300, 180, 240},  {"400KB", 400, 240, 300},
      {"500KB", 500, 300, 360},
  };
  for (const Window& w : windows) {
    append_window(s.out, w.label, measured, from_seconds(w.begin_s),
                  from_seconds(w.end_s),
                  kilobytes_per_second(w.generated_kb), background);
  }
  append_usage(s.out, "S1", "N1", s.bed.monitor().current_usage("S1", "N1"));
  append_history(s.out, s.bed.monitor(), "S1", "N1", seconds(480));
  append_stats(s.out, s.bed.monitor());
  return s.out.str();
}

std::string run_fig5(bool observers) {
  Scenario s;
  s.observers = observers;
  s.out << "scenario fig5 hub contention, watch S1<->N1 S1<->N2\n";
  s.bed.add_load("L", "N1",
                 load::RateProfile::pulse(seconds(20), seconds(60),
                                          kilobytes_per_second(200)));
  s.bed.add_load("L", "N2",
                 load::RateProfile::pulse(seconds(40), seconds(80),
                                          kilobytes_per_second(200)));
  s.bed.watch("S1", "N1").watch("S1", "N2");
  s.arm(/*with_predictive=*/false);
  // 7.2 Mbps: the 400 KB/s both-loads window leaves ~839 KB/s available
  // on the hub, below the 900 KB/s requirement — one violation/recovery
  // pair per path (both bottleneck on the shared hub domain).
  s.detector->add_requirement("S1", "N1", kilobytes_per_second(900));
  s.detector->add_requirement("S1", "N2", kilobytes_per_second(900));
  s.bed.run_until(seconds(100));
  s.bed.monitor().stop();

  const TimeSeries& n1 = s.bed.monitor().used_series("S1", "N1");
  const BytesPerSecond background =
      mon::estimate_background(n1, seconds(0), seconds(18));
  s.out << "background=" << exact(background) << "\n";
  append_window(s.out, "only-N1", n1, seconds(20), seconds(40),
                kilobytes_per_second(200), background);
  append_window(s.out, "both", n1, seconds(40), seconds(60),
                kilobytes_per_second(400), background);
  append_window(s.out, "only-N2", n1, seconds(60), seconds(80),
                kilobytes_per_second(200), background);
  append_usage(s.out, "S1", "N1", s.bed.monitor().current_usage("S1", "N1"));
  append_usage(s.out, "S1", "N2", s.bed.monitor().current_usage("S1", "N2"));
  append_history(s.out, s.bed.monitor(), "S1", "N1", seconds(100));
  append_history(s.out, s.bed.monitor(), "S1", "N2", seconds(100));
  append_stats(s.out, s.bed.monitor());
  return s.out.str();
}

std::string run_fig6(bool observers) {
  Scenario s;
  s.observers = observers;
  s.out << "scenario fig6 switch isolation, watch S1<->S2 S1<->S3\n";
  s.bed.add_load("L", "S2",
                 load::RateProfile::pulse(seconds(20), seconds(60),
                                          kilobytes_per_second(2000)));
  s.bed.add_load("L", "S3",
                 load::RateProfile::pulse(seconds(40), seconds(80),
                                          kilobytes_per_second(2000)));
  s.bed.add_load("L", "S1",
                 load::RateProfile::pulse(seconds(100), seconds(120),
                                          kilobytes_per_second(2000)));
  s.bed.watch("S1", "S2").watch("S1", "S3");
  s.arm(/*with_predictive=*/false);
  // 85 Mbps on 100 Mbps switch links: a 2000 KB/s load leaves ~10.4 MB/s,
  // below the 10.625 MB/s requirement, so each pulse that crosses a
  // path's ports produces a violation/recovery pair — and the isolation
  // property shows as S1<->S3 staying quiet during the S2-only window.
  s.detector->add_requirement("S1", "S2", kilobytes_per_second(10'625));
  s.detector->add_requirement("S1", "S3", kilobytes_per_second(10'625));
  s.bed.run_until(seconds(140));
  s.bed.monitor().stop();

  const TimeSeries& s2 = s.bed.monitor().used_series("S1", "S2");
  const TimeSeries& s3 = s.bed.monitor().used_series("S1", "S3");
  const BytesPerSecond background =
      mon::estimate_background(s2, seconds(0), seconds(18));
  s.out << "background=" << exact(background) << "\n";
  append_window(s.out, "S2-on-S1S2", s2, seconds(20), seconds(40),
                kilobytes_per_second(2000), background);
  append_window(s.out, "S2-not-S1S3", s3, seconds(20), seconds(40), 0.0,
                background);
  append_window(s.out, "S3-on-S1S3", s3, seconds(60), seconds(80),
                kilobytes_per_second(2000), background);
  append_window(s.out, "S3-not-S1S2", s2, seconds(60), seconds(80), 0.0,
                background);
  append_window(s.out, "S1-on-S1S2", s2, seconds(100), seconds(120),
                kilobytes_per_second(2000), background);
  append_window(s.out, "S1-on-S1S3", s3, seconds(100), seconds(120),
                kilobytes_per_second(2000), background);
  append_usage(s.out, "S1", "S2", s.bed.monitor().current_usage("S1", "S2"));
  append_usage(s.out, "S1", "S3", s.bed.monitor().current_usage("S1", "S3"));
  append_history(s.out, s.bed.monitor(), "S1", "S2", seconds(140));
  append_history(s.out, s.bed.monitor(), "S1", "S3", seconds(140));
  append_stats(s.out, s.bed.monitor());
  return s.out.str();
}

}  // namespace

std::vector<std::string> conformance_scenarios() {
  return {"fig4", "fig5", "fig6"};
}

std::string run_conformance_scenario(const std::string& name,
                                     bool enable_observer_modules) {
  if (name == "fig4") return run_fig4(enable_observer_modules);
  if (name == "fig5") return run_fig5(enable_observer_modules);
  if (name == "fig6") return run_fig6(enable_observer_modules);
  throw std::invalid_argument("unknown conformance scenario: " + name);
}

}  // namespace netqos::exp
