#include "experiments/lirtss.h"

#include <stdexcept>

namespace netqos::exp {

LirtssTestbed::LirtssTestbed(TestbedOptions options)
    : specfile_(options.spec_text.empty()
                    ? spec::lirtss_testbed()
                    : spec::parse_spec(options.spec_text)) {
  network_ = sim::build_network(simulator_, specfile_.topology);

  snmp::DeployOptions deploy;
  deploy.iftable.cached = options.agent_cache;
  deploy.iftable.refresh_jitter = options.agent_refresh_jitter;
  // Agents notify the monitoring station of carrier transitions.
  deploy.trap_sink = sim::Ipv4Address::parse("10.0.0.1");
  agents_ = snmp::deploy_agents(simulator_, *network_, specfile_.topology,
                                deploy);

  std::vector<sim::Host*> hosts;
  for (const auto& node : specfile_.topology.nodes()) {
    if (auto* h = network_->find_host(node.name)) {
      hosts.push_back(h);
      discards_.push_back(std::make_unique<sim::DiscardService>(*h));
    }
  }

  sim::BackgroundConfig bg;
  bg.mean_rate = options.background_rate;
  bg.seed = options.background_seed;
  background_ =
      std::make_unique<sim::BackgroundTraffic>(simulator_, hosts, bg);

  if (options.metrics != nullptr) {
    simulator_.attach_metrics(*options.metrics);
    network_->attach_metrics(*options.metrics);
  }

  mon::MonitorConfig mc;
  mc.poll_interval = options.poll_interval;
  mc.retention = options.retention;
  mc.metrics = options.metrics;
  mc.spans = options.spans;
  monitor_ = std::make_unique<mon::NetworkMonitor>(
      simulator_, specfile_.topology, host(options.monitor_host), mc);
}

sim::Host& LirtssTestbed::host(const std::string& name) {
  sim::Host* h = network_->find_host(name);
  if (h == nullptr) {
    throw std::out_of_range("no such host: " + name);
  }
  return *h;
}

load::LoadGenerator& LirtssTestbed::add_load(const std::string& from,
                                             const std::string& to,
                                             load::RateProfile profile) {
  generators_.push_back(std::make_unique<load::LoadGenerator>(
      simulator_, host(from), host(to).ip(), std::move(profile)));
  generators_.back()->start();
  return *generators_.back();
}

LirtssTestbed& LirtssTestbed::watch(const std::string& from,
                                    const std::string& to) {
  monitor_->add_path(from, to);
  return *this;
}

void LirtssTestbed::run_until(SimTime until) {
  if (!started_) {
    started_ = true;
    background_->start();
    monitor_->start();
  }
  simulator_.run_until(until);
}

}  // namespace netqos::exp
