#include "experiments/shootout.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "experiments/lirtss.h"
#include "loadgen/profile.h"
#include "obs/metrics.h"
#include "probe/registry.h"
#include "probe/sink.h"
#include "topology/model.h"
#include "topology/path.h"

namespace netqos::exp {

namespace {

/// Every scenario probes (and passively watches) the same pair: S1 on
/// the switch to N1 on the hub, bottlenecked by the 10 Mbps hub segment.
constexpr const char* kProbeFrom = "S1";
constexpr const char* kProbeTo = "N1";

/// Estimates within this fraction of capacity of truth count as
/// converged for the convergence_seconds column.
constexpr double kConvergenceBand = 0.1;

struct TruthPoint {
  SimTime time = 0;
  double available = 0.0;  ///< bytes/s
};

/// Samples ground truth along the probed path straight from the links:
/// available_i = C_i - (carried rate - the estimator's own share), truth
/// is the min over the path's connections. The estimator's probe and
/// report bytes are subtracted because truth means "what the path offers
/// everyone else" — an estimator must not count its own load as cross
/// traffic.
class TruthSampler {
 public:
  TruthSampler(LirtssTestbed& testbed, topo::Path path,
               SimDuration interval, const probe::Estimator* estimator)
      : testbed_(testbed),
        path_(std::move(path)),
        interval_(interval),
        estimator_(estimator) {
    for (const std::size_t index : path_) {
      capacities_.push_back(to_bytes_per_second(connection_speed(
          testbed_.topology(), testbed_.topology().connections()[index])));
      prev_octets_.push_back(
          testbed_.network().links()[index]->octets_carried());
    }
  }

  void start() { schedule(); }

  const std::vector<TruthPoint>& series() const { return series_; }

  /// Last truth sample at or before `t` (bytes/s); the first sample when
  /// `t` precedes the series.
  double at(SimTime t) const {
    double value = series_.empty() ? 0.0 : series_.front().available;
    for (const TruthPoint& point : series_) {
      if (point.time > t) break;
      value = point.available;
    }
    return value;
  }

 private:
  void schedule() {
    testbed_.simulator().schedule_after(interval_, [this] {
      sample();
      schedule();
    });
  }

  void sample() {
    const SimTime now = testbed_.simulator().now();
    const double dt = to_seconds(interval_);
    double probe_rate = 0.0;
    if (estimator_ != nullptr) {
      const auto& stats = estimator_->stats();
      const std::uint64_t wire =
          stats.probe_wire_bytes + stats.report_wire_bytes;
      probe_rate =
          static_cast<double>(wire - prev_probe_bytes_) / dt;
      prev_probe_bytes_ = wire;
    }
    double truth = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < path_.size(); ++i) {
      const std::uint64_t octets =
          testbed_.network().links()[path_[i]]->octets_carried();
      const double used =
          static_cast<double>(octets - prev_octets_[i]) / dt;
      prev_octets_[i] = octets;
      const double cross = std::max(0.0, used - probe_rate);
      truth = std::min(truth,
                       std::max(0.0, capacities_[i] - cross));
    }
    series_.push_back({now, truth});
  }

  LirtssTestbed& testbed_;
  topo::Path path_;
  SimDuration interval_;
  const probe::Estimator* estimator_;
  std::vector<double> capacities_;
  std::vector<std::uint64_t> prev_octets_;
  std::uint64_t prev_probe_bytes_ = 0;
  std::vector<TruthPoint> series_;
};

struct Scenario {
  std::string name;
  bool hidden_cross = false;
  std::string spec_text;  ///< empty = the stock §4.1 testbed
  void (*add_loads)(LirtssTestbed&, SimTime end);
};

void staircase_loads(LirtssTestbed& testbed, SimTime end) {
  // Fig-4-shaped ramp on the probed path itself: fully SNMP-visible,
  // the case passive monitoring is built for.
  testbed.add_load(kProbeFrom, kProbeTo,
                   load::RateProfile::staircase(
                       100'000.0, 30 * kSecond, 150'000.0, 20 * kSecond, 4,
                       end - 10 * kSecond));
}

void hub_contention_loads(LirtssTestbed& testbed, SimTime end) {
  // Fig-5-shaped pulses from the monitoring station to both hub hosts:
  // the N2 stream never touches the probed pair's endpoints but floods
  // the shared hub segment, so it contends all the same.
  (void)end;
  testbed.add_load("L", "N1",
                   load::RateProfile::pulse(20 * kSecond, 70 * kSecond,
                                            300'000.0));
  testbed.add_load("L", "N2",
                   load::RateProfile::pulse(50 * kSecond, 110 * kSecond,
                                            300'000.0));
}

void switch_isolation_loads(LirtssTestbed& testbed, SimTime end) {
  // Heavy switched traffic between two 100 Mbps hosts: isolated from the
  // hub by the switch, so truth on the probed path barely moves. The
  // control case — every estimator should hold a flat, accurate line.
  testbed.add_load("S4", "S5",
                   load::RateProfile::pulse(10 * kSecond, end - 10 * kSecond,
                                            6'000'000.0));
}

void hidden_cross_loads(LirtssTestbed& testbed, SimTime end) {
  // Seeded on/off bursts between the agentless hub hosts: invisible to
  // every polled counter, fully felt by probes (and by N1's users).
  testbed.add_load("X1", "X2",
                   load::RateProfile::random_bursts(
                       10 * kSecond, end - 10 * kSecond, 500'000.0,
                       5 * kSecond, 4 * kSecond, 0x5eedc805));
}

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"staircase", false, "", &staircase_loads},
      {"hub-contention", false, "", &hub_contention_loads},
      {"switch-isolation", false, "", &switch_isolation_loads},
      {"hidden-cross", true, hidden_cross_spec_text(), &hidden_cross_loads},
  };
  return kScenarios;
}

/// Accuracy + convergence over an estimate series vs the truth series.
struct Score {
  double mean_abs_error = 0.0;
  double convergence_seconds = -1.0;
  std::uint64_t scored = 0;
};

template <typename Series, typename TimeOf, typename ValueOf>
Score score_series(const Series& series, TimeOf time_of, ValueOf value_of,
                   const TruthSampler& truth, double capacity_bytes,
                   SimDuration warmup) {
  Score score;
  double error_sum = 0.0;
  std::uint64_t errors = 0;
  for (const auto& sample : series) {
    const SimTime t = time_of(sample);
    const double estimate = value_of(sample);
    const double error =
        std::abs(estimate - truth.at(t)) / capacity_bytes;
    if (score.convergence_seconds < 0.0 && error <= kConvergenceBand) {
      score.convergence_seconds = to_seconds(t);
    }
    if (t >= warmup) {
      error_sum += error;
      ++errors;
    }
  }
  if (errors > 0) score.mean_abs_error = error_sum / errors;
  score.scored = errors;
  return score;
}

ShootoutRow run_cell(const Scenario& scenario,
                     const std::string& estimator_name,
                     const ShootoutOptions& options) {
  obs::MetricsRegistry metrics;
  TestbedOptions testbed_options;
  testbed_options.metrics = &metrics;
  testbed_options.spec_text = scenario.spec_text;
  LirtssTestbed testbed(testbed_options);
  testbed.watch(kProbeFrom, kProbeTo);

  const auto topo_path = topo::traverse_recursive(testbed.topology(),
                                                  kProbeFrom, kProbeTo);
  if (!topo_path.has_value()) {
    throw std::logic_error("shootout: probed hosts are not connected");
  }
  double capacity_bits = std::numeric_limits<double>::infinity();
  for (const std::size_t index : *topo_path) {
    capacity_bits = std::min(
        capacity_bits,
        static_cast<double>(connection_speed(
            testbed.topology(), testbed.topology().connections()[index])));
  }
  const double capacity_bytes =
      to_bytes_per_second(static_cast<BitsPerSecond>(capacity_bits));

  const bool passive = estimator_name == "passive";
  std::unique_ptr<probe::ProbeSink> sink;
  std::unique_ptr<probe::Estimator> estimator;
  if (!passive) {
    sink = std::make_unique<probe::ProbeSink>(testbed.host(kProbeTo));
    estimator = probe::make_estimator(
        estimator_name, testbed.host(kProbeFrom),
        testbed.host(kProbeTo).ip(),
        {kProbeFrom, kProbeTo,
         static_cast<BitsPerSecond>(capacity_bits)});
    estimator->attach_metrics(metrics);
  }

  // The passive contestant's estimate series: the monitor's own per-round
  // path availability samples.
  std::vector<TruthPoint> passive_series;
  testbed.monitor().add_sample_callback(
      [&passive_series](const mon::PathKey& key, SimTime time,
                        const mon::PathUsage& usage) {
        const bool match = (key.first == kProbeFrom &&
                            key.second == kProbeTo) ||
                           (key.first == kProbeTo &&
                            key.second == kProbeFrom);
        if (match) passive_series.push_back({time, usage.available});
      });

  TruthSampler truth(testbed, *topo_path, options.truth_interval,
                     estimator.get());
  scenario.add_loads(testbed, options.duration);
  truth.start();
  if (estimator != nullptr) estimator->start();
  testbed.run_until(options.duration);
  if (estimator != nullptr) estimator->stop();

  ShootoutRow row;
  row.scenario = scenario.name;
  row.estimator = estimator_name;
  row.hidden_cross = scenario.hidden_cross;
  row.capacity_bits_per_second = capacity_bits;

  Score score;
  if (passive) {
    score = score_series(
        passive_series, [](const TruthPoint& p) { return p.time; },
        [](const TruthPoint& p) { return p.available; }, truth,
        capacity_bytes, options.warmup);
    row.estimates = passive_series.size();
    const auto client = testbed.monitor().client_stats();
    const std::uint64_t payload =
        client.payload_bytes_sent + client.payload_bytes_received;
    row.probe_wire_bytes = payload;
    row.intrusiveness =
        to_bits_per_second(static_cast<double>(payload) /
                           to_seconds(options.duration)) /
        capacity_bits;
  } else {
    score = score_series(
        estimator->estimates(),
        [](const probe::EstimateSample& s) { return s.time; },
        [](const probe::EstimateSample& s) { return s.available; }, truth,
        capacity_bytes, options.warmup);
    row.estimates = estimator->estimates().size();
    row.probe_wire_bytes = estimator->stats().probe_wire_bytes +
                           estimator->stats().report_wire_bytes;
    row.intrusiveness = estimator->intrusiveness(options.duration);
  }
  row.mean_abs_error = score.mean_abs_error;
  row.convergence_seconds = score.convergence_seconds;

  const auto* rounds = metrics.find_histogram(
      "netqos_poll_round_duration_seconds", {{"station", "L"}});
  if (rounds != nullptr) {
    row.poll_round_p95_seconds = rounds->data().percentile(0.95);
  }
  return row;
}

}  // namespace

const std::vector<std::string>& shootout_scenarios() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const Scenario& scenario : scenarios()) {
      names.push_back(scenario.name);
    }
    return names;
  }();
  return kNames;
}

std::string hidden_cross_spec_text() {
  // The stock testbed with two agentless hosts grafted onto the hub:
  // their traffic shares the 10 Mbps segment with N1/N2 but, with no
  // SNMP daemon anywhere near it, never reaches a polled counter.
  std::string text = spec::lirtss_spec_text();
  const std::string hub_decl = "interface h1; interface h2; interface h3;";
  auto pos = text.find(hub_decl);
  if (pos == std::string::npos) {
    throw std::logic_error("hidden-cross: hub declaration not found");
  }
  text.replace(pos, hub_decl.size(),
               "interface h1; interface h2; interface h3;\n"
               "    interface h4; interface h5;");
  const std::string hosts =
      "  host X1 { os \"Linux\"; interface e0 { speed 10Mbps; "
      "address 10.0.0.31; } }\n"
      "  host X2 { os \"Linux\"; interface e0 { speed 10Mbps; "
      "address 10.0.0.32; } }\n";
  pos = text.find("  switch sw0 {");
  if (pos == std::string::npos) {
    throw std::logic_error("hidden-cross: switch declaration not found");
  }
  text.insert(pos, hosts);
  const std::string connects = "  connect N2.e0   <-> hub0.h3;";
  pos = text.find(connects);
  if (pos == std::string::npos) {
    throw std::logic_error("hidden-cross: hub connections not found");
  }
  text.insert(pos + connects.size(),
              "\n  connect X1.e0   <-> hub0.h4;"
              "\n  connect X2.e0   <-> hub0.h5;");
  return text;
}

std::vector<ShootoutRow> run_shootout(const ShootoutOptions& options) {
  std::vector<std::string> estimator_names = options.estimators;
  if (estimator_names.empty()) {
    estimator_names = probe::available_estimators();
    estimator_names.push_back("passive");
  }
  for (const std::string& name : estimator_names) {
    if (name != "passive" && !probe::is_estimator_name(name)) {
      throw std::invalid_argument("unknown estimator: " + name);
    }
  }
  std::vector<const Scenario*> selected;
  if (options.scenarios.empty()) {
    for (const Scenario& scenario : scenarios()) {
      selected.push_back(&scenario);
    }
  } else {
    for (const std::string& name : options.scenarios) {
      const Scenario* found = nullptr;
      for (const Scenario& scenario : scenarios()) {
        if (scenario.name == name) found = &scenario;
      }
      if (found == nullptr) {
        throw std::invalid_argument("unknown scenario: " + name);
      }
      selected.push_back(found);
    }
  }

  std::vector<ShootoutRow> rows;
  for (const Scenario* scenario : selected) {
    for (const std::string& name : estimator_names) {
      rows.push_back(run_cell(*scenario, name, options));
    }
  }
  return rows;
}

void write_shootout_jsonl(const std::vector<ShootoutRow>& rows,
                          std::ostream& out) {
  char number[64];
  const auto put = [&](double value) {
    std::snprintf(number, sizeof(number), "%.10g", value);
    out << number;
  };
  for (const ShootoutRow& row : rows) {
    out << "{\"scenario\":\"" << row.scenario << "\",\"estimator\":\""
        << row.estimator << "\",\"hidden_cross\":"
        << (row.hidden_cross ? "true" : "false")
        << ",\"capacity_bits_per_second\":";
    put(row.capacity_bits_per_second);
    out << ",\"mean_abs_error\":";
    put(row.mean_abs_error);
    out << ",\"intrusiveness\":";
    put(row.intrusiveness);
    out << ",\"convergence_seconds\":";
    put(row.convergence_seconds);
    out << ",\"estimates\":" << row.estimates
        << ",\"probe_wire_bytes\":" << row.probe_wire_bytes
        << ",\"poll_round_p95_seconds\":";
    put(row.poll_round_p95_seconds);
    out << "}\n";
  }
}

}  // namespace netqos::exp
