// Conformance scenarios: the paper's fig4/5/6 experiments rendered as
// one deterministic text transcript each.
//
// The monitor pipeline (poll -> counter math -> path bandwidth ->
// violation/predictive detection -> reports) is only allowed to change
// shape — e.g. the CoMo-style module refactor — when a harness proves the
// result is *observationally equivalent*: same stdout summary, same CSV
// rows, same report structs, bit for bit. These runners produce that
// observable surface as a single string; tests/monitor/
// test_module_conformance.cpp diffs it against goldens committed from the
// seed pipeline.
//
// Everything here is deterministic: simulated time, seeded background
// chatter, seeded agent-cache jitter. Doubles are rendered with %.17g so
// any change in arithmetic — not just in formatting — breaks the diff.
#pragma once

#include <string>
#include <vector>

namespace netqos::exp {

/// Scenario names the harness covers, in run order.
std::vector<std::string> conformance_scenarios();

/// Runs one scenario ("fig4", "fig5", "fig6") end to end and returns the
/// full transcript: scenario header, per-sample CSV rows (the CsvSink
/// surface), QoS violation / recovery / early-warning events, window
/// report structs (analyze_window), final PathUsage and MonitorStats
/// dumps. Throws std::invalid_argument on an unknown name.
///
/// `enable_observer_modules` additionally registers every shipped
/// observer module (EWMA anomaly, top talkers) before the run; observers
/// must not perturb the paper pipeline, so the transcript is required to
/// be identical either way. The flag is ignored (treated as false) while
/// the pipeline predates the module framework.
std::string run_conformance_scenario(const std::string& name,
                                     bool enable_observer_modules = false);

}  // namespace netqos::exp
