#include "netsim/switch.h"

namespace netqos::sim {

void Switch::enable_management(Ipv4Address ip, MacAddress mac,
                               const ArpResolver& arp) {
  management_mac_ = mac;
  management_ = std::make_unique<UdpStack>(
      sim_, ip, mac, arp,
      [this](Frame frame) { return send_from_management(frame); });
}

void Switch::on_frame(Nic& ingress, const Frame& frame) {
  fdb_[frame->src] = &ingress;  // learn

  if (management_ != nullptr && frame->dst == management_mac_) {
    ++stats_.frames_to_management;
    management_->deliver(frame->ip);
    return;
  }

  if (frame->dst.is_broadcast()) {
    ++stats_.frames_flooded;
    flood(&ingress, frame);
    return;
  }

  auto it = fdb_.find(frame->dst);
  if (it == fdb_.end()) {
    ++stats_.frames_flooded;
    flood(&ingress, frame);
    return;
  }
  if (it->second == &ingress) {
    // Destination lives behind the same port (e.g. two hosts on one hub):
    // the hub already repeated it; forwarding back would duplicate.
    ++stats_.frames_dropped_same_port;
    return;
  }
  ++stats_.frames_forwarded;
  it->second->transmit(frame);
}

Nic* Switch::learned_port(MacAddress mac) {
  auto it = fdb_.find(mac);
  return it == fdb_.end() ? nullptr : it->second;
}

bool Switch::send_from_management(Frame frame) {
  auto it = fdb_.find(frame->dst);
  if (it != fdb_.end()) return it->second->transmit(frame);
  flood(nullptr, frame);
  return true;
}

void Switch::flood(const Nic* except, const Frame& frame) {
  for (auto& nic : nics_) {
    if (nic.get() != except) nic->transmit(frame);
  }
}

}  // namespace netqos::sim
