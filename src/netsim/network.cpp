#include "netsim/network.h"

#include <stdexcept>

#include "netsim/nic.h"

namespace netqos::sim {

template <typename T>
T& Network::add_node(std::unique_ptr<T> node) {
  if (by_name_.contains(node->name())) {
    throw std::invalid_argument("duplicate node name: " + node->name());
  }
  T& ref = *node;
  by_name_.emplace(node->name(), node.get());
  nodes_.push_back(std::move(node));
  return ref;
}

Host& Network::add_host(const std::string& name) {
  return add_node(std::make_unique<Host>(sim_, name, *this));
}

Switch& Network::add_switch(const std::string& name) {
  return add_node(std::make_unique<Switch>(sim_, name));
}

Hub& Network::add_hub(const std::string& name) {
  return add_node(std::make_unique<Hub>(sim_, name));
}

Nic& Network::add_host_interface(Host& host, const std::string& if_name,
                                 BitsPerSecond speed, Ipv4Address ip) {
  const MacAddress mac = allocate_mac();
  Nic& nic = host.add_host_interface(if_name, speed, mac, ip);
  register_address(ip, mac);
  return nic;
}

Nic& Network::add_port(Switch& sw, const std::string& if_name,
                       BitsPerSecond speed) {
  return sw.add_port(if_name, speed, allocate_mac());
}

Nic& Network::add_port(Hub& hub, const std::string& if_name,
                       BitsPerSecond speed) {
  return hub.add_port(if_name, speed, allocate_mac());
}

void Network::enable_switch_management(Switch& sw, Ipv4Address ip) {
  const MacAddress mac = allocate_mac();
  sw.enable_management(ip, mac, *this);
  register_address(ip, mac);
}

Link& Network::connect(Node& a, const std::string& if_a, Node& b,
                       const std::string& if_b, SimDuration propagation) {
  Nic* na = a.find_interface(if_a);
  Nic* nb = b.find_interface(if_b);
  if (na == nullptr || nb == nullptr) {
    throw std::invalid_argument("connect: unknown interface " + a.name() +
                                "." + if_a + " or " + b.name() + "." + if_b);
  }
  links_.push_back(std::make_unique<Link>(sim_, *na, *nb, propagation));
  return *links_.back();
}

void Network::attach_metrics(obs::MetricsRegistry& registry) {
  for (const auto& link_ptr : links_) {
    Link& link = *link_ptr;
    const std::string label = link.end_a().owner().name() + "." +
                              link.end_a().name() + "<->" +
                              link.end_b().owner().name() + "." +
                              link.end_b().name();
    obs::Counter& frames = registry.counter(
        "netqos_link_frames_total", "Frames carried by a simulated link",
        {{"link", label}});
    obs::Counter& bytes = registry.counter(
        "netqos_link_bytes_total",
        "Octets carried by a simulated link (wire size incl. framing)",
        {{"link", label}});
    obs::Counter& drop_down = registry.counter(
        "netqos_link_dropped_frames_total",
        "Frames dropped by a simulated link, by reason",
        {{"link", label}, {"reason", "down"}});
    obs::Counter& drop_loss = registry.counter(
        "netqos_link_dropped_frames_total",
        "Frames dropped by a simulated link, by reason",
        {{"link", label}, {"reason", "loss"}});
    registry.add_collector(
        [&link, &frames, &bytes, &drop_down, &drop_loss] {
          frames.set_total(link.frames_carried());
          bytes.set_total(link.octets_carried());
          drop_down.set_total(link.frames_dropped_down());
          drop_loss.set_total(link.frames_dropped_loss());
        });
  }
}

Node* Network::find_node(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

Host* Network::find_host(const std::string& name) {
  return dynamic_cast<Host*>(find_node(name));
}

Switch* Network::find_switch(const std::string& name) {
  return dynamic_cast<Switch*>(find_node(name));
}

std::optional<MacAddress> Network::resolve(Ipv4Address ip) const {
  auto it = arp_.find(ip);
  if (it == arp_.end()) return std::nullopt;
  return it->second;
}

void Network::register_address(Ipv4Address ip, MacAddress mac) {
  if (ip.is_unspecified()) {
    throw std::invalid_argument("cannot register unspecified address");
  }
  auto [it, inserted] = arp_.emplace(ip, mac);
  if (!inserted && it->second != mac) {
    throw std::invalid_argument("IPv4 address " + ip.to_string() +
                                " already assigned to another interface");
  }
}

std::unique_ptr<Network> build_network(Simulator& sim,
                                       const topo::NetworkTopology& topo) {
  const auto problems = topo.validate();
  if (!problems.empty()) {
    std::string all = "invalid topology:";
    for (const auto& p : problems) all += "\n  - " + p;
    throw std::invalid_argument(all);
  }

  auto net = std::make_unique<Network>(sim);
  for (const auto& spec : topo.nodes()) {
    switch (spec.kind) {
      case topo::NodeKind::kHost: {
        Host& host = net->add_host(spec.name);
        for (const auto& itf : spec.interfaces) {
          if (itf.ipv4.empty()) {
            throw std::invalid_argument("host interface " + spec.name + "." +
                                        itf.local_name + " has no IPv4");
          }
          net->add_host_interface(host, itf.local_name,
                                  spec.interface_speed(itf),
                                  Ipv4Address::parse(itf.ipv4));
        }
        break;
      }
      case topo::NodeKind::kSwitch: {
        Switch& sw = net->add_switch(spec.name);
        for (const auto& itf : spec.interfaces) {
          net->add_port(sw, itf.local_name, spec.interface_speed(itf));
        }
        if (spec.snmp_enabled) {
          if (spec.management_ipv4.empty()) {
            throw std::invalid_argument("SNMP-enabled switch '" + spec.name +
                                        "' needs a management IPv4");
          }
          net->enable_switch_management(
              sw, Ipv4Address::parse(spec.management_ipv4));
        }
        break;
      }
      case topo::NodeKind::kHub: {
        Hub& hub = net->add_hub(spec.name);
        for (const auto& itf : spec.interfaces) {
          net->add_port(hub, itf.local_name, spec.interface_speed(itf));
        }
        break;
      }
    }
  }

  for (const auto& conn : topo.connections()) {
    Node* a = net->find_node(conn.a.node);
    Node* b = net->find_node(conn.b.node);
    // validate() guaranteed both exist.
    net->connect(*a, conn.a.interface, *b, conn.b.interface);
  }
  return net;
}

}  // namespace netqos::sim
