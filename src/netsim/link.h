// Point-to-point cable between two NICs.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "netsim/packet.h"

namespace netqos::sim {

class Nic;
class Simulator;

/// A full-duplex cable. The sending NIC handles serialization delay; the
/// link adds propagation delay and delivers to the far end.
///
/// Failure injection: a link can be administratively downed (frames are
/// dropped and state observers — e.g. SNMP agents emitting linkDown
/// traps — are notified) and can drop frames randomly with a seeded loss
/// probability (exercises SNMP client retries and monitor robustness).
class Link {
 public:
  /// Called on carrier transitions with the new state.
  using StateObserver = std::function<void(bool up)>;

  /// Attaches both NICs; they must not already be connected.
  Link(Simulator& sim, Nic& a, Nic& b,
       SimDuration propagation_delay = 500 * kNanosecond);

  Nic& peer_of(const Nic& nic);

  /// Called by a NIC when a frame has finished serializing.
  void carry(const Nic& from, Frame frame);

  SimDuration propagation_delay() const { return propagation_delay_; }

  /// Carrier control. Transitions notify observers.
  void set_up(bool up);
  bool up() const { return up_; }
  void add_state_observer(StateObserver observer) {
    observers_.push_back(std::move(observer));
  }

  /// Random frame loss in [0, 1]; deterministic under `seed`.
  void set_loss(double probability, std::uint64_t seed = 0x10553);
  double loss() const { return loss_probability_; }

  /// Tap invoked for every frame the link actually carries (after the
  /// carrier/loss checks). Used by FrameTracer; one tap per link.
  using Tap = std::function<void(const Nic& from, const Frame& frame)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  std::uint64_t frames_dropped_down() const { return dropped_down_; }
  std::uint64_t frames_dropped_loss() const { return dropped_loss_; }

  /// Traffic actually carried (frames that survived the carrier/loss
  /// checks); octets count the full frame size.
  std::uint64_t frames_carried() const { return frames_carried_; }
  std::uint64_t octets_carried() const { return octets_carried_; }

  /// The two endpoints, in construction order. Used to label exported
  /// per-link metrics.
  const Nic& end_a() const { return a_; }
  const Nic& end_b() const { return b_; }

 private:
  Simulator& sim_;
  Nic& a_;
  Nic& b_;
  SimDuration propagation_delay_;

  bool up_ = true;
  double loss_probability_ = 0.0;
  Xoshiro256 loss_rng_{0x10553};
  std::vector<StateObserver> observers_;
  Tap tap_;
  std::uint64_t dropped_down_ = 0;
  std::uint64_t dropped_loss_ = 0;
  std::uint64_t frames_carried_ = 0;
  std::uint64_t octets_carried_ = 0;
};

}  // namespace netqos::sim
