#include "netsim/background.h"

#include <stdexcept>

#include "netsim/packet.h"

namespace netqos::sim {

BackgroundTraffic::BackgroundTraffic(Simulator& sim, std::vector<Host*> hosts,
                                     BackgroundConfig config)
    : sim_(sim),
      hosts_(std::move(hosts)),
      config_(config),
      rng_(config.seed) {
  if (hosts_.size() < 2) {
    throw std::invalid_argument("background traffic needs >= 2 hosts");
  }
  if (config_.min_payload > config_.max_payload || config_.max_payload == 0) {
    throw std::invalid_argument("bad background payload bounds");
  }
}

void BackgroundTraffic::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void BackgroundTraffic::schedule_next() {
  // Mean payload size determines the datagram rate for the target
  // byte rate; exponential gaps make the process Poisson-like.
  const double mean_payload =
      0.5 * static_cast<double>(config_.min_payload + config_.max_payload);
  const double rate = config_.mean_rate / mean_payload;  // datagrams/sec
  if (rate <= 0) return;
  const double gap_seconds = rng_.exponential(1.0 / rate);
  sim_.schedule_after(from_seconds(gap_seconds), [this] {
    if (!running_) return;
    send_one();
    schedule_next();
  });
}

void BackgroundTraffic::send_one() {
  const std::size_t from = rng_.uniform_int(0, hosts_.size() - 1);
  std::size_t to = rng_.uniform_int(0, hosts_.size() - 2);
  if (to >= from) ++to;  // uniform over pairs with to != from

  const std::size_t payload =
      rng_.uniform_int(config_.min_payload, config_.max_payload);
  Host& src = *hosts_[from];
  Host& dst = *hosts_[to];
  const std::uint16_t sport = src.udp().allocate_ephemeral_port();
  if (src.udp().send(dst.ip(), kDiscardPort, sport, {}, payload)) {
    ++datagrams_sent_;
    payload_bytes_sent_ += payload;
  }
}

}  // namespace netqos::sim
