#include "netsim/simulator.h"

#include <stdexcept>
#include <unordered_map>

namespace netqos::sim {

EventId Simulator::schedule_at(SimTime when, Callback fn) {
  if (when < now_) {
    throw std::invalid_argument("cannot schedule event in the past");
  }
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Simulator::cancel(EventId id) { return callbacks_.erase(id) > 0; }

void Simulator::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    const Event ev = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.when;
    ++executed_;
    fn();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.when;
    ++executed_;
    fn();
  }
}

}  // namespace netqos::sim
