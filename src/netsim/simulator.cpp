#include "netsim/simulator.h"

#include <stdexcept>
#include <unordered_map>

namespace netqos::sim {

EventId Simulator::schedule_at(SimTime when, Callback fn) {
  if (when < now_) {
    throw std::invalid_argument("cannot schedule event in the past");
  }
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Simulator::cancel(EventId id) { return callbacks_.erase(id) > 0; }

void Simulator::attach_metrics(obs::MetricsRegistry& registry) {
  // Pull-style: nothing touches the event loop's hot path. The counters
  // are snapshotted from the simulator's own tallies at render time.
  obs::Counter& events = registry.counter(
      "netqos_sim_events_total", "Discrete events dispatched by the simulator");
  obs::Gauge& depth = registry.gauge(
      "netqos_sim_queue_depth",
      "Pending events in the scheduler queue (including tombstones)");
  obs::Gauge& clock = registry.gauge("netqos_sim_time_seconds",
                                     "Current virtual time of the simulation");
  registry.add_collector([this, &events, &depth, &clock] {
    events.set_total(executed_);
    depth.set(static_cast<double>(queue_.size()));
    clock.set(to_seconds(now_));
  });
}

void Simulator::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    const Event ev = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.when;
    ++executed_;
    fn();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.when;
    ++executed_;
    fn();
  }
}

}  // namespace netqos::sim
