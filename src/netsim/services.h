// Standard inetd-style UDP services the paper's testbed relies on.
//
// The load generator sends to the DISCARD port (UDP/9, RFC 863); the
// latency extension (paper §5 future work) uses ECHO (UDP/7, RFC 862).
#pragma once

#include <cstdint>

#include "netsim/host.h"

namespace netqos::sim {

/// Sinks every datagram on UDP/9, counting what it absorbed.
class DiscardService {
 public:
  explicit DiscardService(Host& host);

  std::uint64_t datagrams() const { return datagrams_; }
  std::uint64_t payload_bytes() const { return payload_bytes_; }

 private:
  std::uint64_t datagrams_ = 0;
  std::uint64_t payload_bytes_ = 0;
};

/// Echoes every datagram on UDP/7 back to its sender.
class EchoService {
 public:
  explicit EchoService(Host& host);

  std::uint64_t datagrams() const { return datagrams_; }

 private:
  std::uint64_t datagrams_ = 0;
};

}  // namespace netqos::sim
