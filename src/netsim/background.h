// Background LAN chatter.
//
// The paper's Table 2 subtracts a measured background load (~10.8 KB/s in
// their lab) from every reading. This generator reproduces that ambient
// traffic: random small UDP datagrams between random host pairs, with
// exponential inter-arrival times, all drawn from a seeded PRNG so runs
// are reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "netsim/host.h"
#include "netsim/simulator.h"

namespace netqos::sim {

struct BackgroundConfig {
  BytesPerSecond mean_rate = 10'000.0;  ///< aggregate payload bytes/sec
  std::size_t min_payload = 40;
  std::size_t max_payload = 400;
  std::uint64_t seed = 0x6e657471;
};

/// Sends ambient traffic between the given hosts forever (until the
/// simulator stops running its events). Datagrams go to the DISCARD port,
/// so destination hosts should run DiscardService (otherwise the bytes
/// still cross the wire and are counted — only the drop metric differs).
class BackgroundTraffic {
 public:
  BackgroundTraffic(Simulator& sim, std::vector<Host*> hosts,
                    BackgroundConfig config);

  void start();
  void stop() { running_ = false; }

  std::uint64_t datagrams_sent() const { return datagrams_sent_; }
  std::uint64_t payload_bytes_sent() const { return payload_bytes_sent_; }

 private:
  void schedule_next();
  void send_one();

  Simulator& sim_;
  std::vector<Host*> hosts_;
  BackgroundConfig config_;
  Xoshiro256 rng_;
  bool running_ = false;
  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t payload_bytes_sent_ = 0;
};

}  // namespace netqos::sim
