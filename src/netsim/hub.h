// Shared-medium repeater hub.
//
// A hub retransmits every frame out of every port except the one it
// arrived on (paper §3.3: "all packets that go through the hub will be
// sent to every host connected to the hub"). It learns nothing and has no
// management plane — the paper's testbed hub ran no SNMP daemon and is
// observed indirectly via the switch port facing it.
#pragma once

#include "netsim/node.h"

namespace netqos::sim {

class Hub : public Node {
 public:
  Hub(Simulator& sim, std::string name) : Node(sim, std::move(name)) {}

  /// Adds a repeater port. `mac` is only an identity for diagnostics; hub
  /// ports are promiscuous and never filter.
  Nic& add_port(std::string name, BitsPerSecond speed, MacAddress mac) {
    return add_interface(std::move(name), speed, mac, /*promiscuous=*/true);
  }

  void on_frame(Nic& ingress, const Frame& frame) override {
    for (auto& nic : nics_) {
      if (nic.get() != &ingress) nic->transmit(frame);
    }
  }
};

}  // namespace netqos::sim
