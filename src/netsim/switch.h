// MAC-learning Ethernet switch with an optional management plane.
//
// Forwarding: unicast to a learned MAC goes out that port only (paper
// §3.3: "a switch does not forward packets for one host to other hosts");
// unknown destinations and broadcasts flood every port except ingress.
// With management enabled the switch answers UDP (SNMP) traffic addressed
// to its management IP, like the paper's SNMP-capable testbed switch.
#pragma once

#include <memory>
#include <unordered_map>

#include "netsim/node.h"
#include "netsim/udp.h"

namespace netqos::sim {

struct SwitchStats {
  std::uint64_t frames_forwarded = 0;
  std::uint64_t frames_flooded = 0;
  std::uint64_t frames_to_management = 0;
  std::uint64_t frames_dropped_same_port = 0;
};

class Switch : public Node {
 public:
  Switch(Simulator& sim, std::string name) : Node(sim, std::move(name)) {}

  /// Adds a switched port (promiscuous: counts all traffic it carries).
  Nic& add_port(std::string name, BitsPerSecond speed, MacAddress mac) {
    return add_interface(std::move(name), speed, mac, /*promiscuous=*/true);
  }

  /// Gives the switch an in-band management IP/MAC so an SNMP agent can
  /// run on it. Frames to `mac` terminate here instead of forwarding.
  void enable_management(Ipv4Address ip, MacAddress mac,
                         const ArpResolver& arp);

  /// Management UDP stack, or nullptr when management is not enabled.
  UdpStack* management() { return management_.get(); }

  void on_frame(Nic& ingress, const Frame& frame) override;

  /// The port a MAC was learned on, or nullptr.
  Nic* learned_port(MacAddress mac);
  const std::unordered_map<MacAddress, Nic*>& fdb() const { return fdb_; }

  const SwitchStats& stats() const { return stats_; }

 private:
  /// Sends a management-plane frame using the forwarding table.
  bool send_from_management(Frame frame);
  void flood(const Nic* except, const Frame& frame);

  std::unordered_map<MacAddress, Nic*> fdb_;  ///< forwarding database
  std::unique_ptr<UdpStack> management_;
  MacAddress management_mac_;
  SwitchStats stats_;
};

}  // namespace netqos::sim
