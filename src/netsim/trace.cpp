#include "netsim/trace.h"

#include <sstream>

#include "netsim/nic.h"
#include "netsim/node.h"
#include "netsim/simulator.h"

namespace netqos::sim {

void FrameTracer::attach(Link& link, std::string label) {
  link.set_tap([this, label = std::move(label)](const Nic& from,
                                                const Frame& frame) {
    record(label, from, frame);
  });
}

FrameTracer::Filter FrameTracer::port_filter(std::uint16_t port) {
  return [port](const TraceRecord& r) {
    return r.src_port == port || r.dst_port == port;
  };
}

void FrameTracer::record(const std::string& label, const Nic& from,
                         const Frame& frame) {
  ++total_seen_;
  TraceRecord rec;
  rec.time = sim_.now();
  rec.link = label;
  rec.from = from.owner().name() + "." + from.name();
  rec.src_mac = frame->src;
  rec.dst_mac = frame->dst;
  rec.src_ip = frame->ip.src;
  rec.dst_ip = frame->ip.dst;
  rec.src_port = frame->ip.udp.src_port;
  rec.dst_port = frame->ip.udp.dst_port;
  rec.wire_bytes = frame->wire_size();

  if (filter_ && !filter_(rec)) return;
  if (records_.size() >= capacity_) {
    records_.pop_front();
    ++evicted_;
  }
  records_.push_back(std::move(rec));
}

std::string FrameTracer::format(const TraceRecord& record) {
  std::ostringstream out;
  out << format_time(record.time) << " [" << record.link << "] "
      << record.from << ": " << record.src_ip.to_string() << ":"
      << record.src_port << " > " << record.dst_ip.to_string() << ":"
      << record.dst_port << " (" << record.wire_bytes << "B)";
  return out.str();
}

}  // namespace netqos::sim
