#include "netsim/udp.h"

#include "common/log.h"
#include "netsim/simulator.h"

namespace netqos::sim {

UdpStack::UdpStack(Simulator& sim, Ipv4Address ip, MacAddress mac,
                   const ArpResolver& arp, FrameSender sender)
    : sim_(sim), ip_(ip), mac_(mac), arp_(arp), sender_(std::move(sender)) {}

bool UdpStack::bind(std::uint16_t port, Handler handler) {
  return handlers_.emplace(port, std::move(handler)).second;
}

void UdpStack::unbind(std::uint16_t port) { handlers_.erase(port); }

std::uint16_t UdpStack::allocate_ephemeral_port() {
  for (int attempts = 0; attempts < 16384; ++attempts) {
    const std::uint16_t port = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ == 65535
                          ? static_cast<std::uint16_t>(49152)
                          : static_cast<std::uint16_t>(next_ephemeral_ + 1);
    if (!bound(port)) return port;
  }
  return 0;  // every ephemeral port bound — caller treats 0 as failure
}

bool UdpStack::send(Ipv4Address dst, std::uint16_t dst_port,
                    std::uint16_t src_port, Bytes payload,
                    std::size_t padding) {
  if (dst == ip_) {
    // Loopback: deliver locally without generating wire traffic, after a
    // small in-kernel scheduling delay.
    Ipv4Packet packet;
    packet.src = ip_;
    packet.dst = dst;
    packet.udp.src_port = src_port;
    packet.udp.dst_port = dst_port;
    packet.udp.payload = std::move(payload);
    packet.udp.padding = padding;
    ++stats_.datagrams_sent;
    sim_.schedule_after(10 * kMicrosecond,
                        [this, packet = std::move(packet)]() mutable {
                          deliver(packet);
                          sim_.buffer_pool().release(
                              std::move(packet.udp.payload));
                        });
    return true;
  }
  const auto dst_mac = arp_.resolve(dst);
  if (!dst_mac) {
    ++stats_.send_failures;
    NETQOS_DEBUG() << "UDP send to unresolvable " << dst.to_string();
    return false;
  }
  EthernetFrame frame;
  frame.src = mac_;
  frame.dst = *dst_mac;
  frame.ip.src = ip_;
  frame.ip.dst = dst;
  frame.ip.udp.src_port = src_port;
  frame.ip.udp.dst_port = dst_port;
  frame.ip.udp.payload = std::move(payload);
  frame.ip.udp.padding = padding;
  if (!sender_(make_pooled_frame(std::move(frame), &sim_.buffer_pool()))) {
    ++stats_.send_failures;
    return false;
  }
  ++stats_.datagrams_sent;
  return true;
}

void UdpStack::deliver(const Ipv4Packet& packet) {
  auto it = handlers_.find(packet.udp.dst_port);
  if (it == handlers_.end()) {
    ++stats_.no_handler_drops;
    return;
  }
  ++stats_.datagrams_received;
  it->second(packet);
}

}  // namespace netqos::sim
