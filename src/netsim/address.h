// Layer-2 and layer-3 addresses for the simulated LAN.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace netqos::sim {

/// 48-bit Ethernet MAC address.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  /// Locally administered unicast MAC derived from a small integer id.
  static constexpr MacAddress from_id(std::uint32_t id) {
    return MacAddress({0x02, 0x00,
                       static_cast<std::uint8_t>(id >> 24),
                       static_cast<std::uint8_t>(id >> 16),
                       static_cast<std::uint8_t>(id >> 8),
                       static_cast<std::uint8_t>(id)});
  }

  static constexpr MacAddress broadcast() {
    return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }

  constexpr bool is_broadcast() const { return *this == broadcast(); }

  const std::array<std::uint8_t, 6>& octets() const { return octets_; }
  std::string to_string() const;

  constexpr auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// IPv4 address as a host-order 32-bit value.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  /// Parses "a.b.c.d"; throws std::invalid_argument on malformed input.
  static Ipv4Address parse(const std::string& dotted);

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool is_unspecified() const { return value_ == 0; }
  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace netqos::sim

template <>
struct std::hash<netqos::sim::MacAddress> {
  std::size_t operator()(const netqos::sim::MacAddress& m) const noexcept {
    std::size_t h = 0;
    for (auto o : m.octets()) h = h * 131 + o;
    return h;
  }
};

template <>
struct std::hash<netqos::sim::Ipv4Address> {
  std::size_t operator()(const netqos::sim::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
