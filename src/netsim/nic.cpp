#include "netsim/nic.h"

#include "common/log.h"
#include "netsim/link.h"
#include "netsim/node.h"
#include "netsim/simulator.h"

namespace netqos::sim {

Nic::Nic(Simulator& sim, Node& owner, std::string name, BitsPerSecond speed,
         MacAddress mac, bool promiscuous)
    : sim_(sim),
      owner_(owner),
      name_(std::move(name)),
      speed_(speed),
      mac_(mac),
      promiscuous_(promiscuous) {}

bool Nic::transmit(Frame frame) {
  if (link_ == nullptr || tx_queue_.size() >= queue_limit_) {
    ++counters_.if_out_discards;
    return false;
  }
  tx_queue_.push_back(std::move(frame));
  if (!transmitting_) start_transmission();
  return true;
}

void Nic::start_transmission() {
  if (tx_queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  Frame frame = tx_queue_.front();
  tx_queue_.pop_front();
  const std::size_t octets = frame->wire_size();
  const SimDuration serialize = transmission_delay(octets, speed_);
  sim_.schedule_after(serialize, [this, frame = std::move(frame), octets] {
    counters_.count_out(octets);
    total_out_octets_ += octets;
    if (link_ != nullptr) link_->carry(*this, frame);
    start_transmission();  // drain the queue
  });
}

void Nic::deliver(Frame frame) {
  const std::size_t octets = frame->wire_size();
  const bool addressed_to_us =
      promiscuous_ || frame->dst == mac_ || frame->dst.is_broadcast();
  if (!addressed_to_us) {
    // Non-promiscuous hardware filter: the OS (and so the SNMP counter)
    // never sees this frame. This models hub-attached hosts whose own
    // counters under-report segment usage, forcing the paper's summation.
    filtered_octets_ += octets;
    return;
  }
  counters_.count_in(octets);
  total_in_octets_ += octets;
  owner_.on_frame(*this, frame);
}

}  // namespace netqos::sim
