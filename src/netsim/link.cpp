#include "netsim/link.h"

#include <stdexcept>

#include "netsim/nic.h"
#include "netsim/simulator.h"

namespace netqos::sim {

Link::Link(Simulator& sim, Nic& a, Nic& b, SimDuration propagation_delay)
    : sim_(sim), a_(a), b_(b), propagation_delay_(propagation_delay) {
  if (a_.connected() || b_.connected()) {
    throw std::invalid_argument(
        "NIC already connected (connections must be 1-to-1)");
  }
  a_.attach(this);
  b_.attach(this);
}

Nic& Link::peer_of(const Nic& nic) {
  if (&nic == &a_) return b_;
  if (&nic == &b_) return a_;
  throw std::invalid_argument("NIC not on this link");
}

void Link::carry(const Nic& from, Frame frame) {
  if (!up_) {
    ++dropped_down_;
    return;
  }
  if (loss_probability_ > 0.0 && loss_rng_.uniform() < loss_probability_) {
    ++dropped_loss_;
    return;
  }
  ++frames_carried_;
  octets_carried_ += frame->wire_size();
  if (tap_) tap_(from, frame);
  Nic& to = peer_of(from);
  sim_.schedule_after(propagation_delay_,
                      [&to, frame = std::move(frame)] { to.deliver(frame); });
}

void Link::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  for (const auto& observer : observers_) observer(up_);
}

void Link::set_loss(double probability, std::uint64_t seed) {
  loss_probability_ = probability;
  loss_rng_ = Xoshiro256(seed);
}

}  // namespace netqos::sim
