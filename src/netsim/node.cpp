#include "netsim/node.h"

#include <stdexcept>

#include "netsim/simulator.h"

namespace netqos::sim {

Node::Node(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

Nic& Node::add_interface(std::string name, BitsPerSecond speed,
                         MacAddress mac, bool promiscuous) {
  if (find_interface(name) != nullptr) {
    throw std::invalid_argument("duplicate interface '" + name + "' on " +
                                name_);
  }
  nics_.push_back(
      std::make_unique<Nic>(sim_, *this, std::move(name), speed, mac,
                            promiscuous));
  return *nics_.back();
}

Nic* Node::find_interface(const std::string& name) {
  for (auto& nic : nics_) {
    if (nic->name() == name) return nic.get();
  }
  return nullptr;
}

const Nic* Node::find_interface(const std::string& name) const {
  for (const auto& nic : nics_) {
    if (nic->name() == name) return nic.get();
  }
  return nullptr;
}

}  // namespace netqos::sim
