#include "netsim/services.h"

#include <stdexcept>

namespace netqos::sim {

DiscardService::DiscardService(Host& host) {
  const bool ok =
      host.udp().bind(kDiscardPort, [this](const Ipv4Packet& packet) {
        ++datagrams_;
        payload_bytes_ += packet.udp.payload_size();
      });
  if (!ok) {
    throw std::logic_error("DISCARD port already bound on " + host.name());
  }
}

EchoService::EchoService(Host& host) {
  const bool ok = host.udp().bind(kEchoPort, [this, &host](
                                                 const Ipv4Packet& packet) {
    ++datagrams_;
    host.udp().send(packet.src, packet.udp.src_port, kEchoPort,
                    packet.udp.payload, packet.udp.padding);
  });
  if (!ok) {
    throw std::logic_error("ECHO port already bound on " + host.name());
  }
}

}  // namespace netqos::sim
