// Network interface with MIB-II style counters and a serializing
// transmit queue.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "common/sim_time.h"
#include "common/units.h"
#include "netsim/packet.h"

namespace netqos::sim {

class Link;
class Node;
class Simulator;

/// The subset of MIB-II ifEntry the paper polls (Table 1), maintained with
/// genuine Counter32 semantics: 32-bit values that wrap modulo 2^32.
struct InterfaceCounters {
  std::uint32_t if_in_octets = 0;
  std::uint32_t if_in_ucast_pkts = 0;
  std::uint32_t if_out_octets = 0;
  std::uint32_t if_out_ucast_pkts = 0;
  std::uint32_t if_in_discards = 0;
  std::uint32_t if_out_discards = 0;

  void count_in(std::size_t octets) {
    if_in_octets += static_cast<std::uint32_t>(octets);  // wraps by design
    ++if_in_ucast_pkts;
  }
  void count_out(std::size_t octets) {
    if_out_octets += static_cast<std::uint32_t>(octets);
    ++if_out_ucast_pkts;
  }
};

/// One interface (paper: "Network Interface"). A NIC serializes frames at
/// its configured speed onto the attached link, and counts traffic. Host
/// NICs are non-promiscuous: frames for other MACs (as repeated by a hub)
/// are dropped *uncounted*, which is exactly why the paper's hub rule must
/// sum traffic across all hub members. Switch/hub ports are promiscuous.
class Nic {
 public:
  Nic(Simulator& sim, Node& owner, std::string name, BitsPerSecond speed,
      MacAddress mac, bool promiscuous);

  const std::string& name() const { return name_; }
  BitsPerSecond speed() const { return speed_; }
  MacAddress mac() const { return mac_; }
  Node& owner() { return owner_; }
  const Node& owner() const { return owner_; }
  bool promiscuous() const { return promiscuous_; }

  void attach(Link* link) { link_ = link; }
  Link* link() { return link_; }
  const Link* link() const { return link_; }
  bool connected() const { return link_ != nullptr; }

  /// Queues a frame for transmission. Returns false (and counts an
  /// ifOutDiscard) if the NIC is unconnected or its queue is full.
  bool transmit(Frame frame);

  /// Called by the link when a frame arrives after propagation.
  void deliver(Frame frame);

  const InterfaceCounters& counters() const { return counters_; }
  /// Octets observed on the wire but filtered by MAC (diagnostic only —
  /// a real non-promiscuous NIC never surfaces these to the OS).
  std::uint64_t filtered_octets() const { return filtered_octets_; }
  /// Total octets ever sent, unwrapped (diagnostic only).
  std::uint64_t total_out_octets() const { return total_out_octets_; }
  std::uint64_t total_in_octets() const { return total_in_octets_; }

  /// Transmit queue limit in frames (drop-tail beyond it).
  void set_queue_limit(std::size_t frames) { queue_limit_ = frames; }

 private:
  void start_transmission();

  Simulator& sim_;
  Node& owner_;
  std::string name_;
  BitsPerSecond speed_;
  MacAddress mac_;
  bool promiscuous_;
  Link* link_ = nullptr;

  std::deque<Frame> tx_queue_;
  bool transmitting_ = false;
  std::size_t queue_limit_ = 1024;

  InterfaceCounters counters_;
  std::uint64_t filtered_octets_ = 0;
  std::uint64_t total_out_octets_ = 0;
  std::uint64_t total_in_octets_ = 0;
};

}  // namespace netqos::sim
