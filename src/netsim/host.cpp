#include "netsim/host.h"

#include <stdexcept>

namespace netqos::sim {

Host::Host(Simulator& sim, std::string name, const ArpResolver& arp)
    : Node(sim, std::move(name)), arp_(arp) {}

Nic& Host::add_host_interface(std::string name, BitsPerSecond speed,
                              MacAddress mac, Ipv4Address ip) {
  Nic& nic =
      add_interface(std::move(name), speed, mac, /*promiscuous=*/false);
  nic_ips_[&nic] = ip;
  if (udp_ == nullptr) {
    primary_ip_ = ip;
    // Egress policy: a LAN host sends on its first interface; multi-homed
    // hosts in the paper's model (Fig. 1, node B) still have one stack.
    udp_ = std::make_unique<UdpStack>(
        sim_, ip, mac, arp_,
        [&nic](Frame frame) { return nic.transmit(frame); });
  }
  return nic;
}

UdpStack& Host::udp() {
  if (udp_ == nullptr) {
    throw std::logic_error("host '" + name_ + "' has no interfaces");
  }
  return *udp_;
}

const UdpStack& Host::udp() const {
  return const_cast<Host*>(this)->udp();
}

void Host::on_frame(Nic& ingress, const Frame& frame) {
  // Accept packets addressed to any local IP arriving on any interface
  // (weak host model).
  const auto it = nic_ips_.find(&ingress);
  const bool local =
      (it != nic_ips_.end() && frame->ip.dst == it->second) ||
      frame->ip.dst == primary_ip_;
  if (!local || frame->ip.protocol != 17 || udp_ == nullptr) return;
  udp_->deliver(frame->ip);
}

Ipv4Address Host::interface_ip(const Nic& nic) const {
  auto it = nic_ips_.find(&nic);
  return it == nic_ips_.end() ? Ipv4Address() : it->second;
}

}  // namespace netqos::sim
