#include "netsim/address.h"

#include <cstdio>
#include <stdexcept>

namespace netqos::sim {

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

Ipv4Address Ipv4Address::parse(const std::string& dotted) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char trailing = 0;
  const int matched = std::sscanf(dotted.c_str(), "%u.%u.%u.%u%c", &a, &b, &c,
                                  &d, &trailing);
  if (matched != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("malformed IPv4 address: '" + dotted + "'");
  }
  return Ipv4Address(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c),
                     static_cast<std::uint8_t>(d));
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

}  // namespace netqos::sim
