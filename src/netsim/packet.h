// Frame/packet model for the simulated LAN.
//
// Frames carry real header sizes (Ethernet 14+4, IPv4 20, UDP 8) because
// the paper's ~2% measurement overhead comes from exactly these headers
// being counted by MIB-II octet counters while the load generator reports
// payload bytes. Bulk payloads are represented by a `padding` byte count
// so a 1472-byte datagram does not allocate 1472 bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/buffer_pool.h"
#include "common/byte_buffer.h"
#include "netsim/address.h"

namespace netqos::sim {

inline constexpr std::size_t kEthernetHeaderBytes = 14;
inline constexpr std::size_t kEthernetFcsBytes = 4;
inline constexpr std::size_t kEthernetOverheadBytes =
    kEthernetHeaderBytes + kEthernetFcsBytes;
inline constexpr std::size_t kMinEthernetFrameBytes = 64;
inline constexpr std::size_t kIpv4HeaderBytes = 20;
inline constexpr std::size_t kUdpHeaderBytes = 8;
/// Maximum IP datagram on Ethernet (the paper's "1,500-byte MTU size").
inline constexpr std::size_t kIpMtuBytes = 1500;
/// Maximum UDP payload per datagram at that MTU.
inline constexpr std::size_t kMaxUdpPayloadBytes =
    kIpMtuBytes - kIpv4HeaderBytes - kUdpHeaderBytes;  // 1472

/// Well-known UDP ports used in the paper and its extensions.
inline constexpr std::uint16_t kEchoPort = 7;     // RFC 862
inline constexpr std::uint16_t kDiscardPort = 9;  // RFC 863 (paper §4.2)
inline constexpr std::uint16_t kSnmpPort = 161;      // RFC 1157
inline constexpr std::uint16_t kSnmpTrapPort = 162;  // RFC 1157
/// Monitor query service (src/query): the wire API over the history
/// store. Unprivileged and project-assigned, like CoMo's query port.
inline constexpr std::uint16_t kQueryPort = 9161;
/// Active-probing sink (src/probe): destination hosts timestamp probe
/// packets here and echo arrival reports back to the sending estimator.
inline constexpr std::uint16_t kProbePort = 9162;

struct UdpDatagram {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Bytes payload;            ///< materialized bytes (e.g. SNMP messages)
  std::size_t padding = 0;  ///< synthetic bulk bytes, never materialized

  std::size_t payload_size() const { return payload.size() + padding; }
  std::size_t wire_size() const { return kUdpHeaderBytes + payload_size(); }
};

struct Ipv4Packet {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint8_t protocol = 17;  ///< UDP
  UdpDatagram udp;

  std::size_t wire_size() const { return kIpv4HeaderBytes + udp.wire_size(); }
};

struct EthernetFrame {
  MacAddress src;
  MacAddress dst;
  Ipv4Packet ip;

  /// Octets on the wire as counted by ifInOctets/ifOutOctets ("including
  /// framing characters", RFC 1213), with the 64-byte minimum applied.
  std::size_t wire_size() const {
    const std::size_t raw = kEthernetOverheadBytes + ip.wire_size();
    return raw < kMinEthernetFrameBytes ? kMinEthernetFrameBytes : raw;
  }
};

/// Frames are immutable once sent; hub broadcast shares one instance.
using Frame = std::shared_ptr<const EthernetFrame>;

inline Frame make_frame(EthernetFrame frame) {
  return std::make_shared<const EthernetFrame>(std::move(frame));
}

/// Like make_frame, but the payload buffer returns to `pool` when the
/// last reference drops — closing the recycle loop for poll traffic.
/// `pool` must outlive every frame (the simulator owns both).
inline Frame make_pooled_frame(EthernetFrame frame, BufferPool* pool) {
  auto* raw = new EthernetFrame(std::move(frame));
  return Frame(raw, [pool](EthernetFrame* f) {
    pool->release(std::move(f->ip.udp.payload));
    delete f;
  });
}

}  // namespace netqos::sim
