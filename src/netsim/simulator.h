// Discrete-event simulation core.
//
// A single-threaded event loop over a priority queue keyed by
// (time, sequence). The sequence number makes same-time events fire in
// scheduling order, which keeps every run deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/buffer_pool.h"
#include "common/sim_time.h"
#include "obs/metrics.h"

namespace netqos::sim {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now). Returns an id
  /// usable with cancel().
  EventId schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` to run `delay` after now.
  EventId schedule_after(SimDuration delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already ran or was
  /// cancelled. O(1): the event is tombstoned, not removed.
  bool cancel(EventId id);

  /// Runs events until the queue is empty or the time limit is passed.
  /// Events scheduled exactly at `until` DO run; the clock never exceeds
  /// `until`.
  void run_until(SimTime until);

  /// Runs until the queue drains completely.
  void run_all();

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }
  /// Number of events currently pending (including tombstoned ones).
  std::size_t pending() const { return queue_.size(); }

  /// Exports the event loop's health through `registry` with a pull-style
  /// collector (no per-event cost): events dispatched, current queue
  /// depth, and the virtual clock. The registry must outlive this
  /// simulator or be detached by destroying the simulator first — the
  /// collector holds a reference to this object.
  void attach_metrics(obs::MetricsRegistry& registry);

  /// Shared recycler for packet payload buffers. Everything that encodes
  /// into or frees a UDP payload on this simulator draws from here.
  BufferPool& buffer_pool() { return buffer_pool_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    EventId id;
    // Ordered as a min-heap via std::greater.
    bool operator>(const Event& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  // First member: destroyed last, so frame deleters inside still-queued
  // callbacks can release their payloads during teardown.
  BufferPool buffer_pool_;

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Callbacks stored separately so cancel() can drop one in O(1).
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace netqos::sim
