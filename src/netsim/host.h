// End host: non-promiscuous NICs plus a UDP stack.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "netsim/node.h"
#include "netsim/udp.h"

namespace netqos::sim {

class Host : public Node {
 public:
  Host(Simulator& sim, std::string name, const ArpResolver& arp);

  /// Adds a host interface carrying an IPv4 address. The first interface
  /// becomes the default egress and the UDP stack's source address.
  Nic& add_host_interface(std::string name, BitsPerSecond speed,
                          MacAddress mac, Ipv4Address ip);

  /// The host's primary IPv4 address (first interface).
  Ipv4Address ip() const { return primary_ip_; }

  /// UDP stack; valid only after the first interface is added.
  UdpStack& udp();
  const UdpStack& udp() const;

  void on_frame(Nic& ingress, const Frame& frame) override;

  /// IP assigned to a given NIC (unspecified if unknown).
  Ipv4Address interface_ip(const Nic& nic) const;

 private:
  const ArpResolver& arp_;
  std::unique_ptr<UdpStack> udp_;
  Ipv4Address primary_ip_;
  std::unordered_map<const Nic*, Ipv4Address> nic_ips_;
};

}  // namespace netqos::sim
