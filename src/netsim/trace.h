// Frame tracing — tcpdump for the simulated LAN.
//
// A FrameTracer taps one or more links and records every frame they
// carry in a bounded ring buffer, optionally filtered. Records carry
// enough of the headers to reconstruct conversations (who SNMP-polled
// whom, which load stream crossed which segment) without retaining
// payloads.
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "common/sim_time.h"
#include "netsim/link.h"
#include "netsim/packet.h"

namespace netqos::sim {

struct TraceRecord {
  SimTime time = 0;
  std::string link;        ///< label given at attach time
  std::string from;        ///< transmitting node.interface
  MacAddress src_mac;
  MacAddress dst_mac;
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::size_t wire_bytes = 0;
};

class FrameTracer {
 public:
  /// Keep at most `capacity` records; older ones are evicted.
  explicit FrameTracer(Simulator& sim, std::size_t capacity = 4096)
      : sim_(sim), capacity_(capacity) {}

  /// Records frames carried by `link` under the given label. The tracer
  /// must outlive the link's traffic (or the link itself).
  void attach(Link& link, std::string label);

  /// Only records for which the filter returns true are kept. An empty
  /// filter keeps everything. A convenience port filter is provided.
  using Filter = std::function<bool(const TraceRecord&)>;
  void set_filter(Filter filter) { filter_ = std::move(filter); }
  static Filter port_filter(std::uint16_t port);

  const std::deque<TraceRecord>& records() const { return records_; }
  std::uint64_t total_seen() const { return total_seen_; }
  std::uint64_t evicted() const { return evicted_; }
  void clear() { records_.clear(); }

  /// "12.0034s [S1-uplink] S1.hme0: 10.0.0.11:49152 > 10.0.0.21:9 (1518B)"
  static std::string format(const TraceRecord& record);

 private:
  void record(const std::string& label, const Nic& from, const Frame& frame);

  Simulator& sim_;
  std::size_t capacity_;
  Filter filter_;
  std::deque<TraceRecord> records_;
  std::uint64_t total_seen_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace netqos::sim
