// Minimal UDP/IPv4 stack shared by hosts and switch management planes.
//
// There is no routing (single LAN, as in the paper's testbed) and no ARP
// protocol traffic: address resolution is a lookup into the Network's
// static registry, mirroring a stable LAN whose ARP caches are warm.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "common/byte_buffer.h"
#include "netsim/packet.h"

namespace netqos::sim {

class Simulator;

/// Resolves an IPv4 address to the MAC that owns it.
class ArpResolver {
 public:
  virtual ~ArpResolver() = default;
  virtual std::optional<MacAddress> resolve(Ipv4Address ip) const = 0;
};

struct UdpStackStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t send_failures = 0;      ///< unresolvable dst or tx drop
  std::uint64_t no_handler_drops = 0;   ///< no socket bound to dst port
};

class UdpStack {
 public:
  /// Handler receives the full IP packet (source address/port live there).
  using Handler = std::function<void(const Ipv4Packet& packet)>;
  /// Hands a finished frame to the owner for transmission; returns false
  /// if it could not be queued.
  using FrameSender = std::function<bool(Frame)>;

  /// `sim` drives loopback delivery: datagrams addressed to `ip` itself
  /// never touch the wire and arrive after a tiny scheduling delay.
  UdpStack(class Simulator& sim, Ipv4Address ip, MacAddress mac,
           const ArpResolver& arp, FrameSender sender);

  Ipv4Address ip() const { return ip_; }
  MacAddress mac() const { return mac_; }

  /// Binds a handler to a local port. Returns false if already bound.
  bool bind(std::uint16_t port, Handler handler);
  void unbind(std::uint16_t port);
  bool bound(std::uint16_t port) const { return handlers_.contains(port); }

  /// Ephemeral port in [49152, 65535], skipping bound ports.
  std::uint16_t allocate_ephemeral_port();

  /// Builds and transmits a UDP datagram. `padding` adds synthetic bulk
  /// payload bytes (see packet.h). Returns false on resolution failure or
  /// transmit-queue overflow.
  bool send(Ipv4Address dst, std::uint16_t dst_port, std::uint16_t src_port,
            Bytes payload, std::size_t padding = 0);

  /// Delivers an inbound packet to the bound handler, if any.
  void deliver(const Ipv4Packet& packet);

  const UdpStackStats& stats() const { return stats_; }

 private:
  Simulator& sim_;
  Ipv4Address ip_;
  MacAddress mac_;
  const ArpResolver& arp_;
  FrameSender sender_;
  std::unordered_map<std::uint16_t, Handler> handlers_;
  std::uint16_t next_ephemeral_ = 49152;
  UdpStackStats stats_;
};

}  // namespace netqos::sim
