// Base class for hosts and network devices.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "netsim/nic.h"

namespace netqos::sim {

class Simulator;

class Node {
 public:
  Node(Simulator& sim, std::string name);
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return name_; }
  Simulator& simulator() { return sim_; }

  /// Creates an interface owned by this node. `promiscuous` is chosen by
  /// the subclass (host NICs filter by MAC; device ports do not).
  Nic& add_interface(std::string name, BitsPerSecond speed, MacAddress mac,
                     bool promiscuous);

  Nic* find_interface(const std::string& name);
  const Nic* find_interface(const std::string& name) const;
  const std::vector<std::unique_ptr<Nic>>& interfaces() const {
    return nics_;
  }

  /// A frame accepted by one of this node's NICs.
  virtual void on_frame(Nic& ingress, const Frame& frame) = 0;

 protected:
  Simulator& sim_;
  std::string name_;
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace netqos::sim
