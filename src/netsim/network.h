// Network container: owns nodes and links, allocates MACs, and serves as
// the static ARP registry. Also hosts the builder that instantiates a
// live network from a topology::NetworkTopology (which the spec parser
// produces from DeSiDeRaTa-style specification files).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/host.h"
#include "netsim/hub.h"
#include "netsim/link.h"
#include "netsim/switch.h"
#include "obs/metrics.h"
#include "topology/model.h"

namespace netqos::sim {

class Network : public ArpResolver {
 public:
  explicit Network(Simulator& sim) : sim_(sim) {}

  Simulator& simulator() { return sim_; }

  Host& add_host(const std::string& name);
  Switch& add_switch(const std::string& name);
  Hub& add_hub(const std::string& name);

  /// Adds an interface with an IP to a host and registers it for ARP.
  Nic& add_host_interface(Host& host, const std::string& if_name,
                          BitsPerSecond speed, Ipv4Address ip);
  /// Adds a switched/hub port (no IP).
  Nic& add_port(Switch& sw, const std::string& if_name, BitsPerSecond speed);
  Nic& add_port(Hub& hub, const std::string& if_name, BitsPerSecond speed);

  /// Turns on the switch management plane and registers its IP.
  void enable_switch_management(Switch& sw, Ipv4Address ip);

  /// Cables two interfaces together.
  Link& connect(Node& a, const std::string& if_a, Node& b,
                const std::string& if_b,
                SimDuration propagation = 500 * kNanosecond);

  Node* find_node(const std::string& name);
  Host* find_host(const std::string& name);
  Switch* find_switch(const std::string& name);
  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

  /// Exports per-link traffic through `registry`: frames/bytes carried and
  /// dropped frames by reason, each labeled link="A.if<->B.if". Pull-style
  /// collectors snapshot the links' own tallies at render time, so the
  /// frame path pays nothing extra. Links cabled after this call are not
  /// covered. The registry must not outlive this network.
  void attach_metrics(obs::MetricsRegistry& registry);

  /// Static ARP lookup.
  std::optional<MacAddress> resolve(Ipv4Address ip) const override;
  /// Registers an additional IP→MAC mapping (e.g. management addresses).
  void register_address(Ipv4Address ip, MacAddress mac);

  MacAddress allocate_mac() { return MacAddress::from_id(next_mac_id_++); }

 private:
  template <typename T>
  T& add_node(std::unique_ptr<T> node);

  Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::unordered_map<std::string, Node*> by_name_;
  std::unordered_map<Ipv4Address, MacAddress> arp_;
  std::uint32_t next_mac_id_ = 1;
};

/// Instantiates a live network from a validated topology. Hosts must have
/// IPv4 addresses on every connected interface; SNMP-enabled switches must
/// carry a management IPv4. Throws std::invalid_argument on violations
/// (after topo.validate() problems, which are reported verbatim).
std::unique_ptr<Network> build_network(Simulator& sim,
                                       const topo::NetworkTopology& topo);

}  // namespace netqos::sim
