#include "rm/manager.h"

#include "topology/path.h"

namespace netqos::rm {

ResourceManager::ResourceManager(mon::NetworkMonitor& monitor,
                                 mon::ViolationDetector& detector)
    : monitor_(monitor) {
  detector.add_event_callback(
      [this](const mon::QosEvent& event) { on_event(event); });
}

void ResourceManager::on_event(const mon::QosEvent& event) {
  if (event.kind == mon::QosEvent::Kind::kRecovery) {
    if (active_violations_ > 0) --active_violations_;
    return;
  }
  ++active_violations_;

  Recommendation rec;
  rec.time = event.time;
  rec.path = event.path;
  rec.congested_connection = event.bottleneck_description;

  // Diagnosis: if an alternative simple path avoids the bottleneck,
  // recommend rerouting; otherwise recommend shedding load.
  const auto alternatives = topo::all_simple_paths(
      monitor_.topology(), event.path.first, event.path.second);
  bool reroute_possible = false;
  for (const auto& path : alternatives) {
    bool uses_bottleneck = false;
    for (std::size_t ci : path) {
      if (ci == event.bottleneck) {
        uses_bottleneck = true;
        break;
      }
    }
    if (!uses_bottleneck) {
      reroute_possible = true;
      break;
    }
  }
  rec.action = reroute_possible
                   ? "reroute traffic between " + event.path.first + " and " +
                         event.path.second + " around " +
                         rec.congested_connection
                   : "shed or reallocate load crossing " +
                         rec.congested_connection +
                         " (no alternate path exists)";

  recommendations_.push_back(rec);
  if (callback_) callback_(recommendations_.back());
}

void ResourceManager::attach_predictive(mon::PredictiveDetector& predictive) {
  predictive.add_event_callback([this](const mon::PredictiveEvent& event) {
    on_predictive_event(event);
  });
}

void ResourceManager::on_predictive_event(const mon::PredictiveEvent& event) {
  if (event.kind != mon::PredictiveEvent::Kind::kEarlyWarning) return;
  ++proactive_count_;

  Recommendation rec;
  rec.time = event.time;
  rec.path = event.path;

  std::string lead = "unknown";
  if (event.predicted_in.has_value()) {
    lead = std::to_string(to_seconds(*event.predicted_in)) + " s";
  }
  rec.action = "proactive: forecast for " + event.path.first + " <-> " +
               event.path.second +
               " crosses the requirement (predicted in " + lead +
               "); pre-stage load shedding or rerouting now";

  recommendations_.push_back(rec);
  if (callback_) callback_(recommendations_.back());
}

}  // namespace netqos::rm
