// Resource-management middleware consumer.
//
// DeSiDeRaTa's RM layer performs "QoS monitoring and failure detection,
// QoS diagnosis, and reallocation of resources". The paper's monitor
// exists to feed network metrics into that loop; this module implements
// the consuming side: it tracks path health from monitor samples and QoS
// events, diagnoses the congested resource, and issues reallocation
// recommendations (the actual application migration is outside this
// paper's scope — the recommendation record is the interface the
// middleware would act on).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "monitor/qos.h"

namespace netqos::rm {

/// A recommendation the middleware would act upon.
struct Recommendation {
  SimTime time = 0;
  mon::PathKey path;
  std::string congested_connection;
  /// Hosts whose communication should be moved off the congested
  /// resource, or whose load should be shed.
  std::string action;
};

class ResourceManager {
 public:
  ResourceManager(mon::NetworkMonitor& monitor,
                  mon::ViolationDetector& detector);

  /// Subscribes to a predictive detector: each early warning becomes a
  /// proactive recommendation (action prefixed "proactive:") so the
  /// middleware can move load *before* the requirement is violated.
  void attach_predictive(mon::PredictiveDetector& predictive);

  using RecommendationCallback = std::function<void(const Recommendation&)>;
  void set_recommendation_callback(RecommendationCallback callback) {
    callback_ = std::move(callback);
  }

  const std::vector<Recommendation>& recommendations() const {
    return recommendations_;
  }

  /// Number of paths currently in violation.
  std::size_t active_violations() const { return active_violations_; }

  /// Recommendations issued from predictive warnings rather than actual
  /// violations.
  std::size_t proactive_recommendations() const { return proactive_count_; }

 private:
  void on_event(const mon::QosEvent& event);
  void on_predictive_event(const mon::PredictiveEvent& event);

  mon::NetworkMonitor& monitor_;
  std::vector<Recommendation> recommendations_;
  RecommendationCallback callback_;
  std::size_t active_violations_ = 0;
  std::size_t proactive_count_ = 0;
};

}  // namespace netqos::rm
