// Real-time application model.
//
// DeSiDeRaTa manages "groups of real-time applications" whose data
// streams cross the network; the paper's monitor exists so the middleware
// can detect when the network endangers those applications and reallocate
// them. This module supplies the managed side: applications placed on
// hosts, periodic timestamped data streams between them, per-message
// latency tracking against deadlines, and a relocation primitive — the
// actuation the RM layer invokes to close the loop.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "netsim/host.h"
#include "netsim/simulator.h"

namespace netqos::apps {

class ApplicationGroup;

/// A periodic data stream between two applications.
struct StreamSpec {
  std::string name;
  std::string producer;  ///< application name
  std::string consumer;  ///< application name
  /// One message every `period`, `message_bytes` of payload each.
  SimDuration period = 100 * kMillisecond;
  std::size_t message_bytes = 1024;
  /// A message arriving later than this after transmission misses its
  /// deadline (end-to-end, including queueing).
  SimDuration deadline = 50 * kMillisecond;
};

struct StreamStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t deadline_misses = 0;
  /// End-to-end latency samples in seconds, stamped at receive time.
  TimeSeries latency;

  double loss_fraction() const {
    return messages_sent == 0
               ? 0.0
               : 1.0 - static_cast<double>(messages_received) /
                           static_cast<double>(messages_sent);
  }
};

/// One deployed application: a name bound to a UDP port on some host.
/// Applications are created and moved through their ApplicationGroup.
class Application {
 public:
  const std::string& name() const { return name_; }
  const std::string& host_name() const;
  sim::Host& host() { return *host_; }
  std::uint16_t port() const { return port_; }

 private:
  friend class ApplicationGroup;
  Application(ApplicationGroup& group, std::string name, sim::Host& host);
  void bind();
  void unbind();
  void on_message(const sim::Ipv4Packet& packet);

  ApplicationGroup& group_;
  std::string name_;
  sim::Host* host_;
  std::uint16_t port_ = 0;
};

/// The managed group: deploys applications, runs streams, and relocates
/// applications between hosts (the RM actuation).
class ApplicationGroup {
 public:
  explicit ApplicationGroup(sim::Simulator& sim) : sim_(sim) {}

  /// Deploys an application onto a host. Names must be unique.
  Application& deploy(const std::string& name, sim::Host& host);

  /// Starts a periodic stream; producer and consumer must be deployed.
  void add_stream(StreamSpec spec);

  /// Moves an application to another host. In-flight messages to the old
  /// address are lost (counted against the stream), new messages follow
  /// immediately — modelling a stateless real-time task restart.
  void relocate(const std::string& app, sim::Host& new_host);

  Application* find(const std::string& name);
  const StreamStats& stream_stats(const std::string& stream) const;
  const std::vector<StreamSpec>& streams() const { return stream_specs_; }

  /// Stops all stream production (test teardown / scenario end).
  void stop();

 private:
  friend class Application;

  struct Stream {
    StreamSpec spec;
    StreamStats stats;
    std::uint32_t next_sequence = 1;
    bool running = true;
  };

  void start_stream(std::size_t index);
  void send_message(std::size_t index);
  void deliver(const std::string& consumer, const sim::Ipv4Packet& packet);

  sim::Simulator& sim_;
  std::map<std::string, std::unique_ptr<Application>> apps_;
  std::vector<StreamSpec> stream_specs_;  // stable view for callers
  std::vector<std::unique_ptr<Stream>> streams_;
  std::uint16_t next_port_ = 20000;
  bool stopped_ = false;
};

}  // namespace netqos::apps
