#include "apps/application.h"

#include <stdexcept>

#include "common/byte_buffer.h"

namespace netqos::apps {

// --- Application ---------------------------------------------------------

Application::Application(ApplicationGroup& group, std::string name,
                         sim::Host& host)
    : group_(group), name_(std::move(name)), host_(&host) {}

const std::string& Application::host_name() const { return host_->name(); }

void Application::bind() {
  const bool ok = host_->udp().bind(
      port_, [this](const sim::Ipv4Packet& p) { on_message(p); });
  if (!ok) {
    throw std::logic_error("application port " + std::to_string(port_) +
                           " already bound on " + host_->name());
  }
}

void Application::unbind() { host_->udp().unbind(port_); }

void Application::on_message(const sim::Ipv4Packet& packet) {
  group_.deliver(name_, packet);
}

// --- ApplicationGroup -----------------------------------------------------

Application& ApplicationGroup::deploy(const std::string& name,
                                      sim::Host& host) {
  if (apps_.contains(name)) {
    throw std::invalid_argument("duplicate application name: " + name);
  }
  auto app = std::unique_ptr<Application>(
      new Application(*this, name, host));
  app->port_ = next_port_++;
  app->bind();
  Application& ref = *app;
  apps_.emplace(name, std::move(app));
  return ref;
}

void ApplicationGroup::add_stream(StreamSpec spec) {
  if (find(spec.producer) == nullptr || find(spec.consumer) == nullptr) {
    throw std::invalid_argument("stream '" + spec.name +
                                "' references an undeployed application");
  }
  if (spec.period <= 0) {
    throw std::invalid_argument("stream period must be positive");
  }
  stream_specs_.push_back(spec);
  auto stream = std::make_unique<Stream>();
  stream->spec = std::move(spec);
  streams_.push_back(std::move(stream));
  start_stream(streams_.size() - 1);
}

void ApplicationGroup::start_stream(std::size_t index) {
  sim_.schedule_after(streams_[index]->spec.period, [this, index] {
    if (stopped_ || !streams_[index]->running) return;
    send_message(index);
    start_stream(index);
  });
}

void ApplicationGroup::send_message(std::size_t index) {
  Stream& stream = *streams_[index];
  Application* producer = find(stream.spec.producer);
  Application* consumer = find(stream.spec.consumer);
  if (producer == nullptr || consumer == nullptr) return;

  // Message header: stream index, sequence, send timestamp. The rest of
  // the payload is synthetic bulk.
  ByteWriter header;
  header.put_u32(static_cast<std::uint32_t>(index));
  header.put_u32(stream.next_sequence++);
  header.put_u64(static_cast<std::uint64_t>(sim_.now()));
  const std::size_t header_size = header.size();
  const std::size_t padding = stream.spec.message_bytes > header_size
                                  ? stream.spec.message_bytes - header_size
                                  : 0;
  // The consumer's CURRENT location — relocation takes effect on the
  // next message.
  if (producer->host().udp().send(consumer->host().ip(), consumer->port(),
                                  producer->port(),
                                  std::move(header).take(), padding)) {
    ++stream.stats.messages_sent;
  }
}

void ApplicationGroup::deliver(const std::string& consumer,
                               const sim::Ipv4Packet& packet) {
  if (packet.udp.payload.size() < 16) return;
  ByteReader reader(packet.udp.payload);
  // netqos-lint: allow(R1): fixed 16-byte header, length-checked above
  const std::uint32_t index = reader.get_u32();
  // netqos-lint: allow(R1): sequence skipped (loss is computed from counts)
  reader.get_u32();
  // netqos-lint: allow(R1): fixed 16-byte header, length-checked above
  const auto sent_at = static_cast<SimTime>(reader.get_u64());
  if (index >= streams_.size()) return;
  Stream& stream = *streams_[index];
  if (stream.spec.consumer != consumer) return;  // stale after relocation

  ++stream.stats.messages_received;
  const SimDuration latency = sim_.now() - sent_at;
  stream.stats.latency.add(sim_.now(), to_seconds(latency));
  if (latency > stream.spec.deadline) ++stream.stats.deadline_misses;
}

void ApplicationGroup::relocate(const std::string& app,
                                sim::Host& new_host) {
  Application* application = find(app);
  if (application == nullptr) {
    throw std::invalid_argument("unknown application: " + app);
  }
  if (application->host_ == &new_host) return;
  application->unbind();
  application->host_ = &new_host;
  application->bind();
}

Application* ApplicationGroup::find(const std::string& name) {
  auto it = apps_.find(name);
  return it == apps_.end() ? nullptr : it->second.get();
}

const StreamStats& ApplicationGroup::stream_stats(
    const std::string& stream) const {
  for (const auto& entry : streams_) {
    if (entry->spec.name == stream) return entry->stats;
  }
  throw std::out_of_range("unknown stream: " + stream);
}

void ApplicationGroup::stop() { stopped_ = true; }

}  // namespace netqos::apps
