#include "query/server.h"

#include <algorithm>
#include <stdexcept>

namespace netqos::query {
namespace {

/// Query handling is sub-poll-interval work; buckets span 100 us (same
/// LAN, idle) to 1 s (heavily queued station link).
const std::vector<double> kLatencyBounds = {
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01,   0.025,   0.05,   0.1,   0.25,   0.5,  1.0};

}  // namespace

QueryServer::QueryServer(sim::Simulator& sim, sim::Host& station,
                         QueryEngine& engine, QueryServerConfig config)
    : sim_(sim), station_(station), engine_(engine), config_(config) {
  // The engine reads the monitor const; registering instruments in the
  // monitor's registry is the one mutation the server needs, and the
  // registry hands out stable pointers, so the cast is confined to here.
  metrics_ = config_.metrics != nullptr
                 ? config_.metrics
                 : &const_cast<mon::NetworkMonitor&>(engine_.monitor())
                        .metrics();
  const obs::Labels labels = {{"server", station_.name()}};
  window_requests_ = &endpoint_counter("window");
  health_requests_ = &endpoint_counter("health");
  modules_requests_ = &endpoint_counter("modules");
  subscribes_ = &endpoint_counter("subscribe");
  unsubscribes_ = &endpoint_counter("unsubscribe");
  bad_requests_ = &metrics_->counter(
      "netqos_query_bad_requests_total",
      "Undecodable or refused query frames", labels);
  events_published_ = &metrics_->counter(
      "netqos_query_events_published_total",
      "Event frames pushed to subscribers", labels);
  bytes_received_ = &metrics_->counter(
      "netqos_query_bytes_received_total",
      "Query payload octets received on the wire", labels);
  bytes_sent_ = &metrics_->counter(
      "netqos_query_bytes_sent_total",
      "Query payload octets sent on the wire", labels);
  subscriber_gauge_ = &metrics_->gauge(
      "netqos_query_subscribers", "Active event-stream subscribers", labels);
  latency_ = &metrics_->histogram(
      "netqos_query_latency_seconds",
      "Request send (client clock) to server handling", kLatencyBounds,
      labels);

  if (!station_.udp().bind(config_.port,
                           [this](const sim::Ipv4Packet& packet) {
                             on_packet(packet);
                           })) {
    throw std::runtime_error("query server: port " +
                             std::to_string(config_.port) +
                             " already bound on " + station_.name());
  }
}

QueryServer::~QueryServer() { station_.udp().unbind(config_.port); }

obs::Counter& QueryServer::endpoint_counter(const std::string& endpoint) {
  return metrics_->counter(
      "netqos_query_requests_total", "Query requests served, by endpoint",
      {{"server", station_.name()}, {"endpoint", endpoint}});
}

void QueryServer::attach(mon::ViolationDetector& detector) {
  engine_.set_violation_detector(&detector);
  detector.add_event_callback([this](const mon::QosEvent& qos) {
    Event event;
    event.kind = qos.kind == mon::QosEvent::Kind::kViolation
                     ? Event::Kind::kViolation
                     : Event::Kind::kRecovery;
    event.time = qos.time;
    event.subject_a = qos.path.first;
    event.subject_b = qos.path.second;
    event.available = qos.available;
    event.required = qos.required;
    publish(event);
  });
}

void QueryServer::attach(mon::PredictiveDetector& detector) {
  engine_.set_predictive_detector(&detector);
  detector.add_event_callback([this](const mon::PredictiveEvent& predicted) {
    Event event;
    event.kind = predicted.kind == mon::PredictiveEvent::Kind::kEarlyWarning
                     ? Event::Kind::kEarlyWarning
                     : Event::Kind::kAllClear;
    event.time = predicted.time;
    event.subject_a = predicted.path.first;
    event.subject_b = predicted.path.second;
    event.available = predicted.available;
    event.required = predicted.required;
    publish(event);
  });
}

void QueryServer::attach_agent_events(mon::NetworkMonitor& monitor) {
  monitor.add_quarantine_callback(
      [this](const std::string& node, bool quarantined) {
        Event event;
        event.kind = quarantined ? Event::Kind::kAgentQuarantined
                                 : Event::Kind::kAgentRecovered;
        event.time = sim_.now();
        event.subject_a = node;
        publish(event);
      });
}

void QueryServer::publish(const Event& event) {
  if (subscribers_.empty()) return;
  Message message;
  message.header.type = MessageType::kEvent;
  message.header.sent_at = sim_.now();
  message.event = event;
  for (const Subscriber& subscriber : subscribers_) {
    if (send_to(subscriber.address, subscriber.port, message)) {
      events_published_->inc();
    }
  }
}

void QueryServer::on_packet(const sim::Ipv4Packet& packet) {
  bytes_received_->inc(packet.udp.payload.size());
  Message request;
  try {
    request = decode_message(packet.udp.payload);
  } catch (const std::exception& e) {
    bad_requests_->inc();
    Message error;
    error.header.type = MessageType::kError;
    error.header.sent_at = sim_.now();
    error.error = e.what();
    reply(packet, error);
    return;
  }
  handle(request, packet);
}

void QueryServer::handle(const Message& request,
                         const sim::Ipv4Packet& packet) {
  // The sender stamped its simulated clock into the frame; the delta to
  // now is the genuine upstream network latency (propagation + queuing
  // behind poll traffic on the station link).
  const SimDuration upstream = sim_.now() - request.header.sent_at;
  Message response;
  response.header.request_id = request.header.request_id;
  response.header.sent_at = sim_.now();

  switch (request.header.type) {
    case MessageType::kWindowRequest: {
      window_requests_->inc();
      latency_->observe(to_seconds(std::max<SimDuration>(upstream, 0)));
      response.header.type = MessageType::kWindowResponse;
      response.window_response =
          engine_.window(request.window_request, sim_.now());
      break;
    }
    case MessageType::kHealthRequest: {
      health_requests_->inc();
      latency_->observe(to_seconds(std::max<SimDuration>(upstream, 0)));
      response.header.type = MessageType::kHealthResponse;
      response.health_response = engine_.health(sim_.now());
      break;
    }
    case MessageType::kModulesRequest: {
      modules_requests_->inc();
      latency_->observe(to_seconds(std::max<SimDuration>(upstream, 0)));
      response.header.type = MessageType::kModulesResponse;
      response.modules_response = engine_.modules(sim_.now());
      break;
    }
    case MessageType::kSubscribe: {
      subscribes_->inc();
      const Subscriber subscriber{packet.src, packet.udp.src_port};
      const bool known =
          std::find(subscribers_.begin(), subscribers_.end(), subscriber) !=
          subscribers_.end();
      if (!known && subscribers_.size() >= config_.max_subscribers) {
        bad_requests_->inc();
        response.header.type = MessageType::kError;
        response.error = "subscriber limit reached";
        break;
      }
      if (!known) subscribers_.push_back(subscriber);
      subscriber_gauge_->set(static_cast<double>(subscribers_.size()));
      response.header.type = MessageType::kSubscribeAck;
      break;
    }
    case MessageType::kUnsubscribe: {
      unsubscribes_->inc();
      const Subscriber subscriber{packet.src, packet.udp.src_port};
      subscribers_.erase(
          std::remove(subscribers_.begin(), subscribers_.end(), subscriber),
          subscribers_.end());
      subscriber_gauge_->set(static_cast<double>(subscribers_.size()));
      response.header.type = MessageType::kSubscribeAck;
      break;
    }
    default: {
      // Response/event frames have no business arriving at the server.
      bad_requests_->inc();
      response.header.type = MessageType::kError;
      response.error = std::string("unexpected frame type ") +
                       message_type_name(request.header.type);
      break;
    }
  }
  reply(packet, response);
}

void QueryServer::reply(const sim::Ipv4Packet& request,
                        const Message& response) {
  send_to(request.src, request.udp.src_port, response);
}

bool QueryServer::send_to(sim::Ipv4Address address, std::uint16_t port,
                          const Message& message) {
  Bytes wire = encode_message(message);
  const std::size_t size = wire.size();
  if (!station_.udp().send(address, port, config_.port, std::move(wire))) {
    return false;
  }
  bytes_sent_->inc(size);
  return true;
}

QueryServerStats QueryServer::stats() const {
  QueryServerStats stats;
  stats.window_requests = window_requests_->value();
  stats.health_requests = health_requests_->value();
  stats.modules_requests = modules_requests_->value();
  stats.subscribes = subscribes_->value();
  stats.unsubscribes = unsubscribes_->value();
  stats.bad_requests = bad_requests_->value();
  stats.events_published = events_published_->value();
  stats.bytes_received = bytes_received_->value();
  stats.bytes_sent = bytes_sent_->value();
  return stats;
}

}  // namespace netqos::query
