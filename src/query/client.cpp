#include "query/client.h"

#include <utility>

namespace netqos::query {

QueryClient::QueryClient(sim::Simulator& sim, sim::Host& host,
                         sim::Ipv4Address server, QueryClientConfig config)
    : sim_(sim), host_(host), server_(server), config_(config) {
  src_port_ = host_.udp().allocate_ephemeral_port();
  host_.udp().bind(src_port_, [this](const sim::Ipv4Packet& packet) {
    on_packet(packet);
  });
}

QueryClient::~QueryClient() { host_.udp().unbind(src_port_); }

void QueryClient::window(const WindowRequest& request, Callback callback) {
  Message message;
  message.header.type = MessageType::kWindowRequest;
  message.window_request = request;
  send_request(std::move(message), std::move(callback));
}

void QueryClient::health(Callback callback) {
  Message message;
  message.header.type = MessageType::kHealthRequest;
  send_request(std::move(message), std::move(callback));
}

void QueryClient::modules(Callback callback) {
  Message message;
  message.header.type = MessageType::kModulesRequest;
  send_request(std::move(message), std::move(callback));
}

void QueryClient::subscribe(Callback callback) {
  Message message;
  message.header.type = MessageType::kSubscribe;
  send_request(std::move(message), std::move(callback));
}

void QueryClient::unsubscribe(Callback callback) {
  Message message;
  message.header.type = MessageType::kUnsubscribe;
  send_request(std::move(message), std::move(callback));
}

void QueryClient::send_request(Message message, Callback callback) {
  const std::uint32_t request_id = next_request_id_++;
  message.header.request_id = request_id;
  message.header.sent_at = sim_.now();

  Bytes wire = encode_message(message);
  const std::size_t size = wire.size();
  if (!host_.udp().send(server_, config_.server_port, src_port_,
                        std::move(wire))) {
    QueryResult result;
    result.status = QueryResult::Status::kSendFailed;
    if (callback) callback(std::move(result));
    return;
  }
  stats_.requests_sent++;
  stats_.bytes_sent += size;

  Pending pending;
  pending.callback = std::move(callback);
  pending.sent = sim_.now();
  pending.timeout_event = sim_.schedule_after(
      config_.timeout, [this, request_id] { on_timeout(request_id); });
  pending_.emplace(request_id, std::move(pending));
}

void QueryClient::on_timeout(std::uint32_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  Pending pending = std::move(it->second);
  pending_.erase(it);
  stats_.timeouts++;
  QueryResult result;
  result.status = QueryResult::Status::kTimeout;
  if (pending.callback) pending.callback(std::move(result));
}

void QueryClient::on_packet(const sim::Ipv4Packet& packet) {
  stats_.bytes_received += packet.udp.payload.size();
  Message message;
  try {
    message = decode_message(packet.udp.payload);
  } catch (const std::exception&) {
    // A malformed frame matches no request; the timeout will fire.
    return;
  }

  if (message.header.type == MessageType::kEvent) {
    stats_.events_received++;
    if (event_callback_) event_callback_(message.event);
    return;
  }

  auto it = pending_.find(message.header.request_id);
  if (it == pending_.end()) return;  // late response after timeout
  Pending pending = std::move(it->second);
  pending_.erase(it);
  sim_.cancel(pending.timeout_event);
  stats_.responses++;

  QueryResult result;
  result.rtt = sim_.now() - pending.sent;
  if (message.header.type == MessageType::kError) {
    stats_.errors++;
    result.status = QueryResult::Status::kError;
    result.error = message.error;
  } else {
    result.status = QueryResult::Status::kOk;
    result.message = std::move(message);
  }
  if (pending.callback) pending.callback(std::move(result));
}

}  // namespace netqos::query
