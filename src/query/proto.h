// Wire protocol for the monitor's query service.
//
// CoMo splits its core (capture, storage) from a query interface that
// "allows users to elicit the system to export the results of the
// measurement performed"; this is our equivalent, carried over the
// *simulated* network so query traffic competes with SNMP polls for link
// bandwidth exactly like a real deployment. Each UDP datagram carries one
// length-prefixed frame:
//
//   [u32 length][u16 magic "NQ"][u8 version][u8 type]
//   [u32 request_id][i64 sent_at][body...]
//
// `length` counts every byte after the prefix, so a truncated datagram is
// detected before the body is touched. `sent_at` is the sender's
// simulated clock; the server folds (now - sent_at) into its
// query-latency histogram, making upstream queuing delay observable.
// Integers are big-endian, doubles are IEEE-754 bit patterns in a u64,
// strings are u16 length + bytes.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/byte_buffer.h"
#include "common/sim_time.h"
#include "common/units.h"

namespace netqos::query {

inline constexpr std::uint16_t kMagic = 0x4E51;  // "NQ"
inline constexpr std::uint8_t kProtocolVersion = 1;

/// Thrown by decode_message on any malformed frame (magic/version/length
/// mismatch). ByteReader underflows surface as BufferUnderflow; callers
/// must handle both at the packet boundary.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error("query protocol: " + what) {}
};

enum class MessageType : std::uint8_t {
  kWindowRequest = 1,   ///< windowed aggregate over history series
  kWindowResponse = 2,
  kHealthRequest = 3,   ///< point-in-time agent/path health snapshot
  kHealthResponse = 4,
  kSubscribe = 5,       ///< register for the event stream
  kSubscribeAck = 6,
  kUnsubscribe = 7,     ///< acked with kSubscribeAck as well
  kEvent = 8,           ///< pushed to subscribers, no request id
  kError = 9,
  kModulesRequest = 10,  ///< registered measurement modules + telemetry
  kModulesResponse = 11,
};

const char* message_type_name(MessageType type);

/// How window-query rows are keyed and aggregated.
enum class GroupBy : std::uint8_t {
  kInterface = 0,  ///< one row per (node, ifDescr) rate series
  kPath = 1,       ///< one row per monitored path per metric (used/avail)
  kHost = 2,       ///< interface rows of one node merged into one row
};

const char* group_by_name(GroupBy group);

struct MessageHeader {
  MessageType type = MessageType::kError;
  std::uint32_t request_id = 0;
  SimTime sent_at = 0;
};

struct WindowRequest {
  GroupBy group = GroupBy::kPath;
  /// Substring filter on the row key; empty selects every series of the
  /// group ("S1" matches both endpoints' paths and S1's interfaces).
  std::string selector;
  /// Window [begin, end) in simulated ns. end == 0 means "server's now";
  /// begin < 0 means a trailing window of |begin| ending at end.
  SimTime begin = 0;
  SimTime end = 0;
};

struct WindowRow {
  std::string key;
  std::uint32_t samples = 0;
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double p95 = 0.0;
  /// Width of the history tier that answered (0 = raw resolution).
  SimDuration resolution = 0;
  /// False when retention no longer reaches the window's begin.
  bool complete = false;
};

struct WindowResponse {
  SimTime server_now = 0;
  /// The window actually evaluated, after resolving end==0 / begin<0.
  SimTime begin = 0;
  SimTime end = 0;
  std::vector<WindowRow> rows;
};

struct AgentHealthRow {
  std::string node;
  std::uint8_t health = 0;  ///< mon::AgentHealth as an integer
  std::uint32_t consecutive_failures = 0;
  std::uint64_t polls = 0;
  std::uint64_t failures = 0;
  std::uint64_t quarantines = 0;
  /// Earliest simulated time the agent's next poll may launch.
  SimTime next_due = 0;
};

struct PathHealthRow {
  std::string from;
  std::string to;
  BytesPerSecond used = 0.0;
  BytesPerSecond available = 0.0;
  std::uint8_t freshness = 0;  ///< mon::Freshness as an integer
  SimDuration max_sample_age = 0;
  bool complete = false;
  bool link_down = false;
  bool violated = false;  ///< reactive detector state, if attached
  bool warning = false;   ///< predictive detector state, if attached
};

/// One active estimator's status (src/probe), carried in health
/// snapshots when the server has a probe-status provider wired in.
struct ProbeStatusRow {
  std::string estimator;
  std::string from;
  std::string to;
  std::uint8_t convergence = 0;  ///< probe::Convergence as an integer
  bool running = false;
  bool has_estimate = false;
  /// Latest available-bandwidth estimate (meaningful iff has_estimate).
  BytesPerSecond available = 0.0;
  std::uint64_t estimates = 0;
  /// Probe + report wire bytes injected so far (intrusiveness numerator).
  std::uint64_t wire_bytes = 0;
};

struct HealthResponse {
  SimTime server_now = 0;
  std::vector<AgentHealthRow> agents;
  std::vector<PathHealthRow> paths;
  std::vector<ProbeStatusRow> probes;
};

/// One registered measurement module: host-side telemetry plus the
/// module's own key/value self-description (mon::ModuleStatus on the
/// wire).
struct ModuleStatusRow {
  std::string name;
  std::uint64_t samples = 0;
  std::uint64_t errors = 0;
  std::uint64_t footprint_bytes = 0;
  std::vector<std::pair<std::string, std::string>> notes;
};

struct ModulesResponse {
  SimTime server_now = 0;
  std::vector<ModuleStatusRow> modules;
};

/// One pushed notification on the subscription channel.
struct Event {
  enum class Kind : std::uint8_t {
    kViolation = 0,
    kRecovery = 1,
    kEarlyWarning = 2,
    kAllClear = 3,
    kAgentQuarantined = 4,
    kAgentRecovered = 5,
  };

  Kind kind = Kind::kViolation;
  SimTime time = 0;
  /// Path endpoints for QoS events; subject_a is the agent node (and
  /// subject_b empty) for agent-health events.
  std::string subject_a;
  std::string subject_b;
  BytesPerSecond available = 0.0;
  BytesPerSecond required = 0.0;
};

const char* event_kind_name(Event::Kind kind);

/// A decoded frame: `header.type` says which payload member is meaningful.
struct Message {
  MessageHeader header;
  WindowRequest window_request;
  WindowResponse window_response;
  HealthResponse health_response;
  ModulesResponse modules_response;
  Event event;
  std::string error;
};

/// Encodes one frame (length prefix included) ready for a UDP payload.
Bytes encode_message(const Message& message);

/// Decodes one frame; throws ProtocolError on bad magic/version/length
/// and BufferUnderflow on truncation.
Message decode_message(std::span<const std::uint8_t> wire);

}  // namespace netqos::query
