#include "query/proto.h"

#include <bit>

namespace netqos::query {
namespace {

void put_f64(ByteWriter& out, double v) {
  out.put_u64(std::bit_cast<std::uint64_t>(v));
}

void put_str(ByteWriter& out, const std::string& s) {
  if (s.size() > 0xffff) {
    throw ProtocolError("string too long to encode");
  }
  out.put_u16(static_cast<std::uint16_t>(s.size()));
  out.put_string(s);
}

void put_time(ByteWriter& out, SimTime t) {
  out.put_u64(static_cast<std::uint64_t>(t));
}

double read_f64(ByteReader& in) {
  return std::bit_cast<double>(in.get_u64());
}

std::string read_str(ByteReader& in) {
  const std::uint16_t n = in.get_u16();
  return in.get_string(n);
}

SimTime read_time(ByteReader& in) {
  return static_cast<SimTime>(in.get_u64());
}

/// Element counts are attacker-controlled wire data. Every encoded
/// element occupies at least one payload byte, so a count larger than
/// the bytes left is malformed — reject it before sizing containers
/// from it (netqos-analyze R6).
std::uint16_t read_count(ByteReader& in) {
  const std::uint16_t count = in.get_u16();
  if (count > in.remaining()) {
    throw ProtocolError("element count " + std::to_string(count) +
                        " exceeds remaining payload " +
                        std::to_string(in.remaining()));
  }
  return count;
}

void encode_body(ByteWriter& out, const Message& m) {
  switch (m.header.type) {
    case MessageType::kWindowRequest: {
      const WindowRequest& r = m.window_request;
      out.put_u8(static_cast<std::uint8_t>(r.group));
      put_str(out, r.selector);
      put_time(out, r.begin);
      put_time(out, r.end);
      break;
    }
    case MessageType::kWindowResponse: {
      const WindowResponse& r = m.window_response;
      put_time(out, r.server_now);
      put_time(out, r.begin);
      put_time(out, r.end);
      out.put_u16(static_cast<std::uint16_t>(r.rows.size()));
      for (const WindowRow& row : r.rows) {
        put_str(out, row.key);
        out.put_u32(row.samples);
        put_f64(out, row.min);
        put_f64(out, row.mean);
        put_f64(out, row.max);
        put_f64(out, row.p95);
        put_time(out, row.resolution);
        out.put_u8(row.complete ? 1 : 0);
      }
      break;
    }
    case MessageType::kHealthResponse: {
      const HealthResponse& r = m.health_response;
      put_time(out, r.server_now);
      out.put_u16(static_cast<std::uint16_t>(r.agents.size()));
      for (const AgentHealthRow& a : r.agents) {
        put_str(out, a.node);
        out.put_u8(a.health);
        out.put_u32(a.consecutive_failures);
        out.put_u64(a.polls);
        out.put_u64(a.failures);
        out.put_u64(a.quarantines);
        put_time(out, a.next_due);
      }
      out.put_u16(static_cast<std::uint16_t>(r.paths.size()));
      for (const PathHealthRow& p : r.paths) {
        put_str(out, p.from);
        put_str(out, p.to);
        put_f64(out, p.used);
        put_f64(out, p.available);
        out.put_u8(p.freshness);
        put_time(out, p.max_sample_age);
        out.put_u8(p.complete ? 1 : 0);
        out.put_u8(p.link_down ? 1 : 0);
        out.put_u8(p.violated ? 1 : 0);
        out.put_u8(p.warning ? 1 : 0);
      }
      out.put_u16(static_cast<std::uint16_t>(r.probes.size()));
      for (const ProbeStatusRow& probe : r.probes) {
        put_str(out, probe.estimator);
        put_str(out, probe.from);
        put_str(out, probe.to);
        out.put_u8(probe.convergence);
        out.put_u8(probe.running ? 1 : 0);
        out.put_u8(probe.has_estimate ? 1 : 0);
        put_f64(out, probe.available);
        out.put_u64(probe.estimates);
        out.put_u64(probe.wire_bytes);
      }
      break;
    }
    case MessageType::kEvent: {
      const Event& e = m.event;
      out.put_u8(static_cast<std::uint8_t>(e.kind));
      put_time(out, e.time);
      put_str(out, e.subject_a);
      put_str(out, e.subject_b);
      put_f64(out, e.available);
      put_f64(out, e.required);
      break;
    }
    case MessageType::kModulesResponse: {
      const ModulesResponse& r = m.modules_response;
      put_time(out, r.server_now);
      out.put_u16(static_cast<std::uint16_t>(r.modules.size()));
      for (const ModuleStatusRow& row : r.modules) {
        put_str(out, row.name);
        out.put_u64(row.samples);
        out.put_u64(row.errors);
        out.put_u64(row.footprint_bytes);
        out.put_u16(static_cast<std::uint16_t>(row.notes.size()));
        for (const auto& [key, value] : row.notes) {
          put_str(out, key);
          put_str(out, value);
        }
      }
      break;
    }
    case MessageType::kError:
      put_str(out, m.error);
      break;
    case MessageType::kHealthRequest:
    case MessageType::kSubscribe:
    case MessageType::kSubscribeAck:
    case MessageType::kUnsubscribe:
    case MessageType::kModulesRequest:
      break;  // header-only frames
  }
}

/// Decoder internals below propagate BufferUnderflow/ProtocolError to the
/// packet boundary (netqos-lint R1 propagator convention).
void decode_body(ByteReader& in, Message& m) {
  switch (m.header.type) {
    case MessageType::kWindowRequest: {
      WindowRequest& r = m.window_request;
      const std::uint8_t group = in.get_u8();
      if (group > static_cast<std::uint8_t>(GroupBy::kHost)) {
        throw ProtocolError("unknown group-by " + std::to_string(group));
      }
      r.group = static_cast<GroupBy>(group);
      r.selector = read_str(in);
      r.begin = read_time(in);
      r.end = read_time(in);
      break;
    }
    case MessageType::kWindowResponse: {
      WindowResponse& r = m.window_response;
      r.server_now = read_time(in);
      r.begin = read_time(in);
      r.end = read_time(in);
      const std::uint16_t rows = read_count(in);
      r.rows.reserve(rows);
      for (std::uint16_t i = 0; i < rows; ++i) {
        WindowRow row;
        row.key = read_str(in);
        row.samples = in.get_u32();
        row.min = read_f64(in);
        row.mean = read_f64(in);
        row.max = read_f64(in);
        row.p95 = read_f64(in);
        row.resolution = read_time(in);
        row.complete = in.get_u8() != 0;
        r.rows.push_back(std::move(row));
      }
      break;
    }
    case MessageType::kHealthResponse: {
      HealthResponse& r = m.health_response;
      r.server_now = read_time(in);
      const std::uint16_t agents = read_count(in);
      r.agents.reserve(agents);
      for (std::uint16_t i = 0; i < agents; ++i) {
        AgentHealthRow a;
        a.node = read_str(in);
        a.health = in.get_u8();
        a.consecutive_failures = in.get_u32();
        a.polls = in.get_u64();
        a.failures = in.get_u64();
        a.quarantines = in.get_u64();
        a.next_due = read_time(in);
        r.agents.push_back(std::move(a));
      }
      const std::uint16_t paths = read_count(in);
      r.paths.reserve(paths);
      for (std::uint16_t i = 0; i < paths; ++i) {
        PathHealthRow p;
        p.from = read_str(in);
        p.to = read_str(in);
        p.used = read_f64(in);
        p.available = read_f64(in);
        p.freshness = in.get_u8();
        p.max_sample_age = read_time(in);
        p.complete = in.get_u8() != 0;
        p.link_down = in.get_u8() != 0;
        p.violated = in.get_u8() != 0;
        p.warning = in.get_u8() != 0;
        r.paths.push_back(std::move(p));
      }
      const std::uint16_t probes = read_count(in);
      r.probes.reserve(probes);
      for (std::uint16_t i = 0; i < probes; ++i) {
        ProbeStatusRow probe;
        probe.estimator = read_str(in);
        probe.from = read_str(in);
        probe.to = read_str(in);
        probe.convergence = in.get_u8();
        probe.running = in.get_u8() != 0;
        probe.has_estimate = in.get_u8() != 0;
        probe.available = read_f64(in);
        probe.estimates = in.get_u64();
        probe.wire_bytes = in.get_u64();
        r.probes.push_back(std::move(probe));
      }
      break;
    }
    case MessageType::kEvent: {
      Event& e = m.event;
      const std::uint8_t kind = in.get_u8();
      if (kind > static_cast<std::uint8_t>(Event::Kind::kAgentRecovered)) {
        throw ProtocolError("unknown event kind " + std::to_string(kind));
      }
      e.kind = static_cast<Event::Kind>(kind);
      e.time = read_time(in);
      e.subject_a = read_str(in);
      e.subject_b = read_str(in);
      e.available = read_f64(in);
      e.required = read_f64(in);
      break;
    }
    case MessageType::kModulesResponse: {
      ModulesResponse& r = m.modules_response;
      r.server_now = read_time(in);
      const std::uint16_t modules = read_count(in);
      r.modules.reserve(modules);
      for (std::uint16_t i = 0; i < modules; ++i) {
        ModuleStatusRow row;
        row.name = read_str(in);
        row.samples = in.get_u64();
        row.errors = in.get_u64();
        row.footprint_bytes = in.get_u64();
        const std::uint16_t notes = read_count(in);
        row.notes.reserve(notes);
        for (std::uint16_t j = 0; j < notes; ++j) {
          std::string key = read_str(in);
          std::string value = read_str(in);
          row.notes.emplace_back(std::move(key), std::move(value));
        }
        r.modules.push_back(std::move(row));
      }
      break;
    }
    case MessageType::kError:
      m.error = read_str(in);
      break;
    case MessageType::kHealthRequest:
    case MessageType::kSubscribe:
    case MessageType::kSubscribeAck:
    case MessageType::kUnsubscribe:
    case MessageType::kModulesRequest:
      break;
  }
}

}  // namespace

const char* message_type_name(MessageType type) {
  switch (type) {
    case MessageType::kWindowRequest: return "window-request";
    case MessageType::kWindowResponse: return "window-response";
    case MessageType::kHealthRequest: return "health-request";
    case MessageType::kHealthResponse: return "health-response";
    case MessageType::kSubscribe: return "subscribe";
    case MessageType::kSubscribeAck: return "subscribe-ack";
    case MessageType::kUnsubscribe: return "unsubscribe";
    case MessageType::kEvent: return "event";
    case MessageType::kError: return "error";
    case MessageType::kModulesRequest: return "modules-request";
    case MessageType::kModulesResponse: return "modules-response";
  }
  return "?";
}

const char* group_by_name(GroupBy group) {
  switch (group) {
    case GroupBy::kInterface: return "interface";
    case GroupBy::kPath: return "path";
    case GroupBy::kHost: return "host";
  }
  return "?";
}

const char* event_kind_name(Event::Kind kind) {
  switch (kind) {
    case Event::Kind::kViolation: return "violation";
    case Event::Kind::kRecovery: return "recovery";
    case Event::Kind::kEarlyWarning: return "early-warning";
    case Event::Kind::kAllClear: return "all-clear";
    case Event::Kind::kAgentQuarantined: return "agent-quarantined";
    case Event::Kind::kAgentRecovered: return "agent-recovered";
  }
  return "?";
}

Bytes encode_message(const Message& message) {
  ByteWriter body;
  body.put_u16(kMagic);
  body.put_u8(kProtocolVersion);
  body.put_u8(static_cast<std::uint8_t>(message.header.type));
  body.put_u32(message.header.request_id);
  body.put_u64(static_cast<std::uint64_t>(message.header.sent_at));
  encode_body(body, message);

  ByteWriter frame;
  frame.put_u32(static_cast<std::uint32_t>(body.size()));
  frame.put_bytes(body.bytes());
  return std::move(frame).take();
}

Message decode_message(std::span<const std::uint8_t> wire) {
  ByteReader in(wire);
  const std::uint32_t length = in.get_u32();
  if (length != in.remaining()) {
    throw ProtocolError("frame length " + std::to_string(length) +
                        " != payload size " + std::to_string(in.remaining()));
  }
  if (in.get_u16() != kMagic) {
    throw ProtocolError("bad magic");
  }
  const std::uint8_t version = in.get_u8();
  if (version != kProtocolVersion) {
    throw ProtocolError("unsupported version " + std::to_string(version));
  }
  Message m;
  const std::uint8_t type = in.get_u8();
  if (type < static_cast<std::uint8_t>(MessageType::kWindowRequest) ||
      type > static_cast<std::uint8_t>(MessageType::kModulesResponse)) {
    throw ProtocolError("unknown message type " + std::to_string(type));
  }
  m.header.type = static_cast<MessageType>(type);
  m.header.request_id = in.get_u32();
  m.header.sent_at = static_cast<SimTime>(in.get_u64());
  decode_body(in, m);
  if (!in.empty()) {
    throw ProtocolError("trailing bytes after body");
  }
  return m;
}

}  // namespace netqos::query
