#include "query/engine.h"

#include <algorithm>
#include <map>

#include "history/store.h"

namespace netqos::query {
namespace {

bool selected(const std::string& key, const std::string& selector) {
  return selector.empty() || key.find(selector) != std::string::npos;
}

WindowRow row_from_summary(std::string key,
                           const hist::WindowSummary& summary) {
  WindowRow row;
  row.key = std::move(key);
  row.samples = static_cast<std::uint32_t>(summary.samples);
  row.min = summary.min;
  row.mean = summary.mean;
  row.max = summary.max;
  row.p95 = summary.p95;
  row.resolution = summary.resolution;
  row.complete = summary.complete;
  return row;
}

/// Folds one member series summary into a host aggregate. Mean is
/// count-weighted; p95 is the max of member p95s (conservative: the
/// true cross-series quantile needs the raw samples); resolution is the
/// coarsest member; complete only when every member is.
void merge_into(WindowRow& into, const hist::WindowSummary& summary) {
  if (summary.samples == 0) return;
  if (into.samples == 0) {
    into.min = summary.min;
    into.max = summary.max;
    into.mean = summary.mean;
    into.p95 = summary.p95;
    into.resolution = summary.resolution;
    into.complete = summary.complete;
    into.samples = static_cast<std::uint32_t>(summary.samples);
    return;
  }
  const double total =
      static_cast<double>(into.samples) + static_cast<double>(summary.samples);
  into.mean = (into.mean * static_cast<double>(into.samples) +
               summary.mean * static_cast<double>(summary.samples)) /
              total;
  into.min = std::min(into.min, summary.min);
  into.max = std::max(into.max, summary.max);
  into.p95 = std::max(into.p95, summary.p95);
  into.resolution = std::max(into.resolution, summary.resolution);
  into.complete = into.complete && summary.complete;
  into.samples += static_cast<std::uint32_t>(summary.samples);
}

constexpr const char* kInterfacePrefix = "if:";

}  // namespace

WindowResponse QueryEngine::window(const WindowRequest& request,
                                   SimTime now) const {
  WindowResponse response;
  response.server_now = now;
  response.end = request.end == 0 ? now : request.end;
  response.begin = request.begin < 0 ? response.end + request.begin
                                     : request.begin;
  if (response.begin < 0) response.begin = 0;
  if (response.end < response.begin) response.end = response.begin;

  switch (request.group) {
    case GroupBy::kInterface:
      interface_rows(request.selector, response.begin, response.end,
                     response.rows);
      break;
    case GroupBy::kPath:
      path_rows(request.selector, response.begin, response.end,
                response.rows);
      break;
    case GroupBy::kHost:
      host_rows(request.selector, response.begin, response.end,
                response.rows);
      break;
  }
  std::sort(response.rows.begin(), response.rows.end(),
            [](const WindowRow& a, const WindowRow& b) { return a.key < b.key; });
  return response;
}

void QueryEngine::interface_rows(const std::string& selector, SimTime begin,
                                 SimTime end,
                                 std::vector<WindowRow>& rows) const {
  const hist::HistoryStore& store = monitor_.stats_db().history();
  for (const std::string& key : store.keys()) {
    if (!key.starts_with(kInterfacePrefix) || !selected(key, selector)) {
      continue;
    }
    const hist::WindowSummary summary = store.query(key, begin, end);
    if (summary.samples == 0) continue;
    rows.push_back(row_from_summary(key, summary));
  }
}

void QueryEngine::path_rows(const std::string& selector, SimTime begin,
                            SimTime end, std::vector<WindowRow>& rows) const {
  const hist::HistoryStore& store = monitor_.history();
  for (const auto& [from, to] : monitor_.monitored_paths()) {
    for (const char* metric : {"used", "avail"}) {
      const std::string key = hist::path_series_key(from, to, metric);
      if (!selected(key, selector)) continue;
      const hist::WindowSummary summary = store.query(key, begin, end);
      if (summary.samples == 0) continue;
      rows.push_back(row_from_summary(key, summary));
    }
  }
}

void QueryEngine::host_rows(const std::string& selector, SimTime begin,
                            SimTime end, std::vector<WindowRow>& rows) const {
  const hist::HistoryStore& store = monitor_.stats_db().history();
  std::map<std::string, WindowRow> hosts;
  for (const std::string& key : store.keys()) {
    if (!key.starts_with(kInterfacePrefix)) continue;
    // "if:<node>/<ifDescr>" — the node is the host grouping key.
    const std::size_t name_begin = std::string(kInterfacePrefix).size();
    const std::size_t slash = key.find('/', name_begin);
    if (slash == std::string::npos) continue;
    const std::string node = key.substr(name_begin, slash - name_begin);
    const std::string host_key = "host:" + node;
    if (!selected(host_key, selector)) continue;
    const hist::WindowSummary summary = store.query(key, begin, end);
    auto [it, inserted] = hosts.try_emplace(host_key);
    if (inserted) it->second.key = host_key;
    merge_into(it->second, summary);
  }
  for (auto& [key, row] : hosts) {
    if (row.samples == 0) continue;
    rows.push_back(std::move(row));
  }
}

HealthResponse QueryEngine::health(SimTime now) const {
  HealthResponse response;
  response.server_now = now;

  for (const mon::PollScheduler::AgentState& agent :
       monitor_.scheduler().agents()) {
    AgentHealthRow row;
    row.node = agent.node;
    row.health = static_cast<std::uint8_t>(agent.health);
    row.consecutive_failures =
        static_cast<std::uint32_t>(agent.consecutive_failures);
    row.polls = agent.polls;
    row.failures = agent.failures;
    row.quarantines = agent.quarantines;
    row.next_due = agent.next_due;
    response.agents.push_back(std::move(row));
  }

  for (const auto& [from, to] : monitor_.monitored_paths()) {
    const mon::PathUsage usage = monitor_.current_usage(from, to);
    PathHealthRow row;
    row.from = from;
    row.to = to;
    row.used = usage.used_at_bottleneck;
    row.available = usage.available;
    row.freshness = static_cast<std::uint8_t>(usage.freshness);
    row.max_sample_age = usage.max_sample_age;
    row.complete = usage.complete;
    row.link_down = usage.link_down;
    row.violated = violations_ != nullptr && violations_->in_violation(from, to);
    row.warning = predictive_ != nullptr && predictive_->warning_active(from, to);
    response.paths.push_back(std::move(row));
  }

  if (probe_status_) {
    response.probes = probe_status_();
  }
  return response;
}

ModulesResponse QueryEngine::modules(SimTime now) const {
  ModulesResponse response;
  response.server_now = now;
  for (const mon::ModuleStatus& status : monitor_.modules().statuses()) {
    ModuleStatusRow row;
    row.name = status.name;
    row.samples = status.samples;
    row.errors = status.errors;
    row.footprint_bytes = status.footprint_bytes;
    for (const mon::ModuleNote& note : status.notes) {
      row.notes.emplace_back(note.key, note.value);
    }
    response.modules.push_back(std::move(row));
  }
  return response;
}

}  // namespace netqos::query
