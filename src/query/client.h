// Client side of the query wire protocol.
//
// Sends window/health/subscription requests from any simulated host to a
// QueryServer, matches responses by request id, and surfaces pushed event
// frames through a callback — the library under both the netqosctl CLI
// and the query_load bench. Like the SNMP client, everything is
// callback-driven on the discrete-event loop and every frame crosses the
// simulated network.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/sim_time.h"
#include "netsim/host.h"
#include "netsim/simulator.h"
#include "query/proto.h"

namespace netqos::query {

struct QueryClientConfig {
  std::uint16_t server_port = sim::kQueryPort;
  /// A request with no response by then completes with kTimeout. Queries
  /// are read-only, so there is no retry machinery: callers re-issue.
  SimDuration timeout = 2 * kSecond;
};

/// Client-side transport counters (plain values: the client is a tool,
/// not part of the monitored system).
struct QueryClientStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t responses = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t errors = 0;  ///< kError frames matched to a request
  std::uint64_t events_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

struct QueryResult {
  enum class Status { kOk, kTimeout, kError, kSendFailed };

  Status status = Status::kTimeout;
  std::string error;  ///< server-reported reason (kError only)
  Message message;    ///< decoded response (kOk only)
  SimDuration rtt = 0;

  bool ok() const { return status == Status::kOk; }
};

class QueryClient {
 public:
  using Callback = std::function<void(QueryResult)>;
  using EventCallback = std::function<void(const Event&)>;

  /// Binds an ephemeral port on `host`'s UDP stack; frames go to
  /// `server` on config.server_port.
  QueryClient(sim::Simulator& sim, sim::Host& host, sim::Ipv4Address server,
              QueryClientConfig config = {});
  ~QueryClient();
  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  void window(const WindowRequest& request, Callback callback);
  void health(Callback callback);
  /// Fetches the monitor's registered measurement modules + telemetry.
  void modules(Callback callback);
  /// Registers this client's port for event pushes; the ack (or refusal)
  /// arrives through `callback`.
  void subscribe(Callback callback);
  void unsubscribe(Callback callback);

  /// Invoked for every pushed kEvent frame after a successful subscribe.
  void set_event_callback(EventCallback callback) {
    event_callback_ = std::move(callback);
  }

  const QueryClientStats& stats() const { return stats_; }
  std::size_t outstanding() const { return pending_.size(); }

 private:
  struct Pending {
    Callback callback;
    sim::EventId timeout_event = 0;
    SimTime sent = 0;
  };

  void send_request(Message message, Callback callback);
  void on_timeout(std::uint32_t request_id);
  void on_packet(const sim::Ipv4Packet& packet);

  sim::Simulator& sim_;
  sim::Host& host_;
  sim::Ipv4Address server_;
  QueryClientConfig config_;
  std::uint16_t src_port_;
  std::uint32_t next_request_id_ = 1;
  std::unordered_map<std::uint32_t, Pending> pending_;
  EventCallback event_callback_;
  QueryClientStats stats_;
};

}  // namespace netqos::query
