// The monitor's query service: the wire endpoint over a QueryEngine.
//
// Binds the well-known query port on the monitoring station's UDP stack,
// answers window/health requests, and streams violation / predictive /
// agent-health events to subscribers — all over the simulated network,
// so query traffic and the SNMP poll train compete for the station's
// link like a real deployment. The server instruments itself through the
// shared MetricsRegistry (per-endpoint request counters, a query-latency
// histogram fed by each request's sender timestamp, an active-subscriber
// gauge, and bytes on the wire), making the monitor observable through
// its own API.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "monitor/monitor.h"
#include "monitor/qos.h"
#include "netsim/host.h"
#include "obs/metrics.h"
#include "query/engine.h"
#include "query/proto.h"

namespace netqos::query {

struct QueryServerConfig {
  std::uint16_t port = sim::kQueryPort;
  /// Registry for the server's instruments; null = the monitor's own.
  obs::MetricsRegistry* metrics = nullptr;
  /// Subscription slots; further kSubscribe requests are refused with a
  /// kError frame so a subscriber flood cannot grow server state.
  std::size_t max_subscribers = 64;
};

/// Snapshot of the server's counters (read back from the registry).
struct QueryServerStats {
  std::uint64_t window_requests = 0;
  std::uint64_t health_requests = 0;
  std::uint64_t modules_requests = 0;
  std::uint64_t subscribes = 0;
  std::uint64_t unsubscribes = 0;
  std::uint64_t bad_requests = 0;  ///< undecodable or refused frames
  std::uint64_t events_published = 0;  ///< event frames sent, all subscribers
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
};

class QueryServer {
 public:
  /// Binds config.port on `station`'s UDP stack; throws
  /// std::runtime_error when the port is taken. The engine, station, and
  /// registry must outlive the server.
  QueryServer(sim::Simulator& sim, sim::Host& station, QueryEngine& engine,
              QueryServerConfig config = {});
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Forwards reactive violation/recovery events to subscribers and marks
  /// the detector for health rows. The detector must outlive the server.
  void attach(mon::ViolationDetector& detector);
  /// Forwards predictive warning/all-clear events likewise.
  void attach(mon::PredictiveDetector& detector);
  /// Forwards the monitor's quarantine enter/leave transitions as
  /// agent-health events.
  void attach_agent_events(mon::NetworkMonitor& monitor);

  /// Publishes an event frame to every subscriber.
  void publish(const Event& event);

  std::size_t subscriber_count() const { return subscribers_.size(); }
  QueryServerStats stats() const;
  std::uint16_t port() const { return config_.port; }

 private:
  struct Subscriber {
    sim::Ipv4Address address;
    std::uint16_t port = 0;
    bool operator==(const Subscriber&) const = default;
  };

  void on_packet(const sim::Ipv4Packet& packet);
  void handle(const Message& request, const sim::Ipv4Packet& packet);
  void reply(const sim::Ipv4Packet& request, const Message& response);
  bool send_to(sim::Ipv4Address address, std::uint16_t port,
               const Message& message);
  obs::Counter& endpoint_counter(const std::string& endpoint);

  sim::Simulator& sim_;
  sim::Host& station_;
  QueryEngine& engine_;
  QueryServerConfig config_;
  std::vector<Subscriber> subscribers_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* window_requests_ = nullptr;
  obs::Counter* health_requests_ = nullptr;
  obs::Counter* modules_requests_ = nullptr;
  obs::Counter* subscribes_ = nullptr;
  obs::Counter* unsubscribes_ = nullptr;
  obs::Counter* bad_requests_ = nullptr;
  obs::Counter* events_published_ = nullptr;
  obs::Counter* bytes_received_ = nullptr;
  obs::Counter* bytes_sent_ = nullptr;
  obs::Gauge* subscriber_gauge_ = nullptr;
  obs::HistogramMetric* latency_ = nullptr;
};

}  // namespace netqos::query
