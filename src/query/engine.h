// Query engine: read-only windowed aggregates and health snapshots over a
// NetworkMonitor.
//
// The CoMo-style split: the monitor core keeps polling and appending to
// its bounded HistoryStores; this engine is a pure reader that answers
// "min/mean/max/p95 over [begin, end)" grouped by interface, path, or
// host, and point-in-time health (scheduler agent states, path staleness,
// violation and predictive-warning status). It owns no storage and
// mutates nothing, so any number of concurrent readers — the wire server
// fans in here — cost the poll hot path nothing.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "monitor/monitor.h"
#include "monitor/qos.h"
#include "query/proto.h"

namespace netqos::query {

class QueryEngine {
 public:
  /// The monitor (and any attached detectors) must outlive the engine.
  explicit QueryEngine(const mon::NetworkMonitor& monitor)
      : monitor_(monitor) {}

  /// Reactive violation state feeds PathHealthRow::violated when set.
  void set_violation_detector(const mon::ViolationDetector* detector) {
    violations_ = detector;
  }
  /// Predictive warning state feeds PathHealthRow::warning when set.
  void set_predictive_detector(const mon::PredictiveDetector* detector) {
    predictive_ = detector;
  }

  /// Active-probing status source. The engine stays decoupled from
  /// src/probe: whoever owns estimators (netqosmon) snapshots them into
  /// rows; health() appends the provider's rows verbatim.
  using ProbeStatusProvider = std::function<std::vector<ProbeStatusRow>()>;
  void set_probe_status_provider(ProbeStatusProvider provider) {
    probe_status_ = std::move(provider);
  }

  /// Evaluates a windowed query at server time `now`. end == 0 resolves
  /// to now; begin < 0 to end - |begin| (a trailing window). Rows come
  /// back key-sorted; series with no samples in the window are omitted.
  WindowResponse window(const WindowRequest& request, SimTime now) const;

  /// Point-in-time health: every polled agent's scheduler state plus
  /// every monitored path's current usage, staleness, and detector state.
  HealthResponse health(SimTime now) const;

  /// Registered measurement modules with their delivery/error telemetry
  /// and self-description notes.
  ModulesResponse modules(SimTime now) const;

  const mon::NetworkMonitor& monitor() const { return monitor_; }

 private:
  void interface_rows(const std::string& selector, SimTime begin,
                      SimTime end, std::vector<WindowRow>& rows) const;
  void path_rows(const std::string& selector, SimTime begin, SimTime end,
                 std::vector<WindowRow>& rows) const;
  void host_rows(const std::string& selector, SimTime begin, SimTime end,
                 std::vector<WindowRow>& rows) const;

  const mon::NetworkMonitor& monitor_;
  const mon::ViolationDetector* violations_ = nullptr;
  const mon::PredictiveDetector* predictive_ = nullptr;
  ProbeStatusProvider probe_status_;
};

}  // namespace netqos::query
