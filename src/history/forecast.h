// Bandwidth forecasting: EWMA smoothing and Holt linear trend.
//
// Single-sample available-bandwidth numbers are noisy (Ait Ali et al.,
// "End-to-End Available Bandwidth Measurement Tools"); smoothing makes
// them usable, and a linear trend over the smoothed level lets the
// monitor warn *before* a path's availability crosses a QoS requirement
// instead of after. Both estimators are streaming and O(1) per sample,
// time-aware for the monitor's (mostly, not exactly) regular poll
// cadence. All time handling is SimTime — no wall clocks (lint R4).
#pragma once

#include <cstddef>
#include <optional>

#include "common/stats.h"

namespace netqos::hist {

/// Exponentially weighted moving average over sample values.
class EwmaEstimator {
 public:
  explicit EwmaEstimator(double alpha = 0.3);

  void observe(double v);
  double value() const { return value_; }
  std::size_t samples() const { return samples_; }
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  std::size_t samples_ = 0;
};

/// Holt's linear (double-exponential) smoothing with irregular-interval
/// support: the trend state is per *second* of simulated time, so a late
/// or re-probed sample does not bend the slope.
class HoltForecaster {
 public:
  struct Config {
    double alpha = 0.5;  ///< level smoothing factor in (0, 1]
    double beta = 0.3;   ///< trend smoothing factor in (0, 1]
  };

  HoltForecaster();
  explicit HoltForecaster(Config config);

  /// Samples with t <= the previous observation are ignored (a duplicate
  /// or reordered poll carries no slope information).
  void observe(SimTime t, double v);

  std::size_t samples() const { return samples_; }
  double level() const { return level_; }
  /// Smoothed slope in value units per second of simulated time.
  double trend_per_second() const { return trend_; }

  /// Forecast value `ahead` simulated time after the last observation.
  double forecast_after(SimDuration ahead) const;

  /// Time until the linear forecast first drops below `threshold`:
  /// 0 when the level is already below it, nullopt when the trend is flat
  /// or rising (no predicted crossing).
  std::optional<SimDuration> time_until_below(double threshold) const;

  void reset();

 private:
  Config config_;
  double level_ = 0.0;
  double trend_ = 0.0;
  SimTime last_time_ = 0;
  std::size_t samples_ = 0;
};

/// Holt trend (value units per second) fitted over the samples of a
/// TimeSeries window [begin, end). 0 when fewer than two samples fall in
/// the window. This is the estimator analyze_window's trend column and
/// the PredictiveDetector share.
double holt_trend_per_second(const TimeSeries& series, SimTime begin,
                             SimTime end,
                             HoltForecaster::Config config = {});

}  // namespace netqos::hist
