#include "history/store.h"

#include <algorithm>
#include <stdexcept>

namespace netqos::hist {

RetentionPolicy RetentionPolicy::for_span(SimDuration raw_span,
                                          SimDuration sample_interval) {
  if (raw_span <= 0 || sample_interval <= 0) {
    throw std::invalid_argument("for_span needs positive span and interval");
  }
  RetentionPolicy policy;
  // +2 slack: the edge samples of a span straddle its boundaries.
  policy.raw_capacity =
      static_cast<std::size_t>(raw_span / sample_interval) + 2;
  // Cascade: 4x coarser buckets spanning 4x the raw horizon, then 16x.
  const SimDuration fine = std::max<SimDuration>(4 * sample_interval, 1);
  policy.tiers = {{fine, policy.raw_capacity},
                  {4 * fine, policy.raw_capacity}};
  return policy;
}

// ---------------------------------------------------------------- Series

Series::Series(const RetentionPolicy& policy)
    : raw_(0, policy.raw_capacity) {
  SimDuration previous = 0;
  tiers_.reserve(policy.tiers.size());
  for (const auto& tier : policy.tiers) {
    if (tier.width <= previous) {
      throw std::invalid_argument(
          "RetentionPolicy tier widths must be strictly ascending");
    }
    previous = tier.width;
    tiers_.emplace_back(tier.width, tier.capacity);
  }
}

Series::AppendOutcome Series::add(SimTime t, double v) {
  AppendOutcome outcome;
  bool evicted = false;
  if (raw_.add(t, v, &evicted) == RingTier::Append::kMerged) {
    ++outcome.merges;
  }
  if (evicted) ++outcome.evictions;
  for (RingTier& tier : tiers_) {
    if (tier.add(t, v, &evicted) == RingTier::Append::kMerged) {
      ++outcome.merges;
    }
    if (evicted) ++outcome.evictions;
  }
  return outcome;
}

std::optional<SimTime> Series::last_time() const {
  if (raw_.empty()) return std::nullopt;
  return raw_.newest().start;
}

const RingTier* Series::tier_for(SimTime begin, bool* complete) const {
  *complete = false;
  const RingTier* coarsest_nonempty = nullptr;
  if (const auto oldest = raw_.oldest_start();
      oldest.has_value() && *oldest <= begin) {
    *complete = true;
    return &raw_;
  }
  if (!raw_.empty()) coarsest_nonempty = &raw_;
  for (const RingTier& tier : tiers_) {
    if (const auto oldest = tier.oldest_start();
        oldest.has_value() && *oldest <= begin) {
      *complete = true;
      return &tier;
    }
    if (!tier.empty()) coarsest_nonempty = &tier;
  }
  return coarsest_nonempty;
}

WindowSummary Series::query(SimTime begin, SimTime end) const {
  WindowSummary summary;
  bool complete = false;
  const RingTier* tier = tier_for(begin, &complete);
  if (tier == nullptr) return summary;
  summary.resolution = tier->width();
  summary.complete = complete;

  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::vector<const Bucket*> hits;
  for (std::size_t i = 0; i < tier->size(); ++i) {
    const Bucket& bucket = tier->at(i);
    if (!tier->overlaps(bucket, begin, end)) continue;
    if (hits.empty() || bucket.min < min) min = bucket.min;
    if (hits.empty() || bucket.max > max) max = bucket.max;
    sum += bucket.sum;
    summary.samples += bucket.count;
    hits.push_back(&bucket);
  }
  summary.buckets = hits.size();
  if (summary.samples == 0) return summary;
  summary.min = min;
  summary.max = max;
  summary.mean = sum / static_cast<double>(summary.samples);

  // p95 via the shared fixed-bucket Histogram: 32 linear bins spanning
  // the window's own [min, max]. Bucket means enter count-weighted; on
  // the raw tier every bucket is a single sample, so this is the exact
  // per-sample distribution up to bin interpolation.
  if (max <= min) {
    summary.p95 = max;
  } else {
    constexpr std::size_t kBins = 32;
    std::vector<double> bounds;
    bounds.reserve(kBins);
    const double step = (max - min) / static_cast<double>(kBins);
    for (std::size_t i = 1; i <= kBins; ++i) {
      bounds.push_back(min + step * static_cast<double>(i));
    }
    Histogram histogram(std::move(bounds));
    for (const Bucket* bucket : hits) {
      for (std::size_t c = 0; c < bucket->count; ++c) {
        histogram.add(bucket->mean());
      }
    }
    summary.p95 = histogram.percentile(0.95);
  }
  return summary;
}

void Series::materialize_raw(TimeSeries& out) const {
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    const Bucket& bucket = raw_.at(i);
    out.add(bucket.start, bucket.last);
  }
}

std::size_t Series::bucket_count() const {
  std::size_t total = raw_.size();
  for (const RingTier& tier : tiers_) total += tier.size();
  return total;
}

std::size_t Series::footprint_bytes() const {
  std::size_t total = raw_.footprint_bytes();
  for (const RingTier& tier : tiers_) total += tier.footprint_bytes();
  return total;
}

// ----------------------------------------------------------- HistoryStore

HistoryStore::HistoryStore(RetentionPolicy policy)
    : policy_(std::move(policy)) {}

void HistoryStore::attach_metrics(obs::MetricsRegistry& registry,
                                  const std::string& store_label) {
  obs::Labels labels;
  if (!store_label.empty()) labels.push_back({"store", store_label});
  samples_ = &registry.counter("netqos_history_samples_total",
                               "Samples appended to the history store",
                               labels);
  merges_ = &registry.counter(
      "netqos_history_downsample_merges_total",
      "Samples folded into an existing bucket while downsampling", labels);
  evictions_ = &registry.counter(
      "netqos_history_evictions_total",
      "Oldest buckets evicted by the fixed-capacity rings", labels);
  queries_ = &registry.counter("netqos_history_queries_total",
                               "Windowed queries answered by the store",
                               labels);
  series_gauge_ = &registry.gauge("netqos_history_series",
                                  "Series tracked by the history store",
                                  labels);
  occupancy_gauge_ = &registry.gauge(
      "netqos_history_occupancy_buckets",
      "Buckets currently held across all series and tiers", labels);
  footprint_gauge_ = &registry.gauge(
      "netqos_history_footprint_bytes",
      "Bytes permanently reserved by all series' rings (flat in run "
      "length; grows only with the series count)", labels);
}

Series& HistoryStore::series(const std::string& key) {
  auto it = series_.find(key);
  if (it == series_.end()) {
    it = series_.emplace(key, Series(policy_)).first;
    if (series_gauge_ != nullptr) {
      series_gauge_->set(static_cast<double>(series_.size()));
    }
    if (footprint_gauge_ != nullptr) {
      footprint_gauge_->set(static_cast<double>(footprint_bytes()));
    }
  }
  return it->second;
}

void HistoryStore::append(const std::string& key, SimTime t, double v) {
  const Series::AppendOutcome outcome = series(key).add(t, v);
  if (samples_ != nullptr) {
    samples_->inc();
    merges_->inc(outcome.merges);
    evictions_->inc(outcome.evictions);
    // Each append touches the raw ring plus every tier; a touch either
    // opens a bucket (+1) or merges (0), and evictions retire one each.
    // Tracking the delta keeps the gauge O(1) per append.
    occupancy_gauge_->add(
        static_cast<double>(1 + policy_.tiers.size() - outcome.merges) -
        static_cast<double>(outcome.evictions));
  }
}

const Series* HistoryStore::find(const std::string& key) const {
  auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second;
}

WindowSummary HistoryStore::query(const std::string& key, SimTime begin,
                                  SimTime end) const {
  if (queries_ != nullptr) queries_->inc();
  const Series* entry = find(key);
  if (entry == nullptr) return {};
  return entry->query(begin, end);
}

std::vector<std::string> HistoryStore::keys() const {
  std::vector<std::string> keys;
  keys.reserve(series_.size());
  for (const auto& [key, value] : series_) keys.push_back(key);
  return keys;
}

std::size_t HistoryStore::footprint_bytes() const {
  std::size_t total = 0;
  for (const auto& [key, entry] : series_) total += entry.footprint_bytes();
  return total;
}

std::size_t HistoryStore::bytes_per_series() const {
  return Series(policy_).footprint_bytes();
}

// ------------------------------------------------------------------ keys

std::string interface_series_key(const std::string& node,
                                 const std::string& if_descr) {
  return "if:" + node + "/" + if_descr;
}

std::string path_series_key(const std::string& from, const std::string& to,
                            const char* metric) {
  const bool ordered = from <= to;
  return "path:" + (ordered ? from : to) + "|" + (ordered ? to : from) +
         ":" + metric;
}

std::string connection_series_key(std::size_t connection) {
  return "conn:" + std::to_string(connection);
}

}  // namespace netqos::hist
