// Fixed-capacity time-series ring tier.
//
// One tier of the multi-resolution history store: a circular buffer of
// aggregate buckets. A tier with width 0 is a *raw* tier — every sample
// becomes its own bucket — while a tier with width W streams samples into
// W-aligned buckets keeping min/mean/max/last, so any retention horizon
// costs O(capacity) memory regardless of run length. Appending past
// capacity evicts the oldest bucket; nothing ever reallocates after
// construction, which is what makes the store's footprint provably flat.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/sim_time.h"

namespace netqos::hist {

/// One aggregate bucket: the streaming summary of every sample whose time
/// fell into [start, start + width). Raw tiers hold exactly one sample
/// per bucket, so min == mean == max == last there.
struct Bucket {
  SimTime start = 0;
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double last = 0.0;

  double mean() const {
    return count != 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

class RingTier {
 public:
  /// What an append did, for the store's downsample instrumentation.
  enum class Append {
    kNewBucket,  ///< opened a fresh bucket (possibly evicting the oldest)
    kMerged,     ///< folded into the newest bucket (streaming downsample)
  };

  /// `width` 0 makes a raw tier; otherwise samples are bucketed into
  /// width-aligned windows. `capacity` must be >= 1.
  RingTier(SimDuration width, std::size_t capacity);

  /// Appends one sample. Sample times are expected non-decreasing (the
  /// monitor's poll rounds are); a sample older than the newest bucket is
  /// folded into that bucket rather than reordering history. Sets
  /// `*evicted` when the append pushed the oldest bucket out.
  Append add(SimTime t, double v, bool* evicted = nullptr);

  SimDuration width() const { return width_; }
  std::size_t capacity() const { return buckets_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Bucket by age: index 0 is the oldest retained bucket.
  const Bucket& at(std::size_t index) const;
  const Bucket& newest() const { return at(size_ - 1); }

  /// Start time of the oldest retained bucket; nullopt when empty. A
  /// query window beginning at or after this is fully covered.
  std::optional<SimTime> oldest_start() const;

  /// True when the bucket overlaps [begin, end): raw buckets are points,
  /// width tiers cover [start, start + width).
  bool overlaps(const Bucket& bucket, SimTime begin, SimTime end) const;

  /// Bytes permanently reserved by this tier: the preallocated bucket
  /// array. Independent of how many samples were ever appended.
  std::size_t footprint_bytes() const {
    return buckets_.size() * sizeof(Bucket);
  }

 private:
  /// Start of the bucket containing t (identity for raw tiers).
  SimTime bucket_start(SimTime t) const;

  SimDuration width_;
  std::vector<Bucket> buckets_;  ///< circular storage, never reallocated
  std::size_t head_ = 0;         ///< index of the oldest bucket
  std::size_t size_ = 0;
};

}  // namespace netqos::hist
