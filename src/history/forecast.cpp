#include "history/forecast.h"

#include <stdexcept>

namespace netqos::hist {

EwmaEstimator::EwmaEstimator(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("EWMA alpha must be in (0, 1]");
  }
}

void EwmaEstimator::observe(double v) {
  value_ = samples_ == 0 ? v : alpha_ * v + (1.0 - alpha_) * value_;
  ++samples_;
}

void EwmaEstimator::reset() {
  value_ = 0.0;
  samples_ = 0;
}

HoltForecaster::HoltForecaster() : HoltForecaster(Config{}) {}

HoltForecaster::HoltForecaster(Config config) : config_(config) {
  if (config.alpha <= 0.0 || config.alpha > 1.0 || config.beta <= 0.0 ||
      config.beta > 1.0) {
    throw std::invalid_argument("Holt alpha/beta must be in (0, 1]");
  }
}

void HoltForecaster::observe(SimTime t, double v) {
  if (samples_ == 0) {
    level_ = v;
    trend_ = 0.0;
    last_time_ = t;
    samples_ = 1;
    return;
  }
  if (t <= last_time_) return;
  const double dt = to_seconds(t - last_time_);
  const double previous_level = level_;
  level_ = config_.alpha * v +
           (1.0 - config_.alpha) * (level_ + trend_ * dt);
  trend_ = config_.beta * ((level_ - previous_level) / dt) +
           (1.0 - config_.beta) * trend_;
  last_time_ = t;
  ++samples_;
}

double HoltForecaster::forecast_after(SimDuration ahead) const {
  return level_ + trend_ * to_seconds(ahead);
}

std::optional<SimDuration> HoltForecaster::time_until_below(
    double threshold) const {
  if (samples_ == 0) return std::nullopt;
  if (level_ < threshold) return SimDuration{0};
  if (trend_ >= 0.0) return std::nullopt;
  const double seconds_until = (level_ - threshold) / -trend_;
  return from_seconds(seconds_until);
}

void HoltForecaster::reset() {
  level_ = 0.0;
  trend_ = 0.0;
  last_time_ = 0;
  samples_ = 0;
}

double holt_trend_per_second(const TimeSeries& series, SimTime begin,
                             SimTime end, HoltForecaster::Config config) {
  HoltForecaster holt(config);
  for (const TimePoint& point : series.points()) {
    if (point.time >= begin && point.time < end) {
      holt.observe(point.time, point.value);
    }
  }
  return holt.samples() >= 2 ? holt.trend_per_second() : 0.0;
}

}  // namespace netqos::hist
