#include "history/ring.h"

#include <stdexcept>

namespace netqos::hist {

RingTier::RingTier(SimDuration width, std::size_t capacity) : width_(width) {
  if (capacity == 0) {
    throw std::invalid_argument("RingTier capacity must be >= 1");
  }
  if (width < 0) {
    throw std::invalid_argument("RingTier width must be >= 0");
  }
  // The whole ring is allocated up front: memory is fixed at construction
  // and no append can ever reallocate.
  buckets_.resize(capacity);
}

SimTime RingTier::bucket_start(SimTime t) const {
  if (width_ == 0) return t;
  // Floor division that stays aligned for negative times too (SimTime is
  // signed, although the simulator never goes below zero).
  SimTime q = t / width_;
  if (t % width_ != 0 && t < 0) --q;
  return q * width_;
}

const Bucket& RingTier::at(std::size_t index) const {
  if (index >= size_) throw std::out_of_range("RingTier::at");
  return buckets_[(head_ + index) % buckets_.size()];
}

std::optional<SimTime> RingTier::oldest_start() const {
  if (size_ == 0) return std::nullopt;
  return buckets_[head_].start;
}

bool RingTier::overlaps(const Bucket& bucket, SimTime begin,
                        SimTime end) const {
  if (width_ == 0) return bucket.start >= begin && bucket.start < end;
  return bucket.start < end && bucket.start + width_ > begin;
}

RingTier::Append RingTier::add(SimTime t, double v, bool* evicted) {
  if (evicted != nullptr) *evicted = false;
  const SimTime start = bucket_start(t);

  if (size_ != 0) {
    Bucket& newest_bucket = buckets_[(head_ + size_ - 1) % buckets_.size()];
    // Merge into the newest bucket when t lands in (or before) it: the
    // streaming downsample path for width tiers, and the out-of-order
    // fold for raw tiers.
    if (start <= newest_bucket.start) {
      ++newest_bucket.count;
      newest_bucket.sum += v;
      newest_bucket.last = v;
      if (v < newest_bucket.min) newest_bucket.min = v;
      if (v > newest_bucket.max) newest_bucket.max = v;
      return Append::kMerged;
    }
  }

  Bucket fresh;
  fresh.start = start;
  fresh.count = 1;
  fresh.min = fresh.max = fresh.sum = fresh.last = v;

  if (size_ < buckets_.size()) {
    buckets_[(head_ + size_) % buckets_.size()] = fresh;
    ++size_;
  } else {
    // Evict the oldest bucket in place.
    buckets_[head_] = fresh;
    head_ = (head_ + 1) % buckets_.size();
    if (evicted != nullptr) *evicted = true;
  }
  return Append::kNewBucket;
}

}  // namespace netqos::hist
