// Bounded multi-resolution history store with a windowed query engine.
//
// The paper's monitor reports only the instantaneous available bandwidth
// A = min(a_1..a_n) per poll round; consumers like the DeSiDeRaTa RM
// layer need *windowed* answers ("min/mean/p95 available on path(A,B)
// over the last w seconds") and the monitor itself must not grow its
// memory with run length. The store keeps every series in a raw ring
// plus a cascade of coarser aggregate tiers (streaming downsample with
// min/mean/max per bucket); queries are answered from the finest tier
// that still covers the window, so recent windows get raw precision and
// old windows degrade gracefully instead of disappearing.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "history/ring.h"
#include "obs/metrics.h"

namespace netqos::hist {

/// How much history each series keeps, per resolution. The defaults hold
/// ~34 minutes of 2 s raw polls, ~85 minutes at 10 s, and ~4.3 hours at
/// 60 s — all in a fixed ~44 KB per series.
struct RetentionPolicy {
  struct Tier {
    SimDuration width = 0;
    std::size_t capacity = 0;
  };

  std::size_t raw_capacity = 1024;
  /// Downsampled tiers, finest first; widths must be strictly ascending.
  std::vector<Tier> tiers = {{10 * kSecond, 512}, {60 * kSecond, 256}};

  /// Policy sized so the raw ring spans `raw_span` of samples arriving
  /// every `sample_interval`, with the default downsample cascade scaled
  /// to cover ~16x that span. Used by netqosmon --history-retention.
  static RetentionPolicy for_span(SimDuration raw_span,
                                  SimDuration sample_interval);
};

/// Answer to a windowed query over [begin, end).
struct WindowSummary {
  std::size_t samples = 0;  ///< underlying raw samples aggregated
  std::size_t buckets = 0;  ///< buckets the answer was assembled from
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  /// Approximate 95th percentile (Histogram::percentile over the window's
  /// bucket means, count-weighted; exact sample values on the raw tier).
  double p95 = 0.0;
  /// Width of the tier that answered (0 = raw resolution).
  SimDuration resolution = 0;
  /// True when the answering tier's retained history reaches back to
  /// `begin`; false means the window start predates retention and the
  /// summary covers only the surviving suffix.
  bool complete = false;
};

/// One series: a raw ring plus the downsample cascade.
class Series {
 public:
  explicit Series(const RetentionPolicy& policy);

  struct AppendOutcome {
    std::size_t merges = 0;     ///< buckets folded by downsampling
    std::size_t evictions = 0;  ///< oldest buckets pushed out
  };
  AppendOutcome add(SimTime t, double v);

  WindowSummary query(SimTime begin, SimTime end) const;

  const RingTier& raw() const { return raw_; }
  const std::vector<RingTier>& tiers() const { return tiers_; }

  /// Copies the raw ring (oldest first) into a TimeSeries — the bridge to
  /// every consumer of the paper-figure series API. Bit-identical to the
  /// unbounded history as long as nothing has been evicted.
  void materialize_raw(TimeSeries& out) const;

  /// Total retained samples across all resolutions (for occupancy gauges).
  std::size_t bucket_count() const;
  /// Fixed preallocated bytes across all tiers.
  std::size_t footprint_bytes() const;

  std::optional<SimTime> last_time() const;

 private:
  /// Finest tier whose retention still reaches `begin` (falls back to the
  /// coarsest non-empty tier). Nullptr when the series is empty.
  const RingTier* tier_for(SimTime begin, bool* complete) const;

  RingTier raw_;
  std::vector<RingTier> tiers_;
};

/// Keyed collection of Series, all sharing one retention policy, with
/// optional telemetry. Key naming convention (helpers below):
/// "if:<node>/<ifDescr>", "path:<a>|<b>:used" / ":avail", "conn:<index>".
class HistoryStore {
 public:
  explicit HistoryStore(RetentionPolicy policy = {});

  /// Registers the store's instruments (samples, downsample merges,
  /// evictions, queries, series/occupancy gauges) in `registry`. A
  /// non-empty `store_label` becomes a {store="..."} label so several
  /// stores (per-interface vs path history) can share one registry
  /// without clobbering each other's gauges.
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& store_label = "");

  void append(const std::string& key, SimTime t, double v);

  /// Series lookup; nullptr when the key has never been appended to.
  const Series* find(const std::string& key) const;

  /// Windowed query; a summary with samples == 0 when the key is unknown.
  WindowSummary query(const std::string& key, SimTime begin,
                      SimTime end) const;

  std::size_t series_count() const { return series_.size(); }
  std::vector<std::string> keys() const;

  /// Fixed bytes reserved by all series' rings. Grows only when a new
  /// *series* appears, never with samples appended — the bound the
  /// duration-invariance tests pin.
  std::size_t footprint_bytes() const;
  /// footprint_bytes() for one hypothetical series under this policy.
  std::size_t bytes_per_series() const;

  const RetentionPolicy& policy() const { return policy_; }

 private:
  Series& series(const std::string& key);

  RetentionPolicy policy_;
  std::map<std::string, Series> series_;

  obs::Counter* samples_ = nullptr;
  obs::Counter* merges_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* queries_ = nullptr;
  obs::Gauge* series_gauge_ = nullptr;
  obs::Gauge* occupancy_gauge_ = nullptr;
  obs::Gauge* footprint_gauge_ = nullptr;
};

/// Store key for a (node, ifDescr) interface rate series.
std::string interface_series_key(const std::string& node,
                                 const std::string& if_descr);
/// Store key for a path metric ("used" / "avail"); endpoint order is
/// normalized so (a,b) and (b,a) share a series.
std::string path_series_key(const std::string& from, const std::string& to,
                            const char* metric);
/// Store key for a per-connection used-bandwidth series.
std::string connection_series_key(std::size_t connection);

}  // namespace netqos::hist
