// Asynchronous SNMP manager-side client.
//
// This is the monitor's polling transport: it sends requests over the
// simulated network, matches responses by request-id, and retries on
// timeout. Everything is callback-driven on the discrete-event loop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_time.h"
#include "netsim/simulator.h"
#include "netsim/udp.h"
#include "obs/metrics.h"
#include "snmp/pdu.h"

namespace netqos::snmp {

struct ClientConfig {
  SimDuration timeout = 1 * kSecond;
  int retries = 2;  ///< resends after the first attempt
  SnmpVersion version = SnmpVersion::kV2c;
  /// Registry the client's counters live in. When null the client owns a
  /// private registry (inspect via metrics()); passing a shared one lets
  /// a whole process export through a single endpoint.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Snapshot of the client's transport counters, assembled from the
/// metrics registry (the single source of truth).
struct ClientStats {
  std::uint64_t requests_sent = 0;   ///< including retries
  std::uint64_t responses = 0;
  std::uint64_t timeouts = 0;        ///< final timeouts after all retries
  std::uint64_t retries = 0;
  std::uint64_t mismatched = 0;      ///< responses with unknown request id
  /// SNMP payload octets on the wire (excluding UDP/IP/Ethernet framing),
  /// for monitoring-overhead accounting.
  std::uint64_t payload_bytes_sent = 0;
  std::uint64_t payload_bytes_received = 0;
};

struct SnmpResult {
  enum class Status { kOk, kTimeout, kErrorResponse, kSendFailed };

  Status status = Status::kTimeout;
  ErrorStatus error_status = ErrorStatus::kNoError;
  std::int32_t error_index = 0;
  std::vector<VarBind> varbinds;
  SimDuration rtt = 0;  ///< request send to response receipt (last attempt)
  int attempts = 0;

  bool ok() const { return status == Status::kOk; }
};

class SnmpClient {
 public:
  using Callback = std::function<void(SnmpResult)>;

  /// Binds an ephemeral source port on `stack`.
  SnmpClient(sim::Simulator& sim, sim::UdpStack& stack,
             ClientConfig config = {});
  ~SnmpClient();
  SnmpClient(const SnmpClient&) = delete;
  SnmpClient& operator=(const SnmpClient&) = delete;

  void get(sim::Ipv4Address agent, const std::string& community,
           std::vector<Oid> oids, Callback callback);
  void get_next(sim::Ipv4Address agent, const std::string& community,
                std::vector<Oid> oids, Callback callback);
  void get_bulk(sim::Ipv4Address agent, const std::string& community,
                std::vector<Oid> oids, std::int32_t non_repeaters,
                std::int32_t max_repetitions, Callback callback);

  /// Transport counters, read back from the metrics registry.
  ClientStats stats() const;
  /// The registry the client's instruments live in.
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const ClientConfig& config() const { return config_; }
  std::size_t outstanding() const { return pending_.size(); }

 private:
  struct Pending {
    Bytes wire;
    sim::Ipv4Address agent;
    Callback callback;
    sim::EventId timeout_event = 0;
    SimTime last_send = 0;
    int attempts = 0;
  };

  void send_request(sim::Ipv4Address agent, const std::string& community,
                    Pdu pdu, Callback callback);
  void transmit(std::int32_t request_id);
  void on_timeout(std::int32_t request_id);
  void on_packet(const sim::Ipv4Packet& packet);

  sim::Simulator& sim_;
  sim::UdpStack& stack_;
  ClientConfig config_;
  std::uint16_t src_port_;
  std::int32_t next_request_id_ = 1;
  std::unordered_map<std::int32_t, Pending> pending_;

  std::unique_ptr<obs::MetricsRegistry> own_metrics_;
  obs::MetricsRegistry* metrics_;  ///< own_metrics_ or config-provided
  obs::Counter* requests_sent_;
  obs::Counter* responses_;
  obs::Counter* timeouts_;
  obs::Counter* retries_;
  obs::Counter* mismatched_;
  obs::Counter* bytes_sent_;
  obs::Counter* bytes_received_;
  obs::HistogramMetric* rtt_histogram_;
};

}  // namespace netqos::snmp
