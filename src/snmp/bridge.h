// Bridge MIB binding (RFC 1493 subset) for switches.
//
// Serves dot1dTpFdbPort — the switch port each learned MAC address lives
// behind — from the live forwarding database. Registered through a MIB
// refresh hook because the FDB grows as the switch learns; rows appear
// and disappear between queries. This is the data source for the
// dynamic-topology-discovery extension (paper §5 future work).
#pragma once

#include "netsim/switch.h"
#include "snmp/mib.h"

namespace netqos::snmp {

/// Installs dot1dTpFdbPort on the agent's MIB, reflecting `sw`'s live
/// forwarding database. Port numbers are 1-based positions in the
/// switch's interface list, matching the ifTable indices deploy_agents
/// produces for the same switch.
void register_bridge_mib(MibTree& mib, const sim::Switch& sw);

/// Converts a MAC to its dot1dTpFdbPort instance OID suffix.
Oid fdb_instance(const sim::MacAddress& mac);

}  // namespace netqos::snmp
