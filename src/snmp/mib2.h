// MIB-II bindings: system group + interfaces table served from live
// simulator NICs.
//
// The ifTable can be served through a snapshot cache, as real agents do:
// a query is answered from the current snapshot immediately, and the
// snapshot is refreshed asynchronously a short (jittered) delay later.
// The counter values a manager sees therefore lag each poll by a varying
// amount, so octets can be "counted in a later SNMP message instead of an
// earlier one, resulting in an abnormally small value followed by an
// abnormally large one" — the paper's §4.3.1 polling-delay artifact,
// reproduced mechanically. The worst-case individual rate error is
// (refresh-delay variation) / (poll interval): the defaults put a 2 s
// poller in the paper's observed 5-16% band. Caching can be disabled to
// serve live counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "netsim/nic.h"
#include "netsim/simulator.h"
#include "snmp/mib.h"

namespace netqos::snmp {

/// Registers sysDescr/sysUpTime/sysName. sysUpTime counts TimeTicks
/// (centiseconds) since `epoch` and is always live — only the counter
/// table is cached, exactly as in real agents.
void register_system_group(MibTree& mib, sim::Simulator& sim,
                           const std::string& sys_name, SimTime epoch = 0);

struct IfTableConfig {
  /// false: serve live counters (no cache, no artifact).
  bool cached = false;
  /// Base latency of the post-query snapshot refresh.
  SimDuration refresh_delay = 50 * kMillisecond;
  /// Uniform extra refresh latency, modelling agent scheduling jitter.
  SimDuration refresh_jitter = 120 * kMillisecond;
  /// A rare scheduling hiccup adds `hiccup_delay` on top (the paper's
  /// occasional 16% outlier).
  double hiccup_probability = 0.02;
  SimDuration hiccup_delay = 220 * kMillisecond;
  std::uint64_t seed = 0x1f7ab1e;
};

/// Serves ifNumber and the paper's ifEntry columns (Table 1 set plus
/// ifPhysAddress and discard counters) for an ordered list of NICs.
/// Interface indices are 1-based positions in `nics`.
class Mib2IfTable {
 public:
  Mib2IfTable(MibTree& mib, sim::Simulator& sim,
              std::vector<const sim::Nic*> nics, IfTableConfig config = {});
  ~Mib2IfTable();
  Mib2IfTable(const Mib2IfTable&) = delete;
  Mib2IfTable& operator=(const Mib2IfTable&) = delete;

  std::size_t interface_count() const { return nics_.size(); }
  /// 1-based ifIndex of a NIC, or 0 if not in this table.
  std::uint32_t index_of(const sim::Nic& nic) const;

  bool cached() const { return config_.cached; }

  /// Number of snapshot refreshes taken so far (diagnostics).
  std::uint64_t refreshes() const { return refreshes_; }

 private:
  /// The counters served for NIC i: live, or the latest snapshot (which
  /// also arms the asynchronous post-query refresh).
  const sim::InterfaceCounters& counters(std::size_t i);
  void take_snapshot();
  void arm_refresh();

  /// 64-bit totals backing the ifXTable HC columns.
  struct HcCounters {
    std::uint64_t in_octets = 0;
    std::uint64_t out_octets = 0;
  };
  HcCounters hc_counters(std::size_t i);

  sim::Simulator& sim_;
  std::vector<const sim::Nic*> nics_;
  IfTableConfig config_;
  Xoshiro256 rng_;
  std::vector<sim::InterfaceCounters> snapshot_;
  std::vector<HcCounters> hc_snapshot_;
  bool refresh_pending_ = false;
  std::uint64_t refreshes_ = 0;
};

}  // namespace netqos::snmp
