#include "snmp/mib.h"

namespace netqos::snmp {

void MibTree::register_object(Oid instance, Provider provider) {
  objects_[std::move(instance)] = std::move(provider);
}

void MibTree::register_constant(Oid instance, SnmpValue value) {
  register_object(std::move(instance),
                  [value = std::move(value)] { return value; });
}

void MibTree::unregister_object(const Oid& instance) {
  objects_.erase(instance);
}

void MibTree::unregister_subtree(const Oid& root) {
  auto it = objects_.lower_bound(root);
  while (it != objects_.end() && it->first.starts_with(root)) {
    it = objects_.erase(it);
  }
}

void MibTree::add_refresh_hook(RefreshHook hook) {
  hooks_.push_back(std::move(hook));
}

void MibTree::run_hooks() {
  if (in_hook_) return;  // hooks may re-register objects, not re-enter
  in_hook_ = true;
  for (const auto& hook : hooks_) hook(*this);
  in_hook_ = false;
}

std::optional<SnmpValue> MibTree::get(const Oid& instance) {
  run_hooks();
  auto it = objects_.find(instance);
  if (it == objects_.end()) return std::nullopt;
  return it->second();
}

std::optional<std::pair<Oid, SnmpValue>> MibTree::get_next(const Oid& oid) {
  run_hooks();
  auto it = objects_.upper_bound(oid);
  if (it == objects_.end()) return std::nullopt;
  return std::make_pair(it->first, it->second());
}

}  // namespace netqos::snmp
