#include "snmp/walker.h"

#include <stdexcept>

namespace netqos::snmp {

namespace {

/// The prefetched ifNumber is wire data — only a hint for reserve().
/// Never let a hostile agent make us pre-allocate gigabytes.
constexpr std::int64_t kMaxPrefetchRows = 1 << 20;

}  // namespace

SubtreeWalker::SubtreeWalker(SnmpClient& client, std::size_t bulk_size)
    : client_(client), bulk_size_(bulk_size == 0 ? 1 : bulk_size) {}

void SubtreeWalker::walk(sim::Ipv4Address agent, const std::string& community,
                         Oid root, Callback callback) {
  if (busy_) {
    throw std::logic_error("SubtreeWalker already walking");
  }
  busy_ = true;
  agent_ = agent;
  community_ = community;
  root_ = std::move(root);
  cursor_ = root_;
  collected_ = WalkResult{};
  callback_ = std::move(callback);
  if (prefetch_if_number_) {
    prefetch();
  } else {
    step();
  }
}

void SubtreeWalker::prefetch() {
  client_.get(agent_, community_, {mib2::kIfNumber.child(0)},
              [this](SnmpResult result) {
                if (result.ok() && result.varbinds.size() == 1) {
                  if (const auto* rows = std::get_if<std::int64_t>(
                          &result.varbinds[0].value);
                      rows != nullptr && *rows > 0 &&
                      *rows <= kMaxPrefetchRows) {
                    collected_.varbinds.reserve(
                        static_cast<std::size_t>(*rows));
                  }
                }
                step();
              });
}

void SubtreeWalker::step() {
  if (client_.config().version == SnmpVersion::kV1) {
    // SNMPv1 has no GETBULK (RFC 1157): chain plain GETNEXT requests.
    client_.get_next(agent_, community_, {cursor_}, [this](SnmpResult r) {
      on_result(std::move(r));
    });
    return;
  }
  client_.get_bulk(agent_, community_, {cursor_}, /*non_repeaters=*/0,
                   static_cast<std::int32_t>(bulk_size_),
                   [this](SnmpResult result) { on_result(std::move(result)); });
}

void SubtreeWalker::on_result(SnmpResult result) {
  if (!result.ok()) {
    // A v1 GETNEXT past the last object answers noSuchName — that is the
    // normal end-of-walk signal, not a failure (RFC 1157 §4.1.3).
    if (result.status == SnmpResult::Status::kErrorResponse &&
        result.error_status == ErrorStatus::kNoSuchName &&
        client_.config().version == SnmpVersion::kV1) {
      finish("");
      return;
    }
    finish(result.status == SnmpResult::Status::kTimeout
               ? "timeout"
               : "error response: " +
                     std::string(error_status_name(result.error_status)));
    return;
  }
  if (result.varbinds.empty()) {
    finish("");
    return;
  }
  for (auto& vb : result.varbinds) {
    if (!vb.oid.starts_with(root_) || is_exception(vb.value)) {
      finish("");
      return;
    }
    // RFC 1905 §4.2.3: each returned name must be lexicographically
    // greater than the request's. A buggy or adversarial agent that
    // repeats or regresses OIDs would otherwise walk us forever.
    if (vb.oid <= cursor_) {
      finish("non-increasing OID in walk response");
      return;
    }
    cursor_ = vb.oid;
    collected_.varbinds.push_back(std::move(vb));
  }
  step();
}

void SubtreeWalker::finish(std::string error) {
  busy_ = false;
  collected_.ok = error.empty();
  collected_.error = std::move(error);
  Callback callback = std::move(callback_);
  callback(std::move(collected_));
}

}  // namespace netqos::snmp
