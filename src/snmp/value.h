// SNMP variable values (the ASN.1 / SMI types MIB-II uses).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "snmp/oid.h"

namespace netqos::snmp {

/// SMIv1/v2 application types carried distinctly so the codec round-trips
/// the exact wire tag.
struct Counter32 {
  std::uint32_t value = 0;
  bool operator==(const Counter32&) const = default;
};
struct Gauge32 {
  std::uint32_t value = 0;
  bool operator==(const Gauge32&) const = default;
};
struct TimeTicks {
  std::uint32_t value = 0;  ///< hundredths of a second
  bool operator==(const TimeTicks&) const = default;
};
struct Counter64 {
  std::uint64_t value = 0;
  bool operator==(const Counter64&) const = default;
};
struct IpAddressValue {
  std::uint32_t value = 0;  ///< host order
  bool operator==(const IpAddressValue&) const = default;
};
struct Null {
  bool operator==(const Null&) const = default;
};

/// SNMPv2c varbind exceptions (RFC 1905 §3): returned in place of a value.
enum class VarBindException : std::uint8_t {
  kNoSuchObject = 0x80,
  kNoSuchInstance = 0x81,
  kEndOfMibView = 0x82,
};

using SnmpValue =
    std::variant<Null, std::int64_t, std::string, Oid, IpAddressValue,
                 Counter32, Gauge32, TimeTicks, Counter64, VarBindException>;

/// Human-readable rendering (for logs and example output).
std::string value_to_string(const SnmpValue& value);

/// Convenience extractors; throw std::bad_variant_access on mismatch.
std::uint32_t as_counter32(const SnmpValue& value);
std::uint32_t as_gauge32(const SnmpValue& value);
std::uint32_t as_timeticks(const SnmpValue& value);
std::int64_t as_integer(const SnmpValue& value);

/// True when the value is a VarBindException marker.
bool is_exception(const SnmpValue& value);

}  // namespace netqos::snmp
