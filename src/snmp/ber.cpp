#include "snmp/ber.h"

namespace netqos::snmp::ber {
namespace {

/// Bytes needed for a minimal two's-complement encoding of `value`.
std::size_t signed_length(std::int64_t value) {
  std::size_t n = sizeof(value);
  // Drop leading bytes that are pure sign extension.
  while (n > 1) {
    const auto top = static_cast<std::uint8_t>(value >> ((n - 1) * 8));
    const auto next_msb =
        static_cast<std::uint8_t>(value >> ((n - 2) * 8)) & 0x80;
    if ((top == 0x00 && next_msb == 0) || (top == 0xff && next_msb != 0)) {
      --n;
    } else {
      break;
    }
  }
  return n;
}

/// Bytes for an unsigned encoding (leading 0x00 if the MSB is set).
std::size_t unsigned_length(std::uint64_t value) {
  std::size_t n = 1;
  while (value >> (n * 8) != 0 && n < 8) ++n;
  if ((value >> ((n - 1) * 8)) & 0x80) ++n;  // avoid sign-bit ambiguity
  return n;
}

std::size_t oid_content_length(const Oid& oid) {
  const auto& arcs = oid.arcs();
  if (arcs.size() < 2) {
    throw BerError("OID must have at least two arcs: " + oid.to_string());
  }
  auto base128_len = [](std::uint32_t v) {
    std::size_t n = 1;
    while (v >>= 7) ++n;
    return n;
  };
  std::size_t len = base128_len(arcs[0] * 40 + arcs[1]);
  for (std::size_t i = 2; i < arcs.size(); ++i) len += base128_len(arcs[i]);
  return len;
}

void write_base128(ByteWriter& out, std::uint32_t v) {
  std::uint8_t stack[5];
  std::size_t n = 0;
  do {
    stack[n++] = static_cast<std::uint8_t>(v & 0x7f);
    v >>= 7;
  } while (v != 0);
  while (n-- > 1) out.put_u8(stack[n] | 0x80);
  out.put_u8(stack[0]);
}

}  // namespace

void write_header(ByteWriter& out, std::uint8_t tag, std::size_t length) {
  out.put_u8(tag);
  if (length < 0x80) {
    out.put_u8(static_cast<std::uint8_t>(length));
    return;
  }
  // Long form: 0x80 | number-of-length-octets, then big-endian length.
  std::uint8_t stack[sizeof(std::size_t)];
  std::size_t n = 0;
  std::size_t rest = length;
  while (rest != 0) {
    stack[n++] = static_cast<std::uint8_t>(rest & 0xff);
    rest >>= 8;
  }
  out.put_u8(static_cast<std::uint8_t>(0x80 | n));
  while (n-- > 0) out.put_u8(stack[n]);
}

void write_integer(ByteWriter& out, std::int64_t value) {
  const std::size_t n = signed_length(value);
  write_header(out, kTagInteger, n);
  for (std::size_t i = n; i-- > 0;) {
    out.put_u8(static_cast<std::uint8_t>(value >> (i * 8)));
  }
}

void write_unsigned(ByteWriter& out, std::uint8_t tag, std::uint64_t value) {
  std::size_t n = unsigned_length(value);
  write_header(out, tag, n);
  if (n == 9) {
    // 64-bit value with the sign bit set: explicit leading zero octet
    // (shifting by 64 below would be undefined).
    out.put_u8(0x00);
    n = 8;
  }
  for (std::size_t i = n; i-- > 0;) {
    out.put_u8(static_cast<std::uint8_t>(value >> (i * 8)));
  }
}

void write_octet_string(ByteWriter& out, const std::string& value) {
  write_header(out, kTagOctetString, value.size());
  out.put_string(value);
}

void write_null(ByteWriter& out) { write_header(out, kTagNull, 0); }

void write_oid(ByteWriter& out, const Oid& oid) {
  write_header(out, kTagOid, oid_content_length(oid));
  const auto& arcs = oid.arcs();
  write_base128(out, arcs[0] * 40 + arcs[1]);
  for (std::size_t i = 2; i < arcs.size(); ++i) write_base128(out, arcs[i]);
}

void write_value(ByteWriter& out, const SnmpValue& value) {
  struct Visitor {
    ByteWriter& out;
    void operator()(Null) const { write_null(out); }
    void operator()(std::int64_t v) const { write_integer(out, v); }
    void operator()(const std::string& v) const {
      write_octet_string(out, v);
    }
    void operator()(const Oid& v) const { write_oid(out, v); }
    void operator()(IpAddressValue v) const {
      write_header(out, kTagIpAddress, 4);
      out.put_u32(v.value);
    }
    void operator()(Counter32 v) const {
      write_unsigned(out, kTagCounter32, v.value);
    }
    void operator()(Gauge32 v) const {
      write_unsigned(out, kTagGauge32, v.value);
    }
    void operator()(TimeTicks v) const {
      write_unsigned(out, kTagTimeTicks, v.value);
    }
    void operator()(Counter64 v) const {
      write_unsigned(out, kTagCounter64, v.value);
    }
    void operator()(VarBindException e) const {
      write_header(out, static_cast<std::uint8_t>(e), 0);
    }
  };
  std::visit(Visitor{out}, value);
}

void write_wrapped(ByteWriter& out, std::uint8_t tag, const Bytes& content) {
  write_header(out, tag, content.size());
  out.put_bytes(content);
}

std::size_t header_size(std::size_t content_length) {
  if (content_length < 0x80) return 2;
  std::size_t n = 0;
  while (content_length != 0) {
    ++n;
    content_length >>= 8;
  }
  return 2 + n;
}

std::size_t integer_size(std::int64_t value) {
  const std::size_t n = signed_length(value);
  return header_size(n) + n;
}

std::size_t unsigned_size(std::uint64_t value) {
  const std::size_t n = unsigned_length(value);
  return header_size(n) + n;
}

std::size_t octet_string_size(const std::string& value) {
  return header_size(value.size()) + value.size();
}

std::size_t oid_size(const Oid& oid) {
  const std::size_t n = oid_content_length(oid);
  return header_size(n) + n;
}

std::size_t value_size(const SnmpValue& value) {
  struct Visitor {
    std::size_t operator()(Null) const { return 2; }
    std::size_t operator()(std::int64_t v) const { return integer_size(v); }
    std::size_t operator()(const std::string& v) const {
      return octet_string_size(v);
    }
    std::size_t operator()(const Oid& v) const { return oid_size(v); }
    std::size_t operator()(IpAddressValue) const { return header_size(4) + 4; }
    std::size_t operator()(Counter32 v) const { return unsigned_size(v.value); }
    std::size_t operator()(Gauge32 v) const { return unsigned_size(v.value); }
    std::size_t operator()(TimeTicks v) const {
      return unsigned_size(v.value);
    }
    std::size_t operator()(Counter64 v) const {
      return unsigned_size(v.value);
    }
    std::size_t operator()(VarBindException) const { return 2; }
  };
  return std::visit(Visitor{}, value);
}

std::uint8_t read_header(ByteReader& in, std::size_t& length) {
  const std::uint8_t tag = in.get_u8();
  const std::uint8_t first = in.get_u8();
  if (first < 0x80) {
    length = first;
  } else {
    const std::size_t n = first & 0x7f;
    if (n == 0 || n > sizeof(std::size_t)) {
      throw BerError("unsupported length form");
    }
    length = 0;
    for (std::size_t i = 0; i < n; ++i) length = (length << 8) | in.get_u8();
  }
  if (length > in.remaining()) {
    throw BerError("declared length exceeds buffer");
  }
  return tag;
}

std::size_t expect_header(ByteReader& in, std::uint8_t tag) {
  std::size_t length = 0;
  const std::uint8_t got = read_header(in, length);
  if (got != tag) {
    throw BerError("expected tag " + std::to_string(tag) + ", got " +
                   std::to_string(got));
  }
  return length;
}

std::int64_t read_integer_content(ByteReader& in, std::size_t length) {
  if (length == 0 || length > 8) {
    throw BerError("bad INTEGER length " + std::to_string(length));
  }
  std::int64_t value = (in.peek_u8() & 0x80) ? -1 : 0;  // sign-extend
  for (std::size_t i = 0; i < length; ++i) {
    value = (value << 8) | in.get_u8();
  }
  return value;
}

std::uint64_t read_unsigned_content(ByteReader& in, std::size_t length) {
  if (length == 0 || length > 9) {
    throw BerError("bad unsigned length " + std::to_string(length));
  }
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < length; ++i) {
    const std::uint8_t byte = in.get_u8();
    if (i == 0 && length == 9 && byte != 0) {
      throw BerError("unsigned value exceeds 64 bits");
    }
    value = (value << 8) | byte;
  }
  return value;
}

Oid read_oid_content(ByteReader& in, std::size_t length) {
  if (length == 0) throw BerError("empty OID");
  const std::size_t end = in.position() + length;
  std::vector<std::uint32_t> arcs;
  bool first = true;
  while (in.position() < end) {
    std::uint32_t arc = 0;
    std::uint8_t byte;
    std::size_t septets = 0;
    do {
      if (in.position() >= end) throw BerError("truncated OID arc");
      byte = in.get_u8();
      if (++septets > 5) throw BerError("OID arc exceeds 32 bits");
      arc = (arc << 7) | (byte & 0x7f);
    } while (byte & 0x80);
    if (first) {
      // First subidentifier packs the first two arcs as X*40 + Y.
      arcs.push_back(arc < 80 ? arc / 40 : 2);
      arcs.push_back(arc < 80 ? arc % 40 : arc - 80);
      first = false;
    } else {
      arcs.push_back(arc);
    }
  }
  return Oid(std::move(arcs));
}

SnmpValue read_value(ByteReader& in) {
  std::size_t length = 0;
  const std::uint8_t tag = read_header(in, length);
  switch (tag) {
    case kTagNull:
      in.get_bytes(length);
      return Null{};
    case kTagInteger:
      return read_integer_content(in, length);
    case kTagOctetString:
      return in.get_string(length);
    case kTagOid:
      return read_oid_content(in, length);
    case kTagIpAddress: {
      if (length != 4) throw BerError("IpAddress must be 4 octets");
      return IpAddressValue{in.get_u32()};
    }
    case kTagCounter32:
      return Counter32{
          static_cast<std::uint32_t>(read_unsigned_content(in, length))};
    case kTagGauge32:
      return Gauge32{
          static_cast<std::uint32_t>(read_unsigned_content(in, length))};
    case kTagTimeTicks:
      return TimeTicks{
          static_cast<std::uint32_t>(read_unsigned_content(in, length))};
    case kTagCounter64:
      return Counter64{read_unsigned_content(in, length)};
    case 0x80:
    case 0x81:
    case 0x82:
      in.get_bytes(length);
      return static_cast<VarBindException>(tag);
    default:
      throw BerError("unsupported value tag " + std::to_string(tag));
  }
}

std::int64_t read_integer(ByteReader& in) {
  const std::size_t length = expect_header(in, kTagInteger);
  return read_integer_content(in, length);
}

std::string read_octet_string(ByteReader& in) {
  const std::size_t length = expect_header(in, kTagOctetString);
  return in.get_string(length);
}

Oid read_oid(ByteReader& in) {
  const std::size_t length = expect_header(in, kTagOid);
  return read_oid_content(in, length);
}

}  // namespace netqos::snmp::ber
