#include "snmp/trap.h"

#include <stdexcept>

#include "common/log.h"
#include "snmp/ber.h"

namespace netqos::snmp {

TrapListener::TrapListener(sim::UdpStack& stack, Callback callback,
                           std::uint16_t port)
    : stack_(stack), callback_(std::move(callback)), port_(port) {
  const bool ok = stack_.bind(
      port_, [this](const sim::Ipv4Packet& p) { handle(p); });
  if (!ok) {
    throw std::logic_error("trap port already bound");
  }
}

TrapListener::~TrapListener() { stack_.unbind(port_); }

void TrapListener::handle(const sim::Ipv4Packet& packet) {
  Message message;
  try {
    message = decode_message(packet.udp.payload);
  } catch (const BerError& e) {
    ++stats_.malformed;
    NETQOS_DEBUG() << "trap decode error: " << e.what();
    return;
  } catch (const BufferUnderflow& e) {
    // A truncated trap datagram underflows the reader before the BER
    // structure is even malformed; drop it the same way. Catching only
    // BerError here let PR 3's fuzzer crash the listener (lint rule R1).
    ++stats_.malformed;
    NETQOS_DEBUG() << "trap decode error: " << e.what();
    return;
  }
  // Classic v1 traps are translated to v2 notification form per
  // RFC 2576 §3.1: generic traps 0..5 map to snmpTraps.(g+1), and
  // enterprise-specific traps to enterprise.0.specific.
  if (message.trap_v1.has_value()) {
    const TrapV1Pdu& v1 = *message.trap_v1;
    TrapNotification trap;
    trap.source = packet.src;
    trap.community = message.community;
    trap.sys_uptime_ticks = v1.time_stamp_ticks;
    if (v1.generic_trap == GenericTrap::kEnterpriseSpecific) {
      trap.trap_oid = v1.enterprise.child(0).child(
          static_cast<std::uint32_t>(v1.specific_trap));
    } else {
      trap.trap_oid = Oid({1, 3, 6, 1, 6, 3, 1, 1, 5}).child(
          static_cast<std::uint32_t>(v1.generic_trap) + 1);
    }
    trap.varbinds = v1.varbinds;
    ++stats_.received;
    callback_(trap);
    return;
  }

  if (message.pdu.type != PduType::kSnmpV2Trap ||
      message.pdu.varbinds.size() < 2) {
    ++stats_.malformed;
    return;
  }

  TrapNotification trap;
  trap.source = packet.src;
  trap.community = message.community;
  if (const auto* ticks =
          std::get_if<TimeTicks>(&message.pdu.varbinds[0].value)) {
    trap.sys_uptime_ticks = ticks->value;
  }
  if (const auto* oid = std::get_if<Oid>(&message.pdu.varbinds[1].value)) {
    trap.trap_oid = *oid;
  } else {
    ++stats_.malformed;
    return;
  }
  trap.varbinds.assign(message.pdu.varbinds.begin() + 2,
                       message.pdu.varbinds.end());
  ++stats_.received;
  callback_(trap);
}

}  // namespace netqos::snmp
