#include "snmp/mib2.h"

#include "common/units.h"
#include "netsim/link.h"

namespace netqos::snmp {

void register_system_group(MibTree& mib, sim::Simulator& sim,
                           const std::string& sys_name, SimTime epoch) {
  mib.register_constant(mib2::kSysDescr.child(0),
                        std::string("netqos simulated agent"));
  mib.register_object(mib2::kSysUpTime.child(0), [&sim, epoch] {
    return SnmpValue(TimeTicks{to_timeticks(sim.now() - epoch)});
  });
  mib.register_constant(mib2::kSysName.child(0), sys_name);
}

Mib2IfTable::Mib2IfTable(MibTree& mib, sim::Simulator& sim,
                         std::vector<const sim::Nic*> nics,
                         IfTableConfig config)
    : sim_(sim),
      nics_(std::move(nics)),
      config_(config),
      rng_(config.seed) {
  snapshot_.resize(nics_.size());
  hc_snapshot_.resize(nics_.size());
  if (config_.cached) take_snapshot();

  mib.register_object(mib2::kIfNumber.child(0), [this] {
    return SnmpValue(static_cast<std::int64_t>(nics_.size()));
  });

  for (std::size_t i = 0; i < nics_.size(); ++i) {
    const std::uint32_t index = static_cast<std::uint32_t>(i + 1);
    const sim::Nic* nic = nics_[i];

    mib.register_constant(mib2::if_column(mib2::kIfIndexColumn, index),
                          static_cast<std::int64_t>(index));
    mib.register_constant(mib2::if_column(mib2::kIfDescrColumn, index),
                          nic->name());
    mib.register_object(mib2::if_column(mib2::kIfSpeedColumn, index),
                        [nic] {
                          return SnmpValue(Gauge32{
                              static_cast<std::uint32_t>(nic->speed())});
                        });
    const auto mac_octets = nic->mac().octets();
    mib.register_constant(
        mib2::if_column(mib2::kIfPhysAddressColumn, index),
        std::string(mac_octets.begin(), mac_octets.end()));
    // Carrier state is always served live (agents do not cache status).
    mib.register_object(
        mib2::if_column(mib2::kIfOperStatusColumn, index), [nic] {
          const bool up = nic->connected() && nic->link()->up();
          return SnmpValue(static_cast<std::int64_t>(up ? 1 : 2));
        });

    auto counter = [this, i](std::uint32_t sim::InterfaceCounters::*member) {
      return [this, i, member] {
        return SnmpValue(Counter32{counters(i).*member});
      };
    };
    using C = sim::InterfaceCounters;
    mib.register_object(mib2::if_column(mib2::kIfInOctetsColumn, index),
                        counter(&C::if_in_octets));
    mib.register_object(mib2::if_column(mib2::kIfInUcastPktsColumn, index),
                        counter(&C::if_in_ucast_pkts));
    mib.register_object(mib2::if_column(mib2::kIfInDiscardsColumn, index),
                        counter(&C::if_in_discards));
    mib.register_object(mib2::if_column(mib2::kIfOutOctetsColumn, index),
                        counter(&C::if_out_octets));
    mib.register_object(mib2::if_column(mib2::kIfOutUcastPktsColumn, index),
                        counter(&C::if_out_ucast_pkts));
    mib.register_object(mib2::if_column(mib2::kIfOutDiscardsColumn, index),
                        counter(&C::if_out_discards));

    // ifXTable (RFC 2863): high-capacity 64-bit octet counters, cached
    // under the same snapshot regime as the 32-bit table.
    mib.register_constant(mib2::ifx_column(mib2::kIfNameColumn, index),
                          nic->name());
    mib.register_object(
        mib2::ifx_column(mib2::kIfHCInOctetsColumn, index), [this, i] {
          return SnmpValue(Counter64{hc_counters(i).in_octets});
        });
    mib.register_object(
        mib2::ifx_column(mib2::kIfHCOutOctetsColumn, index), [this, i] {
          return SnmpValue(Counter64{hc_counters(i).out_octets});
        });
    mib.register_object(
        mib2::ifx_column(mib2::kIfHighSpeedColumn, index), [nic] {
          // RFC 2863: ifHighSpeed is in units of 1,000,000 bits/s.
          return SnmpValue(Gauge32{
              static_cast<std::uint32_t>(nic->speed() / kMbps)});
        });
  }
}

Mib2IfTable::~Mib2IfTable() = default;

std::uint32_t Mib2IfTable::index_of(const sim::Nic& nic) const {
  for (std::size_t i = 0; i < nics_.size(); ++i) {
    if (nics_[i] == &nic) return static_cast<std::uint32_t>(i + 1);
  }
  return 0;
}

const sim::InterfaceCounters& Mib2IfTable::counters(std::size_t i) {
  if (!config_.cached) return nics_[i]->counters();
  arm_refresh();
  return snapshot_[i];
}

Mib2IfTable::HcCounters Mib2IfTable::hc_counters(std::size_t i) {
  if (!config_.cached) {
    return {nics_[i]->total_in_octets(), nics_[i]->total_out_octets()};
  }
  arm_refresh();
  return hc_snapshot_[i];
}

void Mib2IfTable::take_snapshot() {
  for (std::size_t i = 0; i < nics_.size(); ++i) {
    snapshot_[i] = nics_[i]->counters();
    hc_snapshot_[i] = {nics_[i]->total_in_octets(),
                       nics_[i]->total_out_octets()};
  }
  ++refreshes_;
}

void Mib2IfTable::arm_refresh() {
  if (refresh_pending_) return;  // one refresh per query burst
  refresh_pending_ = true;
  SimDuration delay = config_.refresh_delay;
  delay += static_cast<SimDuration>(
      rng_.uniform() * static_cast<double>(config_.refresh_jitter));
  if (rng_.uniform() < config_.hiccup_probability) {
    delay += config_.hiccup_delay;
  }
  sim_.schedule_after(delay, [this] {
    take_snapshot();
    refresh_pending_ = false;
  });
}

}  // namespace netqos::snmp
