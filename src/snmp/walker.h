// ifTable walker: retrieves a whole MIB subtree with chained GETNEXT (v1)
// or GETBULK (v2c) requests. Used by the monitor at startup to map
// interface descriptions to ifIndex values, and by the dynamic-discovery
// extension.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "snmp/client.h"

namespace netqos::snmp {

struct WalkResult {
  bool ok = false;
  std::string error;  ///< empty when ok
  std::vector<VarBind> varbinds;  ///< all instances under the root, in order
};

/// Walks the subtree under `root` on `agent` and invokes `callback` once
/// with everything collected. The walker object must stay alive until the
/// callback fires; one walker supports one walk at a time.
///
/// SNMPv2c clients walk with GETBULK (`bulk_size` repetitions per
/// round-trip); when the client is configured for SNMPv1 — which has no
/// GETBULK — the walker falls back to chained GETNEXT automatically.
class SubtreeWalker {
 public:
  using Callback = std::function<void(WalkResult)>;

  explicit SubtreeWalker(SnmpClient& client, std::size_t bulk_size = 16);

  /// Opt-in: GET ifNumber.0 first and reserve the result vector from the
  /// agent's reported row count, so a 1k-row column walk performs no
  /// reallocation while collecting. Adds one request per walk (extra
  /// wire traffic), hence off by default. A failed prefetch degrades to
  /// an unreserved walk rather than failing it.
  void set_prefetch_if_number(bool on) { prefetch_if_number_ = on; }

  void walk(sim::Ipv4Address agent, const std::string& community, Oid root,
            Callback callback);

  bool busy() const { return busy_; }

 private:
  void prefetch();
  void step();
  void on_result(SnmpResult result);
  void finish(std::string error);

  SnmpClient& client_;
  std::size_t bulk_size_;
  bool prefetch_if_number_ = false;
  bool busy_ = false;

  sim::Ipv4Address agent_;
  std::string community_;
  Oid root_;
  Oid cursor_;
  WalkResult collected_;
  Callback callback_;
};

}  // namespace netqos::snmp
