#include "snmp/oid.h"

#include <cstdlib>
#include <stdexcept>

namespace netqos::snmp {

Oid Oid::parse(const std::string& dotted) {
  if (dotted.empty()) {
    throw std::invalid_argument("empty OID");
  }
  std::vector<std::uint32_t> arcs;
  std::size_t pos = 0;
  while (pos < dotted.size()) {
    std::size_t end = dotted.find('.', pos);
    if (end == std::string::npos) end = dotted.size();
    if (end == pos) {
      throw std::invalid_argument("malformed OID: '" + dotted + "'");
    }
    const std::string part = dotted.substr(pos, end - pos);
    for (char c : part) {
      if (c < '0' || c > '9') {
        throw std::invalid_argument("malformed OID arc: '" + part + "'");
      }
    }
    const unsigned long value = std::strtoul(part.c_str(), nullptr, 10);
    if (value > 0xffffffffUL) {
      throw std::invalid_argument("OID arc out of range: '" + part + "'");
    }
    arcs.push_back(static_cast<std::uint32_t>(value));
    pos = end + 1;
  }
  if (dotted.back() == '.') {
    throw std::invalid_argument("malformed OID: trailing dot");
  }
  return Oid(std::move(arcs));
}

Oid Oid::child(std::uint32_t arc) const {
  Oid out = *this;
  out.arcs_.push_back(arc);
  return out;
}

Oid Oid::concat(const Oid& suffix) const {
  Oid out = *this;
  out.arcs_.insert(out.arcs_.end(), suffix.arcs_.begin(), suffix.arcs_.end());
  return out;
}

bool Oid::starts_with(const Oid& prefix) const {
  if (prefix.size() > size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (arcs_[i] != prefix.arcs_[i]) return false;
  }
  return true;
}

std::string Oid::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (i != 0) out += '.';
    out += std::to_string(arcs_[i]);
  }
  return out;
}

namespace mib2 {

Oid if_column(std::uint32_t column, std::uint32_t if_index) {
  return kIfEntry.child(column).child(if_index);
}

Oid ifx_column(std::uint32_t column, std::uint32_t if_index) {
  return kIfXEntry.child(column).child(if_index);
}

}  // namespace mib2
}  // namespace netqos::snmp
