// MIB tree: the agent-side database of managed objects.
//
// Objects are registered at instance OIDs (scalars at x.0, table cells at
// entry.column.index) with callable providers, so values are computed at
// query time from live state. GETNEXT order is lexicographic OID order,
// which std::map gives us directly.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "snmp/oid.h"
#include "snmp/value.h"

namespace netqos::snmp {

class MibTree {
 public:
  using Provider = std::function<SnmpValue()>;
  using RefreshHook = std::function<void(MibTree&)>;

  /// Registers an instance OID. Replaces any existing registration.
  void register_object(Oid instance, Provider provider);
  /// Convenience: a constant value.
  void register_constant(Oid instance, SnmpValue value);
  void unregister_object(const Oid& instance);
  /// Removes every instance under (and including) `root`.
  void unregister_subtree(const Oid& root);

  /// Hooks run before every get/get_next so dynamically-sized tables
  /// (e.g. the bridge forwarding database) can refresh their rows.
  void add_refresh_hook(RefreshHook hook);

  /// Exact-match GET. nullopt when the instance does not exist.
  std::optional<SnmpValue> get(const Oid& instance);

  /// GETNEXT: first instance strictly greater than `oid`, with its value.
  std::optional<std::pair<Oid, SnmpValue>> get_next(const Oid& oid);

  std::size_t size() const { return objects_.size(); }

 private:
  void run_hooks();

  std::map<Oid, Provider> objects_;
  std::vector<RefreshHook> hooks_;
  bool in_hook_ = false;
};

}  // namespace netqos::snmp
