// Whole-table batched GETBULK collection.
//
// The monitor's per-interface GET path costs one request per agent per
// round with 6 varbinds per interface — fine for hosts, quadratic pain
// for a 48-port switch. TablePoller collects entire MIB-II table columns
// with a handful of GETBULK sweeps instead: the first request also
// fetches sysUpTime.0 and ifNumber.0 as non-repeaters, so one round trip
// usually yields the complete table for small agents, and large tables
// finish in ceil(rows * columns / budget) requests regardless of row
// count per request cap.
//
// The parser is deliberately tolerant of GETBULK realities: responses
// are column-major, may be truncated by the agent's varbind cap, and
// repeaters overshoot into sibling columns once their own is exhausted.
// Every varbind is routed by column-root prefix and deduplicated against
// that column's cursor, so overshoot rows are either fresh same-snapshot
// data (accepted) or repeats (skipped).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netsim/address.h"
#include "snmp/client.h"
#include "snmp/oid.h"
#include "snmp/value.h"

namespace netqos::snmp {

struct TableResult {
  bool ok = false;
  std::string error;

  std::uint64_t uptime_ticks = 0;  ///< sysUpTime.0 (hundredths of seconds)
  std::uint32_t if_number = 0;     ///< agent-reported row count

  /// One row per ifIndex (rows[i] is ifIndex i+1). `cells[c]` holds the
  /// value of the c-th requested column; `seen` bit c says whether the
  /// agent actually returned that cell.
  struct Row {
    std::vector<SnmpValue> cells;
    std::uint32_t seen = 0;

    bool has(std::size_t column) const {
      return (seen >> column & 1u) != 0;
    }
  };
  std::vector<Row> rows;

  int requests = 0;  ///< GETBULK round trips consumed

  /// True when every requested column of row `i` arrived.
  bool complete_row(std::size_t i, std::size_t columns) const {
    return rows[i].seen + 1 == (1u << columns);
  }
};

/// Collects a set of table columns from one agent via chained GETBULKs.
/// One collection at a time per instance; the instance must outlive the
/// collection (the monitor keeps one per polled agent).
class TablePoller {
 public:
  using Callback = std::function<void(TableResult)>;

  /// `columns` are column roots (e.g. ifEntry.10); at most 32.
  /// `varbind_budget` bounds the repeater varbinds requested per GETBULK
  /// and must stay under the agents' response cap.
  TablePoller(SnmpClient& client, sim::Ipv4Address agent,
              std::string community, std::vector<Oid> columns,
              std::size_t varbind_budget = 120);

  /// Starts a collection; `callback` fires exactly once.
  void collect(Callback callback);

  bool busy() const { return busy_; }

 private:
  void step();
  void on_response(SnmpResult result);
  void finish(TableResult result);
  void fail(const std::string& why);

  SnmpClient& client_;
  sim::Ipv4Address agent_;
  std::string community_;
  std::vector<Oid> columns_;
  std::size_t varbind_budget_;

  bool busy_ = false;
  bool first_request_ = false;
  Callback callback_;
  TableResult result_;
  std::vector<Oid> cursors_;     ///< last accepted OID per column
  std::vector<bool> done_;       ///< column fully collected
  std::vector<std::uint32_t> row_cursor_;  ///< last accepted ifIndex
};

}  // namespace netqos::snmp
