#include "snmp/deploy.h"

#include <stdexcept>

#include "common/rng.h"
#include "snmp/bridge.h"

namespace netqos::snmp {

std::vector<DeployedAgent> deploy_agents(sim::Simulator& sim,
                                         sim::Network& network,
                                         const topo::NetworkTopology& topo,
                                         const DeployOptions& options) {
  std::vector<DeployedAgent> deployed;

  for (const auto& spec : topo.nodes()) {
    if (!spec.snmp_enabled) continue;

    sim::Node* node = network.find_node(spec.name);
    if (node == nullptr) {
      throw std::invalid_argument("deploy_agents: node '" + spec.name +
                                  "' not in network");
    }

    sim::UdpStack* stack = nullptr;
    sim::Switch* bridge = nullptr;
    if (auto* host = dynamic_cast<sim::Host*>(node)) {
      stack = &host->udp();
    } else if (auto* sw = dynamic_cast<sim::Switch*>(node)) {
      stack = sw->management();
      bridge = sw;
      if (stack == nullptr) {
        throw std::invalid_argument("switch '" + spec.name +
                                    "' has no management plane");
      }
    } else {
      // Hubs are dumb repeaters; a spec asking for SNMP there is invalid.
      throw std::invalid_argument("node '" + spec.name +
                                  "' cannot run an SNMP agent");
    }

    AgentConfig config = options.agent;
    config.community = spec.snmp_community;
    // Decorrelate per-agent jitter streams deterministically.
    SplitMix64 seeder(options.agent.seed);
    for (char c : spec.name) seeder.next(), config.seed ^= seeder.next() + c;
    IfTableConfig table_config = options.iftable;
    table_config.seed ^= config.seed * 0x9e3779b97f4a7c15ULL;

    DeployedAgent entry;
    entry.node = spec.name;
    entry.agent = std::make_unique<SnmpAgent>(sim, *stack, config);

    register_system_group(entry.agent->mib(), sim, spec.name);
    std::vector<const sim::Nic*> nics;
    for (const auto& itf : spec.interfaces) {
      const sim::Nic* nic = node->find_interface(itf.local_name);
      if (nic == nullptr) {
        throw std::invalid_argument("interface '" + spec.name + "." +
                                    itf.local_name + "' not in network");
      }
      nics.push_back(nic);
    }
    if (!options.trap_sink.is_unspecified()) {
      entry.agent->set_trap_sink(options.trap_sink);
      // Emit linkDown/linkUp on carrier transitions of every interface.
      // The observer captures the raw agent pointer: keep the deployment
      // alive as long as the network can change link state.
      for (std::size_t i = 0; i < nics.size(); ++i) {
        sim::Nic* nic = node->find_interface(spec.interfaces[i].local_name);
        if (!nic->connected()) continue;
        SnmpAgent* agent = entry.agent.get();
        const auto if_index = static_cast<std::int64_t>(i + 1);
        const std::string if_name = nic->name();
        nic->link()->add_state_observer([agent, if_index, if_name](bool up) {
          std::vector<VarBind> varbinds;
          varbinds.push_back(
              {mib2::if_column(mib2::kIfIndexColumn,
                               static_cast<std::uint32_t>(if_index)),
               SnmpValue(if_index)});
          varbinds.push_back(
              {mib2::if_column(mib2::kIfDescrColumn,
                               static_cast<std::uint32_t>(if_index)),
               SnmpValue(if_name)});
          agent->send_trap(up ? mib2::kLinkUpTrap : mib2::kLinkDownTrap,
                           std::move(varbinds));
        });
      }
    }

    entry.if_table = std::make_unique<Mib2IfTable>(
        entry.agent->mib(), sim, std::move(nics), table_config);
    if (bridge != nullptr) {
      register_bridge_mib(entry.agent->mib(), *bridge);
    }

    deployed.push_back(std::move(entry));
  }
  return deployed;
}

DeployedAgent* find_agent(std::vector<DeployedAgent>& agents,
                          const std::string& node) {
  for (auto& entry : agents) {
    if (entry.node == node) return &entry;
  }
  return nullptr;
}

}  // namespace netqos::snmp
