// Agent deployment: instantiates an SNMP agent (with MIB-II system group
// and ifTable) on every SNMP-enabled node of a built network, matching
// the topology's declaration of where "SNMP demons" run (paper §4.1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netsim/network.h"
#include "snmp/agent.h"
#include "snmp/mib2.h"
#include "topology/model.h"

namespace netqos::snmp {

struct DeployOptions {
  /// Agent-side ifTable snapshot cache behaviour. Real agents cache on an
  /// internal timer; this is the source of the paper's polling-delay
  /// artifact (§4.3.1). Seeds are decorrelated per node.
  IfTableConfig iftable = {.cached = true};
  /// Template for per-agent configuration; community comes from the
  /// topology node, the seed is decorrelated per node.
  AgentConfig agent = {};
  /// When set, every agent sends linkDown/linkUp SNMPv2 traps here on
  /// carrier transitions of its interfaces (failure detection).
  sim::Ipv4Address trap_sink;
};

/// One deployed agent and its MIB bindings.
struct DeployedAgent {
  std::string node;
  std::unique_ptr<SnmpAgent> agent;
  std::unique_ptr<Mib2IfTable> if_table;
};

/// Deploys agents per the topology. The network must have been built from
/// the same topology (node/interface names must match). Returns the
/// deployment, which owns the agents — keep it alive while simulating.
std::vector<DeployedAgent> deploy_agents(sim::Simulator& sim,
                                         sim::Network& network,
                                         const topo::NetworkTopology& topo,
                                         const DeployOptions& options = {});

/// Finds a deployed agent by node name (nullptr if absent).
DeployedAgent* find_agent(std::vector<DeployedAgent>& agents,
                          const std::string& node);

}  // namespace netqos::snmp
