// SNMP object identifiers.
#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace netqos::snmp {

/// An ASN.1 OBJECT IDENTIFIER: a sequence of non-negative arcs.
/// Ordering is lexicographic, which is exactly the GETNEXT ordering of a
/// MIB tree.
class Oid {
 public:
  Oid() = default;
  Oid(std::initializer_list<std::uint32_t> arcs) : arcs_(arcs) {}
  explicit Oid(std::vector<std::uint32_t> arcs) : arcs_(std::move(arcs)) {}

  /// Parses dotted notation ("1.3.6.1.2.1.1.3.0"); throws
  /// std::invalid_argument on malformed input.
  static Oid parse(const std::string& dotted);

  const std::vector<std::uint32_t>& arcs() const { return arcs_; }
  std::size_t size() const { return arcs_.size(); }
  bool empty() const { return arcs_.empty(); }
  std::uint32_t operator[](std::size_t i) const { return arcs_[i]; }

  /// This OID extended with extra arcs (instance suffixes).
  Oid child(std::uint32_t arc) const;
  Oid concat(const Oid& suffix) const;

  /// True when `prefix` is a (non-strict) prefix of this OID.
  bool starts_with(const Oid& prefix) const;

  std::string to_string() const;

  auto operator<=>(const Oid&) const = default;

 private:
  std::vector<std::uint32_t> arcs_;
};

namespace mib2 {

// MIB-II object identifiers the paper polls (Table 1), plus the few extra
// ifEntry columns the monitor uses for discard diagnostics.
inline const Oid kSysDescr{1, 3, 6, 1, 2, 1, 1, 1};
inline const Oid kSysUpTime{1, 3, 6, 1, 2, 1, 1, 3};      // .0 instance
inline const Oid kSysName{1, 3, 6, 1, 2, 1, 1, 5};
inline const Oid kIfNumber{1, 3, 6, 1, 2, 1, 2, 1};
inline const Oid kIfEntry{1, 3, 6, 1, 2, 1, 2, 2, 1};
inline constexpr std::uint32_t kIfIndexColumn = 1;
inline constexpr std::uint32_t kIfDescrColumn = 2;
inline constexpr std::uint32_t kIfSpeedColumn = 5;
inline constexpr std::uint32_t kIfPhysAddressColumn = 6;
inline constexpr std::uint32_t kIfInOctetsColumn = 10;
inline constexpr std::uint32_t kIfInUcastPktsColumn = 11;
inline constexpr std::uint32_t kIfInDiscardsColumn = 13;
inline constexpr std::uint32_t kIfOutOctetsColumn = 16;
inline constexpr std::uint32_t kIfOutUcastPktsColumn = 17;
inline constexpr std::uint32_t kIfOutDiscardsColumn = 19;

/// ifEntry column instance for interface index `if_index` (1-based).
Oid if_column(std::uint32_t column, std::uint32_t if_index);

/// Bridge MIB (RFC 1493): dot1dTpFdbPort, the port a MAC address was
/// learned on, indexed by the six MAC octets.
inline const Oid kDot1dTpFdbPort{1, 3, 6, 1, 2, 1, 17, 4, 3, 1, 2};

/// ifOperStatus (up(1)/down(2)) — served so managers can see carrier.
inline constexpr std::uint32_t kIfOperStatusColumn = 8;

// ifXTable (RFC 2863): high-capacity 64-bit counters. At 100 Mbps a
// Counter32 octet counter wraps in under six minutes; HC counters are
// how real monitors survive fast links.
inline const Oid kIfXEntry{1, 3, 6, 1, 2, 1, 31, 1, 1, 1};
inline constexpr std::uint32_t kIfNameColumn = 1;
inline constexpr std::uint32_t kIfHCInOctetsColumn = 6;
inline constexpr std::uint32_t kIfHCOutOctetsColumn = 10;
inline constexpr std::uint32_t kIfHighSpeedColumn = 15;  ///< Mbps Gauge

/// ifXTable column instance for interface index `if_index` (1-based).
Oid ifx_column(std::uint32_t column, std::uint32_t if_index);

// SNMPv2 notification objects (RFC 1907 / RFC 1573).
inline const Oid kSnmpTrapOid{1, 3, 6, 1, 6, 3, 1, 1, 4, 1};  // .0 instance
inline const Oid kLinkDownTrap{1, 3, 6, 1, 6, 3, 1, 1, 5, 3};
inline const Oid kLinkUpTrap{1, 3, 6, 1, 6, 3, 1, 1, 5, 4};

}  // namespace mib2
}  // namespace netqos::snmp
