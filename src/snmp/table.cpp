#include "snmp/table.h"

#include <algorithm>
#include <stdexcept>

namespace netqos::snmp {

namespace {

/// ifNumber arrives off the wire; a hostile or corrupted agent can claim
/// any 32-bit row count. Cap it well above any real fabric (the 10k
/// reference fabric included) before sizing the result table from it.
constexpr std::int64_t kMaxTableRows = 1 << 20;

}  // namespace

TablePoller::TablePoller(SnmpClient& client, sim::Ipv4Address agent,
                         std::string community, std::vector<Oid> columns,
                         std::size_t varbind_budget)
    : client_(client),
      agent_(agent),
      community_(std::move(community)),
      columns_(std::move(columns)),
      varbind_budget_(varbind_budget) {
  if (columns_.empty() || columns_.size() > 32) {
    throw std::invalid_argument("TablePoller needs 1..32 columns");
  }
}

void TablePoller::collect(Callback callback) {
  if (busy_) throw std::logic_error("TablePoller collection in progress");
  busy_ = true;
  first_request_ = true;
  callback_ = std::move(callback);
  result_ = TableResult{};
  cursors_ = columns_;
  done_.assign(columns_.size(), false);
  row_cursor_.assign(columns_.size(), 0);
  step();
}

void TablePoller::step() {
  std::vector<Oid> oids;
  std::int32_t non_repeaters = 0;
  if (first_request_) {
    // Piggy-back the scalars on the first sweep: GETNEXT on the parent
    // yields sysUpTime.0 / ifNumber.0 without a separate GET.
    oids.push_back(mib2::kSysUpTime);
    oids.push_back(mib2::kIfNumber);
    non_repeaters = 2;
  }
  std::size_t active = 0;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (!done_[c]) ++active;
  }
  const std::size_t reps =
      std::max<std::size_t>(1, varbind_budget_ / std::max<std::size_t>(
                                                     1, active));
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (!done_[c]) oids.push_back(cursors_[c]);
  }
  ++result_.requests;
  client_.get_bulk(agent_, community_, std::move(oids), non_repeaters,
                   static_cast<std::int32_t>(reps),
                   [this](SnmpResult r) { on_response(std::move(r)); });
}

void TablePoller::on_response(SnmpResult response) {
  if (!response.ok()) {
    if (response.status == SnmpResult::Status::kErrorResponse) {
      fail(std::string("agent error: ") +
           error_status_name(response.error_status));
    } else {
      fail("transport failure (timeout or send error)");
    }
    return;
  }

  std::size_t idx = 0;
  bool progress = false;
  if (first_request_) {
    first_request_ = false;
    if (response.varbinds.size() < 2) {
      fail("first response missing scalar varbinds");
      return;
    }
    const auto* ticks = std::get_if<TimeTicks>(&response.varbinds[0].value);
    if (ticks == nullptr ||
        !response.varbinds[0].oid.starts_with(mib2::kSysUpTime)) {
      fail("agent did not report sysUpTime");
      return;
    }
    result_.uptime_ticks = ticks->value;
    const auto* count = std::get_if<std::int64_t>(&response.varbinds[1].value);
    if (count == nullptr || *count < 0 || *count > kMaxTableRows ||
        !response.varbinds[1].oid.starts_with(mib2::kIfNumber)) {
      fail("agent did not report a sane ifNumber");
      return;
    }
    result_.if_number = static_cast<std::uint32_t>(*count);
    result_.rows.assign(result_.if_number, TableResult::Row{});
    for (auto& row : result_.rows) {
      row.cells.assign(columns_.size(), SnmpValue{Null{}});
    }
    if (result_.if_number == 0) done_.assign(columns_.size(), true);
    idx = 2;
    progress = true;
  }

  for (; idx < response.varbinds.size(); ++idx) {
    VarBind& vb = response.varbinds[idx];
    // Column subtrees are disjoint, so at most one root matches. done_
    // columns swallow their overshoot repeats silently.
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (!vb.oid.starts_with(columns_[c])) continue;
      if (done_[c]) break;
      if (const auto* exception =
              std::get_if<VarBindException>(&vb.value)) {
        // endOfMibView past the table, or noSuchObject on an unsupported
        // column: either way this column yields nothing more.
        (void)exception;
        done_[c] = true;
        progress = true;
        break;
      }
      if (vb.oid <= cursors_[c]) break;  // overshoot repeat of known data
      if (vb.oid.size() != columns_[c].size() + 1) break;  // not a cell
      const std::uint32_t row = vb.oid.arcs().back();
      cursors_[c] = vb.oid;
      progress = true;
      if (row >= 1 && row <= result_.if_number) {
        TableResult::Row& slot = result_.rows[row - 1];
        slot.cells[c] = std::move(vb.value);
        slot.seen |= 1u << c;
        row_cursor_[c] = row;
      }
      // Rows are contiguous 1..ifNumber (MIB-II ifTable), so reaching
      // the last index completes the column without another round trip.
      if (row >= result_.if_number) done_[c] = true;
      break;
    }
  }

  if (!progress) {
    fail("agent response advanced no column");
    return;
  }
  if (std::all_of(done_.begin(), done_.end(), [](bool d) { return d; })) {
    result_.ok = true;
    finish(std::move(result_));
    return;
  }
  step();
}

void TablePoller::finish(TableResult result) {
  busy_ = false;
  Callback callback = std::move(callback_);
  callback_ = nullptr;
  callback(std::move(result));
}

void TablePoller::fail(const std::string& why) {
  result_.ok = false;
  result_.error = why;
  finish(std::move(result_));
}

}  // namespace netqos::snmp
