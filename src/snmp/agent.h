// SNMP agent ("demon" in the paper's terminology).
//
// Listens on UDP/161 of a host or switch-management UDP stack, checks the
// community string, evaluates GET / GETNEXT / GETBULK against a MibTree,
// and replies after a small processing delay. The delay has a seeded
// random component plus rare multi-millisecond hiccups — the "slight
// delay in SNMP polling" the paper blames for measurement spikes.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/sim_time.h"
#include "netsim/simulator.h"
#include "netsim/udp.h"
#include "snmp/mib.h"
#include "snmp/pdu.h"

namespace netqos::snmp {

struct AgentConfig {
  std::string community = "public";
  SimDuration base_processing_delay = 200 * kMicrosecond;
  SimDuration mean_jitter = 300 * kMicrosecond;
  /// Probability that a request hits a scheduling hiccup of extra delay.
  double hiccup_probability = 0.02;
  SimDuration hiccup_delay = 30 * kMillisecond;
  /// Responses bigger than this many varbinds get a tooBig error.
  std::size_t max_response_varbinds = 128;
  std::uint64_t seed = 0xa9e47;
};

struct AgentStats {
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t hiccups = 0;
  std::uint64_t traps_sent = 0;
};

class SnmpAgent {
 public:
  /// Binds UDP/161 on `stack`. Throws std::logic_error if already bound.
  SnmpAgent(sim::Simulator& sim, sim::UdpStack& stack, AgentConfig config);

  MibTree& mib() { return mib_; }
  const MibTree& mib() const { return mib_; }
  const AgentStats& stats() const { return stats_; }
  const AgentConfig& config() const { return config_; }

  /// Configures where SNMPv2 notifications go (a manager's UDP/162).
  void set_trap_sink(sim::Ipv4Address manager,
                     std::uint16_t port = sim::kSnmpTrapPort);

  /// Simulates an SNMP daemon crash/restart: while false, requests are
  /// received (and counted) but never answered, so managers see timeouts
  /// while the host itself keeps forwarding traffic normally.
  void set_responding(bool responding) { responding_ = responding; }
  bool responding() const { return responding_; }

  /// Emits an SNMPv2-Trap. The standard sysUpTime.0 and snmpTrapOID.0
  /// varbinds are prepended (RFC 1905 §4.2.6); `varbinds` follow. Returns
  /// false when no sink is configured or the send fails. Traps are
  /// unacknowledged — delivery is best-effort, like the real protocol.
  bool send_trap(const Oid& trap_oid, std::vector<VarBind> varbinds = {});

  /// Emits a classic SNMPv1 Trap-PDU (RFC 1157 §4.1.6) with this agent's
  /// address and current sysUpTime filled in.
  bool send_trap_v1(const Oid& enterprise, GenericTrap generic_trap,
                    std::int32_t specific_trap,
                    std::vector<VarBind> varbinds = {});

 private:
  void handle(const sim::Ipv4Packet& packet);
  Pdu process(const Message& request);
  Pdu process_get(const Pdu& request, SnmpVersion version);
  Pdu process_get_next(const Pdu& request, SnmpVersion version);
  Pdu process_get_bulk(const Pdu& request);

  sim::Simulator& sim_;
  sim::UdpStack& stack_;
  AgentConfig config_;
  MibTree mib_;
  Xoshiro256 rng_;
  AgentStats stats_;
  bool responding_ = true;
  sim::Ipv4Address trap_sink_;
  std::uint16_t trap_port_ = sim::kSnmpTrapPort;
};

}  // namespace netqos::snmp
