#include "snmp/pdu.h"

#include "snmp/ber.h"

namespace netqos::snmp {

const char* error_status_name(ErrorStatus status) {
  switch (status) {
    case ErrorStatus::kNoError: return "noError";
    case ErrorStatus::kTooBig: return "tooBig";
    case ErrorStatus::kNoSuchName: return "noSuchName";
    case ErrorStatus::kBadValue: return "badValue";
    case ErrorStatus::kReadOnly: return "readOnly";
    case ErrorStatus::kGenErr: return "genErr";
  }
  return "?";
}

namespace {

Bytes encode_varbind(const VarBind& vb) {
  ByteWriter content;
  ber::write_oid(content, vb.oid);
  ber::write_value(content, vb.value);
  ByteWriter out;
  ber::write_wrapped(out, ber::kTagSequence, content.bytes());
  return std::move(out).take();
}

Bytes encode_pdu(const Pdu& pdu) {
  ByteWriter vbl;
  for (const auto& vb : pdu.varbinds) {
    const Bytes encoded = encode_varbind(vb);
    vbl.put_bytes(encoded);
  }

  ByteWriter content;
  ber::write_integer(content, pdu.request_id);
  ber::write_integer(content, static_cast<std::int64_t>(pdu.error_status));
  ber::write_integer(content, pdu.error_index);
  ber::write_wrapped(content, ber::kTagSequence, vbl.bytes());

  ByteWriter out;
  ber::write_wrapped(out, static_cast<std::uint8_t>(pdu.type),
                     content.bytes());
  return std::move(out).take();
}

Bytes encode_trap_v1(const TrapV1Pdu& trap) {
  ByteWriter vbl;
  for (const auto& vb : trap.varbinds) {
    const Bytes encoded = encode_varbind(vb);
    vbl.put_bytes(encoded);
  }

  ByteWriter content;
  ber::write_oid(content, trap.enterprise);
  ber::write_header(content, ber::kTagIpAddress, 4);
  content.put_u32(trap.agent_addr);
  ber::write_integer(content,
                     static_cast<std::int64_t>(trap.generic_trap));
  ber::write_integer(content, trap.specific_trap);
  ber::write_unsigned(content, ber::kTagTimeTicks, trap.time_stamp_ticks);
  ber::write_wrapped(content, ber::kTagSequence, vbl.bytes());

  ByteWriter out;
  ber::write_wrapped(out, static_cast<std::uint8_t>(PduType::kTrapV1),
                     content.bytes());
  return std::move(out).take();
}

TrapV1Pdu decode_trap_v1(ByteReader& in) {
  TrapV1Pdu trap;
  trap.enterprise = ber::read_oid(in);
  std::size_t addr_len = ber::expect_header(in, ber::kTagIpAddress);
  if (addr_len != 4) throw BerError("agent-addr must be 4 octets");
  trap.agent_addr = in.get_u32();
  trap.generic_trap = static_cast<GenericTrap>(ber::read_integer(in));
  trap.specific_trap = static_cast<std::int32_t>(ber::read_integer(in));
  const std::size_t ticks_len = ber::expect_header(in, ber::kTagTimeTicks);
  trap.time_stamp_ticks =
      static_cast<std::uint32_t>(ber::read_unsigned_content(in, ticks_len));

  const std::size_t vbl_len = ber::expect_header(in, ber::kTagSequence);
  const std::size_t end = in.position() + vbl_len;
  while (in.position() < end) {
    ber::expect_header(in, ber::kTagSequence);
    VarBind vb;
    vb.oid = ber::read_oid(in);
    vb.value = ber::read_value(in);
    trap.varbinds.push_back(std::move(vb));
  }
  return trap;
}

bool is_pdu_tag(std::uint8_t tag) {
  switch (static_cast<PduType>(tag)) {
    case PduType::kGetRequest:
    case PduType::kGetNextRequest:
    case PduType::kGetResponse:
    case PduType::kSetRequest:
    case PduType::kGetBulkRequest:
    case PduType::kSnmpV2Trap:
      return true;
    case PduType::kTrapV1:
      return false;  // handled separately: its body is not a regular PDU
  }
  return false;
}

Pdu decode_pdu(ByteReader& in) {
  std::size_t pdu_len = 0;
  const std::uint8_t tag = ber::read_header(in, pdu_len);
  if (!is_pdu_tag(tag)) {
    throw BerError("unknown PDU tag " + std::to_string(tag));
  }
  Pdu pdu;
  pdu.type = static_cast<PduType>(tag);
  pdu.request_id = static_cast<std::int32_t>(ber::read_integer(in));
  pdu.error_status = static_cast<ErrorStatus>(ber::read_integer(in));
  pdu.error_index = static_cast<std::int32_t>(ber::read_integer(in));

  const std::size_t vbl_len = ber::expect_header(in, ber::kTagSequence);
  const std::size_t end = in.position() + vbl_len;
  while (in.position() < end) {
    ber::expect_header(in, ber::kTagSequence);  // one varbind
    VarBind vb;
    vb.oid = ber::read_oid(in);
    vb.value = ber::read_value(in);
    pdu.varbinds.push_back(std::move(vb));
  }
  return pdu;
}

}  // namespace

Bytes encode_message(const Message& message) {
  ByteWriter content;
  ber::write_integer(content, static_cast<std::int64_t>(message.version));
  ber::write_octet_string(content, message.community);
  if (message.trap_v1.has_value()) {
    content.put_bytes(encode_trap_v1(*message.trap_v1));
  } else {
    content.put_bytes(encode_pdu(message.pdu));
  }

  ByteWriter out;
  ber::write_wrapped(out, ber::kTagSequence, content.bytes());
  return std::move(out).take();
}

Message decode_message(const Bytes& wire) {
  ByteReader in(wire);
  ber::expect_header(in, ber::kTagSequence);
  Message message;
  message.version = static_cast<SnmpVersion>(ber::read_integer(in));
  if (message.version != SnmpVersion::kV1 &&
      message.version != SnmpVersion::kV2c) {
    throw BerError("unsupported SNMP version");
  }
  message.community = ber::read_octet_string(in);
  if (in.peek_u8() == static_cast<std::uint8_t>(PduType::kTrapV1)) {
    std::size_t length = 0;
    ber::read_header(in, length);
    message.trap_v1 = decode_trap_v1(in);
    message.pdu.type = PduType::kTrapV1;
  } else {
    message.pdu = decode_pdu(in);
  }
  return message;
}

}  // namespace netqos::snmp
