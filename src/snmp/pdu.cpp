#include "snmp/pdu.h"

#include "snmp/ber.h"

namespace netqos::snmp {

const char* error_status_name(ErrorStatus status) {
  switch (status) {
    case ErrorStatus::kNoError: return "noError";
    case ErrorStatus::kTooBig: return "tooBig";
    case ErrorStatus::kNoSuchName: return "noSuchName";
    case ErrorStatus::kBadValue: return "badValue";
    case ErrorStatus::kReadOnly: return "readOnly";
    case ErrorStatus::kGenErr: return "genErr";
  }
  return "?";
}

namespace {

// Encoding is single-pass: sizes of the nested TLVs are computed first,
// then every header is written with its final length, innermost content
// last. The byte stream is identical to a back-patching encoder's; the
// win is one exact-size reserve and zero scratch buffers per message.

std::size_t varbind_content_size(const VarBind& vb) {
  return ber::oid_size(vb.oid) + ber::value_size(vb.value);
}

std::size_t varbind_list_content_size(const std::vector<VarBind>& varbinds) {
  std::size_t size = 0;
  for (const auto& vb : varbinds) {
    const std::size_t content = varbind_content_size(vb);
    size += ber::header_size(content) + content;
  }
  return size;
}

void write_varbind_list(ByteWriter& out, const std::vector<VarBind>& varbinds,
                        std::size_t list_content_size) {
  ber::write_header(out, ber::kTagSequence, list_content_size);
  for (const auto& vb : varbinds) {
    ber::write_header(out, ber::kTagSequence, varbind_content_size(vb));
    ber::write_oid(out, vb.oid);
    ber::write_value(out, vb.value);
  }
}

std::size_t pdu_content_size(const Pdu& pdu, std::size_t vbl_content) {
  return ber::integer_size(pdu.request_id) +
         ber::integer_size(static_cast<std::int64_t>(pdu.error_status)) +
         ber::integer_size(pdu.error_index) + ber::header_size(vbl_content) +
         vbl_content;
}

std::size_t trap_v1_content_size(const TrapV1Pdu& trap,
                                 std::size_t vbl_content) {
  return ber::oid_size(trap.enterprise) + ber::header_size(4) + 4 +
         ber::integer_size(static_cast<std::int64_t>(trap.generic_trap)) +
         ber::integer_size(trap.specific_trap) +
         ber::unsigned_size(trap.time_stamp_ticks) +
         ber::header_size(vbl_content) + vbl_content;
}

TrapV1Pdu decode_trap_v1(ByteReader& in) {
  TrapV1Pdu trap;
  trap.enterprise = ber::read_oid(in);
  std::size_t addr_len = ber::expect_header(in, ber::kTagIpAddress);
  if (addr_len != 4) throw BerError("agent-addr must be 4 octets");
  trap.agent_addr = in.get_u32();
  trap.generic_trap = static_cast<GenericTrap>(ber::read_integer(in));
  trap.specific_trap = static_cast<std::int32_t>(ber::read_integer(in));
  const std::size_t ticks_len = ber::expect_header(in, ber::kTagTimeTicks);
  trap.time_stamp_ticks =
      static_cast<std::uint32_t>(ber::read_unsigned_content(in, ticks_len));

  const std::size_t vbl_len = ber::expect_header(in, ber::kTagSequence);
  const std::size_t end = in.position() + vbl_len;
  while (in.position() < end) {
    ber::expect_header(in, ber::kTagSequence);
    VarBind vb;
    vb.oid = ber::read_oid(in);
    vb.value = ber::read_value(in);
    trap.varbinds.push_back(std::move(vb));
  }
  return trap;
}

bool is_pdu_tag(std::uint8_t tag) {
  switch (static_cast<PduType>(tag)) {
    case PduType::kGetRequest:
    case PduType::kGetNextRequest:
    case PduType::kGetResponse:
    case PduType::kSetRequest:
    case PduType::kGetBulkRequest:
    case PduType::kSnmpV2Trap:
      return true;
    case PduType::kTrapV1:
      return false;  // handled separately: its body is not a regular PDU
  }
  return false;
}

Pdu decode_pdu(ByteReader& in) {
  std::size_t pdu_len = 0;
  const std::uint8_t tag = ber::read_header(in, pdu_len);
  if (!is_pdu_tag(tag)) {
    throw BerError("unknown PDU tag " + std::to_string(tag));
  }
  Pdu pdu;
  pdu.type = static_cast<PduType>(tag);
  pdu.request_id = static_cast<std::int32_t>(ber::read_integer(in));
  pdu.error_status = static_cast<ErrorStatus>(ber::read_integer(in));
  pdu.error_index = static_cast<std::int32_t>(ber::read_integer(in));

  const std::size_t vbl_len = ber::expect_header(in, ber::kTagSequence);
  const std::size_t end = in.position() + vbl_len;
  while (in.position() < end) {
    ber::expect_header(in, ber::kTagSequence);  // one varbind
    VarBind vb;
    vb.oid = ber::read_oid(in);
    vb.value = ber::read_value(in);
    pdu.varbinds.push_back(std::move(vb));
  }
  return pdu;
}

}  // namespace

Bytes encode_message(const Message& message, Bytes reuse) {
  const bool is_trap = message.trap_v1.has_value();
  const std::vector<VarBind>& varbinds =
      is_trap ? message.trap_v1->varbinds : message.pdu.varbinds;
  const std::size_t vbl_content = varbind_list_content_size(varbinds);
  const std::uint8_t body_tag =
      is_trap ? static_cast<std::uint8_t>(PduType::kTrapV1)
              : static_cast<std::uint8_t>(message.pdu.type);
  const std::size_t body_content =
      is_trap ? trap_v1_content_size(*message.trap_v1, vbl_content)
              : pdu_content_size(message.pdu, vbl_content);
  const std::size_t message_content =
      ber::integer_size(static_cast<std::int64_t>(message.version)) +
      ber::octet_string_size(message.community) +
      ber::header_size(body_content) + body_content;

  ByteWriter out(std::move(reuse));
  out.reserve(ber::header_size(message_content) + message_content);
  ber::write_header(out, ber::kTagSequence, message_content);
  ber::write_integer(out, static_cast<std::int64_t>(message.version));
  ber::write_octet_string(out, message.community);
  ber::write_header(out, body_tag, body_content);
  if (is_trap) {
    const TrapV1Pdu& trap = *message.trap_v1;
    ber::write_oid(out, trap.enterprise);
    ber::write_header(out, ber::kTagIpAddress, 4);
    out.put_u32(trap.agent_addr);
    ber::write_integer(out, static_cast<std::int64_t>(trap.generic_trap));
    ber::write_integer(out, trap.specific_trap);
    ber::write_unsigned(out, ber::kTagTimeTicks, trap.time_stamp_ticks);
  } else {
    ber::write_integer(out, message.pdu.request_id);
    ber::write_integer(out,
                       static_cast<std::int64_t>(message.pdu.error_status));
    ber::write_integer(out, message.pdu.error_index);
  }
  write_varbind_list(out, varbinds, vbl_content);
  return std::move(out).take();
}

Message decode_message(const Bytes& wire) {
  ByteReader in(wire);
  ber::expect_header(in, ber::kTagSequence);
  Message message;
  message.version = static_cast<SnmpVersion>(ber::read_integer(in));
  if (message.version != SnmpVersion::kV1 &&
      message.version != SnmpVersion::kV2c) {
    throw BerError("unsupported SNMP version");
  }
  message.community = ber::read_octet_string(in);
  if (in.peek_u8() == static_cast<std::uint8_t>(PduType::kTrapV1)) {
    std::size_t length = 0;
    ber::read_header(in, length);
    message.trap_v1 = decode_trap_v1(in);
    message.pdu.type = PduType::kTrapV1;
  } else {
    message.pdu = decode_pdu(in);
  }
  return message;
}

}  // namespace netqos::snmp
