// Zero-copy BER views for the SNMP decode hot path.
//
// decode_message() materializes every OID and value into owning
// structures; fine for control traffic, wasteful for the poll loop that
// only needs to route a response and sum a handful of counters. This
// layer parses the same wire format into spans over the received
// datagram: BerReader walks TLVs in place, OidView/ValueView interpret
// content bytes on demand, and decode_message_head() exposes the
// envelope (version, community, PDU ids) without touching the varbinds.
// Nothing here owns memory — views are valid only while the underlying
// buffer is alive, i.e. within the packet delivery callback.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/byte_buffer.h"
#include "snmp/ber.h"
#include "snmp/pdu.h"

namespace netqos::snmp {

/// One tag-length-value triple; `content` aliases the input buffer.
struct Tlv {
  std::uint8_t tag = 0;
  std::span<const std::uint8_t> content;
};

/// Sequential TLV cursor over a borrowed byte range.
class BerReader {
 public:
  BerReader() : in_(std::span<const std::uint8_t>{}) {}
  explicit BerReader(std::span<const std::uint8_t> data) : in_(data) {}

  /// Reads the next TLV; throws BerError / BufferUnderflow on malformed
  /// or truncated input, exactly like the materializing decoder.
  Tlv read_tlv();
  /// Reads the next TLV and demands a specific tag; returns its content.
  std::span<const std::uint8_t> expect_tlv(std::uint8_t tag);

  std::size_t remaining() const { return in_.remaining(); }
  bool empty() const { return in_.empty(); }

 private:
  ByteReader in_;
};

/// A BER-encoded OBJECT IDENTIFIER, interpreted in place.
struct OidView {
  std::span<const std::uint8_t> content;

  /// True when the encoded OID begins with every arc of `prefix`.
  bool starts_with(const Oid& prefix) const;
  /// The final arc — the row index when the OID names a table cell.
  std::uint32_t last_arc() const;
  std::size_t arc_count() const;
  /// Three-way lexicographic comparison against a materialized OID.
  int compare(const Oid& other) const;
  Oid to_oid() const;
};

/// A BER-encoded value, interpreted in place.
struct ValueView {
  std::uint8_t tag = ber::kTagNull;
  std::span<const std::uint8_t> content;

  /// v2c varbind exception (noSuchObject / noSuchInstance / endOfMibView).
  bool is_exception() const { return tag >= 0x80 && tag <= 0x82; }
  bool is_end_of_mib_view() const { return tag == 0x82; }

  /// Counter32/Gauge32/TimeTicks/Counter64 content; throws BerError on
  /// any other tag.
  std::uint64_t to_unsigned() const;
  /// INTEGER content; throws BerError on any other tag.
  std::int64_t to_integer() const;
  /// OCTET STRING content as a borrowed view; throws on other tags.
  std::string_view to_text() const;
  /// Materializes the value (same result as ber::read_value).
  SnmpValue to_value() const;
};

struct VarBindView {
  OidView oid;
  ValueView value;
};

/// The message envelope with the varbind list left unparsed. For a v1
/// Trap-PDU only `version`, `community` and `pdu_tag` are meaningful;
/// `varbinds` is empty (trap bodies keep the materializing decoder).
struct MessageHeadView {
  SnmpVersion version = SnmpVersion::kV2c;
  std::string_view community;
  std::uint8_t pdu_tag = 0;
  std::int32_t request_id = 0;
  ErrorStatus error_status = ErrorStatus::kNoError;
  std::int32_t error_index = 0;
  BerReader varbinds;
};

/// Parses the envelope of a complete SNMP message without copying.
/// Throws BerError / BufferUnderflow on malformed input.
MessageHeadView decode_message_head(std::span<const std::uint8_t> wire);

/// Advances to the next varbind of a message head's list. Returns false
/// at the end; throws on malformed varbind structure.
bool next_varbind(BerReader& varbinds, VarBindView& out);

/// Materializes a varbind list (counts first, reserves once). Takes the
/// reader by value so the caller's cursor is unaffected.
std::vector<VarBind> decode_varbinds(BerReader varbinds);

}  // namespace netqos::snmp
