#include "snmp/client.h"

#include <stdexcept>

#include "common/log.h"
#include "snmp/ber.h"
#include "snmp/ber_view.h"

namespace netqos::snmp {

SnmpClient::SnmpClient(sim::Simulator& sim, sim::UdpStack& stack,
                       ClientConfig config)
    : sim_(sim), stack_(stack), config_(config) {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    own_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = own_metrics_.get();
  }
  requests_sent_ = &metrics_->counter(
      "netqos_snmp_requests_total",
      "SNMP requests transmitted, including retries");
  responses_ = &metrics_->counter("netqos_snmp_responses_total",
                                  "SNMP responses matched to a request");
  timeouts_ = &metrics_->counter(
      "netqos_snmp_timeouts_total",
      "SNMP requests abandoned after exhausting all retries");
  retries_ = &metrics_->counter("netqos_snmp_retries_total",
                                "SNMP request retransmissions");
  mismatched_ = &metrics_->counter(
      "netqos_snmp_mismatched_responses_total",
      "SNMP responses with an unknown request id (late duplicates)");
  bytes_sent_ = &metrics_->counter(
      "netqos_snmp_payload_bytes_sent_total",
      "SNMP payload octets transmitted (excluding UDP/IP/Ethernet framing)");
  bytes_received_ = &metrics_->counter(
      "netqos_snmp_payload_bytes_received_total",
      "SNMP payload octets received (excluding UDP/IP/Ethernet framing)");
  // 100 us .. ~1.6 s in doubling buckets: simulated LAN RTTs sit at the
  // bottom, timeout-bound retries at the top.
  rtt_histogram_ = &metrics_->histogram(
      "netqos_snmp_client_rtt_seconds",
      "Request-to-response round-trip time of the last attempt",
      {0.0001, 0.0002, 0.0004, 0.0008, 0.0016, 0.0032, 0.0064, 0.0128,
       0.0256, 0.0512, 0.1024, 0.2048, 0.4096, 0.8192, 1.6384});
  src_port_ = stack_.allocate_ephemeral_port();
  if (src_port_ == 0 ||
      !stack_.bind(src_port_,
                   [this](const sim::Ipv4Packet& p) { on_packet(p); })) {
    throw std::logic_error("SNMP client could not bind a source port");
  }
}

ClientStats SnmpClient::stats() const {
  ClientStats stats;
  stats.requests_sent = requests_sent_->value();
  stats.responses = responses_->value();
  stats.timeouts = timeouts_->value();
  stats.retries = retries_->value();
  stats.mismatched = mismatched_->value();
  stats.payload_bytes_sent = bytes_sent_->value();
  stats.payload_bytes_received = bytes_received_->value();
  return stats;
}

SnmpClient::~SnmpClient() {
  for (auto& [id, pending] : pending_) {
    sim_.cancel(pending.timeout_event);
    sim_.buffer_pool().release(std::move(pending.wire));
  }
  stack_.unbind(src_port_);
}

void SnmpClient::get(sim::Ipv4Address agent, const std::string& community,
                     std::vector<Oid> oids, Callback callback) {
  Pdu pdu;
  pdu.type = PduType::kGetRequest;
  for (auto& oid : oids) pdu.varbinds.push_back({std::move(oid), Null{}});
  send_request(agent, community, std::move(pdu), std::move(callback));
}

void SnmpClient::get_next(sim::Ipv4Address agent,
                          const std::string& community,
                          std::vector<Oid> oids, Callback callback) {
  Pdu pdu;
  pdu.type = PduType::kGetNextRequest;
  for (auto& oid : oids) pdu.varbinds.push_back({std::move(oid), Null{}});
  send_request(agent, community, std::move(pdu), std::move(callback));
}

void SnmpClient::get_bulk(sim::Ipv4Address agent,
                          const std::string& community,
                          std::vector<Oid> oids, std::int32_t non_repeaters,
                          std::int32_t max_repetitions, Callback callback) {
  Pdu pdu;
  pdu.type = PduType::kGetBulkRequest;
  pdu.error_status = static_cast<ErrorStatus>(non_repeaters);
  pdu.error_index = max_repetitions;
  for (auto& oid : oids) pdu.varbinds.push_back({std::move(oid), Null{}});
  send_request(agent, community, std::move(pdu), std::move(callback));
}

void SnmpClient::send_request(sim::Ipv4Address agent,
                              const std::string& community, Pdu pdu,
                              Callback callback) {
  const std::int32_t request_id = next_request_id_++;
  pdu.request_id = request_id;

  Message message;
  message.version = config_.version;
  message.community = community;
  message.pdu = std::move(pdu);

  Pending pending;
  pending.wire = encode_message(message, sim_.buffer_pool().acquire());
  pending.agent = agent;
  pending.callback = std::move(callback);
  pending_.emplace(request_id, std::move(pending));
  transmit(request_id);
}

void SnmpClient::transmit(std::int32_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;

  ++pending.attempts;
  pending.last_send = sim_.now();
  // The stack consumes its payload (the frame owns it until delivery), so
  // each transmit ships a pooled copy; `pending.wire` stays for retries.
  Bytes copy = sim_.buffer_pool().acquire();
  copy.assign(pending.wire.begin(), pending.wire.end());
  if (!stack_.send(pending.agent, sim::kSnmpPort, src_port_,
                   std::move(copy))) {
    SnmpResult result;
    result.status = SnmpResult::Status::kSendFailed;
    result.attempts = pending.attempts;
    Callback callback = std::move(pending.callback);
    sim_.buffer_pool().release(std::move(pending.wire));
    pending_.erase(it);
    callback(std::move(result));
    return;
  }
  requests_sent_->inc();
  bytes_sent_->inc(pending.wire.size());
  pending.timeout_event = sim_.schedule_after(
      config_.timeout, [this, request_id] { on_timeout(request_id); });
}

void SnmpClient::on_timeout(std::int32_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;

  if (pending.attempts <= config_.retries) {
    retries_->inc();
    transmit(request_id);
    return;
  }
  timeouts_->inc();
  SnmpResult result;
  result.status = SnmpResult::Status::kTimeout;
  result.attempts = pending.attempts;
  Callback callback = std::move(pending.callback);
  sim_.buffer_pool().release(std::move(pending.wire));
  pending_.erase(it);
  callback(std::move(result));
}

void SnmpClient::on_packet(const sim::Ipv4Packet& packet) {
  bytes_received_->inc(packet.udp.payload.size());
  // Zero-copy fast path: parse only the envelope to route the response.
  // Mismatched ids and foreign PDU types are dropped without ever
  // materializing an OID or value.
  MessageHeadView head;
  try {
    head = decode_message_head(packet.udp.payload);
  } catch (const BerError& e) {
    NETQOS_DEBUG() << "client decode error: " << e.what();
    return;
  } catch (const BufferUnderflow& e) {
    // Truncated datagram: the BER structure claimed more bytes than the
    // payload holds. Same treatment as malformed BER — drop it.
    NETQOS_DEBUG() << "client decode error: " << e.what();
    return;
  }
  if (head.pdu_tag != static_cast<std::uint8_t>(PduType::kGetResponse)) {
    return;
  }

  auto it = pending_.find(head.request_id);
  if (it == pending_.end()) {
    // Late duplicate after a retry already completed the request.
    mismatched_->inc();
    return;
  }

  // Materialize the varbinds before committing: a response whose envelope
  // parsed but whose varbinds are malformed is dropped like any other
  // garbage datagram, leaving the request pending for retry.
  SnmpResult result;
  try {
    result.varbinds = decode_varbinds(head.varbinds);
  } catch (const BerError& e) {
    NETQOS_DEBUG() << "client decode error: " << e.what();
    return;
  } catch (const BufferUnderflow& e) {
    NETQOS_DEBUG() << "client decode error: " << e.what();
    return;
  }

  Pending& pending = it->second;
  sim_.cancel(pending.timeout_event);
  responses_->inc();

  result.status = head.error_status == ErrorStatus::kNoError
                      ? SnmpResult::Status::kOk
                      : SnmpResult::Status::kErrorResponse;
  result.error_status = head.error_status;
  result.error_index = head.error_index;
  result.rtt = sim_.now() - pending.last_send;
  result.attempts = pending.attempts;
  rtt_histogram_->observe(to_seconds(result.rtt));

  Callback callback = std::move(pending.callback);
  sim_.buffer_pool().release(std::move(pending.wire));
  pending_.erase(it);
  callback(std::move(result));
}

}  // namespace netqos::snmp
