#include "snmp/client.h"

#include <stdexcept>

#include "common/log.h"
#include "snmp/ber.h"

namespace netqos::snmp {

SnmpClient::SnmpClient(sim::Simulator& sim, sim::UdpStack& stack,
                       ClientConfig config)
    : sim_(sim), stack_(stack), config_(config) {
  src_port_ = stack_.allocate_ephemeral_port();
  if (src_port_ == 0 ||
      !stack_.bind(src_port_,
                   [this](const sim::Ipv4Packet& p) { on_packet(p); })) {
    throw std::logic_error("SNMP client could not bind a source port");
  }
}

SnmpClient::~SnmpClient() {
  for (auto& [id, pending] : pending_) {
    sim_.cancel(pending.timeout_event);
  }
  stack_.unbind(src_port_);
}

void SnmpClient::get(sim::Ipv4Address agent, const std::string& community,
                     std::vector<Oid> oids, Callback callback) {
  Pdu pdu;
  pdu.type = PduType::kGetRequest;
  for (auto& oid : oids) pdu.varbinds.push_back({std::move(oid), Null{}});
  send_request(agent, community, std::move(pdu), std::move(callback));
}

void SnmpClient::get_next(sim::Ipv4Address agent,
                          const std::string& community,
                          std::vector<Oid> oids, Callback callback) {
  Pdu pdu;
  pdu.type = PduType::kGetNextRequest;
  for (auto& oid : oids) pdu.varbinds.push_back({std::move(oid), Null{}});
  send_request(agent, community, std::move(pdu), std::move(callback));
}

void SnmpClient::get_bulk(sim::Ipv4Address agent,
                          const std::string& community,
                          std::vector<Oid> oids, std::int32_t non_repeaters,
                          std::int32_t max_repetitions, Callback callback) {
  Pdu pdu;
  pdu.type = PduType::kGetBulkRequest;
  pdu.error_status = static_cast<ErrorStatus>(non_repeaters);
  pdu.error_index = max_repetitions;
  for (auto& oid : oids) pdu.varbinds.push_back({std::move(oid), Null{}});
  send_request(agent, community, std::move(pdu), std::move(callback));
}

void SnmpClient::send_request(sim::Ipv4Address agent,
                              const std::string& community, Pdu pdu,
                              Callback callback) {
  const std::int32_t request_id = next_request_id_++;
  pdu.request_id = request_id;

  Message message;
  message.version = config_.version;
  message.community = community;
  message.pdu = std::move(pdu);

  Pending pending;
  pending.wire = encode_message(message);
  pending.agent = agent;
  pending.callback = std::move(callback);
  pending_.emplace(request_id, std::move(pending));
  transmit(request_id);
}

void SnmpClient::transmit(std::int32_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;

  ++pending.attempts;
  pending.last_send = sim_.now();
  if (!stack_.send(pending.agent, sim::kSnmpPort, src_port_, pending.wire)) {
    SnmpResult result;
    result.status = SnmpResult::Status::kSendFailed;
    result.attempts = pending.attempts;
    Callback callback = std::move(pending.callback);
    pending_.erase(it);
    callback(std::move(result));
    return;
  }
  ++stats_.requests_sent;
  stats_.payload_bytes_sent += pending.wire.size();
  pending.timeout_event = sim_.schedule_after(
      config_.timeout, [this, request_id] { on_timeout(request_id); });
}

void SnmpClient::on_timeout(std::int32_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;

  if (pending.attempts <= config_.retries) {
    ++stats_.retries;
    transmit(request_id);
    return;
  }
  ++stats_.timeouts;
  SnmpResult result;
  result.status = SnmpResult::Status::kTimeout;
  result.attempts = pending.attempts;
  Callback callback = std::move(pending.callback);
  pending_.erase(it);
  callback(std::move(result));
}

void SnmpClient::on_packet(const sim::Ipv4Packet& packet) {
  stats_.payload_bytes_received += packet.udp.payload.size();
  Message message;
  try {
    message = decode_message(packet.udp.payload);
  } catch (const BerError& e) {
    NETQOS_DEBUG() << "client decode error: " << e.what();
    return;
  }
  if (message.pdu.type != PduType::kGetResponse) return;

  auto it = pending_.find(message.pdu.request_id);
  if (it == pending_.end()) {
    // Late duplicate after a retry already completed the request.
    ++stats_.mismatched;
    return;
  }
  Pending& pending = it->second;
  sim_.cancel(pending.timeout_event);
  ++stats_.responses;

  SnmpResult result;
  result.status = message.pdu.error_status == ErrorStatus::kNoError
                      ? SnmpResult::Status::kOk
                      : SnmpResult::Status::kErrorResponse;
  result.error_status = message.pdu.error_status;
  result.error_index = message.pdu.error_index;
  result.varbinds = std::move(message.pdu.varbinds);
  result.rtt = sim_.now() - pending.last_send;
  result.attempts = pending.attempts;

  Callback callback = std::move(pending.callback);
  pending_.erase(it);
  callback(std::move(result));
}

}  // namespace netqos::snmp
