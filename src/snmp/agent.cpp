#include "snmp/agent.h"

#include <stdexcept>

#include "common/log.h"
#include "snmp/ber.h"

namespace netqos::snmp {

SnmpAgent::SnmpAgent(sim::Simulator& sim, sim::UdpStack& stack,
                     AgentConfig config)
    : sim_(sim), stack_(stack), config_(std::move(config)),
      rng_(config_.seed) {
  const bool ok = stack_.bind(
      sim::kSnmpPort, [this](const sim::Ipv4Packet& p) { handle(p); });
  if (!ok) {
    throw std::logic_error("SNMP port already bound");
  }
}

void SnmpAgent::set_trap_sink(sim::Ipv4Address manager, std::uint16_t port) {
  trap_sink_ = manager;
  trap_port_ = port;
}

bool SnmpAgent::send_trap(const Oid& trap_oid,
                          std::vector<VarBind> varbinds) {
  if (trap_sink_.is_unspecified()) return false;

  Message message;
  message.version = SnmpVersion::kV2c;
  message.community = config_.community;
  message.pdu.type = PduType::kSnmpV2Trap;
  message.pdu.request_id = static_cast<std::int32_t>(rng_.next());

  // RFC 1905: first sysUpTime.0, then snmpTrapOID.0, then the payload.
  SnmpValue uptime = TimeTicks{0};
  if (auto value = mib_.get(mib2::kSysUpTime.child(0))) {
    uptime = std::move(*value);
  }
  message.pdu.varbinds.push_back({mib2::kSysUpTime.child(0), uptime});
  message.pdu.varbinds.push_back(
      {mib2::kSnmpTrapOid.child(0), SnmpValue(trap_oid)});
  for (auto& vb : varbinds) message.pdu.varbinds.push_back(std::move(vb));

  if (!stack_.send(trap_sink_, trap_port_, sim::kSnmpPort,
                   encode_message(message))) {
    return false;
  }
  ++stats_.traps_sent;
  return true;
}

bool SnmpAgent::send_trap_v1(const Oid& enterprise, GenericTrap generic_trap,
                             std::int32_t specific_trap,
                             std::vector<VarBind> varbinds) {
  if (trap_sink_.is_unspecified()) return false;

  Message message;
  message.version = SnmpVersion::kV1;
  message.community = config_.community;
  TrapV1Pdu trap;
  trap.enterprise = enterprise;
  trap.agent_addr = stack_.ip().value();
  trap.generic_trap = generic_trap;
  trap.specific_trap = specific_trap;
  if (auto value = mib_.get(mib2::kSysUpTime.child(0))) {
    if (const auto* ticks = std::get_if<TimeTicks>(&*value)) {
      trap.time_stamp_ticks = ticks->value;
    }
  }
  trap.varbinds = std::move(varbinds);
  message.trap_v1 = std::move(trap);

  if (!stack_.send(trap_sink_, trap_port_, sim::kSnmpPort,
                   encode_message(message))) {
    return false;
  }
  ++stats_.traps_sent;
  return true;
}

void SnmpAgent::handle(const sim::Ipv4Packet& packet) {
  ++stats_.requests;
  if (!responding_) return;  // daemon down: silent drop, manager times out

  Message request;
  try {
    request = decode_message(packet.udp.payload);
  } catch (const BerError& e) {
    ++stats_.decode_errors;
    NETQOS_DEBUG() << "agent decode error: " << e.what();
    return;
  } catch (const BufferUnderflow& e) {
    // Truncated request — drop like malformed BER.
    ++stats_.decode_errors;
    NETQOS_DEBUG() << "agent decode error: " << e.what();
    return;
  }
  if (request.community != config_.community) {
    // RFC 1157: silently drop on community mismatch (no trap support).
    ++stats_.auth_failures;
    return;
  }

  Message response;
  response.version = request.version;
  response.community = request.community;
  response.pdu = process(request);

  SimDuration delay =
      config_.base_processing_delay +
      from_seconds(rng_.exponential(to_seconds(config_.mean_jitter)));
  if (rng_.uniform() < config_.hiccup_probability) {
    delay += config_.hiccup_delay;
    ++stats_.hiccups;
  }

  const sim::Ipv4Address reply_to = packet.src;
  const std::uint16_t reply_port = packet.udp.src_port;
  Bytes wire = encode_message(response, sim_.buffer_pool().acquire());
  sim_.schedule_after(delay, [this, reply_to, reply_port,
                              wire = std::move(wire)]() mutable {
    if (stack_.send(reply_to, reply_port, sim::kSnmpPort, std::move(wire))) {
      ++stats_.responses;
    }
  });
}

Pdu SnmpAgent::process(const Message& request) {
  switch (request.pdu.type) {
    case PduType::kGetRequest:
      return process_get(request.pdu, request.version);
    case PduType::kGetNextRequest:
      return process_get_next(request.pdu, request.version);
    case PduType::kGetBulkRequest:
      if (request.version == SnmpVersion::kV2c) {
        return process_get_bulk(request.pdu);
      }
      [[fallthrough]];
    default: {
      Pdu response = request.pdu;
      response.type = PduType::kGetResponse;
      response.error_status = ErrorStatus::kGenErr;
      response.error_index = 0;
      return response;
    }
  }
}

Pdu SnmpAgent::process_get(const Pdu& request, SnmpVersion version) {
  Pdu response;
  response.type = PduType::kGetResponse;
  response.request_id = request.request_id;
  response.varbinds = request.varbinds;

  for (std::size_t i = 0; i < response.varbinds.size(); ++i) {
    auto value = mib_.get(response.varbinds[i].oid);
    if (value.has_value()) {
      response.varbinds[i].value = std::move(*value);
    } else if (version == SnmpVersion::kV2c) {
      response.varbinds[i].value = VarBindException::kNoSuchInstance;
    } else {
      response.error_status = ErrorStatus::kNoSuchName;
      response.error_index = static_cast<std::int32_t>(i + 1);
      return response;
    }
  }
  return response;
}

Pdu SnmpAgent::process_get_next(const Pdu& request, SnmpVersion version) {
  Pdu response;
  response.type = PduType::kGetResponse;
  response.request_id = request.request_id;
  response.varbinds = request.varbinds;

  for (std::size_t i = 0; i < response.varbinds.size(); ++i) {
    auto next = mib_.get_next(response.varbinds[i].oid);
    // RFC 1905 §4.2.2: the successor must be lexicographically greater
    // than the request OID. MibTree::get_next guarantees this by map
    // ordering, but a guard keeps a future MIB backend from ever
    // emitting the endless-walk responses the manager defends against.
    const bool increasing =
        next.has_value() && next->first > response.varbinds[i].oid;
    if (increasing) {
      response.varbinds[i].oid = std::move(next->first);
      response.varbinds[i].value = std::move(next->second);
    } else if (version == SnmpVersion::kV2c) {
      response.varbinds[i].value = VarBindException::kEndOfMibView;
    } else {
      response.error_status = ErrorStatus::kNoSuchName;
      response.error_index = static_cast<std::int32_t>(i + 1);
      return response;
    }
  }
  return response;
}

Pdu SnmpAgent::process_get_bulk(const Pdu& request) {
  Pdu response;
  response.type = PduType::kGetResponse;
  response.request_id = request.request_id;

  const auto non_repeaters = static_cast<std::size_t>(
      std::max<std::int32_t>(0, request.non_repeaters()));
  const auto max_reps = static_cast<std::size_t>(
      std::max<std::int32_t>(0, request.max_repetitions()));

  // Non-repeaters: one GETNEXT each.
  for (std::size_t i = 0;
       i < std::min(non_repeaters, request.varbinds.size()); ++i) {
    auto next = mib_.get_next(request.varbinds[i].oid);
    VarBind vb;
    if (next.has_value()) {
      vb.oid = next->first;
      vb.value = next->second;
    } else {
      vb.oid = request.varbinds[i].oid;
      vb.value = VarBindException::kEndOfMibView;
    }
    response.varbinds.push_back(std::move(vb));
  }

  // Repeaters: up to max-repetitions GETNEXT steps per varbind.
  for (std::size_t i = non_repeaters; i < request.varbinds.size(); ++i) {
    Oid cursor = request.varbinds[i].oid;
    for (std::size_t rep = 0; rep < max_reps; ++rep) {
      if (response.varbinds.size() >= config_.max_response_varbinds) {
        return response;
      }
      auto next = mib_.get_next(cursor);
      VarBind vb;
      // Same monotonicity guard as GETNEXT: a non-increasing successor
      // would repeat rows up to max-repetitions; end the view instead.
      if (!next.has_value() || next->first <= cursor) {
        vb.oid = cursor;
        vb.value = VarBindException::kEndOfMibView;
        response.varbinds.push_back(std::move(vb));
        break;
      }
      cursor = next->first;
      vb.oid = next->first;
      vb.value = next->second;
      response.varbinds.push_back(std::move(vb));
    }
  }
  return response;
}

}  // namespace netqos::snmp
