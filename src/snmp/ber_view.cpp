#include "snmp/ber_view.h"

namespace netqos::snmp {
namespace {

/// Walks the base-128 arcs of an encoded OID, invoking `fn(arc)` for
/// each logical arc (the packed first subidentifier yields two). `fn`
/// returns false to stop early; iterate_arcs then returns false too.
template <typename Fn>
bool iterate_arcs(std::span<const std::uint8_t> content, Fn&& fn) {
  if (content.empty()) throw BerError("empty OID");
  std::size_t pos = 0;
  bool first = true;
  while (pos < content.size()) {
    std::uint32_t arc = 0;
    std::uint8_t byte = 0;
    std::size_t septets = 0;
    do {
      if (pos >= content.size()) throw BerError("truncated OID arc");
      byte = content[pos++];
      if (++septets > 5) throw BerError("OID arc exceeds 32 bits");
      arc = (arc << 7) | (byte & 0x7f);
    } while (byte & 0x80);
    if (first) {
      first = false;
      if (!fn(arc < 80 ? arc / 40 : 2)) return false;
      if (!fn(arc < 80 ? arc % 40 : arc - 80)) return false;
    } else {
      if (!fn(arc)) return false;
    }
  }
  return true;
}

bool is_message_pdu_tag(std::uint8_t tag) {
  switch (static_cast<PduType>(tag)) {
    case PduType::kGetRequest:
    case PduType::kGetNextRequest:
    case PduType::kGetResponse:
    case PduType::kSetRequest:
    case PduType::kTrapV1:
    case PduType::kGetBulkRequest:
    case PduType::kSnmpV2Trap:
      return true;
  }
  return false;
}

std::int64_t read_integer(BerReader& in) {
  const std::span<const std::uint8_t> content =
      in.expect_tlv(ber::kTagInteger);
  ByteReader reader(content);
  return ber::read_integer_content(reader, content.size());
}

}  // namespace

Tlv BerReader::read_tlv() {
  Tlv tlv;
  std::size_t length = 0;
  tlv.tag = ber::read_header(in_, length);
  tlv.content = in_.get_bytes(length);
  return tlv;
}

std::span<const std::uint8_t> BerReader::expect_tlv(std::uint8_t tag) {
  const Tlv tlv = read_tlv();
  if (tlv.tag != tag) {
    throw BerError("expected tag " + std::to_string(tag) + ", got " +
                   std::to_string(tlv.tag));
  }
  return tlv.content;
}

bool OidView::starts_with(const Oid& prefix) const {
  const auto& arcs = prefix.arcs();
  std::size_t i = 0;
  iterate_arcs(content, [&](std::uint32_t arc) {
    if (i >= arcs.size()) return false;  // prefix exhausted: match
    if (arc != arcs[i]) return false;    // mismatch: i stays short
    ++i;
    return true;
  });
  return i >= arcs.size();
}

std::uint32_t OidView::last_arc() const {
  std::uint32_t last = 0;
  iterate_arcs(content, [&](std::uint32_t arc) {
    last = arc;
    return true;
  });
  return last;
}

std::size_t OidView::arc_count() const {
  std::size_t count = 0;
  iterate_arcs(content, [&](std::uint32_t) {
    ++count;
    return true;
  });
  return count;
}

int OidView::compare(const Oid& other) const {
  const auto& arcs = other.arcs();
  std::size_t i = 0;
  int verdict = 0;
  iterate_arcs(content, [&](std::uint32_t arc) {
    if (i >= arcs.size()) {
      verdict = 1;  // view is longer: greater
      return false;
    }
    if (arc != arcs[i]) {
      verdict = arc < arcs[i] ? -1 : 1;
      return false;
    }
    ++i;
    return true;
  });
  if (verdict != 0) return verdict;
  return i < arcs.size() ? -1 : 0;  // view is a strict prefix: less
}

Oid OidView::to_oid() const {
  std::vector<std::uint32_t> arcs;
  iterate_arcs(content, [&](std::uint32_t arc) {
    arcs.push_back(arc);
    return true;
  });
  return Oid(std::move(arcs));
}

std::uint64_t ValueView::to_unsigned() const {
  switch (tag) {
    case ber::kTagCounter32:
    case ber::kTagGauge32:
    case ber::kTagTimeTicks:
    case ber::kTagCounter64:
      break;
    default:
      throw BerError("not an unsigned type, tag " + std::to_string(tag));
  }
  ByteReader reader(content);
  return ber::read_unsigned_content(reader, content.size());
}

std::int64_t ValueView::to_integer() const {
  if (tag != ber::kTagInteger) {
    throw BerError("not an INTEGER, tag " + std::to_string(tag));
  }
  ByteReader reader(content);
  return ber::read_integer_content(reader, content.size());
}

std::string_view ValueView::to_text() const {
  if (tag != ber::kTagOctetString) {
    throw BerError("not an OCTET STRING, tag " + std::to_string(tag));
  }
  return {reinterpret_cast<const char*>(content.data()), content.size()};
}

SnmpValue ValueView::to_value() const {
  ByteReader reader(content);
  switch (tag) {
    case ber::kTagNull:
      return Null{};
    case ber::kTagInteger:
      return ber::read_integer_content(reader, content.size());
    case ber::kTagOctetString:
      return reader.get_string(content.size());
    case ber::kTagOid:
      return ber::read_oid_content(reader, content.size());
    case ber::kTagIpAddress: {
      if (content.size() != 4) throw BerError("IpAddress must be 4 octets");
      return IpAddressValue{reader.get_u32()};
    }
    case ber::kTagCounter32:
      return Counter32{static_cast<std::uint32_t>(
          ber::read_unsigned_content(reader, content.size()))};
    case ber::kTagGauge32:
      return Gauge32{static_cast<std::uint32_t>(
          ber::read_unsigned_content(reader, content.size()))};
    case ber::kTagTimeTicks:
      return TimeTicks{static_cast<std::uint32_t>(
          ber::read_unsigned_content(reader, content.size()))};
    case ber::kTagCounter64:
      return Counter64{ber::read_unsigned_content(reader, content.size())};
    case 0x80:
    case 0x81:
    case 0x82:
      return static_cast<VarBindException>(tag);
    default:
      throw BerError("unsupported value tag " + std::to_string(tag));
  }
}

MessageHeadView decode_message_head(std::span<const std::uint8_t> wire) {
  BerReader in(wire);
  BerReader message(in.expect_tlv(ber::kTagSequence));

  MessageHeadView head;
  head.version = static_cast<SnmpVersion>(read_integer(message));
  if (head.version != SnmpVersion::kV1 &&
      head.version != SnmpVersion::kV2c) {
    throw BerError("unsupported SNMP version");
  }
  const std::span<const std::uint8_t> community =
      message.expect_tlv(ber::kTagOctetString);
  head.community = {reinterpret_cast<const char*>(community.data()),
                    community.size()};

  const Tlv body = message.read_tlv();
  if (!is_message_pdu_tag(body.tag)) {
    throw BerError("unknown PDU tag " + std::to_string(body.tag));
  }
  head.pdu_tag = body.tag;
  if (head.pdu_tag == static_cast<std::uint8_t>(PduType::kTrapV1)) {
    return head;  // trap bodies are parsed by the materializing decoder
  }

  BerReader pdu(body.content);
  head.request_id = static_cast<std::int32_t>(read_integer(pdu));
  head.error_status = static_cast<ErrorStatus>(read_integer(pdu));
  head.error_index = static_cast<std::int32_t>(read_integer(pdu));
  head.varbinds = BerReader(pdu.expect_tlv(ber::kTagSequence));
  return head;
}

bool next_varbind(BerReader& varbinds, VarBindView& out) {
  if (varbinds.empty()) return false;
  BerReader varbind(varbinds.expect_tlv(ber::kTagSequence));
  out.oid.content = varbind.expect_tlv(ber::kTagOid);
  const Tlv value = varbind.read_tlv();
  out.value.tag = value.tag;
  out.value.content = value.content;
  if (!varbind.empty()) throw BerError("trailing bytes in varbind");
  return true;
}

std::vector<VarBind> decode_varbinds(BerReader varbinds) {
  BerReader counter = varbinds;
  std::size_t count = 0;
  while (!counter.empty()) {
    counter.expect_tlv(ber::kTagSequence);
    ++count;
  }
  std::vector<VarBind> result;
  result.reserve(count);
  VarBindView view;
  while (next_varbind(varbinds, view)) {
    result.push_back(VarBind{view.oid.to_oid(), view.value.to_value()});
  }
  return result;
}

}  // namespace netqos::snmp
