#include "snmp/bridge.h"

namespace netqos::snmp {

Oid fdb_instance(const sim::MacAddress& mac) {
  std::vector<std::uint32_t> arcs;
  arcs.reserve(6);
  for (std::uint8_t octet : mac.octets()) arcs.push_back(octet);
  return mib2::kDot1dTpFdbPort.concat(Oid(std::move(arcs)));
}

void register_bridge_mib(MibTree& mib, const sim::Switch& sw) {
  mib.add_refresh_hook([&sw](MibTree& tree) {
    tree.unregister_subtree(mib2::kDot1dTpFdbPort);
    for (const auto& [mac, port] : sw.fdb()) {
      // Map the learned port back to its 1-based interface position.
      std::int64_t port_number = 0;
      const auto& nics = sw.interfaces();
      for (std::size_t i = 0; i < nics.size(); ++i) {
        if (nics[i].get() == port) {
          port_number = static_cast<std::int64_t>(i + 1);
          break;
        }
      }
      if (port_number == 0) continue;
      tree.register_constant(fdb_instance(mac), port_number);
    }
  });
}

}  // namespace netqos::snmp
