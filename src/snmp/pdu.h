// SNMP PDUs and messages (RFC 1157 / RFC 1905 wire format).
#pragma once

#include <optional>
#include <cstdint>
#include <string>
#include <vector>

#include "common/byte_buffer.h"
#include "snmp/oid.h"
#include "snmp/value.h"

namespace netqos::snmp {

enum class PduType : std::uint8_t {
  kGetRequest = 0xa0,
  kGetNextRequest = 0xa1,
  kGetResponse = 0xa2,
  kSetRequest = 0xa3,
  kTrapV1 = 0xa4,      ///< classic Trap-PDU (RFC 1157 §4.1.6)
  kGetBulkRequest = 0xa5,
  kSnmpV2Trap = 0xa7,  ///< unacknowledged notification (RFC 1905 §4.2.6)
};

/// RFC 1157 generic-trap codes.
enum class GenericTrap : std::int32_t {
  kColdStart = 0,
  kWarmStart = 1,
  kLinkDown = 2,
  kLinkUp = 3,
  kAuthenticationFailure = 4,
  kEgpNeighborLoss = 5,
  kEnterpriseSpecific = 6,
};

enum class ErrorStatus : std::int32_t {
  kNoError = 0,
  kTooBig = 1,
  kNoSuchName = 2,
  kBadValue = 3,
  kReadOnly = 4,
  kGenErr = 5,
};

const char* error_status_name(ErrorStatus status);

struct VarBind {
  Oid oid;
  SnmpValue value = Null{};

  bool operator==(const VarBind& o) const {
    return oid == o.oid && value == o.value;
  }
};

struct Pdu {
  PduType type = PduType::kGetRequest;
  std::int32_t request_id = 0;
  // For GetBulk these two fields are non-repeaters / max-repetitions
  // (RFC 1905 reuses the error-status/error-index slots).
  ErrorStatus error_status = ErrorStatus::kNoError;
  std::int32_t error_index = 0;
  std::vector<VarBind> varbinds;

  std::int32_t non_repeaters() const {
    return static_cast<std::int32_t>(error_status);
  }
  std::int32_t max_repetitions() const { return error_index; }
};

/// The classic SNMPv1 Trap-PDU, whose body differs from every other PDU
/// (RFC 1157 §4.1.6): enterprise OID, agent address, generic/specific
/// trap codes and a timestamp instead of request-id/error fields.
struct TrapV1Pdu {
  Oid enterprise;
  std::uint32_t agent_addr = 0;  ///< IPv4, host order
  GenericTrap generic_trap = GenericTrap::kEnterpriseSpecific;
  std::int32_t specific_trap = 0;
  std::uint32_t time_stamp_ticks = 0;
  std::vector<VarBind> varbinds;
};

enum class SnmpVersion : std::int32_t { kV1 = 0, kV2c = 1 };

struct Message {
  SnmpVersion version = SnmpVersion::kV2c;
  std::string community = "public";
  /// The regular PDU — ignored when `trap_v1` is engaged.
  Pdu pdu;
  /// When set, the message carries a classic v1 Trap-PDU instead of
  /// `pdu`. Only meaningful with version == kV1.
  std::optional<TrapV1Pdu> trap_v1;
};

/// Serializes a complete SNMP message (the UDP payload).
///
/// Single-pass: nested lengths are computed up front with the ber::*_size
/// helpers, so the encoder performs exactly one reserve and no scratch
/// buffers. Pass a recycled buffer (e.g. from BufferPool::acquire) as
/// `reuse` to make steady-state encoding allocation-free; its contents
/// are discarded but its capacity is kept.
Bytes encode_message(const Message& message, Bytes reuse = {});

/// Parses a complete SNMP message; throws BerError on malformed input.
Message decode_message(const Bytes& wire);

}  // namespace netqos::snmp
