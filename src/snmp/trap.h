// Manager-side SNMP notification receiver.
//
// Listens on UDP/162, decodes SNMPv2-Trap messages, splits off the two
// standard varbinds (sysUpTime.0, snmpTrapOID.0), and hands the rest to a
// callback. Used by the failure-detection extension: agents emit
// linkDown/linkUp when a cable's carrier changes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netsim/udp.h"
#include "snmp/pdu.h"

namespace netqos::snmp {

struct TrapNotification {
  sim::Ipv4Address source;  ///< agent that sent the trap
  std::string community;
  std::uint32_t sys_uptime_ticks = 0;
  Oid trap_oid;
  std::vector<VarBind> varbinds;  ///< payload after the standard two
};

struct TrapListenerStats {
  std::uint64_t received = 0;
  std::uint64_t malformed = 0;
};

class TrapListener {
 public:
  using Callback = std::function<void(const TrapNotification&)>;

  /// Binds `port` on the stack. Throws std::logic_error if taken.
  TrapListener(sim::UdpStack& stack, Callback callback,
               std::uint16_t port = sim::kSnmpTrapPort);
  ~TrapListener();
  TrapListener(const TrapListener&) = delete;
  TrapListener& operator=(const TrapListener&) = delete;

  const TrapListenerStats& stats() const { return stats_; }

 private:
  void handle(const sim::Ipv4Packet& packet);

  sim::UdpStack& stack_;
  Callback callback_;
  std::uint16_t port_;
  TrapListenerStats stats_;
};

}  // namespace netqos::snmp
