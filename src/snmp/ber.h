// BER (Basic Encoding Rules) subset for SNMP.
//
// SNMP messages are ASN.1 structures serialized with BER (RFC 1157 §4,
// RFC 1906). This codec implements the definite-length encodings SNMP
// needs: universal INTEGER / OCTET STRING / NULL / OBJECT IDENTIFIER /
// SEQUENCE, the SMI application types (IpAddress, Counter32, Gauge32,
// TimeTicks, Counter64), context-tagged PDUs, and the v2c varbind
// exceptions.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/byte_buffer.h"
#include "snmp/oid.h"
#include "snmp/value.h"

namespace netqos::snmp {

/// Thrown when decoding meets malformed or unsupported BER.
class BerError : public std::runtime_error {
 public:
  explicit BerError(const std::string& what)
      : std::runtime_error("BER: " + what) {}
};

namespace ber {

// Tag octets.
inline constexpr std::uint8_t kTagInteger = 0x02;
inline constexpr std::uint8_t kTagOctetString = 0x04;
inline constexpr std::uint8_t kTagNull = 0x05;
inline constexpr std::uint8_t kTagOid = 0x06;
inline constexpr std::uint8_t kTagSequence = 0x30;
inline constexpr std::uint8_t kTagIpAddress = 0x40;
inline constexpr std::uint8_t kTagCounter32 = 0x41;
inline constexpr std::uint8_t kTagGauge32 = 0x42;
inline constexpr std::uint8_t kTagTimeTicks = 0x43;
inline constexpr std::uint8_t kTagCounter64 = 0x46;
// Context-specific constructed tags select the PDU type.
inline constexpr std::uint8_t kTagGetRequest = 0xa0;
inline constexpr std::uint8_t kTagGetNextRequest = 0xa1;
inline constexpr std::uint8_t kTagGetResponse = 0xa2;
inline constexpr std::uint8_t kTagSetRequest = 0xa3;
inline constexpr std::uint8_t kTagGetBulkRequest = 0xa5;

/// Writes a tag + definite length header.
void write_header(ByteWriter& out, std::uint8_t tag, std::size_t length);

/// Writes tag+length+content for each primitive type.
void write_integer(ByteWriter& out, std::int64_t value);
void write_unsigned(ByteWriter& out, std::uint8_t tag, std::uint64_t value);
void write_octet_string(ByteWriter& out, const std::string& value);
void write_null(ByteWriter& out);
void write_oid(ByteWriter& out, const Oid& oid);
void write_value(ByteWriter& out, const SnmpValue& value);

/// Wraps already-encoded content in a constructed TLV.
void write_wrapped(ByteWriter& out, std::uint8_t tag, const Bytes& content);

/// Encoded sizes, for computing nested lengths ahead of a single-pass
/// encode (no scratch buffers). Each *_size returns the full TLV size
/// (tag + length octets + content) the matching write_* would emit.
std::size_t header_size(std::size_t content_length);
std::size_t integer_size(std::int64_t value);
std::size_t unsigned_size(std::uint64_t value);
std::size_t octet_string_size(const std::string& value);
std::size_t oid_size(const Oid& oid);
std::size_t value_size(const SnmpValue& value);

/// Reads a TLV header; returns the tag and sets `length`.
std::uint8_t read_header(ByteReader& in, std::size_t& length);
/// Reads a header and demands a specific tag.
std::size_t expect_header(ByteReader& in, std::uint8_t tag);

std::int64_t read_integer_content(ByteReader& in, std::size_t length);
std::uint64_t read_unsigned_content(ByteReader& in, std::size_t length);
Oid read_oid_content(ByteReader& in, std::size_t length);

/// Reads one complete value TLV of any supported type.
SnmpValue read_value(ByteReader& in);

/// Reads an INTEGER TLV.
std::int64_t read_integer(ByteReader& in);
/// Reads an OCTET STRING TLV.
std::string read_octet_string(ByteReader& in);
/// Reads an OBJECT IDENTIFIER TLV.
Oid read_oid(ByteReader& in);

}  // namespace ber
}  // namespace netqos::snmp
