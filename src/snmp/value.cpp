#include "snmp/value.h"

namespace netqos::snmp {

std::string value_to_string(const SnmpValue& value) {
  struct Visitor {
    std::string operator()(Null) const { return "NULL"; }
    std::string operator()(std::int64_t v) const { return std::to_string(v); }
    std::string operator()(const std::string& v) const {
      return '"' + v + '"';
    }
    std::string operator()(const Oid& v) const { return v.to_string(); }
    std::string operator()(IpAddressValue v) const {
      return std::to_string((v.value >> 24) & 0xff) + "." +
             std::to_string((v.value >> 16) & 0xff) + "." +
             std::to_string((v.value >> 8) & 0xff) + "." +
             std::to_string(v.value & 0xff);
    }
    std::string operator()(Counter32 v) const {
      return "Counter32(" + std::to_string(v.value) + ")";
    }
    std::string operator()(Gauge32 v) const {
      return "Gauge32(" + std::to_string(v.value) + ")";
    }
    std::string operator()(TimeTicks v) const {
      return "TimeTicks(" + std::to_string(v.value) + ")";
    }
    std::string operator()(Counter64 v) const {
      return "Counter64(" + std::to_string(v.value) + ")";
    }
    std::string operator()(VarBindException e) const {
      switch (e) {
        case VarBindException::kNoSuchObject: return "noSuchObject";
        case VarBindException::kNoSuchInstance: return "noSuchInstance";
        case VarBindException::kEndOfMibView: return "endOfMibView";
      }
      return "exception?";
    }
  };
  return std::visit(Visitor{}, value);
}

std::uint32_t as_counter32(const SnmpValue& value) {
  return std::get<Counter32>(value).value;
}

std::uint32_t as_gauge32(const SnmpValue& value) {
  return std::get<Gauge32>(value).value;
}

std::uint32_t as_timeticks(const SnmpValue& value) {
  return std::get<TimeTicks>(value).value;
}

std::int64_t as_integer(const SnmpValue& value) {
  return std::get<std::int64_t>(value);
}

bool is_exception(const SnmpValue& value) {
  return std::holds_alternative<VarBindException>(value);
}

}  // namespace netqos::snmp
