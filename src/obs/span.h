// Lightweight trace spans over simulated time.
//
// A SpanRecorder captures begin/end pairs — one span per poll round, one
// nested span per agent poll — stamped with the simulator's virtual
// clock. The JSONL export writes one Chrome trace-event object per line
// ("X" complete events, microsecond timestamps), so a recorded timeline
// loads directly into chrome://tracing or Perfetto after wrapping the
// lines in a JSON array.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "obs/metrics.h"

namespace netqos::obs {

struct Span {
  std::string name;
  std::string category;
  SimTime begin = 0;
  SimTime end = -1;  ///< -1 while the span is open
  Labels args;

  bool finished() const { return end >= begin; }
  SimDuration duration() const { return finished() ? end - begin : 0; }
};

class SpanRecorder {
 public:
  /// Index of the span in spans(); stable because spans are append-only.
  using SpanId = std::size_t;

  /// Spans beyond this many are dropped (and counted) instead of growing
  /// the timeline without bound on long runs.
  explicit SpanRecorder(std::size_t capacity = 1 << 20)
      : capacity_(capacity) {}

  /// Opens a span at virtual time `now`. The caller supplies the clock:
  /// the recorder has no simulator dependency.
  SpanId begin(std::string name, std::string category, SimTime now,
               Labels args = {});
  /// Closes a span. Ignores ids of dropped spans.
  void end(SpanId id, SimTime now);

  const std::vector<Span>& spans() const { return spans_; }
  std::size_t open_spans() const { return open_; }
  std::size_t dropped() const { return dropped_; }

  /// Chrome trace-event JSONL: one complete ("X") event per finished
  /// span. Open spans are emitted as begin ("B") events so an aborted
  /// run's partial timeline is still visible.
  void write_jsonl(std::ostream& out) const;

 private:
  std::vector<Span> spans_;
  std::size_t capacity_;
  std::size_t open_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace netqos::obs
