#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace netqos::obs {
namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  return std::all_of(name.begin() + 1, name.end(), [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  });
}

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// HELP-text escaping per the exposition format: backslash and newline
/// only (quotes stay literal on HELP lines).
std::string escape_help(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + escape_label(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

/// Extra labels appended to an existing label block (histogram `le`).
std::string render_labels_with(const Labels& labels, const std::string& key,
                               const std::string& value) {
  Labels all = labels;
  all.emplace_back(key, value);
  return render_labels(all);
}

std::string format_double(double v) {
  std::ostringstream out;
  out << std::setprecision(15) << v;
  return out.str();
}

std::string format_bound(double bound) { return format_double(bound); }

}  // namespace

std::string json_escape(const std::string& value) {
  std::ostringstream out;
  for (char c : value) {
    switch (c) {
      case '\\': out << "\\\\"; break;
      case '"': out << "\\\""; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c) << std::dec;
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

const char* metric_type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                const std::string& help,
                                                MetricType type) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("invalid metric name: '" + name + "'");
  }
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.help = help;
    it->second.type = type;
  } else if (it->second.type != type) {
    throw std::invalid_argument(
        "metric '" + name + "' already registered as " +
        metric_type_name(it->second.type));
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help, Labels labels) {
  Series& series =
      family(name, help, MetricType::kCounter).series[sorted(std::move(labels))];
  if (!series.counter) series.counter = std::make_unique<Counter>();
  return *series.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help, Labels labels) {
  Series& series =
      family(name, help, MetricType::kGauge).series[sorted(std::move(labels))];
  if (!series.gauge) series.gauge = std::make_unique<Gauge>();
  return *series.gauge;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            const std::string& help,
                                            std::vector<double> bounds,
                                            Labels labels) {
  Family& fam = family(name, help, MetricType::kHistogram);
  if (fam.bounds.empty()) fam.bounds = std::move(bounds);
  Series& series = fam.series[sorted(std::move(labels))];
  if (!series.histogram) {
    series.histogram =
        std::make_unique<HistogramMetric>(Histogram(fam.bounds));
  }
  return *series.histogram;
}

void MetricsRegistry::collect() {
  for (const auto& fn : collectors_) fn();
}

void MetricsRegistry::render_prometheus(std::ostream& out) {
  collect();
  for (const auto& [name, fam] : families_) {
    out << "# HELP " << name << ' ' << escape_help(fam.help) << '\n';
    out << "# TYPE " << name << ' ' << metric_type_name(fam.type) << '\n';
    for (const auto& [labels, series] : fam.series) {
      switch (fam.type) {
        case MetricType::kCounter:
          out << name << render_labels(labels) << ' '
              << series.counter->value() << '\n';
          break;
        case MetricType::kGauge:
          out << name << render_labels(labels) << ' '
              << format_double(series.gauge->value()) << '\n';
          break;
        case MetricType::kHistogram: {
          const Histogram& h = series.histogram->data();
          std::size_t cumulative = 0;
          for (std::size_t b = 0; b < h.bounds().size(); ++b) {
            cumulative += h.bucket_counts()[b];
            out << name << "_bucket"
                << render_labels_with(labels, "le",
                                      format_bound(h.bounds()[b]))
                << ' ' << cumulative << '\n';
          }
          out << name << "_bucket"
              << render_labels_with(labels, "le", "+Inf") << ' ' << h.count()
              << '\n';
          out << name << "_sum" << render_labels(labels) << ' '
              << format_double(h.sum()) << '\n';
          out << name << "_count" << render_labels(labels) << ' '
              << h.count() << '\n';
          break;
        }
      }
    }
  }
}

void MetricsRegistry::render_jsonl(std::ostream& out) {
  collect();
  for (const auto& [name, fam] : families_) {
    for (const auto& [labels, series] : fam.series) {
      out << "{\"metric\":\"" << json_escape(name) << "\",\"type\":\""
          << metric_type_name(fam.type) << "\",\"labels\":{";
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i > 0) out << ',';
        out << '"' << json_escape(labels[i].first) << "\":\""
            << json_escape(labels[i].second) << '"';
      }
      out << '}';
      switch (fam.type) {
        case MetricType::kCounter:
          out << ",\"value\":" << series.counter->value();
          break;
        case MetricType::kGauge:
          out << ",\"value\":" << format_double(series.gauge->value());
          break;
        case MetricType::kHistogram: {
          const Histogram& h = series.histogram->data();
          out << ",\"count\":" << h.count()
              << ",\"sum\":" << format_double(h.sum()) << ",\"buckets\":[";
          for (std::size_t b = 0; b < h.bucket_counts().size(); ++b) {
            if (b > 0) out << ',';
            out << "{\"le\":";
            if (b < h.bounds().size()) {
              out << format_double(h.bounds()[b]);
            } else {
              out << "\"+Inf\"";
            }
            out << ",\"count\":" << h.bucket_counts()[b] << '}';
          }
          out << ']';
          break;
        }
      }
      out << "}\n";
    }
  }
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const Labels& labels) const {
  auto fam = families_.find(name);
  if (fam == families_.end()) return nullptr;
  auto series = fam->second.series.find(sorted(labels));
  return series == fam->second.series.end() ? nullptr
                                            : series->second.counter.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name,
                                         const Labels& labels) const {
  auto fam = families_.find(name);
  if (fam == families_.end()) return nullptr;
  auto series = fam->second.series.find(sorted(labels));
  return series == fam->second.series.end() ? nullptr
                                            : series->second.gauge.get();
}

const HistogramMetric* MetricsRegistry::find_histogram(
    const std::string& name, const Labels& labels) const {
  auto fam = families_.find(name);
  if (fam == families_.end()) return nullptr;
  auto series = fam->second.series.find(sorted(labels));
  return series == fam->second.series.end()
             ? nullptr
             : series->second.histogram.get();
}

}  // namespace netqos::obs
