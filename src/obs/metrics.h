// Telemetry metrics registry.
//
// Decouples metric *collection* (cheap counter bumps on hot paths, or
// pull-style collector callbacks that read values already maintained
// elsewhere) from metric *export* (Prometheus text exposition and JSONL
// snapshots). Components obtain instrument references once, at setup
// time, and pay only an increment per event afterwards; exporters walk
// the registry on demand.
//
// Naming follows the Prometheus conventions: `netqos_` prefix, base
// units in the name (`_seconds`, `_bytes`), `_total` suffix on counters,
// labels for per-agent / per-link dimensions
// (`netqos_snmp_rtt_seconds{agent="S1"}`).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace netqos::obs {

/// Label set as (key, value) pairs; the registry sorts them by key, so
/// any order identifies the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  /// Overwrites with a total read from an external monotonic source —
  /// for collector callbacks exporting counters a component already
  /// maintains (e.g. the simulator's events-executed count).
  void set_total(std::uint64_t total) { value_ = total; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Value that can go up and down (queue depths, sizes).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Registry-owned view over a fixed-bucket netqos::Histogram.
class HistogramMetric {
 public:
  explicit HistogramMetric(Histogram histogram)
      : histogram_(std::move(histogram)) {}

  void observe(double x) { histogram_.add(x); }
  const Histogram& data() const { return histogram_; }

 private:
  Histogram histogram_;
};

enum class MetricType { kCounter, kGauge, kHistogram };

const char* metric_type_name(MetricType type);

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(const std::string& value);

/// Owns all instruments. Single-threaded, like the simulator. Instrument
/// references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter for (name, labels), creating it on first use.
  /// Throws std::invalid_argument on an invalid metric name or when the
  /// name is already registered with a different type.
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  /// `bounds` are the finite bucket upper bounds; only the first call for
  /// a family sets them (later calls reuse the family's layout).
  HistogramMetric& histogram(const std::string& name,
                             const std::string& help,
                             std::vector<double> bounds, Labels labels = {});

  /// Registers a pull-style callback run by collect() before every
  /// export — the hook for components that already maintain their own
  /// counters (simulator, NICs, links).
  void add_collector(std::function<void()> fn) {
    collectors_.push_back(std::move(fn));
  }
  void collect();

  /// Prometheus text exposition format (runs collect() first).
  void render_prometheus(std::ostream& out);
  /// One JSON object per series per line (runs collect() first).
  void render_jsonl(std::ostream& out);

  /// Series lookup for tests/consumers; nullptr when absent.
  const Counter* find_counter(const std::string& name,
                              const Labels& labels = {}) const;
  const Gauge* find_gauge(const std::string& name,
                          const Labels& labels = {}) const;
  const HistogramMetric* find_histogram(const std::string& name,
                                        const Labels& labels = {}) const;

  std::size_t family_count() const { return families_.size(); }

 private:
  struct Series {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  struct Family {
    std::string help;
    MetricType type = MetricType::kCounter;
    std::vector<double> bounds;  // histogram families only
    std::map<Labels, Series> series;
  };

  Family& family(const std::string& name, const std::string& help,
                 MetricType type);

  std::map<std::string, Family> families_;
  std::vector<std::function<void()>> collectors_;
};

}  // namespace netqos::obs
