#include "obs/span.h"

#include <iomanip>
#include <sstream>

namespace netqos::obs {
namespace {

/// Chrome trace-event timestamps are microseconds; keep sub-microsecond
/// precision from the nanosecond virtual clock as a fraction.
std::string to_trace_us(SimTime t) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3)
      << static_cast<double>(t) / 1000.0;
  return out.str();
}

void write_args(std::ostream& out, const Labels& args) {
  out << "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out << ',';
    out << '"' << json_escape(args[i].first) << "\":\""
        << json_escape(args[i].second) << '"';
  }
  out << '}';
}

}  // namespace

SpanRecorder::SpanId SpanRecorder::begin(std::string name,
                                         std::string category, SimTime now,
                                         Labels args) {
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return capacity_;  // out-of-range id; end() ignores it
  }
  Span span;
  span.name = std::move(name);
  span.category = std::move(category);
  span.begin = now;
  span.args = std::move(args);
  spans_.push_back(std::move(span));
  ++open_;
  return spans_.size() - 1;
}

void SpanRecorder::end(SpanId id, SimTime now) {
  if (id >= spans_.size()) return;
  Span& span = spans_[id];
  if (span.finished()) return;
  span.end = now;
  if (open_ > 0) --open_;
}

void SpanRecorder::write_jsonl(std::ostream& out) const {
  for (const Span& span : spans_) {
    out << "{\"name\":\"" << json_escape(span.name) << "\",\"cat\":\""
        << json_escape(span.category) << "\",\"ph\":\""
        << (span.finished() ? 'X' : 'B') << "\",\"pid\":1,\"tid\":1,"
        << "\"ts\":" << to_trace_us(span.begin);
    if (span.finished()) {
      out << ",\"dur\":" << to_trace_us(span.duration());
    }
    out << ',';
    write_args(out, span.args);
    out << "}\n";
  }
}

}  // namespace netqos::obs
