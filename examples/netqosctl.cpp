// netqosctl — CLI client for the monitor's query service.
//
// Usage:
//   netqosctl query  [--group if|path|host] [--select STR] [--last SECS]
//                    [--seconds N]
//   netqosctl health [--seconds N]
//   netqosctl watch  [--seconds N]
//   netqosctl modules [--modules LIST] [--seconds N]
//   netqosctl probes [--probe LIST] [--seconds N]
//
// Stands up the LIRTSS testbed with the monitor (and its query server) on
// host L, issues the command from host S3 over the simulated network, and
// prints the transcript — the whole query round trip rides the same links
// as the SNMP poll train.
//
//   query   runs fig5-style pulse loads, then asks for windowed
//           min/mean/max/p95 rows over the trailing window.
//   health  prints every agent's scheduler state and every monitored
//           path's current usage/staleness/detector verdict.
//   watch   subscribes to the event stream and drives a load heavy enough
//           to violate the S1 <-> N1 requirement, printing violation,
//           predictive-warning, and recovery events as they are pushed.
//   modules enables measurement modules on the monitor (default: every
//           registry module) and prints each module's telemetry and
//           self-description as reported over the wire.
//   probes  runs active estimators (default: all of them) on every qos
//           path and prints their convergence state and latest estimate
//           as carried in the health snapshot.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "experiments/lirtss.h"
#include "monitor/modules/registry.h"
#include "monitor/qos.h"
#include "probe/estimator.h"
#include "probe/registry.h"
#include "probe/sink.h"
#include "query/client.h"
#include "query/engine.h"
#include "query/server.h"
#include "topology/model.h"
#include "topology/path.h"

using namespace netqos;

namespace {

struct Options {
  std::string command;
  query::GroupBy group = query::GroupBy::kPath;
  std::string selector;
  double last_s = 30;     // trailing window for `query`
  double seconds = 40;    // simulated run length
  std::string modules;    // `modules` command: names to enable, ""=all
  std::string probe = "all";  // `probes` command: estimator names
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s query [--group if|path|host] [--select STR] "
               "[--last SECS] [--seconds N]\n"
               "       %s health [--seconds N]\n"
               "       %s watch [--seconds N]\n"
               "       %s modules [--modules LIST] [--seconds N]\n"
               "       %s probes [--probe LIST] [--seconds N]\n",
               argv0, argv0, argv0, argv0, argv0);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  Options options;
  options.command = argv[1];
  if (options.command != "query" && options.command != "health" &&
      options.command != "watch" && options.command != "modules" &&
      options.command != "probes") {
    usage(argv[0]);
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (++i >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        usage(argv[0]);
      }
      return argv[i];
    };
    if (arg == "--group") {
      const std::string group = next("--group");
      if (group == "if") {
        options.group = query::GroupBy::kInterface;
      } else if (group == "path") {
        options.group = query::GroupBy::kPath;
      } else if (group == "host") {
        options.group = query::GroupBy::kHost;
      } else {
        std::fprintf(stderr, "unknown group '%s'\n", group.c_str());
        usage(argv[0]);
      }
    } else if (arg == "--select") {
      options.selector = next("--select");
    } else if (arg == "--last") {
      options.last_s = std::atof(next("--last").c_str());
    } else if (arg == "--modules") {
      options.modules = next("--modules");
    } else if (arg == "--probe") {
      options.probe = next("--probe");
    } else if (arg == "--seconds") {
      options.seconds = std::atof(next("--seconds").c_str());
    } else {
      usage(argv[0]);
    }
  }
  return options;
}

const char* health_name(std::uint8_t health) {
  switch (health) {
    case 0: return "healthy";
    case 1: return "degraded";
    case 2: return "quarantined";
    default: return "?";
  }
}

const char* freshness_label(std::uint8_t freshness) {
  switch (freshness) {
    case 0: return "unknown";
    case 1: return "fresh";
    case 2: return "stale";
    default: return "?";
  }
}

void print_window(const query::WindowResponse& response) {
  std::printf("window [%.1fs, %.1fs) at t=%.1fs, %zu rows\n",
              to_seconds(response.begin), to_seconds(response.end),
              to_seconds(response.server_now), response.rows.size());
  std::printf("%-28s %8s %9s %9s %9s %9s %6s %s\n", "key", "samples",
              "min", "mean", "max", "p95", "res", "complete");
  for (const query::WindowRow& row : response.rows) {
    std::printf("%-28s %8u %9.1f %9.1f %9.1f %9.1f %5.0fs %s\n",
                row.key.c_str(), row.samples,
                to_kilobytes_per_second(row.min),
                to_kilobytes_per_second(row.mean),
                to_kilobytes_per_second(row.max),
                to_kilobytes_per_second(row.p95),
                to_seconds(row.resolution), row.complete ? "yes" : "no");
  }
  std::printf("(rates in KB/s; res 0s = raw samples)\n");
}

void print_health(const query::HealthResponse& response) {
  std::printf("health at t=%.1fs\n", to_seconds(response.server_now));
  std::printf("%-6s %-12s %8s %9s %12s %8s\n", "agent", "state", "polls",
              "failures", "quarantines", "due");
  for (const query::AgentHealthRow& agent : response.agents) {
    std::printf("%-6s %-12s %8llu %9llu %12llu %7.1fs\n",
                agent.node.c_str(), health_name(agent.health),
                static_cast<unsigned long long>(agent.polls),
                static_cast<unsigned long long>(agent.failures),
                static_cast<unsigned long long>(agent.quarantines),
                to_seconds(agent.next_due));
  }
  std::printf("%-12s %10s %10s %8s %8s %s\n", "path", "used", "avail",
              "fresh", "age", "flags");
  for (const query::PathHealthRow& path : response.paths) {
    std::string flags;
    if (!path.complete) flags += " incomplete";
    if (path.link_down) flags += " link-down";
    if (path.violated) flags += " VIOLATED";
    if (path.warning) flags += " warning";
    if (flags.empty()) flags = " ok";
    std::printf("%-12s %10.1f %10.1f %8s %7.1fs%s\n",
                (path.from + "<->" + path.to).c_str(),
                to_kilobytes_per_second(path.used),
                to_kilobytes_per_second(path.available),
                freshness_label(path.freshness),
                to_seconds(path.max_sample_age), flags.c_str());
  }
  std::printf("(rates in KB/s)\n");
}

void print_probes(const query::HealthResponse& response) {
  std::printf("probes at t=%.1fs: %zu estimators\n",
              to_seconds(response.server_now), response.probes.size());
  std::printf("%-10s %-12s %-10s %10s %9s %10s\n", "estimator", "path",
              "state", "est", "samples", "injected");
  for (const query::ProbeStatusRow& row : response.probes) {
    const char* state = probe::convergence_name(
        static_cast<probe::Convergence>(row.convergence));
    std::string estimate = "-";
    if (row.has_estimate) {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.1f",
                    to_kilobytes_per_second(row.available));
      estimate = buffer;
    }
    std::printf("%-10s %-12s %-10s %10s %9llu %9llu B\n",
                row.estimator.c_str(), (row.from + "->" + row.to).c_str(),
                row.running ? state : "stopped", estimate.c_str(),
                static_cast<unsigned long long>(row.estimates),
                static_cast<unsigned long long>(row.wire_bytes));
  }
  std::printf("(estimates in KB/s of available bandwidth)\n");
}

void print_modules(const query::ModulesResponse& response) {
  std::printf("modules at t=%.1fs: %zu registered\n",
              to_seconds(response.server_now), response.modules.size());
  for (const query::ModuleStatusRow& row : response.modules) {
    std::printf("%-14s %8llu samples %4llu errors %8llu B state\n",
                row.name.c_str(),
                static_cast<unsigned long long>(row.samples),
                static_cast<unsigned long long>(row.errors),
                static_cast<unsigned long long>(row.footprint_bytes));
    for (const auto& [key, value] : row.notes) {
      std::printf("  %-22s %s\n", key.c_str(), value.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);

  exp::TestbedOptions testbed_options;
  exp::LirtssTestbed testbed(testbed_options);
  sim::Simulator& simulator = testbed.simulator();

  // Monitor the spec's qos paths and attach both detectors, exactly as
  // netqosmon --serve does.
  mon::ViolationDetector detector(testbed.monitor());
  mon::PredictiveDetector predictive(testbed.monitor());
  for (const auto& req : testbed.specfile().qos) {
    testbed.watch(req.from, req.to);
    detector.add_requirement(req.from, req.to,
                             to_bytes_per_second(req.min_available_bps));
    predictive.add_requirement(req.from, req.to,
                               to_bytes_per_second(req.min_available_bps));
  }

  // The `modules` command enables measurement modules before any
  // samples flow, so their telemetry covers the whole run.
  if (options.command == "modules") {
    try {
      std::string list = options.modules;
      if (list.empty()) {
        for (const mon::ModuleSpec& spec : mon::available_modules()) {
          if (!list.empty()) list += ",";
          list += spec.name;
        }
      }
      for (auto& module : mon::make_modules(list)) {
        testbed.monitor().add_module(std::move(module));
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  // The `probes` command runs active estimators next to the passive
  // monitor — their traffic crosses the same simulated links — and
  // exposes their status through the query engine's provider hook.
  std::vector<std::unique_ptr<probe::ProbeSink>> probe_sinks;
  std::vector<std::unique_ptr<probe::Estimator>> estimators;
  if (options.command == "probes") {
    std::vector<std::string> probe_names;
    if (options.probe == "all") {
      probe_names = probe::available_estimators();
    } else {
      std::string item;
      for (const char c : options.probe + ",") {
        if (c == ',') {
          if (!item.empty()) probe_names.push_back(item);
          item.clear();
        } else {
          item += c;
        }
      }
    }
    const topo::NetworkTopology& topology = testbed.specfile().topology;
    std::vector<std::string> sink_hosts;
    for (const auto& req : testbed.specfile().qos) {
      const auto topo_path =
          topo::traverse_recursive(topology, req.from, req.to);
      if (!topo_path.has_value()) {
        std::fprintf(stderr, "error: cannot probe %s -> %s\n",
                     req.from.c_str(), req.to.c_str());
        return 1;
      }
      BitsPerSecond capacity = 0;
      for (const std::size_t index : *topo_path) {
        const BitsPerSecond speed =
            topo::connection_speed(topology, topology.connections()[index]);
        capacity = capacity == 0 ? speed : std::min(capacity, speed);
      }
      sim::Host& src = testbed.host(req.from);
      sim::Host& dst = testbed.host(req.to);
      if (std::find(sink_hosts.begin(), sink_hosts.end(), req.to) ==
          sink_hosts.end()) {
        probe_sinks.push_back(std::make_unique<probe::ProbeSink>(dst));
        sink_hosts.push_back(req.to);
      }
      for (const std::string& name : probe_names) {
        std::unique_ptr<probe::Estimator> estimator;
        try {
          estimator = probe::make_estimator(name, src, dst.ip(),
                                            {req.from, req.to, capacity});
        } catch (const std::exception& e) {
          std::fprintf(stderr, "error: %s\n", e.what());
          return 1;
        }
        estimator->start();
        estimators.push_back(std::move(estimator));
      }
    }
  }

  query::QueryEngine engine(testbed.monitor());
  if (!estimators.empty()) {
    engine.set_probe_status_provider([&estimators] {
      std::vector<query::ProbeStatusRow> rows;
      for (const auto& estimator : estimators) {
        query::ProbeStatusRow row;
        row.estimator = estimator->name();
        row.from = estimator->path().from;
        row.to = estimator->path().to;
        row.convergence = static_cast<std::uint8_t>(estimator->convergence());
        row.running = estimator->running();
        const auto latest = estimator->latest();
        row.has_estimate = latest.has_value();
        row.available = latest.value_or(0.0);
        row.estimates = estimator->estimates().size();
        row.wire_bytes = estimator->stats().probe_wire_bytes +
                         estimator->stats().report_wire_bytes;
        rows.push_back(std::move(row));
      }
      return rows;
    });
  }
  query::QueryServer server(simulator, testbed.host("L"), engine);
  server.attach(detector);
  server.attach(predictive);
  server.attach_agent_events(testbed.monitor());

  // The client lives on S3: its frames cross sw0 to reach L, competing
  // with the poll train on L's access link.
  query::QueryClient client(simulator, testbed.host("S3"),
                            testbed.host("L").ip());

  if (options.command == "watch") {
    // Subscribe right away, then push the hub segment into violation:
    // 800 KB/s toward N1 leaves < 500 KB/s available on the 10 Mbps
    // segment, crossing the S1 <-> N1 requirement; the load ends at 70%
    // of the run so recovery events arrive too.
    simulator.schedule_at(seconds(1), [&] {
      client.subscribe([&simulator](query::QueryResult result) {
        std::printf("t=%5.1fs subscribed: %s\n", to_seconds(simulator.now()),
                    result.ok() ? "ok" : result.error.c_str());
      });
    });
    client.set_event_callback([](const query::Event& event) {
      std::printf("t=%5.1fs %-17s %s%s%s", to_seconds(event.time),
                  query::event_kind_name(event.kind),
                  event.subject_a.c_str(),
                  event.subject_b.empty() ? "" : " <-> ",
                  event.subject_b.c_str());
      if (event.required > 0) {
        std::printf("  (available %.0f KB/s, required %.0f KB/s)",
                    to_kilobytes_per_second(event.available),
                    to_kilobytes_per_second(event.required));
      }
      std::printf("\n");
    });
    testbed.add_load("S2", "N1",
                     load::RateProfile::pulse(seconds(8),
                                              from_seconds(options.seconds *
                                                           0.7),
                                              800'000.0));
    testbed.run_until(from_seconds(options.seconds));
    std::printf("watched %llu events over %.0fs\n",
                static_cast<unsigned long long>(
                    client.stats().events_received),
                options.seconds);
    return 0;
  }

  // query / health: drive fig5-style pulses so the history has shape,
  // run most of the clock out, then issue the request and run the tail
  // so the response can cross the network.
  testbed.add_load("S1", "N1",
                   load::RateProfile::pulse(seconds(5),
                                            from_seconds(options.seconds *
                                                         0.6),
                                            200'000.0));
  testbed.add_load("S1", "S2",
                   load::RateProfile::pulse(seconds(10),
                                            from_seconds(options.seconds *
                                                         0.8),
                                            400'000.0));

  bool answered = false;
  simulator.schedule_at(from_seconds(options.seconds) - seconds(2), [&] {
    auto print_result = [&](const query::QueryResult& result,
                            auto&& printer) {
      answered = true;
      if (!result.ok()) {
        std::printf("query failed: %s\n", result.error.empty()
                                              ? "timeout"
                                              : result.error.c_str());
        return;
      }
      std::printf("rtt %.2f ms\n", to_seconds(result.rtt) * 1000.0);
      printer(result.message);
    };
    if (options.command == "query") {
      query::WindowRequest request;
      request.group = options.group;
      request.selector = options.selector;
      request.begin = -from_seconds(options.last_s);
      client.window(request, [&, print_result](query::QueryResult result) {
        print_result(result, [](const query::Message& message) {
          print_window(message.window_response);
        });
      });
    } else if (options.command == "modules") {
      client.modules([&, print_result](query::QueryResult result) {
        print_result(result, [](const query::Message& message) {
          print_modules(message.modules_response);
        });
      });
    } else if (options.command == "probes") {
      client.health([&, print_result](query::QueryResult result) {
        print_result(result, [](const query::Message& message) {
          print_probes(message.health_response);
        });
      });
    } else {
      client.health([&, print_result](query::QueryResult result) {
        print_result(result, [](const query::Message& message) {
          print_health(message.health_response);
        });
      });
    }
  });
  testbed.run_until(from_seconds(options.seconds));
  if (!answered) {
    std::fprintf(stderr, "error: no response before the run ended\n");
    return 1;
  }
  return 0;
}
