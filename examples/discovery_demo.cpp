// Dynamic topology discovery (paper §5 future work).
//
// Given only the SNMP addresses of the managed nodes, reconstruct the
// LIRTSS topology: classify hosts vs. the switch (bridge MIB), find
// direct attachments, infer the hub from the shared segment behind
// sw0.p8, and surface the agentless hosts as placeholders. The result is
// printed as a specification file — the "hybrid approach" the paper
// suggests would diff this against the configured spec.
#include <cstdio>

#include "experiments/lirtss.h"
#include "monitor/discovery.h"
#include "spec/writer.h"
#include "topology/diff.h"

using namespace netqos;

int main() {
  exp::LirtssTestbed bed;

  // Warm the switch's forwarding database: discovery can only see MACs
  // that have spoken. (In a live DeSiDeRaTa system the applications'
  // own traffic does this.)
  for (const char* name : {"L", "S1", "S2", "S3", "S6", "N1", "N2"}) {
    sim::Host& h = bed.host(name);
    const auto sport = h.udp().allocate_ephemeral_port();
    h.udp().send(bed.host("L").ip(), sim::kDiscardPort, sport, {}, 10);
    bed.host("L").udp().send(h.ip(), sim::kDiscardPort, sport, {}, 10);
  }
  bed.simulator().run_until(seconds(1));

  snmp::SnmpClient client(bed.simulator(), bed.host("L").udp());
  mon::TopologyDiscovery discovery(client);

  std::vector<mon::DiscoveryTarget> targets;
  for (const char* ip : {"10.0.0.1", "10.0.0.11", "10.0.0.12", "10.0.0.21",
                         "10.0.0.22", "10.0.0.100",
                         "10.0.0.13" /* S3: no agent -> unreachable */}) {
    targets.push_back({sim::Ipv4Address::parse(ip), "public"});
  }

  std::optional<mon::DiscoveryResult> result;
  discovery.run(targets, [&](mon::DiscoveryResult r) {
    result = std::move(r);
  });
  bed.simulator().run_until(seconds(120));

  if (!result.has_value()) {
    std::printf("discovery did not complete\n");
    return 1;
  }

  std::printf("=== Discovery notes ===\n");
  for (const auto& note : result->notes) {
    std::printf("  %s\n", note.c_str());
  }
  std::printf("\n=== Unreachable targets ===\n");
  for (const auto& addr : result->unreachable) {
    std::printf("  %s\n", addr.to_string().c_str());
  }

  spec::SpecFile file;
  file.network_name = "discovered";
  file.topology = result->topology;
  std::printf("\n=== Discovered topology as a spec file ===\n%s",
              spec::write_spec(file).c_str());

  // The hybrid approach: diff what was discovered against the configured
  // specification. S3-S6 surface as missing (agentless hosts appear only
  // as placeholders), and the real hub0 shows up under discovery's
  // synthesized name — both are expected, everything else should match.
  std::printf("\n=== Hybrid check: discovered vs. specification ===\n");
  const auto diffs =
      topo::diff_topologies(bed.topology(), result->topology);
  for (const auto& diff : diffs) {
    std::printf("  [%s] %s\n", topo::difference_kind_name(diff.kind),
                diff.description.c_str());
  }
  std::printf("  (%zu differences)\n", diffs.size());
  return 0;
}
