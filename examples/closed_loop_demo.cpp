// The full DeSiDeRaTa loop: monitor -> QoS diagnosis -> reallocation.
//
// A real-time "sensor" application on S1 streams track data to a
// "tracker" application on N1, across the 10 Mbps hub. At t=30 s an
// unrelated bulk transfer starts saturating the hub: tracker messages
// miss their deadlines and the network monitor reports the S1<->N1 path's
// available bandwidth collapsing. The QoS detector raises a violation,
// and the RM recommendation callback ACTS: it relocates the tracker to
// S2, a switched host. The stream's deadline misses stop even though the
// bulk transfer continues — exactly the adaptation DeSiDeRaTa's
// middleware performs with the paper's monitor as its eyes.
#include <cstdio>

#include "apps/application.h"
#include "experiments/lirtss.h"
#include "monitor/qos.h"
#include "rm/manager.h"

using namespace netqos;

namespace {

void report_window(const apps::StreamStats& stats, const char* label,
                   SimTime begin, SimTime end) {
  RunningStats window;
  int late = 0;
  for (const auto& p : stats.latency.points()) {
    if (p.time >= begin && p.time < end) {
      window.add(p.value);
      late += p.value > 0.050;
    }
  }
  std::printf("  %-28s %4zu msgs  mean %7.2f ms  p99 %7.2f ms  "
              "%d deadline misses\n",
              label, window.count(), window.mean() * 1e3,
              stats.latency.percentile_between(begin, end, 0.99) * 1e3,
              late);
}

}  // namespace

int main() {
  exp::LirtssTestbed bed;

  // The managed application group: sensor on S1, tracker on N1.
  apps::ApplicationGroup group(bed.simulator());
  group.deploy("sensor", bed.host("S1"));
  group.deploy("tracker", bed.host("N1"));
  apps::StreamSpec stream;
  stream.name = "track-data";
  stream.producer = "sensor";
  stream.consumer = "tracker";
  stream.period = 50 * kMillisecond;
  stream.message_bytes = 1024;
  stream.deadline = 50 * kMillisecond;
  group.add_stream(stream);

  // Monitor + QoS spec: the sensor->tracker path needs 400 KB/s headroom.
  mon::ViolationDetector detector(bed.monitor());
  detector.add_requirement("S1", "N1", kilobytes_per_second(400));

  // RM: recommendations actuate a relocation.
  rm::ResourceManager manager(bed.monitor(), detector);
  bool relocated = false;
  manager.set_recommendation_callback([&](const rm::Recommendation& rec) {
    std::printf("t=%5.1fs  [RM] %s\n", to_seconds(rec.time),
                rec.action.c_str());
    if (!relocated) {
      relocated = true;
      std::printf("t=%5.1fs  [RM] ACTUATE: relocating 'tracker' from %s "
                  "to S2 (switched segment)\n",
                  to_seconds(bed.simulator().now()),
                  group.find("tracker")->host_name().c_str());
      group.relocate("tracker", bed.host("S2"));
    }
  });
  detector.add_event_callback([](const mon::QosEvent& event) {
    std::printf("t=%5.1fs  [QoS] %s on %s<->%s: available %.0f KB/s\n",
                to_seconds(event.time),
                event.kind == mon::QosEvent::Kind::kViolation ? "VIOLATION"
                                                              : "recovery",
                event.path.first.c_str(), event.path.second.c_str(),
                event.available / 1000.0);
  });

  // The disturbance: a bulk transfer OVERLOADS the hub from t=30 s
  // (1300 KB/s of payload is ~1340 KB/s on the wire, against a 1250 KB/s
  // medium): the switch's hub-facing queue grows, latencies climb past
  // the deadline, and frames drop.
  bed.add_load("L", "N2",
               load::RateProfile::pulse(seconds(30), seconds(90),
                                        kilobytes_per_second(1300)));

  std::printf("running 90 simulated seconds...\n\n");
  bed.run_until(seconds(90));
  group.stop();

  // The relocation happened at the first violation's detection time.
  SimTime moved = seconds(90);
  for (const auto& e : detector.events()) {
    if (e.kind == mon::QosEvent::Kind::kViolation) {
      moved = e.time;
      break;
    }
  }

  const auto& stats = group.stream_stats("track-data");
  std::printf("\n=== track-data stream, by phase ===\n");
  report_window(stats, "quiet (0-30s)", 0, seconds(30));
  report_window(stats, "congested, pre-move", seconds(30), moved);
  if (relocated) {
    report_window(stats, "congested, post-move", moved + seconds(2),
                  seconds(90));
  }
  std::printf("\ntotals: %llu sent, %llu received, %llu deadline misses, "
              "%.1f%% loss\n",
              static_cast<unsigned long long>(stats.messages_sent),
              static_cast<unsigned long long>(stats.messages_received),
              static_cast<unsigned long long>(stats.deadline_misses),
              stats.loss_fraction() * 100.0);
  return 0;
}
