// Full LIRTSS testbed walkthrough (paper Figure 3 + §4).
//
// Parses the specification file, prints the parsed topology and the poll
// plan (who measures which connection — including the §4.1 switch-port
// fallback for the agentless hosts S3-S6), runs a mixed workload, and
// streams per-path CSV to stdout.
#include <cstdio>
#include <iostream>

#include "experiments/lirtss.h"
#include "monitor/report.h"
#include "spec/testbed.h"
#include "topology/path.h"

using namespace netqos;

int main() {
  std::printf("=== Specification file ===\n%s\n",
              spec::lirtss_spec_text().c_str());

  exp::LirtssTestbed bed;
  const auto& topo = bed.topology();

  std::printf("=== Parsed topology ===\n");
  for (const auto& node : topo.nodes()) {
    std::printf("  %-6s %-7s snmp=%-3s  %zu interface(s)\n",
                node.name.c_str(), topo::node_kind_name(node.kind),
                node.snmp_enabled ? "yes" : "no", node.interfaces.size());
  }

  std::printf("\n=== Poll plan (measurement point per connection) ===\n");
  const mon::PollPlan& plan = bed.monitor().plan();
  for (std::size_t i = 0; i < topo.connections().size(); ++i) {
    const auto& point = plan.measurement_for(i);
    std::printf("  %-28s -> %s.%s%s\n",
                topo.connections()[i].to_string().c_str(),
                point->node.c_str(), point->interface.c_str(),
                point->via_switch ? "   (via switch port, paper 4.1)" : "");
  }

  // Mixed workload: hub traffic + switched traffic.
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(10), seconds(50),
                                        kilobytes_per_second(250)));
  bed.add_load("S2", "S1",
               load::RateProfile::pulse(seconds(20), seconds(40),
                                        kilobytes_per_second(1500)));
  bed.watch("S1", "N1").watch("S1", "S2").watch("S4", "S5");

  std::printf("\n=== Monitored paths ===\n");
  for (const auto* pair :
       {new std::pair<std::string, std::string>{"S1", "N1"},
        new std::pair<std::string, std::string>{"S1", "S2"},
        new std::pair<std::string, std::string>{"S4", "S5"}}) {
    std::printf("  %s <-> %s: %s\n", pair->first.c_str(),
                pair->second.c_str(),
                topo::path_to_string(
                    topo, bed.monitor().path_of(pair->first, pair->second))
                    .c_str());
    delete pair;
  }

  std::printf("\n=== Samples (CSV) ===\n");
  mon::CsvSink sink(bed.monitor(), std::cout);
  bed.run_until(seconds(60));

  const auto& stats = bed.monitor().stats();
  const auto& client = bed.monitor().client_stats();
  std::printf("\n=== Monitor statistics ===\n");
  std::printf("  poll rounds:      %llu\n",
              static_cast<unsigned long long>(stats.rounds_completed));
  std::printf("  SNMP requests:    %llu (%llu responses, %llu timeouts)\n",
              static_cast<unsigned long long>(client.requests_sent),
              static_cast<unsigned long long>(client.responses),
              static_cast<unsigned long long>(client.timeouts));
  std::printf("  interfaces in db: %zu\n", bed.monitor().stats_db().size());
  return 0;
}
