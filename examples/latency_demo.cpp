// Network latency measurement (paper §5 future work).
//
// Echo-based RTT probes from the monitor host to a switched host (S1)
// and a hub host (N1), before and during hub congestion. Shows the
// 10 Mbps hub path is an order of magnitude slower, and that queueing
// under load inflates RTT further.
#include <cstdio>

#include "experiments/lirtss.h"
#include "monitor/latency.h"
#include "netsim/services.h"

using namespace netqos;

int main() {
  exp::LirtssTestbed bed;
  sim::EchoService echo_s1(bed.host("S1"));
  sim::EchoService echo_n1(bed.host("N1"));

  mon::LatencyProbe to_s1(bed.simulator(), bed.host("L"),
                          bed.host("S1").ip());
  mon::LatencyProbe to_n1(bed.simulator(), bed.host("L"),
                          bed.host("N1").ip());
  to_s1.start();
  to_n1.start();

  // Congest the hub in the second half of the run.
  bed.add_load("L", "N2",
               load::RateProfile::pulse(seconds(30), seconds(60),
                                        kilobytes_per_second(1100)));
  bed.run_until(seconds(60));

  auto report = [](const char* label, const mon::LatencyProbe& probe,
                   SimTime begin, SimTime end) {
    RunningStats stats;
    for (const auto& p : probe.rtt_series().points()) {
      if (p.time >= begin && p.time < end) stats.add(p.value);
    }
    std::printf("  %-22s %4zu probes  mean %8.3f ms  max %8.3f ms\n",
                label, stats.count(), stats.mean() * 1e3,
                stats.max() * 1e3);
  };

  std::printf("=== RTT, quiet network (0-30 s) ===\n");
  report("L -> S1 (switched)", to_s1, 0, seconds(30));
  report("L -> N1 (hub)", to_n1, 0, seconds(30));

  std::printf("\n=== RTT, hub congested by 1.1 MB/s (30-60 s) ===\n");
  report("L -> S1 (switched)", to_s1, seconds(30), seconds(60));
  report("L -> N1 (hub)", to_n1, seconds(30), seconds(60));

  std::printf("\nprobes lost: S1=%llu N1=%llu\n",
              static_cast<unsigned long long>(to_s1.probes_lost()),
              static_cast<unsigned long long>(to_n1.probes_lost()));
  return 0;
}
