// QoS violation detection + resource-manager diagnosis.
//
// The qos block of the specification file demands 4 Mbps available on
// S1 <-> N1 (a path through the 10 Mbps hub). A growing load squeezes the
// hub until the requirement breaks; the detector raises a violation with
// the bottleneck diagnosis, the RM layer issues a recommendation, and
// when the load is shed the path recovers.
#include <cstdio>

#include "experiments/lirtss.h"
#include "monitor/qos.h"
#include "rm/manager.h"

using namespace netqos;

int main() {
  exp::LirtssTestbed bed;

  mon::ViolationDetector detector(bed.monitor());
  for (const auto& req : bed.specfile().qos) {
    std::printf("QoS requirement: %s <-> %s needs %s available\n",
                req.from.c_str(), req.to.c_str(),
                format_bandwidth(req.min_available_bps).c_str());
    detector.add_requirement(req.from, req.to,
                             to_bytes_per_second(req.min_available_bps));
  }

  rm::ResourceManager manager(bed.monitor(), detector);
  manager.set_recommendation_callback([](const rm::Recommendation& rec) {
    std::printf("t=%5.1fs  [RM] congested: %s\n", to_seconds(rec.time),
                rec.congested_connection.c_str());
    std::printf("          [RM] action:    %s\n", rec.action.c_str());
  });
  detector.add_event_callback([](const mon::QosEvent& event) {
    std::printf("t=%5.1fs  [QoS] %s on %s <-> %s (available %.0f KB/s, "
                "required %.0f KB/s)\n",
                to_seconds(event.time),
                event.kind == mon::QosEvent::Kind::kViolation ? "VIOLATION"
                                                              : "recovery",
                event.path.first.c_str(), event.path.second.c_str(),
                event.available / 1000.0, event.required / 1000.0);
  });

  // Staircase load into the hub: 200 -> 1000 KB/s, then off.
  load::RateProfile profile;
  profile.add_step(seconds(10), kilobytes_per_second(200));
  profile.add_step(seconds(30), kilobytes_per_second(500));
  profile.add_step(seconds(50), kilobytes_per_second(800));
  profile.add_step(seconds(70), kilobytes_per_second(1000));
  profile.add_step(seconds(90), 0.0);
  bed.add_load("L", "N1", profile);

  std::printf("\nrunning 120 simulated seconds...\n\n");
  bed.run_until(seconds(120));

  std::printf("\nsummary: %zu QoS events, %zu RM recommendations, "
              "%zu active violations at end\n",
              detector.events().size(), manager.recommendations().size(),
              manager.active_violations());
  return 0;
}
