// QoS violation detection + resource-manager diagnosis.
//
// The qos block of the specification file demands 4 Mbps available on
// S1 <-> N1 (a path through the 10 Mbps hub). A growing load squeezes the
// hub until the requirement breaks; the predictive detector forecasts the
// crossing ahead of time, the reactive detector raises the violation with
// the bottleneck diagnosis, the RM layer issues a recommendation, and
// when the load is shed the path recovers.
#include <cstdio>

#include "experiments/lirtss.h"
#include "monitor/qos.h"
#include "monitor/report.h"
#include "rm/manager.h"

using namespace netqos;

int main() {
  exp::LirtssTestbed bed;

  mon::ViolationDetector detector(bed.monitor());
  mon::PredictiveDetector predictive(bed.monitor());
  for (const auto& req : bed.specfile().qos) {
    std::printf("QoS requirement: %s <-> %s needs %s available\n",
                req.from.c_str(), req.to.c_str(),
                format_bandwidth(req.min_available_bps).c_str());
    detector.add_requirement(req.from, req.to,
                             to_bytes_per_second(req.min_available_bps));
    predictive.add_requirement(req.from, req.to,
                               to_bytes_per_second(req.min_available_bps));
  }
  predictive.add_event_callback([](const mon::PredictiveEvent& event) {
    if (event.kind != mon::PredictiveEvent::Kind::kEarlyWarning) return;
    std::printf("t=%5.1fs  [QoS] EARLY WARNING on %s <-> %s (available "
                "%.0f KB/s, forecast %.0f KB/s)\n",
                to_seconds(event.time), event.path.first.c_str(),
                event.path.second.c_str(), event.available / 1000.0,
                event.forecast / 1000.0);
  });

  rm::ResourceManager manager(bed.monitor(), detector);
  manager.set_recommendation_callback([](const rm::Recommendation& rec) {
    std::printf("t=%5.1fs  [RM] congested: %s\n", to_seconds(rec.time),
                rec.congested_connection.c_str());
    std::printf("          [RM] action:    %s\n", rec.action.c_str());
  });
  detector.add_event_callback([](const mon::QosEvent& event) {
    std::printf("t=%5.1fs  [QoS] %s on %s <-> %s (available %.0f KB/s, "
                "required %.0f KB/s)\n",
                to_seconds(event.time),
                event.kind == mon::QosEvent::Kind::kViolation ? "VIOLATION"
                                                              : "recovery",
                event.path.first.c_str(), event.path.second.c_str(),
                event.available / 1000.0, event.required / 1000.0);
  });

  // Staircase load into the hub: 200 -> 1000 KB/s, then off.
  load::RateProfile profile;
  profile.add_step(seconds(10), kilobytes_per_second(200));
  profile.add_step(seconds(30), kilobytes_per_second(500));
  profile.add_step(seconds(50), kilobytes_per_second(800));
  profile.add_step(seconds(70), kilobytes_per_second(1000));
  profile.add_step(seconds(90), 0.0);
  bed.add_load("L", "N1", profile);

  std::printf("\nrunning 120 simulated seconds...\n\n");
  bed.run_until(seconds(120));

  // Predicted-vs-actual: pair each early warning with the first reactive
  // violation on the same path after it, and report the lead time the
  // forecast bought the resource manager.
  for (const auto& warning : predictive.events()) {
    if (warning.kind != mon::PredictiveEvent::Kind::kEarlyWarning) continue;
    const mon::QosEvent* actual = nullptr;
    for (const auto& event : detector.events()) {
      if (event.kind != mon::QosEvent::Kind::kViolation) continue;
      if (event.time < warning.time) continue;
      if ((event.path.first == warning.path.first &&
           event.path.second == warning.path.second) ||
          (event.path.first == warning.path.second &&
           event.path.second == warning.path.first)) {
        actual = &event;
        break;
      }
    }
    if (actual != nullptr) {
      std::printf("\npredicted vs actual on %s <-> %s: warned t=%.1fs, "
                  "violated t=%.1fs — %.1fs of lead time\n",
                  warning.path.first.c_str(), warning.path.second.c_str(),
                  to_seconds(warning.time), to_seconds(actual->time),
                  to_seconds(actual->time - warning.time));
    } else {
      std::printf("\npredicted violation on %s <-> %s at t=%.1fs never "
                  "materialized (trend flattened in time)\n",
                  warning.path.first.c_str(), warning.path.second.c_str(),
                  to_seconds(warning.time));
    }
  }

  // Per-step window analysis of the measured load, trend column included:
  // ~0 on the flat steps, positive while the staircase climbs.
  const TimeSeries& measured = bed.monitor().used_series("S1", "N1");
  std::printf("\nwindow analysis of measured S1 <-> N1 load:\n");
  std::printf("%12s %10s %12s %16s\n", "window", "gen_KBps", "meas_KBps",
              "trend_KBps_per_s");
  struct Window {
    double generated_kb;
    SimTime begin, end;
  };
  const Window windows[] = {
      {200, seconds(10), seconds(30)},
      {500, seconds(30), seconds(50)},
      {800, seconds(50), seconds(70)},
      {1000, seconds(70), seconds(90)},
      {0, seconds(90), seconds(120)},
  };
  for (const Window& w : windows) {
    const auto row = mon::analyze_window(
        measured, w.begin, w.end, kilobytes_per_second(w.generated_kb),
        /*background=*/0.0, /*settle=*/seconds(4));
    std::printf("%5.0f-%5.0fs %10.0f %12.1f %+15.2f\n", to_seconds(w.begin),
                to_seconds(w.end), w.generated_kb, row.measured_kbps,
                row.trend_kbps_per_s);
  }

  std::printf("\nsummary: %zu QoS events, %zu early warnings, "
              "%zu RM recommendations, %zu active violations at end\n",
              detector.events().size(), predictive.warning_count(),
              manager.recommendations().size(), manager.active_violations());
  return 0;
}
