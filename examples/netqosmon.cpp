// netqosmon — file-driven monitoring tool.
//
// Usage:
//   netqosmon [SPEC_FILE] [FROM TO]... [--seconds N] [--poll MS]
//             [--backoff-base X] [--backoff-cap MS] [--stagger MS]
//             [--load SRC DST KBPS START END]...
//             [--metrics-out FILE] [--trace-out FILE]
//             [--metrics-jsonl FILE] [--trace-jsonl FILE]
//             [--history-retention SECS] [--forecast-horizon SECS]
//             [--serve] [--modules LIST] [--probe LIST]
//
// Reads a specification file (default: the built-in LIRTSS testbed),
// builds the simulated network, deploys agents per the spec, registers
// the given host pairs (default: every qos-block path), optionally drives
// synthetic loads, runs for N simulated seconds, and prints per-path CSV
// plus a summary. Demonstrates using the library from configuration
// rather than code.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/log.h"
#include "experiments/lirtss.h"
#include "history/forecast.h"
#include "history/store.h"
#include "monitor/modules/registry.h"
#include "monitor/qos.h"
#include "monitor/report.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "probe/hybrid.h"
#include "probe/registry.h"
#include "probe/sink.h"
#include "query/engine.h"
#include "query/server.h"
#include "spec/testbed.h"
#include "topology/path.h"

using namespace netqos;

namespace {

struct LoadSpec {
  std::string src, dst;
  double kbps = 0;
  double start_s = 0, end_s = 0;
};

struct Options {
  std::string spec_path;  // empty = built-in testbed
  std::vector<std::pair<std::string, std::string>> pairs;
  std::vector<LoadSpec> loads;
  double seconds_to_run = 60;
  double poll_ms = 2000;
  double backoff_base = 2.0;  // <= 1 disables adaptive backoff
  double backoff_cap_ms = 0;  // 0 = 8 * poll interval
  double stagger_ms = 0;      // per-agent launch phase within a round
  std::string metrics_out;  // Prometheus text exposition, empty = off
  std::string trace_out;    // Chrome trace-event JSONL, empty = off
  // JSONL snapshots written by the stop-flush sinks (flushed by
  // monitor.stop(), not by explicit calls after the run).
  std::string metrics_jsonl;
  std::string trace_jsonl;
  double history_retention_s = 0;  // raw-span for the history store, 0 = default
  double forecast_horizon_s = 0;   // predictive warnings, 0 = off
  bool serve = false;  // bind the query service on the station
  /// Comma-separated measurement modules to enable ("all" = every
  /// registry module). Empty leaves the default pipeline untouched, so
  /// output stays bit-identical to runs predating the module layer.
  std::string modules;
  /// Comma-separated active estimators ("pair,train,periodic" or "all")
  /// probing every monitored pair. Empty = no probe traffic, keeping
  /// plain runs bit-identical to builds predating the probe subsystem.
  std::string probe;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [SPEC_FILE] [FROM TO]... [--seconds N] "
               "[--poll MS] [--backoff-base X] [--backoff-cap MS] "
               "[--stagger MS] [--load SRC DST KBPS START END]... "
               "[--metrics-out FILE] [--trace-out FILE] "
               "[--metrics-jsonl FILE] [--trace-jsonl FILE] "
               "[--history-retention SECS] [--forecast-horizon SECS] "
               "[--serve] [--modules LIST] [--probe LIST]\n",
               argv0);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (++i >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        usage(argv[0]);
      }
      return argv[i];
    };
    if (arg == "--seconds") {
      options.seconds_to_run = std::atof(next("--seconds").c_str());
    } else if (arg == "--poll") {
      options.poll_ms = std::atof(next("--poll").c_str());
    } else if (arg == "--backoff-base") {
      options.backoff_base = std::atof(next("--backoff-base").c_str());
    } else if (arg == "--backoff-cap") {
      options.backoff_cap_ms = std::atof(next("--backoff-cap").c_str());
    } else if (arg == "--stagger") {
      options.stagger_ms = std::atof(next("--stagger").c_str());
    } else if (arg == "--load") {
      LoadSpec load;
      load.src = next("--load SRC");
      load.dst = next("--load DST");
      load.kbps = std::atof(next("--load KBPS").c_str());
      load.start_s = std::atof(next("--load START").c_str());
      load.end_s = std::atof(next("--load END").c_str());
      options.loads.push_back(std::move(load));
    } else if (arg == "--metrics-out") {
      options.metrics_out = next("--metrics-out");
    } else if (arg == "--trace-out") {
      options.trace_out = next("--trace-out");
    } else if (arg == "--metrics-jsonl") {
      options.metrics_jsonl = next("--metrics-jsonl");
    } else if (arg == "--trace-jsonl") {
      options.trace_jsonl = next("--trace-jsonl");
    } else if (arg == "--history-retention") {
      options.history_retention_s =
          std::atof(next("--history-retention").c_str());
    } else if (arg == "--forecast-horizon") {
      options.forecast_horizon_s =
          std::atof(next("--forecast-horizon").c_str());
    } else if (arg == "--serve") {
      options.serve = true;
    } else if (arg == "--modules") {
      options.modules = next("--modules");
    } else if (arg == "--probe") {
      options.probe = next("--probe");
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  std::size_t start = 0;
  if (!positional.empty() && positional[0].find('.') != std::string::npos &&
      positional.size() % 2 == 1) {
    options.spec_path = positional[0];
    start = 1;
  }
  for (std::size_t i = start; i + 1 < positional.size(); i += 2) {
    options.pairs.emplace_back(positional[i], positional[i + 1]);
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);

  spec::SpecFile specfile;
  try {
    specfile = options.spec_path.empty()
                   ? spec::lirtss_testbed()
                   : spec::parse_spec_file(options.spec_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("# network '%s': %zu nodes, %zu connections\n",
              specfile.network_name.c_str(), specfile.topology.nodes().size(),
              specfile.topology.connections().size());

  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  try {
    network = sim::build_network(simulator, specfile.topology);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error building network: %s\n", e.what());
    return 1;
  }
  auto agents = snmp::deploy_agents(simulator, *network, specfile.topology);
  std::printf("# deployed %zu SNMP agents\n", agents.size());

  // The monitor runs on the first SNMP-capable host.
  sim::Host* station = nullptr;
  for (const auto& node : specfile.topology.nodes()) {
    if (node.snmp_enabled && node.kind == topo::NodeKind::kHost) {
      station = network->find_host(node.name);
      break;
    }
  }
  if (station == nullptr) {
    std::fprintf(stderr, "error: no SNMP-capable host to run on\n");
    return 1;
  }
  std::printf("# monitoring station: %s\n", station->name().c_str());

  // One shared registry across every layer; spans capture poll rounds.
  obs::MetricsRegistry registry;
  obs::SpanRecorder spans;
  simulator.attach_metrics(registry);
  network->attach_metrics(registry);
  Log::set_time_source([&simulator] { return simulator.now(); });

  mon::MonitorConfig config;
  config.poll_interval = from_seconds(options.poll_ms / 1000.0);
  config.scheduler.backoff_base = options.backoff_base;
  config.scheduler.backoff_cap =
      from_seconds(options.backoff_cap_ms / 1000.0);
  config.scheduler.stagger = from_seconds(options.stagger_ms / 1000.0);
  config.metrics = &registry;
  if (!options.trace_out.empty() || !options.trace_jsonl.empty()) {
    config.spans = &spans;
  }
  if (options.history_retention_s > 0) {
    config.retention = hist::RetentionPolicy::for_span(
        from_seconds(options.history_retention_s), config.poll_interval);
  }
  mon::NetworkMonitor monitor(simulator, specfile.topology, *station,
                              config);

  // Paths: CLI pairs, else the spec's qos block, else fail.
  auto pairs = options.pairs;
  if (pairs.empty()) {
    for (const auto& req : specfile.qos) {
      pairs.emplace_back(req.from, req.to);
    }
  }
  if (pairs.empty()) {
    std::fprintf(stderr,
                 "error: no host pairs (give FROM TO or a qos block)\n");
    return 1;
  }
  for (const auto& [from, to] : pairs) {
    try {
      monitor.add_path(from, to);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  // Opt-in measurement modules. Resolved by name through the registry;
  // with no --modules the pipeline (and its stdout) is exactly the
  // pre-module-layer one.
  std::vector<std::string> module_names;
  if (!options.modules.empty()) {
    std::string list = options.modules;
    if (list == "all") {
      list.clear();
      for (const mon::ModuleSpec& spec : mon::available_modules()) {
        if (!list.empty()) list += ",";
        list += spec.name;
      }
    }
    try {
      for (auto& module : mon::make_modules(list)) {
        module_names.push_back(module->name());
        monitor.add_module(std::move(module));
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("# modules enabled: %zu\n", module_names.size());
  }

  // QoS requirements from the spec drive violation reporting.
  mon::ViolationDetector detector(monitor);
  for (const auto& req : specfile.qos) {
    detector.add_requirement(req.from, req.to,
                             to_bytes_per_second(req.min_available_bps));
  }
  detector.add_event_callback([](const mon::QosEvent& event) {
    std::printf("# t=%.1fs QoS %s: %s <-> %s (available %.0f KB/s)\n",
                to_seconds(event.time),
                event.kind == mon::QosEvent::Kind::kViolation ? "VIOLATION"
                                                              : "recovery",
                event.path.first.c_str(), event.path.second.c_str(),
                event.available / 1000.0);
  });

  // Optional predictive early warnings on the spec's requirements.
  std::unique_ptr<mon::PredictiveDetector> predictive;
  if (options.forecast_horizon_s > 0) {
    mon::PredictiveConfig pconfig;
    pconfig.horizon = from_seconds(options.forecast_horizon_s);
    predictive =
        std::make_unique<mon::PredictiveDetector>(monitor, pconfig);
    for (const auto& req : specfile.qos) {
      predictive->add_requirement(req.from, req.to,
                                  to_bytes_per_second(req.min_available_bps));
    }
    predictive->add_event_callback([](const mon::PredictiveEvent& event) {
      if (event.kind == mon::PredictiveEvent::Kind::kEarlyWarning) {
        std::string eta;
        if (event.predicted_in) {
          eta = ", crossing in ~" +
                std::to_string(static_cast<int>(
                    to_seconds(*event.predicted_in))) +
                "s";
        }
        std::printf("# t=%.1fs QoS EARLY WARNING: %s <-> %s (available "
                    "%.0f KB/s, forecast %.0f KB/s%s)\n",
                    to_seconds(event.time), event.path.first.c_str(),
                    event.path.second.c_str(), event.available / 1000.0,
                    event.forecast / 1000.0, eta.c_str());
      } else {
        std::printf("# t=%.1fs QoS all-clear: %s <-> %s (forecast "
                    "%.0f KB/s)\n",
                    to_seconds(event.time), event.path.first.c_str(),
                    event.path.second.c_str(), event.forecast / 1000.0);
      }
    });
  }

  // Active probing: per --probe, every monitored pair gets each listed
  // estimator injecting real traffic from its source host, plus a hybrid
  // cross-check module feeding confidence into the predictive detector
  // (when one is running). Without --probe nothing here executes and no
  // probe byte exists anywhere in the simulation.
  std::vector<std::unique_ptr<probe::ProbeSink>> probe_sinks;
  std::vector<std::unique_ptr<probe::Estimator>> estimators;
  if (!options.probe.empty()) {
    std::vector<std::string> probe_names;
    if (options.probe == "all") {
      probe_names = probe::available_estimators();
    } else {
      std::string item;
      for (const char c : options.probe + ",") {
        if (c == ',') {
          if (!item.empty()) probe_names.push_back(item);
          item.clear();
        } else {
          item += c;
        }
      }
    }
    std::vector<std::string> sink_hosts;
    for (const auto& [from, to] : pairs) {
      sim::Host* src = network->find_host(from);
      sim::Host* dst = network->find_host(to);
      const auto topo_path =
          topo::traverse_recursive(specfile.topology, from, to);
      if (src == nullptr || dst == nullptr || !topo_path.has_value()) {
        std::fprintf(stderr, "error: cannot probe %s -> %s\n", from.c_str(),
                     to.c_str());
        return 1;
      }
      BitsPerSecond capacity = 0;
      for (const std::size_t index : *topo_path) {
        const BitsPerSecond speed = connection_speed(
            specfile.topology, specfile.topology.connections()[index]);
        capacity = capacity == 0 ? speed : std::min(capacity, speed);
      }
      if (std::find(sink_hosts.begin(), sink_hosts.end(), to) ==
          sink_hosts.end()) {
        probe_sinks.push_back(std::make_unique<probe::ProbeSink>(*dst));
        sink_hosts.push_back(to);
      }
      bool first_on_pair = true;
      for (const std::string& name : probe_names) {
        std::unique_ptr<probe::Estimator> estimator;
        try {
          estimator = probe::make_estimator(name, *src, dst->ip(),
                                            {from, to, capacity});
        } catch (const std::exception& e) {
          std::fprintf(stderr, "error: %s\n", e.what());
          return 1;
        }
        estimator->attach_metrics(registry);
        estimator->start();
        if (first_on_pair && predictive != nullptr) {
          auto hybrid = std::make_unique<probe::HybridEstimator>();
          hybrid->set_estimator(*estimator);
          hybrid->set_detector(*predictive);
          monitor.add_module(std::move(hybrid));
        }
        first_on_pair = false;
        estimators.push_back(std::move(estimator));
      }
    }
    std::printf("# probing %zu paths with %zu estimators\n", pairs.size(),
                estimators.size());
  }

  // Query service: binds the well-known port on the station so external
  // tooling (netqosctl) can interrogate the monitor over the simulated
  // network. Without clients it generates no traffic, so results are
  // identical with or without --serve.
  std::unique_ptr<query::QueryEngine> engine;
  std::unique_ptr<query::QueryServer> server;
  if (options.serve) {
    engine = std::make_unique<query::QueryEngine>(monitor);
    server = std::make_unique<query::QueryServer>(simulator, *station,
                                                  *engine);
    server->attach(detector);
    if (predictive != nullptr) server->attach(*predictive);
    server->attach_agent_events(monitor);
    if (!estimators.empty()) {
      engine->set_probe_status_provider([&estimators] {
        std::vector<query::ProbeStatusRow> rows;
        for (const auto& estimator : estimators) {
          query::ProbeStatusRow row;
          row.estimator = estimator->name();
          row.from = estimator->path().from;
          row.to = estimator->path().to;
          row.convergence =
              static_cast<std::uint8_t>(estimator->convergence());
          row.running = estimator->running();
          const auto latest = estimator->latest();
          row.has_estimate = latest.has_value();
          row.available = latest.value_or(0.0);
          row.estimates = estimator->estimates().size();
          row.wire_bytes = estimator->stats().probe_wire_bytes +
                           estimator->stats().report_wire_bytes;
          rows.push_back(std::move(row));
        }
        return rows;
      });
    }
    std::printf("# query server: %s udp/%u\n", station->name().c_str(),
                server->port());
  }

  // Services + loads.
  std::vector<std::unique_ptr<sim::DiscardService>> discards;
  std::vector<sim::Host*> hosts;
  for (const auto& node : specfile.topology.nodes()) {
    if (auto* host = network->find_host(node.name)) {
      hosts.push_back(host);
      discards.push_back(std::make_unique<sim::DiscardService>(*host));
    }
  }
  std::vector<std::unique_ptr<load::LoadGenerator>> generators;
  for (const auto& load_spec : options.loads) {
    sim::Host* src = network->find_host(load_spec.src);
    sim::Host* dst = network->find_host(load_spec.dst);
    if (src == nullptr || dst == nullptr) {
      std::fprintf(stderr, "error: unknown load host\n");
      return 1;
    }
    generators.push_back(std::make_unique<load::LoadGenerator>(
        simulator, *src, dst->ip(),
        load::RateProfile::pulse(from_seconds(load_spec.start_s),
                                 from_seconds(load_spec.end_s),
                                 load_spec.kbps * 1000.0)));
    generators.back()->start();
  }
  std::unique_ptr<sim::BackgroundTraffic> background;
  if (hosts.size() >= 2) {
    background = std::make_unique<sim::BackgroundTraffic>(
        simulator, hosts, sim::BackgroundConfig{});
    background->start();
  }

  mon::CsvSink sink(monitor, std::cout);

  // JSONL sinks flush through monitor.stop() — no explicit render below.
  std::ofstream metrics_jsonl_out;
  std::ofstream trace_jsonl_out;
  std::unique_ptr<mon::MetricsJsonlSink> metrics_jsonl_sink;
  std::unique_ptr<mon::TraceJsonlSink> trace_jsonl_sink;
  if (!options.metrics_jsonl.empty()) {
    metrics_jsonl_out.open(options.metrics_jsonl);
    if (!metrics_jsonl_out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.metrics_jsonl.c_str());
      return 1;
    }
    metrics_jsonl_sink = std::make_unique<mon::MetricsJsonlSink>(
        monitor, registry, metrics_jsonl_out);
  }
  if (!options.trace_jsonl.empty()) {
    trace_jsonl_out.open(options.trace_jsonl);
    if (!trace_jsonl_out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.trace_jsonl.c_str());
      return 1;
    }
    trace_jsonl_sink = std::make_unique<mon::TraceJsonlSink>(
        monitor, spans, trace_jsonl_out);
  }

  monitor.start();
  simulator.run_until(from_seconds(options.seconds_to_run));
  monitor.stop();

  if (!options.metrics_out.empty()) {
    std::ofstream out(options.metrics_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.metrics_out.c_str());
      return 1;
    }
    registry.collect();
    registry.render_prometheus(out);
    std::printf("# wrote %zu metric families to %s\n",
                registry.family_count(), options.metrics_out.c_str());
  }
  if (!options.trace_out.empty()) {
    std::ofstream out(options.trace_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.trace_out.c_str());
      return 1;
    }
    spans.write_jsonl(out);
    std::printf("# wrote %zu spans to %s\n", spans.spans().size(),
                options.trace_out.c_str());
  }
  if (metrics_jsonl_sink) {
    std::printf("# wrote metrics JSONL to %s (flushed on stop)\n",
                options.metrics_jsonl.c_str());
  }
  if (trace_jsonl_sink) {
    std::printf("# wrote trace JSONL to %s (flushed on stop)\n",
                options.trace_jsonl.c_str());
  }

  // Per-agent health summary: anything other than a clean healthy state
  // is worth a line, as is any path whose final report went stale.
  for (const auto& agent : monitor.scheduler().agents()) {
    if (agent.health == mon::AgentHealth::kHealthy && agent.failures == 0) {
      continue;
    }
    std::printf("# agent %s: %s, %llu/%llu polls failed, %llu quarantines\n",
                agent.node.c_str(), mon::agent_health_name(agent.health),
                static_cast<unsigned long long>(agent.failures),
                static_cast<unsigned long long>(agent.polls),
                static_cast<unsigned long long>(agent.quarantines));
  }
  for (const auto& [from, to] : pairs) {
    const mon::PathUsage usage = monitor.current_usage(from, to);
    if (usage.freshness == mon::Freshness::kFresh) continue;
    std::printf("# path %s <-> %s: %s (oldest sample %.1fs)\n", from.c_str(),
                to.c_str(), mon::freshness_name(usage.freshness),
                to_seconds(usage.max_sample_age));
  }

  // History dump: per-pair windowed summary of available bandwidth over
  // the whole run, answered from the bounded multi-resolution store, plus
  // the Holt trend over the final minute.
  const SimTime run_end = simulator.now();
  std::printf("# history store: %zu series, %zu bytes (bounded)\n",
              monitor.history().series_count(),
              monitor.history().footprint_bytes());
  for (const auto& [from, to] : pairs) {
    const std::string key = hist::path_series_key(from, to, "avail");
    const hist::WindowSummary window =
        monitor.history().query(key, 0, run_end);
    if (window.samples == 0) continue;
    const TimeSeries& avail = monitor.available_series(from, to);
    const SimTime trend_begin =
        run_end > seconds(60) ? run_end - seconds(60) : 0;
    const double trend = to_kilobytes_per_second(
        hist::holt_trend_per_second(avail, trend_begin, run_end));
    std::printf("# history %s <-> %s: avail min %.0f mean %.0f max %.0f "
                "p95 %.0f KB/s over %zu samples (res %.0fs), trend "
                "%+.1f KB/s per s\n",
                from.c_str(), to.c_str(),
                to_kilobytes_per_second(window.min),
                to_kilobytes_per_second(window.mean),
                to_kilobytes_per_second(window.max),
                to_kilobytes_per_second(window.p95), window.samples,
                to_seconds(window.resolution), trend);
  }
  if (predictive != nullptr) {
    std::printf("# predictive: %zu early warnings, %zu events total\n",
                predictive->warning_count(), predictive->events().size());
  }

  // End-of-run probe summary — printed only under --probe, so a plain
  // run's stdout stays bit-identical.
  for (const auto& estimator : estimators) {
    estimator->stop();
    const auto& pstats = estimator->stats();
    const auto latest = estimator->latest();
    const std::string est_kb =
        latest.has_value()
            ? std::to_string(static_cast<long long>(
                  to_kilobytes_per_second(*latest)))
            : std::string("-");
    std::printf("# probe %s %s->%s: %s, est %s KB/s, %zu estimates, "
                "%llu B injected (intrusiveness %.4f)\n",
                estimator->name().c_str(), estimator->path().from.c_str(),
                estimator->path().to.c_str(),
                probe::convergence_name(estimator->convergence()),
                est_kb.c_str(), estimator->estimates().size(),
                static_cast<unsigned long long>(pstats.probe_wire_bytes +
                                                pstats.report_wire_bytes),
                estimator->intrusiveness(run_end > 0 ? run_end : 1));
  }

  // End-of-run module summary — printed only when --modules enabled
  // something, so a plain run's stdout stays bit-identical.
  if (!module_names.empty()) {
    for (const mon::ModuleStatus& status : monitor.modules().statuses()) {
      if (std::find(module_names.begin(), module_names.end(), status.name) ==
          module_names.end()) {
        continue;
      }
      std::printf("# module %s: %llu samples, %llu errors, %zu B state\n",
                  status.name.c_str(),
                  static_cast<unsigned long long>(status.samples),
                  static_cast<unsigned long long>(status.errors),
                  status.footprint_bytes);
      for (const mon::ModuleNote& note : status.notes) {
        std::printf("#   %s: %s\n", note.key.c_str(), note.value.c_str());
      }
    }
  }

  if (server != nullptr) {
    const query::QueryServerStats qstats = server->stats();
    std::printf("# query server: %llu window, %llu health, %llu subscribe, "
                "%llu bad, %llu events pushed, %llu B in, %llu B out\n",
                static_cast<unsigned long long>(qstats.window_requests),
                static_cast<unsigned long long>(qstats.health_requests),
                static_cast<unsigned long long>(qstats.subscribes),
                static_cast<unsigned long long>(qstats.bad_requests),
                static_cast<unsigned long long>(qstats.events_published),
                static_cast<unsigned long long>(qstats.bytes_received),
                static_cast<unsigned long long>(qstats.bytes_sent));
  }

  const auto& stats = monitor.stats();
  std::printf("# done: %llu rounds, %llu polls, %llu failures, "
              "%llu skipped by backoff, %zu QoS events\n",
              static_cast<unsigned long long>(stats.rounds_completed),
              static_cast<unsigned long long>(stats.agent_polls),
              static_cast<unsigned long long>(stats.agent_poll_failures),
              static_cast<unsigned long long>(stats.polls_skipped),
              detector.events().size());
  return 0;
}
