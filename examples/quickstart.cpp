// Quickstart: monitor the bandwidth of one communication path.
//
// Builds the paper's LIRTSS testbed (Figure 3) from its specification
// file, deploys SNMP agents where the spec declares them, generates a
// constant UDP load from L to N1, and prints what the network monitor
// measures on the S1 <-> N1 path every poll.
#include <cstdio>

#include "loadgen/generator.h"
#include "monitor/monitor.h"
#include "netsim/background.h"
#include "netsim/network.h"
#include "netsim/services.h"
#include "snmp/deploy.h"
#include "spec/testbed.h"
#include "topology/path.h"

using namespace netqos;

int main() {
  // 1. Parse the specification file (paper §3.2) and build the network.
  spec::SpecFile specfile = spec::lirtss_testbed();
  sim::Simulator simulator;
  auto network = sim::build_network(simulator, specfile.topology);

  // 2. Deploy SNMP demons on L, S1, S2, N1, N2, and the switch (§4.1).
  auto agents = snmp::deploy_agents(simulator, *network, specfile.topology);
  std::printf("deployed %zu SNMP agents\n", agents.size());

  // 3. Every host accepts DISCARD traffic; add light background chatter.
  std::vector<sim::Host*> hosts;
  std::vector<std::unique_ptr<sim::DiscardService>> discards;
  for (const auto& node : specfile.topology.nodes()) {
    if (auto* host = network->find_host(node.name)) {
      hosts.push_back(host);
      discards.push_back(std::make_unique<sim::DiscardService>(*host));
    }
  }
  sim::BackgroundTraffic background(simulator, hosts, {});
  background.start();

  // 4. Generate 200 KB/s from L to N1 between t=10s and t=40s.
  load::LoadGenerator generator(
      simulator, *network->find_host("L"),
      network->find_host("N1")->ip(),
      load::RateProfile::pulse(seconds(10), seconds(40),
                               kilobytes_per_second(200)));
  generator.start();

  // 5. The monitor runs on host L and watches the S1 <-> N1 path.
  mon::NetworkMonitor monitor(simulator, specfile.topology,
                              *network->find_host("L"));
  monitor.add_path("S1", "N1");
  monitor.add_sample_callback([&](const mon::PathKey& key, SimTime t,
                                  const mon::PathUsage& usage) {
    std::printf("t=%5.1fs  %s<->%s  used %7.1f KB/s  available %8.1f KB/s\n",
                to_seconds(t), key.first.c_str(), key.second.c_str(),
                usage.used_at_bottleneck / 1000.0, usage.available / 1000.0);
  });
  monitor.start();

  std::printf("path: %s\n",
              topo::path_to_string(specfile.topology,
                                   monitor.path_of("S1", "N1"))
                  .c_str());

  // 6. Run for 50 simulated seconds.
  simulator.run_until(seconds(50));

  const auto& stats = monitor.stats();
  std::printf("\npoll rounds: %llu completed, %llu agent polls, "
              "%llu failures\n",
              static_cast<unsigned long long>(stats.rounds_completed),
              static_cast<unsigned long long>(stats.agent_polls),
              static_cast<unsigned long long>(stats.agent_poll_failures));
  return 0;
}
