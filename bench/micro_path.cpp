// Microbenchmarks: path traversal on growing topologies.
//
// The monitor traverses paths once per registered pair; DeSiDeRaTa-scale
// systems may have hundreds of hosts, so traversal must stay cheap.
#include <benchmark/benchmark.h>

#include "topology/domains.h"
#include "topology/path.h"

using namespace netqos;
using namespace netqos::topo;

namespace {

/// A two-tier tree: `switches` edge switches with `hosts_per` hosts each,
/// all uplinked to one core switch.
NetworkTopology make_tree(int switches, int hosts_per) {
  NetworkTopology topo;
  NodeSpec core;
  core.name = "core";
  core.kind = NodeKind::kSwitch;
  core.default_speed = kGbps;
  for (int s = 0; s < switches; ++s) {
    core.interfaces.push_back({"c" + std::to_string(s), 0, ""});
  }
  topo.add_node(core);

  int ip = 0;
  for (int s = 0; s < switches; ++s) {
    NodeSpec edge;
    edge.name = "edge" + std::to_string(s);
    edge.kind = NodeKind::kSwitch;
    edge.default_speed = mbps(100);
    edge.interfaces.push_back({"up", 0, ""});
    for (int h = 0; h < hosts_per; ++h) {
      edge.interfaces.push_back({"p" + std::to_string(h), 0, ""});
    }
    topo.add_node(edge);
    topo.add_connection({{edge.name, "up"}, {"core", "c" + std::to_string(s)}});

    for (int h = 0; h < hosts_per; ++h) {
      NodeSpec host;
      host.name = "h" + std::to_string(s) + "_" + std::to_string(h);
      host.kind = NodeKind::kHost;
      ++ip;
      host.interfaces.push_back(
          {"eth0", mbps(100),
           "10." + std::to_string(ip / 65536) + "." +
               std::to_string((ip / 256) % 256) + "." +
               std::to_string(ip % 256)});
      topo.add_node(host);
      topo.add_connection(
          {{host.name, "eth0"}, {edge.name, "p" + std::to_string(h)}});
    }
  }
  return topo;
}

void BM_TraverseRecursive(benchmark::State& state) {
  const auto topo = make_tree(static_cast<int>(state.range(0)), 8);
  // Worst-ish case: hosts on the first and last edge switch.
  const std::string from = "h0_0";
  const std::string to =
      "h" + std::to_string(state.range(0) - 1) + "_7";
  for (auto _ : state) {
    benchmark::DoNotOptimize(traverse_recursive(topo, from, to));
  }
  state.SetLabel(std::to_string(topo.nodes().size()) + " nodes");
}
BENCHMARK(BM_TraverseRecursive)->Arg(2)->Arg(8)->Arg(32)->Arg(64);

void BM_ShortestPath(benchmark::State& state) {
  const auto topo = make_tree(static_cast<int>(state.range(0)), 8);
  const std::string from = "h0_0";
  const std::string to =
      "h" + std::to_string(state.range(0) - 1) + "_7";
  for (auto _ : state) {
    benchmark::DoNotOptimize(shortest_path(topo, from, to));
  }
  state.SetLabel(std::to_string(topo.nodes().size()) + " nodes");
}
BENCHMARK(BM_ShortestPath)->Arg(2)->Arg(8)->Arg(32)->Arg(64);

void BM_Validate(benchmark::State& state) {
  const auto topo = make_tree(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.validate());
  }
}
BENCHMARK(BM_Validate)->Arg(8)->Arg(32);

void BM_CollisionDomains(benchmark::State& state) {
  // Add hubs: one per edge switch... reuse tree then append hubs.
  auto topo = make_tree(static_cast<int>(state.range(0)), 4);
  for (int s = 0; s < state.range(0); ++s) {
    NodeSpec hub;
    hub.name = "hub" + std::to_string(s);
    hub.kind = NodeKind::kHub;
    hub.default_speed = mbps(10);
    hub.interfaces.push_back({"up", 0, ""});
    hub.interfaces.push_back({"h1", 0, ""});
    topo.add_node(hub);
    // Attach to an unused port name on the edge switch is not possible
    // (all used); attach hub to a host-free core port instead: skip — use
    // a dedicated interface on the hub only (dangling is fine for this
    // micro benchmark of the flood-fill).
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(collision_domains(topo));
  }
}
BENCHMARK(BM_CollisionDomains)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
