// Reproduces paper §4.3.3: Figure 6, hosts connected by a switch.
//
// 2000 KB/s loads: L->S2 during 20-60 s, L->S3 during 40-80 s, L->S1
// during 100-120 s. A switch forwards only to the destination port, so
// the load to S2 must appear only on S1<->S2, the load to S3 only on
// S1<->S3, and the load to S1 on BOTH paths (S1 has a single connection
// to the switch).
#include <cstdio>
#include <fstream>

#include "experiments/lirtss.h"
#include "monitor/report.h"

using namespace netqos;

int main() {
  obs::MetricsRegistry registry;
  obs::SpanRecorder spans;
  exp::TestbedOptions options;
  options.metrics = &registry;
  options.spans = &spans;
  exp::LirtssTestbed bed(options);

  bed.add_load("L", "S2",
               load::RateProfile::pulse(seconds(20), seconds(60),
                                        kilobytes_per_second(2000)));
  bed.add_load("L", "S3",
               load::RateProfile::pulse(seconds(40), seconds(80),
                                        kilobytes_per_second(2000)));
  bed.add_load("L", "S1",
               load::RateProfile::pulse(seconds(100), seconds(120),
                                        kilobytes_per_second(2000)));
  bed.watch("S1", "S2").watch("S1", "S3");
  bed.run_until(seconds(140));

  const TimeSeries& s2 = bed.monitor().used_series("S1", "S2");
  const TimeSeries& s3 = bed.monitor().used_series("S1", "S3");

  std::printf("=== Figure 6: hosts connected by a switch ===\n");
  std::printf("(a) L->S2  (b) L->S3  (c) L->S1  (d) measured S1<->S2  "
              "(e) measured S1<->S3, KB/s\n\n");
  std::printf("%8s %9s %9s %9s %14s %14s\n", "time_s", "gen_S2", "gen_S3",
              "gen_S1", "meas_S1S2", "meas_S1S3");
  for (std::size_t i = 0; i < s2.size() && i < s3.size(); ++i) {
    const auto& p2 = s2.points()[i];
    const auto& p3 = s3.points()[i];
    const double t = to_seconds(p2.time);
    const double g2 = (t >= 20 && t < 60) ? 2000.0 : 0.0;
    const double g3 = (t >= 40 && t < 80) ? 2000.0 : 0.0;
    const double g1 = (t >= 100 && t < 120) ? 2000.0 : 0.0;
    std::printf("%8.1f %9.1f %9.1f %9.1f %14.2f %14.2f\n", t, g2, g3, g1,
                p2.value / 1000.0, p3.value / 1000.0);
  }

  const BytesPerSecond background =
      mon::estimate_background(s2, seconds(0), seconds(18));

  std::printf("\nisolation checks (background %.2f KB/s):\n",
              background / 1000.0);
  std::printf("%34s %10s %16s %10s %12s\n", "window / path", "expected",
              "meas-bg", "% err", "max % err");
  struct Check {
    const char* label;
    const TimeSeries* series;
    SimTime begin, end;
    double expected_kb;
  };
  const Check checks[] = {
      {"S2 load on S1<->S2 (20-40s)", &s2, seconds(20), seconds(40), 2000},
      {"S2 load NOT on S1<->S3 (20-40s)", &s3, seconds(20), seconds(40), 0},
      {"S3 load on S1<->S3 (60-80s)", &s3, seconds(60), seconds(80), 2000},
      {"S3 load NOT on S1<->S2 (60-80s)", &s2, seconds(60), seconds(80), 0},
      {"S1 load on S1<->S2 (100-120s)", &s2, seconds(100), seconds(120),
       2000},
      {"S1 load on S1<->S3 (100-120s)", &s3, seconds(100), seconds(120),
       2000},
  };
  for (const Check& c : checks) {
    const auto row = mon::analyze_window(
        *c.series, c.begin, c.end, kilobytes_per_second(c.expected_kb),
        background, /*settle=*/seconds(6));
    std::printf("%34s %10.0f %16.3f", c.label, c.expected_kb,
                row.less_background_kbps);
    if (c.expected_kb > 0) {
      std::printf(" %9.1f%% %11.1f%%\n", row.percent_error,
                  row.max_percent_error);
    } else {
      std::printf(" %9s %11s\n", "-", "-");
    }
  }

  std::printf("\npaper reference: switch isolates per-destination traffic; "
              "2.2%% error on averages, 7.8%% max individual\n");

  // Telemetry artifacts (CI uploads these).
  bed.monitor().stop();
  registry.collect();
  {
    std::ofstream metrics("fig6_switch.metrics.prom");
    registry.render_prometheus(metrics);
    std::ofstream trace("fig6_switch.trace.jsonl");
    spans.write_jsonl(trace);
  }
  std::printf("telemetry: fig6_switch.metrics.prom, fig6_switch.trace.jsonl "
              "(%zu spans)\n", spans.spans().size());
  return 0;
}
