// Microbenchmarks: the history store's append and query hot paths, plus
// the memory-bound check the whole design rests on.
//
// Appends happen once per poll round per series, so raw throughput is not
// the bottleneck — but windowed queries run on demand (reports, the RM,
// the predictive detector) and must stay cheap at any retention depth.
// Each measurement is printed as a table row and written to
// micro_history.jsonl (one JSON object per line) for CI to archive.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "history/store.h"

using namespace netqos;
using namespace netqos::hist;

namespace {

using Clock = std::chrono::steady_clock;

struct Measurement {
  std::string bench;
  std::size_t ops = 0;
  double ns_per_op = 0.0;
  double extra = 0.0;  // bench-specific (bytes, samples, ...)
  std::string extra_name;
};

std::vector<Measurement> g_results;

void report(const Measurement& m) {
  std::printf("%-28s %12zu ops %12.1f ns/op", m.bench.c_str(), m.ops,
              m.ns_per_op);
  if (!m.extra_name.empty()) {
    std::printf("  %s=%.0f", m.extra_name.c_str(), m.extra);
  }
  std::printf("\n");
  g_results.push_back(m);
}

RetentionPolicy realistic_policy() {
  RetentionPolicy policy;
  policy.raw_capacity = 1024;
  policy.tiers = {{10 * kSecond, 512}, {60 * kSecond, 256}};
  return policy;
}

/// Deterministic sawtooth-with-drift sample stream (no RNG: bench runs
/// must be reproducible bit-for-bit across machines).
double sample_value(std::size_t i) {
  return static_cast<double>(i % 97) + 0.25 * static_cast<double>(i % 13);
}

void bench_series_append() {
  constexpr std::size_t kOps = 2'000'000;
  Series series(realistic_policy());
  const auto start = Clock::now();
  for (std::size_t i = 0; i < kOps; ++i) {
    series.add(2 * kSecond * static_cast<std::int64_t>(i), sample_value(i));
  }
  const auto stop = Clock::now();
  Measurement m;
  m.bench = "series_append";
  m.ops = kOps;
  m.ns_per_op =
      std::chrono::duration<double, std::nano>(stop - start).count() / kOps;
  m.extra = static_cast<double>(series.footprint_bytes());
  m.extra_name = "footprint_bytes";
  report(m);
}

void bench_window_query(const char* name, SimDuration window) {
  // Fill well past every tier's horizon so the query planner exercises
  // its fallback logic, then query the trailing window repeatedly.
  constexpr std::size_t kFill = 100'000;
  constexpr std::size_t kOps = 50'000;
  Series series(realistic_policy());
  for (std::size_t i = 0; i < kFill; ++i) {
    series.add(2 * kSecond * static_cast<std::int64_t>(i), sample_value(i));
  }
  const SimTime end = 2 * kSecond * static_cast<std::int64_t>(kFill);
  double checksum = 0.0;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < kOps; ++i) {
    const WindowSummary summary = series.query(end - window, end);
    checksum += summary.mean;  // defeat dead-code elimination
  }
  const auto stop = Clock::now();
  Measurement m;
  m.bench = name;
  m.ops = kOps;
  m.ns_per_op =
      std::chrono::duration<double, std::nano>(stop - start).count() / kOps;
  m.extra = checksum / static_cast<double>(kOps);
  m.extra_name = "mean";
  report(m);
}

void bench_store_fanout() {
  // One poll round appends to every series; model 64 series x 20k rounds.
  constexpr std::size_t kSeries = 64;
  constexpr std::size_t kRounds = 20'000;
  HistoryStore store(realistic_policy());
  std::vector<std::string> keys;
  for (std::size_t s = 0; s < kSeries; ++s) {
    keys.push_back(connection_series_key(s));
  }
  const auto start = Clock::now();
  for (std::size_t round = 0; round < kRounds; ++round) {
    const SimTime t = 2 * kSecond * static_cast<std::int64_t>(round);
    for (std::size_t s = 0; s < kSeries; ++s) {
      store.append(keys[s], t, sample_value(round + s));
    }
  }
  const auto stop = Clock::now();
  Measurement m;
  m.bench = "store_fanout_append";
  m.ops = kSeries * kRounds;
  m.ns_per_op =
      std::chrono::duration<double, std::nano>(stop - start).count() /
      static_cast<double>(kSeries * kRounds);
  m.extra = static_cast<double>(store.footprint_bytes());
  m.extra_name = "footprint_bytes";
  report(m);
}

/// The memory bound itself: two stores differing only in how many samples
/// flowed through them must report identical footprints. A regression
/// here is a correctness failure, not a slowdown — exit nonzero.
bool check_footprint_flat() {
  HistoryStore short_store(realistic_policy());
  HistoryStore long_store(realistic_policy());
  for (std::size_t i = 0; i < 1'000; ++i) {
    short_store.append("path", 2 * kSecond * static_cast<std::int64_t>(i),
                       sample_value(i));
  }
  for (std::size_t i = 0; i < 1'000'000; ++i) {
    long_store.append("path", 2 * kSecond * static_cast<std::int64_t>(i),
                      sample_value(i));
  }
  const std::size_t short_bytes = short_store.footprint_bytes();
  const std::size_t long_bytes = long_store.footprint_bytes();
  Measurement m;
  m.bench = "footprint_flat_1k_vs_1m";
  m.ops = 1'000'000;
  m.ns_per_op = 0.0;
  m.extra = static_cast<double>(long_bytes);
  m.extra_name = "footprint_bytes";
  report(m);
  if (short_bytes != long_bytes) {
    std::fprintf(stderr,
                 "FAIL: footprint not flat (1k samples -> %zu bytes, "
                 "1M samples -> %zu bytes)\n",
                 short_bytes, long_bytes);
    return false;
  }
  std::printf("footprint flat: 1k and 1M samples both occupy %zu bytes\n",
              long_bytes);
  return true;
}

}  // namespace

int main() {
  std::printf("=== micro_history: bounded history store hot paths ===\n\n");
  bench_series_append();
  bench_window_query("window_query_raw", seconds(60));
  bench_window_query("window_query_downsampled", seconds(3600));
  bench_store_fanout();
  const bool flat = check_footprint_flat();

  std::ofstream out("micro_history.jsonl");
  for (const Measurement& m : g_results) {
    out << "{\"bench\":\"" << m.bench << "\",\"ops\":" << m.ops
        << ",\"ns_per_op\":" << m.ns_per_op;
    if (!m.extra_name.empty()) {
      out << ",\"" << m.extra_name << "\":" << m.extra;
    }
    out << "}\n";
  }
  std::printf("\nwrote %zu measurements to micro_history.jsonl\n",
              g_results.size());
  return flat ? 0 : 1;
}
