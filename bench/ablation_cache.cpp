// Ablation A: agent cache refresh jitter vs. measurement error.
//
// The paper §4.3.1 attributes its worst individual errors ("an abnormally
// small value followed by an abnormally large one", up to 16%) to SNMP
// polling delay: bytes counted in a later message. Here that artifact is
// produced by the agent's ifTable snapshot cache, which refreshes
// asynchronously after each query with jittered latency. The worst-case
// individual error should scale as (jitter / poll interval) while the
// window-average error stays flat — caching only moves bytes between
// adjacent samples, it does not lose them.
#include <cstdio>

#include "experiments/lirtss.h"
#include "monitor/report.h"

using namespace netqos;

namespace {

struct Row {
  double avg_kbps;
  double avg_err;
  double max_err;
};

Row run(bool cached, SimDuration jitter) {
  exp::TestbedOptions options;
  options.agent_cache = cached;
  options.agent_refresh_jitter = jitter;
  exp::LirtssTestbed bed(options);
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(4), seconds(124),
                                        kilobytes_per_second(300)));
  bed.watch("S1", "N1");
  bed.run_until(seconds(124));

  const TimeSeries& used = bed.monitor().used_series("S1", "N1");
  const double expected = 300'000.0 * 1.031 + 11'000.0;  // +framing +bg
  const RunningStats window = used.stats_between(seconds(10), seconds(122));
  Row row;
  row.avg_kbps = window.mean() / 1000.0;
  row.avg_err = 100.0 * (window.mean() - expected) / expected;
  row.max_err =
      100.0 * used.max_relative_error(seconds(10), seconds(122), expected);
  return row;
}

}  // namespace

int main() {
  std::printf("=== Ablation: agent cache refresh jitter vs. error ===\n");
  std::printf("constant 300 KB/s L->N1, monitor S1<->N1, 2 s polls, 120 s\n\n");
  std::printf("%16s %16s %12s %12s %16s\n", "cache", "jitter_ms",
              "avg KB/s", "avg %err", "max %err (spikes)");

  const Row live = run(false, 0);
  std::printf("%16s %16s %12.2f %11.2f%% %15.2f%%\n", "off (live)", "-",
              live.avg_kbps, live.avg_err, live.max_err);

  for (const SimDuration jitter :
       {0 * kMillisecond, 40 * kMillisecond, 80 * kMillisecond,
        120 * kMillisecond, 200 * kMillisecond, 320 * kMillisecond}) {
    const Row row = run(true, jitter);
    std::printf("%16s %16lld %12.2f %11.2f%% %15.2f%%\n", "on",
                static_cast<long long>(jitter / kMillisecond), row.avg_kbps,
                row.avg_err, row.max_err);
  }

  std::printf("\nexpected shape: average error flat (caching only delays "
              "bytes); worst-case individual error grows ~ jitter / poll "
              "interval — the paper's spike mechanism, including its rare "
              "~16%% outlier at realistic jitter\n");
  return 0;
}
