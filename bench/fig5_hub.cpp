// Reproduces paper §4.3.2: Figure 5, hosts connected by a hub.
//
// 200 KB/s L->N1 starting at t=20 s, 200 KB/s L->N2 starting at t=40 s;
// the N1 load stops at t=60 s, the N2 load at t=80 s. Because a hub
// repeats every frame to every member, BOTH monitored paths (S1<->N1 and
// S1<->N2) must report the SUM of hub traffic: 0 / 200 / 400 / 200 / 0.
#include <cstdio>
#include <fstream>

#include "experiments/lirtss.h"
#include "monitor/report.h"

using namespace netqos;

int main() {
  obs::MetricsRegistry registry;
  obs::SpanRecorder spans;
  exp::TestbedOptions options;
  options.metrics = &registry;
  options.spans = &spans;
  exp::LirtssTestbed bed(options);

  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(20), seconds(60),
                                        kilobytes_per_second(200)));
  bed.add_load("L", "N2",
               load::RateProfile::pulse(seconds(40), seconds(80),
                                        kilobytes_per_second(200)));
  bed.watch("S1", "N1").watch("S1", "N2");
  bed.run_until(seconds(100));

  const TimeSeries& n1 = bed.monitor().used_series("S1", "N1");
  const TimeSeries& n2 = bed.monitor().used_series("S1", "N2");

  std::printf("=== Figure 5: hosts connected by a hub ===\n");
  std::printf("(a) load L->N1  (b) load L->N2  (c) measured S1<->N1  "
              "(d) measured S1<->N2, KB/s\n\n");
  std::printf("%8s %10s %10s %14s %14s\n", "time_s", "gen_N1", "gen_N2",
              "meas_S1N1", "meas_S1N2");
  for (std::size_t i = 0; i < n1.size() && i < n2.size(); ++i) {
    const auto& p1 = n1.points()[i];
    const auto& p2 = n2.points()[i];
    const double t = to_seconds(p1.time);
    const double gen1 = (t >= 20 && t < 60) ? 200.0 : 0.0;
    const double gen2 = (t >= 40 && t < 80) ? 200.0 : 0.0;
    std::printf("%8.1f %10.1f %10.1f %14.2f %14.2f\n", t, gen1, gen2,
                p1.value / 1000.0, p2.value / 1000.0);
  }

  // Both paths bottleneck on the hub domain, so their measured usage is
  // identical: the hub sums (paper: "The observed traffic load for the
  // two paths is as we expected").
  const BytesPerSecond background =
      mon::estimate_background(n1, seconds(0), seconds(18));

  std::printf("\nwindow summaries (background %.2f KB/s):\n",
              background / 1000.0);
  std::printf("%22s %12s %16s %10s %12s\n", "window", "expected",
              "meas-bg (S1N1)", "% err", "max % err");
  struct Window {
    const char* label;
    SimTime begin, end;
    double expected_kb;  // sum of hub loads
  };
  const Window windows[] = {
      {"only N1 load (20-60s)", seconds(20), seconds(40), 200},
      {"both loads (40-60s)", seconds(40), seconds(60), 400},
      {"only N2 load (60-80s)", seconds(60), seconds(80), 200},
  };
  for (const Window& w : windows) {
    const auto row = mon::analyze_window(
        n1, w.begin, w.end, kilobytes_per_second(w.expected_kb), background,
        /*settle=*/seconds(6));
    std::printf("%22s %12.0f %16.3f %9.1f%% %11.1f%%\n", w.label,
                w.expected_kb, row.less_background_kbps, row.percent_error,
                row.max_percent_error);
  }

  std::printf("\npaper reference: both paths show the summed hub load; "
              "3.7%% error on averages, 7.8%% max individual\n");

  // Telemetry artifacts (CI uploads these).
  bed.monitor().stop();
  registry.collect();
  {
    std::ofstream metrics("fig5_hub.metrics.prom");
    registry.render_prometheus(metrics);
    std::ofstream trace("fig5_hub.trace.jsonl");
    spans.write_jsonl(trace);
  }
  std::printf("telemetry: fig5_hub.metrics.prom, fig5_hub.trace.jsonl "
              "(%zu spans)\n", spans.spans().size());
  return 0;
}
