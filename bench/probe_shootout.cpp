// Active-probing shootout: every estimator (and the passive monitor)
// against the scenario matrix, scored against link-level ground truth.
// See src/experiments/shootout.h for metric definitions and
// EXPERIMENTS.md for the reproduction recipe.
//
// Usage: probe_shootout [out.jsonl]
//   With a path, writes the JSONL artifact there (the tier-2 CI job's
//   upload, gated by scripts/perf_check.py against
//   bench/baselines/probe_shootout.jsonl). The human-readable table
//   always goes to stdout.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "experiments/shootout.h"

using namespace netqos;

int main(int argc, char** argv) {
  exp::ShootoutOptions options;
  const std::vector<exp::ShootoutRow> rows = exp::run_shootout(options);

  std::printf("=== SNMP-vs-probe shootout ===\n");
  std::printf("%-17s %-9s %10s %14s %12s %10s %12s\n", "scenario",
              "estimator", "mae", "intrusiveness", "converge_s", "estimates",
              "poll_p95_ms");
  for (const auto& row : rows) {
    std::printf("%-17s %-9s %10.4f %14.6f %12.2f %10llu %12.2f\n",
                row.scenario.c_str(), row.estimator.c_str(),
                row.mean_abs_error, row.intrusiveness,
                row.convergence_seconds,
                static_cast<unsigned long long>(row.estimates),
                row.poll_round_p95_seconds * 1000.0);
  }

  if (argc > 1) {
    std::ofstream out(argv[1]);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    exp::write_shootout_jsonl(rows, out);
    std::printf("\nwrote %zu rows to %s\n", rows.size(), argv[1]);
  }
  return 0;
}
