// Ablation: adaptive backoff vs fixed-interval polling with dark agents.
//
// Paper §5 charges the monitor's own SNMP traffic against the network it
// measures. When agents die, a fixed-interval poller keeps burning a full
// timeout+retry on each dark agent every round; the PollScheduler backs
// dark agents off exponentially instead. This run puts SNMP daemons on
// all eight workstations of the Figure 3 testbed, kills two of them
// mid-run, and compares the two policies on:
//
//   * steady-state polls sent to the dark agents (want >= 4x reduction),
//   * quarantine detection latency (the price of backing off),
//   * the unaffected S1<->S2 path series (must be bit-identical), and
//   * staleness flags on the affected S1<->S4 path (stale while the host
//     agent's samples age, never silently fresh).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "loadgen/generator.h"
#include "monitor/monitor.h"
#include "netsim/network.h"
#include "netsim/services.h"
#include "snmp/deploy.h"
#include "spec/parser.h"
#include "spec/testbed.h"

using namespace netqos;

namespace {

constexpr double kDarkAt = 20.0;      // daemons on S4/S5 die here
constexpr double kWindowBegin = 40.0; // steady-state accounting window
constexpr double kWindowEnd = 140.0;

/// Figure 3 testbed with SNMP daemons on every workstation (the paper's
/// S3-S6 run none): 8 host agents + L + the switch.
spec::SpecFile all_agents_testbed() {
  std::string text = spec::lirtss_spec_text();
  // 'host S3 { os "Solaris"; interface ... }' -> insert 'snmp on;'.
  for (const char* name : {"S3", "S4", "S5", "S6"}) {
    const std::string needle = std::string("host ") + name + " { ";
    const auto at = text.find(needle);
    if (at == std::string::npos) std::abort();
    text.insert(at + needle.size(), "snmp on; ");
  }
  return spec::parse_spec(text);
}

struct RunResult {
  std::vector<TimePoint> unaffected;  // S1<->S2 used series
  std::uint64_t dark_window_polls = 0;      // polls to S4+S5 in the window
  std::uint64_t total_polls = 0;
  double detect_latency_s = -1.0;  // daemon death -> quarantine
  std::size_t affected_samples = 0;
  std::size_t affected_stale = 0;
  bool never_silently_fresh = true;
  bool fallback_active = false;  // S1<->S4 ended up measured at the switch
};

RunResult run_policy(double backoff_base) {
  RunResult result;
  sim::Simulator simulator;
  spec::SpecFile specfile = all_agents_testbed();
  auto network = sim::build_network(simulator, specfile.topology);
  auto agents = snmp::deploy_agents(simulator, *network, specfile.topology);

  std::vector<std::unique_ptr<sim::DiscardService>> discards;
  for (const auto& node : specfile.topology.nodes()) {
    if (auto* host = network->find_host(node.name)) {
      discards.push_back(std::make_unique<sim::DiscardService>(*host));
    }
  }

  mon::MonitorConfig config;
  config.poll_interval = 2 * kSecond;
  config.scheduler.backoff_base = backoff_base;
  mon::NetworkMonitor monitor(simulator, specfile.topology,
                              *network->find_host("L"), config);
  monitor.add_path("S1", "S2");
  monitor.add_path("S1", "S4");

  const double stale_after_s = to_seconds(monitor.effective_stale_after());
  monitor.add_sample_callback([&](const mon::PathKey& key, SimTime time,
                                  const mon::PathUsage& usage) {
    if (key != mon::PathKey{"S1", "S4"}) return;
    ++result.affected_samples;
    const double age_s = to_seconds(usage.max_sample_age);
    if (usage.freshness == mon::Freshness::kStale) ++result.affected_stale;
    // The one invariant that must never break: old data is never
    // presented as fresh.
    if (usage.freshness == mon::Freshness::kFresh && age_s > stale_after_s) {
      result.never_silently_fresh = false;
      std::printf("    VIOLATION t=%.1fs: fresh with age %.1fs\n",
                  to_seconds(time), age_s);
    }
  });

  // Deterministic foreground load only (no background chatter): the
  // unaffected series must match bit for bit across policies.
  load::LoadGenerator load(
      simulator, *network->find_host("S1"), network->find_host("S2")->ip(),
      load::RateProfile::pulse(seconds(5), from_seconds(kWindowEnd),
                               kilobytes_per_second(300)));
  load.start();
  monitor.start();

  simulator.run_until(from_seconds(kDarkAt));
  snmp::find_agent(agents, "S4")->agent->set_responding(false);
  snmp::find_agent(agents, "S5")->agent->set_responding(false);

  simulator.run_until(from_seconds(kWindowBegin));
  const std::uint64_t dark_before = monitor.scheduler().find("S4")->polls +
                                    monitor.scheduler().find("S5")->polls;
  simulator.run_until(from_seconds(kWindowEnd));
  result.dark_window_polls = monitor.scheduler().find("S4")->polls +
                             monitor.scheduler().find("S5")->polls -
                             dark_before;
  result.total_polls = monitor.stats().agent_polls;

  const auto* s4 = monitor.scheduler().find("S4");
  if (s4->health == mon::AgentHealth::kQuarantined) {
    result.detect_latency_s = to_seconds(s4->quarantined_at) - kDarkAt;
  }
  // The affected path's S4 connection should have fallen back to the
  // switch port facing S4 (paper §4.1).
  for (const mon::ConnectionUsage& usage :
       monitor.current_usage("S1", "S4").connections) {
    if (usage.via_switch) result.fallback_active = true;
  }

  for (const auto& point : monitor.used_series("S1", "S2").points()) {
    result.unaffected.push_back(point);
  }
  monitor.stop();
  return result;
}

}  // namespace

int main() {
  std::printf("=== Ablation: backoff vs fixed-interval with dark agents ===\n");
  std::printf("8 host agents + switch; S4+S5 daemons die at t=%.0fs; "
              "steady-state window [%.0f, %.0f]s\n\n",
              kDarkAt, kWindowBegin, kWindowEnd);

  const RunResult fixed = run_policy(1.0);     // seed behaviour
  const RunResult adaptive = run_policy(2.0);  // default scheduler

  std::printf("%-28s %14s %14s\n", "", "fixed", "adaptive");
  std::printf("%-28s %14llu %14llu\n", "polls to dark agents",
              static_cast<unsigned long long>(fixed.dark_window_polls),
              static_cast<unsigned long long>(adaptive.dark_window_polls));
  std::printf("%-28s %14llu %14llu\n", "total polls",
              static_cast<unsigned long long>(fixed.total_polls),
              static_cast<unsigned long long>(adaptive.total_polls));
  std::printf("%-28s %13.1fs %13.1fs\n", "quarantine latency",
              fixed.detect_latency_s, adaptive.detect_latency_s);
  std::printf("%-28s %11zu/%zu %11zu/%zu\n", "stale S1<->S4 reports",
              fixed.affected_stale, fixed.affected_samples,
              adaptive.affected_stale, adaptive.affected_samples);

  bool ok = true;

  const double reduction =
      adaptive.dark_window_polls == 0
          ? static_cast<double>(fixed.dark_window_polls)
          : static_cast<double>(fixed.dark_window_polls) /
                static_cast<double>(adaptive.dark_window_polls);
  std::printf("\ndark-agent polling reduction: %.1fx (need >= 4x)\n",
              reduction);
  if (reduction < 4.0) {
    std::printf("FAIL: reduction below 4x\n");
    ok = false;
  }

  if (fixed.unaffected.size() != adaptive.unaffected.size()) {
    std::printf("FAIL: S1<->S2 series lengths differ (%zu vs %zu)\n",
                fixed.unaffected.size(), adaptive.unaffected.size());
    ok = false;
  } else {
    bool identical = true;
    for (std::size_t i = 0; i < fixed.unaffected.size(); ++i) {
      if (fixed.unaffected[i].time != adaptive.unaffected[i].time ||
          fixed.unaffected[i].value != adaptive.unaffected[i].value) {
        identical = false;
        break;
      }
    }
    std::printf("unaffected S1<->S2 series: %zu points, %s\n",
                fixed.unaffected.size(),
                identical ? "bit-identical" : "DIFFER");
    if (!identical) ok = false;
  }

  for (const RunResult* r : {&fixed, &adaptive}) {
    if (!r->never_silently_fresh) {
      std::printf("FAIL: a stale S1<->S4 report was flagged fresh\n");
      ok = false;
    }
    if (!r->fallback_active) {
      std::printf("FAIL: switch-port fallback did not engage\n");
      ok = false;
    }
  }
  // Only the adaptive run has a window where the host agent's samples age
  // past the bound before quarantine flips the measure point; fixed-mode
  // detection is fast enough to skip straight to the fallback.
  if (adaptive.affected_stale == 0) {
    std::printf("FAIL: affected path never flagged stale\n");
    ok = false;
  }
  if (adaptive.detect_latency_s < 0) {
    std::printf("FAIL: adaptive run never quarantined S4\n");
    ok = false;
  }

  std::printf("\n%s\n", ok ? "all invariants hold" : "INVARIANT FAILURES");
  return ok ? 0 : 1;
}
