// Ablation B: polling interval vs. accuracy and monitoring overhead.
//
// Faster polling gives finer-grained series but spends more bandwidth on
// SNMP itself (the paper charges ~2% of its measurement gap to SNMP
// queries and acknowledgements). This sweep quantifies both sides.
#include <cstdio>

#include "experiments/lirtss.h"
#include "monitor/report.h"

using namespace netqos;

int main() {
  std::printf("=== Ablation: poll interval vs. accuracy & overhead ===\n");
  std::printf("constant 300 KB/s L->N1, monitor S1<->N1, 120 s\n\n");
  std::printf("%10s %10s %12s %12s %18s\n", "poll_ms", "samples",
              "avg %err", "max %err", "SNMP bytes/s");

  for (const SimDuration interval :
       {500 * kMillisecond, 1000 * kMillisecond, 2000 * kMillisecond,
        5000 * kMillisecond, 10'000 * kMillisecond}) {
    exp::TestbedOptions options;
    options.poll_interval = interval;
    exp::LirtssTestbed bed(options);
    bed.add_load("L", "N1",
                 load::RateProfile::pulse(seconds(4), seconds(124),
                                          kilobytes_per_second(300)));
    bed.watch("S1", "N1");
    bed.run_until(seconds(124));

    const TimeSeries& used = bed.monitor().used_series("S1", "N1");
    const double expected = 300'000.0 * 1.031 + 11'000.0;
    // Settle past two poll rounds: the first sample after the load edge
    // straddles it, and the agent cache serves its cold t=0 snapshot to
    // the very first poll.
    const SimTime begin = seconds(4) + 2 * interval;
    const RunningStats window = used.stats_between(begin, seconds(122));
    const double avg_err = 100.0 * (window.mean() - expected) / expected;
    const double max_err =
        100.0 * used.max_relative_error(begin, seconds(122), expected);

    // SNMP management-plane traffic, measured at the client: payloads
    // plus 46 bytes of UDP/IP/Ethernet framing per message.
    const auto& client = bed.monitor().client_stats();
    const double snmp_bytes =
        static_cast<double>(client.payload_bytes_sent +
                            client.payload_bytes_received) +
        46.0 * static_cast<double>(client.requests_sent + client.responses);
    const double snmp_rate = snmp_bytes / 124.0;

    std::printf("%10lld %10zu %11.2f%% %11.2f%% %18.1f\n",
                static_cast<long long>(interval / kMillisecond),
                used.size(), avg_err, max_err, snmp_rate);
  }

  std::printf("\nexpected shape: accuracy roughly flat; per-sample noise "
              "and SNMP overhead both drop as the interval grows; "
              "overhead scales ~1/interval\n");
  return 0;
}
