// Microbenchmarks: BER codec and SNMP message encode/decode throughput.
#include <benchmark/benchmark.h>

#include "snmp/ber.h"
#include "snmp/pdu.h"

using namespace netqos;
using namespace netqos::snmp;

namespace {

Message make_poll_message(std::size_t interfaces) {
  // The monitor's per-agent poll: sysUpTime + 4 counters per interface.
  Message msg;
  msg.pdu.type = PduType::kGetRequest;
  msg.pdu.request_id = 42;
  msg.pdu.varbinds.push_back({mib2::kSysUpTime.child(0), Null{}});
  for (std::uint32_t i = 1; i <= interfaces; ++i) {
    for (std::uint32_t col : {mib2::kIfInOctetsColumn,
                              mib2::kIfOutOctetsColumn,
                              mib2::kIfInUcastPktsColumn,
                              mib2::kIfOutUcastPktsColumn}) {
      msg.pdu.varbinds.push_back({mib2::if_column(col, i), Null{}});
    }
  }
  return msg;
}

Message make_response(const Message& request) {
  Message response = request;
  response.pdu.type = PduType::kGetResponse;
  for (auto& vb : response.pdu.varbinds) {
    vb.value = Counter32{0xdeadbeef};
  }
  return response;
}

void BM_EncodeOid(benchmark::State& state) {
  const Oid oid = mib2::if_column(mib2::kIfInOctetsColumn, 3);
  for (auto _ : state) {
    ByteWriter w;
    ber::write_oid(w, oid);
    benchmark::DoNotOptimize(w.bytes().data());
  }
}
BENCHMARK(BM_EncodeOid);

void BM_DecodeOid(benchmark::State& state) {
  ByteWriter w;
  ber::write_oid(w, mib2::if_column(mib2::kIfInOctetsColumn, 3));
  const Bytes wire = std::move(w).take();
  for (auto _ : state) {
    ByteReader r(wire);
    benchmark::DoNotOptimize(ber::read_oid(r));
  }
}
BENCHMARK(BM_DecodeOid);

void BM_EncodePollRequest(benchmark::State& state) {
  const Message msg = make_poll_message(state.range(0));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Bytes wire = encode_message(msg);
    bytes += wire.size();
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_EncodePollRequest)->Arg(1)->Arg(4)->Arg(16);

void BM_DecodePollResponse(benchmark::State& state) {
  const Bytes wire =
      encode_message(make_response(make_poll_message(state.range(0))));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Message msg = decode_message(wire);
    bytes += wire.size();
    benchmark::DoNotOptimize(msg.pdu.varbinds.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DecodePollResponse)->Arg(1)->Arg(4)->Arg(16);

void BM_RoundTripCounter32(benchmark::State& state) {
  for (auto _ : state) {
    ByteWriter w;
    ber::write_value(w, Counter32{123456789});
    ByteReader r(w.bytes());
    benchmark::DoNotOptimize(ber::read_value(r));
  }
}
BENCHMARK(BM_RoundTripCounter32);

}  // namespace

BENCHMARK_MAIN();
