// Microbenchmarks: BER codec and SNMP message encode/decode throughput,
// including the zero-copy view decoder against the materializing one.
// Exits non-zero if the view path is not at least 2x faster.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "snmp/ber.h"
#include "snmp/ber_view.h"
#include "snmp/pdu.h"

using namespace netqos;
using namespace netqos::snmp;

namespace {

Message make_poll_message(std::size_t interfaces) {
  // The monitor's per-agent poll: sysUpTime + 4 counters per interface.
  Message msg;
  msg.pdu.type = PduType::kGetRequest;
  msg.pdu.request_id = 42;
  msg.pdu.varbinds.push_back({mib2::kSysUpTime.child(0), Null{}});
  for (std::uint32_t i = 1; i <= interfaces; ++i) {
    for (std::uint32_t col : {mib2::kIfInOctetsColumn,
                              mib2::kIfOutOctetsColumn,
                              mib2::kIfInUcastPktsColumn,
                              mib2::kIfOutUcastPktsColumn}) {
      msg.pdu.varbinds.push_back({mib2::if_column(col, i), Null{}});
    }
  }
  return msg;
}

Message make_response(const Message& request) {
  Message response = request;
  response.pdu.type = PduType::kGetResponse;
  for (auto& vb : response.pdu.varbinds) {
    vb.value = Counter32{0xdeadbeef};
  }
  return response;
}

void BM_EncodeOid(benchmark::State& state) {
  const Oid oid = mib2::if_column(mib2::kIfInOctetsColumn, 3);
  for (auto _ : state) {
    ByteWriter w;
    ber::write_oid(w, oid);
    benchmark::DoNotOptimize(w.bytes().data());
  }
}
BENCHMARK(BM_EncodeOid);

void BM_DecodeOid(benchmark::State& state) {
  ByteWriter w;
  ber::write_oid(w, mib2::if_column(mib2::kIfInOctetsColumn, 3));
  const Bytes wire = std::move(w).take();
  for (auto _ : state) {
    ByteReader r(wire);
    benchmark::DoNotOptimize(ber::read_oid(r));
  }
}
BENCHMARK(BM_DecodeOid);

void BM_EncodePollRequest(benchmark::State& state) {
  const Message msg = make_poll_message(state.range(0));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Bytes wire = encode_message(msg);
    bytes += wire.size();
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_EncodePollRequest)->Arg(1)->Arg(4)->Arg(16);

void BM_DecodePollResponse(benchmark::State& state) {
  const Bytes wire =
      encode_message(make_response(make_poll_message(state.range(0))));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Message msg = decode_message(wire);
    bytes += wire.size();
    benchmark::DoNotOptimize(msg.pdu.varbinds.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DecodePollResponse)->Arg(1)->Arg(4)->Arg(16);

/// The hot-path consumer: header fields plus every counter value, no
/// Message materialized and no heap traffic.
std::uint64_t view_scan(std::span<const std::uint8_t> wire) {
  MessageHeadView head = decode_message_head(wire);
  std::uint64_t sum = head.request_id;
  VarBindView vb;
  while (next_varbind(head.varbinds, vb)) {
    if (!vb.value.is_exception()) sum += vb.value.to_unsigned();
  }
  return sum;
}

void BM_ViewDecodePollResponse(benchmark::State& state) {
  const Bytes wire =
      encode_message(make_response(make_poll_message(state.range(0))));
  std::size_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(view_scan(wire));
    bytes += wire.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ViewDecodePollResponse)->Arg(1)->Arg(4)->Arg(16);

void BM_EncodePollRequestReused(benchmark::State& state) {
  const Message msg = make_poll_message(state.range(0));
  Bytes buffer;
  std::size_t bytes = 0;
  for (auto _ : state) {
    buffer = encode_message(msg, std::move(buffer));
    bytes += buffer.size();
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_EncodePollRequestReused)->Arg(1)->Arg(4)->Arg(16);

void BM_RoundTripCounter32(benchmark::State& state) {
  for (auto _ : state) {
    ByteWriter w;
    ber::write_value(w, Counter32{123456789});
    ByteReader r(w.bytes());
    benchmark::DoNotOptimize(ber::read_value(r));
  }
}
BENCHMARK(BM_RoundTripCounter32);

/// Direct gate for the tentpole claim: the zero-copy view scan of a
/// 16-interface poll response must beat decode_message by >= 2x.
bool view_decode_gate() {
  const Bytes wire =
      encode_message(make_response(make_poll_message(16)));
  constexpr int kIters = 20000;
  const auto time = [&](auto&& body) {
    // One warm-up pass, then best-of-3 to damp scheduler noise.
    body();
    double best = 0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kIters; ++i) body();
      const double ns = std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      if (rep == 0 || ns < best) best = ns;
    }
    return best / kIters;
  };
  std::uint64_t sink = 0;
  const double copy_ns = time([&] {
    const Message msg = decode_message(wire);
    sink += msg.pdu.varbinds.size();
  });
  const double view_ns = time([&] { sink += view_scan(wire); });
  benchmark::DoNotOptimize(sink);

  const double ratio = copy_ns / view_ns;
  std::printf("\nview-decode gate: decode_message %.0f ns, view scan "
              "%.0f ns -> %.2fx (need >= 2x): %s\n",
              copy_ns, view_ns, ratio, ratio >= 2.0 ? "ok" : "FAIL");
  return ratio >= 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return view_decode_gate() ? 0 : 1;
}
