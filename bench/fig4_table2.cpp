// Reproduces paper §4.3.1: Figure 4 (dynamically varying network load)
// and Table 2 (statistics of measured traffic load).
//
// Staircase load from L to N1: 100 KB/s for the first 120 s, +100 KB/s
// every 60 s up to 500 KB/s, all load off at t=420 s. The monitor watches
// the S1 <-> N1 path (S1 -> switch -> hub -> N1). Expected shape: the
// measured series tracks the staircase a few percent high (packet headers
// + SNMP/background traffic), with occasional spikes from agent-side
// counter caching.
#include <cstdio>
#include <fstream>

#include "experiments/lirtss.h"
#include "monitor/report.h"

using namespace netqos;

int main() {
  obs::MetricsRegistry registry;
  obs::SpanRecorder spans;
  exp::TestbedOptions options;
  options.metrics = &registry;
  options.spans = &spans;
  exp::LirtssTestbed bed(options);

  const auto profile = load::RateProfile::staircase(
      /*initial=*/kilobytes_per_second(100), /*first_duration=*/seconds(120),
      /*increment=*/kilobytes_per_second(100), /*step_duration=*/seconds(60),
      /*steps=*/5, /*off_time=*/seconds(420));
  bed.add_load("L", "N1", profile);
  bed.watch("S1", "N1");
  bed.run_until(seconds(480));

  const TimeSeries& measured = bed.monitor().used_series("S1", "N1");

  std::printf("=== Figure 4: dynamically varying network load ===\n");
  std::printf("(a) generated load L->N1 and (b) measured S1<->N1, KB/s\n\n");
  std::printf("%8s %12s %12s\n", "time_s", "generated", "measured");
  for (const auto& point : measured.points()) {
    std::printf("%8.1f %12.1f %12.2f\n", to_seconds(point.time),
                profile.rate_at(point.time) / 1000.0, point.value / 1000.0);
  }

  // Background: average measured level with zero generated load
  // (paper: "calculated as the average of measured values at 0 load").
  const BytesPerSecond background =
      mon::estimate_background(measured, seconds(430), seconds(480));

  std::printf("\n=== Table 2: statistics of measured traffic load "
              "(KB/s) ===\n");
  std::printf("background (zero-load average): %.3f KB/s\n\n",
              background / 1000.0);
  std::printf("%10s %14s %18s %10s %12s\n", "Generated", "Avg Measured",
              "Less Background", "% Error", "Max % Error");

  struct Window {
    double generated_kb;
    SimTime begin, end;
  };
  const Window windows[] = {
      {100, seconds(0), seconds(120)},  {200, seconds(120), seconds(180)},
      {300, seconds(180), seconds(240)}, {400, seconds(240), seconds(300)},
      {500, seconds(300), seconds(420)},
  };
  for (const Window& w : windows) {
    // Skip the first few samples of each window: the first poll after a
    // staircase edge straddles two rates.
    const auto row = mon::analyze_window(
        measured, w.begin, w.end, kilobytes_per_second(w.generated_kb),
        background, /*settle=*/seconds(6));
    std::printf("%10.0f %14.3f %18.3f %9.1f%% %11.1f%%\n", w.generated_kb,
                row.measured_kbps, row.less_background_kbps,
                row.percent_error, row.max_percent_error);
  }

  std::printf("\npaper reference: avg measured-less-background ~4%% above "
              "generated; max individual errors 5-8%% (16%% outlier from "
              "polling delay)\n");

  // Telemetry artifacts (CI uploads these).
  bed.monitor().stop();
  registry.collect();
  {
    std::ofstream metrics("fig4_table2.metrics.prom");
    registry.render_prometheus(metrics);
    std::ofstream trace("fig4_table2.trace.jsonl");
    spans.write_jsonl(trace);
  }
  std::printf("telemetry: fig4_table2.metrics.prom, "
              "fig4_table2.trace.jsonl (%zu spans)\n", spans.spans().size());
  return 0;
}
