// Microbenchmarks: discrete-event core and end-to-end simulated traffic
// rates (events/sec, simulated-bytes/sec of wall time).
#include <benchmark/benchmark.h>

#include "loadgen/generator.h"
#include "netsim/network.h"
#include "netsim/services.h"
#include "netsim/simulator.h"

using namespace netqos;
using namespace netqos::sim;

namespace {

void BM_EventScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(i, [] {});
    }
    sim.run_all();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventScheduleRun)->Arg(1'000)->Arg(100'000);

void BM_EventCascade(benchmark::State& state) {
  // Self-scheduling chain: the monitor/loadgen pattern.
  for (auto _ : state) {
    Simulator sim;
    const int n = static_cast<int>(state.range(0));
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < n) sim.schedule_after(1000, chain);
    };
    sim.schedule_at(0, chain);
    sim.run_all();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventCascade)->Arg(10'000);

void BM_UdpAcrossSwitch(benchmark::State& state) {
  // Simulated seconds of a 1 MB/s stream across a switch, per wall-second.
  Simulator sim;
  Network net(sim);
  Switch& sw = net.add_switch("sw");
  net.add_port(sw, "p1", mbps(100));
  net.add_port(sw, "p2", mbps(100));
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  net.add_host_interface(a, "eth0", mbps(100), Ipv4Address::parse("10.0.0.1"));
  net.add_host_interface(b, "eth0", mbps(100), Ipv4Address::parse("10.0.0.2"));
  net.connect(a, "eth0", sw, "p1");
  net.connect(b, "eth0", sw, "p2");
  DiscardService discard(b);
  load::RateProfile profile;
  profile.add_step(0, 1'000'000.0);
  load::LoadGenerator gen(sim, a, b.ip(), profile);
  gen.start();

  SimTime horizon = 0;
  std::uint64_t datagrams = 0;
  for (auto _ : state) {
    horizon += seconds(1);
    sim.run_until(horizon);
    datagrams = gen.datagrams_sent();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(datagrams));
  state.SetLabel("simulated seconds == iterations");
}
BENCHMARK(BM_UdpAcrossSwitch);

void BM_HubBroadcastOverhead(benchmark::State& state) {
  // Same stream but through an N-port hub: every frame is repeated to
  // every port, so event cost grows with port count.
  const int ports = static_cast<int>(state.range(0));
  Simulator sim;
  Network net(sim);
  Hub& hub = net.add_hub("hub");
  for (int i = 0; i < ports; ++i) {
    net.add_port(hub, "h" + std::to_string(i), mbps(10));
  }
  std::vector<Host*> hosts;
  for (int i = 0; i < ports; ++i) {
    Host& h = net.add_host("host" + std::to_string(i));
    net.add_host_interface(
        h, "eth0", mbps(10),
        Ipv4Address::parse("10.0.1." + std::to_string(i + 1)));
    net.connect(h, "eth0", hub, "h" + std::to_string(i));
    hosts.push_back(&h);
  }
  DiscardService discard(*hosts[1]);
  load::RateProfile profile;
  profile.add_step(0, 200'000.0);
  load::LoadGenerator gen(sim, *hosts[0], hosts[1]->ip(), profile);
  gen.start();

  SimTime horizon = 0;
  for (auto _ : state) {
    horizon += seconds(1);
    sim.run_until(horizon);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.events_executed()));
}
BENCHMARK(BM_HubBroadcastOverhead)->Arg(3)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
