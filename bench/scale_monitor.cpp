// Scale study: monitoring cost vs. system size, centralized vs.
// distributed (paper §5 future work: "distributed network monitoring").
//
// Builds two-tier switched topologies of growing size, runs the monitor
// for 60 simulated seconds, and reports SNMP traffic at the monitoring
// station plus wall-clock cost. The distributed rows split polling over
// 4 stations and show the per-station traffic reduction.
#include <chrono>
#include <cstdio>
#include <sstream>

#include "loadgen/generator.h"
#include "monitor/distributed.h"
#include "netsim/services.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "snmp/deploy.h"
#include "spec/parser.h"

using namespace netqos;

namespace {

spec::SpecFile make_system(int switches, int hosts_per) {
  std::ostringstream out;
  out << "network scale {\n  switch core { snmp on; management address "
         "10.255.0.1; speed 1Gbps;\n";
  for (int s = 0; s < switches; ++s) out << "    interface c" << s << ";\n";
  out << "  }\n";
  for (int s = 0; s < switches; ++s) {
    out << "  switch edge" << s << " { snmp on; management address 10.254."
        << s << ".1; speed 100Mbps;\n    interface up;\n";
    for (int h = 0; h < hosts_per; ++h) out << "    interface p" << h << ";\n";
    out << "  }\n";
    out << "  connect edge" << s << ".up <-> core.c" << s << ";\n";
    for (int h = 0; h < hosts_per; ++h) {
      out << "  host h" << s << "x" << h << " { snmp on; interface eth0 { "
          << "speed 100Mbps; address 10." << s << ".0." << h + 1
          << "; } }\n";
      out << "  connect h" << s << "x" << h << ".eth0 <-> edge" << s
          << ".p" << h << ";\n";
    }
  }
  out << "}\n";
  return spec::parse_spec(out.str());
}

struct Row {
  int hosts;
  std::size_t agents;
  std::uint64_t polls;
  double station_snmp_Bps;  // coordinator NIC traffic
  double wall_ms;
  std::size_t store_bytes;  // history store footprint (bounded)
};

Row run(int switches, int hosts_per, int stations,
        bool full_telemetry = false, double sim_seconds = 60) {
  const spec::SpecFile specfile = make_system(switches, hosts_per);
  sim::Simulator sim;
  auto net = sim::build_network(sim, specfile.topology);
  snmp::DeployOptions deploy;
  deploy.agent.hiccup_probability = 0.0;
  auto agents = snmp::deploy_agents(sim, *net, specfile.topology, deploy);

  // Full telemetry = shared registry with simulator + per-link collectors
  // attached plus span recording; otherwise each worker keeps its cheap
  // private registry and no spans are captured.
  obs::MetricsRegistry registry;
  obs::SpanRecorder spans;
  mon::MonitorConfig base;
  if (full_telemetry) {
    sim.attach_metrics(registry);
    net->attach_metrics(registry);
    base.metrics = &registry;
    base.spans = &spans;
  }

  std::vector<sim::Host*> monitor_hosts;
  for (int s = 0; s < stations; ++s) {
    monitor_hosts.push_back(net->find_host(
        "h" + std::to_string(s % switches) + "x" + std::to_string(s / switches)));
  }
  mon::DistributedMonitor dist(sim, specfile.topology, monitor_hosts, base);
  dist.add_path("h0x0", "h" + std::to_string(switches - 1) + "x" +
                            std::to_string(hosts_per - 1));

  const auto start = std::chrono::steady_clock::now();
  dist.start();
  sim.run_until(from_seconds(sim_seconds));
  const auto stop = std::chrono::steady_clock::now();

  Row row;
  row.hosts = switches * hosts_per;
  row.agents = agents.size();
  row.polls = dist.aggregate_stats().agent_polls;
  const auto* nic = monitor_hosts[0]->find_interface("eth0");
  row.station_snmp_Bps =
      static_cast<double>(nic->total_in_octets() + nic->total_out_octets()) /
      sim_seconds;
  row.store_bytes = dist.stats_db().history().footprint_bytes() +
                    dist.coordinator().history().footprint_bytes();
  row.wall_ms = std::chrono::duration<double, std::milli>(stop - start)
                    .count();
  return row;
}

}  // namespace

int main() {
  std::printf("=== Scale: monitoring cost vs. system size ===\n");
  std::printf("60 simulated seconds, 2 s polls, one watched path\n\n");
  std::printf("%8s %8s %9s %8s %20s %10s %10s\n", "hosts", "agents",
              "stations", "polls", "station SNMP B/s", "wall ms", "store B");

  struct Config {
    int switches, hosts_per, stations;
  };
  const Config configs[] = {
      {2, 4, 1}, {4, 8, 1}, {8, 8, 1}, {8, 16, 1},
      {8, 8, 4}, {8, 16, 4},
  };
  for (const auto& c : configs) {
    const Row row = run(c.switches, c.hosts_per, c.stations);
    std::printf("%8d %8zu %9d %8llu %20.1f %10.2f %10zu\n", row.hosts,
                row.agents, c.stations,
                static_cast<unsigned long long>(row.polls),
                row.station_snmp_Bps, row.wall_ms, row.store_bytes);
  }
  std::printf("\nexpected shape: station SNMP traffic grows with agent "
              "count under one station and drops ~stations-fold when "
              "polling is distributed\n");

  // History store memory bound: the footprint depends on topology size
  // (series count x retention capacity), never on how long the monitor
  // has been running. Same system, three run lengths, one footprint.
  std::printf("\n=== History store footprint vs. run length "
              "(8x8 hosts, 1 station) ===\n");
  std::printf("%12s %14s\n", "sim seconds", "store bytes");
  std::size_t first_bytes = 0;
  bool flat = true;
  for (const double sim_s : {30.0, 60.0, 240.0}) {
    const Row row = run(8, 8, 1, /*full_telemetry=*/false, sim_s);
    std::printf("%12.0f %14zu\n", sim_s, row.store_bytes);
    if (first_bytes == 0) first_bytes = row.store_bytes;
    if (row.store_bytes != first_bytes) flat = false;
  }
  std::printf("store footprint flat in run length: %s\n",
              flat ? "yes" : "NO (memory bound violated!)");

  // Telemetry overhead: the same workload with and without the full
  // observability pipeline (shared registry, sim + per-link collectors,
  // span recording). Best-of-3 to damp scheduler noise.
  std::printf("\n=== Telemetry overhead (8x16 hosts, 4 stations) ===\n");
  double base_ms = 0, full_ms = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const double b = run(8, 16, 4, /*full_telemetry=*/false).wall_ms;
    const double f = run(8, 16, 4, /*full_telemetry=*/true).wall_ms;
    if (rep == 0 || b < base_ms) base_ms = b;
    if (rep == 0 || f < full_ms) full_ms = f;
  }
  std::printf("metrics off: %8.2f ms\nmetrics on:  %8.2f ms\n"
              "overhead:    %+7.2f%%\n",
              base_ms, full_ms, 100.0 * (full_ms - base_ms) / base_ms);
  return 0;
}
