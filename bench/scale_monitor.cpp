// Scale study: sharded pollers over a generated spine/leaf fabric.
//
// Generates hierarchical fabrics (src/topology/generator.h) at 100 / 1k /
// 10k interfaces, partitions the poll plan across N poller shards
// (interface-weighted), and polls each agent's whole ifTable as one
// batched GETBULK sweep over the zero-copy decode path. Reports the
// poll-round p95 from span telemetry and the bounded per-interface
// memory of the merged stats store, then gates on the tentpole numbers:
// near-linear shard scaling (>= 3.5x at 4 shards over the 10k fabric)
// and a flat per-interface footprint across fabric sizes.
//
// CLI:
//   scale_monitor [--interfaces N[,N...]] [--shards S[,S...]]
//                 [--seconds T] [--jsonl PATH] [--no-batch] [--no-gates]
//
// With no arguments runs the full 100/1k/10k x 1/2/4 study plus the
// telemetry-overhead section. CI runs `--interfaces 1000` and feeds the
// JSONL artifact to scripts/perf_check.py.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "monitor/distributed.h"
#include "netsim/services.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "snmp/deploy.h"
#include "topology/generator.h"

using namespace netqos;

namespace {

struct Row {
  std::size_t interfaces = 0;  // actual generated count
  std::size_t agents = 0;
  int shards = 1;
  std::uint64_t polls = 0;
  std::size_t rounds = 0;
  double poll_round_p95_s = 0;   // simulated seconds, span telemetry
  double rss_per_interface = 0;  // merged stats store bytes / interface
  double wall_ms = 0;
};

std::size_t count_interfaces(const topo::NetworkTopology& topo) {
  std::size_t n = 0;
  for (const auto& node : topo.nodes()) n += node.interfaces.size();
  return n;
}

double p95(std::vector<double> xs) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const std::size_t idx = std::min((xs.size() * 95) / 100, xs.size() - 1);
  return xs[idx];
}

Row run(std::size_t target_interfaces, int shards, double sim_seconds,
        bool batch, bool full_telemetry) {
  topo::FabricConfig fabric;
  fabric.target_interfaces = target_interfaces;
  const topo::NetworkTopology topo = topo::generate_fabric(fabric);

  sim::Simulator sim;
  auto net = sim::build_network(sim, topo);
  snmp::DeployOptions deploy;
  deploy.agent.hiccup_probability = 0.0;
  auto agents = snmp::deploy_agents(sim, *net, topo, deploy);

  obs::SpanRecorder spans;
  obs::MetricsRegistry registry;
  mon::DistributedConfig config;
  config.partition = mon::PartitionStrategy::kInterfaceWeighted;
  config.base.batch_table_polls = batch;
  config.base.spans = &spans;
  // 200 us launch stagger de-bursts each shard's request train; round
  // length then tracks the shard's agent count, which is what the
  // shard-scaling curve measures.
  config.base.scheduler.stagger = microseconds(200);
  if (full_telemetry) {
    sim.attach_metrics(registry);
    net->attach_metrics(registry);
    config.base.metrics = &registry;
  }

  // Stations on distinct leaves where possible.
  const std::size_t leaves = topo::fabric_leaf_count(fabric);
  std::vector<sim::Host*> stations;
  for (int s = 0; s < shards; ++s) {
    stations.push_back(net->find_host(
        "leaf" + std::to_string(s % leaves) + "h" +
        std::to_string(s / leaves)));
  }
  mon::DistributedMonitor dist(sim, topo, stations, config);
  dist.add_path("leaf0h2", "leaf" + std::to_string(leaves - 1) + "h2");

  const auto start = std::chrono::steady_clock::now();
  dist.start();
  sim.run_until(from_seconds(sim_seconds));
  const auto stop = std::chrono::steady_clock::now();

  Row row;
  row.interfaces = count_interfaces(topo);
  row.agents = agents.size();
  row.shards = shards;
  row.polls = dist.aggregate_stats().agent_polls;
  std::vector<double> round_s;
  for (const obs::Span& span : spans.spans()) {
    if (span.name == "poll_round" && span.finished()) {
      round_s.push_back(to_seconds(span.duration()));
    }
  }
  row.rounds = round_s.size();
  row.poll_round_p95_s = p95(std::move(round_s));
  row.rss_per_interface =
      static_cast<double>(dist.stats_db().history().footprint_bytes()) /
      static_cast<double>(row.interfaces);
  row.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return row;
}

std::vector<std::size_t> parse_list(const char* arg) {
  std::vector<std::size_t> out;
  std::string s(arg);
  for (std::size_t pos = 0; pos < s.size();) {
    const std::size_t comma = std::min(s.find(',', pos), s.size());
    out.push_back(std::strtoull(s.substr(pos, comma - pos).c_str(),
                                nullptr, 10));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> interface_targets = {100, 1000, 10000};
  std::vector<std::size_t> shard_counts = {1, 2, 4};
  double sim_seconds = 20;
  std::string jsonl_path = "scale_monitor.jsonl";
  bool batch = true;
  bool gates = true;
  bool full_study = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--interfaces") {
      interface_targets = parse_list(next());
      full_study = false;
    } else if (arg == "--shards") {
      shard_counts = parse_list(next());
    } else if (arg == "--seconds") {
      sim_seconds = std::strtod(next(), nullptr);
    } else if (arg == "--jsonl") {
      jsonl_path = next();
    } else if (arg == "--no-batch") {
      batch = false;
    } else if (arg == "--no-gates") {
      gates = false;
    } else {
      std::fprintf(stderr,
                   "usage: scale_monitor [--interfaces N[,N...]] "
                   "[--shards S[,S...]] [--seconds T] [--jsonl PATH] "
                   "[--no-batch] [--no-gates]\n");
      return 2;
    }
  }

  std::printf("=== Scale: sharded pollers over a generated fabric ===\n");
  std::printf("%.0f simulated seconds, 2 s polls, %s, one watched path\n\n",
              sim_seconds,
              batch ? "batched GETBULK table polls" : "per-varbind GETs");
  std::printf("%11s %8s %7s %9s %8s %15s %13s %10s\n", "interfaces",
              "agents", "shards", "polls", "rounds", "round p95 (s)",
              "store B/intf", "wall ms");

  std::vector<Row> rows;
  for (const std::size_t target : interface_targets) {
    for (const std::size_t shards : shard_counts) {
      const Row row = run(target, static_cast<int>(shards), sim_seconds,
                          batch, /*full_telemetry=*/false);
      std::printf("%11zu %8zu %7d %9llu %8zu %15.4f %13.1f %10.2f\n",
                  row.interfaces, row.agents, row.shards,
                  static_cast<unsigned long long>(row.polls), row.rounds,
                  row.poll_round_p95_s, row.rss_per_interface, row.wall_ms);
      rows.push_back(row);
    }
  }

  std::ofstream out(jsonl_path);
  for (const Row& row : rows) {
    out << "{\"bench\":\"scale_monitor\",\"interfaces\":" << row.interfaces
        << ",\"shards\":" << row.shards
        << ",\"poll_round_p95\":" << row.poll_round_p95_s
        << ",\"rss_per_interface\":" << row.rss_per_interface << "}\n";
  }
  std::printf("\nwrote %zu measurements to %s\n", rows.size(),
              jsonl_path.c_str());

  bool ok = true;
  if (gates) {
    // Shard scaling: at the largest fabric with both a 1- and a 4-shard
    // row, 4 shards must cut the round p95 at least 3.5x.
    const Row* one = nullptr;
    const Row* four = nullptr;
    for (const Row& row : rows) {
      if (row.shards == 1 && (one == nullptr ||
                              row.interfaces > one->interfaces)) {
        one = &row;
      }
      if (row.shards == 4 && (four == nullptr ||
                              row.interfaces > four->interfaces)) {
        four = &row;
      }
    }
    if (one != nullptr && four != nullptr &&
        one->interfaces == four->interfaces && four->poll_round_p95_s > 0) {
      const double speedup = one->poll_round_p95_s / four->poll_round_p95_s;
      std::printf("round p95 speedup at %zu interfaces, 1 -> 4 shards: "
                  "%.2fx\n", one->interfaces, speedup);
      if (one->interfaces >= 10000 && speedup < 3.5) {
        std::printf("FAIL: expected >= 3.5x shard speedup\n");
        ok = false;
      }
    }
    // Memory: per-interface store footprint must not grow with fabric
    // size (flat within 1.5x across the sweep).
    double lo = 0, hi = 0;
    for (const Row& row : rows) {
      if (row.shards != static_cast<int>(shard_counts.front())) continue;
      if (lo == 0 || row.rss_per_interface < lo) lo = row.rss_per_interface;
      if (row.rss_per_interface > hi) hi = row.rss_per_interface;
    }
    if (interface_targets.size() > 1) {
      std::printf("store bytes/interface across sizes: %.1f .. %.1f\n", lo,
                  hi);
      if (hi > 1.5 * lo) {
        std::printf("FAIL: per-interface memory grows with fabric size\n");
        ok = false;
      }
    }
  }

  if (full_study) {
    // Telemetry overhead: the same 1k-interface workload with and
    // without the full observability pipeline (shared registry with sim
    // and per-link collectors; spans are always on — they feed the p95).
    std::printf("\n=== Telemetry overhead (1k interfaces, 4 shards) ===\n");
    double base_ms = 0, full_ms = 0;
    for (int rep = 0; rep < 2; ++rep) {
      const double b =
          run(1000, 4, sim_seconds, batch, /*full_telemetry=*/false).wall_ms;
      const double f =
          run(1000, 4, sim_seconds, batch, /*full_telemetry=*/true).wall_ms;
      if (rep == 0 || b < base_ms) base_ms = b;
      if (rep == 0 || f < full_ms) full_ms = f;
    }
    std::printf("metrics off: %8.2f ms\nmetrics on:  %8.2f ms\n"
                "overhead:    %+7.2f%%\n",
                base_ms, full_ms, 100.0 * (full_ms - base_ms) / base_ms);
  }
  return ok ? 0 : 1;
}
