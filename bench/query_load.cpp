// Query service under poll load: throughput, latency, and zero poll-path
// regression.
//
// Two phases over the identical fig5-scale scenario (hub pulse loads,
// both hub paths monitored, spans on):
//
//   baseline  no query server, no clients — poll-round durations from
//             span telemetry are the reference.
//   loaded    the query server on L plus N concurrent closed-loop clients
//             spread across the switch hosts, each issuing windowed and
//             health queries with ~250 ms think time from t=20 s to
//             t=95 s. Every request and response crosses the simulated
//             network, competing with the SNMP poll train for L's link.
//
// Reports query throughput and RTT p95, and the poll-round p95 delta
// between phases — the acceptance bar is within 5% of baseline. Emits
// query_load.jsonl (one JSON object per phase plus a verdict line) for
// CI artifact upload.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "experiments/lirtss.h"
#include "query/client.h"
#include "query/engine.h"
#include "query/server.h"

using namespace netqos;

namespace {

constexpr SimTime kQueryStart = 20 * kSecond;
constexpr SimTime kQueryEnd = 95 * kSecond;
constexpr SimTime kRunEnd = 100 * kSecond;

struct PhaseResult {
  std::size_t clients = 0;
  std::uint64_t queries_ok = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t errors = 0;
  double qps = 0.0;            ///< completed queries per simulated second
  double query_mean_ms = 0.0;  ///< client-observed RTT
  double query_p95_ms = 0.0;
  double poll_mean_ms = 0.0;  ///< poll_round span durations
  double poll_p95_ms = 0.0;
  std::size_t poll_rounds = 0;
  query::QueryServerStats server;
};

double p95(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t index =
      (values.size() * 95 + 99) / 100 == 0 ? 0 : (values.size() * 95 + 99) / 100 - 1;
  return values[std::min(index, values.size() - 1)];
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

PhaseResult run_phase(std::size_t n_clients) {
  obs::MetricsRegistry registry;
  obs::SpanRecorder spans;
  exp::TestbedOptions options;
  options.metrics = &registry;
  options.spans = &spans;
  exp::LirtssTestbed bed(options);

  // The fig5 scenario: both hub paths watched, staggered pulse loads.
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(20), seconds(60),
                                        kilobytes_per_second(200)));
  bed.add_load("L", "N2",
               load::RateProfile::pulse(seconds(40), seconds(80),
                                        kilobytes_per_second(200)));
  bed.watch("S1", "N1").watch("S1", "N2");
  sim::Simulator& simulator = bed.simulator();

  std::unique_ptr<query::QueryEngine> engine;
  std::unique_ptr<query::QueryServer> server;

  struct ClientState {
    std::unique_ptr<query::QueryClient> client;
    std::size_t index = 0;
    std::uint64_t iteration = 0;
  };
  std::vector<std::unique_ptr<ClientState>> clients;
  std::vector<double> rtts_ms;
  PhaseResult result;
  result.clients = n_clients;

  std::function<void(ClientState&)> issue = [&](ClientState& state) {
    auto on_result = [&state, &issue, &simulator,
                      &result, &rtts_ms](query::QueryResult r) {
      if (r.ok()) {
        result.queries_ok++;
        rtts_ms.push_back(to_seconds(r.rtt) * 1000.0);
      } else if (r.status == query::QueryResult::Status::kTimeout) {
        result.timeouts++;
      } else {
        result.errors++;
      }
      state.iteration++;
      if (simulator.now() >= kQueryEnd) return;
      // Deterministic per-client think time around 250 ms, decorrelated
      // by client index and iteration so the fleet never locks step.
      const SimDuration think =
          (200 + ((state.index * 13 + state.iteration * 7) % 11) * 10) *
          kMillisecond;
      simulator.schedule_after(think, [&issue, &simulator, &state] {
        if (simulator.now() < kQueryEnd) issue(state);
      });
    };
    // 2:1 mix of windowed queries (rotating group) to health snapshots.
    if ((state.index + state.iteration) % 3 == 2) {
      state.client->health(on_result);
    } else {
      query::WindowRequest request;
      switch ((state.index + state.iteration) % 3) {
        case 0: request.group = query::GroupBy::kPath; break;
        case 1: request.group = query::GroupBy::kInterface; break;
        default: request.group = query::GroupBy::kHost; break;
      }
      request.begin = -seconds(20);  // trailing 20 s window
      state.client->window(request, on_result);
    }
  };

  if (n_clients > 0) {
    engine = std::make_unique<query::QueryEngine>(bed.monitor());
    server = std::make_unique<query::QueryServer>(simulator, bed.host("L"),
                                                  *engine);
    const char* homes[] = {"S2", "S3", "S4", "S5", "S6"};
    for (std::size_t i = 0; i < n_clients; ++i) {
      auto state = std::make_unique<ClientState>();
      state->index = i;
      state->client = std::make_unique<query::QueryClient>(
          simulator, bed.host(homes[i % 5]), bed.host("L").ip());
      ClientState* raw = state.get();
      clients.push_back(std::move(state));
      // Staggered starts: one new client every 37 ms.
      simulator.schedule_at(
          kQueryStart + static_cast<SimDuration>(i) * 37 * kMillisecond,
          [&issue, raw] { issue(*raw); });
    }
  }

  bed.run_until(kRunEnd);

  std::vector<double> round_ms;
  for (const obs::Span& span : spans.spans()) {
    if (span.name == "poll_round" && span.finished()) {
      round_ms.push_back(to_seconds(span.duration()) * 1000.0);
    }
  }
  result.poll_rounds = round_ms.size();
  result.poll_mean_ms = mean(round_ms);
  result.poll_p95_ms = p95(round_ms);
  result.query_mean_ms = mean(rtts_ms);
  result.query_p95_ms = p95(rtts_ms);
  result.qps = static_cast<double>(result.queries_ok) /
               to_seconds(kQueryEnd - kQueryStart);
  if (server != nullptr) result.server = server->stats();
  return result;
}

void print_phase(const char* label, const PhaseResult& r) {
  std::printf("%-9s %2zu clients: %5llu ok, %llu timeout, %llu error, "
              "%6.1f q/s, rtt mean %.2f ms p95 %.2f ms | poll_round "
              "mean %.2f ms p95 %.2f ms (%zu rounds)\n",
              label, r.clients,
              static_cast<unsigned long long>(r.queries_ok),
              static_cast<unsigned long long>(r.timeouts),
              static_cast<unsigned long long>(r.errors), r.qps,
              r.query_mean_ms, r.query_p95_ms, r.poll_mean_ms, r.poll_p95_ms,
              r.poll_rounds);
}

void write_phase_json(std::ostream& out, const char* label,
                      const PhaseResult& r) {
  out << "{\"phase\":\"" << label << "\",\"clients\":" << r.clients
      << ",\"queries_ok\":" << r.queries_ok << ",\"timeouts\":" << r.timeouts
      << ",\"errors\":" << r.errors << ",\"qps\":" << r.qps
      << ",\"query_mean_ms\":" << r.query_mean_ms
      << ",\"query_p95_ms\":" << r.query_p95_ms
      << ",\"poll_mean_ms\":" << r.poll_mean_ms
      << ",\"poll_p95_ms\":" << r.poll_p95_ms
      << ",\"poll_rounds\":" << r.poll_rounds
      << ",\"server_bytes_in\":" << r.server.bytes_received
      << ",\"server_bytes_out\":" << r.server.bytes_sent << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_clients = 32;
  if (argc > 1) n_clients = static_cast<std::size_t>(std::atoi(argv[1]));

  std::printf("=== query_load: %zu concurrent clients under fig5 poll "
              "load ===\n", n_clients);

  const PhaseResult baseline = run_phase(0);
  print_phase("baseline", baseline);
  const PhaseResult loaded = run_phase(n_clients);
  print_phase("loaded", loaded);

  const double regression_pct =
      baseline.poll_p95_ms > 0.0
          ? (loaded.poll_p95_ms - baseline.poll_p95_ms) /
                baseline.poll_p95_ms * 100.0
          : 0.0;
  const bool pass = regression_pct <= 5.0;
  std::printf("poll_round p95 delta: %+.2f%% (bar: +5%%) -> %s\n",
              regression_pct, pass ? "PASS" : "FAIL");
  std::printf("server: %llu window, %llu health, %llu bad, %llu B in, "
              "%llu B out\n",
              static_cast<unsigned long long>(loaded.server.window_requests),
              static_cast<unsigned long long>(loaded.server.health_requests),
              static_cast<unsigned long long>(loaded.server.bad_requests),
              static_cast<unsigned long long>(loaded.server.bytes_received),
              static_cast<unsigned long long>(loaded.server.bytes_sent));

  {
    std::ofstream out("query_load.jsonl");
    write_phase_json(out, "baseline", baseline);
    write_phase_json(out, "loaded", loaded);
    out << "{\"phase\":\"verdict\",\"poll_p95_regression_pct\":"
        << regression_pct << ",\"pass\":" << (pass ? "true" : "false")
        << "}\n";
  }
  std::printf("artifact: query_load.jsonl\n");
  return pass ? 0 : 1;
}
