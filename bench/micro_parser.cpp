// Microbenchmarks: specification-language lexing and parsing throughput.
#include <benchmark/benchmark.h>

#include <sstream>

#include "spec/lexer.h"
#include "spec/parser.h"
#include "spec/testbed.h"
#include "spec/writer.h"

using namespace netqos;
using namespace netqos::spec;

namespace {

/// Generates a syntactically valid spec with `hosts` hosts on one switch.
std::string make_spec(int hosts) {
  std::ostringstream out;
  out << "network generated {\n";
  out << "  switch sw { snmp on; management address 10.255.255.1; "
         "speed 100Mbps;\n";
  for (int i = 0; i < hosts; ++i) out << "    interface p" << i << ";\n";
  out << "  }\n";
  for (int i = 0; i < hosts; ++i) {
    out << "  host h" << i << " { os \"Linux\"; snmp on; interface eth0 { "
        << "speed 100Mbps; address 10." << (i / 65536) % 256 << "."
        << (i / 256) % 256 << "." << i % 256 + 1 << "; } }\n";
  }
  for (int i = 0; i < hosts; ++i) {
    out << "  connect h" << i << ".eth0 <-> sw.p" << i << ";\n";
  }
  out << "}\n";
  return out.str();
}

void BM_Lex(benchmark::State& state) {
  const std::string source = make_spec(static_cast<int>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lex(source));
    bytes += source.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Lex)->Arg(10)->Arg(100)->Arg(500);

void BM_Parse(benchmark::State& state) {
  const std::string source = make_spec(static_cast<int>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_spec(source));
    bytes += source.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Parse)->Arg(10)->Arg(100)->Arg(500);

void BM_ParseLirtss(benchmark::State& state) {
  const std::string source = lirtss_spec_text();
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_spec(source));
  }
}
BENCHMARK(BM_ParseLirtss);

void BM_WriteSpec(benchmark::State& state) {
  const SpecFile file = parse_spec(make_spec(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(write_spec(file));
  }
}
BENCHMARK(BM_WriteSpec)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
