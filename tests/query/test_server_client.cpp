#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "experiments/lirtss.h"
#include "monitor/modules/registry.h"
#include "monitor/qos.h"
#include "query/client.h"
#include "query/engine.h"
#include "query/server.h"

namespace netqos::query {
namespace {

// End-to-end over the simulated network: server on L, clients elsewhere,
// every frame crossing sw0 like real traffic.
class QueryServiceTest : public ::testing::Test {
 protected:
  QueryServiceTest() {
    bed_.watch("S1", "N1");
    engine_ = std::make_unique<QueryEngine>(bed_.monitor());
    server_ = std::make_unique<QueryServer>(bed_.simulator(),
                                            bed_.host("L"), *engine_);
  }

  exp::LirtssTestbed bed_;
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(QueryServiceTest, WindowQueryRoundTripsOverTheNetwork) {
  bed_.add_load("L", "N1",
                load::RateProfile::pulse(seconds(5), seconds(25),
                                         kilobytes_per_second(200)));
  QueryClient client(bed_.simulator(), bed_.host("S3"),
                     bed_.host("L").ip());

  std::vector<QueryResult> results;
  bed_.simulator().schedule_at(seconds(30), [&] {
    WindowRequest request;
    request.group = GroupBy::kPath;
    request.begin = -20 * kSecond;
    client.window(request, [&](QueryResult r) { results.push_back(r); });
  });
  bed_.run_until(seconds(32));

  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok());
  // The round trip crossed two links: RTT is positive simulated time.
  EXPECT_GT(results[0].rtt, 0);
  const WindowResponse& response = results[0].message.window_response;
  ASSERT_EQ(response.rows.size(), 2u);  // used + avail for the one path
  EXPECT_EQ(response.end, response.server_now);
  EXPECT_EQ(response.begin, response.server_now - 20 * kSecond);
  for (const WindowRow& row : response.rows) {
    EXPECT_GT(row.samples, 0u) << row.key;
  }

  const QueryServerStats stats = server_->stats();
  EXPECT_EQ(stats.window_requests, 1u);
  EXPECT_EQ(stats.bad_requests, 0u);
  EXPECT_GT(stats.bytes_received, 0u);
  EXPECT_GT(stats.bytes_sent, stats.bytes_received);  // rows outweigh asks
  EXPECT_EQ(client.stats().responses, 1u);
  EXPECT_EQ(client.stats().timeouts, 0u);
}

TEST_F(QueryServiceTest, HealthQueryReportsAgentsAndServerCounts) {
  QueryClient client(bed_.simulator(), bed_.host("S2"),
                     bed_.host("L").ip());
  std::vector<QueryResult> results;
  bed_.simulator().schedule_at(seconds(10), [&] {
    client.health([&](QueryResult r) { results.push_back(r); });
  });
  bed_.run_until(seconds(12));

  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok());
  const HealthResponse& health = results[0].message.health_response;
  EXPECT_EQ(health.agents.size(),
            bed_.monitor().scheduler().agents().size());
  ASSERT_EQ(health.paths.size(), 1u);
  EXPECT_EQ(server_->stats().health_requests, 1u);
}

TEST_F(QueryServiceTest, ModulesQueryReportsRegisteredModuleTelemetry) {
  // Register every registry module, drive traffic so they see samples,
  // then fetch their telemetry over the wire.
  for (const mon::ModuleSpec& spec : mon::available_modules()) {
    bed_.monitor().add_module(mon::make_module(spec.name));
  }
  bed_.add_load("L", "N1",
                load::RateProfile::pulse(seconds(2), seconds(18),
                                         kilobytes_per_second(150)));
  QueryClient client(bed_.simulator(), bed_.host("S2"),
                     bed_.host("L").ip());
  std::vector<QueryResult> results;
  bed_.simulator().schedule_at(seconds(20), [&] {
    client.modules([&](QueryResult r) { results.push_back(r); });
  });
  bed_.run_until(seconds(22));

  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok());
  const ModulesResponse& modules = results[0].message.modules_response;
  // Rows cover the built-in modules plus every registry module we added.
  ASSERT_GE(modules.modules.size(), mon::available_modules().size());
  for (const mon::ModuleSpec& spec : mon::available_modules()) {
    const auto it = std::find_if(
        modules.modules.begin(), modules.modules.end(),
        [&](const ModuleStatusRow& row) { return row.name == spec.name; });
    ASSERT_NE(it, modules.modules.end()) << spec.name;
    // Registry modules carry state, so they report a live footprint and
    // self-describing notes alongside their delivery counters.
    EXPECT_GT(it->footprint_bytes, 0u) << spec.name;
    EXPECT_FALSE(it->notes.empty()) << spec.name;
  }
  for (const ModuleStatusRow& row : modules.modules) {
    EXPECT_GT(row.samples, 0u) << row.name;
    EXPECT_EQ(row.errors, 0u) << row.name;
  }
  EXPECT_EQ(server_->stats().modules_requests, 1u);
}

TEST_F(QueryServiceTest, SubscriberReceivesViolationAndRecoveryEvents) {
  mon::ViolationDetector detector(bed_.monitor());
  detector.add_requirement("S1", "N1", kilobytes_per_second(500));
  server_->attach(detector);

  // 800 KB/s into the 10 Mbps hub segment leaves < 500 KB/s available.
  bed_.add_load("S2", "N1",
                load::RateProfile::pulse(seconds(8), seconds(30),
                                         kilobytes_per_second(800)));

  QueryClient client(bed_.simulator(), bed_.host("S3"),
                     bed_.host("L").ip());
  std::vector<Event> events;
  client.set_event_callback([&](const Event& e) { events.push_back(e); });
  bool subscribed = false;
  bed_.simulator().schedule_at(seconds(1), [&] {
    client.subscribe([&](QueryResult r) { subscribed = r.ok(); });
  });
  bed_.run_until(seconds(45));

  EXPECT_TRUE(subscribed);
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.front().kind, Event::Kind::kViolation);
  EXPECT_EQ(events.front().subject_a, "S1");
  EXPECT_EQ(events.front().subject_b, "N1");
  EXPECT_LT(events.front().available, kilobytes_per_second(500));
  EXPECT_DOUBLE_EQ(events.front().required, kilobytes_per_second(500));
  EXPECT_EQ(events.back().kind, Event::Kind::kRecovery);
  // Pushed events arrive with the violation time, after it happened.
  EXPECT_GT(events.front().time, seconds(8));
  EXPECT_EQ(server_->stats().events_published, events.size());
  EXPECT_EQ(client.stats().events_received, events.size());
  EXPECT_EQ(server_->subscriber_count(), 1u);
}

TEST_F(QueryServiceTest, UnsubscribeStopsTheStream) {
  mon::ViolationDetector detector(bed_.monitor());
  detector.add_requirement("S1", "N1", kilobytes_per_second(500));
  server_->attach(detector);
  bed_.add_load("S2", "N1",
                load::RateProfile::pulse(seconds(8), seconds(40),
                                         kilobytes_per_second(800)));

  QueryClient client(bed_.simulator(), bed_.host("S3"),
                     bed_.host("L").ip());
  std::size_t events = 0;
  client.set_event_callback([&](const Event&) { events++; });
  bed_.simulator().schedule_at(seconds(1), [&] {
    client.subscribe([](QueryResult) {});
  });
  // Unsubscribe after the violation but before the load ends: recovery
  // at ~40 s must not be delivered.
  bed_.simulator().schedule_at(seconds(20), [&] {
    client.unsubscribe([](QueryResult) {});
  });
  bed_.run_until(seconds(50));

  EXPECT_EQ(events, 1u);  // the violation only
  EXPECT_EQ(server_->subscriber_count(), 0u);
}

TEST_F(QueryServiceTest, SubscriberLimitRefusedWithError) {
  QueryServerConfig config;
  config.port = sim::kQueryPort + 1;
  config.max_subscribers = 1;
  QueryServer small(bed_.simulator(), bed_.host("L"), *engine_, config);

  QueryClientConfig client_config;
  client_config.server_port = config.port;
  QueryClient first(bed_.simulator(), bed_.host("S2"),
                    bed_.host("L").ip(), client_config);
  QueryClient second(bed_.simulator(), bed_.host("S3"),
                     bed_.host("L").ip(), client_config);

  std::vector<QueryResult> results;
  bed_.simulator().schedule_at(seconds(1), [&] {
    first.subscribe([&](QueryResult r) { results.push_back(r); });
  });
  bed_.simulator().schedule_at(seconds(2), [&] {
    second.subscribe([&](QueryResult r) { results.push_back(r); });
  });
  bed_.run_until(seconds(4));

  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status, QueryResult::Status::kError);
  EXPECT_EQ(results[1].error, "subscriber limit reached");
  EXPECT_EQ(small.subscriber_count(), 1u);
  EXPECT_EQ(small.stats().bad_requests, 1u);
  // Re-subscribing from the registered client is idempotent, not a slot.
  bed_.simulator().schedule_at(seconds(5), [&] {
    first.subscribe([&](QueryResult r) { results.push_back(r); });
  });
  bed_.run_until(seconds(7));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[2].ok());
  EXPECT_EQ(small.subscriber_count(), 1u);
}

TEST_F(QueryServiceTest, MalformedFrameCountsBadRequestAndReturnsError) {
  // Hand-roll a garbage datagram at the server's port.
  sim::Host& rogue = bed_.host("S4");
  const std::uint16_t src_port = rogue.udp().allocate_ephemeral_port();
  std::vector<Message> replies;
  rogue.udp().bind(src_port, [&](const sim::Ipv4Packet& packet) {
    try {
      replies.push_back(decode_message(packet.udp.payload));
    } catch (const std::exception&) {
    }
  });
  bed_.simulator().schedule_at(seconds(1), [&] {
    Bytes junk = {0x00, 0x00, 0x00, 0x02, 0xde, 0xad};
    rogue.udp().send(bed_.host("L").ip(), sim::kQueryPort, src_port,
                     std::move(junk));
  });
  bed_.run_until(seconds(3));

  EXPECT_EQ(server_->stats().bad_requests, 1u);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.type, MessageType::kError);
  EXPECT_FALSE(replies[0].error.empty());
}

TEST_F(QueryServiceTest, ClientTimesOutWhenServerGone) {
  server_.reset();  // unbind: requests fall on deaf ears
  QueryClientConfig config;
  config.timeout = 1 * kSecond;
  QueryClient client(bed_.simulator(), bed_.host("S3"),
                     bed_.host("L").ip(), config);
  std::vector<QueryResult> results;
  bed_.simulator().schedule_at(seconds(1), [&] {
    client.health([&](QueryResult r) { results.push_back(r); });
  });
  bed_.run_until(seconds(5));

  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, QueryResult::Status::kTimeout);
  EXPECT_EQ(client.stats().timeouts, 1u);
}

TEST_F(QueryServiceTest, PortConflictThrows) {
  EXPECT_THROW(QueryServer(bed_.simulator(), bed_.host("L"), *engine_),
               std::runtime_error);
}

TEST_F(QueryServiceTest, AgentEventsStreamQuarantineTransitions) {
  server_->attach_agent_events(bed_.monitor());
  QueryClient client(bed_.simulator(), bed_.host("S2"),
                     bed_.host("L").ip());
  std::vector<Event> events;
  client.set_event_callback([&](const Event& e) { events.push_back(e); });
  bed_.simulator().schedule_at(seconds(1), [&] {
    client.subscribe([](QueryResult) {});
  });
  bed_.run_until(seconds(5));
  // No failures in this run: drive the transition directly through the
  // monitor's quarantine callback path.
  Event quarantined;
  quarantined.kind = Event::Kind::kAgentQuarantined;
  quarantined.time = bed_.simulator().now();
  quarantined.subject_a = "N2";
  server_->publish(quarantined);
  bed_.run_until(seconds(7));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, Event::Kind::kAgentQuarantined);
  EXPECT_EQ(events[0].subject_a, "N2");
}

}  // namespace
}  // namespace netqos::query
