#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "experiments/lirtss.h"
#include "history/store.h"
#include "monitor/qos.h"
#include "query/engine.h"

namespace netqos::query {
namespace {

// One shared scenario for all engine tests: a pulse on the hub segment,
// both qos paths watched, 60 s of polling.
class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bed_.watch("S1", "N1").watch("S1", "S2");
    bed_.add_load("L", "N1",
                  load::RateProfile::pulse(seconds(10), seconds(40),
                                           kilobytes_per_second(200)));
    bed_.run_until(seconds(60));
  }

  exp::LirtssTestbed bed_;
};

TEST_F(QueryEngineTest, PathGroupReturnsUsedAndAvailRows) {
  QueryEngine engine(bed_.monitor());
  WindowRequest request;
  request.group = GroupBy::kPath;
  const WindowResponse response =
      engine.window(request, bed_.simulator().now());

  EXPECT_EQ(response.server_now, bed_.simulator().now());
  EXPECT_EQ(response.end, bed_.simulator().now());
  EXPECT_EQ(response.begin, 0);
  // Two paths x {used, avail}.
  ASSERT_EQ(response.rows.size(), 4u);
  // Rows are key-sorted.
  for (std::size_t i = 1; i < response.rows.size(); ++i) {
    EXPECT_LT(response.rows[i - 1].key, response.rows[i].key);
  }
  // Every row's aggregate matches a direct store query.
  for (const WindowRow& row : response.rows) {
    const hist::WindowSummary direct =
        bed_.monitor().history().query(row.key, response.begin, response.end);
    EXPECT_EQ(row.samples, direct.samples) << row.key;
    EXPECT_DOUBLE_EQ(row.mean, direct.mean) << row.key;
    EXPECT_DOUBLE_EQ(row.p95, direct.p95) << row.key;
  }
}

TEST_F(QueryEngineTest, SelectorFiltersRows) {
  QueryEngine engine(bed_.monitor());
  WindowRequest request;
  request.group = GroupBy::kPath;
  request.selector = "N1";
  const WindowResponse response =
      engine.window(request, bed_.simulator().now());
  ASSERT_EQ(response.rows.size(), 2u);
  for (const WindowRow& row : response.rows) {
    EXPECT_NE(row.key.find("N1"), std::string::npos) << row.key;
  }
}

TEST_F(QueryEngineTest, TrailingWindowResolvesAgainstNow) {
  QueryEngine engine(bed_.monitor());
  const SimTime now = bed_.simulator().now();
  WindowRequest request;
  request.group = GroupBy::kPath;
  request.begin = -20 * kSecond;  // trailing 20 s
  request.end = 0;                // server now
  const WindowResponse response = engine.window(request, now);
  EXPECT_EQ(response.end, now);
  EXPECT_EQ(response.begin, now - 20 * kSecond);
  // The trailing window holds fewer samples than the whole run.
  WindowRequest whole;
  whole.group = GroupBy::kPath;
  const WindowResponse all = engine.window(whole, now);
  ASSERT_FALSE(response.rows.empty());
  EXPECT_LT(response.rows[0].samples, all.rows[0].samples);
}

TEST_F(QueryEngineTest, InterfaceAndHostGroupsCoverPolledNodes) {
  QueryEngine engine(bed_.monitor());
  const SimTime now = bed_.simulator().now();

  WindowRequest by_if;
  by_if.group = GroupBy::kInterface;
  const WindowResponse interfaces = engine.window(by_if, now);
  ASSERT_FALSE(interfaces.rows.empty());
  for (const WindowRow& row : interfaces.rows) {
    EXPECT_TRUE(row.key.starts_with("if:")) << row.key;
  }

  WindowRequest by_host;
  by_host.group = GroupBy::kHost;
  const WindowResponse hosts = engine.window(by_host, now);
  ASSERT_FALSE(hosts.rows.empty());
  std::size_t if_samples = 0;
  std::size_t host_samples = 0;
  for (const WindowRow& row : interfaces.rows) if_samples += row.samples;
  for (const WindowRow& row : hosts.rows) {
    EXPECT_TRUE(row.key.starts_with("host:")) << row.key;
    host_samples += row.samples;
  }
  // Host rows merge interface rows: the sample totals must agree.
  EXPECT_EQ(host_samples, if_samples);

  // The switch is one host row even with eight interfaces.
  WindowRequest sw;
  sw.group = GroupBy::kHost;
  sw.selector = "sw0";
  const WindowResponse sw_rows = engine.window(sw, now);
  ASSERT_EQ(sw_rows.rows.size(), 1u);
  EXPECT_EQ(sw_rows.rows[0].key, "host:sw0");
}

TEST_F(QueryEngineTest, HealthSnapshotCoversAgentsAndPaths) {
  mon::ViolationDetector detector(bed_.monitor());
  detector.add_requirement("S1", "N1", kilobytes_per_second(500));
  QueryEngine engine(bed_.monitor());
  engine.set_violation_detector(&detector);

  const HealthResponse health = engine.health(bed_.simulator().now());
  EXPECT_EQ(health.server_now, bed_.simulator().now());
  EXPECT_EQ(health.agents.size(),
            bed_.monitor().scheduler().agents().size());
  ASSERT_EQ(health.paths.size(), 2u);
  for (const AgentHealthRow& agent : health.agents) {
    EXPECT_GT(agent.polls, 0u) << agent.node;
    EXPECT_EQ(agent.health, 0) << agent.node;  // healthy run
  }
  for (const PathHealthRow& path : health.paths) {
    EXPECT_GT(path.available, 0.0);
    EXPECT_TRUE(path.complete);
    EXPECT_FALSE(path.violated);  // 200 KB/s load leaves > 500 KB/s
    EXPECT_FALSE(path.warning);   // no predictive detector attached
  }
}

TEST_F(QueryEngineTest, HealthAppendsProviderProbeRows) {
  QueryEngine engine(bed_.monitor());
  // No provider wired: probe rows stay absent.
  EXPECT_TRUE(engine.health(bed_.simulator().now()).probes.empty());

  engine.set_probe_status_provider([] {
    ProbeStatusRow row;
    row.estimator = "periodic";
    row.from = "S1";
    row.to = "N1";
    row.convergence = 1;
    row.running = true;
    row.has_estimate = true;
    row.available = 950'000.0;
    row.estimates = 12;
    row.wire_bytes = 4'096;
    return std::vector<ProbeStatusRow>{row};
  });
  const HealthResponse health = engine.health(bed_.simulator().now());
  ASSERT_EQ(health.probes.size(), 1u);
  EXPECT_EQ(health.probes[0].estimator, "periodic");
  EXPECT_TRUE(health.probes[0].running);
  EXPECT_DOUBLE_EQ(health.probes[0].available, 950'000.0);
  // The provider rows ride along without perturbing the passive rows.
  EXPECT_EQ(health.paths.size(), 2u);
}

TEST(QueryEngine, EmptyMonitorYieldsEmptyRows) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "N1");
  // No run: nothing polled yet.
  QueryEngine engine(bed.monitor());
  WindowRequest request;
  request.group = GroupBy::kPath;
  EXPECT_TRUE(engine.window(request, 0).rows.empty());
  const HealthResponse health = engine.health(0);
  EXPECT_EQ(health.paths.size(), 1u);
  EXPECT_FALSE(health.paths[0].complete);
}

}  // namespace
}  // namespace netqos::query
