#include <gtest/gtest.h>

#include <vector>

#include "common/byte_buffer.h"
#include "query/proto.h"

namespace netqos::query {
namespace {

Message round_trip(const Message& in) { return decode_message(encode_message(in)); }

TEST(QueryProto, WindowRequestRoundTrip) {
  Message m;
  m.header.type = MessageType::kWindowRequest;
  m.header.request_id = 42;
  m.header.sent_at = 17 * kSecond;
  m.window_request.group = GroupBy::kHost;
  m.window_request.selector = "S1";
  m.window_request.begin = -30 * kSecond;
  m.window_request.end = 0;

  const Message out = round_trip(m);
  EXPECT_EQ(out.header.type, MessageType::kWindowRequest);
  EXPECT_EQ(out.header.request_id, 42u);
  EXPECT_EQ(out.header.sent_at, 17 * kSecond);
  EXPECT_EQ(out.window_request.group, GroupBy::kHost);
  EXPECT_EQ(out.window_request.selector, "S1");
  EXPECT_EQ(out.window_request.begin, -30 * kSecond);
  EXPECT_EQ(out.window_request.end, 0);
}

TEST(QueryProto, WindowResponseRoundTrip) {
  Message m;
  m.header.type = MessageType::kWindowResponse;
  m.header.request_id = 7;
  m.window_response.server_now = 60 * kSecond;
  m.window_response.begin = 30 * kSecond;
  m.window_response.end = 60 * kSecond;
  WindowRow row;
  row.key = "path:N1|S1:avail";
  row.samples = 15;
  row.min = 1.5;
  row.mean = 2.25;
  row.max = 3.5;
  row.p95 = 3.25;
  row.resolution = 10 * kSecond;
  row.complete = true;
  m.window_response.rows.push_back(row);

  const Message out = round_trip(m);
  ASSERT_EQ(out.window_response.rows.size(), 1u);
  const WindowRow& r = out.window_response.rows[0];
  EXPECT_EQ(r.key, "path:N1|S1:avail");
  EXPECT_EQ(r.samples, 15u);
  EXPECT_DOUBLE_EQ(r.min, 1.5);
  EXPECT_DOUBLE_EQ(r.mean, 2.25);
  EXPECT_DOUBLE_EQ(r.max, 3.5);
  EXPECT_DOUBLE_EQ(r.p95, 3.25);
  EXPECT_EQ(r.resolution, 10 * kSecond);
  EXPECT_TRUE(r.complete);
}

TEST(QueryProto, HealthResponseRoundTrip) {
  Message m;
  m.header.type = MessageType::kHealthResponse;
  m.health_response.server_now = 5 * kSecond;
  AgentHealthRow agent;
  agent.node = "sw0";
  agent.health = 2;
  agent.consecutive_failures = 3;
  agent.polls = 100;
  agent.failures = 9;
  agent.quarantines = 1;
  agent.next_due = 12 * kSecond;
  m.health_response.agents.push_back(agent);
  PathHealthRow path;
  path.from = "S1";
  path.to = "N1";
  path.used = 200'000.0;
  path.available = 1'050'000.0;
  path.freshness = 1;
  path.max_sample_age = 2 * kSecond;
  path.complete = true;
  path.violated = true;
  m.health_response.paths.push_back(path);

  const Message out = round_trip(m);
  ASSERT_EQ(out.health_response.agents.size(), 1u);
  ASSERT_EQ(out.health_response.paths.size(), 1u);
  EXPECT_EQ(out.health_response.agents[0].node, "sw0");
  EXPECT_EQ(out.health_response.agents[0].health, 2);
  EXPECT_EQ(out.health_response.agents[0].quarantines, 1u);
  EXPECT_EQ(out.health_response.paths[0].from, "S1");
  EXPECT_DOUBLE_EQ(out.health_response.paths[0].available, 1'050'000.0);
  EXPECT_TRUE(out.health_response.paths[0].violated);
  EXPECT_FALSE(out.health_response.paths[0].warning);
}

TEST(QueryProto, HealthProbeStatusRoundTrip) {
  Message m;
  m.header.type = MessageType::kHealthResponse;
  m.health_response.server_now = 45 * kSecond;
  ProbeStatusRow probe;
  probe.estimator = "pair";
  probe.from = "S1";
  probe.to = "N1";
  probe.convergence = 2;
  probe.running = true;
  probe.has_estimate = true;
  probe.available = 1'210'000.0;
  probe.estimates = 37;
  probe.wire_bytes = 123'456;
  m.health_response.probes.push_back(probe);
  ProbeStatusRow stopped;
  stopped.estimator = "train";
  stopped.from = "S1";
  stopped.to = "S2";
  m.health_response.probes.push_back(stopped);

  const Message out = round_trip(m);
  ASSERT_EQ(out.health_response.probes.size(), 2u);
  const ProbeStatusRow& r = out.health_response.probes[0];
  EXPECT_EQ(r.estimator, "pair");
  EXPECT_EQ(r.from, "S1");
  EXPECT_EQ(r.to, "N1");
  EXPECT_EQ(r.convergence, 2);
  EXPECT_TRUE(r.running);
  EXPECT_TRUE(r.has_estimate);
  EXPECT_DOUBLE_EQ(r.available, 1'210'000.0);
  EXPECT_EQ(r.estimates, 37u);
  EXPECT_EQ(r.wire_bytes, 123'456u);
  const ProbeStatusRow& s = out.health_response.probes[1];
  EXPECT_EQ(s.estimator, "train");
  EXPECT_FALSE(s.running);
  EXPECT_FALSE(s.has_estimate);

  // A probe-less health response (no provider wired server-side) still
  // round-trips as before.
  Message bare;
  bare.header.type = MessageType::kHealthResponse;
  EXPECT_TRUE(round_trip(bare).health_response.probes.empty());
}

TEST(QueryProto, ModulesResponseRoundTrip) {
  Message m;
  m.header.type = MessageType::kModulesResponse;
  m.header.request_id = 3;
  m.modules_response.server_now = 90 * kSecond;
  ModuleStatusRow row;
  row.name = "top-talkers";
  row.samples = 12'345;
  row.errors = 2;
  row.footprint_bytes = 4096;
  row.notes.emplace_back("interfaces", "18");
  row.notes.emplace_back("top1", "N1/le0 12.6 MB");
  m.modules_response.modules.push_back(row);
  ModuleStatusRow bare;
  bare.name = "ewma-anomaly";
  m.modules_response.modules.push_back(bare);

  const Message out = round_trip(m);
  EXPECT_EQ(out.header.type, MessageType::kModulesResponse);
  EXPECT_EQ(out.modules_response.server_now, 90 * kSecond);
  ASSERT_EQ(out.modules_response.modules.size(), 2u);
  const ModuleStatusRow& r = out.modules_response.modules[0];
  EXPECT_EQ(r.name, "top-talkers");
  EXPECT_EQ(r.samples, 12'345u);
  EXPECT_EQ(r.errors, 2u);
  EXPECT_EQ(r.footprint_bytes, 4096u);
  ASSERT_EQ(r.notes.size(), 2u);
  EXPECT_EQ(r.notes[0].first, "interfaces");
  EXPECT_EQ(r.notes[1].second, "N1/le0 12.6 MB");
  EXPECT_EQ(out.modules_response.modules[1].name, "ewma-anomaly");
  EXPECT_TRUE(out.modules_response.modules[1].notes.empty());
}

TEST(QueryProto, EventAndHeaderOnlyRoundTrip) {
  Message event;
  event.header.type = MessageType::kEvent;
  event.event.kind = Event::Kind::kEarlyWarning;
  event.event.time = 33 * kSecond;
  event.event.subject_a = "S1";
  event.event.subject_b = "N1";
  event.event.available = 600'000.0;
  event.event.required = 500'000.0;
  const Message out = round_trip(event);
  EXPECT_EQ(out.event.kind, Event::Kind::kEarlyWarning);
  EXPECT_EQ(out.event.subject_b, "N1");
  EXPECT_DOUBLE_EQ(out.event.required, 500'000.0);

  for (MessageType type :
       {MessageType::kHealthRequest, MessageType::kSubscribe,
        MessageType::kSubscribeAck, MessageType::kUnsubscribe,
        MessageType::kModulesRequest}) {
    Message m;
    m.header.type = type;
    m.header.request_id = 9;
    EXPECT_EQ(round_trip(m).header.type, type) << message_type_name(type);
  }

  Message error;
  error.header.type = MessageType::kError;
  error.error = "subscriber limit reached";
  EXPECT_EQ(round_trip(error).error, "subscriber limit reached");
}

TEST(QueryProto, RejectsMalformedFrames) {
  Message m;
  m.header.type = MessageType::kHealthRequest;
  const Bytes good = encode_message(m);

  // Truncated: every prefix of a valid frame must throw, never crash.
  for (std::size_t n = 0; n < good.size(); ++n) {
    const std::span<const std::uint8_t> prefix(good.data(), n);
    EXPECT_THROW(decode_message(prefix), std::exception) << "prefix " << n;
  }

  // Length field disagreeing with the payload.
  Bytes bad_length = good;
  bad_length[3] += 1;
  EXPECT_THROW(decode_message(bad_length), ProtocolError);

  // Bad magic.
  Bytes bad_magic = good;
  bad_magic[4] = 0x00;
  EXPECT_THROW(decode_message(bad_magic), ProtocolError);

  // Unsupported version.
  Bytes bad_version = good;
  bad_version[6] = kProtocolVersion + 1;
  EXPECT_THROW(decode_message(bad_version), ProtocolError);

  // Unknown message type.
  Bytes bad_type = good;
  bad_type[7] = 200;
  EXPECT_THROW(decode_message(bad_type), ProtocolError);

  // Trailing garbage after a complete body (length covers it, so the
  // trailing check fires).
  Bytes trailing = good;
  trailing.push_back(0xab);
  trailing[3] += 1;
  EXPECT_THROW(decode_message(trailing), ProtocolError);

  // Out-of-range enum in a window request body.
  Message w;
  w.header.type = MessageType::kWindowRequest;
  Bytes bad_group = encode_message(w);
  bad_group[20] = 99;  // group byte: 4 length prefix + 16 header
  EXPECT_THROW(decode_message(bad_group), ProtocolError);
}

TEST(QueryProto, RejectsOversizedString) {
  Message m;
  m.header.type = MessageType::kError;
  m.error.assign(0x10000, 'x');
  EXPECT_THROW(encode_message(m), ProtocolError);
}

}  // namespace
}  // namespace netqos::query
