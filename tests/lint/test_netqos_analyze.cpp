// Golden-fixture tests for tools/netqos_analyze, the C++ static-analysis
// engine. Three layers of coverage:
//   1. R1-R5 parity: the engine reproduces the Python linter's verdict on
//      every legacy fixture (the full-corpus diff lives in scripts/lint.sh;
//      these tests pin the per-fixture counts).
//   2. R6-R8 flow rules: each bad fixture is flagged, each good fixture is
//      clean, and the PR 3 trap-listener crash reduction is rejected.
//   3. Report plumbing: baseline round-trip, SARIF output, result cache,
//      and the shipped src/ tree staying clean under the committed
//      zero-entry baseline.
#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef NETQOS_SOURCE_DIR
#define NETQOS_SOURCE_DIR ""
#endif
#ifndef NETQOS_ANALYZE_BIN
#define NETQOS_ANALYZE_BIN "netqos_analyze"
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;
};

std::string source_dir() { return NETQOS_SOURCE_DIR; }

std::string fixture(const std::string& name) {
  return source_dir() + "/tools/netqos_lint/fixtures/" + name;
}

/// Runs netqos_analyze with `args` appended; captures stdout+stderr.
RunResult run_analyze(const std::string& args) {
  const std::string command = std::string(NETQOS_ANALYZE_BIN) + " --root " +
                              source_dir() + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

int count_rule(const std::string& output, const std::string& rule) {
  int count = 0;
  const std::string needle = "[" + rule + "]";
  for (std::size_t pos = output.find(needle); pos != std::string::npos;
       pos = output.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

void expect_flags(const std::string& fixture_name, const std::string& rule,
                  int expected_count) {
  const RunResult result = run_analyze(fixture(fixture_name));
  EXPECT_EQ(result.exit_code, 1)
      << fixture_name << " should fail analysis\n" << result.output;
  EXPECT_GE(count_rule(result.output, rule), expected_count)
      << fixture_name << " should raise at least " << expected_count << " ["
      << rule << "] finding(s)\n" << result.output;
}

void expect_clean(const std::string& fixture_name) {
  const RunResult result = run_analyze(fixture(fixture_name));
  EXPECT_EQ(result.exit_code, 0)
      << fixture_name << " should pass analysis\n" << result.output;
}

// --- R1-R5 parity: same verdicts as tests/lint/test_netqos_lint.cpp ------

TEST(NetqosAnalyze, R1DecodeSafetyMatchesPythonVerdicts) {
  expect_flags("r1_bad.cpp", "R1", 1);
  expect_clean("r1_good.cpp");
  expect_flags("r1_view_bad.cpp", "R1", 1);
  expect_clean("r1_view_good.cpp");
}

TEST(NetqosAnalyze, R2OidMonotonicityMatchesPythonVerdicts) {
  expect_flags("r2_bad.cpp", "R2", 2);
  expect_clean("r2_good.cpp");
}

TEST(NetqosAnalyze, R3UnitsDisciplineMatchesPythonVerdicts) {
  expect_flags("r3_bad.cpp", "R3", 4);
  expect_clean("r3_good.cpp");
}

TEST(NetqosAnalyze, R3ProbeRateMathMatchesPythonVerdicts) {
  expect_flags("r3_probe_bad.cpp", "R3", 4);
  expect_clean("r3_probe_good.cpp");
}

TEST(NetqosAnalyze, R4SimTimePurityMatchesPythonVerdicts) {
  expect_flags("r4_bad.cpp", "R4", 4);
  expect_flags("r4_query_bad.cpp", "R4", 4);
  expect_clean("r4_good.cpp");
  expect_clean("r4_query_good.cpp");
}

TEST(NetqosAnalyze, R5ModulePurityMatchesPythonVerdicts) {
  expect_flags("r5_bad.cpp", "R5", 4);
  expect_clean("r5_good.cpp");
}

TEST(NetqosAnalyze, RegressionPr3UnderflowStillFlaggedByR1Port) {
  const RunResult result = run_analyze(fixture("regression_pr3_underflow.cpp"));
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("[R1]"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("BufferUnderflow"), std::string::npos)
      << result.output;
}

TEST(NetqosAnalyze, InlineAllowCommentsSuppressFindings) {
  expect_clean("suppression.cpp");
}

// --- R6: taint/bounds on wire-derived values -----------------------------

TEST(NetqosAnalyze, R6FlagsUncheckedWireCountsAndIndexes) {
  // Unchecked reserve() from a get_u16 count + unchecked subscript.
  expect_flags("r6_bad.cpp", "R6", 2);
}

TEST(NetqosAnalyze, R6AcceptsBoundedAndClampedCounts) {
  expect_clean("r6_good.cpp");
}

// The PR 3 crash, recast as the missing-bounds-check half of the bug:
// the trap listener sized and indexed its scratch table straight from
// wire-derived values. The R1 regression fixture pins the missing
// exception handlers; this pins the missing bounds check.
TEST(NetqosAnalyze, RegressionPr3TrapCountReachesResizeUnchecked) {
  const RunResult result = run_analyze(fixture("r6_trap_bad.cpp"));
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_GE(count_rule(result.output, "R6"), 2) << result.output;
  EXPECT_NE(result.output.find("varbind_count"), std::string::npos)
      << result.output;
}

// --- R7: wire-enum switch exhaustiveness ---------------------------------

TEST(NetqosAnalyze, R7FlagsNonExhaustiveWireSwitchAndSilentTagDefault) {
  const RunResult result = run_analyze(fixture("r7_bad.cpp"));
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_GE(count_rule(result.output, "R7"), 2) << result.output;
  // The message names the uncovered enumerator.
  EXPECT_NE(result.output.find("kBye"), std::string::npos) << result.output;
}

TEST(NetqosAnalyze, R7AcceptsExhaustiveAndErrorDefaultSwitches) {
  expect_clean("r7_good.cpp");
}

// --- R8: hot-path exception isolation ------------------------------------

TEST(NetqosAnalyze, R8FlagsUnguardedHookDeliveryAndHotPathAllocation) {
  const RunResult result = run_analyze(fixture("r8_bad.cpp"));
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_GE(count_rule(result.output, "R8"), 3) << result.output;
  EXPECT_NE(result.output.find("on_interface_sample"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("push_back"), std::string::npos)
      << result.output;
}

TEST(NetqosAnalyze, R8AcceptsGuardedDeliveryAndThrowPathAllocation) {
  expect_clean("r8_good.cpp");
}

// --- Report plumbing ------------------------------------------------------

TEST(NetqosAnalyze, BaselineRoundTripSuppressesKnownFindings) {
  const std::string baseline =
      testing::TempDir() + "/netqos_analyze_baseline_test.txt";
  const RunResult update = run_analyze("--baseline " + baseline +
                                       " --update-baseline " +
                                       fixture("r6_bad.cpp"));
  ASSERT_EQ(update.exit_code, 0) << update.output;

  const RunResult gated =
      run_analyze("--baseline " + baseline + " " + fixture("r6_bad.cpp"));
  EXPECT_EQ(gated.exit_code, 0)
      << "baselined findings must not fail analysis\n" << gated.output;
  EXPECT_NE(gated.output.find("baselined"), std::string::npos) << gated.output;
  std::remove(baseline.c_str());
}

TEST(NetqosAnalyze, BaselineKeysAreContentHashesNotLineNumbers) {
  const std::string baseline =
      testing::TempDir() + "/netqos_analyze_hash_test.txt";
  const RunResult update = run_analyze("--baseline " + baseline +
                                       " --update-baseline " +
                                       fixture("r6_bad.cpp"));
  ASSERT_EQ(update.exit_code, 0) << update.output;
  std::ifstream in(baseline);
  std::string line;
  bool saw_entry = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    saw_entry = true;
    // "R6 <16 hex chars> path normalized-source" — no line numbers.
    ASSERT_GE(line.size(), 20u) << line;
    EXPECT_EQ(line.substr(0, 3), "R6 ") << line;
    for (int i = 3; i < 19; ++i) {
      EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(line[i]))) << line;
    }
  }
  EXPECT_TRUE(saw_entry);
  std::remove(baseline.c_str());
}

TEST(NetqosAnalyze, SarifOutputCarriesRulesResultsAndFingerprints) {
  const std::string sarif = testing::TempDir() + "/netqos_analyze_test.sarif";
  const RunResult result =
      run_analyze("--sarif " + sarif + " " + fixture("r7_bad.cpp"));
  EXPECT_EQ(result.exit_code, 1) << result.output;
  std::ifstream in(sarif);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(doc.find("netqos-analyze"), std::string::npos);
  EXPECT_NE(doc.find("\"ruleId\": \"R7\""), std::string::npos);
  EXPECT_NE(doc.find("netqosFindingHash/v1"), std::string::npos);
  EXPECT_NE(doc.find("r7_bad.cpp"), std::string::npos);
  std::remove(sarif.c_str());
}

TEST(NetqosAnalyze, ResultCacheHitsOnSecondRun) {
  const std::string cache = testing::TempDir() + "/netqos_analyze_test.cache";
  std::remove(cache.c_str());
  const std::string args = "--cache " + cache + " " + fixture("r6_bad.cpp") +
                           " " + fixture("r7_bad.cpp");
  const RunResult cold = run_analyze(args);
  EXPECT_EQ(cold.exit_code, 1) << cold.output;
  EXPECT_NE(cold.output.find("2 miss(es)"), std::string::npos) << cold.output;

  const RunResult warm = run_analyze(args);
  EXPECT_EQ(warm.exit_code, 1) << warm.output;
  EXPECT_NE(warm.output.find("cache 2 hit(s)"), std::string::npos)
      << warm.output;
  // Cached findings must be byte-identical to fresh ones. The cache
  // status line on stderr legitimately differs (miss vs hit counts), so
  // strip it before comparing.
  const auto strip_cache_line = [](const std::string& text) {
    std::string out;
    std::stringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.find("netqos-analyze: cache ") == 0) continue;
      out += line;
      out += '\n';
    }
    return out;
  };
  EXPECT_EQ(strip_cache_line(cold.output), strip_cache_line(warm.output));
  std::remove(cache.c_str());
}

// The acceptance gate: the shipped tree is clean under all eight rules
// against the committed zero-entry baseline.
TEST(NetqosAnalyze, ShippedSourceTreeIsCleanUnderAllRules) {
  const RunResult result =
      run_analyze("--baseline " + source_dir() +
                  "/tools/netqos_lint/analyze_baseline.txt " + source_dir() +
                  "/src");
  EXPECT_EQ(result.exit_code, 0)
      << "src/ has new analysis findings:\n" << result.output;
}

TEST(NetqosAnalyze, ListRulesDocumentsAllEight) {
  const RunResult result = run_analyze("--list-rules");
  EXPECT_EQ(result.exit_code, 0);
  for (const char* rule :
       {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"}) {
    EXPECT_NE(result.output.find(rule), std::string::npos) << result.output;
  }
}

}  // namespace
