// Golden-fixture tests for tools/netqos_lint: each rule must flag its
// known-bad fixture and stay silent on the known-good one, the PR 3
// BufferUnderflow escape must be rejected as a regression fixture, both
// suppression mechanisms must work, and the shipped src/ tree itself must
// be clean against the committed baseline (the CI gate in test form).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

#ifndef NETQOS_SOURCE_DIR
#define NETQOS_SOURCE_DIR ""
#endif
#ifndef NETQOS_PYTHON
#define NETQOS_PYTHON "python3"
#endif

struct LintResult {
  int exit_code = -1;
  std::string output;
};

std::string source_dir() { return NETQOS_SOURCE_DIR; }

std::string fixture(const std::string& name) {
  return source_dir() + "/tools/netqos_lint/fixtures/" + name;
}

/// Runs netqos_lint.py with `args` appended; captures stdout+stderr.
LintResult run_lint(const std::string& args) {
  const std::string command = std::string(NETQOS_PYTHON) + " " +
                              source_dir() +
                              "/tools/netqos_lint/netqos_lint.py --root " +
                              source_dir() + " " + args + " 2>&1";
  LintResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

void expect_flags(const std::string& fixture_name, const std::string& rule,
                  int expected_count) {
  const LintResult result = run_lint(fixture(fixture_name));
  EXPECT_EQ(result.exit_code, 1)
      << fixture_name << " should fail lint\n" << result.output;
  int count = 0;
  const std::string needle = "[" + rule + "]";
  for (std::size_t pos = result.output.find(needle);
       pos != std::string::npos;
       pos = result.output.find(needle, pos + needle.size())) {
    ++count;
  }
  EXPECT_GE(count, expected_count)
      << fixture_name << " should raise at least " << expected_count << " "
      << needle << " finding(s)\n" << result.output;
}

void expect_clean(const std::string& fixture_name) {
  const LintResult result = run_lint(fixture(fixture_name));
  EXPECT_EQ(result.exit_code, 0)
      << fixture_name << " should pass lint\n" << result.output;
}

TEST(NetqosLint, R1DecodeSafetyFlagsBadFixture) {
  expect_flags("r1_bad.cpp", "R1", 1);
}

TEST(NetqosLint, R1DecodeSafetyAcceptsGoodFixture) {
  expect_clean("r1_good.cpp");
}

// Zero-copy flavor: the span-based BerReader / decode_message_head path
// throws the same exception pair, so R1 must police it identically.
TEST(NetqosLint, R1DecodeSafetyFlagsBadViewFixture) {
  expect_flags("r1_view_bad.cpp", "R1", 1);
}

TEST(NetqosLint, R1DecodeSafetyAcceptsGoodViewFixture) {
  expect_clean("r1_view_good.cpp");
}

TEST(NetqosLint, R2OidMonotonicityFlagsBadFixture) {
  // Both the synchronous chain and the async walk step must be caught.
  expect_flags("r2_bad.cpp", "R2", 2);
}

TEST(NetqosLint, R2OidMonotonicityAcceptsGoodFixture) {
  expect_clean("r2_good.cpp");
}

TEST(NetqosLint, R3UnitsDisciplineFlagsBadFixture) {
  // Mbps factor, two bit/byte conversions, one naked counter subtraction.
  expect_flags("r3_bad.cpp", "R3", 4);
}

TEST(NetqosLint, R3UnitsDisciplineAcceptsGoodFixture) {
  expect_clean("r3_good.cpp");
}

TEST(NetqosLint, R3ProbeRateMathFlagsBadFixture) {
  // Raw ns->s power-of-ten, naked *8, and a mixed /8.0*1e6 line that
  // trips both the factor-8 and decimal-multiplier checks.
  expect_flags("r3_probe_bad.cpp", "R3", 4);
}

TEST(NetqosLint, R3ProbeRateMathAcceptsGoodFixture) {
  expect_clean("r3_probe_good.cpp");
}

TEST(NetqosLint, R4SimTimePurityFlagsBadFixture) {
  expect_flags("r4_bad.cpp", "R4", 4);
}

TEST(NetqosLint, R4QueryServiceFlagsWallClockAndEntropy) {
  // Query-server flavor: wall-clock response stamps, steady_clock
  // latency, rand() jitter, random_device tokens.
  expect_flags("r4_query_bad.cpp", "R4", 4);
}

TEST(NetqosLint, R4QueryServiceAcceptsSimTimeLatency) {
  // The idiom src/query actually uses: latency = sim now - header
  // sent_at, deterministic think-time, seeded substream jitter.
  expect_clean("r4_query_good.cpp");
}

TEST(NetqosLint, R4SimTimePurityAcceptsGoodFixture) {
  expect_clean("r4_good.cpp");
}

TEST(NetqosLint, R5ModulePurityFlagsBadFixture) {
  // SNMP include, SnmpClient member + poll call, mutable StatsDb handle,
  // and a StatsDb mutator call must all be caught.
  expect_flags("r5_bad.cpp", "R5", 4);
}

TEST(NetqosLint, R5ModulePurityAcceptsGoodFixture) {
  expect_clean("r5_good.cpp");
}

// The rule is content-scoped too: any Module subclass outside the core
// is a measurement module, wherever the file lives. The shipped module
// directory itself must be clean (also covered by the src-tree gate,
// but this keeps the failure message precise).
TEST(NetqosLint, R5ShippedModuleDirectoryIsClean) {
  const LintResult result =
      run_lint(source_dir() + "/src/monitor/modules");
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

// The PR 3 bug: TrapListener::handle caught BerError but not
// BufferUnderflow, so a truncated trap datagram crashed the listener.
// The fixture preserves that handler's exact shape; R1 must reject it.
TEST(NetqosLint, RegressionPr3BufferUnderflowEscapeIsFlagged) {
  const LintResult result = run_lint(fixture("regression_pr3_underflow.cpp"));
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("[R1]"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("BufferUnderflow"), std::string::npos)
      << result.output;
}

TEST(NetqosLint, InlineAllowCommentsSuppressFindings) {
  expect_clean("suppression.cpp");
}

TEST(NetqosLint, BaselineRoundTripSuppressesKnownFindings) {
  const std::string baseline =
      testing::TempDir() + "/netqos_lint_baseline_test.txt";
  const LintResult update = run_lint("--baseline " + baseline +
                                     " --update-baseline " +
                                     fixture("r3_bad.cpp"));
  ASSERT_EQ(update.exit_code, 0) << update.output;

  const LintResult gated =
      run_lint("--baseline " + baseline + " " + fixture("r3_bad.cpp"));
  EXPECT_EQ(gated.exit_code, 0)
      << "baselined findings must not fail lint\n" << gated.output;
  EXPECT_NE(gated.output.find("baselined"), std::string::npos)
      << gated.output;
  std::remove(baseline.c_str());
}

// The acceptance gate: the shipped tree is clean under the committed
// (zero-entry) baseline. Any new violation of R1-R4 fails tier1 here,
// not just the CI lint job.
TEST(NetqosLint, ShippedSourceTreeIsClean) {
  const LintResult result =
      run_lint("--baseline " + source_dir() +
               "/tools/netqos_lint/baseline.txt " + source_dir() + "/src");
  EXPECT_EQ(result.exit_code, 0)
      << "src/ has new lint findings:\n" << result.output;
}

TEST(NetqosLint, ListRulesDocumentsAllFour) {
  const LintResult result = run_lint("--list-rules");
  EXPECT_EQ(result.exit_code, 0);
  for (const char* rule : {"R1", "R2", "R3", "R4"}) {
    EXPECT_NE(result.output.find(rule), std::string::npos) << result.output;
  }
}

}  // namespace
