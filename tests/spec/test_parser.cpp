#include "spec/parser.h"

#include <gtest/gtest.h>

#include "spec/testbed.h"

namespace netqos::spec {
namespace {

const char* kMinimal = R"(
network tiny {
  host A { snmp on; interface eth0 { speed 100Mbps; address 10.0.0.1; } }
  host B { interface eth0 { speed 10Mbps; address 10.0.0.2; } }
  connect A.eth0 <-> B.eth0;
}
)";

TEST(Parser, ParsesMinimalNetwork) {
  const SpecFile file = parse_spec(kMinimal);
  EXPECT_EQ(file.network_name, "tiny");
  ASSERT_EQ(file.topology.nodes().size(), 2u);
  ASSERT_EQ(file.topology.connections().size(), 1u);
  EXPECT_TRUE(file.qos.empty());

  const auto* a = file.topology.find_node("A");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->snmp_enabled);
  EXPECT_EQ(a->snmp_community, "public");
  ASSERT_EQ(a->interfaces.size(), 1u);
  EXPECT_EQ(a->interfaces[0].speed, mbps(100));
  EXPECT_EQ(a->interfaces[0].ipv4, "10.0.0.1");

  const auto* b = file.topology.find_node("B");
  EXPECT_FALSE(b->snmp_enabled);
}

TEST(Parser, ParsesAllNodeKinds) {
  const SpecFile file = parse_spec(R"(
network kinds {
  host h { interface e { speed 1Mbps; address 10.0.0.1; } }
  switch s { speed 100Mbps; interface p1; interface p2; }
  hub u { speed 10Mbps; interface x1; }
  connect h.e <-> s.p1;
  connect u.x1 <-> s.p2;
}
)");
  EXPECT_EQ(file.topology.find_node("h")->kind, topo::NodeKind::kHost);
  EXPECT_EQ(file.topology.find_node("s")->kind, topo::NodeKind::kSwitch);
  EXPECT_EQ(file.topology.find_node("u")->kind, topo::NodeKind::kHub);
}

TEST(Parser, SwitchWithManagementAndDefaults) {
  const SpecFile file = parse_spec(R"(
network n {
  switch sw { snmp on community "ops"; management address 10.0.0.100;
              speed 100Mbps;
              interface p1; interface p2 { speed 10Mbps; } }
  host A { interface e0 { speed 100Mbps; address 10.0.0.1; } }
  connect A.e0 <-> sw.p1;
}
)");
  const auto* sw = file.topology.find_node("sw");
  ASSERT_NE(sw, nullptr);
  EXPECT_EQ(sw->kind, topo::NodeKind::kSwitch);
  EXPECT_EQ(sw->snmp_community, "ops");
  EXPECT_EQ(sw->management_ipv4, "10.0.0.100");
  EXPECT_EQ(sw->default_speed, mbps(100));
  EXPECT_EQ(sw->interface_speed(sw->interfaces[0]), mbps(100));
  EXPECT_EQ(sw->interface_speed(sw->interfaces[1]), mbps(10));
}

TEST(Parser, QosBlockParsed) {
  const SpecFile file = parse_spec(R"(
network n {
  host A { interface e { speed 100Mbps; address 10.0.0.1; } }
  host B { interface e { speed 100Mbps; address 10.0.0.2; } }
  connect A.e <-> B.e;
}
qos {
  path A <-> B { min_available 4Mbps; }
  path B <-> A { min_available 500KBps; }
}
)");
  ASSERT_EQ(file.qos.size(), 2u);
  EXPECT_EQ(file.qos[0].from, "A");
  EXPECT_EQ(file.qos[0].min_available_bps, mbps(4));
  EXPECT_EQ(file.qos[1].min_available_bps, 4'000'000u);  // 500 KB/s = 4 Mbps
}

TEST(Parser, QosUnknownHostRejected) {
  EXPECT_THROW(parse_spec(R"(
network n {
  host A { interface e { speed 1Mbps; address 10.0.0.1; } }
}
qos { path A <-> ghost { min_available 1Mbps; } }
)"),
               ParseError);
}

TEST(Parser, OsStringsAndAtoms) {
  const SpecFile file = parse_spec(R"(
network n {
  host A { os "Windows NT"; interface e { speed 1Mbps; address 10.0.0.1; } }
  host B { os linux; interface e { speed 1Mbps; address 10.0.0.2; } }
}
)");
  EXPECT_EQ(file.topology.find_node("A")->os, "Windows NT");
  EXPECT_EQ(file.topology.find_node("B")->os, "linux");
}

TEST(Parser, SnmpOffAccepted) {
  const SpecFile file = parse_spec(R"(
network n { host A { snmp off; interface e { speed 1Mbps; address 10.0.0.1; } } }
)");
  EXPECT_FALSE(file.topology.find_node("A")->snmp_enabled);
}

TEST(Parser, RejectsBadSnmpMode) {
  EXPECT_THROW(parse_spec("network n { host A { snmp maybe; } }"),
               ParseError);
}

TEST(Parser, RejectsUnknownAttribute) {
  EXPECT_THROW(parse_spec("network n { host A { color red; } }"),
               ParseError);
}

TEST(Parser, RejectsBadEndpoint) {
  EXPECT_THROW(parse_spec(R"(
network n {
  host A { interface e { speed 1Mbps; address 10.0.0.1; } }
  connect A <-> A.e;
}
)"),
               ParseError);
  EXPECT_THROW(parse_spec(R"(
network n {
  host A { interface e { speed 1Mbps; address 10.0.0.1; } }
  connect A.e.x <-> A.e;
}
)"),
               ParseError);
}

TEST(Parser, RejectsMissingSemicolon) {
  EXPECT_THROW(parse_spec("network n { host A { os linux } }"), ParseError);
}

TEST(Parser, RejectsBadIpAddress) {
  EXPECT_THROW(parse_spec(
                   "network n { host A { interface e { address 10.0.1; } } }"),
               ParseError);
}

TEST(Parser, RejectsTrailingGarbage) {
  EXPECT_THROW(parse_spec("network n { } extra"), ParseError);
}

TEST(Parser, RejectsDuplicateNode) {
  EXPECT_THROW(parse_spec(R"(
network n {
  host A { interface e { speed 1Mbps; address 10.0.0.1; } }
  host A { interface e { speed 1Mbps; address 10.0.0.2; } }
}
)"),
               ParseError);
}

TEST(Parser, ValidationFailureSurfacesAsParseError) {
  // Connection references an interface that does not exist.
  EXPECT_THROW(parse_spec(R"(
network n {
  host A { interface e { speed 1Mbps; address 10.0.0.1; } }
  host B { interface e { speed 1Mbps; address 10.0.0.2; } }
  connect A.ghost <-> B.e;
}
)"),
               ParseError);
}

TEST(ParseBandwidth, AllUnits) {
  EXPECT_EQ(parse_bandwidth("100Mbps", 1, 1), mbps(100));
  EXPECT_EQ(parse_bandwidth("10mbps", 1, 1), mbps(10));
  EXPECT_EQ(parse_bandwidth("64Kbps", 1, 1), kbps(64));
  EXPECT_EQ(parse_bandwidth("1Gbps", 1, 1), kGbps);
  EXPECT_EQ(parse_bandwidth("9600", 1, 1), 9600u);
  EXPECT_EQ(parse_bandwidth("9600bps", 1, 1), 9600u);
  EXPECT_EQ(parse_bandwidth("1000Bps", 1, 1), 8000u);
  EXPECT_EQ(parse_bandwidth("200KBps", 1, 1), 1'600'000u);
  EXPECT_EQ(parse_bandwidth("1.5Mbps", 1, 1), 1'500'000u);
}

TEST(ParseBandwidth, RejectsJunk) {
  EXPECT_THROW(parse_bandwidth("fast", 1, 1), ParseError);
  EXPECT_THROW(parse_bandwidth("10Xbps", 1, 1), ParseError);
  EXPECT_THROW(parse_bandwidth("", 1, 1), ParseError);
}

TEST(ParserFiles, MissingFileThrows) {
  EXPECT_THROW(parse_spec_file("/nonexistent/nowhere.spec"),
               std::runtime_error);
}

TEST(LirtssTestbedSpec, MatchesPaperFigure3) {
  const SpecFile file = lirtss_testbed();
  EXPECT_EQ(file.network_name, "lirtss");
  // 9 hosts + switch + hub.
  EXPECT_EQ(file.topology.nodes().size(), 11u);
  EXPECT_EQ(file.topology.connections().size(), 10u);
  EXPECT_TRUE(file.topology.validate().empty());

  // SNMP demons exactly where §4.1 says: L, N1, N2, S1, S2, switch.
  int snmp_count = 0;
  for (const auto& node : file.topology.nodes()) {
    snmp_count += node.snmp_enabled;
  }
  EXPECT_EQ(snmp_count, 6);
  EXPECT_FALSE(file.topology.find_node("S3")->snmp_enabled);
  EXPECT_FALSE(file.topology.find_node("hub0")->snmp_enabled);

  // Speeds per Figure 3: 100 Mbps switch, 10 Mbps hub and NT hosts.
  const auto* n1 = file.topology.find_node("N1");
  EXPECT_EQ(n1->interface_speed(n1->interfaces[0]), mbps(10));
  const auto* hub = file.topology.find_node("hub0");
  EXPECT_EQ(hub->default_speed, mbps(10));
  EXPECT_EQ(file.qos.size(), 2u);
}

}  // namespace
}  // namespace netqos::spec
