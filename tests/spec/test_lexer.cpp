#include "spec/lexer.h"

#include <gtest/gtest.h>

namespace netqos::spec {
namespace {

TEST(Lexer, EmptyInputGivesEnd) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(Lexer, TokenKinds) {
  const auto tokens = lex("network foo { } ; <->");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kAtom);
  EXPECT_EQ(tokens[0].text, "network");
  EXPECT_EQ(tokens[2].kind, TokenKind::kLBrace);
  EXPECT_EQ(tokens[3].kind, TokenKind::kRBrace);
  EXPECT_EQ(tokens[4].kind, TokenKind::kSemicolon);
  EXPECT_EQ(tokens[5].kind, TokenKind::kArrow);
  EXPECT_EQ(tokens[6].kind, TokenKind::kEnd);
}

TEST(Lexer, AtomsIncludeDotsAndDashes) {
  const auto tokens = lex("L.eth0 10.0.0.1 100Mbps my-host_x");
  EXPECT_EQ(tokens[0].text, "L.eth0");
  EXPECT_EQ(tokens[1].text, "10.0.0.1");
  EXPECT_EQ(tokens[2].text, "100Mbps");
  EXPECT_EQ(tokens[3].text, "my-host_x");
}

TEST(Lexer, StringsKeepSpaces) {
  const auto tokens = lex("os \"Solaris 7\";");
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "Solaris 7");
}

TEST(Lexer, HashCommentsSkipped) {
  const auto tokens = lex("a # everything here is ignored\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, SlashSlashCommentsSkipped) {
  const auto tokens = lex("a // also ignored\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, LineAndColumnTracked) {
  const auto tokens = lex("a\n  b");
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[0].column, 1u);
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[1].column, 3u);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(lex("os \"oops"), ParseError);
  EXPECT_THROW(lex("os \"oops\nmore\""), ParseError);
}

TEST(Lexer, IllegalCharacterThrows) {
  EXPECT_THROW(lex("a @ b"), ParseError);
}

TEST(Lexer, PartialArrowThrows) {
  EXPECT_THROW(lex("a <- b"), ParseError);
}

TEST(Lexer, ParseErrorCarriesPosition) {
  try {
    lex("ok\n   @");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.column(), 4u);
    EXPECT_NE(std::string(e.what()).find("spec:2:4"), std::string::npos);
  }
}

}  // namespace
}  // namespace netqos::spec
