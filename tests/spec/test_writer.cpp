#include "spec/writer.h"

#include <gtest/gtest.h>

#include "spec/testbed.h"

namespace netqos::spec {
namespace {

/// Compares the parts of topologies the writer promises to preserve.
void expect_equivalent(const topo::NetworkTopology& a,
                       const topo::NetworkTopology& b) {
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    const auto& na = a.nodes()[i];
    const auto& nb = b.nodes()[i];
    EXPECT_EQ(na.name, nb.name);
    EXPECT_EQ(na.kind, nb.kind);
    EXPECT_EQ(na.snmp_enabled, nb.snmp_enabled);
    EXPECT_EQ(na.snmp_community, nb.snmp_community);
    EXPECT_EQ(na.management_ipv4, nb.management_ipv4);
    EXPECT_EQ(na.default_speed, nb.default_speed);
    EXPECT_EQ(na.os, nb.os);
    ASSERT_EQ(na.interfaces.size(), nb.interfaces.size());
    for (std::size_t k = 0; k < na.interfaces.size(); ++k) {
      EXPECT_EQ(na.interfaces[k].local_name, nb.interfaces[k].local_name);
      EXPECT_EQ(na.interfaces[k].speed, nb.interfaces[k].speed);
      EXPECT_EQ(na.interfaces[k].ipv4, nb.interfaces[k].ipv4);
    }
  }
  ASSERT_EQ(a.connections().size(), b.connections().size());
  for (std::size_t i = 0; i < a.connections().size(); ++i) {
    EXPECT_EQ(a.connections()[i].a, b.connections()[i].a);
    EXPECT_EQ(a.connections()[i].b, b.connections()[i].b);
  }
}

TEST(Writer, LirtssRoundTripsExactly) {
  const SpecFile original = lirtss_testbed();
  const std::string text = write_spec(original);
  const SpecFile reparsed = parse_spec(text);
  EXPECT_EQ(reparsed.network_name, original.network_name);
  expect_equivalent(original.topology, reparsed.topology);
  ASSERT_EQ(reparsed.qos.size(), original.qos.size());
  for (std::size_t i = 0; i < original.qos.size(); ++i) {
    EXPECT_EQ(reparsed.qos[i].from, original.qos[i].from);
    EXPECT_EQ(reparsed.qos[i].to, original.qos[i].to);
    EXPECT_EQ(reparsed.qos[i].min_available_bps,
              original.qos[i].min_available_bps);
  }
}

TEST(Writer, DoubleRoundTripIsStable) {
  const SpecFile original = lirtss_testbed();
  const std::string once = write_spec(original);
  const std::string twice = write_spec(parse_spec(once));
  EXPECT_EQ(once, twice);
}

TEST(Writer, BandwidthUnitsPickLargestExact) {
  EXPECT_EQ(write_bandwidth(mbps(100)), "100Mbps");
  EXPECT_EQ(write_bandwidth(kGbps), "1Gbps");
  EXPECT_EQ(write_bandwidth(kbps(64)), "64Kbps");
  EXPECT_EQ(write_bandwidth(1'500'000), "1500Kbps");
  EXPECT_EQ(write_bandwidth(9600), "9600bps");
  EXPECT_EQ(write_bandwidth(0), "0bps");
}

TEST(Writer, NonDefaultCommunityQuoted) {
  SpecFile file;
  file.network_name = "n";
  topo::NodeSpec node;
  node.name = "A";
  node.kind = topo::NodeKind::kHost;
  node.snmp_enabled = true;
  node.snmp_community = "secret";
  node.interfaces.push_back({"e0", mbps(10), "10.0.0.1"});
  file.topology.add_node(node);

  const std::string text = write_spec(file);
  EXPECT_NE(text.find("community \"secret\""), std::string::npos);
  const SpecFile back = parse_spec(text);
  EXPECT_EQ(back.topology.find_node("A")->snmp_community, "secret");
}

}  // namespace
}  // namespace netqos::spec
