#include "loadgen/generator.h"

#include <gtest/gtest.h>

#include "netsim/network.h"
#include "netsim/services.h"
#include "netsim/simulator.h"

namespace netqos::load {
namespace {

class GeneratorFixture : public ::testing::Test {
 protected:
  GeneratorFixture() : net(sim) {
    src = &net.add_host("src");
    dst = &net.add_host("dst");
    net.add_host_interface(*src, "eth0", mbps(100),
                           sim::Ipv4Address::parse("10.0.0.1"));
    net.add_host_interface(*dst, "eth0", mbps(100),
                           sim::Ipv4Address::parse("10.0.0.2"));
    net.connect(*src, "eth0", *dst, "eth0");
    discard = std::make_unique<sim::DiscardService>(*dst);
  }

  sim::Simulator sim;
  sim::Network net;
  sim::Host* src = nullptr;
  sim::Host* dst = nullptr;
  std::unique_ptr<sim::DiscardService> discard;
};

TEST_F(GeneratorFixture, DeliversRequestedPayloadRate) {
  LoadGenerator gen(sim, *src, dst->ip(),
                    RateProfile::pulse(0, seconds(10),
                                       kilobytes_per_second(200)));
  gen.start();
  sim.run_until(seconds(10));
  // 200 KB/s for 10 s = 2 MB of payload.
  EXPECT_NEAR(static_cast<double>(discard->payload_bytes()), 2'000'000.0,
              10'000.0);
  EXPECT_EQ(gen.payload_bytes_sent(), discard->payload_bytes());
  EXPECT_EQ(gen.send_failures(), 0u);
}

TEST_F(GeneratorFixture, SendsToDiscardPortInMtuSizedPackets) {
  LoadGenerator gen(sim, *src, dst->ip(),
                    RateProfile::pulse(0, seconds(2),
                                       kilobytes_per_second(100)));
  gen.start();
  sim.run_until(seconds(2));
  EXPECT_EQ(gen.datagrams_sent(), discard->datagrams());
  // 200 KB over 1472-byte payloads.
  EXPECT_NEAR(static_cast<double>(gen.datagrams_sent()), 200'000.0 / 1472.0,
              2.0);
}

TEST_F(GeneratorFixture, SilentBeforeAndAfterPulse) {
  LoadGenerator gen(sim, *src, dst->ip(),
                    RateProfile::pulse(seconds(5), seconds(6),
                                       kilobytes_per_second(100)));
  gen.start();
  sim.run_until(seconds(4));
  EXPECT_EQ(gen.datagrams_sent(), 0u);
  sim.run_until(seconds(20));
  EXPECT_NEAR(static_cast<double>(gen.payload_bytes_sent()), 100'000.0,
              2'000.0);
}

TEST_F(GeneratorFixture, RateChangeTakesEffectAtBoundary) {
  RateProfile profile;
  profile.add_step(0, kilobytes_per_second(100));
  profile.add_step(seconds(5), kilobytes_per_second(400));
  profile.add_step(seconds(10), 0.0);
  LoadGenerator gen(sim, *src, dst->ip(), profile);
  gen.start();
  sim.run_until(seconds(10));
  // 100 KB/s * 5 s + 400 KB/s * 5 s = 2.5 MB.
  EXPECT_NEAR(static_cast<double>(gen.payload_bytes_sent()), 2'500'000.0,
              20'000.0);
}

TEST_F(GeneratorFixture, StopCeasesSending) {
  LoadGenerator gen(sim, *src, dst->ip(),
                    RateProfile::pulse(0, seconds(100),
                                       kilobytes_per_second(100)));
  gen.start();
  sim.run_until(seconds(2));
  gen.stop();
  const auto sent = gen.datagrams_sent();
  sim.run_until(seconds(10));
  EXPECT_EQ(gen.datagrams_sent(), sent);
}

TEST_F(GeneratorFixture, SmallerPayloadOption) {
  GeneratorConfig config;
  config.payload_bytes = 512;
  LoadGenerator gen(sim, *src, dst->ip(),
                    RateProfile::pulse(0, seconds(1),
                                       kilobytes_per_second(51)),
                    config);
  gen.start();
  sim.run_until(seconds(1));
  EXPECT_NEAR(static_cast<double>(gen.datagrams_sent()), 100.0, 2.0);
}

TEST_F(GeneratorFixture, InvalidPayloadRejected) {
  EXPECT_THROW(LoadGenerator(sim, *src, dst->ip(), RateProfile{},
                             GeneratorConfig{.payload_bytes = 0}),
               std::invalid_argument);
  EXPECT_THROW(LoadGenerator(sim, *src, dst->ip(), RateProfile{},
                             GeneratorConfig{.payload_bytes = 2000}),
               std::invalid_argument);
}

TEST_F(GeneratorFixture, HeaderOverheadMatchesPaperTwoPercentClaim) {
  // The paper: IP+UDP headers at 1500-byte MTU contribute ~2%. On the
  // wire (with Ethernet framing) overhead is 46/1472 = 3.1%; IP+UDP alone
  // is 28/1472 = 1.9%.
  LoadGenerator gen(sim, *src, dst->ip(),
                    RateProfile::pulse(0, seconds(5),
                                       kilobytes_per_second(200)));
  gen.start();
  sim.run_until(seconds(6));
  const auto wire = src->find_interface("eth0")->total_out_octets();
  const auto payload = gen.payload_bytes_sent();
  const double overhead =
      static_cast<double>(wire) / static_cast<double>(payload) - 1.0;
  EXPECT_NEAR(overhead, 46.0 / 1472.0, 0.002);
}

}  // namespace
}  // namespace netqos::load
