#include "loadgen/profile.h"

#include <gtest/gtest.h>

namespace netqos::load {
namespace {

TEST(RateProfile, EmptyIsSilent) {
  RateProfile p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.rate_at(seconds(10)), 0.0);
  EXPECT_EQ(p.next_change_after(0), -1);
}

TEST(RateProfile, PulseShape) {
  const auto p = RateProfile::pulse(seconds(10), seconds(20), 500.0);
  EXPECT_EQ(p.rate_at(seconds(9)), 0.0);
  EXPECT_EQ(p.rate_at(seconds(10)), 500.0);
  EXPECT_EQ(p.rate_at(seconds(19)), 500.0);
  EXPECT_EQ(p.rate_at(seconds(20)), 0.0);
  EXPECT_EQ(p.rate_at(seconds(100)), 0.0);
}

TEST(RateProfile, NextChangeAfter) {
  const auto p = RateProfile::pulse(seconds(10), seconds(20), 500.0);
  EXPECT_EQ(p.next_change_after(0), seconds(10));
  EXPECT_EQ(p.next_change_after(seconds(10)), seconds(20));
  EXPECT_EQ(p.next_change_after(seconds(20)), -1);
}

TEST(RateProfile, StaircaseMatchesPaperSchedule) {
  // §4.3.1: 100 KB/s for 120 s, +100 each 60 s to 500, off at 420 s.
  const auto p = RateProfile::staircase(100'000.0, seconds(120), 100'000.0,
                                        seconds(60), 5, seconds(420));
  EXPECT_EQ(p.rate_at(seconds(0)), 100'000.0);
  EXPECT_EQ(p.rate_at(seconds(119)), 100'000.0);
  EXPECT_EQ(p.rate_at(seconds(120)), 200'000.0);
  EXPECT_EQ(p.rate_at(seconds(180)), 300'000.0);
  EXPECT_EQ(p.rate_at(seconds(240)), 400'000.0);
  EXPECT_EQ(p.rate_at(seconds(300)), 500'000.0);
  EXPECT_EQ(p.rate_at(seconds(360)), 500'000.0);  // "after 360 s ... 500"
  EXPECT_EQ(p.rate_at(seconds(419)), 500'000.0);
  EXPECT_EQ(p.rate_at(seconds(420)), 0.0);
}

TEST(RateProfile, AddStepValidation) {
  RateProfile p;
  p.add_step(seconds(10), 100.0);
  EXPECT_THROW(p.add_step(seconds(5), 200.0), std::invalid_argument);
  EXPECT_THROW(p.add_step(seconds(20), -1.0), std::invalid_argument);
  // Same start time is allowed (the later one wins).
  p.add_step(seconds(10), 300.0);
  EXPECT_EQ(p.rate_at(seconds(10)), 300.0);
}

TEST(RateProfile, ChainedAddSteps) {
  RateProfile p;
  p.add_step(0, 1.0).add_step(seconds(1), 2.0).add_step(seconds(2), 0.0);
  EXPECT_EQ(p.steps().size(), 3u);
  EXPECT_EQ(p.rate_at(milliseconds(1500)), 2.0);
}

}  // namespace
}  // namespace netqos::load
