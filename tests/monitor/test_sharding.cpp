// Poller shards: interface-weighted partitioning, ownership handoff on
// station failure, merged-view continuity through an outage, and the
// batched GETBULK hot path measuring like the per-varbind GET path.
#include "monitor/distributed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "experiments/lirtss.h"
#include "monitor/plan.h"

namespace netqos::mon {
namespace {

class ShardingFixture : public ::testing::Test {
 protected:
  ShardingFixture() { stations = {&bed.host("L"), &bed.host("S2")}; }

  static sim::Link* link_of(sim::Host& host, const std::string& itf) {
    return host.find_interface(itf)->link();
  }

  exp::LirtssTestbed bed;
  std::vector<sim::Host*> stations;
};

TEST_F(ShardingFixture, InterfaceWeightedPartitionBalancesLoad) {
  DistributedConfig config;
  config.partition = PartitionStrategy::kInterfaceWeighted;
  DistributedMonitor dist(bed.simulator(), bed.topology(), stations,
                          config);

  const PollPlan plan = PollPlan::build(bed.topology());
  std::map<std::string, std::size_t> weight;
  std::size_t heaviest = 0;
  for (const AgentTask& task : plan.agents()) {
    weight[task.node] = std::max<std::size_t>(1, task.interfaces.size());
    heaviest = std::max(heaviest, weight[task.node]);
  }

  // Shards are disjoint and cover the plan exactly.
  const auto s0 = dist.shard_agents(0);
  const auto s1 = dist.shard_agents(1);
  std::set<std::string> all(s0.begin(), s0.end());
  all.insert(s1.begin(), s1.end());
  EXPECT_EQ(all.size(), s0.size() + s1.size());
  EXPECT_EQ(all.size(), plan.agents().size());

  // LPT guarantee: load gap bounded by the heaviest single agent.
  std::size_t load0 = 0, load1 = 0;
  for (const auto& node : s0) load0 += weight.at(node);
  for (const auto& node : s1) load1 += weight.at(node);
  EXPECT_LE(load0 > load1 ? load0 - load1 : load1 - load0, heaviest);
}

TEST_F(ShardingFixture, StationFailureHandsPartitionOffAndBack) {
  DistributedConfig config;
  config.ownership_handoff = true;
  DistributedMonitor dist(bed.simulator(), bed.topology(), stations,
                          config);
  const auto initial0 = dist.shard_agents(0);
  const auto initial1 = dist.shard_agents(1);

  // Pinning: a station's own agent lives on the *next* shard, so its
  // death is observed by a healthy peer.
  EXPECT_TRUE(std::count(initial1.begin(), initial1.end(), "L"));
  EXPECT_TRUE(std::count(initial0.begin(), initial0.end(), "S2"));

  dist.add_path("S1", "N1");
  bed.background().start();
  dist.start();
  bed.simulator().run_until(seconds(5));

  // Station S2 drops off the network entirely.
  link_of(bed.host("S2"), "hme0")->set_up(false);
  bed.simulator().run_until(seconds(40));
  EXPECT_TRUE(dist.shard_dark(1));
  EXPECT_FALSE(dist.shard_dark(0));
  // Shard 0 absorbed everything except the dead station's own agent
  // (still owned by shard 0, where it was pinned).
  EXPECT_TRUE(dist.shard_agents(1).empty());
  EXPECT_EQ(dist.shard_agents(0).size(),
            initial0.size() + initial1.size());

  // Station heals; the partition migrates home.
  link_of(bed.host("S2"), "hme0")->set_up(true);
  bed.simulator().run_until(seconds(120));
  EXPECT_FALSE(dist.shard_dark(1));
  EXPECT_EQ(dist.shard_agents(0), initial0);
  EXPECT_EQ(dist.shard_agents(1), initial1);
}

TEST_F(ShardingFixture, MergedViewStaysFreshThroughStationOutage) {
  DistributedConfig config;
  config.ownership_handoff = true;
  DistributedMonitor dist(bed.simulator(), bed.topology(), stations,
                          config);
  dist.add_path("S1", "N1");
  bed.add_load("S1", "N1",
               load::RateProfile::pulse(seconds(2), seconds(60),
                                        kilobytes_per_second(200)));
  bed.background().start();
  dist.start();
  bed.simulator().run_until(seconds(20));
  ASSERT_EQ(dist.coordinator().current_usage("S1", "N1").freshness,
            Freshness::kFresh);

  link_of(bed.host("S2"), "hme0")->set_up(false);
  bed.simulator().run_until(seconds(60));

  // S1 <-> N1 involves only nodes reachable from station L; after the
  // handoff shard 0 polls them, so the merged view keeps producing
  // fresh samples despite station S2 being gone.
  EXPECT_TRUE(dist.shard_dark(1));
  EXPECT_EQ(dist.coordinator().current_usage("S1", "N1").freshness,
            Freshness::kFresh);
  const double level =
      dist.used_series("S1", "N1").mean_between(seconds(45), seconds(58));
  EXPECT_GT(level, 100'000.0);
}

// The batched whole-ifTable GETBULK path must agree with the classic
// per-varbind GET path on what the network is doing. Two identical
// testbeds, one monitor each; means match within sampling noise.
TEST_F(ShardingFixture, BatchedTablePollsMeasureLikeGetPath) {
  const auto profile =
      load::RateProfile::pulse(seconds(5), seconds(40),
                               kilobytes_per_second(300));

  exp::LirtssTestbed get_bed;
  get_bed.watch("S1", "N1");
  get_bed.add_load("L", "N1", profile);
  get_bed.run_until(seconds(40));
  const double get_level =
      get_bed.monitor().used_series("S1", "N1").mean_between(seconds(12),
                                                            seconds(38));

  exp::LirtssTestbed bulk_bed;
  bulk_bed.add_load("L", "N1", profile);
  MonitorConfig config;
  config.batch_table_polls = true;
  NetworkMonitor monitor(bulk_bed.simulator(), bulk_bed.topology(),
                         bulk_bed.host("L"), config);
  monitor.add_path("S1", "N1");
  bulk_bed.background().start();
  monitor.start();
  bulk_bed.simulator().run_until(seconds(40));
  const double bulk_level =
      monitor.used_series("S1", "N1").mean_between(seconds(12),
                                                   seconds(38));

  EXPECT_NEAR(get_level, 310'000.0, 25'000.0);
  EXPECT_NEAR(bulk_level, get_level, 0.10 * get_level);
  // And the batched monitor really did use the table path.
  EXPECT_GT(monitor.stats().agent_polls, 0u);
  EXPECT_EQ(monitor.stats().agent_poll_failures, 0u);
}

}  // namespace
}  // namespace netqos::mon
