#include "monitor/latency.h"

#include <gtest/gtest.h>

#include "experiments/lirtss.h"
#include "netsim/services.h"

namespace netqos::mon {
namespace {

TEST(LatencyProbe, MeasuresRoundTripOnQuietNetwork) {
  exp::LirtssTestbed bed;
  sim::EchoService echo(bed.host("S1"));
  LatencyProbe probe(bed.simulator(), bed.host("L"), bed.host("S1").ip());
  probe.start();
  bed.run_until(seconds(20));
  probe.stop();

  EXPECT_GE(probe.probes_sent(), 19u);
  EXPECT_EQ(probe.probes_lost(), 0u);
  const RunningStats stats = probe.rtt_stats();
  ASSERT_GT(stats.count(), 0u);
  // L -> switch -> S1 and back: two 100 Mbps hops each way, ~tens of us.
  EXPECT_GT(stats.mean(), 0.0);
  EXPECT_LT(stats.mean(), 0.002);
}

TEST(LatencyProbe, HubPathSlowerThanSwitchPath) {
  exp::LirtssTestbed bed;
  sim::EchoService echo_s1(bed.host("S1"));
  sim::EchoService echo_n1(bed.host("N1"));
  LatencyProbe fast(bed.simulator(), bed.host("L"), bed.host("S1").ip());
  LatencyProbe slow(bed.simulator(), bed.host("L"), bed.host("N1").ip());
  fast.start();
  slow.start();
  bed.run_until(seconds(20));
  // The N1 path crosses the 10 Mbps hub: serialization is 10x slower.
  EXPECT_GT(slow.rtt_stats().mean(), fast.rtt_stats().mean() * 2);
}

TEST(LatencyProbe, LatencyGrowsUnderLoad) {
  exp::LirtssTestbed bed;
  sim::EchoService echo(bed.host("N1"));
  LatencyProbe probe(bed.simulator(), bed.host("L"), bed.host("N1").ip());
  probe.start();
  // Saturating load on the hub path queues the echo packets.
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(30), seconds(60),
                                        kilobytes_per_second(1100)));
  bed.run_until(seconds(60));

  const auto& rtts = probe.rtt_series();
  RunningStats quiet, loaded;
  for (const auto& p : rtts.points()) {
    if (p.time < seconds(30)) quiet.add(p.value);
    else loaded.add(p.value);
  }
  ASSERT_GT(quiet.count(), 0u);
  ASSERT_GT(loaded.count(), 0u);
  EXPECT_GT(loaded.mean(), quiet.mean() * 1.5);
}

TEST(LatencyProbe, UnreachableTargetCountsLost) {
  exp::LirtssTestbed bed;
  LatencyProbe probe(bed.simulator(), bed.host("L"),
                     sim::Ipv4Address::parse("10.9.9.9"));
  probe.start();
  bed.run_until(seconds(5));
  EXPECT_EQ(probe.rtt_series().size(), 0u);
  EXPECT_GT(probe.probes_lost(), 0u);
}

TEST(LatencyProbe, NoEchoServiceMeansTimeouts) {
  exp::LirtssTestbed bed;  // S1 runs no echo service here
  LatencyProbe probe(bed.simulator(), bed.host("L"), bed.host("S1").ip());
  probe.start();
  bed.run_until(seconds(10));
  EXPECT_EQ(probe.rtt_series().size(), 0u);
  EXPECT_GT(probe.probes_lost(), 0u);
  EXPECT_GT(probe.probes_sent(), 0u);
}

TEST(LatencyProbe, StopCeasesProbing) {
  exp::LirtssTestbed bed;
  sim::EchoService echo(bed.host("S1"));
  LatencyProbe probe(bed.simulator(), bed.host("L"), bed.host("S1").ip());
  probe.start();
  bed.run_until(seconds(5));
  probe.stop();
  const auto sent = probe.probes_sent();
  bed.run_until(seconds(10));
  EXPECT_EQ(probe.probes_sent(), sent);
}

}  // namespace
}  // namespace netqos::mon
