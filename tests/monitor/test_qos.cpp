#include "monitor/qos.h"

#include <gtest/gtest.h>

#include "experiments/lirtss.h"

namespace netqos::mon {
namespace {

TEST(QosDetector, ViolationAndRecoveryLifecycle) {
  exp::LirtssTestbed bed;
  // Hub capacity 1.25 MB/s; require 900 KB/s available on S1<->N1. A
  // 600 KB/s load leaves ~650 KB/s available -> violation; load stops ->
  // recovery.
  ViolationDetector detector(bed.monitor());
  detector.add_requirement("S1", "N1", kilobytes_per_second(900));
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(20), seconds(60),
                                        kilobytes_per_second(600)));
  bed.run_until(seconds(90));

  const auto& events = detector.events();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].kind, QosEvent::Kind::kViolation);
  EXPECT_GT(events[0].time, seconds(19));
  EXPECT_LT(events[0].time, seconds(30));
  EXPECT_LT(events[0].available, kilobytes_per_second(900));
  EXPECT_EQ(events[0].required, kilobytes_per_second(900));
  // Diagnosis points into the hub domain.
  const auto& conn =
      bed.topology().connections()[events[0].bottleneck];
  EXPECT_TRUE(conn.touches("hub0"));
  EXPECT_FALSE(events[0].bottleneck_description.empty());

  EXPECT_EQ(events.back().kind, QosEvent::Kind::kRecovery);
  EXPECT_GT(events.back().time, seconds(60));
  EXPECT_FALSE(detector.in_violation("S1", "N1"));
}

TEST(QosDetector, NoFalsePositivesUnderLightLoad) {
  exp::LirtssTestbed bed;
  ViolationDetector detector(bed.monitor());
  detector.add_requirement("S1", "N1", kilobytes_per_second(500));
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(5), seconds(40),
                                        kilobytes_per_second(100)));
  bed.run_until(seconds(40));
  EXPECT_TRUE(detector.events().empty());
}

TEST(QosDetector, InViolationWhileLoadPersists) {
  exp::LirtssTestbed bed;
  ViolationDetector detector(bed.monitor());
  detector.add_requirement("S1", "N1", kilobytes_per_second(1000));
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(5), seconds(100),
                                        kilobytes_per_second(500)));
  bed.run_until(seconds(60));
  EXPECT_TRUE(detector.in_violation("S1", "N1"));
  // Exactly one violation event: no flapping while load is steady.
  std::size_t violations = 0;
  for (const auto& e : detector.events()) {
    violations += e.kind == QosEvent::Kind::kViolation;
  }
  EXPECT_EQ(violations, 1u);
}

TEST(QosDetector, AddRequirementRegistersPathIfMissing) {
  exp::LirtssTestbed bed;
  ViolationDetector detector(bed.monitor());
  detector.add_requirement("S2", "N2", kilobytes_per_second(100));
  EXPECT_NO_THROW(bed.monitor().path_of("S2", "N2"));
}

TEST(QosDetector, CallbackFires) {
  exp::LirtssTestbed bed;
  ViolationDetector detector(bed.monitor());
  detector.add_requirement("S1", "N1", kilobytes_per_second(1200));
  int callbacks = 0;
  detector.add_event_callback([&](const QosEvent& e) {
    ++callbacks;
    EXPECT_EQ(e.kind, QosEvent::Kind::kViolation);
  });
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(5), seconds(30),
                                        kilobytes_per_second(400)));
  bed.run_until(seconds(20));
  EXPECT_EQ(callbacks, 1);
}

TEST(QosDetector, HonoursSpecFileRequirements) {
  // The testbed spec declares: S1<->N1 min 4 Mbps (500 KB/s).
  exp::LirtssTestbed bed;
  ViolationDetector detector(bed.monitor());
  for (const auto& req : bed.specfile().qos) {
    detector.add_requirement(req.from, req.to,
                             to_bytes_per_second(req.min_available_bps));
  }
  // 900 KB/s leaves ~350 KB/s < 500 KB/s required -> violation.
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(10), seconds(40),
                                        kilobytes_per_second(900)));
  bed.run_until(seconds(40));
  EXPECT_TRUE(detector.in_violation("S1", "N1"));
  EXPECT_FALSE(detector.in_violation("S1", "S2"));
}

}  // namespace
}  // namespace netqos::mon
