// Newer monitor surface: failure-aware path evaluation, per-connection
// series, SNMPv1 compatibility, and report analysis helpers.
#include <gtest/gtest.h>

#include "experiments/lirtss.h"
#include "monitor/failure.h"
#include "monitor/qos.h"
#include "monitor/report.h"
#include "netsim/link.h"

namespace netqos::mon {
namespace {

TEST(FailureAwarePaths, DownLinkZeroesAvailability) {
  exp::LirtssTestbed bed;
  FailureDetector detector(bed.simulator(), bed.topology(), bed.host("L"));
  bed.monitor().set_failure_detector(&detector);
  bed.watch("S1", "N1");
  bed.run_until(seconds(10));

  std::optional<PathUsage> last;
  bed.monitor().add_sample_callback(
      [&](const PathKey&, SimTime, const PathUsage& usage) {
        last = usage;
      });

  // Kill the hub uplink: the switch agent observes its p8 port and still
  // has a working path to the monitor, so its linkDown trap arrives.
  // (Downing N1's own cable instead would be invisible: N1's trap dies on
  // the dead link and hubs run no agent — a genuine blind spot.)
  sim::Link* uplink =
      bed.network().find_switch("sw0")->find_interface("p8")->link();
  uplink->set_up(false);
  bed.run_until(seconds(16));
  ASSERT_TRUE(last.has_value());
  EXPECT_TRUE(last->link_down);
  EXPECT_DOUBLE_EQ(last->available, 0.0);
  const auto& conn = bed.topology().connections()[last->bottleneck];
  EXPECT_TRUE(conn.touches("hub0"));

  // Repair: availability returns.
  uplink->set_up(true);
  bed.run_until(seconds(30));
  EXPECT_FALSE(last->link_down);
  EXPECT_GT(last->available, 1'000'000.0);
}

TEST(FailureAwarePaths, QosViolationFiresOnLinkDown) {
  exp::LirtssTestbed bed;
  FailureDetector detector(bed.simulator(), bed.topology(), bed.host("L"));
  bed.monitor().set_failure_detector(&detector);
  ViolationDetector qos(bed.monitor());
  qos.add_requirement("S1", "N1", kilobytes_per_second(100));
  bed.run_until(seconds(10));
  EXPECT_FALSE(qos.in_violation("S1", "N1"));

  bed.network().find_switch("sw0")->find_interface("p8")->link()->set_up(
      false);
  bed.run_until(seconds(16));
  EXPECT_TRUE(qos.in_violation("S1", "N1"));
}

TEST(ConnectionSeries, RecordedForMonitoredPathConnections) {
  exp::LirtssTestbed bed;
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(4), seconds(30),
                                        kilobytes_per_second(200)));
  bed.watch("S1", "N1");
  bed.run_until(seconds(30));

  const auto& path = bed.monitor().path_of("S1", "N1");
  ASSERT_EQ(path.size(), 3u);
  for (std::size_t ci : path) {
    const TimeSeries* series = bed.monitor().connection_used_series(ci);
    ASSERT_NE(series, nullptr);
    EXPECT_GT(series->size(), 5u);
  }
  // The hub-domain connections all carry the load; the S1 leg is idle.
  const TimeSeries* hub_leg = bed.monitor().connection_used_series(path[2]);
  const TimeSeries* s1_leg = bed.monitor().connection_used_series(path[0]);
  EXPECT_GT(hub_leg->mean_between(seconds(10), seconds(28)), 180'000.0);
  EXPECT_LT(s1_leg->mean_between(seconds(10), seconds(28)), 30'000.0);
}

TEST(ConnectionSeries, AbsentForUnmonitoredConnections) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "S2");
  bed.run_until(seconds(10));
  // The N2 connection is not on the monitored path.
  const auto conns = bed.topology().connections_of("N2");
  ASSERT_EQ(conns.size(), 1u);
  EXPECT_EQ(bed.monitor().connection_used_series(conns[0]), nullptr);
}

TEST(SnmpV1Compat, MonitorWorksOverV1) {
  exp::TestbedOptions options;
  exp::LirtssTestbed bed(options);
  // A second, v1-only monitor runs on S2 alongside the default v2c one.
  MonitorConfig config;
  config.client.version = snmp::SnmpVersion::kV1;
  NetworkMonitor v1_monitor(bed.simulator(), bed.topology(),
                            bed.host("S2"), config);
  v1_monitor.add_path("S1", "N1");
  v1_monitor.start();

  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(4), seconds(30),
                                        kilobytes_per_second(200)));
  bed.run_until(seconds(30));

  EXPECT_EQ(v1_monitor.stats().resolve_failures, 0u);
  EXPECT_GT(v1_monitor.stats().rounds_completed, 5u);
  const double level =
      v1_monitor.used_series("S1", "N1").mean_between(seconds(10),
                                                      seconds(28));
  EXPECT_NEAR(level, 206'000.0 + 11'000.0, 20'000.0);
}

TEST(ReportAnalysis, AnalyzeWindowComputesTable2Row) {
  TimeSeries series;
  // 10 samples at 105 KB/s against generated 100 KB/s + background 2.
  for (int i = 0; i < 10; ++i) {
    series.add(seconds(i), 105'000.0);
  }
  series.add(seconds(4), 120'000.0);  // one spike
  const auto row = analyze_window(series, seconds(0), seconds(10),
                                  100'000.0, 2'000.0, seconds(0));
  EXPECT_NEAR(row.generated_kbps, 100.0, 1e-9);
  EXPECT_NEAR(row.measured_kbps, (105.0 * 10 + 120.0) / 11.0, 0.01);
  EXPECT_NEAR(row.less_background_kbps, row.measured_kbps - 2.0, 1e-9);
  // Max individual error vs (generated + background): 120 vs 102.
  EXPECT_NEAR(row.max_percent_error, 100.0 * (120.0 - 102.0) / 102.0, 0.01);
}

TEST(ReportAnalysis, SettleTrimsWindowStart) {
  TimeSeries series;
  series.add(seconds(0), 500'000.0);  // transition garbage
  series.add(seconds(5), 100'000.0);
  series.add(seconds(6), 100'000.0);
  const auto row = analyze_window(series, seconds(0), seconds(10),
                                  100'000.0, 0.0, seconds(3));
  EXPECT_NEAR(row.measured_kbps, 100.0, 1e-9);
}

TEST(DiscardMonitoring, SaturatedHubShowsDropRate) {
  exp::LirtssTestbed bed;
  // 1500 KB/s into a 1250 KB/s hub: the switch's hub-facing port queue
  // overflows and ifOutDiscards climbs.
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(4), seconds(40),
                                        kilobytes_per_second(1500)));
  bed.watch("S1", "N1");

  double worst_discards = 0.0;
  bed.monitor().add_sample_callback(
      [&](const PathKey&, SimTime, const PathUsage& usage) {
        for (const auto& conn : usage.connections) {
          worst_discards = std::max(worst_discards, conn.discard_rate);
        }
      });
  bed.run_until(seconds(40));
  // Overload is ~250 KB/s of 1472-byte payloads: ~170 datagrams/s lost.
  EXPECT_GT(worst_discards, 100.0);
  EXPECT_LT(worst_discards, 400.0);
}

TEST(DiscardMonitoring, QuietNetworkShowsNoDrops) {
  exp::LirtssTestbed bed;
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(4), seconds(20),
                                        kilobytes_per_second(200)));
  bed.watch("S1", "N1");
  double worst_discards = 0.0;
  bed.monitor().add_sample_callback(
      [&](const PathKey&, SimTime, const PathUsage& usage) {
        for (const auto& conn : usage.connections) {
          worst_discards = std::max(worst_discards, conn.discard_rate);
        }
      });
  bed.run_until(seconds(20));
  EXPECT_DOUBLE_EQ(worst_discards, 0.0);
}

TEST(ReportAnalysis, EstimateBackground) {
  TimeSeries series;
  series.add(seconds(1), 10'000.0);
  series.add(seconds(2), 14'000.0);
  EXPECT_NEAR(estimate_background(series, seconds(0), seconds(3)), 12'000.0,
              1e-9);
}

}  // namespace
}  // namespace netqos::mon
