// Bit-identical conformance harness for the monitor pipeline.
//
// Each paper scenario (fig4 staircase, fig5 hub contention, fig6 switch
// isolation) is rendered to one deterministic transcript — CSV rows, QoS
// events, window report structs, final usage/history/stats dumps, doubles
// at 17 significant digits — and diffed against a golden committed from
// the seed pipeline. Any observable change in the poll -> bandwidth ->
// detection -> report path fails here with the first differing line; the
// full actual transcript is written next to the test binary as
// conformance_<scenario>.actual.txt so CI can upload it as an artifact.
//
// Regenerate after an *intentional* observable change with:
//   NETQOS_UPDATE_GOLDENS=1 ./netqos_tests --gtest_filter='Conformance*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "experiments/conformance.h"

namespace netqos::exp {
namespace {

std::string golden_path(const std::string& scenario) {
  return std::string(NETQOS_SOURCE_DIR) + "/tests/monitor/goldens/conformance_" +
         scenario + ".txt";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Line number (1-based) and text of the first difference, for a failure
/// message that points at the change instead of dumping both transcripts.
std::string first_diff(const std::string& expected, const std::string& actual) {
  std::istringstream e(expected), a(actual);
  std::string eline, aline;
  int line = 0;
  while (true) {
    const bool have_e = static_cast<bool>(std::getline(e, eline));
    const bool have_a = static_cast<bool>(std::getline(a, aline));
    ++line;
    if (!have_e && !have_a) return "transcripts identical";
    if (eline != aline || have_e != have_a) {
      std::ostringstream out;
      out << "first difference at line " << line << "\n  golden: "
          << (have_e ? eline : "<end of file>") << "\n  actual: "
          << (have_a ? aline : "<end of file>");
      return out.str();
    }
  }
}

class Conformance : public ::testing::TestWithParam<std::string> {};

TEST_P(Conformance, BitIdenticalToSeedGolden) {
  const std::string scenario = GetParam();
  const std::string actual = run_conformance_scenario(scenario);

  if (std::getenv("NETQOS_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(golden_path(scenario), std::ios::binary);
    out << actual;
    ASSERT_TRUE(out.good()) << "failed to write " << golden_path(scenario);
    GTEST_SKIP() << "golden regenerated: " << golden_path(scenario);
  }

  const std::string expected = read_file(golden_path(scenario));
  ASSERT_FALSE(expected.empty())
      << "missing golden " << golden_path(scenario)
      << " — regenerate with NETQOS_UPDATE_GOLDENS=1";
  if (actual != expected) {
    const std::string dump = "conformance_" + scenario + ".actual.txt";
    std::ofstream(dump, std::ios::binary) << actual;
    FAIL() << "transcript diverged from seed golden for " << scenario
           << " (actual written to " << dump << ")\n"
           << first_diff(expected, actual);
  }
}

/// The same scenarios with every observer module (EWMA anomaly, top
/// talkers) attached: observers consume the sample stream but must not
/// perturb the paper pipeline, so the transcript is required to be
/// bit-identical to the plain run's golden.
TEST_P(Conformance, ObserverModulesDoNotPerturbPipeline) {
  const std::string scenario = GetParam();
  if (std::getenv("NETQOS_UPDATE_GOLDENS") != nullptr) {
    GTEST_SKIP() << "goldens regenerate from the plain run";
  }
  const std::string actual =
      run_conformance_scenario(scenario, /*enable_observer_modules=*/true);
  const std::string expected = read_file(golden_path(scenario));
  ASSERT_FALSE(expected.empty()) << "missing golden " << golden_path(scenario);
  if (actual != expected) {
    const std::string dump = "conformance_" + scenario + ".observers.actual.txt";
    std::ofstream(dump, std::ios::binary) << actual;
    FAIL() << "observer modules perturbed the pipeline for " << scenario
           << " (actual written to " << dump << ")\n"
           << first_diff(expected, actual);
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, Conformance,
                         ::testing::ValuesIn(conformance_scenarios()),
                         [](const auto& p) { return p.param; });

}  // namespace
}  // namespace netqos::exp
