// §3.3 rules unit-tested directly against a hand-filled StatsDb.
#include "monitor/bandwidth.h"

#include <gtest/gtest.h>

namespace netqos::mon {
namespace {

/// Topology: A --sw-- B and C, D on a hub behind the switch.
///   conns: 0: A-sw, 1: B-sw, 2: hub-sw, 3: C-hub, 4: D-hub
class BandwidthFixture : public ::testing::Test {
 protected:
  BandwidthFixture() {
    auto host = [&](const std::string& name, const std::string& ip,
                    BitsPerSecond speed, bool snmp) {
      topo::NodeSpec node;
      node.name = name;
      node.kind = topo::NodeKind::kHost;
      node.snmp_enabled = snmp;
      node.interfaces.push_back({"e0", speed, ip});
      topo.add_node(node);
    };
    host("A", "10.0.0.1", mbps(100), true);
    host("B", "10.0.0.2", mbps(100), true);
    host("C", "10.0.0.3", mbps(10), true);
    host("D", "10.0.0.4", mbps(10), true);

    topo::NodeSpec sw;
    sw.name = "sw";
    sw.kind = topo::NodeKind::kSwitch;
    sw.snmp_enabled = true;
    sw.management_ipv4 = "10.0.0.100";
    sw.default_speed = mbps(100);
    for (int i = 1; i <= 3; ++i) {
      sw.interfaces.push_back({"p" + std::to_string(i), 0, ""});
    }
    topo.add_node(sw);

    topo::NodeSpec hub;
    hub.name = "hub";
    hub.kind = topo::NodeKind::kHub;
    hub.default_speed = mbps(10);
    for (int i = 1; i <= 3; ++i) {
      hub.interfaces.push_back({"h" + std::to_string(i), 0, ""});
    }
    topo.add_node(hub);

    topo.add_connection({{"A", "e0"}, {"sw", "p1"}});    // 0
    topo.add_connection({{"B", "e0"}, {"sw", "p2"}});    // 1
    topo.add_connection({{"hub", "h1"}, {"sw", "p3"}});  // 2
    topo.add_connection({{"C", "e0"}, {"hub", "h2"}});   // 3
    topo.add_connection({{"D", "e0"}, {"hub", "h3"}});   // 4

    plan = std::make_unique<PollPlan>(PollPlan::build(topo));
    calc = std::make_unique<BandwidthCalculator>(topo, *plan);
  }

  /// Injects two samples so the latest rate is `bytes_per_sec` (in+out
  /// split evenly) for the plan's measure point of connection `ci`.
  void set_traffic(std::size_t ci, double bytes_per_sec) {
    const auto& point = plan->measurement_for(ci);
    ASSERT_TRUE(point.has_value());
    const InterfaceKey key{point->node, point->interface};
    CounterSample first{0, 0, 0, 0, 0};
    const auto half = static_cast<std::uint32_t>(bytes_per_sec / 2);
    CounterSample second{100, half, half, 1, 1};
    db.update(key, seconds(0), first);
    db.update(key, seconds(1), second);
  }

  topo::NetworkTopology topo;
  std::unique_ptr<PollPlan> plan;
  std::unique_ptr<BandwidthCalculator> calc;
  StatsDb db;
};

TEST_F(BandwidthFixture, SwitchRuleUsesOwnTraffic) {
  set_traffic(0, 2'000'000.0);  // A's connection: 2 MB/s
  const ConnectionUsage usage = calc->connection_usage(0, db);
  EXPECT_TRUE(usage.measured);
  EXPECT_FALSE(usage.hub_rule);
  EXPECT_DOUBLE_EQ(usage.used, 2'000'000.0);
  EXPECT_DOUBLE_EQ(usage.capacity, 12'500'000.0);  // 100 Mbps in bytes
  EXPECT_DOUBLE_EQ(usage.available, 10'500'000.0);
}

TEST_F(BandwidthFixture, SwitchConnectionsIndependent) {
  set_traffic(0, 2'000'000.0);
  set_traffic(1, 0.0);
  EXPECT_DOUBLE_EQ(calc->connection_usage(1, db).used, 0.0);
}

TEST_F(BandwidthFixture, HubRuleSumsHostMembers) {
  set_traffic(3, 300'000.0);  // C
  set_traffic(4, 200'000.0);  // D
  set_traffic(2, 500'000.0);  // uplink port (must NOT be added again)
  const ConnectionUsage c_usage = calc->connection_usage(3, db);
  EXPECT_TRUE(c_usage.hub_rule);
  EXPECT_DOUBLE_EQ(c_usage.used, 500'000.0);  // C + D, not + uplink
  // Every connection in the domain reports the same usage.
  EXPECT_DOUBLE_EQ(calc->connection_usage(4, db).used, 500'000.0);
  EXPECT_DOUBLE_EQ(calc->connection_usage(2, db).used, 500'000.0);
}

TEST_F(BandwidthFixture, HubUsageCappedAtHubSpeed) {
  // Paper: "u_i cannot exceed the maximum speed of the hub".
  set_traffic(3, 900'000.0);
  set_traffic(4, 800'000.0);  // sum 1.7 MB/s > 1.25 MB/s (10 Mbps)
  const ConnectionUsage usage = calc->connection_usage(3, db);
  EXPECT_DOUBLE_EQ(usage.used, 1'250'000.0);
  EXPECT_DOUBLE_EQ(usage.available, 0.0);
}

TEST_F(BandwidthFixture, UnmeasuredConnectionFlagged) {
  const ConnectionUsage usage = calc->connection_usage(0, db);
  EXPECT_FALSE(usage.measured);
  EXPECT_DOUBLE_EQ(usage.used, 0.0);
}

TEST_F(BandwidthFixture, PathAvailableIsMinimum) {
  // Path A -> sw -> hub -> C: conns {0, 2, 3}.
  set_traffic(0, 1'000'000.0);
  set_traffic(3, 400'000.0);
  set_traffic(4, 0.0);
  const topo::Path path{0, 2, 3};
  const PathUsage usage = calc->path_usage(path, db);
  EXPECT_TRUE(usage.complete);
  // Hub domain: 10 Mbps - 400 KB/s = 850 KB/s; switch leg: 11.5 MB/s.
  EXPECT_DOUBLE_EQ(usage.available, 850'000.0);
  EXPECT_DOUBLE_EQ(usage.used_at_bottleneck, 400'000.0);
  EXPECT_TRUE(usage.bottleneck == 2 || usage.bottleneck == 3);
  EXPECT_EQ(usage.connections.size(), 3u);
}

TEST_F(BandwidthFixture, PathIncompleteWithoutData) {
  const topo::Path path{0, 1};
  set_traffic(0, 100.0);
  const PathUsage usage = calc->path_usage(path, db);
  EXPECT_FALSE(usage.complete);
}

TEST_F(BandwidthFixture, EmptyPathIsIncomplete) {
  const PathUsage usage = calc->path_usage({}, db);
  EXPECT_FALSE(usage.complete);
  EXPECT_DOUBLE_EQ(usage.available, 0.0);
}

TEST(StatsDbBasics, UpdateAndSeries) {
  StatsDb db;
  const InterfaceKey key{"n", "e"};
  EXPECT_FALSE(db.latest_rate(key).has_value());
  EXPECT_EQ(db.total_rate_series(key), nullptr);

  EXPECT_FALSE(db.update(key, seconds(0), {0, 0, 0, 0, 0}).has_value());
  const auto rates = db.update(key, seconds(2), {200, 1000, 1000, 5, 5});
  ASSERT_TRUE(rates.has_value());
  EXPECT_DOUBLE_EQ(rates->total_rate(), 1000.0);

  ASSERT_TRUE(db.latest_rate(key).has_value());
  const TimeSeries* series = db.total_rate_series(key);
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 1u);
  EXPECT_EQ(series->points()[0].time, seconds(2));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.last_update(), seconds(2));
}

TEST(StatsDbBasics, ZeroTickUpdateKeepsPreviousRate) {
  StatsDb db;
  const InterfaceKey key{"n", "e"};
  db.update(key, seconds(0), {0, 0, 0, 0, 0});
  db.update(key, seconds(2), {200, 1000, 0, 1, 0});
  // Same agent uptime (cached snapshot): no new rate recorded.
  const auto none = db.update(key, seconds(4), {200, 1000, 0, 1, 0});
  EXPECT_FALSE(none.has_value());
  EXPECT_EQ(db.total_rate_series(key)->size(), 1u);
  EXPECT_TRUE(db.latest_rate(key).has_value());
}

}  // namespace
}  // namespace netqos::mon
