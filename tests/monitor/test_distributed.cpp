#include "monitor/distributed.h"

#include <gtest/gtest.h>

#include "experiments/lirtss.h"
#include "snmp/deploy.h"

namespace netqos::mon {
namespace {

/// Distributed setup over the LIRTSS testbed: stations L and S2 split the
/// polling; paths evaluate on the coordinator (L).
class DistributedFixture : public ::testing::Test {
 protected:
  DistributedFixture() {
    stations = {&bed.host("L"), &bed.host("S2")};
  }

  exp::LirtssTestbed bed;
  std::vector<sim::Host*> stations;
};

TEST_F(DistributedFixture, PartitionsAgentsAcrossStations) {
  DistributedMonitor dist(bed.simulator(), bed.topology(), stations);
  ASSERT_EQ(dist.workers().size(), 2u);
  const auto n0 = dist.workers()[0]->polled_agents().size();
  const auto n1 = dist.workers()[1]->polled_agents().size();
  EXPECT_EQ(n0 + n1, 6u);
  EXPECT_EQ(n0, 3u);
  EXPECT_EQ(n1, 3u);
}

TEST_F(DistributedFixture, MeasuresLoadLikeCentralizedMonitor) {
  DistributedMonitor dist(bed.simulator(), bed.topology(), stations);
  dist.add_path("S1", "N1");
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(5), seconds(40),
                                        kilobytes_per_second(300)));
  // Start background + generators via the bed, but the bed's own monitor
  // is not started; drive the distributed one instead.
  bed.background().start();
  dist.start();
  bed.simulator().run_until(seconds(40));

  const double level =
      dist.used_series("S1", "N1").mean_between(seconds(12), seconds(38));
  EXPECT_NEAR(level, 310'000.0, 25'000.0);
}

TEST_F(DistributedFixture, PollingLoadIsShared) {
  DistributedMonitor dist(bed.simulator(), bed.topology(), stations);
  dist.add_path("S1", "N1");
  dist.start();
  bed.simulator().run_until(seconds(20));

  const MonitorStats total = dist.aggregate_stats();
  EXPECT_GT(total.agent_polls, 0u);
  // Each worker polls only its partition.
  const auto& w0 = dist.workers()[0]->stats();
  const auto& w1 = dist.workers()[1]->stats();
  EXPECT_GT(w0.agent_polls, 0u);
  EXPECT_GT(w1.agent_polls, 0u);
  EXPECT_EQ(w0.agent_polls + w1.agent_polls, total.agent_polls);
  EXPECT_EQ(total.agent_poll_failures, 0u);
}

TEST_F(DistributedFixture, SingleStationDegeneratesToCentralized) {
  DistributedMonitor dist(bed.simulator(), bed.topology(),
                          {&bed.host("L")});
  EXPECT_EQ(dist.workers().size(), 1u);
  EXPECT_EQ(dist.workers()[0]->polled_agents().size(), 6u);
}

TEST_F(DistributedFixture, StopHaltsAllWorkers) {
  DistributedMonitor dist(bed.simulator(), bed.topology(), stations);
  dist.add_path("S1", "N1");
  dist.start();
  bed.simulator().run_until(seconds(10));
  dist.stop();
  const auto rounds = dist.aggregate_stats().rounds_started;
  bed.simulator().run_until(seconds(20));
  EXPECT_EQ(dist.aggregate_stats().rounds_started, rounds);
}

TEST_F(DistributedFixture, EmptyStationListRejected) {
  EXPECT_THROW(
      DistributedMonitor(bed.simulator(), bed.topology(), {}),
      std::invalid_argument);
}

TEST_F(DistributedFixture, PartitionFailoverDegradesOnlyItsConnections) {
  DistributedMonitor dist(bed.simulator(), bed.topology(), stations);
  // Worker 0 (station L) polls {L, N2, S2}; worker 1 (station S2) polls
  // {N1, S1, sw0} (round-robin in plan order). The L <-> S2 path is
  // measured entirely by worker 0's agents; S1 <-> N1 entirely by
  // worker 1's.
  dist.add_path("L", "S2");
  dist.add_path("S1", "N1");
  bed.background().start();
  dist.start();
  bed.simulator().run_until(seconds(10));
  EXPECT_EQ(dist.coordinator().current_usage("L", "S2").freshness,
            Freshness::kFresh);
  EXPECT_EQ(dist.coordinator().current_usage("S1", "N1").freshness,
            Freshness::kFresh);

  // Worker 1's entire partition goes dark (daemon crash on each node).
  for (const char* node : {"N1", "S1", "sw0"}) {
    snmp::find_agent(bed.agents(), node)->agent->set_responding(false);
  }
  bed.simulator().run_until(seconds(60));

  // Worker 1 quarantines every agent it owns...
  NetworkMonitor& worker1 = *dist.workers()[1];
  for (const char* node : {"N1", "S1", "sw0"}) {
    EXPECT_EQ(worker1.scheduler().find(node)->health,
              AgentHealth::kQuarantined)
        << node;
  }
  // ...and the decision propagates to the coordinator's plan. With the
  // switch dark too there is no healthy fallback, so the affected path
  // honestly reports stale from the merged db — never silently fresh.
  EXPECT_TRUE(dist.coordinator().plan().agent_quarantined("S1"));
  const PathUsage affected = dist.coordinator().current_usage("S1", "N1");
  EXPECT_EQ(affected.freshness, Freshness::kStale);
  EXPECT_GT(affected.max_sample_age,
            dist.coordinator().effective_stale_after());

  // The other partition is untouched: its path stays fresh and its
  // series keeps advancing past the failure.
  EXPECT_EQ(dist.workers()[0]->stats().agent_poll_failures, 0u);
  const PathUsage unaffected = dist.coordinator().current_usage("L", "S2");
  EXPECT_TRUE(unaffected.complete);
  EXPECT_EQ(unaffected.freshness, Freshness::kFresh);
  const auto& points = dist.used_series("L", "S2").points();
  ASSERT_FALSE(points.empty());
  EXPECT_GT(points.back().time, seconds(55));
}

TEST_F(DistributedFixture, MoreStationsThanAgentsTolerated) {
  std::vector<sim::Host*> many = {&bed.host("L"), &bed.host("S1"),
                                  &bed.host("S2"), &bed.host("N1"),
                                  &bed.host("N2"), &bed.host("S3"),
                                  &bed.host("S4")};
  DistributedMonitor dist(bed.simulator(), bed.topology(), many);
  dist.add_path("S1", "N1");
  dist.start();
  bed.simulator().run_until(seconds(10));
  EXPECT_GT(dist.aggregate_stats().rounds_completed, 0u);
}

}  // namespace
}  // namespace netqos::mon
