#include "monitor/discovery.h"

#include <gtest/gtest.h>

#include "experiments/lirtss.h"
#include "spec/writer.h"
#include "topology/path.h"

namespace netqos::mon {
namespace {

/// Primes switch learning: every SNMP-capable host plus the agentless
/// ones exchange a little traffic so FDBs are populated.
void prime_traffic(exp::LirtssTestbed& bed) {
  const char* hosts[] = {"L", "S1", "S2", "S3", "N1", "N2"};
  for (const char* name : hosts) {
    sim::Host& h = bed.host(name);
    const auto sport = h.udp().allocate_ephemeral_port();
    h.udp().send(bed.host("L").ip(), sim::kDiscardPort, sport, {}, 10);
    bed.host("L").udp().send(h.ip(), sim::kDiscardPort, sport, {}, 10);
  }
  bed.simulator().run_until(bed.simulator().now() + seconds(1));
}

class DiscoveryFixture : public ::testing::Test {
 protected:
  DiscoveryFixture() {
    prime_traffic(bed);
    client = std::make_unique<snmp::SnmpClient>(bed.simulator(),
                                                bed.host("L").udp());
  }

  DiscoveryResult discover(std::vector<DiscoveryTarget> targets) {
    TopologyDiscovery discovery(*client);
    std::optional<DiscoveryResult> got;
    discovery.run(std::move(targets),
                  [&](DiscoveryResult r) { got = std::move(r); });
    bed.simulator().run_until(bed.simulator().now() + seconds(60));
    EXPECT_TRUE(got.has_value());
    return std::move(*got);
  }

  std::vector<DiscoveryTarget> all_targets() const {
    return {
        {sim::Ipv4Address::parse("10.0.0.1"), "public"},    // L
        {sim::Ipv4Address::parse("10.0.0.11"), "public"},   // S1
        {sim::Ipv4Address::parse("10.0.0.12"), "public"},   // S2
        {sim::Ipv4Address::parse("10.0.0.21"), "public"},   // N1
        {sim::Ipv4Address::parse("10.0.0.22"), "public"},   // N2
        {sim::Ipv4Address::parse("10.0.0.100"), "public"},  // sw0
    };
  }

  exp::LirtssTestbed bed;
  std::unique_ptr<snmp::SnmpClient> client;
};

TEST_F(DiscoveryFixture, ClassifiesSwitchAndHosts) {
  const DiscoveryResult result = discover(all_targets());
  ASSERT_TRUE(result.ok);
  const auto* sw = result.topology.find_node("sw0");
  ASSERT_NE(sw, nullptr);
  EXPECT_EQ(sw->kind, topo::NodeKind::kSwitch);
  EXPECT_EQ(sw->management_ipv4, "10.0.0.100");

  for (const char* name : {"L", "S1", "S2", "N1", "N2"}) {
    const auto* node = result.topology.find_node(name);
    ASSERT_NE(node, nullptr) << name;
    EXPECT_EQ(node->kind, topo::NodeKind::kHost);
    EXPECT_TRUE(node->snmp_enabled);
  }
}

TEST_F(DiscoveryFixture, DirectAttachmentsRecovered) {
  const DiscoveryResult result = discover(all_targets());
  // L.eth0 <-> sw0.p1 must be rediscovered.
  bool found = false;
  for (const auto& conn : result.topology.connections()) {
    if ((conn.a == topo::Endpoint{"sw0", "p1"} &&
         conn.b == topo::Endpoint{"L", "eth0"}) ||
        (conn.b == topo::Endpoint{"sw0", "p1"} &&
         conn.a == topo::Endpoint{"L", "eth0"})) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(DiscoveryFixture, SharedSegmentInferredAsHub) {
  const DiscoveryResult result = discover(all_targets());
  // N1 and N2 both live behind sw0.p8: a hub must be synthesized.
  const topo::NodeSpec* hub = nullptr;
  for (const auto& node : result.topology.nodes()) {
    if (node.kind == topo::NodeKind::kHub) hub = &node;
  }
  ASSERT_NE(hub, nullptr);
  // Hub connects to the switch and to both NT hosts.
  auto path = topo::traverse_recursive(result.topology, "N1", "N2");
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);  // N1-hub, hub-N2
}

TEST_F(DiscoveryFixture, AgentlessHostsAppearAsPlaceholders) {
  const DiscoveryResult result = discover(all_targets());
  // S3 sent traffic but runs no agent: it appears as host-<mac>.
  int ghosts = 0;
  for (const auto& node : result.topology.nodes()) {
    if (node.name.rfind("host-", 0) == 0) {
      ++ghosts;
      EXPECT_FALSE(node.snmp_enabled);
    }
  }
  EXPECT_GE(ghosts, 1);
}

TEST_F(DiscoveryFixture, UnreachableTargetsReported) {
  auto targets = all_targets();
  targets.push_back({sim::Ipv4Address::parse("10.0.0.13"), "public"});  // S3
  const DiscoveryResult result = discover(std::move(targets));
  ASSERT_EQ(result.unreachable.size(), 1u);
  EXPECT_EQ(result.unreachable[0], sim::Ipv4Address::parse("10.0.0.13"));
}

TEST_F(DiscoveryFixture, DiscoveredTopologyIsWritable) {
  const DiscoveryResult result = discover(all_targets());
  spec::SpecFile file;
  file.network_name = "discovered";
  file.topology = result.topology;
  const std::string text = spec::write_spec(file);
  EXPECT_NE(text.find("switch sw0"), std::string::npos);
  EXPECT_NE(text.find("hub"), std::string::npos);
}

TEST_F(DiscoveryFixture, RejectsConcurrentRuns) {
  TopologyDiscovery discovery(*client);
  discovery.run({{sim::Ipv4Address::parse("10.0.0.1"), "public"}},
                [](DiscoveryResult) {});
  EXPECT_TRUE(discovery.busy());
  EXPECT_THROW(discovery.run({}, [](DiscoveryResult) {}),
               std::logic_error);
  bed.simulator().run_until(bed.simulator().now() + seconds(30));
}

}  // namespace
}  // namespace netqos::mon
