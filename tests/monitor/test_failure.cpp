// Failure injection: link down/up traps, the failure detector, loss, and
// monitor robustness under both.
#include <gtest/gtest.h>

#include "experiments/lirtss.h"
#include "monitor/failure.h"
#include "netsim/link.h"
#include "snmp/deploy.h"

namespace netqos::mon {
namespace {

sim::Link* link_of(exp::LirtssTestbed& bed, const std::string& host,
                   const std::string& itf) {
  return bed.host(host).find_interface(itf)->link();
}

TEST(LinkFailure, DownLinkDropsFrames) {
  exp::LirtssTestbed bed;
  sim::Link* link = link_of(bed, "S1", "hme0");
  link->set_up(false);
  EXPECT_FALSE(link->up());

  auto& s1 = bed.host("S1");
  const auto sport = s1.udp().allocate_ephemeral_port();
  s1.udp().send(bed.host("S2").ip(), sim::kDiscardPort, sport, {}, 100);
  bed.simulator().run_until(seconds(1));
  // At least the test datagram died on the downed link (S1's own
  // linkDown trap dies there too, since S1 is single-homed).
  EXPECT_GE(link->frames_dropped_down(), 1u);
  EXPECT_EQ(bed.host("S2").udp().stats().datagrams_received, 0u);
}

TEST(LinkFailure, TrapsReachFailureDetector) {
  exp::LirtssTestbed bed;
  FailureDetector detector(bed.simulator(), bed.topology(), bed.host("L"));

  std::vector<LinkEvent> seen;
  detector.add_callback([&](const LinkEvent& e) { seen.push_back(e); });

  // Down S2's link (S2 runs an agent; its trap leaves via... its only
  // NIC is down! Traps about one's own only link are lost — exactly like
  // reality. Use the switch side instead: the switch agent also observes
  // the same link via its port p3.)
  bed.run_until(seconds(1));  // agents up, FDB warm for mgmt replies
  sim::Link* link = link_of(bed, "S2", "hme0");
  link->set_up(false);
  bed.run_until(seconds(2));

  // S2's own trap was dropped (its uplink is the dead link), but the
  // switch's trap about port p3 arrives.
  ASSERT_FALSE(seen.empty());
  bool switch_report = false;
  for (const auto& e : seen) {
    if (e.node == "sw0" && e.interface == "p3" && !e.up) {
      switch_report = true;
      ASSERT_TRUE(e.connection.has_value());
      EXPECT_TRUE(detector.connection_down(*e.connection));
    }
  }
  EXPECT_TRUE(switch_report);

  // Restore: linkUp traps clear the state.
  link->set_up(true);
  bed.run_until(seconds(3));
  const auto& last = detector.events().back();
  EXPECT_TRUE(last.up);
  for (std::size_t ci = 0; ci < bed.topology().connections().size(); ++ci) {
    EXPECT_FALSE(detector.connection_down(ci));
  }
}

TEST(LinkFailure, MonitorSurvivesAgentOutage) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "N1");
  bed.run_until(seconds(10));
  const auto failures_before = bed.monitor().stats().agent_poll_failures;
  EXPECT_EQ(failures_before, 0u);

  // Cut N1 off: its agent stops answering; polls to it time out but the
  // monitor keeps polling everything else.
  link_of(bed, "N1", "e0")->set_up(false);
  bed.run_until(seconds(30));
  EXPECT_GT(bed.monitor().stats().agent_poll_failures, 0u);
  EXPECT_GT(bed.monitor().stats().rounds_completed, 10u);

  // Reconnect: polling recovers, failures stop accumulating.
  link_of(bed, "N1", "e0")->set_up(true);
  bed.run_until(seconds(40));
  const auto failures_at_recovery = bed.monitor().stats().agent_poll_failures;
  bed.run_until(seconds(60));
  // A few in-flight timeouts may land right after recovery; then silence.
  EXPECT_LE(bed.monitor().stats().agent_poll_failures,
            failures_at_recovery + 2);
}

TEST(LinkFailure, LossyLinkTriggersRetriesButPollsSucceed) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "S2");
  // 20% loss on the monitor's own uplink: requests and responses both at
  // risk; client retries recover most rounds.
  link_of(bed, "L", "eth0")->set_loss(0.2, 42);
  bed.run_until(seconds(60));

  const auto& client = bed.monitor().client_stats();
  EXPECT_GT(client.retries, 0u);
  EXPECT_GT(client.responses, 0u);
  // Some polls fail outright (both tries lost) but most rounds complete.
  EXPECT_GT(bed.monitor().stats().rounds_completed, 20u);
  const auto& used = bed.monitor().used_series("S1", "S2");
  EXPECT_GT(used.size(), 10u);
}

TEST(LinkFailure, LossIsDeterministic) {
  auto run_once = [] {
    exp::LirtssTestbed bed;
    bed.watch("S1", "S2");
    link_of(bed, "L", "eth0")->set_loss(0.3, 7);
    bed.run_until(seconds(30));
    return bed.monitor().client_stats().retries;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(LinkFailure, OperStatusReflectsCarrier) {
  exp::LirtssTestbed bed;
  snmp::DeployedAgent* s1 = snmp::find_agent(bed.agents(), "S1");
  ASSERT_NE(s1, nullptr);
  const snmp::Oid oper =
      snmp::mib2::if_column(snmp::mib2::kIfOperStatusColumn, 1);
  EXPECT_EQ(*s1->agent->mib().get(oper), snmp::SnmpValue(std::int64_t{1}));
  link_of(bed, "S1", "hme0")->set_up(false);
  EXPECT_EQ(*s1->agent->mib().get(oper), snmp::SnmpValue(std::int64_t{2}));
}

TEST(LinkFailure, TrapWithoutSinkIsNoop) {
  sim::Simulator sim;
  sim::Network net(sim);
  sim::Host& h = net.add_host("h");
  net.add_host_interface(h, "eth0", mbps(100),
                         sim::Ipv4Address::parse("10.0.0.1"));
  snmp::SnmpAgent agent(sim, h.udp(), {});
  EXPECT_FALSE(agent.send_trap(snmp::mib2::kLinkDownTrap));
  EXPECT_EQ(agent.stats().traps_sent, 0u);
}

}  // namespace
}  // namespace netqos::mon
