// End-to-end monitor behaviour on the LIRTSS testbed: real SNMP over the
// simulated wire, real load generators, §3.3 rules evaluated per round.
#include <gtest/gtest.h>

#include "experiments/lirtss.h"
#include "monitor/report.h"

namespace netqos::mon {
namespace {

TEST(MonitorIntegration, MeasuresConstantLoadWithinPaperTolerance) {
  exp::LirtssTestbed bed;
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(10), seconds(60),
                                        kilobytes_per_second(200)));
  bed.watch("S1", "N1");
  bed.run_until(seconds(70));

  const TimeSeries& used = bed.monitor().used_series("S1", "N1");
  ASSERT_GE(used.size(), 25u);

  const BytesPerSecond background =
      estimate_background(used, seconds(2), seconds(10));
  const double measured =
      used.mean_between(seconds(16), seconds(58)) - background;
  // Paper: measured-less-background ~4% above generated (headers + SNMP).
  EXPECT_GT(measured, 200'000.0 * 1.0);
  EXPECT_LT(measured, 200'000.0 * 1.08);
}

TEST(MonitorIntegration, HubPathsSeeSummedLoad) {
  exp::LirtssTestbed bed;
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(5), seconds(40),
                                        kilobytes_per_second(150)));
  bed.add_load("L", "N2",
               load::RateProfile::pulse(seconds(5), seconds(40),
                                        kilobytes_per_second(150)));
  bed.watch("S1", "N1").watch("S1", "N2");
  bed.run_until(seconds(40));

  // Both hub paths see ~300 KB/s (the sum).
  for (const char* peer : {"N1", "N2"}) {
    const double level =
        bed.monitor().used_series("S1", peer).mean_between(seconds(12),
                                                           seconds(38));
    EXPECT_NEAR(level, 310'000.0, 25'000.0) << "path S1<->" << peer;
  }
}

TEST(MonitorIntegration, SwitchPathsIsolated) {
  exp::LirtssTestbed bed;
  bed.add_load("L", "S2",
               load::RateProfile::pulse(seconds(5), seconds(40),
                                        kilobytes_per_second(1000)));
  bed.watch("S1", "S2").watch("S1", "S3");
  bed.run_until(seconds(40));

  const double on_s2 =
      bed.monitor().used_series("S1", "S2").mean_between(seconds(12),
                                                         seconds(38));
  const double on_s3 =
      bed.monitor().used_series("S1", "S3").mean_between(seconds(12),
                                                         seconds(38));
  EXPECT_GT(on_s2, 1'000'000.0);  // load + headers visible
  EXPECT_LT(on_s3, 30'000.0);     // only background
}

TEST(MonitorIntegration, AgentlessHostsMonitoredViaSwitchPorts) {
  // Paper §4.1: the S4 <-> S5 path is monitorable although neither runs
  // an SNMP daemon.
  exp::LirtssTestbed bed;
  bed.add_load("L", "S4",
               load::RateProfile::pulse(seconds(5), seconds(30),
                                        kilobytes_per_second(500)));
  bed.watch("S4", "S5");
  bed.run_until(seconds(30));

  const double level =
      bed.monitor().used_series("S4", "S5").mean_between(seconds(12),
                                                         seconds(28));
  // The S4 leg carries the load; measured at the switch port.
  EXPECT_NEAR(level, 515'000.0, 20'000.0);
}

TEST(MonitorIntegration, AvailableBandwidthTracksBottleneck) {
  exp::LirtssTestbed bed;
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(5), seconds(30),
                                        kilobytes_per_second(400)));
  bed.watch("S1", "N1");
  bed.run_until(seconds(30));

  const double available =
      bed.monitor().available_series("S1", "N1").mean_between(seconds(12),
                                                              seconds(28));
  // Hub: 1.25 MB/s capacity minus ~415 KB/s used.
  EXPECT_NEAR(available, 1'250'000.0 - 415'000.0, 25'000.0);
}

TEST(MonitorIntegration, SampleCallbacksCarryDiagnosis) {
  exp::LirtssTestbed bed;
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(2), seconds(20),
                                        kilobytes_per_second(300)));
  bed.watch("S1", "N1");
  std::size_t callbacks = 0;
  std::size_t hub_bottlenecks = 0;
  bed.monitor().add_sample_callback([&](const PathKey& key, SimTime,
                                        const PathUsage& usage) {
    ++callbacks;
    EXPECT_EQ(key.first, "S1");
    const auto& conn =
        bed.topology().connections()[usage.bottleneck];
    if (conn.touches("hub0")) ++hub_bottlenecks;
    EXPECT_EQ(usage.connections.size(), 3u);  // S1-sw, sw-hub, hub-N1
  });
  bed.run_until(seconds(20));
  EXPECT_GT(callbacks, 5u);
  // With hub load, the bottleneck diagnosis lands on the hub domain.
  EXPECT_GT(hub_bottlenecks, callbacks / 2);
}

TEST(MonitorIntegration, MonitorStatsAccumulate) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "N1");
  bed.run_until(seconds(21));
  const MonitorStats& stats = bed.monitor().stats();
  EXPECT_GE(stats.rounds_completed, 9u);
  EXPECT_EQ(stats.agent_poll_failures, 0u);
  EXPECT_EQ(stats.resolve_failures, 0u);
  // 6 agents per round.
  EXPECT_EQ(stats.agent_polls, stats.rounds_started * 6);
}

TEST(MonitorIntegration, StopHaltsPolling) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "N1");
  bed.run_until(seconds(10));
  bed.monitor().stop();
  const auto rounds = bed.monitor().stats().rounds_started;
  bed.simulator().run_until(seconds(20));
  EXPECT_EQ(bed.monitor().stats().rounds_started, rounds);
  EXPECT_FALSE(bed.monitor().running());
}

TEST(MonitorIntegration, UnknownPathThrows) {
  exp::LirtssTestbed bed;
  EXPECT_THROW(bed.monitor().add_path("S1", "ghost"),
               std::invalid_argument);
  bed.watch("S1", "N1");
  EXPECT_THROW(bed.monitor().used_series("S1", "S2"), std::out_of_range);
}

TEST(MonitorIntegration, PathOfMatchesPaperRoute) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "N1");
  // Paper §4.3.1: "The path that data followed was: S - switch - hub - N".
  const auto nodes =
      topo::path_nodes(bed.topology(), bed.monitor().path_of("S1", "N1"),
                       "S1");
  const std::vector<std::string> expected{"S1", "sw0", "hub0", "N1"};
  EXPECT_EQ(nodes, expected);
}

TEST(MonitorIntegration, ReverseLookupFindsSamePath) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "N1");
  EXPECT_NO_THROW(bed.monitor().used_series("N1", "S1"));
}

TEST(MonitorIntegration, DeterministicAcrossRuns) {
  auto run_once = [] {
    exp::LirtssTestbed bed;
    bed.add_load("L", "N1",
                 load::RateProfile::pulse(seconds(5), seconds(25),
                                          kilobytes_per_second(250)));
    bed.watch("S1", "N1");
    bed.run_until(seconds(30));
    return bed.monitor().used_series("S1", "N1").points();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST(MonitorIntegration, CsvSinkWritesRows) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "N1");
  std::ostringstream out;
  CsvSink sink(bed.monitor(), out);
  bed.run_until(seconds(10));
  const std::string csv = out.str();
  EXPECT_NE(csv.find("time_s,from,to"), std::string::npos);
  EXPECT_NE(csv.find("S1,N1"), std::string::npos);
  // Header + at least 3 data rows.
  EXPECT_GT(std::count(csv.begin(), csv.end(), '\n'), 3);
}

}  // namespace
}  // namespace netqos::mon
