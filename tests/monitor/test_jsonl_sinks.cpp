// Stop-flush contract of the JSONL sinks: a run's final metrics/trace
// snapshots must land in the stream via monitor.stop(), with no explicit
// render call after the run (the bug CsvSink's stop-flush fixed for CSV).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "experiments/lirtss.h"
#include "monitor/report.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace netqos::mon {
namespace {

// One poll interval (2s) plus margin: a single completed poll round.
constexpr SimTime kOnePollRun = seconds(3);

std::size_t line_count(const std::string& text) {
  std::size_t lines = 0;
  for (char c : text) {
    if (c == '\n') lines++;
  }
  return lines;
}

TEST(JsonlSinks, MetricsSnapshotFlushedByStop) {
  obs::MetricsRegistry registry;
  exp::TestbedOptions options;
  options.metrics = &registry;
  exp::LirtssTestbed bed(options);
  bed.watch("S1", "N1");

  std::ostringstream out;
  MetricsJsonlSink sink(bed.monitor(), registry, out);
  bed.run_until(kOnePollRun);

  // Nothing is written while the monitor runs — the snapshot is the
  // stop-time state, not a stream.
  EXPECT_TRUE(out.str().empty());

  bed.monitor().stop();
  const std::string jsonl = out.str();
  ASSERT_FALSE(jsonl.empty());
  EXPECT_NE(jsonl.find("\"metric\":\"netqos_agent_polls_total\""),
            std::string::npos);
  // Every line is one JSON object.
  std::istringstream lines(jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(JsonlSinks, TraceTimelineFlushedByStop) {
  obs::MetricsRegistry registry;
  obs::SpanRecorder spans;
  exp::TestbedOptions options;
  options.metrics = &registry;
  options.spans = &spans;
  exp::LirtssTestbed bed(options);
  bed.watch("S1", "N1");

  std::ostringstream out;
  TraceJsonlSink sink(bed.monitor(), spans, out);
  bed.run_until(kOnePollRun);
  EXPECT_TRUE(out.str().empty());

  bed.monitor().stop();
  const std::string jsonl = out.str();
  ASSERT_FALSE(jsonl.empty());
  EXPECT_NE(jsonl.find("\"name\":\"poll_round\""), std::string::npos);
  EXPECT_EQ(line_count(jsonl), spans.spans().size());
}

TEST(JsonlSinks, StopWithoutPollStillWritesRegisteredSeries) {
  // Even a zero-length run flushes whatever the registry holds — an
  // empty-but-valid file beats a missing one for artifact collectors.
  obs::MetricsRegistry registry;
  exp::TestbedOptions options;
  options.metrics = &registry;
  exp::LirtssTestbed bed(options);
  bed.watch("S1", "N1");

  std::ostringstream out;
  MetricsJsonlSink sink(bed.monitor(), registry, out);
  bed.monitor().start();
  bed.monitor().stop();
  EXPECT_NE(out.str().find("\"metric\":"), std::string::npos);
}

}  // namespace
}  // namespace netqos::mon
