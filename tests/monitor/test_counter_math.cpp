#include "monitor/counter_math.h"

#include <gtest/gtest.h>

#include "monitor/stats_db.h"
#include "obs/metrics.h"

namespace netqos::mon {
namespace {

TEST(Counter32Delta, SimpleDifference) {
  EXPECT_EQ(counter32_delta(100, 250), 150u);
  EXPECT_EQ(counter32_delta(0, 0), 0u);
}

TEST(Counter32Delta, WrapsCorrectly) {
  // The paper polls Counter32 objects that wrap at 2^32; at 100 Mbps a
  // counter wraps in under six minutes, so this path is routine.
  EXPECT_EQ(counter32_delta(0xfffffff0u, 0x10u), 0x20u);
  EXPECT_EQ(counter32_delta(0xffffffffu, 0x0u), 1u);
}

TEST(TimeTicksDelta, WrapsCorrectly) {
  EXPECT_EQ(timeticks_delta(0xffffff00u, 0x100u), 0x200u);
}

TEST(ComputeRates, BasicRates) {
  CounterSample older{/*ticks=*/0, /*in=*/0, /*out=*/0, 0, 0};
  CounterSample newer{/*ticks=*/200, /*in=*/2000, /*out=*/1000, 20, 10};
  const auto rates = compute_rates(older, newer);
  ASSERT_TRUE(rates.has_value());
  EXPECT_DOUBLE_EQ(rates->interval_seconds, 2.0);
  EXPECT_DOUBLE_EQ(rates->in_rate, 1000.0);
  EXPECT_DOUBLE_EQ(rates->out_rate, 500.0);
  EXPECT_DOUBLE_EQ(rates->in_packet_rate, 10.0);
  EXPECT_DOUBLE_EQ(rates->out_packet_rate, 5.0);
  EXPECT_DOUBLE_EQ(rates->total_rate(), 1500.0);
}

TEST(ComputeRates, ZeroUptimeDeltaRejected) {
  CounterSample s{100, 50, 50, 5, 5};
  CounterSample same_time{100, 90, 90, 9, 9};
  EXPECT_FALSE(compute_rates(s, same_time).has_value());
}

TEST(ComputeRates, CounterWrapDuringInterval) {
  CounterSample older{0, 0xffffff00u, 0, 0, 0};
  CounterSample newer{100, 0x100u, 0, 0, 0};
  const auto rates = compute_rates(older, newer);
  ASSERT_TRUE(rates.has_value());
  EXPECT_DOUBLE_EQ(rates->in_rate, 512.0);  // 0x200 bytes over 1 s
}

TEST(ComputeRates, UptimeWrapDuringInterval) {
  CounterSample older{0xffffffceu, 0, 0, 0, 0};  // 50 ticks before wrap
  CounterSample newer{50, 1000, 0, 0, 0};        // 50 ticks after wrap
  const auto rates = compute_rates(older, newer);
  ASSERT_TRUE(rates.has_value());
  EXPECT_DOUBLE_EQ(rates->interval_seconds, 1.0);
  EXPECT_DOUBLE_EQ(rates->in_rate, 1000.0);
}

TEST(StatsDbWrap, WrapProducesOneCorrectedSampleInHistory) {
  // Regression for the history store: a Counter32 wrap between polls must
  // land in the store as the modular-corrected rate (0x200 bytes over
  // 1 s = 512 B/s), never as a ~4 GB/s spike — neither in the raw ring
  // nor in any downsampled bucket.
  obs::MetricsRegistry registry;
  hist::RetentionPolicy policy;
  policy.raw_capacity = 16;
  policy.tiers = {{2 * kSecond, 8}};
  StatsDb db(policy);
  db.attach_metrics(registry);
  const InterfaceKey key{"hub0", "eth0"};

  CounterSample before{/*ticks=*/0, /*in=*/0xffffff00u, /*out=*/0, 0, 0};
  CounterSample after{/*ticks=*/100, /*in=*/0x100u, /*out=*/0, 0, 0};
  db.update(key, seconds(0), before);
  db.update(key, seconds(1), after);

  EXPECT_DOUBLE_EQ(
      registry.counter("netqos_statsdb_counter_wraps_total", "").value(),
      1.0);

  const hist::Series* series =
      db.history().find(hist::interface_series_key("hub0", "eth0"));
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->raw().size(), 1u);
  EXPECT_DOUBLE_EQ(series->raw().newest().last, 512.0);
  // Every retained bucket, downsampled tiers included, stays at the
  // corrected rate.
  for (const hist::RingTier& tier : series->tiers()) {
    for (std::size_t i = 0; i < tier.size(); ++i) {
      EXPECT_DOUBLE_EQ(tier.at(i).max, 512.0);
    }
  }
  const hist::WindowSummary window = db.history().query(
      hist::interface_series_key("hub0", "eth0"), 0, seconds(10));
  EXPECT_EQ(window.samples, 1u);
  EXPECT_DOUBLE_EQ(window.max, 512.0);
}

TEST(ComputeRates, SubSecondInterval) {
  CounterSample older{0, 0, 0, 0, 0};
  CounterSample newer{10, 100, 0, 0, 0};  // 0.1 s
  const auto rates = compute_rates(older, newer);
  ASSERT_TRUE(rates.has_value());
  EXPECT_DOUBLE_EQ(rates->in_rate, 1000.0);
}

}  // namespace
}  // namespace netqos::mon
