// High-capacity (Counter64) polling mode: RFC 2863 ifXTable.
#include <gtest/gtest.h>

#include "experiments/lirtss.h"
#include "monitor/counter_math.h"
#include "snmp/deploy.h"

namespace netqos::mon {
namespace {

TEST(HcCounters, AgentServesIfXTable) {
  exp::LirtssTestbed bed;
  snmp::DeployedAgent* s1 = snmp::find_agent(bed.agents(), "S1");
  ASSERT_NE(s1, nullptr);
  auto& mib = s1->agent->mib();
  EXPECT_TRUE(mib.get(snmp::mib2::ifx_column(snmp::mib2::kIfNameColumn, 1))
                  .has_value());
  const auto hc_in =
      mib.get(snmp::mib2::ifx_column(snmp::mib2::kIfHCInOctetsColumn, 1));
  ASSERT_TRUE(hc_in.has_value());
  EXPECT_TRUE(std::holds_alternative<snmp::Counter64>(*hc_in));
  const auto speed =
      mib.get(snmp::mib2::ifx_column(snmp::mib2::kIfHighSpeedColumn, 1));
  ASSERT_TRUE(speed.has_value());
  EXPECT_EQ(snmp::as_gauge32(*speed), 100u);  // ifHighSpeed is in Mbps
}

TEST(HcCounters, MonitorMeasuresWithCounter64) {
  exp::TestbedOptions options;
  exp::LirtssTestbed bed(options);
  // Second monitor using HC columns, on a different station.
  MonitorConfig config;
  config.use_hc_counters = true;
  NetworkMonitor hc_monitor(bed.simulator(), bed.topology(), bed.host("S2"),
                            config);
  hc_monitor.add_path("S1", "N1");
  hc_monitor.start();

  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(4), seconds(30),
                                        kilobytes_per_second(300)));
  bed.watch("S1", "N1");
  bed.run_until(seconds(30));

  const double hc_level =
      hc_monitor.used_series("S1", "N1").mean_between(seconds(10),
                                                      seconds(28));
  const double classic_level =
      bed.monitor().used_series("S1", "N1").mean_between(seconds(10),
                                                         seconds(28));
  // Both modes agree to within sampling noise.
  EXPECT_NEAR(hc_level, classic_level, 6'000.0);
  EXPECT_NEAR(hc_level, 320'000.0, 15'000.0);
  EXPECT_EQ(hc_monitor.stats().agent_poll_failures, 0u);
}

TEST(HcCounters, Counter64RatesHandleValuesBeyond32Bits) {
  // A Counter32 in this state would have wrapped ~3 times; the HC pair
  // differences cleanly.
  CounterSample older;
  older.sys_uptime_ticks = 0;
  older.in_octets = 0x2'FFFF'FF00ULL;
  older.high_capacity = true;
  CounterSample newer;
  newer.sys_uptime_ticks = 100;
  newer.in_octets = 0x3'0000'0100ULL;
  newer.high_capacity = true;
  const auto rates = compute_rates(older, newer);
  ASSERT_TRUE(rates.has_value());
  EXPECT_DOUBLE_EQ(rates->in_rate, 512.0);
}

TEST(HcCounters, MixedWidthSamplesRejected) {
  CounterSample older;
  older.sys_uptime_ticks = 0;
  older.high_capacity = false;
  CounterSample newer;
  newer.sys_uptime_ticks = 100;
  newer.high_capacity = true;
  EXPECT_FALSE(compute_rates(older, newer).has_value());
}

TEST(HcCounters, ClassicModeStillWrapsAt32Bits) {
  CounterSample older;
  older.sys_uptime_ticks = 0;
  older.in_octets = 0xFFFF'FF00ULL;
  CounterSample newer;
  newer.sys_uptime_ticks = 100;
  newer.in_octets = 0x100ULL;
  const auto rates = compute_rates(older, newer);
  ASSERT_TRUE(rates.has_value());
  EXPECT_DOUBLE_EQ(rates->in_rate, 512.0);
}

}  // namespace
}  // namespace netqos::mon
